package sparsematch

import (
	"io"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/dyndist"
	"repro/internal/dynmatch"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/invariant"
	"repro/internal/matching"
	"repro/internal/mpc"
	"repro/internal/stream"
)

// ---------------------------------------------------------------------------
// Graph I/O.

// WriteGraph encodes g in the library's text edge-list format.
func WriteGraph(w io.Writer, g *Graph) error { return graph.WriteText(w, g) }

// ReadGraph decodes a graph from the text edge-list format.
func ReadGraph(r io.Reader) (*Graph, error) { return graph.ReadText(r) }

// ---------------------------------------------------------------------------
// Generators for the bounded-β families the paper highlights. Each function
// documents the certified bound on the neighborhood independence number.

// Clique returns K_n (β = 1).
func Clique(n int) *Graph { return gen.Clique(n) }

// UnitDisk returns a random unit-disk graph: n uniform points in the unit
// square, edges between points within the given radius (β ≤ 5).
func UnitDisk(n int, radius float64, seed uint64) *Graph { return gen.UnitDisk(n, radius, seed) }

// LineGraph returns the line graph of g (β ≤ 2) and the g-edge represented
// by each line-graph vertex.
func LineGraph(g *Graph) (*Graph, []Edge) { return gen.LineGraph(g) }

// BoundedDiversity returns a union of cliques in which every vertex joins
// at most k cliques, so the diversity — and hence β — is at most k.
func BoundedDiversity(n, k, cliqueSize int, seed uint64) *Graph {
	return gen.BoundedDiversity(n, k, cliqueSize, seed)
}

// ProperInterval returns a random unit-interval intersection graph (β ≤ 2).
func ProperInterval(n int, spread float64, seed uint64) *Graph {
	return gen.ProperInterval(n, spread, seed)
}

// ErdosRenyi returns G(n, p) — no β guarantee; for general testing.
func ErdosRenyi(n int, p float64, seed uint64) *Graph { return gen.ErdosRenyi(n, p, seed) }

// ---------------------------------------------------------------------------
// Parallel phase engine (Theorem 3.1 pipeline, sharded hot paths).

// MatchOptions tunes the sequential matching pipeline. Workers shards both
// the sparsifier construction and the discover stage of the phase engine;
// zero means GOMAXPROCS, 1 forces sequential execution. Sparsifier selects
// the sparsification backend by name ("" and "gdelta" mean the paper's G_Δ
// construction, "edcs" the edge-degree-constrained subgraph). Relabel
// selects a cache-locality vertex reordering for the phase engine's DFS
// (OrderIdentity disables it). The matching produced is bit-identical for
// every worker count, either backend, and every relabeling — Relabel is a
// pure layout knob whose results are mapped back through the inverse
// permutation.
type MatchOptions struct {
	Workers    int
	Sparsifier string
	Relabel    VertexOrdering
}

// VertexOrdering selects the phase engine's cache-locality relabeling.
type VertexOrdering = graph.Ordering

// The vertex orderings: identity (relabeling off), descending degree,
// breadth-first, and reverse Cuthill–McKee.
const (
	OrderIdentity = graph.OrderIdentity
	OrderDegree   = graph.OrderDegree
	OrderBFS      = graph.OrderBFS
	OrderRCM      = graph.OrderRCM
)

// ParseVertexOrdering resolves an ordering name ("none", "degree", "bfs",
// "rcm"; "" means none).
func ParseVertexOrdering(s string) (VertexOrdering, error) { return graph.ParseOrdering(s) }

// engineOptions converts the facade options to the phase engine's.
func (o MatchOptions) engineOptions() matching.Options {
	return matching.Options{Workers: o.Workers, Relabel: o.Relabel}
}

// MatchEngine is the reusable allocation-free phase engine: discover →
// commit disjoint-path phases sharded over a worker pool, with all scratch
// arenas owned by the engine. Close it when done to release the pool.
type MatchEngine = matching.Engine

// NewMatchEngine creates a phase engine with the given options. The
// Sparsifier field does not apply (the engine consumes an already
// constructed graph) and is ignored.
func NewMatchEngine(opt MatchOptions) *MatchEngine { return matching.NewEngine(opt.engineOptions()) }

// SparsifierBackend is the pluggable sparsification backend interface: a
// named construction that resolves its own parameters from (β, ε) and
// builds the sparsifier from the CSR graph. See SparsifierBackends.
type SparsifierBackend = core.Sparsifier

// SparsifierBackendParam is one resolved backend parameter, for reporting.
type SparsifierBackendParam = core.BackendParam

// SparsifierBackends returns every registered backend in registry order:
// "gdelta" (Theorem 2.1 random marking, needs bounded β) and "edcs"
// (edge-degree-constrained subgraph, arbitrary graphs).
func SparsifierBackends(workers int) []SparsifierBackend { return core.Backends(workers) }

// SparsifierBackendNames returns the stable backend name list.
func SparsifierBackendNames() []string { return core.BackendNames() }

// SparsifierByName resolves a backend name; "" selects "gdelta".
func SparsifierByName(name string, workers int) (SparsifierBackend, error) {
	return core.BackendByName(name, workers)
}

// ApproximateMatchingOpts is ApproximateMatching with explicit options: it
// sparsifies with the selected backend (opt.Sparsifier, with opt.Workers
// sharded construction) and then runs the phase-structured matcher
// (disjoint discover → commit phases) with the same worker count. The
// result is fully deterministic for a fixed seed and invariant to Workers
// in both stages. It panics on an unknown backend name, mirroring the
// library's contract for programmer errors.
func ApproximateMatchingOpts(g *Graph, beta int, eps float64, seed uint64, opt MatchOptions) *Matching {
	backend, err := core.BackendByName(opt.Sparsifier, opt.Workers)
	if err != nil {
		invariant.Violatef("sparsematch: %v", err)
	}
	sp := backend.Sparsify(g, beta, eps, seed)
	return matching.PhaseStructuredApproxOpts(sp, eps, seed+1, opt.engineOptions())
}

// PhaseStructuredMatching computes a (1+ε)-approximate maximum matching of
// g directly (no sparsifier) with the Hopcroft–Karp-style phase schedule,
// sharding each phase's path discovery over opt.Workers workers.
func PhaseStructuredMatching(g *Graph, eps float64, seed uint64, opt MatchOptions) *Matching {
	return matching.PhaseStructuredApproxOpts(g, eps, seed, opt.engineOptions())
}

// ---------------------------------------------------------------------------
// Fully dynamic matching (Theorem 3.5).

// DynamicOptions configures a dynamic matcher.
type DynamicOptions = dynmatch.Options

// DynamicMatcher maintains a (1+ε)-approximate maximum matching under edge
// insertions and deletions with a worst-case per-update work budget of
// O((β/ε³)·log(1/ε)) units; the approximation holds with high probability
// against an adaptive adversary.
type DynamicMatcher = dynmatch.Maintainer

// NewDynamicMatcher creates a dynamic matcher over an empty graph on n
// vertices for graphs of neighborhood independence at most opts.Beta.
func NewDynamicMatcher(n int, opts DynamicOptions, seed uint64) *DynamicMatcher {
	return dynmatch.New(n, opts, seed)
}

// ---------------------------------------------------------------------------
// Distributed matching (Theorems 3.2 and 3.3) on the bundled synchronous
// network simulator.

// DistStats aggregates rounds, messages, and bits of a distributed run.
type DistStats = dist.Stats

// DistPhaseStats breaks the distributed pipeline cost down per phase.
type DistPhaseStats = dist.PhaseStats

// DistributedMatching runs the full distributed pipeline of Section 3.2 on
// a simulated network with topology g: one round to build G_Δ, one round for
// the bounded-degree composition, then Linial coloring (O(log* n) + O(Δα²)
// rounds), color-ordered maximal matching and length-3 augmentation — all on
// the sparsifier, so the message complexity is sublinear in |E(g)|.
func DistributedMatching(g *Graph, beta int, eps float64, seed uint64) (*Matching, DistPhaseStats) {
	return dist.ApproxMatchingPipeline(g, beta, eps, dist.PipelineOptions{}, seed)
}

// DistPipelineOptions tunes the distributed pipeline (per-vertex mark count
// Δ, composition degree bound Δα, augmentation iterations, and the
// sparsifier backend name — "gdelta" or "edcs"). Zero fields use the
// theory-faithful defaults, which are conservative; simulations usually
// set modest explicit values.
type DistPipelineOptions = dist.PipelineOptions

// DistributedMatchingOpts is DistributedMatching with explicit pipeline
// parameters.
func DistributedMatchingOpts(g *Graph, beta int, eps float64, opt DistPipelineOptions, seed uint64) (*Matching, DistPhaseStats) {
	return dist.ApproxMatchingPipeline(g, beta, eps, opt, seed)
}

// DistributedSparsifier builds the G_Δ backend's sparsifier in a single
// simulated communication round using 1-bit unicast messages; the returned
// stats certify the message count (≈ nΔ, Theorem 3.3). For the EDCS
// backend's multi-round distributed construction, see
// DistributedEDCSSparsifier.
func DistributedSparsifier(g *Graph, delta int, seed uint64) (*Graph, DistStats) {
	return dist.RunSparsifier(g, delta, seed)
}

// DistributedEDCSSparsifier builds the EDCS backend's sparsifier on the
// simulated network via the propose/commit fixpoint, with (β_edcs, λ)
// resolved from ε. Unlike the one-round G_Δ construction it takes several
// round-trips to converge, but its matching guarantee does not need the
// input's neighborhood independence to be bounded.
func DistributedEDCSSparsifier(g *Graph, eps float64, seed uint64) (*Graph, DistStats) {
	return dist.RunEDCSFor(g, eps, seed)
}

// ---------------------------------------------------------------------------
// Memory-constrained models (Section 3's streaming and MPC applications).

// StreamingSparsifier consumes an edge stream and maintains per-vertex
// reservoirs of Δ uniform incident edges — the G_Δ backend's sparsifier in
// one pass and O(nΔ) memory regardless of the stream length or order. (The
// EDCS backend has no one-pass construction here: its properties are
// global, so it is built from materialized graphs only.)
type StreamingSparsifier = stream.Sparsifier

// NewStreamingSparsifier creates a streaming sparsifier for n vertices with
// per-vertex reservoir capacity delta.
func NewStreamingSparsifier(n, delta int, seed uint64) *StreamingSparsifier {
	return stream.NewSparsifier(n, delta, seed)
}

// NewStreamingSparsifierFor is NewStreamingSparsifier with the reservoir
// capacity Δ resolved from (β, ε) by the unified parameter resolution
// (Theorem 2.1 calibration, internal/params).
func NewStreamingSparsifierFor(n, beta int, eps float64, seed uint64) *StreamingSparsifier {
	return stream.NewSparsifierFor(n, beta, eps, seed)
}

// MPCStats reports the simulated MPC cluster's per-machine loads.
type MPCStats = mpc.Stats

// SparsifyMPC builds the G_Δ backend's sparsifier on a simulated MPC
// cluster in two rounds with balanced machine loads; the coordinator ends
// up holding only the O(nΔ)-edge sparsifier.
func SparsifyMPC(g *Graph, delta, machines int, seed uint64) (*Graph, MPCStats) {
	return mpc.SparsifyMPC(g, delta, machines, seed)
}

// SparsifyMPCFor is SparsifyMPC with Δ resolved from (β, ε) by the unified
// parameter resolution (Theorem 2.1 calibration, internal/params).
func SparsifyMPCFor(g *Graph, beta int, eps float64, machines int, seed uint64) (*Graph, MPCStats) {
	return mpc.SparsifyMPCFor(g, beta, eps, machines, seed)
}

// DynDistNetwork maintains the sparsifier and a maximal matching on it in a
// dynamically changing distributed network: O(Δ) words per processor and
// O(Δ)-message local repairs per topology update.
type DynDistNetwork = dyndist.Network

// NewDynDistNetwork creates a dynamic distributed network on n processors
// with per-vertex mark capacity delta.
func NewDynDistNetwork(n, delta int, seed uint64) *DynDistNetwork {
	return dyndist.NewNetwork(n, delta, seed)
}

// NewDynDistNetworkFor is NewDynDistNetwork with the mark capacity Δ
// resolved from (β, ε) by the unified parameter resolution (Theorem 2.1
// calibration, internal/params).
func NewDynDistNetworkFor(n, beta int, eps float64, seed uint64) *DynDistNetwork {
	return dyndist.NewNetworkFor(n, beta, eps, seed)
}
