package sparsematch

import (
	"io"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/dyndist"
	"repro/internal/dynmatch"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/matching"
	"repro/internal/mpc"
	"repro/internal/stream"
)

// ---------------------------------------------------------------------------
// Graph I/O.

// WriteGraph encodes g in the library's text edge-list format.
func WriteGraph(w io.Writer, g *Graph) error { return graph.WriteText(w, g) }

// ReadGraph decodes a graph from the text edge-list format.
func ReadGraph(r io.Reader) (*Graph, error) { return graph.ReadText(r) }

// ---------------------------------------------------------------------------
// Generators for the bounded-β families the paper highlights. Each function
// documents the certified bound on the neighborhood independence number.

// Clique returns K_n (β = 1).
func Clique(n int) *Graph { return gen.Clique(n) }

// UnitDisk returns a random unit-disk graph: n uniform points in the unit
// square, edges between points within the given radius (β ≤ 5).
func UnitDisk(n int, radius float64, seed uint64) *Graph { return gen.UnitDisk(n, radius, seed) }

// LineGraph returns the line graph of g (β ≤ 2) and the g-edge represented
// by each line-graph vertex.
func LineGraph(g *Graph) (*Graph, []Edge) { return gen.LineGraph(g) }

// BoundedDiversity returns a union of cliques in which every vertex joins
// at most k cliques, so the diversity — and hence β — is at most k.
func BoundedDiversity(n, k, cliqueSize int, seed uint64) *Graph {
	return gen.BoundedDiversity(n, k, cliqueSize, seed)
}

// ProperInterval returns a random unit-interval intersection graph (β ≤ 2).
func ProperInterval(n int, spread float64, seed uint64) *Graph {
	return gen.ProperInterval(n, spread, seed)
}

// ErdosRenyi returns G(n, p) — no β guarantee; for general testing.
func ErdosRenyi(n int, p float64, seed uint64) *Graph { return gen.ErdosRenyi(n, p, seed) }

// ---------------------------------------------------------------------------
// Parallel phase engine (Theorem 3.1 pipeline, sharded hot paths).

// MatchOptions tunes the matching side of the sequential pipeline. Workers
// shards both the sparsifier construction (core.Options.Workers) and the
// discover stage of the phase engine; zero means GOMAXPROCS, 1 forces
// sequential execution. The matching produced is bit-identical for every
// worker count.
type MatchOptions = matching.Options

// MatchEngine is the reusable allocation-free phase engine: discover →
// commit disjoint-path phases sharded over a worker pool, with all scratch
// arenas owned by the engine. Close it when done to release the pool.
type MatchEngine = matching.Engine

// NewMatchEngine creates a phase engine with the given options.
func NewMatchEngine(opt MatchOptions) *MatchEngine { return matching.NewEngine(opt) }

// ApproximateMatchingOpts is ApproximateMatching with explicit engine
// options: it sparsifies with opt.Workers sharded marking and then runs the
// phase-structured matcher (disjoint discover → commit phases) with the
// same worker count. The result is fully deterministic for a fixed
// (seed, Workers) pair; the matching stage is even worker-invariant, but
// the sparsifier keys its RNG streams by vertex range, so changing Workers
// changes which edges G_Δ contains (core.Options.Workers contract).
func ApproximateMatchingOpts(g *Graph, beta int, eps float64, seed uint64, opt MatchOptions) *Matching {
	sp := core.SparsifyOpts(g, core.Options{Delta: core.DeltaLean(beta, eps), Workers: opt.Workers}, seed)
	return matching.PhaseStructuredApproxOpts(sp, eps, seed+1, opt)
}

// PhaseStructuredMatching computes a (1+ε)-approximate maximum matching of
// g directly (no sparsifier) with the Hopcroft–Karp-style phase schedule,
// sharding each phase's path discovery over opt.Workers workers.
func PhaseStructuredMatching(g *Graph, eps float64, seed uint64, opt MatchOptions) *Matching {
	return matching.PhaseStructuredApproxOpts(g, eps, seed, opt)
}

// ---------------------------------------------------------------------------
// Fully dynamic matching (Theorem 3.5).

// DynamicOptions configures a dynamic matcher.
type DynamicOptions = dynmatch.Options

// DynamicMatcher maintains a (1+ε)-approximate maximum matching under edge
// insertions and deletions with a worst-case per-update work budget of
// O((β/ε³)·log(1/ε)) units; the approximation holds with high probability
// against an adaptive adversary.
type DynamicMatcher = dynmatch.Maintainer

// NewDynamicMatcher creates a dynamic matcher over an empty graph on n
// vertices for graphs of neighborhood independence at most opts.Beta.
func NewDynamicMatcher(n int, opts DynamicOptions, seed uint64) *DynamicMatcher {
	return dynmatch.New(n, opts, seed)
}

// ---------------------------------------------------------------------------
// Distributed matching (Theorems 3.2 and 3.3) on the bundled synchronous
// network simulator.

// DistStats aggregates rounds, messages, and bits of a distributed run.
type DistStats = dist.Stats

// DistPhaseStats breaks the distributed pipeline cost down per phase.
type DistPhaseStats = dist.PhaseStats

// DistributedMatching runs the full distributed pipeline of Section 3.2 on
// a simulated network with topology g: one round to build G_Δ, one round for
// the bounded-degree composition, then Linial coloring (O(log* n) + O(Δα²)
// rounds), color-ordered maximal matching and length-3 augmentation — all on
// the sparsifier, so the message complexity is sublinear in |E(g)|.
func DistributedMatching(g *Graph, beta int, eps float64, seed uint64) (*Matching, DistPhaseStats) {
	return dist.ApproxMatchingPipeline(g, beta, eps, dist.PipelineOptions{}, seed)
}

// DistPipelineOptions tunes the distributed pipeline (per-vertex mark count
// Δ, composition degree bound Δα, augmentation iterations). Zero fields use
// the theory-faithful defaults, which are conservative; simulations usually
// set modest explicit values.
type DistPipelineOptions = dist.PipelineOptions

// DistributedMatchingOpts is DistributedMatching with explicit pipeline
// parameters.
func DistributedMatchingOpts(g *Graph, beta int, eps float64, opt DistPipelineOptions, seed uint64) (*Matching, DistPhaseStats) {
	return dist.ApproxMatchingPipeline(g, beta, eps, opt, seed)
}

// DistributedSparsifier builds G_Δ in a single simulated communication
// round using 1-bit unicast messages; the returned stats certify the
// message count (≈ nΔ, Theorem 3.3).
func DistributedSparsifier(g *Graph, delta int, seed uint64) (*Graph, DistStats) {
	return dist.RunSparsifier(g, delta, seed)
}

// ---------------------------------------------------------------------------
// Memory-constrained models (Section 3's streaming and MPC applications).

// StreamingSparsifier consumes an edge stream and maintains per-vertex
// reservoirs of Δ uniform incident edges — G_Δ in one pass and O(nΔ) memory
// regardless of the stream length or order.
type StreamingSparsifier = stream.Sparsifier

// NewStreamingSparsifier creates a streaming sparsifier for n vertices with
// per-vertex reservoir capacity delta.
func NewStreamingSparsifier(n, delta int, seed uint64) *StreamingSparsifier {
	return stream.NewSparsifier(n, delta, seed)
}

// NewStreamingSparsifierFor is NewStreamingSparsifier with the reservoir
// capacity Δ resolved from (β, ε) by the unified parameter resolution
// (Theorem 2.1 calibration, internal/params).
func NewStreamingSparsifierFor(n, beta int, eps float64, seed uint64) *StreamingSparsifier {
	return stream.NewSparsifierFor(n, beta, eps, seed)
}

// MPCStats reports the simulated MPC cluster's per-machine loads.
type MPCStats = mpc.Stats

// SparsifyMPC builds G_Δ on a simulated MPC cluster in two rounds with
// balanced machine loads; the coordinator ends up holding only the
// O(nΔ)-edge sparsifier.
func SparsifyMPC(g *Graph, delta, machines int, seed uint64) (*Graph, MPCStats) {
	return mpc.SparsifyMPC(g, delta, machines, seed)
}

// SparsifyMPCFor is SparsifyMPC with Δ resolved from (β, ε) by the unified
// parameter resolution (Theorem 2.1 calibration, internal/params).
func SparsifyMPCFor(g *Graph, beta int, eps float64, machines int, seed uint64) (*Graph, MPCStats) {
	return mpc.SparsifyMPCFor(g, beta, eps, machines, seed)
}

// DynDistNetwork maintains the sparsifier and a maximal matching on it in a
// dynamically changing distributed network: O(Δ) words per processor and
// O(Δ)-message local repairs per topology update.
type DynDistNetwork = dyndist.Network

// NewDynDistNetwork creates a dynamic distributed network on n processors
// with per-vertex mark capacity delta.
func NewDynDistNetwork(n, delta int, seed uint64) *DynDistNetwork {
	return dyndist.NewNetwork(n, delta, seed)
}

// NewDynDistNetworkFor is NewDynDistNetwork with the mark capacity Δ
// resolved from (β, ε) by the unified parameter resolution (Theorem 2.1
// calibration, internal/params).
func NewDynDistNetworkFor(n, beta int, eps float64, seed uint64) *DynDistNetwork {
	return dyndist.NewNetworkFor(n, beta, eps, seed)
}
