// Command matchd runs a dynamic-matching maintainer as a long-running
// sharded service (internal/serve), and doubles as its client.
//
// Server:
//
//	matchd -addr :7333 -n 100000 -shards 4 -backend gdelta \
//	       -ckpt ckpts/ -ckpt-every 512 -ckpt-keep 3
//	matchd -addr :7333 -restore ckpts/ -shards 4     # crash restart
//
// Client subcommands (against a running server):
//
//	matchd -addr :7333 -send trace.txt -batch 256   stream a trace
//	matchd -addr :7333 -stats                       dump counters
//	matchd -addr :7333 -match                       print matching size
//	matchd -addr :7333 -checkpoint                  force a checkpoint
//	matchd -addr :7333 -quit                        drain and stop
//
// Fault injection for chaos drills: -faults plan.txt loads an
// internal/faults plan (drop/dup/delay rates, node-0 crash schedule) onto
// the server's ingest path.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/faults"
	"repro/internal/serve"
	"repro/internal/serve/wire"
	"repro/internal/trace"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7333", "listen/dial address")
	n := flag.Int("n", 100000, "vertex count (server)")
	shards := flag.Int("shards", 1, "ingest shard count (server)")
	beta := flag.Int("beta", 2, "neighborhood independence bound (gdelta backend)")
	eps := flag.Float64("eps", 0.5, "approximation parameter")
	seed := flag.Uint64("seed", 1, "backend random seed")
	backend := flag.String("backend", serve.DefaultBackend, "matcher backend: gdelta | edcs")
	queue := flag.Int("queue", 64, "per-shard ingest queue depth (batches)")
	ckptDir := flag.String("ckpt", "", "checkpoint directory (server; generational, empty disables durability)")
	ckptKeep := flag.Int("ckpt-keep", serve.DefaultCheckpointKeep, "checkpoint generations to retain (with -ckpt)")
	ckptEvery := flag.Int("ckpt-every", 0, "checkpoint automatically every this many applied batches (0 disables)")
	restoreDir := flag.String("restore", "", "restore server state from the newest valid generation in this checkpoint directory")
	faultsPath := flag.String("faults", "", "fault plan file (internal/faults text format) for the ingest path")
	ioTimeout := flag.Duration("io-timeout", 0, "server: evict connections that stall reads/writes past this deadline (0 disables)")
	timeout := flag.Duration("timeout", 0, "client: per-request I/O deadline; a dead server fails typed instead of hanging (0 disables)")
	send := flag.String("send", "", "client: stream this trace file ('-' for stdin) to the server")
	batch := flag.Int("batch", 256, "client: updates per batch (with -send)")
	stats := flag.Bool("stats", false, "client: dump server counters")
	match := flag.Bool("match", false, "client: print the server's matching size")
	checkpoint := flag.Bool("checkpoint", false, "client: force a server checkpoint")
	quit := flag.Bool("quit", false, "client: drain and stop the server")
	flag.Parse()

	opts := clientOptions(*timeout)
	var err error
	switch {
	case *send != "":
		err = runSend(*addr, *send, *batch, opts)
	case *stats:
		err = runStats(*addr, opts)
	case *match:
		err = runMatch(*addr, opts)
	case *checkpoint:
		err = runCheckpoint(*addr, opts)
	case *quit:
		err = runQuit(*addr, opts)
	default:
		err = runServer(*addr, *n, *shards, *beta, *eps, *seed, *backend,
			*queue, *ckptDir, *ckptKeep, *ckptEvery, int64(*ioTimeout), *restoreDir, *faultsPath)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "matchd: %v\n", err)
		os.Exit(1)
	}
}

// clientOptions builds the daemon's client options: a real wall clock and
// a real sleeper, which the library itself never touches.
func clientOptions(timeout time.Duration) serve.ClientOptions {
	opts := serve.ClientOptions{
		Sleep: func(nanos int64) { time.Sleep(time.Duration(nanos)) },
	}
	if timeout > 0 {
		opts.TimeoutNanos = int64(timeout)
		opts.NowNanos = func() int64 { return time.Now().UnixNano() }
	}
	return opts
}

func runServer(addr string, n, shards, beta int, eps float64, seed uint64,
	backend string, queue int, ckptDir string, ckptKeep, ckptEvery int, ioTimeoutNanos int64, restoreDir, faultsPath string) error {
	cfg := serve.Config{
		N:               n,
		Shards:          shards,
		Beta:            beta,
		Eps:             eps,
		Seed:            seed,
		Backend:         backend,
		QueueDepth:      queue,
		CheckpointEvery: ckptEvery,
		CheckpointDir:   ckptDir,
		CheckpointKeep:  ckptKeep,
		IOTimeoutNanos:  ioTimeoutNanos,
		NowNanos:        func() int64 { return time.Now().UnixNano() },
	}
	if faultsPath != "" {
		b, err := os.ReadFile(faultsPath)
		if err != nil {
			return err
		}
		plan, err := faults.Decode(string(b))
		if err != nil {
			return err
		}
		cfg.Plan = &plan
	}

	var (
		s   *serve.Server
		err error
	)
	if restoreDir != "" {
		c, report, rerr := serve.RestoreLatest(nil, restoreDir)
		if rerr != nil {
			return rerr
		}
		for _, sk := range report.Skipped {
			fmt.Fprintf(os.Stderr, "matchd: skipped corrupt checkpoint: %v\n", sk)
		}
		s, err = serve.NewFromCheckpoint(cfg, c)
		if err == nil {
			fmt.Fprintf(os.Stderr, "matchd: restored %s backend at seq %d from generation %d (n=%d)\n",
				s.BackendName(), s.Applied(), report.Gen, s.N())
		}
	} else {
		s, err = serve.New(cfg)
	}
	if err != nil {
		return err
	}

	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "matchd: serving %s backend on %s (n=%d, %d shards)\n",
		s.BackendName(), l.Addr(), s.N(), s.Shards())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		fmt.Fprintln(os.Stderr, "matchd: signal received, draining")
		s.Shutdown()
	}()

	err = s.Serve(l)
	s.Shutdown() // no-op if the signal handler or a Quit got here first
	if ckptDir != "" {
		if _, _, cerr := s.CheckpointNow(); cerr != nil {
			fmt.Fprintf(os.Stderr, "matchd: final checkpoint: %v\n", cerr)
		}
	}
	fmt.Fprintf(os.Stderr, "matchd: stopped at seq %d\n", s.Applied())
	return err
}

func runSend(addr, in string, batch int, opts serve.ClientOptions) error {
	r := os.Stdin
	if in != "-" {
		f, err := os.Open(in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	tr, err := trace.Read(r)
	if err != nil {
		return err
	}
	c, err := serve.DialOptions(addr, opts)
	if err != nil {
		return err
	}
	defer c.Close()
	w := c.Welcome()
	if int(w.N) != tr.N {
		return fmt.Errorf("trace is over %d vertices, server has %d", tr.N, w.N)
	}
	ups := make([]wire.Update, len(tr.Updates))
	for i, u := range tr.Updates {
		ups[i] = wire.Update{Insert: u.Insert, U: u.U, V: u.V}
	}
	start := time.Now()
	if err := c.SendUpdates(ups, batch); err != nil {
		return err
	}
	elapsed := time.Since(start)
	_, size, err := c.Matching()
	if err != nil {
		return err
	}
	rate := float64(len(ups)) / elapsed.Seconds()
	fmt.Printf("sent %d updates in %v (%.0f updates/sec), applied seq %d, matching %d\n",
		len(ups), elapsed.Round(time.Millisecond), rate, c.Applied(), size)
	return nil
}

func runStats(addr string, opts serve.ClientOptions) error {
	c, err := serve.DialOptions(addr, opts)
	if err != nil {
		return err
	}
	defer c.Close()
	pairs, err := c.Stats()
	if err != nil {
		return err
	}
	fmt.Print(serve.DumpStats(pairs))
	return nil
}

func runMatch(addr string, opts serve.ClientOptions) error {
	c, err := serve.DialOptions(addr, opts)
	if err != nil {
		return err
	}
	defer c.Close()
	_, size, err := c.Matching()
	if err != nil {
		return err
	}
	fmt.Printf("matching %d at seq %d\n", size, c.Applied())
	return nil
}

func runCheckpoint(addr string, opts serve.ClientOptions) error {
	c, err := serve.DialOptions(addr, opts)
	if err != nil {
		return err
	}
	defer c.Close()
	seq, nbytes, err := c.Checkpoint()
	if err != nil {
		return err
	}
	fmt.Printf("checkpointed seq %d (%d bytes on disk)\n", seq, nbytes)
	return nil
}

func runQuit(addr string, opts serve.ClientOptions) error {
	c, err := serve.DialOptions(addr, opts)
	if err != nil {
		return err
	}
	seq, err := c.Quit()
	if err != nil {
		return err
	}
	fmt.Printf("server drained and stopped at seq %d\n", seq)
	return nil
}
