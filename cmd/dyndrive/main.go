// Command dyndrive replays a dynamic update trace against a dynamic
// matcher and reports its cost profile and final quality.
//
// Usage:
//
//	dyndrive -gen diversity2 -n 500 -avgdeg 64 -churn 5000 -out trace.txt
//	dyndrive -in trace.txt -algo maintainer -beta 2 -eps 0.3
//
// Algorithms: maintainer (Theorem 3.5, adaptive-safe), oblivious (the O(Δ)
// maintained-sparsifier scheme), baseline (repair maximal matching).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/cli"
	"repro/internal/dynmatch"
	"repro/internal/matching"
	"repro/internal/trace"
)

func main() {
	in := flag.String("in", "", "input trace file ('-' for stdin)")
	genFam := flag.String("gen", "", "instead of replaying, GENERATE a trace of this family")
	n := flag.Int("n", 500, "vertex count (with -gen)")
	avgDeg := flag.Float64("avgdeg", 64, "average degree (with -gen)")
	churn := flag.Int("churn", 5000, "delete+reinsert pairs appended after the load (with -gen)")
	out := flag.String("out", "-", "output trace file (with -gen)")
	algo := flag.String("algo", "maintainer", "maintainer | oblivious | baseline")
	beta := flag.Int("beta", 2, "neighborhood independence bound")
	eps := flag.Float64("eps", 0.3, "approximation parameter")
	seed := flag.Uint64("seed", 1, "random seed")
	checkpoint := flag.Int("checkpoint", -1,
		"simulate a crash: snapshot the maintainer after this many updates,\nrestore, and verify the replay matches (maintainer only)")
	flag.Parse()

	if *genFam != "" {
		if err := generate(*genFam, *n, *avgDeg, *churn, *out, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "dyndrive: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *in == "" {
		fmt.Fprintln(os.Stderr, "dyndrive: need -in trace or -gen family")
		os.Exit(2)
	}
	if err := replay(*in, *algo, *beta, *eps, *seed, *checkpoint); err != nil {
		fmt.Fprintf(os.Stderr, "dyndrive: %v\n", err)
		os.Exit(1)
	}
}

func generate(family string, n int, avgDeg float64, churn int, out string, seed uint64) error {
	tr, err := cli.MakeTrace(family, n, avgDeg, churn, seed)
	if err != nil {
		return err
	}
	w := os.Stdout
	if out != "-" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := trace.Write(w, tr); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "dyndrive: wrote trace: n=%d, %d updates (%d load + %d churn)\n",
		tr.N, len(tr.Updates), len(tr.Updates)-2*churn, 2*churn)
	return nil
}

func replay(in, algo string, beta int, eps float64, seed uint64, checkpoint int) error {
	r := os.Stdin
	if in != "-" {
		f, err := os.Open(in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	tr, err := trace.Read(r)
	if err != nil {
		return err
	}

	var m dynmatch.Updater
	switch algo {
	case "maintainer":
		m = dynmatch.New(tr.N, dynmatch.Options{Beta: beta, Eps: eps}, seed)
	case "oblivious":
		m = dynmatch.NewOblivious(tr.N, dynmatch.Options{Beta: beta, Eps: eps}, seed)
	case "baseline":
		m = dynmatch.NewRepairBaseline(tr.N)
	default:
		return fmt.Errorf("unknown algorithm %q", algo)
	}
	if checkpoint >= 0 {
		if algo != "maintainer" {
			return fmt.Errorf("-checkpoint needs -algo maintainer, have %q", algo)
		}
		if checkpoint > len(tr.Updates) {
			return fmt.Errorf("-checkpoint %d beyond the trace's %d updates", checkpoint, len(tr.Updates))
		}
	}

	var ckpt *dynmatch.Checkpoint
	start := time.Now()
	for i, u := range tr.Updates {
		if i == checkpoint {
			ckpt = m.(*dynmatch.Maintainer).Snapshot()
		}
		u.Apply(m)
	}
	if checkpoint == len(tr.Updates) {
		ckpt = m.(*dynmatch.Maintainer).Snapshot()
	}
	elapsed := time.Since(start)

	if ckpt != nil {
		// Crash drill: restore from the mid-replay checkpoint, replay the
		// tail, and demand the restored maintainer reproduce the survivor's
		// matching exactly.
		restored, err := dynmatch.Restore(ckpt)
		if err != nil {
			return fmt.Errorf("checkpoint restore: %w", err)
		}
		for _, u := range tr.Updates[checkpoint:] {
			u.Apply(restored)
		}
		if restored.Size() != m.Matching().Size() {
			return fmt.Errorf("restored replay diverged: matching %d, survivor has %d",
				restored.Size(), m.Matching().Size())
		}
		if err := restored.Validate(); err != nil {
			return fmt.Errorf("restored maintainer: %w", err)
		}
		fmt.Printf("checkpoint: snapshot at update %d, restored replay matches (size %d)\n",
			checkpoint, restored.Size())
	}

	snap := m.Graph().Snapshot()
	if err := matching.Verify(snap, m.Matching()); err != nil {
		return fmt.Errorf("invalid final matching: %w", err)
	}
	exact := matching.MaximumGeneral(snap).Size()
	fmt.Printf("trace: n=%d updates=%d final m=%d\n", tr.N, len(tr.Updates), snap.M())
	fmt.Printf("algo=%s: matching=%d exact=%d quality=%.4f\n",
		algo, m.Matching().Size(), exact, float64(m.Matching().Size())/float64(max(1, exact)))
	fmt.Printf("time: %v total, %v/update\n",
		elapsed.Round(time.Millisecond), (elapsed / time.Duration(max(1, len(tr.Updates)))).Round(time.Nanosecond))
	type metered interface{ Metrics() dynmatch.Metrics }
	if mm, ok := m.(metered); ok {
		mtr := mm.Metrics()
		fmt.Printf("work: avg %.1f units/update, worst %d, overrun %d, recomputes %d\n",
			float64(mtr.UnitsTotal)/float64(max64(1, mtr.Updates)), mtr.MaxUnitsUpdate, mtr.MaxOverrun, mtr.Recomputes)
	}
	return nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
