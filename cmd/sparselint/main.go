// Command sparselint runs the project's static-analysis checks (see
// internal/lint) over the module: determinism, noalloc, noallocdeep,
// panicdiscipline, errwrap, decodebound, guardedby. It is pure stdlib and
// loads packages from source, so it needs no build step and no external
// modules.
//
// Usage:
//
//	sparselint [-json] [-checks list] [-baseline file] [-write-baseline file] [patterns]
//
// Patterns follow the go tool's shape: "./..." (the default) lints every
// package of the enclosing module, "./internal/graph/..." lints a subtree,
// and a plain directory lints that one package. Exit status is 0 for a clean
// tree, 1 when findings are reported, and 2 on load or usage errors.
//
// -checks selects a comma-separated subset of the catalog ("noalloc,guardedby");
// naming an unknown check is a usage error. -baseline loads a committed
// baseline of accepted findings and fails only on findings not in it, so a
// new check can land with pre-existing debt recorded instead of blocking CI.
// -write-baseline records the current findings as that baseline and exits 0.
//
// With -json, findings are emitted as a single JSON document with the stable
// schema version "sparselint/v2":
//
//	{"version":"sparselint/v2","count":N,
//	 "checks":[{"name":...,"severity":...,"doc":...}],
//	 "diagnostics":[{"check":...,"severity":...,"file":...,"line":...,"col":...,"message":...}]}
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

// Report is the -json output document (schema sparselint/v2).
type Report struct {
	Version string `json:"version"`
	Count   int    `json:"count"`
	// Checks lists the checks this run executed, with their severities —
	// consumers can tell a clean run of two checks from a clean run of all.
	Checks      []CheckInfo       `json:"checks"`
	Diagnostics []lint.Diagnostic `json:"diagnostics"`
}

// CheckInfo describes one executed check in the report header.
type CheckInfo struct {
	Name     string `json:"name"`
	Severity string `json:"severity"`
	Doc      string `json:"doc"`
}

// SchemaVersion identifies the -json output schema.
const SchemaVersion = "sparselint/v2"

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: it lints the patterns relative to the
// current directory and returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sparselint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a sparselint/v2 JSON document")
	checksFlag := fs.String("checks", "", "comma-separated checks to run (default: all)")
	baselinePath := fs.String("baseline", "", "fail only on findings not in this baseline file")
	writeBaseline := fs.String("write-baseline", "", "record current findings to this baseline file and exit 0")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: sparselint [-json] [-checks list] [-baseline file] [-write-baseline file] [patterns]\n\nchecks:\n")
		for _, c := range lint.AllChecks() {
			fmt.Fprintf(stderr, "  %-16s [%s] %s\n", c.Name(), lint.CheckSeverity(c.Name()), c.Doc())
		}
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *baselinePath != "" && *writeBaseline != "" {
		fmt.Fprintln(stderr, "sparselint: -baseline and -write-baseline are mutually exclusive")
		return 2
	}

	var names []string
	if *checksFlag != "" {
		for _, n := range strings.Split(*checksFlag, ",") {
			if n = strings.TrimSpace(n); n != "" {
				names = append(names, n)
			}
		}
	}
	checks, unknown := lint.SelectChecks(names)
	if len(unknown) > 0 {
		fmt.Fprintf(stderr, "sparselint: unknown checks in -checks: %s (known: %s)\n",
			strings.Join(unknown, ", "), strings.Join(lint.CheckNames(), ", "))
		return 2
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "sparselint:", err)
		return 2
	}
	root, err := lint.ModuleRoot(cwd)
	if err != nil {
		fmt.Fprintln(stderr, "sparselint:", err)
		return 2
	}

	var pkgs []*lint.Package
	for _, pat := range patterns {
		loaded, err := loadPattern(root, cwd, pat)
		if err != nil {
			fmt.Fprintln(stderr, "sparselint:", err)
			return 2
		}
		pkgs = append(pkgs, loaded...)
	}

	diags := lint.Run(pkgs, checks)
	// Report paths relative to the module root: stable across machines, what
	// the CI artifact diffs against, and the form baseline entries match on —
	// relativize BEFORE filtering.
	for i := range diags {
		if rel, err := filepath.Rel(root, diags[i].File); err == nil && !strings.HasPrefix(rel, "..") {
			diags[i].File = filepath.ToSlash(rel)
		}
	}

	if *writeBaseline != "" {
		b := lint.NewBaseline(diags)
		if err := lint.WriteBaseline(*writeBaseline, b); err != nil {
			fmt.Fprintln(stderr, "sparselint:", err)
			return 2
		}
		fmt.Fprintf(stderr, "sparselint: wrote %d baseline entries to %s\n", len(b.Entries), *writeBaseline)
		return 0
	}
	if *baselinePath != "" {
		b, err := lint.ReadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintln(stderr, "sparselint:", err)
			return 2
		}
		diags = b.Filter(diags)
	}

	if *jsonOut {
		infos := make([]CheckInfo, len(checks))
		for i, c := range checks {
			infos[i] = CheckInfo{Name: c.Name(), Severity: lint.CheckSeverity(c.Name()), Doc: c.Doc()}
		}
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(Report{Version: SchemaVersion, Count: len(diags), Checks: infos, Diagnostics: diags}); err != nil {
			fmt.Fprintln(stderr, "sparselint:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// loadPattern resolves one command-line pattern against the module rooted at
// root, with relative paths anchored at cwd.
func loadPattern(root, cwd, pat string) ([]*lint.Package, error) {
	recursive := false
	if rest, ok := strings.CutSuffix(pat, "/..."); ok {
		recursive = true
		pat = rest
		if pat == "" {
			pat = "."
		}
	} else if pat == "..." {
		recursive = true
		pat = "."
	}
	dir := pat
	if !filepath.IsAbs(dir) {
		dir = filepath.Join(cwd, dir)
	}
	if recursive {
		return lint.LoadPackages(root, dir)
	}
	rel, err := filepath.Rel(root, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return nil, fmt.Errorf("package directory %s is outside the module rooted at %s", dir, root)
	}
	modPath, pkgs := "", []*lint.Package(nil)
	modPath, err = lint.ModulePathOf(root)
	if err != nil {
		return nil, err
	}
	path := modPath
	if rel != "." {
		path = modPath + "/" + filepath.ToSlash(rel)
	}
	pkg, err := lint.NewLoader(root).LoadDir(dir, path)
	if err != nil {
		return nil, err
	}
	if pkg != nil {
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}
