// Command sparselint runs the project's static-analysis checks (see
// internal/lint) over the module: determinism, noalloc, panicdiscipline,
// errwrap. It is pure stdlib and loads packages from source, so it needs no
// build step and no external modules.
//
// Usage:
//
//	sparselint [-json] [patterns]
//
// Patterns follow the go tool's shape: "./..." (the default) lints every
// package of the enclosing module, "./internal/graph/..." lints a subtree,
// and a plain directory lints that one package. Exit status is 0 for a clean
// tree, 1 when findings are reported, and 2 on load or usage errors.
//
// With -json, findings are emitted as a single JSON document with the stable
// schema version "sparselint/v1":
//
//	{"version":"sparselint/v1","count":N,"diagnostics":[{"check":...,"file":...,"line":...,"col":...,"message":...}]}
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

// Report is the -json output document (schema sparselint/v1).
type Report struct {
	Version     string            `json:"version"`
	Count       int               `json:"count"`
	Diagnostics []lint.Diagnostic `json:"diagnostics"`
}

// SchemaVersion identifies the -json output schema.
const SchemaVersion = "sparselint/v1"

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: it lints the patterns relative to the
// current directory and returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sparselint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a sparselint/v1 JSON document")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: sparselint [-json] [patterns]\n\nchecks:\n")
		for _, c := range lint.AllChecks() {
			fmt.Fprintf(stderr, "  %-16s %s\n", c.Name(), c.Doc())
		}
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "sparselint:", err)
		return 2
	}
	root, err := lint.ModuleRoot(cwd)
	if err != nil {
		fmt.Fprintln(stderr, "sparselint:", err)
		return 2
	}

	var pkgs []*lint.Package
	for _, pat := range patterns {
		loaded, err := loadPattern(root, cwd, pat)
		if err != nil {
			fmt.Fprintln(stderr, "sparselint:", err)
			return 2
		}
		pkgs = append(pkgs, loaded...)
	}

	diags := lint.Run(pkgs, lint.AllChecks())
	// Report paths relative to the module root: stable across machines, and
	// what the golden CI artifact diffs against.
	for i := range diags {
		if rel, err := filepath.Rel(root, diags[i].File); err == nil && !strings.HasPrefix(rel, "..") {
			diags[i].File = filepath.ToSlash(rel)
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(Report{Version: SchemaVersion, Count: len(diags), Diagnostics: diags}); err != nil {
			fmt.Fprintln(stderr, "sparselint:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// loadPattern resolves one command-line pattern against the module rooted at
// root, with relative paths anchored at cwd.
func loadPattern(root, cwd, pat string) ([]*lint.Package, error) {
	recursive := false
	if rest, ok := strings.CutSuffix(pat, "/..."); ok {
		recursive = true
		pat = rest
		if pat == "" {
			pat = "."
		}
	} else if pat == "..." {
		recursive = true
		pat = "."
	}
	dir := pat
	if !filepath.IsAbs(dir) {
		dir = filepath.Join(cwd, dir)
	}
	if recursive {
		return lint.LoadPackages(root, dir)
	}
	rel, err := filepath.Rel(root, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return nil, fmt.Errorf("package directory %s is outside the module rooted at %s", dir, root)
	}
	modPath, pkgs := "", []*lint.Package(nil)
	modPath, err = lint.ModulePathOf(root)
	if err != nil {
		return nil, err
	}
	path := modPath
	if rel != "." {
		path = modPath + "/" + filepath.ToSlash(rel)
	}
	pkg, err := lint.NewLoader(root).LoadDir(dir, path)
	if err != nil {
		return nil, err
	}
	if pkg != nil {
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}
