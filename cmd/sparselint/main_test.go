package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/lint"
)

// TestBrokenTestdataExitsOne pins the CI contract: a package with violations
// makes the CLI exit 1 and report them.
func TestBrokenTestdataExitsOne(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"../../internal/lint/testdata/src/panicdiscipline"}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (stderr: %s)", code, errb.String())
	}
	if !strings.Contains(out.String(), "direct panic call") {
		t.Errorf("findings missing from output:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "panicdiscipline.go:") {
		t.Errorf("output lacks file positions:\n%s", out.String())
	}
}

// TestCleanPackageExitsZero lints a known-clean package.
func TestCleanPackageExitsZero(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"../../internal/invariant"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0 (stdout: %s, stderr: %s)", code, out.String(), errb.String())
	}
	if out.Len() != 0 {
		t.Errorf("clean run produced output: %s", out.String())
	}
}

// TestJSONSchemaRoundTrips checks the -json document: stable version string,
// count matching the diagnostics slice, and unmarshal → marshal fidelity.
func TestJSONSchemaRoundTrips(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-json", "../../internal/lint/testdata/src/errwrap"}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (stderr: %s)", code, errb.String())
	}
	var rep Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("unmarshal: %v\n%s", err, out.String())
	}
	if rep.Version != SchemaVersion {
		t.Errorf("version = %q, want %q", rep.Version, SchemaVersion)
	}
	if rep.Count != len(rep.Diagnostics) || rep.Count == 0 {
		t.Errorf("count = %d with %d diagnostics", rep.Count, len(rep.Diagnostics))
	}
	for _, d := range rep.Diagnostics {
		if d.Check != "errwrap" || d.File == "" || d.Line <= 0 || d.Col <= 0 || d.Message == "" {
			t.Errorf("incomplete diagnostic: %+v", d)
		}
		if strings.Contains(d.File, "\\") || strings.HasPrefix(d.File, "/") {
			t.Errorf("file %q is not a slash-separated module-relative path", d.File)
		}
	}
	reencoded, err := json.Marshal(rep)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var rep2 Report
	if err := json.Unmarshal(reencoded, &rep2); err != nil {
		t.Fatalf("re-unmarshal: %v", err)
	}
	if rep2.Version != rep.Version || rep2.Count != rep.Count || len(rep2.Diagnostics) != len(rep.Diagnostics) {
		t.Errorf("round-trip changed the document: %+v vs %+v", rep, rep2)
	}
	for i := range rep.Diagnostics {
		if rep.Diagnostics[i] != rep2.Diagnostics[i] {
			t.Errorf("diagnostic %d changed in round-trip: %+v vs %+v", i, rep.Diagnostics[i], rep2.Diagnostics[i])
		}
	}
}

// TestUsageErrorExitsTwo pins flag errors to exit code 2.
func TestUsageErrorExitsTwo(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-nosuchflag"}, &out, &errb); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
}

// TestHelpListsEveryCheck keeps the usage text in sync with the registry.
func TestHelpListsEveryCheck(t *testing.T) {
	var out, errb bytes.Buffer
	run([]string{"-h"}, &out, &errb)
	for _, name := range lint.CheckNames() {
		if !strings.Contains(errb.String(), name) {
			t.Errorf("usage text does not mention check %q:\n%s", name, errb.String())
		}
	}
}
