package main

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/lint"
)

// TestBrokenTestdataExitsOne pins the CI contract: a package with violations
// makes the CLI exit 1 and report them.
func TestBrokenTestdataExitsOne(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"../../internal/lint/testdata/src/panicdiscipline"}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (stderr: %s)", code, errb.String())
	}
	if !strings.Contains(out.String(), "direct panic call") {
		t.Errorf("findings missing from output:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "panicdiscipline.go:") {
		t.Errorf("output lacks file positions:\n%s", out.String())
	}
}

// TestCleanPackageExitsZero lints a known-clean package.
func TestCleanPackageExitsZero(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"../../internal/invariant"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0 (stdout: %s, stderr: %s)", code, out.String(), errb.String())
	}
	if out.Len() != 0 {
		t.Errorf("clean run produced output: %s", out.String())
	}
}

// TestJSONSchemaRoundTrips checks the -json document: stable version string,
// count matching the diagnostics slice, executed-check metadata, and
// unmarshal → marshal fidelity.
func TestJSONSchemaRoundTrips(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-json", "../../internal/lint/testdata/src/errwrap"}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (stderr: %s)", code, errb.String())
	}
	var rep Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("unmarshal: %v\n%s", err, out.String())
	}
	if rep.Version != SchemaVersion {
		t.Errorf("version = %q, want %q", rep.Version, SchemaVersion)
	}
	if SchemaVersion != "sparselint/v2" {
		t.Errorf("SchemaVersion = %q, want the pinned sparselint/v2", SchemaVersion)
	}
	if rep.Count != len(rep.Diagnostics) || rep.Count == 0 {
		t.Errorf("count = %d with %d diagnostics", rep.Count, len(rep.Diagnostics))
	}
	if len(rep.Checks) != len(lint.AllChecks()) {
		t.Errorf("report lists %d checks, want the full catalog of %d", len(rep.Checks), len(lint.AllChecks()))
	}
	for _, c := range rep.Checks {
		if c.Name == "" || c.Doc == "" {
			t.Errorf("incomplete check info: %+v", c)
		}
		if c.Severity != lint.CheckSeverity(c.Name) {
			t.Errorf("check %s severity = %q, want %q", c.Name, c.Severity, lint.CheckSeverity(c.Name))
		}
	}
	for _, d := range rep.Diagnostics {
		if d.Check != "errwrap" || d.File == "" || d.Line <= 0 || d.Col <= 0 || d.Message == "" {
			t.Errorf("incomplete diagnostic: %+v", d)
		}
		if d.Severity != "error" {
			t.Errorf("errwrap diagnostic severity = %q, want error", d.Severity)
		}
		if strings.Contains(d.File, "\\") || strings.HasPrefix(d.File, "/") {
			t.Errorf("file %q is not a slash-separated module-relative path", d.File)
		}
	}
	reencoded, err := json.Marshal(rep)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var rep2 Report
	if err := json.Unmarshal(reencoded, &rep2); err != nil {
		t.Fatalf("re-unmarshal: %v", err)
	}
	if rep2.Version != rep.Version || rep2.Count != rep.Count || len(rep2.Diagnostics) != len(rep.Diagnostics) {
		t.Errorf("round-trip changed the document: %+v vs %+v", rep, rep2)
	}
	for i := range rep.Diagnostics {
		if rep.Diagnostics[i] != rep2.Diagnostics[i] {
			t.Errorf("diagnostic %d changed in round-trip: %+v vs %+v", i, rep.Diagnostics[i], rep2.Diagnostics[i])
		}
	}
}

// TestUsageErrorExitsTwo pins flag errors to exit code 2.
func TestUsageErrorExitsTwo(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-nosuchflag"}, &out, &errb); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
}

// TestHelpListsEveryCheck keeps the usage text in sync with the registry.
func TestHelpListsEveryCheck(t *testing.T) {
	var out, errb bytes.Buffer
	run([]string{"-h"}, &out, &errb)
	for _, name := range lint.CheckNames() {
		if !strings.Contains(errb.String(), name) {
			t.Errorf("usage text does not mention check %q:\n%s", name, errb.String())
		}
	}
}

// TestChecksFlagSelects runs a violating package under a check that cannot
// fire on it (clean) and under the one that does (findings), and pins
// unknown names to a usage error.
func TestChecksFlagSelects(t *testing.T) {
	const pkg = "../../internal/lint/testdata/src/panicdiscipline"
	var out, errb bytes.Buffer
	if code := run([]string{"-checks", "errwrap", pkg}, &out, &errb); code != 0 {
		t.Errorf("errwrap-only run exit = %d, want 0 (stdout: %s)", code, out.String())
	}
	out.Reset()
	errb.Reset()
	if code := run([]string{"-checks", "panicdiscipline", pkg}, &out, &errb); code != 1 {
		t.Errorf("panicdiscipline-only run exit = %d, want 1", code)
	}
	out.Reset()
	errb.Reset()
	if code := run([]string{"-checks", "nosuchcheck", pkg}, &out, &errb); code != 2 {
		t.Errorf("unknown check exit = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "nosuchcheck") {
		t.Errorf("usage error does not name the unknown check:\n%s", errb.String())
	}
}

// TestBaselineRoundTrip records a violating package's findings as a baseline
// and verifies the same run filtered through it is clean, while a different
// violation stays fresh.
func TestBaselineRoundTrip(t *testing.T) {
	const pkg = "../../internal/lint/testdata/src/panicdiscipline"
	bp := filepath.Join(t.TempDir(), "baseline.json")

	var out, errb bytes.Buffer
	if code := run([]string{"-write-baseline", bp, pkg}, &out, &errb); code != 0 {
		t.Fatalf("write-baseline exit = %d, want 0 (stderr: %s)", code, errb.String())
	}
	b, err := lint.ReadBaseline(bp)
	if err != nil {
		t.Fatalf("ReadBaseline: %v", err)
	}
	if b.Version != lint.BaselineVersion || len(b.Entries) == 0 {
		t.Fatalf("baseline = %+v, want version %s with entries", b, lint.BaselineVersion)
	}

	out.Reset()
	errb.Reset()
	if code := run([]string{"-baseline", bp, pkg}, &out, &errb); code != 0 {
		t.Errorf("baselined run exit = %d, want 0 (stdout: %s)", code, out.String())
	}
	if out.Len() != 0 {
		t.Errorf("baselined run produced output: %s", out.String())
	}

	// A package whose findings are NOT in the baseline still fails.
	out.Reset()
	errb.Reset()
	if code := run([]string{"-baseline", bp, "../../internal/lint/testdata/src/errwrap"}, &out, &errb); code != 1 {
		t.Errorf("fresh-findings run exit = %d, want 1", code)
	}

	var both bytes.Buffer
	if code := run([]string{"-baseline", bp, "-write-baseline", bp, pkg}, &both, &both); code != 2 {
		t.Errorf("-baseline with -write-baseline exit = %d, want 2", code)
	}
}

// TestCommittedBaselineIsEmpty pins the repo contract: all real findings are
// fixed in-tree, so the committed baseline carries no debt.
func TestCommittedBaselineIsEmpty(t *testing.T) {
	b, err := lint.ReadBaseline("../../.sparselint-baseline.json")
	if err != nil {
		t.Fatalf("ReadBaseline: %v", err)
	}
	if len(b.Entries) != 0 {
		t.Errorf("committed baseline carries %d entries; fix the findings instead of baselining them", len(b.Entries))
	}
}
