// Command graphgen generates graphs from the bounded-β families and writes
// them in the library's text edge-list format.
//
// Usage:
//
//	graphgen -family unitdisk -n 10000 -avgdeg 64 -seed 1 -out g.txt
//	graphgen -family diversity4 -n 1000000 -avgdeg 256 -stream -out huge.txt
//
// Families: line, unitdisk, quasidisk, interval, diversity<k>
// (e.g. diversity4), clique, er (Erdős–Rényi).
//
// -stream switches to the huge-graph path for the families with streaming
// generators (diversity<k>, er): the edge multiset is streamed into the
// chunked two-pass CSR builder, so peak memory is the CSR plus one chunk —
// the full edge list is never materialized. The output graph is identical
// to the materializing path for the same parameters.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/cli"
	"repro/internal/gen"
	"repro/internal/graph"
)

func main() {
	family := flag.String("family", "unitdisk", "graph family: "+strings.Join(cli.Families(), ", "))
	n := flag.Int("n", 1000, "approximate vertex count")
	avgDeg := flag.Float64("avgdeg", 32, "target average degree")
	seed := flag.Uint64("seed", 1, "random seed")
	out := flag.String("out", "-", "output file (default stdout)")
	streamMode := flag.Bool("stream", false,
		"stream the generator through the chunked CSR builder (families: "+strings.Join(cli.StreamFamilies(), ", ")+")")
	flag.Parse()

	var (
		g    *graph.Static
		beta int
		err  error
	)
	if *streamMode {
		var s gen.EdgeStreamer
		s, beta, err = cli.MakeStream(*family, *n, *avgDeg, *seed)
		if err == nil {
			g = gen.BuildStream(s, graph.ChunkedOptions{})
		}
	} else {
		g, beta, err = cli.MakeGraph(*family, *n, *avgDeg, *seed)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "graphgen: %v\n", err)
		os.Exit(2)
	}

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "graphgen: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	bw := bufio.NewWriterSize(w, 1<<20)
	fmt.Fprintf(bw, "# family=%s n=%d m=%d beta<=%d seed=%d\n", *family, g.N(), g.M(), beta, *seed)
	if err := graph.WriteText(bw, g); err != nil {
		fmt.Fprintf(os.Stderr, "graphgen: %v\n", err)
		os.Exit(1)
	}
	if err := bw.Flush(); err != nil {
		fmt.Fprintf(os.Stderr, "graphgen: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "graphgen: wrote %s graph: n=%d m=%d certified β ≤ %d\n", *family, g.N(), g.M(), beta)
}
