// Command graphgen generates graphs from the bounded-β families and writes
// them in the library's text edge-list format.
//
// Usage:
//
//	graphgen -family unitdisk -n 10000 -avgdeg 64 -seed 1 -out g.txt
//
// Families: line, unitdisk, quasidisk, interval, diversity<k>
// (e.g. diversity4), clique, er (Erdős–Rényi).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/cli"
	"repro/internal/graph"
)

func main() {
	family := flag.String("family", "unitdisk", "graph family: "+strings.Join(cli.Families(), ", "))
	n := flag.Int("n", 1000, "approximate vertex count")
	avgDeg := flag.Float64("avgdeg", 32, "target average degree")
	seed := flag.Uint64("seed", 1, "random seed")
	out := flag.String("out", "-", "output file (default stdout)")
	flag.Parse()

	g, beta, err := cli.MakeGraph(*family, *n, *avgDeg, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "graphgen: %v\n", err)
		os.Exit(2)
	}

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "graphgen: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	fmt.Fprintf(w, "# family=%s n=%d m=%d beta<=%d seed=%d\n", *family, g.N(), g.M(), beta, *seed)
	if err := graph.WriteText(w, g); err != nil {
		fmt.Fprintf(os.Stderr, "graphgen: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "graphgen: wrote %s graph: n=%d m=%d certified β ≤ %d\n", *family, g.N(), g.M(), beta)
}
