// Command matchcli computes matchings on a graph in the library's text
// edge-list format and reports sizes and timings.
//
// Usage:
//
//	matchcli -in graph.txt -algo approx -beta 5 -eps 0.2 [-workers 8] [-sparsifier edcs]
//
// Algorithms: greedy (maximal, 2-approx), approx (the paper's sparsify +
// bounded-augmentation pipeline), phases (sparsify + Hopcroft–Karp-style
// disjoint phases), exact (Edmonds blossom), all. -workers shards the
// sparsifier construction and the phase discovery over a worker pool.
// -sparsifier picks the sparsification backend of approx/phases: gdelta
// (Theorem 2.1 random marking, needs bounded β) or edcs
// (edge-degree-constrained subgraph, arbitrary graphs).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/matching"
	"repro/internal/params"
)

func main() {
	in := flag.String("in", "-", "input graph file (default stdin)")
	algo := flag.String("algo", "all", "greedy | approx | phases | exact | all")
	beta := flag.Int("beta", 2, "neighborhood independence bound (approx/phases)")
	eps := flag.Float64("eps", 0.2, "approximation parameter (approx/phases)")
	seed := flag.Uint64("seed", 1, "random seed")
	workers := flag.Int("workers", 1, "worker count for sparsify + phase discovery (0 = GOMAXPROCS)")
	sparsifier := flag.String("sparsifier", "gdelta",
		fmt.Sprintf("sparsifier backend for approx/phases: %s", strings.Join(core.BackendNames(), " | ")))
	relabel := flag.String("relabel", "none",
		"cache-locality vertex relabeling for the phase engine: none | degree | bfs | rcm (output is bit-identical either way)")
	flag.Parse()

	ordering, err := graph.ParseOrdering(*relabel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "matchcli: %v\n", err)
		os.Exit(2)
	}

	r := os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			fmt.Fprintf(os.Stderr, "matchcli: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		r = f
	}
	g, err := graph.ReadText(r)
	if err != nil {
		fmt.Fprintf(os.Stderr, "matchcli: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("graph: n=%d m=%d maxdeg=%d\n", g.N(), g.M(), g.MaxDegree())

	backend, err := core.BackendByName(*sparsifier, *workers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "matchcli: %v\n", err)
		os.Exit(2)
	}
	fmt.Printf("sparsifier: %s (auglen=%d", backend.Name(), params.AugLen(*eps))
	for _, p := range backend.Params(*beta, *eps) {
		fmt.Printf(" %s=%v", p.Name, p.Value)
	}
	fmt.Printf(")\n")

	matchers, err := cli.MatchersOpts(*algo, *sparsifier, matching.Options{Workers: *workers, Relabel: ordering})
	if err != nil {
		fmt.Fprintf(os.Stderr, "matchcli: %v\n", err)
		os.Exit(2)
	}
	for _, m := range matchers {
		start := time.Now()
		res := m.Run(g, *beta, *eps, *seed)
		dur := time.Since(start)
		if err := matching.Verify(g, res); err != nil {
			fmt.Fprintf(os.Stderr, "matchcli: %s produced invalid matching: %v\n", m.Name, err)
			os.Exit(1)
		}
		fmt.Printf("%-8s size=%-8d time=%v\n", m.Name, res.Size(), dur.Round(time.Microsecond))
	}
}
