// Command sparsebench regenerates the evaluation tables and figure series
// of the reproduction (T1–T10, F1–F3 in DESIGN.md).
//
// Usage:
//
//	sparsebench [-quick] [-seed N] [-experiment T1,T5,F2 | -list]
//
// Without -experiment it runs the full suite in order.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/harness"
)

func main() {
	quick := flag.Bool("quick", false, "run reduced-size instances (seconds instead of minutes)")
	seed := flag.Uint64("seed", 1, "master seed for all randomness")
	expFlag := flag.String("experiment", "", "comma-separated experiment ids (default: all)")
	list := flag.Bool("list", false, "list available experiments and exit")
	format := flag.String("format", "text", "output format: text | csv")
	flag.Parse()

	if *list {
		for _, e := range harness.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return
	}

	cfg := harness.Config{Quick: *quick, Seed: *seed}
	var selected []harness.Experiment
	if *expFlag == "" {
		selected = harness.All()
	} else {
		for _, id := range strings.Split(*expFlag, ",") {
			e, ok := harness.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "sparsebench: unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	if *format == "csv" {
		for _, e := range selected {
			for _, tbl := range e.Run(cfg) {
				if err := tbl.RenderCSV(os.Stdout); err != nil {
					fmt.Fprintf(os.Stderr, "sparsebench: %v\n", err)
					os.Exit(1)
				}
			}
		}
		return
	}

	mode := "full"
	if *quick {
		mode = "quick"
	}
	fmt.Printf("sparsematch evaluation suite (%s mode, seed %d)\n\n", mode, *seed)
	for _, e := range selected {
		start := time.Now()
		tables := e.Run(cfg)
		for _, tbl := range tables {
			tbl.Render(os.Stdout)
		}
		fmt.Printf("   [%s finished in %v]\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}
