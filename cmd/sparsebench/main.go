// Command sparsebench regenerates the evaluation tables and figure series
// of the reproduction (T1–T19, F1–F3 in DESIGN.md).
//
// Usage:
//
//	sparsebench [-quick] [-seed N] [-experiment T1,T5,F2 | -list]
//	sparsebench -format json [-benchout BENCH_matching.json] [-relabel rcm]
//	sparsebench -compare BENCH_matching.json [-tolerance 0.25]
//	sparsebench -experiment T21 [-t21-edges 100000000] ...
//	sparsebench [-cpuprofile cpu.out] [-memprofile mem.out] ...
//
// Without -experiment it runs the full suite in order. `-format json` runs
// the matching benchmark gate instead of the tables: it measures the phase
// engine's hot paths per worker count and sparsifier backend with
// testing.Benchmark, the streamed chunked-build ingest rate (T21-build
// rows), the RCM-relabeled phase sweep (T5-phase-rcm rows), plus the
// serving path's throughput and latency (T19-serve rows, million-vertex
// instance), and writes a machine-readable BenchReport (schema
// sparsematch/bench/v4) to -benchout. Parallel speedups are reported only
// on multi-CPU machines — single-CPU runs emit null speedups ("n/a").
//
// `-relabel` runs the gate's T5-phase rows under a cache-locality vertex
// ordering (none | degree | bfs | rcm); the setting is recorded in the
// report and -compare refuses to judge across different orderings.
// `-t21-edges` overrides the T21 huge-graph arc target (default 2·10⁶
// quick, 10⁸ full) — the headline run is
// `sparsebench -experiment T21 -t21-edges 100000000`.
//
// `-compare FILE` is the regression gate: it runs the same benchmark and
// compares each row's ns/op and allocs/op against the committed report in
// FILE, failing (exit 1) on any regression beyond -tolerance. Rows are
// compared only when the machine blocks (num_cpu, gomaxprocs) and quick
// mode agree — otherwise the gate prints why and exits 0, because timing
// across different hardware measures the machine, not the change. A
// zero-alloc baseline row regresses on its first introduced allocation at
// any tolerance.
//
// The pprof flags wrap whichever mode runs; see DESIGN.md §Performance for
// the profiling workflow.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/graph"
	"repro/internal/harness"
)

func main() {
	quick := flag.Bool("quick", false, "run reduced-size instances (seconds instead of minutes)")
	seed := flag.Uint64("seed", 1, "master seed for all randomness")
	expFlag := flag.String("experiment", "", "comma-separated experiment ids (default: all)")
	list := flag.Bool("list", false, "list available experiments and exit")
	format := flag.String("format", "text", "output format: text | csv | json (json runs the benchmark gate)")
	benchOut := flag.String("benchout", "BENCH_matching.json", "output file for -format json")
	compare := flag.String("compare", "", "run the benchmark gate and compare against this committed report; exit 1 on regression")
	tolerance := flag.Float64("tolerance", harness.DefaultBenchTolerance, "fractional slowdown forgiven by -compare before failing")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile at exit to this file")
	relabel := flag.String("relabel", "none",
		"cache-locality vertex relabeling for the bench gate's phase rows: none | degree | bfs | rcm")
	hugeEdges := flag.Int64("t21-edges", 0,
		"override the T21 huge-graph arc target (0 = mode default: 2e6 quick, 1e8 full)")
	flag.Parse()

	ordering, err := graph.ParseOrdering(*relabel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sparsebench: %v\n", err)
		os.Exit(2)
	}

	if *list {
		for _, e := range harness.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sparsebench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "sparsebench: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "sparsebench: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the steady-state heap before snapshotting
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "sparsebench: %v\n", err)
			}
		}()
	}

	cfg := harness.Config{Quick: *quick, Seed: *seed, Relabel: ordering, HugeEdges: *hugeEdges}

	if *compare != "" {
		code := runCompare(cfg, *compare, *tolerance)
		if *cpuProfile != "" {
			pprof.StopCPUProfile() // os.Exit skips the deferred stop
		}
		os.Exit(code)
	}

	if *format == "json" {
		rep := harness.MatchingBench(cfg)
		f, err := os.Create(*benchOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sparsebench: %v\n", err)
			os.Exit(1)
		}
		if err := rep.WriteJSON(f); err != nil {
			f.Close()
			fmt.Fprintf(os.Stderr, "sparsebench: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "sparsebench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("bench gate (%s, %d cpu, gomaxprocs %d) -> %s\n",
			rep.GoVersion, rep.NumCPU, rep.GoMaxProcs, *benchOut)
		for _, r := range rep.Results {
			speedup := "n/a" // unmeasurable (single-CPU machine)
			if r.SpeedupVs1W != nil {
				speedup = fmt.Sprintf("%.2fx", *r.SpeedupVs1W)
			}
			extra := ""
			if r.EdgesPerSec > 0 {
				extra = fmt.Sprintf("  %.1f Medges/s", r.EdgesPerSec/1e6)
			}
			fmt.Printf("  %-12s %-7s w=%d  %12d ns/op  %4d allocs/op  speedup %-6s |M|=%d%s\n",
				r.Experiment, r.Backend, r.Workers, r.NsPerOp, r.AllocsPerOp, speedup, r.MatchSize, extra)
		}
		return
	}

	var selected []harness.Experiment
	if *expFlag == "" {
		selected = harness.All()
	} else {
		for _, id := range strings.Split(*expFlag, ",") {
			e, ok := harness.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "sparsebench: unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	if *format == "csv" {
		for _, e := range selected {
			for _, tbl := range e.Run(cfg) {
				if err := tbl.RenderCSV(os.Stdout); err != nil {
					fmt.Fprintf(os.Stderr, "sparsebench: %v\n", err)
					os.Exit(1)
				}
			}
		}
		return
	}

	mode := "full"
	if *quick {
		mode = "quick"
	}
	fmt.Printf("sparsematch evaluation suite (%s mode, seed %d)\n\n", mode, *seed)
	for _, e := range selected {
		start := time.Now()
		tables := e.Run(cfg)
		for _, tbl := range tables {
			tbl.Render(os.Stdout)
		}
		fmt.Printf("   [%s finished in %v]\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}

// runCompare runs the bench gate and judges it against the committed
// report at path. Exit codes: 0 pass or skip (machine mismatch), 1
// regression beyond tolerance, 2 unreadable baseline.
func runCompare(cfg harness.Config, path string, tolerance float64) int {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sparsebench: %v\n", err)
		return 2
	}
	base, err := harness.ReadBenchReport(f)
	f.Close()
	if err != nil {
		fmt.Fprintf(os.Stderr, "sparsebench: %s: %v\n", path, err)
		return 2
	}
	cfg.Quick = base.Quick // measure what the baseline measured
	fresh := harness.MatchingBench(cfg)
	cmp := harness.CompareBenchReports(base, fresh, tolerance)
	if !cmp.MachineMatch {
		fmt.Printf("bench compare vs %s: SKIP (%s)\n", path, cmp.Why)
		return 0
	}
	for _, row := range cmp.MissingRows {
		fmt.Printf("  missing from this run: %s\n", row)
	}
	for _, row := range cmp.NewRows {
		fmt.Printf("  new in this run (no baseline): %s\n", row)
	}
	regs := cmp.Regressions()
	for _, d := range regs {
		fmt.Printf("  REGRESSION %-13s %s: %d -> %d (%.2fx, tolerance %.0f%%)\n",
			d.Metric, d.Row(), d.Old, d.New, d.Ratio, tolerance*100)
	}
	if len(regs) > 0 {
		fmt.Printf("bench compare vs %s: FAIL (%d regressions in %d compared metrics)\n",
			path, len(regs), len(cmp.Deltas))
		return 1
	}
	fmt.Printf("bench compare vs %s: PASS (%d metrics within %.0f%% tolerance)\n",
		path, len(cmp.Deltas), tolerance*100)
	return 0
}
