// Command sparsebench regenerates the evaluation tables and figure series
// of the reproduction (T1–T19, F1–F3 in DESIGN.md).
//
// Usage:
//
//	sparsebench [-quick] [-seed N] [-experiment T1,T5,F2 | -list]
//	sparsebench -format json [-benchout BENCH_matching.json]
//	sparsebench [-cpuprofile cpu.out] [-memprofile mem.out] ...
//
// Without -experiment it runs the full suite in order. `-format json` runs
// the matching benchmark gate instead of the tables: it measures the phase
// engine's hot paths per worker count and sparsifier backend with
// testing.Benchmark, plus the serving path's throughput and latency
// (T19-serve rows, million-vertex instance), and writes a machine-readable
// BenchReport (schema sparsematch/bench/v3) to -benchout. Parallel
// speedups are reported only
// on multi-CPU machines — single-CPU runs emit null speedups ("n/a").
// The pprof flags wrap whichever mode runs; see DESIGN.md §Performance for
// the profiling workflow.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/harness"
)

func main() {
	quick := flag.Bool("quick", false, "run reduced-size instances (seconds instead of minutes)")
	seed := flag.Uint64("seed", 1, "master seed for all randomness")
	expFlag := flag.String("experiment", "", "comma-separated experiment ids (default: all)")
	list := flag.Bool("list", false, "list available experiments and exit")
	format := flag.String("format", "text", "output format: text | csv | json (json runs the benchmark gate)")
	benchOut := flag.String("benchout", "BENCH_matching.json", "output file for -format json")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile at exit to this file")
	flag.Parse()

	if *list {
		for _, e := range harness.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sparsebench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "sparsebench: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "sparsebench: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the steady-state heap before snapshotting
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "sparsebench: %v\n", err)
			}
		}()
	}

	cfg := harness.Config{Quick: *quick, Seed: *seed}

	if *format == "json" {
		rep := harness.MatchingBench(cfg)
		f, err := os.Create(*benchOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sparsebench: %v\n", err)
			os.Exit(1)
		}
		if err := rep.WriteJSON(f); err != nil {
			f.Close()
			fmt.Fprintf(os.Stderr, "sparsebench: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "sparsebench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("bench gate (%s, %d cpu, gomaxprocs %d) -> %s\n",
			rep.GoVersion, rep.NumCPU, rep.GoMaxProcs, *benchOut)
		for _, r := range rep.Results {
			speedup := "n/a" // unmeasurable (single-CPU machine)
			if r.SpeedupVs1W != nil {
				speedup = fmt.Sprintf("%.2fx", *r.SpeedupVs1W)
			}
			fmt.Printf("  %-12s %-7s w=%d  %12d ns/op  %4d allocs/op  speedup %-6s |M|=%d\n",
				r.Experiment, r.Backend, r.Workers, r.NsPerOp, r.AllocsPerOp, speedup, r.MatchSize)
		}
		return
	}

	var selected []harness.Experiment
	if *expFlag == "" {
		selected = harness.All()
	} else {
		for _, id := range strings.Split(*expFlag, ",") {
			e, ok := harness.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "sparsebench: unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	if *format == "csv" {
		for _, e := range selected {
			for _, tbl := range e.Run(cfg) {
				if err := tbl.RenderCSV(os.Stdout); err != nil {
					fmt.Fprintf(os.Stderr, "sparsebench: %v\n", err)
					os.Exit(1)
				}
			}
		}
		return
	}

	mode := "full"
	if *quick {
		mode = "quick"
	}
	fmt.Printf("sparsematch evaluation suite (%s mode, seed %d)\n\n", mode, *seed)
	for _, e := range selected {
		start := time.Now()
		tables := e.Run(cfg)
		for _, tbl := range tables {
			tbl.Render(os.Stdout)
		}
		fmt.Printf("   [%s finished in %v]\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}
