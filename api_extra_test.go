package sparsematch

import "testing"

func TestFacadeDistributedOpts(t *testing.T) {
	g := BoundedDiversity(120, 2, 16, 3)
	opt := DistPipelineOptions{Delta: 3, DeltaAlpha: 5, AugIters: 10}
	m, ps := DistributedMatchingOpts(g, 2, 0.5, opt, 7)
	if err := VerifyMatching(g, m); err != nil {
		t.Fatal(err)
	}
	if ps.Total.Rounds == 0 {
		t.Error("no rounds recorded")
	}
}

func TestFacadeSparsifyMPC(t *testing.T) {
	g := Clique(80)
	sp, stats := SparsifyMPC(g, 3, 8, 5)
	if stats.Rounds != 2 || sp.N() != 80 {
		t.Errorf("MPC facade: rounds=%d n=%d", stats.Rounds, sp.N())
	}
	sp.ForEachEdge(func(u, v int32) {
		if !g.HasEdge(u, v) {
			t.Fatalf("MPC sparsifier edge (%d,%d) not in G", u, v)
		}
	})
}

func TestFacadeDynDistNetwork(t *testing.T) {
	nw := NewDynDistNetwork(80, 3, 9)
	g := Clique(80)
	g.ForEachEdge(func(u, v int32) { nw.Insert(u, v) })
	if nw.Size() == 0 {
		t.Error("dyndist network matched nothing on a clique")
	}
	if err := VerifyMatching(nw.Graph().Snapshot(), nw.Matching()); err != nil {
		t.Fatal(err)
	}
	if nw.MaxLocalWords() >= 79 {
		t.Errorf("local memory %d not below the naive degree 79", nw.MaxLocalWords())
	}
}
