package sparsematch

import "testing"

func TestFacadeDistributedOpts(t *testing.T) {
	g := BoundedDiversity(120, 2, 16, 3)
	opt := DistPipelineOptions{Delta: 3, DeltaAlpha: 5, AugIters: 10}
	m, ps := DistributedMatchingOpts(g, 2, 0.5, opt, 7)
	if err := VerifyMatching(g, m); err != nil {
		t.Fatal(err)
	}
	if ps.Total.Rounds == 0 {
		t.Error("no rounds recorded")
	}
}

func TestFacadeSparsifyMPC(t *testing.T) {
	g := Clique(80)
	sp, stats := SparsifyMPC(g, 3, 8, 5)
	if stats.Rounds != 2 || sp.N() != 80 {
		t.Errorf("MPC facade: rounds=%d n=%d", stats.Rounds, sp.N())
	}
	sp.ForEachEdge(func(u, v int32) {
		if !g.HasEdge(u, v) {
			t.Fatalf("MPC sparsifier edge (%d,%d) not in G", u, v)
		}
	})
}

func TestFacadeDynDistNetwork(t *testing.T) {
	nw := NewDynDistNetwork(80, 3, 9)
	g := Clique(80)
	g.ForEachEdge(func(u, v int32) { nw.Insert(u, v) })
	if nw.Size() == 0 {
		t.Error("dyndist network matched nothing on a clique")
	}
	if err := VerifyMatching(nw.Graph().Snapshot(), nw.Matching()); err != nil {
		t.Fatal(err)
	}
	if nw.MaxLocalWords() >= 79 {
		t.Errorf("local memory %d not below the naive degree 79", nw.MaxLocalWords())
	}
}

func TestFacadeSparsifierBackends(t *testing.T) {
	names := SparsifierBackendNames()
	if len(names) != 2 || names[0] != "gdelta" || names[1] != "edcs" {
		t.Fatalf("SparsifierBackendNames() = %v", names)
	}
	g := Clique(80)
	for _, b := range SparsifierBackends(1) {
		sp, err := SparsifyBackend(g, b.Name(), 1, 0.3, 9)
		if err != nil {
			t.Fatal(err)
		}
		m := MaximumMatching(sp)
		if m.Size() < 30 { // MCM(K80) = 40; both backends must stay close
			t.Errorf("%s: matching on sparsifier = %d, suspiciously small", b.Name(), m.Size())
		}
	}
	if _, err := SparsifyBackend(g, "bogus", 1, 0.3, 9); err == nil {
		t.Error("bogus backend accepted")
	}
}

func TestFacadeMatchOptionsBackend(t *testing.T) {
	g := Clique(120)
	for _, backend := range []string{"", "gdelta", "edcs"} {
		m := ApproximateMatchingOpts(g, 1, 0.25, 3, MatchOptions{Workers: 2, Sparsifier: backend})
		if err := VerifyMatching(g, m); err != nil {
			t.Fatalf("backend %q: %v", backend, err)
		}
		if m.Size() < 48 { // (1+eps)-approx of 60
			t.Errorf("backend %q: size %d below the guarantee floor", backend, m.Size())
		}
	}
}

func TestFacadeDistributedEDCS(t *testing.T) {
	g := Clique(40)
	sp, stats := DistributedEDCSSparsifier(g, 0.3, 5)
	if stats.Messages == 0 {
		t.Error("no messages accounted")
	}
	if sp.M() == 0 || sp.M() >= g.M() {
		t.Errorf("EDCS size %d not in (0, %d)", sp.M(), g.M())
	}
	m, ps := DistributedMatchingOpts(g, 1, 0.3, DistPipelineOptions{Sparsifier: "edcs"}, 7)
	if err := VerifyMatching(g, m); err != nil {
		t.Fatal(err)
	}
	if ps.Sparsify.Rounds == 0 {
		t.Error("sparsify phase reported zero rounds")
	}
}
