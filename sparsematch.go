// Package sparsematch is a Go implementation of the unified matching
// sparsification approach of Milenković and Solomon (SPAA 2020) for graphs
// of bounded neighborhood independence.
//
// The neighborhood independence number β(G) is the size of the largest
// independent set inside any vertex's neighborhood. Many practically
// important graph families have small β: line graphs (β ≤ 2), unit-disk
// graphs (β ≤ 5), claw-free graphs, graphs of bounded growth or diversity —
// and such graphs can be dense (the n-clique has β = 1).
//
// The core primitive is the random matching sparsifier G_Δ: every vertex
// marks Δ = Θ((β/ε)·log(1/ε)) random incident edges, and G_Δ is the union
// of the marked edges. With high probability G_Δ preserves the maximum
// matching size within a factor 1+ε while having only O(|MCM|·Δ) edges and
// arboricity at most 2Δ. Because each vertex chooses its marks
// independently, the construction is local — it runs in sublinear time
// sequentially, in one communication round distributively, and supports a
// fully dynamic matcher with worst-case update budget O((β/ε³)·log(1/ε)).
//
// Quick start:
//
//	g := sparsematch.UnitDisk(10_000, 0.03, 1)          // β ≤ 5
//	m := sparsematch.ApproximateMatching(g, 5, 0.2, 42) // (1+ε)-approx MCM
//	fmt.Println(m.Size())
//
// The subsystems live under internal/ (graph substrates, matching
// algorithms, the sparsifier core, the distributed simulator, the dynamic
// maintainer); this package is the stable facade over them.
package sparsematch

import (
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/matching"
)

// Re-exported core types. Graph is an immutable undirected graph in
// adjacency-array (CSR) form; Matching is a set of vertex-disjoint edges.
type (
	// Graph is an immutable undirected graph in adjacency-array form.
	Graph = graph.Static
	// DynamicGraph is a mutable graph with O(1) expected-time updates.
	DynamicGraph = graph.Dynamic
	// Edge is an undirected edge.
	Edge = graph.Edge
	// Matching is a set of vertex-disjoint edges with mate lookup.
	Matching = matching.Matching
	// Builder accumulates edges into a Graph.
	Builder = graph.Builder
)

// NewBuilder returns a Builder for a graph on n vertices.
func NewBuilder(n int) *Builder { return graph.NewBuilder(n) }

// FromEdges builds a Graph on n vertices from an edge list, dropping
// duplicates and self-loops.
func FromEdges(n int, edges []Edge) *Graph { return graph.FromEdges(n, edges) }

// DeltaFor returns the per-vertex mark count with the constants of the
// paper's proof (Claim 2.7): ⌈20·(β/ε)·ln(24/ε)⌉.
func DeltaFor(beta int, eps float64) int { return core.DeltaFor(beta, eps) }

// DeltaLean returns the practically calibrated mark count
// ⌈(β/ε)·ln(24/ε)⌉, the library default (see EXPERIMENTS.md, T1/F2).
func DeltaLean(beta int, eps float64) int { return core.DeltaLean(beta, eps) }

// Sparsify builds the (1+ε)-matching sparsifier G_Δ of g — the default
// "gdelta" backend — for a graph with neighborhood independence at most
// beta, using Δ = DeltaLean(beta, eps). The approximation guarantee holds
// with high probability; the size bound |E(G_Δ)| ≤ 4·|MCM(g)|·Δ and
// arboricity bound 2Δ hold deterministically. SparsifyBackend selects other
// backends by name.
func Sparsify(g *Graph, beta int, eps float64, seed uint64) *Graph {
	return core.Sparsify(g, core.DeltaLean(beta, eps), seed)
}

// SparsifyDelta builds the G_Δ backend's sparsifier with an explicit
// per-vertex mark count.
func SparsifyDelta(g *Graph, delta int, seed uint64) *Graph {
	return core.Sparsify(g, delta, seed)
}

// SparsifyBackend builds the sparsifier of g with the named backend:
// "gdelta" (or "") for the paper's G_Δ random marking, "edcs" for the
// edge-degree-constrained subgraph, whose 3/2+O(λ) guarantee holds on
// arbitrary graphs — no bound on beta needed (the backend ignores it).
func SparsifyBackend(g *Graph, backend string, beta int, eps float64, seed uint64) (*Graph, error) {
	b, err := core.BackendByName(backend, 0)
	if err != nil {
		return nil, err
	}
	return b.Sparsify(g, beta, eps, seed), nil
}

// ApproximateMatching computes a (1+ε)-approximate maximum matching of a
// graph with neighborhood independence at most beta by the Theorem 3.1
// pipeline: sparsify, then run the bounded-length augmentation matcher on
// the sparsifier. The work after sparsification is proportional to the
// sparsifier size O(n·Δ), independent of |E(g)|.
func ApproximateMatching(g *Graph, beta int, eps float64, seed uint64) *Matching {
	sp := Sparsify(g, beta, eps, seed)
	return matching.ApproxGeneral(sp, eps, seed+1)
}

// MaximumMatching computes an exact maximum matching via Edmonds' blossom
// algorithm. Use it as ground truth; it reads the whole graph.
func MaximumMatching(g *Graph) *Matching { return matching.MaximumGeneral(g) }

// MaximalMatching computes a greedy maximal matching (a 2-approximate MCM)
// in O(n + m) time.
func MaximalMatching(g *Graph) *Matching { return matching.Greedy(g) }

// VerifyMatching checks that m is a valid matching in g.
func VerifyMatching(g *Graph, m *Matching) error { return matching.Verify(g, m) }

// ExactBeta computes the neighborhood independence number exactly
// (exponential time; small graphs only — validate generators and inputs).
func ExactBeta(g *Graph) int { return core.ExactBeta(g) }

// BetaLowerBound returns a greedy lower bound on β(G) in polynomial time.
func BetaLowerBound(g *Graph) int { return core.GreedyBetaLowerBound(g) }

// Degeneracy returns the degeneracy of g (an upper bound on arboricity)
// and a witnessing elimination order.
func Degeneracy(g *Graph) (int, []int32) { return core.Degeneracy(g) }
