// MPC-style cluster matching: the graph is too large for any one machine.
//
// A batch system holds a huge interaction graph sharded across machines.
// To compute a near-maximum matching, shipping all edges to one machine is
// impossible; instead, the cluster runs the two-round sparsification of
// the MPC instantiation (each machine forwards only Δ tagged candidates
// per vertex), after which the coordinator holds just the O(nΔ)-edge
// sparsifier — small enough to finish the matching locally.
package main

import (
	"fmt"

	sparsematch "repro"
)

func main() {
	const (
		users    = 5000
		beta     = 2
		eps      = 0.3
		machines = 32
	)
	g := sparsematch.BoundedDiversity(users, beta, 256, 3)
	delta := sparsematch.DeltaLean(beta, eps)
	fmt.Printf("interaction graph: n=%d m=%d (sharded over %d machines, ~%d edges each)\n",
		g.N(), g.M(), machines, g.M()/machines)

	sp, stats := sparsematch.SparsifyMPC(g, delta, machines, 17)
	fmt.Printf("\nMPC sparsification (%d rounds):\n", stats.Rounds)
	fmt.Printf("  max machine input:    %7d words\n", stats.MaxInputLoad)
	fmt.Printf("  max machine sent:     %7d words/round\n", stats.MaxSent)
	fmt.Printf("  max machine received: %7d words/round\n", stats.MaxReceived)
	fmt.Printf("  coordinator holds:    %7d words (%.1fx below the full graph)\n",
		stats.Coordinator, float64(g.M())/float64(stats.Coordinator))

	m := sparsematch.MaximumMatching(sp) // fits on the coordinator
	exact := sparsematch.MaximumMatching(g)
	fmt.Printf("\nmatching on the coordinator: %d pairs; exact: %d (ratio %.4f, target ≤ %.2f)\n",
		m.Size(), exact.Size(), float64(exact.Size())/float64(m.Size()), 1+eps)
}
