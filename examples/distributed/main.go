// Distributed matching on a simulated sensor network.
//
// Sensors pair up with a neighbor to cross-validate readings. The network
// is a unit-disk graph (β ≤ 5) and communication is expensive, so the
// pairing must be computed with few rounds and few messages.
//
// This example runs the paper's distributed pipeline (Theorems 3.2/3.3) on
// the bundled synchronous message-passing simulator and prints the
// round/message breakdown, contrasting the sublinear message count with a
// direct algorithm on the full graph.
package main

import (
	"fmt"

	sparsematch "repro"
)

func main() {
	const (
		sensors = 3000
		radius  = 0.065 // dense deployment: ~40 neighbors per sensor
		beta    = 5
		eps     = 0.5
	)
	g := sparsematch.UnitDisk(sensors, radius, 21)
	fmt.Printf("sensor network: n=%d links=%d avgdeg=%.1f\n\n", g.N(), g.M(), g.AvgDegree())

	// Modest explicit pipeline parameters (the theory defaults are
	// conservative: Δ = DeltaLean(5, 0.5) = 39 would exceed most degrees
	// here, making the sparsifier the whole graph).
	opt := sparsematch.DistPipelineOptions{Delta: 6, DeltaAlpha: 10, AugIters: 40}
	m, ps := sparsematch.DistributedMatchingOpts(g, beta, eps, opt, 33)
	if err := sparsematch.VerifyMatching(g, m); err != nil {
		panic(err)
	}
	exact := sparsematch.MaximumMatching(g)

	fmt.Println("phase            rounds   messages       bits")
	row := func(name string, s sparsematch.DistStats) {
		fmt.Printf("%-15s %7d %10d %10d\n", name, s.Rounds, s.Messages, s.Bits)
	}
	row("sparsify G_Δ", ps.Sparsify)
	row("compose G̃_Δ", ps.Compose)
	row("Linial color", ps.Coloring)
	row("color MM", ps.MM)
	row("augment", ps.Aug)
	row("TOTAL", ps.Total)

	fmt.Printf("\npaired %d of %d possible (ratio %.3f)\n",
		m.Size(), exact.Size(), float64(exact.Size())/float64(m.Size()))
	fmt.Printf("message economy: pipeline used %d messages; the graph has %d edges,\n",
		ps.Total.Messages, g.M())
	fmt.Printf("so any direct Ω(m)-message algorithm sends ≥ %d per round it runs.\n", g.M())
}
