// Dynamic assignment maintenance under churn.
//
// A gig-work platform matches couriers to orders. Compatibility edges
// appear and disappear continuously (couriers move, orders expire), and the
// platform must keep a near-maximum assignment at all times without
// recomputing from scratch on every change.
//
// Compatibility is geographic, so the compatibility graph is an
// intersection graph with small neighborhood independence. This example
// uses the fully dynamic maintainer (Theorem 3.5): worst-case-bounded work
// per update, (1+ε)-approximate assignment throughout — even though the
// churn here is adversarial (it preferentially destroys assigned pairs,
// the adaptive-adversary model).
package main

import (
	"fmt"
	"math/rand/v2"

	sparsematch "repro"
)

func main() {
	const (
		entities = 600 // couriers + orders as one vertex set
		beta     = 2
		eps      = 0.35
	)
	// Initial compatibility graph: bounded-diversity (each entity belongs
	// to a few geographic zones; zones are cliques of compatibility).
	g := sparsematch.BoundedDiversity(entities, beta, 24, 3)
	fmt.Printf("compatibility graph: n=%d m=%d avgdeg=%.1f\n", g.N(), g.M(), g.AvgDegree())

	dm := sparsematch.NewDynamicMatcher(entities, sparsematch.DynamicOptions{Beta: beta, Eps: eps}, 11)
	g.ForEachEdge(func(u, v int32) { dm.Insert(u, v) })
	dm.ForceRecompute()
	fmt.Printf("initial assignment: %d pairs (budget %d work units/update)\n\n", dm.Size(), dm.Budget())

	// Churn: each tick destroys one currently-assigned pair (adaptive —
	// it looks at the live assignment) and one random edge, then inserts
	// two fresh compatibility edges.
	rng := rand.New(rand.NewPCG(5, 9))
	edges := g.Edges()
	for tick := 1; tick <= 3000; tick++ {
		if assigned := dm.Matching().Edges(); len(assigned) > 0 {
			e := assigned[rng.IntN(len(assigned))]
			dm.Delete(e.U, e.V)
		}
		e := edges[rng.IntN(len(edges))]
		dm.Delete(e.U, e.V)
		for k := 0; k < 2; k++ {
			u, v := int32(rng.IntN(entities)), int32(rng.IntN(entities))
			if u != v {
				dm.Insert(u, v)
			}
		}
		if tick%1000 == 0 {
			snap := dm.Graph().Snapshot()
			exact := sparsematch.MaximumMatching(snap).Size()
			fmt.Printf("tick %5d: assigned=%4d exact=%4d quality=%.3f m=%d\n",
				tick, dm.Size(), exact, float64(dm.Size())/float64(exact), snap.M())
		}
	}

	metr := dm.Metrics()
	fmt.Printf("\n%d updates: avg %.1f units, worst %d units, overrun %d, %d recomputes\n",
		metr.Updates, float64(metr.UnitsTotal)/float64(metr.Updates),
		metr.MaxUnitsUpdate, metr.MaxOverrun, metr.Recomputes)
}
