// Wireless link scheduling on a unit-disk network.
//
// Radios are points in the plane; two radios within transmission range can
// form a link, and two links sharing a radio interfere. A maximum matching
// in the unit-disk connectivity graph is therefore a largest set of
// simultaneously active interference-free point-to-point links — the
// classic scheduling motivation for matchings in bounded-independence
// graphs (unit-disk graphs have β ≤ 5).
//
// The example schedules several rounds: in each round it matches the radios
// that still have pending traffic, using the sparsifier pipeline so each
// round costs O(n·Δ) instead of O(m) on the dense deployment.
package main

import (
	"fmt"

	sparsematch "repro"
)

func main() {
	const (
		radios = 4000
		radius = 0.05 // dense deployment: ~ 30 neighbors per radio
		beta   = 5    // unit-disk neighborhood independence bound
		eps    = 0.25
	)
	g := sparsematch.UnitDisk(radios, radius, 7)
	fmt.Printf("deployment: %d radios, %d potential links, avg degree %.1f\n",
		g.N(), g.M(), g.AvgDegree())

	// Every radio starts with 3 pending frames; each scheduled link drains
	// one frame from both endpoints.
	pending := make([]int, radios)
	for i := range pending {
		pending[i] = 3
	}

	totalScheduled := 0
	for round := 1; ; round++ {
		// Restrict to radios with pending traffic.
		keep := make([]bool, radios)
		active := 0
		for v, p := range pending {
			if p > 0 {
				keep[v] = true
				active++
			}
		}
		if active < 2 {
			fmt.Printf("drained after %d rounds, %d link-activations scheduled\n",
				round-1, totalScheduled)
			return
		}
		sub := inducedActive(g, keep)
		m := sparsematch.ApproximateMatching(sub, beta, eps, uint64(round))
		if m.Size() == 0 {
			fmt.Printf("no schedulable links left after %d rounds (%d radios stranded)\n",
				round-1, active)
			return
		}
		for _, e := range m.Edges() {
			pending[e.U]--
			pending[e.V]--
		}
		totalScheduled += m.Size()
		fmt.Printf("round %2d: scheduled %4d links (%d radios still pending)\n",
			round, m.Size(), active)
	}
}

// inducedActive returns the subgraph on the same vertex set keeping only
// edges between radios that still have pending traffic.
func inducedActive(g *sparsematch.Graph, keep []bool) *sparsematch.Graph {
	b := sparsematch.NewBuilder(g.N())
	g.ForEachEdge(func(u, v int32) {
		if keep[u] && keep[v] {
			b.AddEdge(u, v)
		}
	})
	return b.Build()
}
