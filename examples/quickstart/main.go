// Quickstart: build a dense bounded-β graph, sparsify it, and compute a
// (1+ε)-approximate maximum matching — the minimal end-to-end use of the
// sparsematch public API.
package main

import (
	"fmt"

	sparsematch "repro"
)

func main() {
	// A union of cliques where every vertex joins at most 2 cliques:
	// diversity ≤ 2, hence neighborhood independence β ≤ 2, yet the graph
	// is dense (average degree ≈ 500).
	const n, beta = 2000, 2
	g := sparsematch.BoundedDiversity(n, beta, 256, 1)
	fmt.Printf("graph: n=%d m=%d avgdeg=%.1f β≤%d\n", g.N(), g.M(), g.AvgDegree(), beta)

	// The sparsifier keeps only Δ = O((β/ε)·log(1/ε)) edges per vertex...
	const eps = 0.2
	sp := sparsematch.Sparsify(g, beta, eps, 42)
	fmt.Printf("sparsifier: m=%d (%.1f%% of G), Δ=%d\n",
		sp.M(), 100*float64(sp.M())/float64(g.M()), sparsematch.DeltaLean(beta, eps))

	// ...yet preserves the maximum matching within 1+ε w.h.p.
	approx := sparsematch.ApproximateMatching(g, beta, eps, 42)
	if err := sparsematch.VerifyMatching(g, approx); err != nil {
		panic(err)
	}
	exact := sparsematch.MaximumMatching(g)
	fmt.Printf("matching: approx=%d exact=%d ratio=%.4f (target ≤ %.2f)\n",
		approx.Size(), exact.Size(),
		float64(exact.Size())/float64(approx.Size()), 1+eps)
}
