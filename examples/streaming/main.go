// Semi-streaming matching on an edge stream that is too large to store.
//
// A monitoring system observes pairwise-conflict events between services
// (edges of a dense conflict graph) as an unbounded stream and must, at any
// moment, produce a near-maximum set of disjoint conflict pairs to audit.
// Storing the graph costs Ω(m); the streaming sparsifier keeps only a
// reservoir of Δ uniform incident edges per service — O(nΔ) memory — and
// still preserves the maximum matching within 1+ε (Theorem 2.1, whose
// distribution the reservoirs realize exactly).
package main

import (
	"fmt"

	sparsematch "repro"
)

func main() {
	const (
		services = 3000
		beta     = 2 // conflicts cluster into ≤2 zones per service
		eps      = 0.3
	)
	// The "stream": edges of a dense bounded-β conflict graph, arriving in
	// canonical order (the sampler is order-oblivious).
	g := sparsematch.BoundedDiversity(services, beta, 256, 7)
	delta := sparsematch.DeltaLean(beta, eps)
	fmt.Printf("conflict stream: %d services, %d edges; reservoir Δ=%d\n", g.N(), g.M(), delta)

	s := sparsematch.NewStreamingSparsifier(services, delta, 42)
	streamed := 0
	g.ForEachEdge(func(u, v int32) {
		s.Push(u, v)
		streamed++
		if streamed%200000 == 0 {
			fmt.Printf("  ... %7d edges streamed, memory %d words\n", streamed, s.MemoryWords())
		}
	})

	sp := s.Sparsifier()
	fmt.Printf("stream done: %d edges seen, %d words held (%.1fx below storing the graph)\n",
		s.Edges(), s.MemoryWords(), float64(g.M())/float64(s.MemoryWords()))

	m := sparsematch.MaximumMatching(sp) // the sparsifier fits in memory
	exact := sparsematch.MaximumMatching(g)
	fmt.Printf("matching on sparsifier: %d pairs; exact on full graph: %d (ratio %.4f, target ≤ %.2f)\n",
		m.Size(), exact.Size(), float64(exact.Size())/float64(m.Size()), 1+eps)
}
