package sparsematch_test

import (
	"fmt"

	sparsematch "repro"
)

// The basic flow: build a dense bounded-β graph, sparsify, match.
func ExampleApproximateMatching() {
	g := sparsematch.Clique(201) // β = 1, m = 20100
	m := sparsematch.ApproximateMatching(g, 1, 0.2, 42)
	exact := sparsematch.MaximumMatching(g)
	fmt.Println("valid:", sparsematch.VerifyMatching(g, m) == nil)
	fmt.Println("within 1.2x of exact:", float64(exact.Size()) <= 1.2*float64(m.Size()))
	// Output:
	// valid: true
	// within 1.2x of exact: true
}

// Sparsify keeps O(nΔ) edges of an m-edge graph while preserving the
// maximum matching size.
func ExampleSparsify() {
	g := sparsematch.Clique(400)
	sp := sparsematch.Sparsify(g, 1, 0.3, 7)
	fmt.Println("subgraph of G with far fewer edges:", sp.M() < g.M()/10)
	fmt.Println("matching preserved:",
		sparsematch.MaximumMatching(sp).Size() == sparsematch.MaximumMatching(g).Size())
	// Output:
	// subgraph of G with far fewer edges: true
	// matching preserved: true
}

// DeltaFor gives the proof's conservative mark count; DeltaLean the
// practical calibration (see EXPERIMENTS.md T1).
func ExampleDeltaFor() {
	fmt.Println(sparsematch.DeltaFor(2, 0.5))
	fmt.Println(sparsematch.DeltaLean(2, 0.5))
	// Output:
	// 310
	// 16
}

// The dynamic matcher maintains a near-maximum matching under updates with
// a bounded per-update work budget.
func ExampleNewDynamicMatcher() {
	dm := sparsematch.NewDynamicMatcher(6, sparsematch.DynamicOptions{Beta: 2, Eps: 0.3}, 1)
	dm.Insert(0, 1)
	dm.Insert(2, 3)
	dm.Insert(4, 5)
	dm.ForceRecompute()
	fmt.Println("matched pairs:", dm.Size())
	dm.Delete(2, 3)
	fmt.Println("after deletion:", dm.Size())
	// Output:
	// matched pairs: 3
	// after deletion: 2
}

// The streaming sparsifier processes edges one at a time in O(nΔ) memory.
func ExampleNewStreamingSparsifier() {
	g := sparsematch.Clique(300)
	s := sparsematch.NewStreamingSparsifier(300, 4, 9)
	g.ForEachEdge(func(u, v int32) { s.Push(u, v) })
	fmt.Println("edges streamed:", s.Edges())
	fmt.Println("memory below m:", s.MemoryWords() < int64(g.M()))
	// Output:
	// edges streamed: 44850
	// memory below m: true
}

// A one-round distributed construction of G_Δ uses ≈ nΔ one-bit messages —
// sublinear in m on dense graphs (Theorem 3.3).
func ExampleDistributedSparsifier() {
	g := sparsematch.Clique(200) // m = 19900
	sp, stats := sparsematch.DistributedSparsifier(g, 4, 3)
	fmt.Println("messages ≤ nΔ:", stats.Messages <= 200*4)
	fmt.Println("sparsifier non-trivial:", sp.M() > 0 && sp.M() < g.M())
	// Output:
	// messages ≤ nΔ: true
	// sparsifier non-trivial: true
}
