package sparsematch

import (
	"strings"
	"testing"
)

func TestFacadeSparsifyAndMatch(t *testing.T) {
	g := Clique(201)
	m := ApproximateMatching(g, 1, 0.2, 7)
	if err := VerifyMatching(g, m); err != nil {
		t.Fatal(err)
	}
	exact := MaximumMatching(g).Size() // 100
	if exact != 100 {
		t.Fatalf("exact = %d, want 100", exact)
	}
	if float64(exact) > 1.2*float64(m.Size()) {
		t.Errorf("approx %d too far from exact %d", m.Size(), exact)
	}
}

func TestFacadeMaximalMatching(t *testing.T) {
	g := UnitDisk(300, 0.1, 3)
	m := MaximalMatching(g)
	if err := VerifyMatching(g, m); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeSparsifyBounds(t *testing.T) {
	g := Clique(300)
	delta := DeltaLean(1, 0.3)
	sp := SparsifyDelta(g, delta, 5)
	if sp.M() > g.N()*2*delta {
		t.Errorf("sparsifier larger than 2nΔ")
	}
	if d, _ := Degeneracy(sp); d > 4*delta {
		t.Errorf("degeneracy %d exceeds 2·(2Δ)", d)
	}
	if DeltaFor(1, 0.3) < 20*delta-20 {
		t.Error("DeltaFor should be ~20x DeltaLean")
	}
}

func TestFacadeBeta(t *testing.T) {
	g := Clique(12)
	if ExactBeta(g) != 1 || BetaLowerBound(g) != 1 {
		t.Errorf("β(K12): exact %d greedy %d, want 1", ExactBeta(g), BetaLowerBound(g))
	}
	lg, _ := LineGraph(ErdosRenyi(12, 0.4, 2))
	if ExactBeta(lg) > 2 {
		t.Errorf("β(line graph) = %d > 2", ExactBeta(lg))
	}
}

func TestFacadeGraphIO(t *testing.T) {
	g := ProperInterval(40, 12, 9)
	var sb strings.Builder
	if err := WriteGraph(&sb, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadGraph(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != g.N() || got.M() != g.M() {
		t.Errorf("round trip mismatch: %d/%d vs %d/%d", got.N(), got.M(), g.N(), g.M())
	}
}

func TestFacadeDynamicMatcher(t *testing.T) {
	dm := NewDynamicMatcher(50, DynamicOptions{Beta: 2, Eps: 0.3}, 11)
	g := BoundedDiversity(50, 2, 8, 4)
	g.ForEachEdge(func(u, v int32) { dm.Insert(u, v) })
	dm.ForceRecompute()
	if dm.Size() == 0 {
		t.Error("dynamic matcher found nothing")
	}
	if err := VerifyMatching(dm.Graph().Snapshot(), dm.Matching()); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeDistributed(t *testing.T) {
	g := BoundedDiversity(150, 2, 24, 6)
	m, ps := DistributedMatching(g, 2, 0.5, 13)
	if err := VerifyMatching(g, m); err != nil {
		t.Fatal(err)
	}
	if ps.Sparsify.Messages >= int64(g.M()) {
		t.Errorf("distributed sparsifier used %d messages on an m=%d graph", ps.Sparsify.Messages, g.M())
	}
	sp, stats := DistributedSparsifier(g, 4, 3)
	if sp.N() != g.N() || stats.Messages == 0 {
		t.Error("DistributedSparsifier malformed result")
	}
}

func TestFacadeBuilder(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 2)
	g := b.Build()
	if g.M() != 1 {
		t.Errorf("builder produced %d edges", g.M())
	}
	g2 := FromEdges(3, []Edge{{U: 0, V: 1}})
	if g2.M() != 1 {
		t.Errorf("FromEdges produced %d edges", g2.M())
	}
}
