package faults

import (
	"fmt"
	"strconv"
	"strings"
)

// The canonical text encoding of a fault plan:
//
//	faultplan v1
//	seed 42
//	drop 0.05
//	dup 0.01
//	delay 0.02 max 3
//	crash 9 at 4 restart 12
//	crash 7 at 10
//
// Zero-valued rate lines and an empty crash schedule are omitted; "crash N
// at R" without a restart clause is a crash-stop. Decode(Encode(p)) equals
// p.normalize() for every valid plan, a property pinned by
// FuzzPlanRoundTrip.

// Encode renders the plan in canonical form.
func Encode(p Plan) string {
	p = p.normalize()
	var b strings.Builder
	b.WriteString("faultplan v1\n")
	fmt.Fprintf(&b, "seed %d\n", p.Seed)
	if p.DropRate != 0 {
		fmt.Fprintf(&b, "drop %s\n", strconv.FormatFloat(p.DropRate, 'g', -1, 64))
	}
	if p.DupRate != 0 {
		fmt.Fprintf(&b, "dup %s\n", strconv.FormatFloat(p.DupRate, 'g', -1, 64))
	}
	if p.DelayRate != 0 {
		fmt.Fprintf(&b, "delay %s max %d\n", strconv.FormatFloat(p.DelayRate, 'g', -1, 64), p.MaxDelay)
	}
	for _, c := range p.Crashes {
		if c.Stop() {
			fmt.Fprintf(&b, "crash %d at %d\n", c.Node, c.Round)
		} else {
			fmt.Fprintf(&b, "crash %d at %d restart %d\n", c.Node, c.Round, c.Restart)
		}
	}
	return b.String()
}

// decodeError builds a parse error naming the 1-based line and the
// offending token.
func decodeError(line int, token, why string) error {
	return fmt.Errorf("faults: line %d: token %q: %s", line, token, why)
}

// Decode parses the canonical text form. Errors name the 1-based line
// number and the offending token. The decoded plan is validated.
func Decode(text string) (Plan, error) {
	var p Plan
	lines := strings.Split(text, "\n")
	if len(lines) == 0 || strings.TrimSpace(lines[0]) != "faultplan v1" {
		head := ""
		if len(lines) > 0 {
			head = strings.TrimSpace(lines[0])
		}
		return p, decodeError(1, head, `want header "faultplan v1"`)
	}
	seenSeed := false
	for i := 1; i < len(lines); i++ {
		ln := i + 1
		fields := strings.Fields(lines[i])
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "seed":
			if len(fields) != 2 {
				return p, decodeError(ln, fields[0], "want: seed <uint64>")
			}
			v, err := strconv.ParseUint(fields[1], 10, 64)
			if err != nil {
				return p, decodeError(ln, fields[1], "not a uint64 seed")
			}
			p.Seed, seenSeed = v, true
		case "drop", "dup":
			if len(fields) != 2 {
				return p, decodeError(ln, fields[0], "want: "+fields[0]+" <rate>")
			}
			v, err := strconv.ParseFloat(fields[1], 64)
			if err != nil {
				return p, decodeError(ln, fields[1], "not a rate")
			}
			if fields[0] == "drop" {
				p.DropRate = v
			} else {
				p.DupRate = v
			}
		case "delay":
			if len(fields) != 4 || fields[2] != "max" {
				return p, decodeError(ln, fields[0], "want: delay <rate> max <rounds>")
			}
			v, err := strconv.ParseFloat(fields[1], 64)
			if err != nil {
				return p, decodeError(ln, fields[1], "not a rate")
			}
			d, err := strconv.Atoi(fields[3])
			if err != nil {
				return p, decodeError(ln, fields[3], "not a round count")
			}
			p.DelayRate, p.MaxDelay = v, d
		case "crash":
			if !(len(fields) == 4 && fields[2] == "at") &&
				!(len(fields) == 6 && fields[2] == "at" && fields[4] == "restart") {
				return p, decodeError(ln, fields[0], "want: crash <node> at <round> [restart <round>]")
			}
			node, err := strconv.ParseInt(fields[1], 10, 32)
			if err != nil {
				return p, decodeError(ln, fields[1], "not a node id")
			}
			round, err := strconv.Atoi(fields[3])
			if err != nil {
				return p, decodeError(ln, fields[3], "not a round")
			}
			c := Crash{Node: int32(node), Round: round}
			if len(fields) == 6 {
				restart, err := strconv.Atoi(fields[5])
				if err != nil {
					return p, decodeError(ln, fields[5], "not a round")
				}
				if restart <= round {
					return p, decodeError(ln, fields[5], "restart must come after the crash round")
				}
				c.Restart = restart
			}
			p.Crashes = append(p.Crashes, c)
		default:
			return p, decodeError(ln, fields[0], "unknown directive")
		}
	}
	if !seenSeed {
		return p, decodeError(len(lines), "", "missing seed line")
	}
	if err := p.Validate(); err != nil {
		return p, err
	}
	return p, nil
}
