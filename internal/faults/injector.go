package faults

import (
	"math/rand/v2"

	"repro/internal/dist"
)

// Injector compiles a Plan into a dist.Interceptor. Fate draws its coins
// from a private PCG stream seeded by the plan — it is consulted exactly
// once per sent message in deterministic order, so a fixed (plan, run) is
// fully reproducible. Down and Restart are pure lookups into the compiled
// crash schedule (safe from concurrent worker shards).
//
// One Injector may be reused across the sequential phases of a pipeline:
// the fault stream continues across phases (still deterministic), while the
// crash schedule is interpreted against each phase's own round numbers.
type Injector struct {
	plan       Plan
	rng        *rand.Rand
	downsBy    map[int32][]Crash // per node, sorted by round
	restartsBy map[int32]map[int]bool
	maxRestart int // largest scheduled restart round; -1 if none
}

// NewInjector compiles the plan. The plan should be Validate()-clean;
// a malformed plan yields undefined fault behavior but never unsafety.
func NewInjector(p Plan) *Injector {
	p = p.normalize()
	inj := &Injector{
		plan:       p,
		rng:        rand.New(rand.NewPCG(p.Seed, 0xfa417)),
		downsBy:    make(map[int32][]Crash),
		restartsBy: make(map[int32]map[int]bool),
		maxRestart: -1,
	}
	for _, c := range p.Crashes {
		inj.downsBy[c.Node] = append(inj.downsBy[c.Node], c)
		if !c.Stop() {
			m := inj.restartsBy[c.Node]
			if m == nil {
				m = make(map[int]bool)
				inj.restartsBy[c.Node] = m
			}
			m[c.Restart] = true
			if c.Restart > inj.maxRestart {
				inj.maxRestart = c.Restart
			}
		}
	}
	return inj
}

// Injector is a convenience for NewInjector on the plan itself.
func (p Plan) Injector() *Injector { return NewInjector(p) }

// Fate decides one message's fate. With all rates zero it returns the zero
// Fate without consuming any randomness — the no-op guarantee.
func (inj *Injector) Fate(round int, from, to int32, bits int) dist.Fate {
	var f dist.Fate
	p := inj.plan
	if p.DropRate == 0 && p.DupRate == 0 && p.DelayRate == 0 {
		return f
	}
	if p.DropRate > 0 && inj.rng.Float64() < p.DropRate {
		f.Drop = true
		return f
	}
	if p.DupRate > 0 && inj.rng.Float64() < p.DupRate {
		f.Dup = 1
	}
	if p.DelayRate > 0 && inj.rng.Float64() < p.DelayRate {
		f.Delay = 1 + inj.rng.IntN(p.MaxDelay)
	}
	return f
}

// Down reports whether v is crashed during the given round.
func (inj *Injector) Down(round int, v int32) bool {
	for _, c := range inj.downsBy[v] {
		if round < c.Round {
			return false // sorted by round: no later interval can cover it
		}
		if c.Stop() || round < c.Restart {
			return true
		}
	}
	return false
}

// Restart reports whether v restarts (with full state loss) at the start
// of the given round.
func (inj *Injector) Restart(round int, v int32) bool {
	return inj.restartsBy[v][round]
}

// Quiet reports that no restart is scheduled at or after the given round,
// so the simulator may treat global quiescence as final.
func (inj *Injector) Quiet(round int) bool { return round > inj.maxRestart }

var _ dist.Interceptor = (*Injector)(nil)
