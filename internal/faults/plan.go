// Package faults provides deterministic, seed-driven fault plans for the
// distributed simulator: per-message drop / duplication / bounded-delay
// reordering plus node crash-stop and crash-restart schedules. A Plan
// compiles into an Injector implementing dist.Interceptor, which the
// simulator consults on its delivery path. The zero-fault plan compiles to
// an injector that is a provable no-op: identical outputs AND identical
// rounds/messages/bits accounting to a run with no interceptor installed
// (it never consumes randomness and never perturbs a delivery).
//
// Plans have a canonical text encoding (Encode/Decode) so experiments can
// store, replay, and fuzz them.
package faults

import (
	"fmt"
	"sort"
)

// Crash schedules one failure of one node. The node is down — it executes
// no steps, sends nothing, and loses every message addressed to it — during
// rounds [Round, Restart). Restart ≤ Round means crash-stop: the node never
// comes back. On restart the node's program is rebuilt from scratch (full
// state loss) and its local round counter restarts at zero.
type Crash struct {
	Node    int32
	Round   int
	Restart int
}

// Stop reports whether this is a crash-stop (no restart).
func (c Crash) Stop() bool { return c.Restart <= c.Round }

// Plan is a deterministic fault plan: message-level fault rates driven by
// Seed, plus an explicit crash schedule. The zero value is the zero-fault
// plan.
type Plan struct {
	// Seed drives the per-message fault coins (independent of the
	// algorithm's own randomness).
	Seed uint64
	// DropRate is the probability a message is silently discarded.
	DropRate float64
	// DupRate is the probability a message is delivered twice.
	DupRate float64
	// DelayRate is the probability a message is deferred by a uniform
	// 1..MaxDelay extra rounds (reordering it past later traffic).
	DelayRate float64
	// MaxDelay bounds the extra delay in rounds; it must be ≥ 1 when
	// DelayRate > 0.
	MaxDelay int
	// Crashes is the node failure schedule.
	Crashes []Crash
}

// Zero reports whether the plan injects no faults at all.
func (p Plan) Zero() bool {
	return p.DropRate == 0 && p.DupRate == 0 && p.DelayRate == 0 && len(p.Crashes) == 0
}

// Validate checks the plan's well-formedness: rates are probabilities,
// delay and crash rounds are sane.
func (p Plan) Validate() error {
	for _, r := range []struct {
		name string
		v    float64
	}{{"drop", p.DropRate}, {"dup", p.DupRate}, {"delay", p.DelayRate}} {
		// A NaN rate fails both comparisons' complements, so test inclusion.
		if !(r.v >= 0 && r.v <= 1) {
			return fmt.Errorf("faults: %s rate %v outside [0,1]", r.name, r.v)
		}
	}
	if p.DelayRate > 0 && p.MaxDelay < 1 {
		return fmt.Errorf("faults: delay rate %v needs max delay ≥ 1, have %d", p.DelayRate, p.MaxDelay)
	}
	if p.MaxDelay < 0 {
		return fmt.Errorf("faults: negative max delay %d", p.MaxDelay)
	}
	for i, c := range p.Crashes {
		if c.Node < 0 {
			return fmt.Errorf("faults: crash %d: negative node %d", i, c.Node)
		}
		if c.Round < 0 {
			return fmt.Errorf("faults: crash %d: negative round %d", i, c.Round)
		}
	}
	return nil
}

// normalize returns the plan with its crash schedule in canonical order
// (by node, then round) — the order Encode emits.
func (p Plan) normalize() Plan {
	if len(p.Crashes) > 1 {
		crashes := make([]Crash, len(p.Crashes))
		copy(crashes, p.Crashes)
		sort.Slice(crashes, func(i, j int) bool {
			if crashes[i].Node != crashes[j].Node {
				return crashes[i].Node < crashes[j].Node
			}
			return crashes[i].Round < crashes[j].Round
		})
		p.Crashes = crashes
	}
	return p
}
