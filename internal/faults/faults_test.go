package faults

import (
	"slices"
	"strings"
	"testing"

	"repro/internal/dist"
	"repro/internal/gen"
	"repro/internal/matching"
)

var pipeOpt = dist.PipelineOptions{Delta: 4, DeltaAlpha: 6, AugIters: 12}

// TestZeroPlanNoOp pins the tentpole's no-op guarantee: the zero-fault
// injector installed on every phase of the pipeline reproduces the
// fault-free run EXACTLY — same matching, same rounds, same messages, same
// bits, and zero fault counters.
func TestZeroPlanNoOp(t *testing.T) {
	inst := gen.UnitDiskInstance(220, 40, 9)
	base, bs := dist.ApproxMatchingPipeline(inst.G, inst.Beta, 0.3, pipeOpt, 77)
	injected, is := dist.ApproxMatchingPipeline(inst.G, inst.Beta, 0.3, pipeOpt, 77,
		dist.WithInterceptor(Plan{Seed: 123}.Injector()))
	if !slices.Equal(base.Mates(), injected.Mates()) {
		t.Fatalf("zero-fault injector changed the matching: %d vs %d edges", base.Size(), injected.Size())
	}
	if bs.Total != is.Total {
		t.Fatalf("zero-fault injector changed the accounting:\nfault-free: %+v\ninjected:   %+v", bs.Total, is.Total)
	}
	if is.Total.Dropped != 0 || is.Total.Duplicated != 0 || is.Total.Delayed != 0 {
		t.Fatalf("zero-fault injector reported faults: %+v", is.Total)
	}
}

// TestDropPlanAccounting checks that a drop plan is visible in the stats
// and deterministic for a fixed seed.
func TestDropPlanAccounting(t *testing.T) {
	g := gen.ErdosRenyi(120, 0.3, 4)
	plan := Plan{Seed: 5, DropRate: 0.3}
	_, s1 := dist.RunSparsifier(g, 4, 11, dist.WithInterceptor(plan.Injector()))
	_, s2 := dist.RunSparsifier(g, 4, 11, dist.WithInterceptor(plan.Injector()))
	if s1.Dropped == 0 {
		t.Fatal("drop plan dropped nothing")
	}
	if s1 != s2 {
		t.Fatalf("same plan, same seed, different stats: %+v vs %+v", s1, s2)
	}
}

// TestDupAndDelayFaults exercises the duplication and delay paths: the
// counters move, and the sparsifier construction — which is idempotent
// under duplicate marks and tolerant of late marks within its round budget
// — still yields a subgraph of g.
func TestDupAndDelayFaults(t *testing.T) {
	g := gen.ErdosRenyi(100, 0.3, 8)
	plan := Plan{Seed: 6, DupRate: 0.5, DelayRate: 0.4, MaxDelay: 1}
	sp, s := dist.RunSparsifier(g, 4, 13, dist.WithInterceptor(plan.Injector()))
	if s.Duplicated == 0 || s.Delayed == 0 {
		t.Fatalf("expected duplications and delays, got %+v", s)
	}
	if sp.M() == 0 {
		t.Fatal("sparsifier empty under dup/delay faults")
	}
}

// TestCrashStopAndRestartSchedule pins the Down/Restart/Quiet semantics of
// the compiled schedule.
func TestCrashStopAndRestartSchedule(t *testing.T) {
	inj := NewInjector(Plan{Crashes: []Crash{
		{Node: 3, Round: 2, Restart: 5},
		{Node: 3, Round: 9}, // later crash-stop of the same node
		{Node: 7, Round: 0},
	}})
	downs := []struct {
		round int
		v     int32
		want  bool
	}{
		{0, 3, false}, {2, 3, true}, {4, 3, true}, {5, 3, false},
		{8, 3, false}, {9, 3, true}, {100, 3, true},
		{0, 7, true}, {50, 7, true}, {0, 1, false},
	}
	for _, d := range downs {
		if got := inj.Down(d.round, d.v); got != d.want {
			t.Errorf("Down(%d, %d) = %v, want %v", d.round, d.v, got, d.want)
		}
	}
	if !inj.Restart(5, 3) || inj.Restart(4, 3) || inj.Restart(5, 7) {
		t.Error("restart schedule wrong")
	}
	if inj.Quiet(5) || !inj.Quiet(6) {
		t.Error("Quiet must flip right after the last scheduled restart")
	}
}

// TestReliablePipelineBitIdentical is the strongest self-healing statement:
// under drop/dup/delay faults (no crashes) the reliable adapter recovers
// the EXACT fault-free execution — the inner protocols see identical
// inboxes in identical order with identical randomness — so the pipeline's
// matching is bit-identical to the fault-free run's, at the price of extra
// rounds and messages only.
func TestReliablePipelineBitIdentical(t *testing.T) {
	inst := gen.UnitDiskInstance(160, 30, 21)
	base, bs := dist.ApproxMatchingPipeline(inst.G, inst.Beta, 0.3, pipeOpt, 42)
	for _, plan := range []Plan{
		{Seed: 1, DropRate: 0.1},
		{Seed: 2, DropRate: 0.2},
		{Seed: 3, DropRate: 0.1, DupRate: 0.1, DelayRate: 0.1, MaxDelay: 2},
	} {
		healed, hs := dist.ReliableApproxMatchingPipeline(inst.G, inst.Beta, 0.3, pipeOpt,
			dist.ReliableOptions{}, plan.Injector(), 42)
		if !slices.Equal(base.Mates(), healed.Mates()) {
			t.Errorf("plan %+v: healed matching diverged: %d vs %d edges", plan, healed.Size(), base.Size())
		}
		if hs.Total.Rounds <= bs.Total.Rounds || hs.Total.Messages <= bs.Total.Messages {
			t.Errorf("plan %+v: reliability should cost rounds and messages: %+v vs %+v",
				plan, hs.Total, bs.Total)
		}
	}
}

// TestReliablePipelineValidUnderDrops checks the acceptance criterion
// directly: at drop rates up to 20% the self-healing pipeline returns a
// valid matching of the input whose size clears half the maximum (the
// maximal-matching floor).
func TestReliablePipelineValidUnderDrops(t *testing.T) {
	inst := gen.UnitDiskInstance(200, 36, 33)
	mcm := matching.MaximumGeneral(inst.G).Size()
	for _, rate := range []float64{0.05, 0.1, 0.2} {
		plan := Plan{Seed: 9, DropRate: rate}
		m, _ := dist.ReliableApproxMatchingPipeline(inst.G, inst.Beta, 0.3, pipeOpt,
			dist.ReliableOptions{}, plan.Injector(), 7)
		for v := int32(0); v < int32(inst.G.N()); v++ {
			if w := m.Mate(v); w >= 0 {
				if m.Mate(w) != v {
					t.Fatalf("rate %v: matching not an involution at %d", rate, v)
				}
				if !slices.Contains(inst.G.Neighbors(v), w) {
					t.Fatalf("rate %v: matched pair (%d,%d) not an edge", rate, v, w)
				}
			}
		}
		if 2*m.Size() < mcm {
			t.Errorf("rate %v: matching %d below MCM/2 (MCM=%d)", rate, m.Size(), mcm)
		}
	}
}

// TestUnreliablePipelineDegrades is the control: WITHOUT the adapter, a
// 20% drop rate visibly hurts the pipeline (otherwise the adapter tests
// prove nothing). We only demand it does worse than the healed run on the
// same plan seed, not any particular failure mode.
func TestUnreliablePipelineDegrades(t *testing.T) {
	inst := gen.UnitDiskInstance(200, 36, 33)
	plan := Plan{Seed: 9, DropRate: 0.2}
	raw, _ := dist.ApproxMatchingPipeline(inst.G, inst.Beta, 0.3, pipeOpt, 7,
		dist.WithInterceptor(plan.Injector()))
	healed, _ := dist.ReliableApproxMatchingPipeline(inst.G, inst.Beta, 0.3, pipeOpt,
		dist.ReliableOptions{}, Plan{Seed: 9, DropRate: 0.2}.Injector(), 7)
	if raw.Size() >= healed.Size() {
		t.Skipf("lossy run got lucky (raw %d ≥ healed %d) — informational only", raw.Size(), healed.Size())
	}
}

// TestCrashStopNodesDist checks crash-stop injection on the one-round
// sparsifier: the run completes, the down nodes' inbound traffic is
// accounted as dropped, and the surviving structure is still a subgraph.
func TestCrashStopNodesDist(t *testing.T) {
	g := gen.ErdosRenyi(80, 0.3, 3)
	plan := Plan{Crashes: []Crash{{Node: 0, Round: 0}, {Node: 5, Round: 1}, {Node: 11, Round: 0}}}
	sp, s := dist.RunSparsifier(g, 4, 17, dist.WithInterceptor(plan.Injector()))
	if s.Dropped == 0 {
		t.Fatal("crashed nodes should have lost their inbound marks")
	}
	for v := int32(0); v < int32(sp.N()); v++ {
		for _, w := range sp.Neighbors(v) {
			if !slices.Contains(g.Neighbors(v), w) {
				t.Fatalf("sparsifier edge (%d,%d) not in g", v, w)
			}
		}
	}
}

// TestEncodeDecodeCanonical round-trips representative plans through the
// text codec.
func TestEncodeDecodeCanonical(t *testing.T) {
	plans := []Plan{
		{},
		{Seed: 42},
		{Seed: 1, DropRate: 0.05},
		{Seed: 2, DropRate: 0.2, DupRate: 0.01, DelayRate: 0.125, MaxDelay: 3},
		{Seed: 3, Crashes: []Crash{{Node: 9, Round: 4, Restart: 12}, {Node: 7, Round: 10}}},
	}
	for _, p := range plans {
		enc := Encode(p)
		got, err := Decode(enc)
		if err != nil {
			t.Fatalf("Decode(Encode(%+v)): %v\n%s", p, err, enc)
		}
		if enc2 := Encode(got); enc2 != enc {
			t.Fatalf("canonical encoding unstable:\n%s\nvs\n%s", enc, enc2)
		}
	}
}

// TestDecodeErrors pins the error contract: 1-based line number and the
// offending token appear in the message.
func TestDecodeErrors(t *testing.T) {
	cases := []struct {
		text string
		want []string
	}{
		{"nonsense", []string{"line 1", `"nonsense"`}},
		{"faultplan v1\nseed x", []string{"line 2", `"x"`}},
		{"faultplan v1\nseed 1\ndrop nope", []string{"line 3", `"nope"`}},
		{"faultplan v1\nseed 1\ndrop 1.5", []string{"outside [0,1]"}},
		{"faultplan v1\nseed 1\ndelay 0.1 max zero", []string{"line 3", `"zero"`}},
		{"faultplan v1\nseed 1\ncrash 3 at 5 restart 5", []string{"line 3", "after the crash"}},
		{"faultplan v1\nseed 1\nfrob 7", []string{"line 3", `"frob"`, "unknown"}},
		{"faultplan v1\ndrop 0.1", []string{"missing seed"}},
	}
	for _, c := range cases {
		_, err := Decode(c.text)
		if err == nil {
			t.Errorf("Decode(%q) succeeded, want error", c.text)
			continue
		}
		for _, frag := range c.want {
			if !strings.Contains(err.Error(), frag) {
				t.Errorf("Decode(%q) error %q missing %q", c.text, err, frag)
			}
		}
	}
}
