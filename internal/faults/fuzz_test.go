package faults

import (
	"testing"
)

// FuzzPlanRoundTrip pins the codec's canonical round-trip: any text the
// decoder accepts must re-encode to a stable canonical form — Decode ∘
// Encode is the identity on decoded plans — and the decoded plan must be
// Validate()-clean and safely compilable into an injector.
func FuzzPlanRoundTrip(f *testing.F) {
	f.Add("faultplan v1\nseed 42\n")
	f.Add("faultplan v1\nseed 0\ndrop 0.05\n")
	f.Add("faultplan v1\nseed 7\ndrop 0.2\ndup 0.01\ndelay 0.125 max 3\n")
	f.Add("faultplan v1\nseed 9\ncrash 3 at 0\ncrash 5 at 2 restart 8\n")
	f.Add("faultplan v1\nseed 1\ndrop 1e-3\ncrash 0 at 100\n")
	f.Fuzz(func(t *testing.T, text string) {
		p, err := Decode(text)
		if err != nil {
			return // rejection is fine; we only demand it is total and typed
		}
		if verr := p.Validate(); verr != nil {
			t.Fatalf("decoder accepted an invalid plan %+v: %v", p, verr)
		}
		enc := Encode(p)
		p2, err := Decode(enc)
		if err != nil {
			t.Fatalf("canonical encoding does not re-decode: %v\ninput: %q\nencoded: %q", err, text, enc)
		}
		if enc2 := Encode(p2); enc2 != enc {
			t.Fatalf("canonical encoding unstable:\nfirst:  %q\nsecond: %q", enc, enc2)
		}
		// The compiled schedule must agree between the two decodes on a few
		// probe points (the injector is a pure function of the plan).
		i1, i2 := NewInjector(p), NewInjector(p2)
		for round := 0; round < 16; round++ {
			for v := int32(0); v < 8; v++ {
				if i1.Down(round, v) != i2.Down(round, v) || i1.Restart(round, v) != i2.Restart(round, v) {
					t.Fatalf("re-decoded plan compiles to a different schedule at (%d, %d)", round, v)
				}
			}
			if i1.Quiet(round) != i2.Quiet(round) {
				t.Fatalf("re-decoded plan disagrees on Quiet(%d)", round)
			}
		}
	})
}
