package faults

import (
	"bytes"
	"errors"
	"os"
	"testing"
)

// writeProtocol performs one durable-write-shaped sequence against fs:
// create temp, write, sync, close, rename, syncdir. It mirrors the serve
// checkpoint write path so step indices in these tests line up with the
// real protocol's.
func writeProtocol(fs FS, dir, name string, data []byte) error {
	if err := fs.MkdirAll(dir); err != nil {
		return err
	}
	final := dir + "/" + name
	tmp := TempName(final)
	f, err := fs.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := fs.Rename(tmp, final); err != nil {
		return err
	}
	return fs.SyncDir(dir)
}

// TestFSImplementations runs the same contract over OSFS and MemFS: write
// protocol round-trips bytes, ReadDir lists sorted names without temp
// leftovers, Remove deletes.
func TestFSImplementations(t *testing.T) {
	impls := []struct {
		name string
		fs   FS
		dir  string
	}{
		{"osfs", OSFS{}, t.TempDir()},
		{"memfs", NewMemFS(), "mem"},
	}
	for _, im := range impls {
		t.Run(im.name, func(t *testing.T) {
			data := []byte("hello durable world")
			if err := writeProtocol(im.fs, im.dir, "b.bin", data); err != nil {
				t.Fatal(err)
			}
			if err := writeProtocol(im.fs, im.dir, "a.bin", data); err != nil {
				t.Fatal(err)
			}
			got, err := im.fs.ReadFile(im.dir + "/b.bin")
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, data) {
				t.Fatalf("read back %q, wrote %q", got, data)
			}
			names, err := im.fs.ReadDir(im.dir)
			if err != nil {
				t.Fatal(err)
			}
			if len(names) != 2 || names[0] != "a.bin" || names[1] != "b.bin" {
				t.Fatalf("ReadDir = %v, want [a.bin b.bin]", names)
			}
			if err := im.fs.Remove(im.dir + "/a.bin"); err != nil {
				t.Fatal(err)
			}
			if err := im.fs.Remove(im.dir + "/a.bin"); err == nil {
				t.Fatal("double remove succeeded")
			}
			if _, err := im.fs.ReadFile(im.dir + "/missing"); !errors.Is(err, os.ErrNotExist) {
				t.Fatalf("missing file read error = %v, want ErrNotExist", err)
			}
		})
	}
}

// TestMemFSDirScoping pins ReadDir's directory semantics: only direct
// children, names not paths.
func TestMemFSDirScoping(t *testing.T) {
	fs := NewMemFS()
	for _, name := range []string{"d/x", "d/y", "d/sub/z", "other/w"} {
		f, err := fs.Create(name)
		if err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	names, err := fs.ReadDir("d")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "x" || names[1] != "y" {
		t.Fatalf("ReadDir(d) = %v, want [x y]", names)
	}
}

// TestStorageInjectorScripted sweeps the scripted fault through every step
// of the write protocol and checks each fault lands on its documented
// operation with its documented damage.
func TestStorageInjectorScripted(t *testing.T) {
	data := bytes.Repeat([]byte{0xA5}, 256)

	// Dry run: count the protocol's faultable steps.
	dry := NewStorageInjector(NewMemFS(), StoragePlan{})
	if err := writeProtocol(dry, "d", "f", data); err != nil {
		t.Fatal(err)
	}
	steps := dry.Ops()
	if steps != 4 { // write, sync, rename, syncdir
		t.Fatalf("write protocol has %d faultable steps, want 4", steps)
	}

	for step := 0; step < steps; step++ {
		for _, fault := range []StorageFault{FaultTornWrite, FaultBitFlip, FaultSyncFail, FaultRenameFail} {
			mem := NewMemFS()
			inj := NewStorageInjector(mem, StoragePlan{Seed: 11, Step: step, Fault: fault})
			err := writeProtocol(inj, "d", "f", data)
			if inj.Hits() == 0 {
				// The fault kind does not apply to this step; the write must
				// have gone through untouched.
				if err != nil {
					t.Fatalf("step %d %v: no hit but error %v", step, fault, err)
				}
				got, rerr := mem.ReadFile("d/f")
				if rerr != nil || !bytes.Equal(got, data) {
					t.Fatalf("step %d %v: clean write damaged (%v)", step, fault, rerr)
				}
				continue
			}
			var sfe *StorageFaultError
			switch fault {
			case FaultBitFlip:
				if err != nil {
					t.Fatalf("step %d bit-flip: silent fault returned %v", step, err)
				}
				got, rerr := mem.ReadFile("d/f")
				if rerr != nil {
					t.Fatal(rerr)
				}
				if bytes.Equal(got, data) {
					t.Fatalf("step %d bit-flip: data unchanged", step)
				}
				if len(got) != len(data) {
					t.Fatalf("step %d bit-flip: length changed %d -> %d", step, len(data), len(got))
				}
			case FaultTornWrite:
				if !errors.As(err, &sfe) || sfe.Fault != FaultTornWrite {
					t.Fatalf("step %d torn write: err = %v", step, err)
				}
				got, rerr := mem.ReadFile(TempName("d/f"))
				if rerr != nil {
					t.Fatal(rerr)
				}
				if len(got) >= len(data) {
					t.Fatalf("step %d torn write: %d bytes persisted of %d", step, len(got), len(data))
				}
			case FaultSyncFail:
				if !errors.As(err, &sfe) || sfe.Fault != FaultSyncFail {
					t.Fatalf("step %d sync fail: err = %v", step, err)
				}
				// The file-sync variant must have torn the temp file.
				if sfe.Op == OpSync {
					got, rerr := mem.ReadFile(TempName("d/f"))
					if rerr != nil {
						t.Fatal(rerr)
					}
					if len(got) >= len(data) {
						t.Fatalf("step %d sync fail: unsynced suffix survived (%d bytes)", step, len(got))
					}
				}
			case FaultRenameFail:
				if !errors.As(err, &sfe) || sfe.Fault != FaultRenameFail {
					t.Fatalf("step %d rename fail: err = %v", step, err)
				}
				if _, rerr := mem.ReadFile("d/f"); rerr == nil {
					t.Fatalf("step %d rename fail: final name exists", step)
				}
			}
		}
	}
}

// TestStorageInjectorShortRead pins the read-side fault: the bytes on
// "disk" are intact, the injected read returns a proper prefix.
func TestStorageInjectorShortRead(t *testing.T) {
	mem := NewMemFS()
	data := bytes.Repeat([]byte{7}, 128)
	if err := writeProtocol(mem, "d", "f", data); err != nil {
		t.Fatal(err)
	}
	inj := NewStorageInjector(mem, StoragePlan{Seed: 3, Step: 0, Fault: FaultShortRead})
	got, err := inj.ReadFile("d/f")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) >= len(data) {
		t.Fatalf("short read returned %d of %d bytes", len(got), len(data))
	}
	// Second read is past the scripted step: full contents.
	again, err := inj.ReadFile("d/f")
	if err != nil || !bytes.Equal(again, data) {
		t.Fatalf("post-fault read damaged: %v", err)
	}
}

// TestStorageInjectorDeterminism: identical plans tear at identical
// offsets; different seeds tear differently (with overwhelming
// probability on a 256-byte payload).
func TestStorageInjectorDeterminism(t *testing.T) {
	data := bytes.Repeat([]byte{0x5A}, 256)
	torn := func(seed uint64) int {
		mem := NewMemFS()
		inj := NewStorageInjector(mem, StoragePlan{Seed: seed, Step: 0, Fault: FaultTornWrite})
		writeProtocol(inj, "d", "f", data)
		got, err := mem.ReadFile(TempName("d/f"))
		if err != nil {
			t.Fatal(err)
		}
		return len(got)
	}
	if a, b := torn(42), torn(42); a != b {
		t.Fatalf("same seed tore at %d vs %d", a, b)
	}
	if a, b := torn(1), torn(2); a == b {
		t.Logf("different seeds tore at the same offset %d (possible but unlikely)", a)
	}
}

// TestStorageInjectorRates smoke-tests the seed-driven mode: at rate 1 the
// first write faults; at rate 0 nothing ever does.
func TestStorageInjectorRates(t *testing.T) {
	mem := NewMemFS()
	inj := NewStorageInjector(mem, StoragePlan{Seed: 9, Step: -1, TornWriteRate: 1})
	if err := writeProtocol(inj, "d", "f", []byte("abcdef")); err == nil {
		t.Fatal("torn-write rate 1 let a write through")
	}
	if inj.Hits() == 0 {
		t.Fatal("rate-driven injector never fired")
	}
	clean := NewStorageInjector(NewMemFS(), StoragePlan{Seed: 9, Step: -1})
	for i := 0; i < 50; i++ {
		if err := writeProtocol(clean, "d", "f", []byte("abcdef")); err != nil {
			t.Fatal(err)
		}
	}
	if clean.Hits() != 0 {
		t.Fatal("zero-rate injector fired")
	}
}
