package faults

import (
	"os"
	"slices"
	"strconv"
	"testing"

	"repro/internal/dist"
	"repro/internal/gen"
)

// TestFaultSoak is the CI fault-soak entry point: the full self-healing
// pipeline runs race-enabled (the simulator shards nodes over goroutines)
// against fixed fault-plan seeds at drop rates {0, 0.05, 0.2}. Every run
// must reproduce the fault-free matching bit-identically AND be
// reproducible — two runs of the same plan must agree on the complete
// accounting. The CI matrix sets FAULT_SOAK_DROP to soak one rate per job;
// unset (a plain `go test`) covers all three at reduced seed count.
func TestFaultSoak(t *testing.T) {
	rates := []float64{0, 0.05, 0.2}
	planSeeds := []uint64{101, 202}
	if env := os.Getenv("FAULT_SOAK_DROP"); env != "" {
		r, err := strconv.ParseFloat(env, 64)
		if err != nil {
			t.Fatalf("FAULT_SOAK_DROP=%q: %v", env, err)
		}
		rates = []float64{r}
	} else if testing.Short() {
		planSeeds = planSeeds[:1]
	}
	inst := gen.UnitDiskInstance(150, 30, 13)
	base, _ := dist.ApproxMatchingPipeline(inst.G, inst.Beta, 0.3, pipeOpt, 77)
	for _, rate := range rates {
		for _, ps := range planSeeds {
			plan := Plan{Seed: ps, DropRate: rate}
			m1, s1 := dist.ReliableApproxMatchingPipeline(inst.G, inst.Beta, 0.3, pipeOpt,
				dist.ReliableOptions{}, plan.Injector(), 77)
			m2, s2 := dist.ReliableApproxMatchingPipeline(inst.G, inst.Beta, 0.3, pipeOpt,
				dist.ReliableOptions{}, plan.Injector(), 77)
			if !slices.Equal(base.Mates(), m1.Mates()) {
				t.Errorf("rate %v seed %d: healed matching diverged from fault-free (%d vs %d edges)",
					rate, ps, m1.Size(), base.Size())
			}
			if !slices.Equal(m1.Mates(), m2.Mates()) || s1.Total != s2.Total {
				t.Errorf("rate %v seed %d: same plan, different runs:\n%+v\n%+v",
					rate, ps, s1.Total, s2.Total)
			}
			if rate > 0 && s1.Total.Dropped == 0 {
				t.Errorf("rate %v seed %d: no drops recorded", rate, ps)
			}
		}
	}
}
