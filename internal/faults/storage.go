package faults

import (
	"fmt"
	"math/rand/v2"
	"os"
	"sort"
	"strings"
	"sync"
)

// Storage faults. The message-level fault model (Plan/Injector) shakes the
// network; this file shakes the disk underneath durable checkpoints. The
// write path in internal/serve talks to the filesystem only through the FS
// interface below, so a StorageInjector can be threaded in to tear writes,
// flip bits, and fail fsyncs at deterministic points — the crash-consistency
// torture suite injects a fault at every step of the write protocol and
// asserts recovery still lands on a valid earlier generation.

// File is one open, writable file of an FS.
type File interface {
	Write(p []byte) (int, error)
	// Sync flushes the file's contents to stable storage (fsync).
	Sync() error
	Close() error
}

// FS is the filesystem surface of the durable checkpoint write path:
// exactly the operations the temp→write→fsync→rename→dirsync protocol and
// the restore-time generation scan need, small enough that a fault
// injector can wrap every one of them.
type FS interface {
	// MkdirAll creates dir and any missing parents.
	MkdirAll(dir string) error
	// Create opens name for writing, truncating any existing file.
	Create(name string) (File, error)
	// Rename atomically replaces newname with oldname's file.
	Rename(oldname, newname string) error
	// Remove deletes a file; removing a missing file is an error.
	Remove(name string) error
	// ReadFile returns the full contents of name.
	ReadFile(name string) ([]byte, error)
	// ReadDir lists the file names (not paths) in dir, sorted.
	ReadDir(dir string) ([]string, error)
	// SyncDir flushes dir's entries (the renames) to stable storage.
	SyncDir(dir string) error
}

// OSFS is the real filesystem.
type OSFS struct{}

func (OSFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

func (OSFS) Create(name string) (File, error) {
	f, err := os.OpenFile(name, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (OSFS) Rename(oldname, newname string) error { return os.Rename(oldname, newname) }
func (OSFS) Remove(name string) error             { return os.Remove(name) }
func (OSFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

func (OSFS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

func (OSFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	// fsync on a directory is how POSIX makes renames durable; on
	// filesystems that reject it the rename is already as durable as the
	// platform allows, so only real I/O errors propagate.
	err = d.Sync()
	cerr := d.Close()
	if err != nil {
		return err
	}
	return cerr
}

// memFile is one file of a MemFS: the written bytes plus the prefix known
// to have reached "stable storage" (everything up to the last Sync).
type memFile struct {
	data   []byte
	synced int // bytes durable as of the last Sync
}

// MemFS is an in-memory FS for torture tests: deterministic, no disk, and
// it tracks which bytes have been fsynced so a simulated crash can expose
// exactly the torn states a real power cut could. Safe for concurrent use.
type MemFS struct {
	mu    sync.Mutex
	files map[string]*memFile
}

// NewMemFS returns an empty in-memory filesystem.
func NewMemFS() *MemFS { return &MemFS{files: make(map[string]*memFile)} }

func (m *MemFS) MkdirAll(dir string) error { return nil } // directories are implicit

func (m *MemFS) Create(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f := &memFile{}
	m.files[name] = f
	return &memHandle{fs: m, name: name}, nil
}

func (m *MemFS) Rename(oldname, newname string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[oldname]
	if !ok {
		return &os.PathError{Op: "rename", Path: oldname, Err: os.ErrNotExist}
	}
	delete(m.files, oldname)
	m.files[newname] = f
	return nil
}

func (m *MemFS) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.files[name]; !ok {
		return &os.PathError{Op: "remove", Path: name, Err: os.ErrNotExist}
	}
	delete(m.files, name)
	return nil
}

func (m *MemFS) ReadFile(name string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[name]
	if !ok {
		return nil, &os.PathError{Op: "open", Path: name, Err: os.ErrNotExist}
	}
	return append([]byte(nil), f.data...), nil
}

func (m *MemFS) ReadDir(dir string) ([]string, error) {
	prefix := strings.TrimSuffix(dir, "/") + "/"
	m.mu.Lock()
	var names []string
	for name := range m.files {
		names = append(names, name)
	}
	m.mu.Unlock()
	sort.Strings(names)
	var out []string
	for _, name := range names {
		if rest, ok := strings.CutPrefix(name, prefix); ok && !strings.Contains(rest, "/") {
			out = append(out, rest)
		}
	}
	return out, nil
}

func (m *MemFS) SyncDir(dir string) error { return nil }

// Truncate cuts a file to n bytes — the injector uses it to materialize
// torn writes and lost unsynced suffixes.
func (m *MemFS) Truncate(name string, n int) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[name]
	if !ok {
		return &os.PathError{Op: "truncate", Path: name, Err: os.ErrNotExist}
	}
	if n < len(f.data) {
		f.data = f.data[:n]
	}
	return nil
}

// memHandle is an open MemFS file.
type memHandle struct {
	fs     *MemFS
	name   string
	closed bool
}

func (h *memHandle) Write(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	f, ok := h.fs.files[h.name]
	if !ok || h.closed {
		return 0, &os.PathError{Op: "write", Path: h.name, Err: os.ErrClosed}
	}
	f.data = append(f.data, p...)
	return len(p), nil
}

func (h *memHandle) Sync() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if f, ok := h.fs.files[h.name]; ok {
		f.synced = len(f.data)
	}
	return nil
}

func (h *memHandle) Close() error {
	h.closed = true
	return nil
}

// StorageOp enumerates the faultable operations of the write/read path.
type StorageOp uint8

const (
	OpWrite StorageOp = iota + 1
	OpSync
	OpRename
	OpSyncDir
	OpRead
)

func (op StorageOp) String() string {
	switch op {
	case OpWrite:
		return "write"
	case OpSync:
		return "sync"
	case OpRename:
		return "rename"
	case OpSyncDir:
		return "syncdir"
	case OpRead:
		return "read"
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// StorageFault names one injected filesystem failure mode.
type StorageFault uint8

const (
	// FaultNone injects nothing.
	FaultNone StorageFault = iota
	// FaultTornWrite persists only a prefix of the written bytes and fails
	// the operation — the classic mid-write power cut.
	FaultTornWrite
	// FaultBitFlip flips one bit of the written bytes and reports success —
	// silent media corruption the checksum must catch.
	FaultBitFlip
	// FaultSyncFail fails fsync and loses the unsynced suffix — the data
	// never reached stable storage.
	FaultSyncFail
	// FaultRenameFail fails the rename; the temp file stays, the final name
	// is never created (or keeps its old contents).
	FaultRenameFail
	// FaultShortRead returns a truncated prefix from a read — a torn read
	// of a file that itself may be intact.
	FaultShortRead
)

func (f StorageFault) String() string {
	switch f {
	case FaultNone:
		return "none"
	case FaultTornWrite:
		return "torn-write"
	case FaultBitFlip:
		return "bit-flip"
	case FaultSyncFail:
		return "sync-fail"
	case FaultRenameFail:
		return "rename-fail"
	case FaultShortRead:
		return "short-read"
	}
	return fmt.Sprintf("fault(%d)", uint8(f))
}

// StoragePlan configures a StorageInjector. Two modes compose:
//
//   - Scripted: inject Fault at operation number Step (0-based, counting
//     every faultable FS operation in program order). Step < 0 disables the
//     script. This is the torture-test mode: sweep Step over every write
//     step and assert recovery from each.
//   - Rate-driven: each operation independently draws from a PCG stream
//     seeded by Seed; TornWriteRate et al. give per-op fault probabilities.
//     This is the soak mode.
//
// The zero plan injects nothing.
type StoragePlan struct {
	Seed uint64
	// Step is the operation index at which Fault fires (-1 or, in the zero
	// value, Fault == FaultNone disables the script).
	Step  int
	Fault StorageFault
	// Per-operation fault rates for the seed-driven mode.
	TornWriteRate  float64
	BitFlipRate    float64
	SyncFailRate   float64
	RenameFailRate float64
	ShortReadRate  float64
}

// zeroRates reports whether the rate-driven mode is disabled.
func (p StoragePlan) zeroRates() bool {
	return p.TornWriteRate == 0 && p.BitFlipRate == 0 && p.SyncFailRate == 0 &&
		p.RenameFailRate == 0 && p.ShortReadRate == 0
}

// A StorageFaultError reports an operation failed by injection, so tests
// and recovery paths can tell injected damage from real I/O errors.
type StorageFaultError struct {
	Op    StorageOp
	Fault StorageFault
	Path  string
}

func (e *StorageFaultError) Error() string {
	return fmt.Sprintf("faults: injected %s on %s %q", e.Fault, e.Op, e.Path)
}

// StorageInjector wraps an FS and injects the plan's faults. Operation
// numbering is deterministic for a deterministic caller: every Create /
// Write / Sync / Close+Rename / SyncDir / ReadFile advances the counter by
// the documented amount (Write, Sync, Rename, SyncDir, and ReadFile are
// the faultable ops; Create, Remove, ReadDir, MkdirAll are not, so step
// indices line up with the write protocol's interesting states).
type StorageInjector struct {
	mu   sync.Mutex
	fs   FS
	plan StoragePlan
	rng  *rand.Rand
	ops  int
	hits int
}

// NewStorageInjector wraps fs with the plan's fault behavior.
func NewStorageInjector(fs FS, plan StoragePlan) *StorageInjector {
	inj := &StorageInjector{fs: fs, plan: plan}
	if plan.Fault == FaultNone {
		inj.plan.Step = -1
	}
	if !plan.zeroRates() {
		inj.rng = rand.New(rand.NewPCG(plan.Seed, 0x5707a6e))
	}
	return inj
}

// Ops returns how many faultable operations have been observed — a dry run
// with FaultNone measures how many steps a protocol has, so a torture
// sweep knows its range.
func (inj *StorageInjector) Ops() int {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return inj.ops
}

// Hits returns how many faults have actually been injected.
func (inj *StorageInjector) Hits() int {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return inj.hits
}

// decide consumes one operation slot and returns the fault to inject on
// it, already filtered to the kinds that apply to op.
func (inj *StorageInjector) decide(op StorageOp) StorageFault {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	step := inj.ops
	inj.ops++
	if step == inj.plan.Step && applies(inj.plan.Fault, op) {
		inj.hits++
		return inj.plan.Fault
	}
	if inj.rng != nil {
		var f StorageFault
		switch op {
		case OpWrite:
			if inj.rng.Float64() < inj.plan.TornWriteRate {
				f = FaultTornWrite
			} else if inj.rng.Float64() < inj.plan.BitFlipRate {
				f = FaultBitFlip
			}
		case OpSync, OpSyncDir:
			if inj.rng.Float64() < inj.plan.SyncFailRate {
				f = FaultSyncFail
			}
		case OpRename:
			if inj.rng.Float64() < inj.plan.RenameFailRate {
				f = FaultRenameFail
			}
		case OpRead:
			if inj.rng.Float64() < inj.plan.ShortReadRate {
				f = FaultShortRead
			}
		}
		if f != FaultNone {
			inj.hits++
			return f
		}
	}
	return FaultNone
}

// applies reports whether fault kind f can fire on operation op.
func applies(f StorageFault, op StorageOp) bool {
	switch f {
	case FaultTornWrite, FaultBitFlip:
		return op == OpWrite
	case FaultSyncFail:
		return op == OpSync || op == OpSyncDir
	case FaultRenameFail:
		return op == OpRename
	case FaultShortRead:
		return op == OpRead
	}
	return false
}

// cut returns a deterministic proper cut point for a torn prefix of n
// bytes, derived from the plan seed and the operation index so reruns tear
// identically.
func (inj *StorageInjector) cut(n int) int {
	if n <= 1 {
		return 0
	}
	// SplitMix64 on (seed, ops) — cheap, stateless, deterministic.
	x := inj.plan.Seed + 0x9e3779b97f4a7c15*uint64(inj.Ops())
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int(x % uint64(n))
}

func (inj *StorageInjector) MkdirAll(dir string) error { return inj.fs.MkdirAll(dir) }

func (inj *StorageInjector) Create(name string) (File, error) {
	f, err := inj.fs.Create(name)
	if err != nil {
		return nil, err
	}
	return &injHandle{inj: inj, f: f, name: name}, nil
}

func (inj *StorageInjector) Rename(oldname, newname string) error {
	if inj.decide(OpRename) == FaultRenameFail {
		return &StorageFaultError{Op: OpRename, Fault: FaultRenameFail, Path: newname}
	}
	return inj.fs.Rename(oldname, newname)
}

func (inj *StorageInjector) Remove(name string) error { return inj.fs.Remove(name) }

func (inj *StorageInjector) ReadFile(name string) ([]byte, error) {
	fault := inj.decide(OpRead)
	b, err := inj.fs.ReadFile(name)
	if err != nil {
		return nil, err
	}
	if fault == FaultShortRead {
		return b[:inj.cut(len(b))], nil
	}
	return b, nil
}

func (inj *StorageInjector) ReadDir(dir string) ([]string, error) { return inj.fs.ReadDir(dir) }

func (inj *StorageInjector) SyncDir(dir string) error {
	if inj.decide(OpSyncDir) == FaultSyncFail {
		return &StorageFaultError{Op: OpSyncDir, Fault: FaultSyncFail, Path: dir}
	}
	return inj.fs.SyncDir(dir)
}

// injHandle wraps an open file with write-path injection.
type injHandle struct {
	inj     *StorageInjector
	f       File
	name    string
	written int
}

func (h *injHandle) Write(p []byte) (int, error) {
	switch h.inj.decide(OpWrite) {
	case FaultTornWrite:
		cut := h.inj.cut(len(p))
		if cut > 0 {
			h.f.Write(p[:cut]) // best effort: the prefix that "made it"
		}
		return cut, &StorageFaultError{Op: OpWrite, Fault: FaultTornWrite, Path: h.name}
	case FaultBitFlip:
		flipped := append([]byte(nil), p...)
		if len(flipped) > 0 {
			i := h.inj.cut(len(flipped))
			flipped[i] ^= 1 << (uint(h.inj.cut(8)) & 7)
		}
		h.written += len(flipped)
		return h.f.Write(flipped)
	}
	n, err := h.f.Write(p)
	h.written += n
	return n, err
}

func (h *injHandle) Sync() error {
	if h.inj.decide(OpSync) == FaultSyncFail {
		// The unsynced suffix never reached stable storage: tear the file at
		// a deterministic point to model the loss.
		if m, ok := h.inj.fs.(*MemFS); ok {
			m.Truncate(h.name, h.inj.cut(h.written))
		}
		return &StorageFaultError{Op: OpSync, Fault: FaultSyncFail, Path: h.name}
	}
	return h.f.Sync()
}

func (h *injHandle) Close() error { return h.f.Close() }

var (
	_ FS = OSFS{}
	_ FS = (*MemFS)(nil)
	_ FS = (*StorageInjector)(nil)
)

// tmpSuffix marks in-flight temp files of the durable write protocol; the
// restore scan ignores them and prune sweeps them.
const tmpSuffix = ".tmp"

// IsTemp reports whether a directory entry is a write-protocol temp file.
func IsTemp(name string) bool { return strings.HasSuffix(name, tmpSuffix) }

// TempName returns the temp-file name the durable write protocol uses for
// a final path.
func TempName(path string) string { return path + tmpSuffix }
