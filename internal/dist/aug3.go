package dist

import (
	"repro/internal/graph"
	"repro/internal/matching"
)

// Length-3 augmentation stage: starting from a maximal matching, free
// vertices repeatedly try to flip augmenting paths v–w–x–y where v, y are
// free and (w, x) is a matched edge. One iteration is six rounds:
//
//	A: free vertices coin-flip; initiators send AugInit(id) along a port
//	   to a matched neighbor (after a maximal matching every neighbor of a
//	   free vertex is matched).
//	B: a matched vertex w picks one AugInit and forwards AugFwd(id) to its
//	   mate x (role w).
//	C: x, unless it already took role w this iteration, picks a believed-
//	   free port and sends AugOffer(id) (role x).
//	D: a free responder y (non-initiator) accepts one offer whose initiator
//	   is not itself, commits, replies AugAccept.
//	E: x receives the accept, flips its mate to y, confirms to its old mate.
//	F: w receives the confirmation, flips its mate to the stored initiator
//	   port, and notifies v, which commits at the next A.
//
// Conflicting chains die silently and retry next iteration; every role is
// adopted at most once per vertex per iteration, so each vertex's mate
// changes at most once per iteration and the matching stays consistent.
// Eliminating length-1 and length-3 augmenting paths yields a 3/2-
// approximation; the measured quality is reported in experiment T7/T8.
type aug3Node struct {
	matchState
	iters    int
	initPort int // port this initiator proposed on (stage A), or -1
	pendInit int // role w: port of the AugInit being serviced, or -1
	offered  int // role x: port offered on, or -1
	roleW    bool
}

const aug3StageLen = 6

func aug3TotalRounds(iters int) int { return 1 + iters*aug3StageLen + 2 }

func (an *aug3Node) Step(api *NodeAPI, round int, inbox []Msg) bool {
	if round == 0 {
		// Setup: beliefs start from the matching handed to the stage.
		an.announced = an.matched // pre-announced via the setup broadcast
		if an.matched {
			api.Broadcast(matchedMsg{}, 1)
		}
		an.initPort, an.pendInit, an.offered = -1, -1, -1
		return false
	}
	an.applyBeliefs(inbox)
	iter := (round - 1) / aug3StageLen
	switch (round - 1) % aug3StageLen {
	case 0: // A: commit pending notices, then initiate
		for _, m := range inbox {
			if _, ok := m.Payload.(matchNoticeMsg); ok && m.FromPort == an.initPort && !an.matched {
				an.matched = true
				an.matePort = an.initPort
				api.Broadcast(matchedMsg{}, 1)
			}
		}
		an.initPort, an.pendInit, an.offered, an.roleW = -1, -1, -1, false
		if an.matched || iter >= an.iters {
			return round > aug3TotalRounds(an.iters)-2
		}
		if api.Rand().IntN(2) == 0 { // initiator coin
			var cands []int
			for p, free := range an.freePorts {
				if !free {
					cands = append(cands, p)
				}
			}
			if len(cands) > 0 {
				an.initPort = cands[api.Rand().IntN(len(cands))]
				api.Send(an.initPort, augInitMsg{initiator: api.ID()}, idBits(api.N()))
			}
		}
	case 1: // B: matched vertices service one AugInit
		if an.matched {
			best, bestInit := -1, int32(-1)
			for _, m := range inbox {
				if am, ok := m.Payload.(augInitMsg); ok && (best < 0 || m.FromPort < best) {
					best, bestInit = m.FromPort, am.initiator
				}
			}
			if best >= 0 {
				an.pendInit = best
				an.roleW = true
				api.Send(an.matePort, augFwdMsg{initiator: bestInit}, idBits(api.N()))
			}
		}
	case 2: // C: the mate offers to a believed-free neighbor
		if an.matched && !an.roleW {
			for _, m := range inbox {
				fm, ok := m.Payload.(augFwdMsg)
				if !ok || m.FromPort != an.matePort {
					continue
				}
				var cands []int
				for p, free := range an.freePorts {
					if free {
						cands = append(cands, p)
					}
				}
				if len(cands) > 0 {
					an.offered = cands[api.Rand().IntN(len(cands))]
					api.Send(an.offered, augOfferMsg{initiator: fm.initiator}, idBits(api.N()))
				}
				break
			}
		}
	case 3: // D: free responders accept one offer and commit
		if !an.matched && an.initPort < 0 {
			best := -1
			for _, m := range inbox {
				om, ok := m.Payload.(augOfferMsg)
				if !ok || om.initiator == api.ID() {
					continue
				}
				if best < 0 || m.FromPort < best {
					best = m.FromPort
				}
			}
			if best >= 0 {
				an.matched = true
				an.matePort = best
				api.Send(best, augAcceptMsg{}, 1)
				api.Broadcast(matchedMsg{}, 1)
			}
		}
	case 4: // E: x flips to y and confirms to its old mate
		if an.offered >= 0 {
			for _, m := range inbox {
				if _, ok := m.Payload.(augAcceptMsg); ok && m.FromPort == an.offered {
					old := an.matePort
					an.matePort = an.offered
					api.Send(old, flipConfirmMsg{}, 1)
					break
				}
			}
		}
	case 5: // F: w flips to the initiator and notifies it
		if an.roleW && an.pendInit >= 0 {
			for _, m := range inbox {
				if _, ok := m.Payload.(flipConfirmMsg); ok && m.FromPort == an.matePort {
					an.matePort = an.pendInit
					api.Send(an.pendInit, matchNoticeMsg{}, 1)
					break
				}
			}
		}
	}
	return false
}

// RunAug3 improves a maximal matching by iters rounds of distributed
// length-3 augmentation. It returns the improved matching and run stats.
func RunAug3(g *graph.Static, m *matching.Matching, iters int, seed uint64, opts ...RunOption) (*matching.Matching, Stats) {
	nw := newNetworkOpts(g, func(v int32) Program {
		node := &aug3Node{iters: iters}
		node.matchState.matePort = -1
		if mate := m.Mate(v); mate >= 0 {
			node.matched = true
			node.matePort = portOf(g, v, mate)
		}
		return node
	}, seed, opts)
	// freePorts beliefs are initialized inside Step round 0 via the setup
	// broadcast; preset the slices here.
	for v := int32(0); v < int32(g.N()); v++ {
		node := nw.Inner(v).(*aug3Node)
		node.freePorts = make([]bool, g.Degree(v))
		for i := range node.freePorts {
			node.freePorts[i] = true
		}
	}
	stats := nw.Run(nw.budget(aug3TotalRounds(iters) + 2))
	return nw.collect(g, func(v int32) (bool, int) {
		n := nw.Inner(v).(*aug3Node)
		return n.matched, n.matePort
	}), stats
}
