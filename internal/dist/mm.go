package dist

import (
	"math"

	"repro/internal/graph"
	"repro/internal/invariant"
	"repro/internal/matching"
)

// Message payloads for the matching protocols. All are accounted at 1 bit
// except those carrying a vertex id (⌈log n⌉ bits).
type (
	proposeMsg     struct{}
	acceptMsg      struct{}
	matchedMsg     struct{} // "I am now matched" belief update
	augInitMsg     struct{ initiator int32 }
	augFwdMsg      struct{ initiator int32 }
	augOfferMsg    struct{ initiator int32 }
	augAcceptMsg   struct{}
	flipConfirmMsg struct{}
	matchNoticeMsg struct{}
)

// matchState is the node state shared by the matching protocols.
type matchState struct {
	matched   bool
	matePort  int
	announced bool
	freePorts []bool // belief: is the neighbor on this port free?
}

func (ms *matchState) init(api *NodeAPI) {
	ms.matePort = -1
	ms.freePorts = make([]bool, api.Degree())
	for i := range ms.freePorts {
		ms.freePorts[i] = true
	}
}

func (ms *matchState) applyBeliefs(inbox []Msg) {
	for _, m := range inbox {
		if _, ok := m.Payload.(matchedMsg); ok {
			ms.freePorts[m.FromPort] = false
		}
	}
}

// announceIfNeeded broadcasts the matched status once.
func (ms *matchState) announceIfNeeded(api *NodeAPI) {
	if ms.matched && !ms.announced {
		api.Broadcast(matchedMsg{}, 1)
		ms.announced = true
	}
}

// ---------------------------------------------------------------------------
// Deterministic color-ordered maximal matching.

// colorMMNode computes a maximal matching deterministically given a proper
// coloring: phases iterate over color classes; within a phase, free vertices
// of the current color repeatedly propose to their lowest believed-free
// port. Each sub-round is three rounds (propose / accept / announce).
// A proposer (color c) and an acceptor are never both of color c (the
// coloring is proper), so roles never conflict; every failed proposal
// witnesses its target getting matched, so maxDeg+1 sub-rounds per phase
// suffice and the final matching is maximal.
type colorMMNode struct {
	matchState
	color    int
	palette  int
	maxDeg   int
	proposed int // port proposed on in this sub-round, or -1
}

const colorMMStageLen = 3

func colorMMTotalRounds(palette, maxDeg int) int {
	return palette * (maxDeg + 1) * colorMMStageLen
}

func (cn *colorMMNode) Step(api *NodeAPI, round int, inbox []Msg) bool {
	if round == 0 {
		cn.init(api)
		cn.proposed = -1
	}
	total := colorMMTotalRounds(cn.palette, cn.maxDeg)
	phase := round / (colorMMStageLen * (cn.maxDeg + 1))
	switch round % colorMMStageLen {
	case 0: // absorb announcements, then propose
		cn.applyBeliefs(inbox)
		cn.proposed = -1
		if !cn.matched && cn.color == phase {
			for p, free := range cn.freePorts {
				if free {
					cn.proposed = p
					api.Send(p, proposeMsg{}, 1)
					break
				}
			}
		}
	case 1: // accept the lowest-port proposal if still free
		best := -1
		for _, m := range inbox {
			if _, ok := m.Payload.(proposeMsg); ok && (best < 0 || m.FromPort < best) {
				best = m.FromPort
			}
		}
		if best >= 0 && !cn.matched {
			cn.matched = true
			cn.matePort = best
			api.Send(best, acceptMsg{}, 1)
		}
	case 2: // proposer commits on accept; both sides announce once
		for _, m := range inbox {
			if _, ok := m.Payload.(acceptMsg); ok && m.FromPort == cn.proposed {
				cn.matched = true
				cn.matePort = cn.proposed
			}
		}
		cn.announceIfNeeded(api)
	}
	return round >= total
}

// RunColorMM computes a maximal matching of g given a proper coloring with
// the stated palette size, in palette·(maxdeg+1)·3 rounds of 1-bit messages.
func RunColorMM(g *graph.Static, colors []int, palette int, seed uint64, opts ...RunOption) (*matching.Matching, Stats) {
	maxDeg := g.MaxDegree()
	nw := newNetworkOpts(g, func(v int32) Program {
		return &colorMMNode{color: colors[v], palette: palette, maxDeg: maxDeg}
	}, seed, opts)
	stats := nw.Run(nw.budget(colorMMTotalRounds(palette, maxDeg) + 2))
	return nw.collect(g, func(v int32) (bool, int) {
		n := nw.Inner(v).(*colorMMNode)
		return n.matched, n.matePort
	}), stats
}

// ---------------------------------------------------------------------------
// Randomized maximal matching (Israeli–Itai style proposals).

// randMMNode: in every 3-round iteration each free vertex flips a coin;
// heads propose to a uniformly random believed-free port, tails accept one
// incoming proposal. A constant fraction of the remaining free-free edges is
// resolved per iteration in expectation, giving O(log n) iterations w.h.p.
type randMMNode struct {
	matchState
	proposed int
}

func (rn *randMMNode) Step(api *NodeAPI, round int, inbox []Msg) bool {
	if round == 0 {
		rn.init(api)
		rn.proposed = -1
	}
	switch round % colorMMStageLen {
	case 0:
		rn.applyBeliefs(inbox)
		rn.proposed = -1
		if !rn.matched && api.Rand().IntN(2) == 0 {
			var cands []int
			for p, free := range rn.freePorts {
				if free {
					cands = append(cands, p)
				}
			}
			if len(cands) > 0 {
				rn.proposed = cands[api.Rand().IntN(len(cands))]
				api.Send(rn.proposed, proposeMsg{}, 1)
			}
		}
	case 1:
		if !rn.matched && rn.proposed < 0 { // tails only
			best := -1
			for _, m := range inbox {
				if _, ok := m.Payload.(proposeMsg); ok && (best < 0 || m.FromPort < best) {
					best = m.FromPort
				}
			}
			if best >= 0 {
				rn.matched = true
				rn.matePort = best
				api.Send(best, acceptMsg{}, 1)
			}
		}
	case 2:
		for _, m := range inbox {
			if _, ok := m.Payload.(acceptMsg); ok && m.FromPort == rn.proposed {
				rn.matched = true
				rn.matePort = rn.proposed
			}
		}
		rn.announceIfNeeded(api)
	}
	return false
}

// RandMMRounds returns the round budget used by RunRandMM: Θ(log n)
// iterations of 3 rounds.
func RandMMRounds(n int) int {
	if n < 2 {
		return colorMMStageLen
	}
	iters := 8*int(math.Ceil(math.Log2(float64(n)))) + 16
	return iters * colorMMStageLen
}

// RunRandMM computes a maximal matching (w.h.p.) with the randomized
// proposal protocol, on any graph, in O(log n) rounds of 1-bit messages.
func RunRandMM(g *graph.Static, seed uint64, opts ...RunOption) (*matching.Matching, Stats) {
	nw := newNetworkOpts(g, func(v int32) Program { return &randMMNode{} }, seed, opts)
	stats := nw.Run(nw.budget(RandMMRounds(g.N())))
	return nw.collect(g, func(v int32) (bool, int) {
		n := nw.Inner(v).(*randMMNode)
		return n.matched, n.matePort
	}), stats
}

// collectMatching assembles a Matching from per-node (matched, matePort)
// claims, validating mutual consistency.
func collectMatching(g *graph.Static, state func(v int32) (bool, int)) *matching.Matching {
	m := matching.NewMatching(g.N())
	for v := int32(0); v < int32(g.N()); v++ {
		ok, port := state(v)
		if !ok {
			continue
		}
		w := g.Neighbor(v, port)
		if w <= v {
			continue // count each pair once, from the smaller endpoint
		}
		okW, portW := state(w)
		if !okW || g.Neighbor(w, portW) != v {
			invariant.Violatef("dist: inconsistent matching state between endpoints")
		}
		m.Match(v, w)
	}
	// Verify the smaller-endpoint pass did not skip any asymmetric claim.
	for v := int32(0); v < int32(g.N()); v++ {
		if ok, port := state(v); ok && !m.IsMatched(v) {
			w := g.Neighbor(v, port)
			_ = w
			invariant.Violatef("dist: matched node without a mutual partner")
		}
	}
	return m
}
