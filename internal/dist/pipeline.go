package dist

import (
	"repro/internal/graph"
	"repro/internal/invariant"
	"repro/internal/matching"
	"repro/internal/params"
)

// PhaseStats breaks down the cost of the distributed pipeline per phase.
type PhaseStats struct {
	Sparsify Stats // 1-round G_Δ construction (Theorem 3.3's message bound)
	Compose  Stats // 1-round bounded-degree composition
	Coloring Stats // Linial log* phase + palette walk-down
	MM       Stats // color-ordered maximal matching
	Aug      Stats // length-3 augmentation stage
	Total    Stats
}

// PipelineOptions tunes the distributed approximate-matching pipeline.
// Zero-valued fields are resolved from (β, ε) by internal/params
// (params.Pipeline.ResolveFor), the single source of the theorem defaults.
type PipelineOptions struct {
	// Delta is the per-vertex mark count of G_Δ; zero means
	// params.Delta(beta, eps).
	Delta int
	// DeltaAlpha is the degree bound of the composition; zero means
	// params.DeltaAlpha(2·Delta, eps).
	DeltaAlpha int
	// AugIters is the number of augmentation iterations;
	// zero means 8·DeltaAlpha.
	AugIters int
	// AugLen is the augmenting-path length bound of the final stage;
	// zero means 2⌈1/ε⌉−1 (capped at 9 to keep iteration windows short).
	AugLen int
	// Sparsifier selects the phase-1 backend: "gdelta" (default, the
	// paper's one-round random marking) or "edcs" (the propose/commit
	// EDCS fixpoint, whose guarantee does not need bounded β). The later
	// phases run on the chosen sparsifier unchanged.
	Sparsifier string
}

// ApproxMatchingPipeline runs the full distributed pipeline of Section 3.2
// on a graph with neighborhood independence β:
//
//  1. one round: random sparsifier G_Δ (arboricity ≤ 2Δ);
//  2. one round: Solomon bounded-degree sparsifier on top (max degree Δα);
//  3. Linial coloring of the composed sparsifier: O(log* n) + O(Δα²) rounds;
//  4. color-ordered maximal matching: O(Δα²) rounds;
//  5. length-3 augmentation stage.
//
// Every phase after the first two runs on the bounded-degree sparsifier, so
// the total message count is bounded by rounds × |E(G̃_Δ)| = rounds × O(nΔα)
// — sublinear in m for dense graphs (Theorem 3.3).
func ApproxMatchingPipeline(g *graph.Static, beta int, eps float64, opt PipelineOptions, seed uint64, opts ...RunOption) (*matching.Matching, PhaseStats) {
	r := params.Pipeline{
		Delta:      opt.Delta,
		DeltaAlpha: opt.DeltaAlpha,
		AugIters:   opt.AugIters,
		AugLen:     opt.AugLen,
	}.ResolveFor(beta, eps)
	opt.Delta, opt.DeltaAlpha, opt.AugIters, opt.AugLen = r.Delta, r.DeltaAlpha, r.AugIters, r.AugLen
	var ps PhaseStats
	var gd *graph.Static
	var s1 Stats
	switch opt.Sparsifier {
	case "", "gdelta":
		gd, s1 = RunSparsifier(g, opt.Delta, seed, opts...)
	case "edcs":
		gd, s1 = RunEDCSFor(g, eps, seed, opts...)
	default:
		invariant.Violatef("dist: unknown sparsifier backend %q", opt.Sparsifier)
	}
	ps.Sparsify = s1
	gt, s2 := RunBoundedDegree(gd, opt.DeltaAlpha, seed+1, opts...)
	ps.Compose = s2
	colors, s3 := RunColoring(gt, seed+2, opts...)
	ps.Coloring = s3
	palette := gt.MaxDegree() + 1
	mm, s4 := RunColorMM(gt, colors, palette, seed+3, opts...)
	ps.MM = s4
	improved, s5 := RunAugL(gt, mm, opt.AugLen, opt.AugIters, seed+4, opts...)
	ps.Aug = s5
	for _, s := range []Stats{s1, s2, s3, s4, s5} {
		ps.Total.Add(s)
	}
	return improved, ps
}

// ReliableApproxMatchingPipeline runs the same pipeline with every phase
// wrapped in the reliable-delivery adapter (per-port acks, round-based
// timeouts, bounded retransmission) so it survives the faults injected by
// it — drops, duplicates, and bounded delays. A nil interceptor runs the
// reliable pipeline fault-free (useful to measure the adapter's own
// overhead); ropt's zero values resolve to the adapter defaults.
func ReliableApproxMatchingPipeline(g *graph.Static, beta int, eps float64, opt PipelineOptions, ropt ReliableOptions, it Interceptor, seed uint64) (*matching.Matching, PhaseStats) {
	opts := []RunOption{WithReliability(ropt)}
	if it != nil {
		opts = append(opts, WithInterceptor(it))
	}
	return ApproxMatchingPipeline(g, beta, eps, opt, seed, opts...)
}

// DirectMM runs the randomized maximal matching directly on g — the
// baseline whose message complexity is Ω(m)·rounds, against which the
// pipeline's sublinear message count is compared in experiment T8.
func DirectMM(g *graph.Static, seed uint64) (*matching.Matching, Stats) {
	return RunRandMM(g, seed)
}
