package dist

import (
	"repro/internal/graph"
	"repro/internal/invariant"
)

// Linial-style distributed coloring (Linial, FOCS'87): starting from the
// unique ids as an n-coloring, each iteration reduces a proper k-coloring to
// a proper O((D·log k / log(D·log k))²)-ish coloring in ONE round using
// polynomials over a finite field: a vertex with color c interprets c's
// base-q digits as a degree-d polynomial p over F_q (q prime, q > D·d,
// q^(d+1) ≥ k) and picks an evaluation point a such that p(a) differs from
// every neighbor's polynomial at a; the new color is the pair (a, p(a)).
// Since two distinct degree-≤d polynomials agree on at most d points and
// the vertex has at most D neighbors, at most D·d < q points are excluded.
// After O(log* n) iterations the palette reaches a fixed point of size
// O(D²); a final one-color-per-round phase reduces it to D+1.

// colorStep holds the parameters of one Linial reduction step.
type colorStep struct {
	k int // palette size before the step
	d int // polynomial degree
	q int // field size (prime)
}

// linialSchedule computes the deterministic sequence of reduction steps for
// initial palette n and maximum degree D, shared by all nodes. It stops when
// a step no longer shrinks the palette; the final palette size is the k
// after the last step (or the initial k if no step helps).
func linialSchedule(n, maxDeg int) []colorStep {
	var steps []colorStep
	k := n
	for {
		d, q := linialParams(k, maxDeg)
		next := q * q
		if next >= k {
			return steps
		}
		steps = append(steps, colorStep{k: k, d: d, q: q})
		k = next
	}
}

// linialParams picks the minimal degree d (and its prime field size
// q = smallest prime > D·d) such that q^(d+1) ≥ k.
func linialParams(k, maxDeg int) (d, q int) {
	if maxDeg < 1 {
		maxDeg = 1
	}
	for d = 1; ; d++ {
		q = nextPrime(maxDeg*d + 1)
		// Check q^(d+1) >= k without overflow.
		pow, ok := 1, false
		for i := 0; i <= d; i++ {
			pow *= q
			if pow >= k {
				ok = true
				break
			}
		}
		if ok {
			return d, q
		}
	}
}

// nextPrime returns the smallest prime ≥ x.
func nextPrime(x int) int {
	if x <= 2 {
		return 2
	}
	for n := x; ; n++ {
		if isPrime(n) {
			return n
		}
	}
}

func isPrime(n int) bool {
	if n < 2 {
		return false
	}
	for f := 2; f*f <= n; f++ {
		if n%f == 0 {
			return false
		}
	}
	return true
}

// polyEval evaluates the polynomial whose coefficients are the base-q
// digits of color at point a, over F_q.
func polyEval(color, d, q, a int) int {
	// Horner over the digits, most significant first.
	digits := make([]int, d+1)
	c := color
	for i := 0; i <= d; i++ {
		digits[i] = c % q
		c /= q
	}
	val := 0
	for i := d; i >= 0; i-- {
		val = (val*a + digits[i]) % q
	}
	return val
}

// reduceColor executes one Linial step locally: given own color and
// neighbor colors under palette step.k, returns the new color < step.q².
func reduceColor(step colorStep, own int, neighbors []int) int {
	for a := 0; a < step.q; a++ {
		mine := polyEval(own, step.d, step.q, a)
		ok := true
		for _, nc := range neighbors {
			if polyEval(nc, step.d, step.q, a) == mine {
				ok = false
				break
			}
		}
		if ok {
			return a*step.q + mine
		}
	}
	// Unreachable for a proper coloring (at most D·d < q bad points).
	invariant.Violatef("dist: Linial reduction found no valid evaluation point")
	return 0 // unreachable: Violatef never returns
}

// coloringNode runs the full coloring pipeline:
//
//	round 0:                broadcast id (initial color)
//	rounds 1..len(steps):   apply Linial step i-1, broadcast new color
//	rounds after:           palette walk-down: in the round dedicated to
//	                        color c (from K−1 down to D+1), vertices with
//	                        color c adopt the smallest color in {0..D}
//	                        unused by neighbors and broadcast it.
type coloringNode struct {
	maxDeg    int
	steps     []colorStep
	fixedK    int // palette size after the Linial phase
	color     int
	neighbors []int // current colors by port
}

func newColoringNode(n, maxDeg int) *coloringNode {
	steps := linialSchedule(n, maxDeg)
	k := n
	if len(steps) > 0 {
		last := steps[len(steps)-1]
		k = last.q * last.q
	}
	return &coloringNode{maxDeg: maxDeg, steps: steps, fixedK: k}
}

func (cn *coloringNode) totalRounds() int {
	// 1 id round + len(steps) reduction rounds + walk-down rounds + 1 final.
	walk := cn.fixedK - (cn.maxDeg + 1)
	if walk < 0 {
		walk = 0
	}
	return 1 + len(cn.steps) + walk + 1
}

func (cn *coloringNode) Step(api *NodeAPI, round int, inbox []Msg) bool {
	if round == 0 {
		cn.color = int(api.ID())
		cn.neighbors = make([]int, api.Degree())
		for i := range cn.neighbors {
			cn.neighbors[i] = -1
		}
		api.Broadcast(cn.color, idBits(api.N()))
		return false
	}
	for _, m := range inbox {
		cn.neighbors[m.FromPort] = m.Payload.(int)
	}
	switch {
	case round <= len(cn.steps):
		step := cn.steps[round-1]
		cn.color = reduceColor(step, cn.color, cn.neighbors)
		api.Broadcast(cn.color, idBits(step.q*step.q))
	default:
		// Walk-down round for color c = fixedK − (round − len(steps) − 1) − 1.
		c := cn.fixedK - (round - len(cn.steps))
		if c <= cn.maxDeg {
			return true
		}
		if cn.color == c {
			used := make([]bool, cn.maxDeg+1)
			for _, nc := range cn.neighbors {
				if nc >= 0 && nc <= cn.maxDeg {
					used[nc] = true
				}
			}
			for newC := 0; newC <= cn.maxDeg; newC++ {
				if !used[newC] {
					cn.color = newC
					break
				}
			}
			api.Broadcast(cn.color, idBits(cn.fixedK))
		}
	}
	return false
}

// RunColoring computes a proper (D+1)-coloring of g distributively, where
// D = g.MaxDegree(), via Linial reduction (O(log* n) rounds) followed by the
// palette walk-down (O(D²) rounds). It returns the colors and run stats.
func RunColoring(g *graph.Static, seed uint64, opts ...RunOption) ([]int, Stats) {
	n := g.N()
	maxDeg := g.MaxDegree()
	template := newColoringNode(n, maxDeg)
	nw := newNetworkOpts(g, func(v int32) Program {
		return newColoringNode(n, maxDeg)
	}, seed, opts)
	stats := nw.Run(nw.budget(template.totalRounds() + 2))
	colors := make([]int, n)
	for v := int32(0); v < int32(n); v++ {
		colors[v] = nw.Inner(v).(*coloringNode).color
	}
	return colors, stats
}

// LinialRounds returns the number of Linial reduction iterations for the
// given n and D — the O(log* n) part of the round complexity, reported
// separately in experiment T7.
func LinialRounds(n, maxDeg int) int {
	return len(linialSchedule(n, maxDeg))
}

// VerifyColoring checks properness and palette size; for tests.
func VerifyColoring(g *graph.Static, colors []int, palette int) bool {
	for v := int32(0); v < int32(g.N()); v++ {
		if colors[v] < 0 || colors[v] >= palette {
			return false
		}
		for _, w := range g.Neighbors(v) {
			if colors[w] == colors[v] {
				return false
			}
		}
	}
	return true
}
