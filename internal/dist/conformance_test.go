package dist_test

// Adoption of the internal/testkit conformance harness: both CONGEST
// sparsifier programs (point-to-point and broadcast) must produce outputs
// satisfying the theorem checkers on certified instances.

import (
	"testing"

	"repro/internal/dist"
	"repro/internal/gen"
	"repro/internal/params"
	"repro/internal/testkit"
)

func TestDistSparsifierConformance(t *testing.T) {
	const eps = 0.3
	for _, inst := range []testkit.Instance{
		testkit.Certify(gen.CliqueInstance(120)),
		testkit.Certify(gen.UnitDiskInstance(120, 64, 13)),
	} {
		delta := params.Delta(inst.Beta, eps)
		sp, _ := dist.RunSparsifier(inst.G, delta, 5)
		if err := testkit.CheckSparsifierConformance(inst, sp, 2*delta); err != nil {
			t.Errorf("%s point-to-point: %v", inst.Name, err)
		}
		bsp, _ := dist.RunSparsifierBroadcast(inst.G, delta, 5)
		if err := testkit.CheckSparsifierConformance(inst, bsp, 2*delta); err != nil {
			t.Errorf("%s broadcast: %v", inst.Name, err)
		}
		if err := testkit.CheckSparsifierRatio(inst, sp, eps); err != nil {
			t.Errorf("%s: %v", inst.Name, err)
		}
	}
}
