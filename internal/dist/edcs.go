package dist

import (
	"repro/internal/arcs"
	"repro/internal/graph"
	"repro/internal/params"
)

// The distributed EDCS construction runs the edge-addition/removal fixpoint
// as alternating propose/commit cycles (2 simulated rounds per cycle):
//
//	propose: each node applies the degree updates received in its inbox,
//	  scans its ports for edges violating P1 (in H with degree sum > β) or
//	  P2 (outside H with degree sum < the low threshold), and proposes ONE
//	  uniformly random violating edge to the neighbor across it;
//	commit: an edge flips iff BOTH endpoints proposed it — each node
//	  proposes at most one edge, so the flipped set is a matching and both
//	  endpoints decide identically from their local inboxes. Flipping
//	  nodes broadcast their new H-degree.
//
// Degree updates reach both endpoints of every edge in the same round, so
// the two endpoints always agree on the edge's degree sum — an edge is a
// violation for one endpoint iff it is for the other, and a mutual
// proposal's direction (add vs remove) can never conflict. The random
// proposal choice breaks the symmetric near-deadlocks where every node
// keeps proposing a different incident violation than its neighbor.
//
// The network converges (all nodes idle, no messages in flight) exactly
// when no edge violates P1 or P2 — i.e. when H is an EDCS(G, β, λ).

// edcsProposal asks the neighbor across the port to flip the shared edge.
type edcsProposal struct {
	// Add distinguishes an addition (P2 repair) from a removal (P1 repair).
	Add bool
}

// edcsDegree announces the sender's new H-degree after a flip.
type edcsDegree struct {
	Deg int32
}

// edcsNode is the per-vertex program of the propose/commit fixpoint.
type edcsNode struct {
	beta   int
	lowTh  int
	inH    []bool  // by port: is the shared edge currently in H
	nbrDeg []int32 // by port: neighbor's last announced H-degree
	degH   int32
	// proposedPort is the port proposed in the current cycle (-1: none).
	proposedPort int
	proposedAdd  bool
	idle         bool
}

func (s *edcsNode) Step(api *NodeAPI, round int, inbox []Msg) bool {
	d := api.Degree()
	if s.inH == nil {
		s.inH = make([]bool, d)
		s.nbrDeg = make([]int32, d)
		s.proposedPort = -1
	}
	if round%2 == 0 { // propose
		for _, m := range inbox {
			s.nbrDeg[m.FromPort] = m.Payload.(edcsDegree).Deg
		}
		candidates := make([]int, 0, d)
		for p := 0; p < d; p++ {
			sum := int(s.degH + s.nbrDeg[p])
			if s.inH[p] && sum > s.beta {
				candidates = append(candidates, p)
			} else if !s.inH[p] && sum < s.lowTh {
				candidates = append(candidates, p)
			}
		}
		s.proposedPort = -1
		s.idle = len(candidates) == 0
		if !s.idle {
			p := candidates[api.Rand().IntN(len(candidates))]
			s.proposedPort = p
			s.proposedAdd = !s.inH[p]
			api.Send(p, edcsProposal{Add: s.proposedAdd}, 1)
		}
		return s.idle
	}
	// commit: flip iff the neighbor across the proposed port proposed the
	// same flip back.
	for _, m := range inbox {
		prop, ok := m.Payload.(edcsProposal)
		if !ok || m.FromPort != s.proposedPort || prop.Add != s.proposedAdd {
			continue
		}
		s.inH[s.proposedPort] = !s.inH[s.proposedPort]
		if s.proposedAdd {
			s.degH++
		} else {
			s.degH--
		}
		s.idle = false
		api.Broadcast(edcsDegree{Deg: s.degH}, idBits(s.beta+2))
		break
	}
	return s.idle
}

// Idle feeds the livelock guard: a node with no proposal in flight and no
// local violation will never act again unless a degree update arrives.
func (s *edcsNode) Idle() bool { return s.idle }

// RunEDCS constructs an EDCS(g, beta, lambda) distributively via the
// propose/commit fixpoint above, using 1-bit proposals and O(log β)-bit
// degree announcements. It returns the subgraph and the run stats; a
// Converged verdict certifies that properties P1 and P2 hold globally.
// Deterministic for a fixed (g, beta, lambda, seed).
func RunEDCS(g *graph.Static, beta int, lambda float64, seed uint64, opts ...RunOption) (*graph.Static, Stats) {
	lowTh := params.EDCSLowThreshold(beta, lambda)
	nw := newNetworkOpts(g, func(v int32) Program {
		return &edcsNode{beta: beta, lowTh: lowTh}
	}, seed, opts)
	// Cap, not a target: the run stops at convergence, and the potential
	// argument bounds the total flips by n·β² (two rounds per cycle, plus
	// slack for the cycles that only resolve proposal mismatches).
	stats := nw.Run(nw.budget(16 + 8*g.N()*beta))
	buf := arcs.Get()
	for v := int32(0); v < int32(g.N()); v++ {
		node := nw.Inner(v).(*edcsNode)
		for p, in := range node.inH {
			if in {
				buf.Add(v, g.Neighbor(v, p))
			}
		}
	}
	sp := graph.FromPackedArcs(g.N(), buf.Keys())
	buf.Release()
	return sp, stats
}

// RunEDCSFor is RunEDCS with (β_edcs, λ) resolved from ε by the unified
// parameter resolution — the entry point the pipeline uses.
func RunEDCSFor(g *graph.Static, eps float64, seed uint64, opts ...RunOption) (*graph.Static, Stats) {
	p := params.EDCS{}.ResolveFor(eps)
	return RunEDCS(g, p.Beta, p.Lambda, seed, opts...)
}
