package dist

import (
	"math/bits"

	"repro/internal/arcs"
	"repro/internal/graph"
)

// markPayload is the 1-bit "this edge is marked" message.
type markPayload struct{}

// sparsifierNode implements the one-round distributed construction of G_Δ:
// in round 0 the node marks Δ random incident edges (all of them if
// deg ≤ 2Δ) and sends a 1-bit message along each; in round 1 it records the
// marks it received and halts. The sparsifier consists of all edges marked
// by at least one endpoint.
type sparsifierNode struct {
	delta int
	ports map[int]bool // ports of incident sparsifier edges (mine + received)
}

func (s *sparsifierNode) Step(api *NodeAPI, round int, inbox []Msg) bool {
	switch round {
	case 0:
		d := api.Degree()
		s.ports = make(map[int]bool)
		if d <= 2*s.delta {
			for p := 0; p < d; p++ {
				s.ports[p] = true
			}
		} else {
			// Partial Fisher–Yates over the ports: Δ distinct samples.
			perm := make([]int, d)
			for i := range perm {
				perm[i] = i
			}
			for t := 0; t < s.delta; t++ {
				i := t + api.Rand().IntN(d-t)
				perm[t], perm[i] = perm[i], perm[t]
				s.ports[perm[t]] = true
			}
		}
		// Send in ascending port order: map iteration order would scramble
		// the outbox and with it a fault interceptor's per-message coin
		// stream, breaking run-to-run reproducibility of injected faults.
		for p := 0; p < d; p++ {
			if s.ports[p] {
				api.Send(p, markPayload{}, 1)
			}
		}
		return false
	default:
		for _, m := range inbox {
			s.ports[m.FromPort] = true
		}
		return true
	}
}

// RunSparsifier constructs G_Δ distributively: one communication round,
// 1-bit unicast messages only. It returns the sparsifier and the run stats
// (Messages is exactly the number of marks, ≈ nΔ ≪ m).
func RunSparsifier(g *graph.Static, delta int, seed uint64, opts ...RunOption) (*graph.Static, Stats) {
	nw := newNetworkOpts(g, func(v int32) Program {
		return &sparsifierNode{delta: delta}
	}, seed, opts)
	stats := nw.Run(nw.budget(4))
	buf := arcs.Get()
	for v := int32(0); v < int32(g.N()); v++ {
		node := nw.Inner(v).(*sparsifierNode)
		for p := range node.ports {
			buf.Add(v, g.Neighbor(v, p))
		}
	}
	sp := graph.FromPackedArcs(g.N(), buf.Keys())
	buf.Release()
	return sp, stats
}

// boundedDegreeNode implements the one-round construction of the Solomon
// ITCS'18 bounded-degree sparsifier: each node marks its first
// min(Δα, deg) ports and sends a 1-bit message along each; an edge belongs
// to the sparsifier iff both endpoints marked it (own mark + received mark).
type boundedDegreeNode struct {
	deltaAlpha int
	mine       map[int]bool
	kept       []int // ports of kept edges
}

func (s *boundedDegreeNode) Step(api *NodeAPI, round int, inbox []Msg) bool {
	switch round {
	case 0:
		s.mine = make(map[int]bool)
		d := min(api.Degree(), s.deltaAlpha)
		for p := 0; p < d; p++ {
			s.mine[p] = true
			api.Send(p, markPayload{}, 1)
		}
		return false
	default:
		for _, m := range inbox {
			if s.mine[m.FromPort] {
				s.kept = append(s.kept, m.FromPort)
			}
		}
		return true
	}
}

// RunBoundedDegree constructs the bounded-degree sparsifier of g
// distributively in one communication round. The result has maximum degree
// at most deltaAlpha.
func RunBoundedDegree(g *graph.Static, deltaAlpha int, seed uint64, opts ...RunOption) (*graph.Static, Stats) {
	nw := newNetworkOpts(g, func(v int32) Program {
		return &boundedDegreeNode{deltaAlpha: deltaAlpha}
	}, seed, opts)
	stats := nw.Run(nw.budget(4))
	buf := arcs.Get()
	for v := int32(0); v < int32(g.N()); v++ {
		node := nw.Inner(v).(*boundedDegreeNode)
		for _, p := range node.kept {
			buf.Add(v, g.Neighbor(v, p))
		}
	}
	sp := graph.FromPackedArcs(g.N(), buf.Keys())
	buf.Release()
	return sp, stats
}

// broadcastSparsifierNode constructs G_Δ under BROADCAST transmission:
// a node cannot address individual neighbors, so it must broadcast its
// marked-port set (Δ·⌈log deg⌉ bits) along every incident edge. The
// construction still takes one round, but the message complexity is
// Σ_v deg(v) = 2m — this is the Section 3.2.1 observation that sublinear
// message complexity REQUIRES unicast/multicast systems.
type broadcastSparsifierNode struct {
	delta int
	ports map[int]bool
}

func (s *broadcastSparsifierNode) Step(api *NodeAPI, round int, inbox []Msg) bool {
	switch round {
	case 0:
		d := api.Degree()
		s.ports = make(map[int]bool)
		if d <= 2*s.delta {
			for p := 0; p < d; p++ {
				s.ports[p] = true
			}
		} else {
			perm := make([]int, d)
			for i := range perm {
				perm[i] = i
			}
			for t := 0; t < s.delta; t++ {
				i := t + api.Rand().IntN(d-t)
				perm[t], perm[i] = perm[i], perm[t]
				s.ports[perm[t]] = true
			}
		}
		marked := make([]int, 0, len(s.ports))
		for p := 0; p < d; p++ {
			if s.ports[p] {
				marked = append(marked, p)
			}
		}
		// Broadcast the whole mark set to every neighbor.
		api.Broadcast(marked, len(marked)*idBits(api.Degree()+1))
		return false
	default:
		// Receivers would need sender-side port translation to interpret
		// the mark sets (ports are private in KT0) — one more reason the
		// broadcast model is the wrong fit. This node type exists to model
		// the COST of the broadcast round; the sparsifier is assembled from
		// the senders' marks by the harness.
		return true
	}
}

// RunSparsifierBroadcast measures the one-round construction under the
// broadcast cost model; the resulting sparsifier is identical in
// distribution but the message count is Θ(m) (compare RunSparsifier's nΔ).
func RunSparsifierBroadcast(g *graph.Static, delta int, seed uint64, opts ...RunOption) (*graph.Static, Stats) {
	nw := newNetworkOpts(g, func(v int32) Program {
		return &broadcastSparsifierNode{delta: delta}
	}, seed, opts)
	stats := nw.Run(nw.budget(4))
	buf := arcs.Get()
	for v := int32(0); v < int32(g.N()); v++ {
		node := nw.Inner(v).(*broadcastSparsifierNode)
		for p := range node.ports {
			buf.Add(v, g.Neighbor(v, p))
		}
	}
	sp := graph.FromPackedArcs(g.N(), buf.Keys())
	buf.Release()
	return sp, stats
}

// idBits returns the message size ⌈log₂ n⌉ used to account for id/color
// payloads (the CONGEST message budget).
func idBits(n int) int {
	if n <= 1 {
		return 1
	}
	return bits.Len(uint(n - 1))
}
