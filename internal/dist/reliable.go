package dist

import (
	"sort"

	"repro/internal/graph"
	"repro/internal/matching"
)

// This file implements the self-healing reliable-delivery adapter: an
// α-synchronizer (Awerbuch) that lets the synchronous protocols of this
// package run unchanged over a lossy delivery path. Each node wraps its
// program in a reliableNode that numbers outgoing messages per (port,
// virtual round), acknowledges everything it receives, retransmits
// unacknowledged packets on a round-based timeout with capped exponential
// backoff, and advances its inner program's virtual round only when every
// live port has delivered its complete previous-round traffic (announced by
// an end-of-round marker carrying the data count).
//
// Determinism contract: the adapter feeds the inner program its virtual-
// round inbox sorted by (FromPort, Seq) — exactly the order the fault-free
// simulator produces (senders are iterated in id order and adjacency is
// sorted) — and shares the node's random stream with the inner program
// without consuming from it. A run under drop/duplication/delay faults
// therefore yields BIT-IDENTICAL inner results to the fault-free run; only
// rounds/messages/bits grow.

// Packet kinds of the adapter's wire protocol.
const (
	pktData   uint8 = iota // payload-carrying; Seq numbers it within (port, VR)
	pktEOR                 // end of round: Seq = count of data packets in VR
	pktAck                 // acknowledges data (VR, Seq)
	pktAckEOR              // acknowledges the EOR of VR
)

// relHdrBits is the accounted header overhead of every adapter packet
// (kind + virtual round + sequence/count), on top of the payload bits.
const relHdrBits = 24

// backoffCap caps the exponential backoff shift: the k-th retransmission
// waits Timeout·2^min(k,backoffCap) rounds.
const backoffCap = 4

// relPkt is the adapter's wire format.
type relPkt struct {
	Kind    uint8
	VR      int  // sender's virtual round
	Seq     int  // data: sequence within (port, VR); EOR: data count; acks: echo
	Fin     bool // EOR only: the sender halted after VR; no later vrounds follow
	Payload any
}

// ReliableOptions tunes the reliable-delivery adapter. Zero values resolve
// to the defaults.
type ReliableOptions struct {
	// Timeout is the number of rounds to wait for an ack before the first
	// retransmission (default 2: the fault-free ack round-trip, so a
	// loss-free run never retransmits).
	Timeout int
	// MaxRetries bounds retransmissions per packet (default 20). A packet
	// still unacknowledged after MaxRetries retransmissions declares its
	// port dead: the adapter gives the neighbor up for crashed and stops
	// waiting on it. An attempt fails when the packet OR its ack is lost —
	// probability 1−(1−p)² ≈ 2p at drop rate p — so a port dies with
	// probability (2p−p²)^(MaxRetries+1) per packet: ~5·10⁻¹⁰ at p = 0.2
	// with the default, i.e. never in practice below total link failure.
	MaxRetries int
}

func (o ReliableOptions) withDefaults() ReliableOptions {
	if o.Timeout <= 0 {
		o.Timeout = 2
	}
	if o.MaxRetries <= 0 {
		o.MaxRetries = 20
	}
	return o
}

// worstVRoundCost bounds the real rounds one virtual round can take: the
// full retransmission ladder of the slowest packet plus the ack round-trip.
func (o ReliableOptions) worstVRoundCost() int {
	cost := 4
	for a := 0; a <= o.MaxRetries; a++ {
		shift := a
		if shift > backoffCap {
			shift = backoffCap
		}
		cost += o.Timeout << shift
	}
	return cost
}

// relOut is an unacknowledged packet awaiting ack or retransmission.
type relOut struct {
	port     int
	pkt      relPkt
	bits     int
	attempts int
	resendAt int
}

// relPort is the adapter's per-port (per-neighbor) state.
type relPort struct {
	dead bool
	got  map[int]map[int]Msg // VR -> seq -> deduplicated data
	eor  map[int]int         // VR -> announced data count
	fin  int                 // neighbor's final VR, or -1
}

// reliableNode wraps a Program with the reliable-delivery adapter.
type reliableNode struct {
	inner     Program
	opt       ReliableOptions
	vr        int // next inner round to execute
	innerDone bool
	ports     []*relPort
	out       []relOut
	innerAPI  *NodeAPI
	deadPorts int
}

func (rn *reliableNode) init(api *NodeAPI) {
	rn.ports = make([]*relPort, api.Degree())
	for p := range rn.ports {
		rn.ports[p] = &relPort{
			got: make(map[int]map[int]Msg),
			eor: make(map[int]int),
			fin: -1,
		}
	}
	// The inner program shares the node's id, topology view, and — key for
	// the determinism contract — its random stream. Sends are captured in
	// the shim's outbox and repackaged as data packets.
	rn.innerAPI = &NodeAPI{id: api.id, g: api.g, rng: api.rng, network: api.network}
}

func (rn *reliableNode) Step(api *NodeAPI, round int, inbox []Msg) bool {
	if rn.ports == nil {
		rn.init(api)
	}
	// 1. Process arrivals: ack data/EOR, buffer fresh data, drain acks.
	// This runs before the retransmission check so a timely ack cancels a
	// retransmission due this very round.
	for _, m := range inbox {
		pkt, ok := m.Payload.(relPkt)
		if !ok {
			continue // foreign traffic (never happens in a uniform network)
		}
		p := rn.ports[m.FromPort]
		switch pkt.Kind {
		case pktData:
			api.Send(m.FromPort, relPkt{Kind: pktAck, VR: pkt.VR, Seq: pkt.Seq}, relHdrBits)
			if pkt.VR < rn.vr-1 {
				break // stale: that virtual round was already consumed
			}
			byseq := p.got[pkt.VR]
			if byseq == nil {
				byseq = make(map[int]Msg)
				p.got[pkt.VR] = byseq
			}
			if _, dup := byseq[pkt.Seq]; !dup {
				byseq[pkt.Seq] = Msg{FromPort: m.FromPort, Payload: pkt.Payload, Bits: m.Bits - relHdrBits}
			}
		case pktEOR:
			api.Send(m.FromPort, relPkt{Kind: pktAckEOR, VR: pkt.VR}, relHdrBits)
			p.eor[pkt.VR] = pkt.Seq
			if pkt.Fin && (p.fin < 0 || pkt.VR < p.fin) {
				p.fin = pkt.VR
			}
		case pktAck:
			rn.unqueue(m.FromPort, pktData, pkt.VR, pkt.Seq)
		case pktAckEOR:
			rn.unqueue(m.FromPort, pktEOR, pkt.VR, -1)
		}
	}
	// 2. Retransmit due packets; exhausting the retry budget kills the port.
	kept := rn.out[:0]
	for _, o := range rn.out {
		if rn.ports[o.port].dead {
			continue
		}
		if o.resendAt > round {
			kept = append(kept, o)
			continue
		}
		if o.attempts >= rn.opt.MaxRetries {
			rn.ports[o.port].dead = true
			rn.deadPorts++
			continue // this and all later entries for the port are dropped
		}
		o.attempts++
		shift := o.attempts
		if shift > backoffCap {
			shift = backoffCap
		}
		o.resendAt = round + rn.opt.Timeout<<shift
		api.Send(o.port, o.pkt, o.bits)
		kept = append(kept, o)
	}
	rn.out = kept
	if n := len(rn.out); n > 0 { // a port death may strand earlier entries
		live := rn.out[:0]
		for _, o := range rn.out {
			if !rn.ports[o.port].dead {
				live = append(live, o)
			}
		}
		rn.out = live
	}
	// 3. Advance the inner program while its next round is enabled.
	for !rn.innerDone && rn.canAdvance() {
		rn.advance(api, round)
	}
	return rn.innerDone && len(rn.out) == 0
}

// canAdvance reports whether inner round rn.vr can execute: the previous
// virtual round's traffic is complete on every live port and no own packet
// is unacknowledged (bounding the window to one virtual round in flight).
// A node whose every port is dead can no longer participate and stalls
// (reported via Idle) rather than computing garbage in isolation.
func (rn *reliableNode) canAdvance() bool {
	if len(rn.out) > 0 {
		return false
	}
	live := 0
	need := rn.vr - 1
	for _, p := range rn.ports {
		if p.dead {
			continue
		}
		live++
		if need < 0 {
			continue // round 0 needs no input
		}
		if p.fin >= 0 && need > p.fin {
			continue // neighbor halted before this round: vacuously complete
		}
		cnt, ok := p.eor[need]
		if !ok || len(p.got[need]) < cnt {
			return false
		}
	}
	return live > 0 || len(rn.ports) == 0
}

// advance executes inner round rn.vr: assemble the virtual inbox in
// fault-free order, step the inner program, and packetize its sends plus
// one end-of-round marker per live port.
func (rn *reliableNode) advance(api *NodeAPI, round int) {
	vr := rn.vr
	var inbox []Msg
	if vr > 0 {
		for _, p := range rn.ports {
			byseq := p.got[vr-1]
			if len(byseq) > 0 && !p.dead {
				seqs := make([]int, 0, len(byseq))
				for s := range byseq {
					seqs = append(seqs, s)
				}
				sort.Ints(seqs)
				for _, s := range seqs {
					inbox = append(inbox, byseq[s])
				}
			}
			delete(p.got, vr-1)
			delete(p.eor, vr-1)
		}
	}
	rn.innerAPI.outbox = rn.innerAPI.outbox[:0]
	done := rn.inner.Step(rn.innerAPI, vr, inbox)
	counts := make([]int, len(rn.ports))
	for _, m := range rn.innerAPI.outbox {
		if rn.ports[m.port].dead {
			continue // futile; the degradation shows up in output quality
		}
		pkt := relPkt{Kind: pktData, VR: vr, Seq: counts[m.port], Payload: m.payload}
		counts[m.port]++
		rn.post(api, round, m.port, pkt, m.bits+relHdrBits)
	}
	for port, p := range rn.ports {
		if p.dead {
			continue
		}
		rn.post(api, round, port, relPkt{Kind: pktEOR, VR: vr, Seq: counts[port], Fin: done}, relHdrBits)
	}
	rn.vr++
	rn.innerDone = done
}

// post transmits a packet and queues it for retransmission until acked.
func (rn *reliableNode) post(api *NodeAPI, round, port int, pkt relPkt, bits int) {
	api.Send(port, pkt, bits)
	rn.out = append(rn.out, relOut{port: port, pkt: pkt, bits: bits, resendAt: round + rn.opt.Timeout})
}

// unqueue drops the out-entry matched by an ack. seq < 0 matches any
// (EOR acks carry no sequence).
func (rn *reliableNode) unqueue(port int, kind uint8, vr, seq int) {
	for i, o := range rn.out {
		if o.port == port && o.pkt.Kind == kind && o.pkt.VR == vr && (seq < 0 || o.pkt.Seq == seq) {
			rn.out = append(rn.out[:i], rn.out[i+1:]...)
			return
		}
	}
}

// Idle implements the livelock guard's protocol: with no packet awaiting
// ack and the inner round not enabled, this node will never act again
// unless a message arrives.
func (rn *reliableNode) Idle() bool {
	return len(rn.out) == 0 && (rn.innerDone || !rn.canAdvance())
}

// ---------------------------------------------------------------------------
// Network plumbing shared by the phase runners.

// newNetworkOpts builds a network and applies the runner options.
func newNetworkOpts(g *graph.Static, factory func(v int32) Program, seed uint64, opts []RunOption) *Network {
	nw := NewNetwork(g, factory, seed)
	for _, o := range opts {
		if o != nil {
			o(nw)
		}
	}
	return nw
}

// WithReliability wraps every node's program in the reliable-delivery
// adapter. Apply it before Run (the phase runners do this for you via
// their variadic options).
func WithReliability(opt ReliableOptions) RunOption {
	return func(nw *Network) {
		o := opt.withDefaults()
		nw.reliableOpt = &o
		inner := nw.factory
		nw.factory = func(v int32) Program { return &reliableNode{inner: inner(v), opt: o} }
		for v := range nw.progs {
			nw.progs[v] = nw.factory(int32(v))
		}
	}
}

// budget scales a fault-free round budget to the reliable adapter's
// worst-case real-round cost. The scaled value is only a cap — runs stop
// at convergence, which the adapter reaches in ~2 real rounds per virtual
// round when no fault fires.
func (nw *Network) budget(base int) int {
	if nw.reliableOpt == nil {
		return base
	}
	return (base + 4) * nw.reliableOpt.worstVRoundCost()
}

// Inner returns node v's program with the reliable-delivery adapter (if
// installed) unwrapped — result extraction reads the inner protocol state.
func (nw *Network) Inner(v int32) Program {
	if rn, ok := nw.progs[v].(*reliableNode); ok {
		return rn.inner
	}
	return nw.progs[v]
}

// DeadPorts totals the ports declared dead by the reliable adapter across
// all nodes (0 without the adapter): the count of neighbor links abandoned
// after the retry budget, the adapter's graceful-degradation signal.
func (nw *Network) DeadPorts() int {
	total := 0
	for _, p := range nw.progs {
		if rn, ok := p.(*reliableNode); ok {
			total += rn.deadPorts
		}
	}
	return total
}

// collect assembles a matching from per-node claims: strict mutual-
// consistency checking on the fault-free path (an inconsistency there is a
// protocol bug and must panic), tolerant under fault injection or the
// reliable adapter, where a crashed or cut-off endpoint can legitimately
// leave a half-recorded pair — dropping it degrades quality, not validity.
func (nw *Network) collect(g *graph.Static, state func(v int32) (bool, int)) *matching.Matching {
	if nw.interceptor == nil && nw.reliableOpt == nil {
		return collectMatching(g, state)
	}
	return collectMatchingTolerant(g, state)
}

// collectMatchingTolerant keeps exactly the mutually-claimed pairs.
func collectMatchingTolerant(g *graph.Static, state func(v int32) (bool, int)) *matching.Matching {
	m := matching.NewMatching(g.N())
	for v := int32(0); v < int32(g.N()); v++ {
		ok, port := state(v)
		if !ok {
			continue
		}
		w := g.Neighbor(v, port)
		if w <= v {
			continue
		}
		okW, portW := state(w)
		if okW && g.Neighbor(w, portW) == v {
			m.Match(v, w)
		}
	}
	return m
}
