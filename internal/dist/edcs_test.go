package dist

import (
	"testing"

	"repro/internal/edcs"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/matching"
	"repro/internal/params"
)

// TestRunEDCSInvariants: a Converged verdict must coincide with the global
// EDCS properties, checked by the sequential package's verifier on several
// families — including dense ones with unbounded neighborhood independence.
func TestRunEDCSInvariants(t *testing.T) {
	for name, g := range map[string]*graph.Static{
		"clique24":       gen.Clique(24),
		"path30":         gen.Path(30),
		"bipartite12x18": gen.CompleteBipartite(12, 18),
		"er60":           gen.ErdosRenyi(60, 0.2, 9),
		"star40":         gen.Star(40),
	} {
		for _, p := range []struct {
			beta   int
			lambda float64
		}{{8, 0.25}, {6, 0.4}} {
			h, stats := RunEDCS(g, p.beta, p.lambda, 3)
			if stats.Verdict != VerdictConverged {
				t.Fatalf("%s beta=%d: verdict %v after %d rounds", name, p.beta, stats.Verdict, stats.Rounds)
			}
			if err := edcs.CheckInvariants(g, h, p.beta, p.lambda); err != nil {
				t.Errorf("%s beta=%d: %v", name, p.beta, err)
			}
		}
	}
}

// TestRunEDCSMatchesSequentialParams: the ε entry point must resolve the
// same parameters as the sequential backend, and the result must satisfy
// the invariants for exactly those parameters.
func TestRunEDCSMatchesSequentialParams(t *testing.T) {
	const eps = 0.3
	g := gen.ErdosRenyi(50, 0.25, 4)
	h, stats := RunEDCSFor(g, eps, 7)
	if stats.Verdict != VerdictConverged {
		t.Fatalf("verdict %v", stats.Verdict)
	}
	p := params.EDCS{}.ResolveFor(eps)
	if err := edcs.CheckInvariants(g, h, p.Beta, p.Lambda); err != nil {
		t.Error(err)
	}
}

// TestRunEDCSDeterministic: bit-identical subgraph and stats across runs
// for a fixed seed.
func TestRunEDCSDeterministic(t *testing.T) {
	g := gen.ErdosRenyi(40, 0.3, 2)
	a, sa := RunEDCS(g, 8, 0.25, 11)
	b, sb := RunEDCS(g, 8, 0.25, 11)
	if sa != sb {
		t.Errorf("stats differ: %+v vs %+v", sa, sb)
	}
	ae, be := a.Edges(), b.Edges()
	if len(ae) != len(be) {
		t.Fatalf("edge counts differ: %d vs %d", len(ae), len(be))
	}
	for i := range ae {
		if ae[i] != be[i] {
			t.Fatalf("edge %d differs: %v vs %v", i, ae[i], be[i])
		}
	}
}

// TestPipelineEDCSBackend runs the full pipeline under both backend names
// on a certified instance and checks each output is a valid matching of the
// input of reasonable size.
func TestPipelineEDCSBackend(t *testing.T) {
	const eps = 0.3
	inst := gen.BoundedDiversityInstance(80, 4, 24, 5)
	for _, backend := range []string{"gdelta", "edcs"} {
		m, ps := ApproxMatchingPipeline(inst.G, inst.Beta, eps, PipelineOptions{Sparsifier: backend}, 9)
		if err := matching.Verify(inst.G, m); err != nil {
			t.Fatalf("%s: %v", backend, err)
		}
		if m.Size() == 0 {
			t.Fatalf("%s: empty matching", backend)
		}
		if ps.Sparsify.Messages == 0 {
			t.Errorf("%s: sparsify phase sent no messages", backend)
		}
	}
}

// TestPipelineUnknownBackendPanics pins the panic contract on typos.
func TestPipelineUnknownBackendPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unknown backend did not panic")
		}
	}()
	g := gen.Path(4)
	ApproxMatchingPipeline(g, 1, 0.3, PipelineOptions{Sparsifier: "nope"}, 1)
}
