package dist

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/matching"
)

func TestLinialParamsSatisfyConstraints(t *testing.T) {
	for _, tc := range []struct{ k, maxDeg int }{
		{100, 3}, {1 << 16, 8}, {50, 1}, {7, 20},
	} {
		d, q := linialParams(tc.k, tc.maxDeg)
		if q <= tc.maxDeg*d {
			t.Errorf("k=%d D=%d: q=%d not above D·d=%d", tc.k, tc.maxDeg, q, tc.maxDeg*d)
		}
		pow := 1
		ok := false
		for i := 0; i <= d; i++ {
			pow *= q
			if pow >= tc.k {
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("k=%d D=%d: q^(d+1) cannot encode the palette", tc.k, tc.maxDeg)
		}
		if !isPrime(q) {
			t.Errorf("q=%d not prime", q)
		}
	}
}

func TestLinialScheduleEmptyWhenAlreadySmall(t *testing.T) {
	// Palette already at the fixed point: no steps.
	if steps := linialSchedule(10, 8); len(steps) != 0 {
		t.Errorf("tiny palette produced %d steps", len(steps))
	}
}

func TestVerifyColoringNegative(t *testing.T) {
	g := gen.Path(3)
	if VerifyColoring(g, []int{0, 0, 1}, 2) {
		t.Error("improper coloring accepted")
	}
	if VerifyColoring(g, []int{0, 5, 0}, 2) {
		t.Error("out-of-palette coloring accepted")
	}
	if !VerifyColoring(g, []int{0, 1, 0}, 2) {
		t.Error("proper 2-coloring rejected")
	}
}

func TestRandMMRoundsMonotone(t *testing.T) {
	if RandMMRounds(1) <= 0 {
		t.Error("round budget for trivial network not positive")
	}
	if RandMMRounds(1000) > RandMMRounds(1_000_000) {
		t.Error("round budget not monotone in n")
	}
}

func TestPortOfPanicsOnNonNeighbor(t *testing.T) {
	g := gen.Path(3)
	defer func() {
		if recover() == nil {
			t.Fatal("portOf on non-neighbor did not panic")
		}
	}()
	portOf(g, 0, 2)
}

func TestColoringOnEdgelessAndSingleton(t *testing.T) {
	for _, g := range []*graph.Static{graph.Empty(5), graph.Empty(1)} {
		colors, _ := RunColoring(g, 1)
		if !VerifyColoring(g, colors, g.MaxDegree()+1) {
			t.Errorf("edgeless coloring invalid: %v", colors)
		}
	}
}

func TestPipelineOnSparseGraphDegenerates(t *testing.T) {
	// On a low-degree graph the sparsifier keeps everything and the
	// pipeline still produces a valid near-maximal matching.
	g := gen.Cycle(60)
	m, ps := ApproxMatchingPipeline(g, 2, 0.5, PipelineOptions{Delta: 3, DeltaAlpha: 4, AugIters: 20}, 9)
	if err := matching.Verify(g, m); err != nil {
		t.Fatal(err)
	}
	if m.Size() < 20 { // MCM of C60 = 30; maximal ≥ 20
		t.Errorf("cycle matching %d too small", m.Size())
	}
	if ps.Total.Rounds == 0 {
		t.Error("stats missing")
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{Rounds: 1, Messages: 2, Bits: 3}
	a.Add(Stats{Rounds: 4, Messages: 5, Bits: 6})
	if a != (Stats{Rounds: 5, Messages: 7, Bits: 9}) {
		t.Errorf("Add = %+v", a)
	}
}

func TestCollectMatchingDetectsInconsistency(t *testing.T) {
	g := gen.Path(3) // 0-1-2
	defer func() {
		if recover() == nil {
			t.Fatal("inconsistent claims did not panic")
		}
	}()
	collectMatching(g, func(v int32) (bool, int) {
		// 0 claims 1; 1 claims 2; 2 claims 1 — asymmetric.
		switch v {
		case 0:
			return true, 0
		case 1:
			return true, 1 // port 1 of vertex 1 is vertex 2
		default:
			return true, 0
		}
	})
}
