package dist

import (
	"testing"

	"repro/internal/gen"
)

func BenchmarkRunSparsifier(b *testing.B) {
	g := gen.BoundedDiversity(2000, 2, 128, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RunSparsifier(g, 6, uint64(i))
	}
}

func BenchmarkRunColoring(b *testing.B) {
	g, _ := RunBoundedDegree(gen.UnitDisk(600, 0.08, 2), 6, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RunColoring(g, uint64(i))
	}
}

func BenchmarkRunRandMM(b *testing.B) {
	g := gen.UnitDisk(800, 0.07, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RunRandMM(g, uint64(i))
	}
}

func BenchmarkFullPipeline(b *testing.B) {
	inst := gen.UnitDiskInstance(600, 40, 4)
	opt := PipelineOptions{Delta: 4, DeltaAlpha: 6, AugIters: 20}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ApproxMatchingPipeline(inst.G, inst.Beta, 0.5, opt, uint64(i))
	}
}

func BenchmarkRunAugL(b *testing.B) {
	g := gen.UnitDisk(500, 0.1, 5)
	mm, _ := RunRandMM(g, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RunAugL(g, mm.Clone(), 5, 20, uint64(i))
	}
}
