package dist

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/matching"
)

func TestRunAugLSolvesP4(t *testing.T) {
	g := gen.Path(4)
	m := matching.NewMatching(4)
	m.Match(1, 2)
	improved, _ := RunAugL(g, m, 3, 40, 3)
	if err := matching.Verify(g, improved); err != nil {
		t.Fatal(err)
	}
	if improved.Size() != 2 {
		t.Errorf("augL(3) on P4: size %d, want 2", improved.Size())
	}
}

func TestRunAugLSolvesP6NeedsLength5(t *testing.T) {
	// P6 with outer-middle edges matched needs one length-5 augmenting path.
	g := gen.Path(6)
	m := matching.NewMatching(6)
	m.Match(1, 2)
	m.Match(3, 4)
	short, _ := RunAugL(g, m.Clone(), 3, 60, 5)
	if short.Size() != 2 {
		t.Errorf("maxLen=3 should not find the length-5 path: size %d", short.Size())
	}
	long, _ := RunAugL(g, m.Clone(), 5, 60, 5)
	if err := matching.Verify(g, long); err != nil {
		t.Fatal(err)
	}
	if long.Size() != 3 {
		t.Errorf("maxLen=5 on P6: size %d, want perfect 3", long.Size())
	}
}

func TestRunAugLPreservesValidityUnderChurn(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3} {
		g := gen.UnitDisk(250, 0.14, seed)
		mm, _ := RunRandMM(g, seed)
		before := mm.Size()
		improved, _ := RunAugL(g, mm, 7, 50, seed+10)
		if err := matching.Verify(g, improved); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if improved.Size() < before {
			t.Errorf("seed %d: augL shrank the matching %d -> %d", seed, before, improved.Size())
		}
	}
}

func TestRunAugLApproachesExact(t *testing.T) {
	inst := gen.BoundedDiversityInstance(300, 2, 24, 9)
	g := inst.G
	mm, _ := RunRandMM(g, 4)
	improved, _ := RunAugL(g, mm, 7, 120, 11)
	if err := matching.Verify(g, improved); err != nil {
		t.Fatal(err)
	}
	exact := matching.MaximumGeneral(g).Size()
	ratio := float64(exact) / float64(improved.Size())
	if ratio > 1.12 {
		t.Errorf("augL(7) ratio %.3f, want ≤ 1.12 (mm=%d improved=%d exact=%d)",
			ratio, mm.Size(), improved.Size(), exact)
	}
}

func TestRunAugLMatchesAug3OnLength3(t *testing.T) {
	// With maxLen=3 both protocols target the same paths; their final
	// quality should be comparable (not identical — different randomness).
	g := gen.UnitDisk(200, 0.15, 21)
	mm, _ := RunRandMM(g, 7)
	a3, _ := RunAug3(g, mm.Clone(), 60, 23)
	aL, _ := RunAugL(g, mm.Clone(), 3, 60, 23)
	if err := matching.Verify(g, aL); err != nil {
		t.Fatal(err)
	}
	if d := a3.Size() - aL.Size(); d > 4 || d < -4 {
		t.Errorf("aug3=%d vs augL(3)=%d diverge too much", a3.Size(), aL.Size())
	}
}

func TestRunAugLNoOpOnPerfectMatching(t *testing.T) {
	g := graph.FromEdges(4, []graph.Edge{{U: 0, V: 1}, {U: 2, V: 3}})
	m := matching.NewMatching(4)
	m.Match(0, 1)
	m.Match(2, 3)
	improved, stats := RunAugL(g, m, 5, 10, 1)
	if improved.Size() != 2 {
		t.Errorf("perfect matching changed: %d", improved.Size())
	}
	if stats.Rounds == 0 {
		t.Error("no rounds recorded")
	}
}
