package dist

import (
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/matching"
)

// echoProgram: round 0 every node broadcasts its id; round 1 nodes verify
// they heard every neighbor and halt.
type echoProgram struct {
	heard map[int]int32
	fail  bool
}

func (e *echoProgram) Step(api *NodeAPI, round int, inbox []Msg) bool {
	switch round {
	case 0:
		e.heard = make(map[int]int32)
		api.Broadcast(api.ID(), idBits(api.N()))
		return false
	default:
		for _, m := range inbox {
			e.heard[m.FromPort] = m.Payload.(int32)
		}
		if len(e.heard) != api.Degree() {
			e.fail = true
		}
		return true
	}
}

func TestNetworkDeliveryAndPorts(t *testing.T) {
	g := gen.Cycle(7)
	nw := NewNetwork(g, func(v int32) Program { return &echoProgram{} }, 1)
	stats := nw.Run(5)
	for v := int32(0); v < 7; v++ {
		p := nw.Prog(v).(*echoProgram)
		if p.fail {
			t.Fatalf("node %d did not hear all neighbors", v)
		}
		// Verify port semantics: payload on port i must be the i-th neighbor.
		for port, id := range p.heard {
			if g.Neighbor(v, port) != id {
				t.Fatalf("node %d port %d: heard %d, want %d", v, port, id, g.Neighbor(v, port))
			}
		}
	}
	if stats.Messages != int64(2*g.M()) {
		t.Errorf("messages = %d, want %d (one broadcast per node)", stats.Messages, 2*g.M())
	}
	if stats.Rounds < 2 {
		t.Errorf("rounds = %d, want >= 2", stats.Rounds)
	}
}

func TestNetworkSendValidation(t *testing.T) {
	g := gen.Path(2)
	defer func() {
		if recover() == nil {
			t.Fatal("invalid port send did not panic")
		}
	}()
	nw := NewNetwork(g, func(v int32) Program {
		return programFunc(func(api *NodeAPI, round int, inbox []Msg) bool {
			api.Send(5, nil, 1)
			return true
		})
	}, 1)
	nw.Run(1)
}

type programFunc func(api *NodeAPI, round int, inbox []Msg) bool

func (f programFunc) Step(api *NodeAPI, round int, inbox []Msg) bool { return f(api, round, inbox) }

func TestRunSparsifierMatchesInvariants(t *testing.T) {
	g := gen.Clique(200)
	delta := 4
	sp, stats := RunSparsifier(g, delta, 7)
	if sp.N() != g.N() {
		t.Fatalf("N mismatch")
	}
	sp.ForEachEdge(func(u, v int32) {
		if !g.HasEdge(u, v) {
			t.Fatalf("sparsifier edge (%d,%d) not in G", u, v)
		}
	})
	if sp.M() > g.N()*delta {
		t.Errorf("sparsifier size %d > nΔ = %d", sp.M(), g.N()*delta)
	}
	// Message complexity: exactly the marks, ≤ nΔ, and crucially ≪ 2m.
	if stats.Messages > int64(g.N()*delta) {
		t.Errorf("messages %d exceed nΔ = %d", stats.Messages, g.N()*delta)
	}
	if stats.Messages >= int64(g.M()) {
		t.Errorf("messages %d not sublinear in m = %d", stats.Messages, g.M())
	}
	for v := int32(0); v < int32(sp.N()); v++ {
		if sp.Degree(v) < delta {
			t.Errorf("vertex %d sparsifier degree %d < Δ", v, sp.Degree(v))
		}
	}
}

func TestRunSparsifierLowDegreeKeepsAll(t *testing.T) {
	g := gen.Cycle(30)
	sp, _ := RunSparsifier(g, 2, 3)
	if sp.M() != g.M() {
		t.Errorf("low-degree: kept %d of %d edges", sp.M(), g.M())
	}
}

func TestRunBoundedDegree(t *testing.T) {
	g := gen.Clique(40)
	da := 6
	sp, stats := RunBoundedDegree(g, da, 5)
	if sp.MaxDegree() > da {
		t.Errorf("max degree %d > Δα = %d", sp.MaxDegree(), da)
	}
	// Must match the centralized construction exactly (both mark the first
	// min(Δα, deg) sorted neighbors).
	want := core.BoundedDegreeSparsifier(g, da)
	if sp.M() != want.M() {
		t.Errorf("distributed %d edges, centralized %d", sp.M(), want.M())
	}
	if stats.Messages > int64(g.N()*da) {
		t.Errorf("messages %d > nΔα", stats.Messages)
	}
}

func TestLinialScheduleShrinks(t *testing.T) {
	steps := linialSchedule(1<<20, 8)
	if len(steps) == 0 {
		t.Fatal("no reduction steps for n = 2^20")
	}
	prev := 1 << 20
	for _, s := range steps {
		if s.k != prev {
			t.Errorf("step input %d, want %d", s.k, prev)
		}
		if s.q*s.q >= prev {
			t.Errorf("step does not shrink: q²=%d k=%d", s.q*s.q, prev)
		}
		if s.q <= 8*s.d {
			t.Errorf("field too small: q=%d D·d=%d", s.q, 8*s.d)
		}
		prev = s.q * s.q
	}
	// log*-ish: for n = 2^20 and D = 8 a handful of steps must suffice.
	if len(steps) > 8 {
		t.Errorf("schedule has %d steps; expected O(log* n)", len(steps))
	}
}

func TestNextPrimeAndIsPrime(t *testing.T) {
	for _, tc := range []struct{ in, want int }{{2, 2}, {3, 3}, {4, 5}, {14, 17}, {90, 97}} {
		if got := nextPrime(tc.in); got != tc.want {
			t.Errorf("nextPrime(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
	if isPrime(1) || isPrime(0) || !isPrime(2) || isPrime(91) {
		t.Error("isPrime misclassifies")
	}
}

func TestPolyEvalLinear(t *testing.T) {
	// color 7 = digits [2, 1] base 5 → p(x) = 2 + x; p(3) mod 5 = 0.
	if got := polyEval(7, 1, 5, 3); got != 0 {
		t.Errorf("polyEval = %d, want 0", got)
	}
}

func TestRunColoringProper(t *testing.T) {
	for _, g := range []*graph.Static{gen.Cycle(50), gen.Path(33), gen.UnitDisk(150, 0.1, 2)} {
		colors, stats := RunColoring(g, 9)
		if !VerifyColoring(g, colors, g.MaxDegree()+1) {
			t.Errorf("improper or oversized coloring (maxdeg %d)", g.MaxDegree())
		}
		if stats.Rounds == 0 {
			t.Error("no rounds recorded")
		}
	}
}

func TestRunColorMMMaximal(t *testing.T) {
	g := gen.UnitDisk(200, 0.12, 4)
	colors, _ := RunColoring(g, 10)
	m, _ := RunColorMM(g, colors, g.MaxDegree()+1, 11)
	if err := matching.Verify(g, m); err != nil {
		t.Fatal(err)
	}
	if !matching.IsMaximal(g, m) {
		t.Error("color MM not maximal")
	}
}

func TestRunRandMMMaximal(t *testing.T) {
	for _, g := range []*graph.Static{gen.Clique(61), gen.Cycle(40), gen.UnitDisk(150, 0.15, 1)} {
		m, stats := RunRandMM(g, 13)
		if err := matching.Verify(g, m); err != nil {
			t.Fatal(err)
		}
		if !matching.IsMaximal(g, m) {
			t.Errorf("randomized MM not maximal (n=%d)", g.N())
		}
		if stats.Rounds > RandMMRounds(g.N()) {
			t.Errorf("rounds %d exceed budget", stats.Rounds)
		}
	}
}

func TestRunAug3ImprovesPath(t *testing.T) {
	// P4 with only the middle edge matched: one length-3 augmentation gives
	// the perfect matching.
	g := gen.Path(4)
	m := matching.NewMatching(4)
	m.Match(1, 2)
	improved, _ := RunAug3(g, m, 30, 3)
	if err := matching.Verify(g, improved); err != nil {
		t.Fatal(err)
	}
	if improved.Size() != 2 {
		t.Errorf("aug3 size = %d, want 2", improved.Size())
	}
}

func TestRunAug3PreservesValidity(t *testing.T) {
	g := gen.UnitDisk(200, 0.15, 6)
	mm, _ := RunRandMM(g, 2)
	before := mm.Size()
	improved, _ := RunAug3(g, mm, 40, 8)
	if err := matching.Verify(g, improved); err != nil {
		t.Fatal(err)
	}
	if improved.Size() < before {
		t.Errorf("aug3 shrank the matching: %d -> %d", before, improved.Size())
	}
}

func TestPipelineEndToEnd(t *testing.T) {
	inst := gen.BoundedDiversityInstance(250, 2, 40, 17)
	g := inst.G
	eps := 0.5
	m, ps := ApproxMatchingPipeline(g, inst.Beta, eps, PipelineOptions{Delta: 6, DeltaAlpha: 8, AugIters: 30}, 23)
	if err := matching.Verify(g, m); err != nil {
		t.Fatal(err)
	}
	exact := matching.MaximumGeneral(g).Size()
	if exact > 0 {
		ratio := float64(exact) / float64(m.Size())
		if ratio > 2.0 {
			t.Errorf("pipeline ratio %.2f worse than the maximal-matching bound", ratio)
		}
	}
	// Sublinear message complexity of the sparsify phase (Theorem 3.3).
	if ps.Sparsify.Messages >= int64(g.M()) {
		t.Errorf("sparsify messages %d not sublinear in m = %d", ps.Sparsify.Messages, g.M())
	}
	if ps.Total.Rounds <= 0 || ps.Total.Messages <= 0 {
		t.Error("missing pipeline stats")
	}
}

func TestDirectMMCostsLinearMessages(t *testing.T) {
	g := gen.Clique(80)
	_, stats := DirectMM(g, 5)
	// The first belief-broadcast round alone costs ~2m messages.
	if stats.Messages < int64(g.M()) {
		t.Errorf("direct MM messages %d suspiciously low vs m = %d", stats.Messages, g.M())
	}
}

func TestLinialRoundsGrowsSlowly(t *testing.T) {
	r1 := LinialRounds(1000, 6)
	r2 := LinialRounds(1000000, 6)
	if r2 > r1+3 {
		t.Errorf("Linial rounds grew too fast: %d -> %d", r1, r2)
	}
}

func TestBroadcastSparsifierCostsLinearMessages(t *testing.T) {
	g := gen.Clique(100) // m = 4950
	delta := 3
	spU, statsU := RunSparsifier(g, delta, 5)
	spB, statsB := RunSparsifierBroadcast(g, delta, 5)
	// Same construction, same per-seed distribution family.
	if spU.N() != spB.N() {
		t.Fatal("vertex sets differ")
	}
	if spB.M() > g.N()*delta || spU.M() > g.N()*delta {
		t.Error("sparsifier too large")
	}
	// Unicast: ≈ nΔ messages. Broadcast: Σ deg = 2m messages.
	if statsU.Messages > int64(g.N()*delta) {
		t.Errorf("unicast messages %d exceed nΔ", statsU.Messages)
	}
	if statsB.Messages != int64(2*g.M()) {
		t.Errorf("broadcast messages = %d, want 2m = %d", statsB.Messages, 2*g.M())
	}
	if statsB.Messages < 10*statsU.Messages {
		t.Errorf("broadcast (%d) should dwarf unicast (%d) on dense graphs",
			statsB.Messages, statsU.Messages)
	}
}
