package dist

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/gen"
)

// dropEverything is a total-loss interceptor: every message vanishes.
type dropEverything struct{}

func (dropEverything) Fate(round int, from, to int32, bits int) Fate { return Fate{Drop: true} }
func (dropEverything) Down(round int, v int32) bool                  { return false }
func (dropEverything) Restart(round int, v int32) bool               { return false }
func (dropEverything) Quiet(round int) bool                          { return true }

// chatter needs three virtual rounds of neighbor traffic to finish — it can
// never complete when every message is lost.
type chatter struct{ r int }

func (c *chatter) Step(api *NodeAPI, round int, inbox []Msg) bool {
	c.r = round
	if round >= 2 {
		return true
	}
	api.Broadcast(struct{}{}, 1)
	return false
}

// TestLivelockGuardUnderTotalLoss pins the stall detection: at 100% drop
// the reliable adapter's retransmission ladder runs dry, every port dies,
// every node goes idle with nothing in flight, and the run must terminate
// with VerdictStalled — distinguishable from both convergence and a
// max-rounds timeout — long before the round budget, instead of
// retransmitting forever.
func TestLivelockGuardUnderTotalLoss(t *testing.T) {
	g := gen.Clique(6)
	const maxRounds = 10_000
	nw := NewNetwork(g, func(v int32) Program { return &chatter{} }, 1)
	WithReliability(ReliableOptions{Timeout: 1, MaxRetries: 3})(nw)
	nw.SetInterceptor(dropEverything{})
	stats, err := nw.RunChecked(maxRounds)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Verdict != VerdictStalled {
		t.Fatalf("verdict %v, want %v (stats %+v)", stats.Verdict, VerdictStalled, stats)
	}
	if stats.Rounds >= maxRounds/10 {
		t.Errorf("stall detected only after %d rounds — the guard should fire once the backoff ladder is exhausted", stats.Rounds)
	}
	if stats.Dropped == 0 {
		t.Error("total loss dropped nothing?")
	}
	if nw.DeadPorts() == 0 {
		t.Error("no port died under total loss")
	}
}

// TestVerdictConvergedFaultFree is the contrast case: the same protocol
// fault-free converges and says so.
func TestVerdictConvergedFaultFree(t *testing.T) {
	g := gen.Clique(6)
	nw := NewNetwork(g, func(v int32) Program { return &chatter{} }, 1)
	stats, err := nw.RunChecked(100)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Verdict != VerdictConverged {
		t.Fatalf("verdict %v, want %v", stats.Verdict, VerdictConverged)
	}
}

// TestVerdictMaxRounds: a program that never halts and never goes idle
// (it broadcasts every round) exhausts the budget with VerdictMaxRounds.
func TestVerdictMaxRounds(t *testing.T) {
	g := gen.Clique(4)
	nw := NewNetwork(g, func(v int32) Program { return babbler{} }, 1)
	stats, err := nw.RunChecked(25)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Verdict != VerdictMaxRounds || stats.Rounds != 25 {
		t.Fatalf("got %v after %d rounds, want %v after 25", stats.Verdict, stats.Rounds, VerdictMaxRounds)
	}
}

type babbler struct{}

func (babbler) Step(api *NodeAPI, round int, inbox []Msg) bool {
	api.Broadcast(round, 8)
	return false
}

// faultyProg panics at round 1 on designated nodes.
type faultyProg struct{ id int32 }

func (f faultyProg) Step(api *NodeAPI, round int, inbox []Msg) bool {
	if round == 1 && (f.id == 0 || f.id == 2) {
		panic("injected program bug")
	}
	if round == 0 {
		api.Broadcast(struct{}{}, 1)
		return false
	}
	return true
}

// TestRunCheckedStructuredNodeErrors pins the satellite contract: a node
// program failure surfaces as a *RunError naming every failed node with
// its round and cause (sorted by node id), the stats carry VerdictFailed,
// and the legacy Run wrapper converts the same failure into a panic.
func TestRunCheckedStructuredNodeErrors(t *testing.T) {
	g := gen.Clique(5)
	factory := func(v int32) Program { return faultyProg{id: v} }
	nw := NewNetwork(g, factory, 1)
	stats, err := nw.RunChecked(10)
	if err == nil {
		t.Fatal("RunChecked returned nil for panicking programs")
	}
	var re *RunError
	if !errors.As(err, &re) {
		t.Fatalf("error %T is not a *RunError: %v", err, err)
	}
	if len(re.Failures) != 2 || re.Failures[0].Node != 0 || re.Failures[1].Node != 2 {
		t.Fatalf("failures %+v, want nodes [0 2]", re.Failures)
	}
	for _, f := range re.Failures {
		if f.Round != 1 {
			t.Errorf("node %d failed at round %d, want 1", f.Node, f.Round)
		}
		if !strings.Contains(f.Error(), "injected program bug") {
			t.Errorf("node error %q does not carry the cause", f.Error())
		}
	}
	if stats.Verdict != VerdictFailed {
		t.Errorf("verdict %v, want %v", stats.Verdict, VerdictFailed)
	}

	// The legacy wrapper must keep its panic contract.
	defer func() {
		if recover() == nil {
			t.Error("Run did not panic on node failure")
		}
	}()
	NewNetwork(g, factory, 1).Run(10)
}
