package dist

import (
	"testing"

	"repro/internal/gen"
)

// TestCongestBudgetEnforced: an oversized message must be rejected.
func TestCongestBudgetEnforced(t *testing.T) {
	g := gen.Path(2)
	nw := NewNetwork(g, func(v int32) Program {
		return programFunc(func(api *NodeAPI, round int, inbox []Msg) bool {
			api.Send(0, "huge", 1024)
			return true
		})
	}, 1)
	nw.SetBitBudget(32)
	defer func() {
		if recover() == nil {
			t.Fatal("oversized message did not panic under CONGEST budget")
		}
	}()
	nw.Run(2)
}

// TestPipelinePhasesAreCongest: every phase of the distributed pipeline
// must fit CONGEST message sizes (O(log n) bits). We re-run each phase
// under an explicit budget and expect no violations.
func TestPipelinePhasesAreCongest(t *testing.T) {
	inst := gen.UnitDiskInstance(300, 30, 3)
	g := inst.G
	budget := 2*idBits(g.N()) + 16

	runUnder := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("%s violated CONGEST: %v", name, r)
			}
		}()
		fn()
	}

	var gd, gt = g, g
	runUnder("sparsify", func() {
		nw := NewNetwork(g, func(v int32) Program { return &sparsifierNode{delta: 4} }, 5)
		nw.SetBitBudget(budget)
		nw.Run(4)
	})
	gd, _ = RunSparsifier(g, 4, 5)
	runUnder("compose", func() {
		nw := NewNetwork(gd, func(v int32) Program { return &boundedDegreeNode{deltaAlpha: 6} }, 7)
		nw.SetBitBudget(budget)
		nw.Run(4)
	})
	gt, _ = RunBoundedDegree(gd, 6, 7)
	runUnder("coloring", func() {
		tmpl := newColoringNode(gt.N(), gt.MaxDegree())
		nw := NewNetwork(gt, func(v int32) Program { return newColoringNode(gt.N(), gt.MaxDegree()) }, 9)
		nw.SetBitBudget(budget)
		nw.Run(tmpl.totalRounds() + 2)
	})
	colors, _ := RunColoring(gt, 9)
	runUnder("colorMM", func() {
		maxDeg := gt.MaxDegree()
		nw := NewNetwork(gt, func(v int32) Program {
			return &colorMMNode{color: colors[v], palette: maxDeg + 1, maxDeg: maxDeg}
		}, 11)
		nw.SetBitBudget(budget)
		nw.Run(colorMMTotalRounds(maxDeg+1, maxDeg) + 2)
	})
	mm, _ := RunColorMM(gt, colors, gt.MaxDegree()+1, 11)
	runUnder("augL", func() {
		maxRelays := 2
		nw := NewNetwork(gt, func(v int32) Program {
			node := &augLNode{iters: 10, maxRelays: maxRelays}
			node.matePort = -1
			if mate := mm.Mate(v); mate >= 0 {
				node.matched = true
				node.matePort = portOf(gt, v, mate)
			}
			node.freePorts = make([]bool, gt.Degree(v))
			for i := range node.freePorts {
				node.freePorts[i] = true
			}
			return node
		}, 13)
		nw.SetBitBudget(budget)
		nw.Run(augLTotalRounds(10, maxRelays) + 2)
	})
}
