package dist

import (
	"repro/internal/graph"
	"repro/internal/matching"
)

// Generalized distributed augmentation: starting from a maximal matching,
// free vertices hunt for augmenting paths of length up to maxLen = 2k−1
// (k−1 matched "relay" pairs) via token chains:
//
//	v ─tok→ w₁ ═mate═ x₁ ─tok→ w₂ ═mate═ x₂ ─ … ─offer→ y
//
// A free initiator v sends a Token along an edge to a matched vertex w₁,
// which forwards it to its mate x₁; x₁ either terminates the chain with an
// Offer to a believed-free neighbor y, or extends it with a Token to
// another matched neighbor, up to the relay budget. When y accepts, a
// commit wave travels back down the chain, flipping every relay pair:
// y→x (ChainCommit), x→w (Confirm, x re-mates forward), w→previous
// (ChainCommit, w re-mates backward), terminating at v.
//
// Safety: every matched vertex adopts at most one chain role per iteration
// (first token wins, later ones are dropped), which also kills any chain
// that revisits a vertex; free vertices are either initiators or responders
// (coin flip), never both; all chain messages carry the iteration number
// and stale ones are discarded. Hence each vertex's mate changes at most
// once per iteration and every flip is a genuine augmenting-path flip.
// Conflicting chains die silently and retry next iteration.
//
// Eliminating all augmenting paths of length ≤ 2k−1 yields a (1+1/k)-
// approximation; the protocol is randomized, so the experiments report the
// measured quality (T7).
type augLNode struct {
	matchState
	iters     int
	maxRelays int // matched pairs allowed per chain = (maxLen−1)/2

	// per-iteration role state
	role     augRole
	initPort int // initiator: port the token left on
	inPort   int // relay W: port the token arrived on
	outPort  int // relay X: port the offer/extension left on
}

type augRole uint8

const (
	roleNone augRole = iota
	roleInitiator
	roleResponder
	roleRelayW
	roleRelayX
)

// Chain message payloads; every one carries the iteration it belongs to.
type (
	tokenMsg struct {
		iter      int
		initiator int32
		relays    int // matched pairs consumed so far
	}
	offerLMsg struct {
		iter      int
		initiator int32
	}
	chainCommitMsg struct{ iter int }
	confirmLMsg    struct{ iter int }
)

const augLSetupRounds = 1

func augLIterRounds(maxRelays int) int { return 4*maxRelays + 6 }

func augLTotalRounds(iters, maxRelays int) int {
	return augLSetupRounds + iters*augLIterRounds(maxRelays) + 2
}

func (an *augLNode) Step(api *NodeAPI, round int, inbox []Msg) bool {
	if round == 0 {
		if an.matched {
			api.Broadcast(matchedMsg{}, 1)
		}
		an.role = roleNone
		return false
	}
	an.applyBeliefs(inbox)
	iterLen := augLIterRounds(an.maxRelays)
	iter := (round - augLSetupRounds) / iterLen
	offset := (round - augLSetupRounds) % iterLen

	if offset == 0 {
		// Iteration boundary: reset roles, then initiators launch tokens.
		an.role = roleNone
		an.initPort, an.inPort, an.outPort = -1, -1, -1
		if !an.matched && iter < an.iters {
			if api.Rand().IntN(2) == 0 {
				var cands []int
				for p, free := range an.freePorts {
					if !free {
						cands = append(cands, p)
					}
				}
				if len(cands) > 0 {
					an.role = roleInitiator
					an.initPort = cands[api.Rand().IntN(len(cands))]
					api.Send(an.initPort, tokenMsg{iter: iter, initiator: api.ID(), relays: 0}, idBits(api.N())+8)
				}
			} else {
				an.role = roleResponder
			}
		}
	}

	for _, m := range inbox {
		switch pl := m.Payload.(type) {
		case tokenMsg:
			if pl.iter != iter || !an.matched {
				continue
			}
			if m.FromPort == an.matePort {
				an.handleMateToken(api, iter, pl)
			} else if an.role == roleNone {
				// Relay W: service the first token of the iteration.
				an.role = roleRelayW
				an.inPort = m.FromPort
				api.Send(an.matePort, tokenMsg{iter: iter, initiator: pl.initiator, relays: pl.relays + 1}, idBits(api.N())+8)
			}
		case offerLMsg:
			if pl.iter != iter || an.matched || an.role != roleResponder || pl.initiator == api.ID() {
				continue
			}
			// Responder accepts the first valid offer and commits.
			an.role = roleNone // consume: at most one accept
			an.matched = true
			an.matePort = m.FromPort
			api.Send(m.FromPort, chainCommitMsg{iter: iter}, 1)
			api.Broadcast(matchedMsg{}, 1)
		case chainCommitMsg:
			if pl.iter != iter {
				continue
			}
			switch {
			case an.role == roleRelayX && m.FromPort == an.outPort:
				// Flip forward: confirm to the old mate, re-mate to outPort.
				old := an.matePort
				an.matePort = an.outPort
				an.role = roleNone
				api.Send(old, confirmLMsg{iter: iter}, 1)
			case an.role == roleInitiator && m.FromPort == an.initPort:
				an.role = roleNone
				an.matched = true
				an.matePort = an.initPort
				api.Broadcast(matchedMsg{}, 1)
			}
		case confirmLMsg:
			if pl.iter != iter || an.role != roleRelayW || m.FromPort != an.matePort {
				continue
			}
			// Flip backward: re-mate to the token's arrival edge and pass
			// the commit wave on.
			an.role = roleNone
			an.matePort = an.inPort
			api.Send(an.inPort, chainCommitMsg{iter: iter}, 1)
		}
	}
	return round >= augLTotalRounds(an.iters, an.maxRelays)-1
}

// handleMateToken is the relay-X step: terminate with an offer to a
// believed-free neighbor, or extend the chain to another matched neighbor.
func (an *augLNode) handleMateToken(api *NodeAPI, iter int, pl tokenMsg) {
	if an.role != roleNone {
		return // busy (e.g. already relay W); chain dies here
	}
	var freeCands, matchedCands []int
	for p, free := range an.freePorts {
		if p == an.matePort {
			continue
		}
		if free {
			freeCands = append(freeCands, p)
		} else {
			matchedCands = append(matchedCands, p)
		}
	}
	if len(freeCands) > 0 {
		an.role = roleRelayX
		an.outPort = freeCands[api.Rand().IntN(len(freeCands))]
		api.Send(an.outPort, offerLMsg{iter: iter, initiator: pl.initiator}, idBits(api.N())+8)
		return
	}
	if pl.relays < an.maxRelays && len(matchedCands) > 0 {
		an.role = roleRelayX
		an.outPort = matchedCands[api.Rand().IntN(len(matchedCands))]
		api.Send(an.outPort, tokenMsg{iter: iter, initiator: pl.initiator, relays: pl.relays}, idBits(api.N())+8)
	}
}

// RunAugL improves a maximal matching by iters iterations of distributed
// augmentation along paths of length ≤ maxLen (odd, ≥ 3). It returns the
// improved matching and run stats.
func RunAugL(g *graph.Static, m *matching.Matching, maxLen, iters int, seed uint64, opts ...RunOption) (*matching.Matching, Stats) {
	if maxLen < 3 {
		maxLen = 3
	}
	maxRelays := (maxLen - 1) / 2
	nw := newNetworkOpts(g, func(v int32) Program {
		node := &augLNode{iters: iters, maxRelays: maxRelays}
		node.matePort = -1
		if mate := m.Mate(v); mate >= 0 {
			node.matched = true
			node.matePort = portOf(g, v, mate)
		}
		node.freePorts = make([]bool, g.Degree(v))
		for i := range node.freePorts {
			node.freePorts[i] = true
		}
		return node
	}, seed, opts)
	stats := nw.Run(nw.budget(augLTotalRounds(iters, maxRelays) + 2))
	return nw.collect(g, func(v int32) (bool, int) {
		n := nw.Inner(v).(*augLNode)
		return n.matched, n.matePort
	}), stats
}
