// Package dist provides a synchronous message-passing network simulator in
// the LOCAL/CONGEST style (Peleg 2000) and the distributed algorithms of
// Section 3.2 built on it: the one-round construction of the random
// sparsifier G_Δ, the one-round bounded-degree composition, Linial-style
// O(log* n) coloring, color-ordered maximal matching, and augmentation
// phases that together give the distributed approximate-matching pipeline
// of Theorems 3.2 and 3.3 with exact round and message accounting.
//
// The simulator supports unicast transmission (a node sends a message along
// a chosen incident edge, addressed by port number), which is the system
// model Theorem 3.3's sublinear message complexity requires. Ports follow
// the KT0 convention: a node initially knows only its own id and degree,
// not its neighbors' ids.
package dist

import (
	"fmt"
	"math/rand/v2"
	"runtime"
	"sync"

	"repro/internal/graph"
)

// Msg is a message delivered to a node at the start of a round.
type Msg struct {
	// FromPort is the port at the RECEIVER on which the message arrived,
	// i.e. the index of the sender in the receiver's adjacency array.
	FromPort int
	// Payload is the message content.
	Payload any
	// Bits is the accounted size of the message in bits.
	Bits int
}

// NodeAPI is the interface a node program uses to interact with the network
// during its Step. It is only valid for the duration of the Step call.
type NodeAPI struct {
	id      int32
	g       *graph.Static
	rng     *rand.Rand
	outbox  []outMsg
	network *Network
}

type outMsg struct {
	from    int32
	port    int
	payload any
	bits    int
}

// ID returns this node's unique identifier in [0, n).
func (a *NodeAPI) ID() int32 { return a.id }

// N returns the network size (assumed global knowledge, as usual in LOCAL).
func (a *NodeAPI) N() int { return a.g.N() }

// Degree returns the number of ports (incident edges) of this node.
func (a *NodeAPI) Degree() int { return a.g.Degree(a.id) }

// Rand returns this node's private random source.
func (a *NodeAPI) Rand() *rand.Rand { return a.rng }

// Send transmits a message along the given port (unicast); it is delivered
// at the start of the next round. Under a CONGEST bit budget (see
// SetBitBudget) a message exceeding the budget panics — algorithms written
// for CONGEST must keep every message within O(log n) bits.
func (a *NodeAPI) Send(port int, payload any, bits int) {
	if port < 0 || port >= a.Degree() {
		panic(fmt.Sprintf("dist: node %d sending on invalid port %d (degree %d)", a.id, port, a.Degree()))
	}
	if b := a.network.bitBudget; b > 0 && bits > b {
		panic(fmt.Sprintf("dist: node %d message of %d bits exceeds the CONGEST budget %d", a.id, bits, b))
	}
	a.outbox = append(a.outbox, outMsg{from: a.id, port: port, payload: payload, bits: bits})
}

// Broadcast transmits the same message along every port. It is accounted as
// Degree() separate messages (the broadcast-transmission cost model).
func (a *NodeAPI) Broadcast(payload any, bits int) {
	for p := 0; p < a.Degree(); p++ {
		a.Send(p, payload, bits)
	}
}

// Program is the per-node code of a distributed algorithm. One Program
// instance exists per node. Step is called once per round with the messages
// delivered this round; round 0 has an empty inbox. A node returns true
// when it has halted; the simulation stops when every node has halted and
// no messages are in flight.
type Program interface {
	Step(api *NodeAPI, round int, inbox []Msg) (done bool)
}

// Stats aggregates the cost of a simulation run.
type Stats struct {
	Rounds   int
	Messages int64
	Bits     int64
}

// Add accumulates s2 into s (for multi-phase pipelines).
func (s *Stats) Add(s2 Stats) {
	s.Rounds += s2.Rounds
	s.Messages += s2.Messages
	s.Bits += s2.Bits
}

// Network simulates a synchronous message-passing network over the topology
// of g.
type Network struct {
	g         *graph.Static
	progs     []Program
	apis      []*NodeAPI
	inboxes   [][]Msg
	done      []bool
	workers   int
	bitBudget int // 0 = LOCAL (unbounded); > 0 = CONGEST message size cap
}

// SetBitBudget switches the network to the CONGEST model: any message
// larger than bits panics. Call before Run. The conventional budget is
// O(log n), e.g. 2·idBits(n)+16.
func (nw *Network) SetBitBudget(bits int) { nw.bitBudget = bits }

// NewNetwork builds a network over g where node v runs factory(v).
// Each node gets an independent random stream derived from seed.
func NewNetwork(g *graph.Static, factory func(v int32) Program, seed uint64) *Network {
	n := g.N()
	nw := &Network{
		g:       g,
		progs:   make([]Program, n),
		apis:    make([]*NodeAPI, n),
		inboxes: make([][]Msg, n),
		done:    make([]bool, n),
		workers: runtime.GOMAXPROCS(0),
	}
	for v := int32(0); v < int32(n); v++ {
		nw.progs[v] = factory(v)
		nw.apis[v] = &NodeAPI{
			id:      v,
			g:       g,
			rng:     rand.New(rand.NewPCG(seed, uint64(v)+1)),
			network: nw,
		}
	}
	return nw
}

// Run executes rounds until every node halts or maxRounds is reached.
// It returns the accumulated statistics.
func (nw *Network) Run(maxRounds int) Stats {
	var stats Stats
	n := len(nw.progs)
	nextInboxes := make([][]Msg, n)
	for round := 0; round < maxRounds; round++ {
		// Execute all node steps for this round in parallel shards.
		allDone := true
		inFlight := int64(0)
		var mu sync.Mutex
		var wg sync.WaitGroup
		shard := (n + nw.workers - 1) / nw.workers
		if shard < 1 {
			shard = 1
		}
		var panicked any
		for lo := 0; lo < n; lo += shard {
			hi := min(lo+shard, n)
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				defer func() {
					if r := recover(); r != nil {
						mu.Lock()
						panicked = r
						mu.Unlock()
					}
				}()
				localDone := true
				var localMsgs int64
				var localBits int64
				for v := lo; v < hi; v++ {
					api := nw.apis[v]
					api.outbox = api.outbox[:0]
					inbox := nw.inboxes[v]
					nw.done[v] = nw.progs[v].Step(api, round, inbox)
					nw.inboxes[v] = inbox[:0]
					if !nw.done[v] {
						localDone = false
					}
					localMsgs += int64(len(api.outbox))
					for _, m := range api.outbox {
						localBits += int64(m.bits)
					}
				}
				mu.Lock()
				allDone = allDone && localDone
				inFlight += localMsgs
				stats.Messages += localMsgs
				stats.Bits += localBits
				mu.Unlock()
			}(lo, hi)
		}
		wg.Wait()
		if panicked != nil {
			panic(panicked) // propagate node-program panics to the caller
		}
		stats.Rounds++
		// Deliver: route each outbox message to the receiver's next inbox.
		for v := 0; v < n; v++ {
			for _, m := range nw.apis[v].outbox {
				to := nw.g.Neighbor(m.from, m.port)
				fromPort := portOf(nw.g, to, m.from)
				nextInboxes[to] = append(nextInboxes[to], Msg{FromPort: fromPort, Payload: m.payload, Bits: m.bits})
			}
		}
		nw.inboxes, nextInboxes = nextInboxes, nw.inboxes
		if allDone && inFlight == 0 {
			break
		}
	}
	return stats
}

// Program accessor for result extraction after a run.
func (nw *Network) Prog(v int32) Program { return nw.progs[v] }

// portOf returns the index of neighbor u in v's sorted adjacency array.
func portOf(g *graph.Static, v, u int32) int {
	nb := g.Neighbors(v)
	lo, hi := 0, len(nb)
	for lo < hi {
		mid := (lo + hi) / 2
		if nb[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo >= len(nb) || nb[lo] != u {
		panic(fmt.Sprintf("dist: %d is not a neighbor of %d", u, v))
	}
	return lo
}
