// Package dist provides a synchronous message-passing network simulator in
// the LOCAL/CONGEST style (Peleg 2000) and the distributed algorithms of
// Section 3.2 built on it: the one-round construction of the random
// sparsifier G_Δ, the one-round bounded-degree composition, Linial-style
// O(log* n) coloring, color-ordered maximal matching, and augmentation
// phases that together give the distributed approximate-matching pipeline
// of Theorems 3.2 and 3.3 with exact round and message accounting.
//
// The simulator supports unicast transmission (a node sends a message along
// a chosen incident edge, addressed by port number), which is the system
// model Theorem 3.3's sublinear message complexity requires. Ports follow
// the KT0 convention: a node initially knows only its own id and degree,
// not its neighbors' ids.
//
// The delivery path has an optional fault-injection hook (Interceptor): an
// installed interceptor decides the fate of every message — drop, duplicate,
// or delay it by a bounded number of rounds — and can take nodes down
// (crash-stop) or restart them with full state loss. internal/faults
// compiles deterministic seed-driven fault plans into interceptors; a nil
// interceptor (or the zero-fault plan) leaves the delivery path untouched,
// byte for byte and count for count.
package dist

import (
	"fmt"
	"math/rand/v2"
	"runtime"
	"sort"
	"sync"

	"repro/internal/graph"
	"repro/internal/invariant"
)

// Msg is a message delivered to a node at the start of a round.
type Msg struct {
	// FromPort is the port at the RECEIVER on which the message arrived,
	// i.e. the index of the sender in the receiver's adjacency array.
	FromPort int
	// Payload is the message content.
	Payload any
	// Bits is the accounted size of the message in bits.
	Bits int
}

// NodeAPI is the interface a node program uses to interact with the network
// during its Step. It is only valid for the duration of the Step call.
type NodeAPI struct {
	id      int32
	g       *graph.Static
	rng     *rand.Rand
	outbox  []outMsg
	network *Network
}

type outMsg struct {
	from    int32
	port    int
	payload any
	bits    int
}

// ID returns this node's unique identifier in [0, n).
func (a *NodeAPI) ID() int32 { return a.id }

// N returns the network size (assumed global knowledge, as usual in LOCAL).
func (a *NodeAPI) N() int { return a.g.N() }

// Degree returns the number of ports (incident edges) of this node.
func (a *NodeAPI) Degree() int { return a.g.Degree(a.id) }

// Rand returns this node's private random source.
func (a *NodeAPI) Rand() *rand.Rand { return a.rng }

// Send transmits a message along the given port (unicast); it is delivered
// at the start of the next round. Under a CONGEST bit budget (see
// SetBitBudget) a message exceeding the budget panics — algorithms written
// for CONGEST must keep every message within O(log n) bits.
func (a *NodeAPI) Send(port int, payload any, bits int) {
	if port < 0 || port >= a.Degree() {
		invariant.Violatef("dist: node %d sending on invalid port %d (degree %d)", a.id, port, a.Degree())
	}
	if b := a.network.bitBudget; b > 0 && bits > b {
		invariant.Violatef("dist: node %d message of %d bits exceeds the CONGEST budget %d", a.id, bits, b)
	}
	a.outbox = append(a.outbox, outMsg{from: a.id, port: port, payload: payload, bits: bits})
}

// Broadcast transmits the same message along every port. It is accounted as
// Degree() separate messages (the broadcast-transmission cost model).
func (a *NodeAPI) Broadcast(payload any, bits int) {
	for p := 0; p < a.Degree(); p++ {
		a.Send(p, payload, bits)
	}
}

// Program is the per-node code of a distributed algorithm. One Program
// instance exists per node. Step is called once per round with the messages
// delivered this round; round 0 has an empty inbox. A node returns true
// when it has halted; the simulation stops when every node has halted and
// no messages are in flight.
//
// A node that is restarted by a fault plan gets a FRESH Program instance
// (full state loss) and sees its local round counter reset to 0.
type Program interface {
	Step(api *NodeAPI, round int, inbox []Msg) (done bool)
}

// Idler is an optional Program extension feeding the livelock guard: a
// program reports Idle() == true when it will not send another message or
// change state unless it first receives one — it has nothing scheduled for
// any future round. When every live unhalted node is idle and no message is
// in flight or delayed, the run can never make progress again; Run then
// terminates with VerdictStalled instead of spinning to maxRounds.
// Programs that act on the bare round number (phase-scheduled protocols)
// must NOT report idle while mid-schedule.
type Idler interface {
	Idle() bool
}

// Verdict classifies how a run ended.
type Verdict uint8

const (
	// VerdictNone is the zero value: no run recorded.
	VerdictNone Verdict = iota
	// VerdictConverged: every node halted and no message was in flight.
	VerdictConverged
	// VerdictStalled: the livelock guard fired — no messages in flight or
	// delayed, no node halted progress pending, and every live unhalted
	// node reported Idle. The protocol can never make progress again.
	VerdictStalled
	// VerdictFailed: a node program failed (see RunChecked's error).
	VerdictFailed
	// VerdictMaxRounds: the round budget was exhausted first.
	VerdictMaxRounds
)

func (v Verdict) String() string {
	switch v {
	case VerdictConverged:
		return "converged"
	case VerdictStalled:
		return "stalled"
	case VerdictFailed:
		return "failed"
	case VerdictMaxRounds:
		return "maxrounds"
	default:
		return "none"
	}
}

// Stats aggregates the cost of a simulation run. The fault counters are
// zero for fault-free runs and for runs under the zero-fault plan.
type Stats struct {
	Rounds   int
	Messages int64
	Bits     int64

	// Dropped counts messages the interceptor dropped (including messages
	// addressed to a crashed node). Dropped messages still count in
	// Messages/Bits: the sender paid for the transmission.
	Dropped int64
	// Duplicated counts extra copies injected by the interceptor; each copy
	// is also accounted in Messages/Bits.
	Duplicated int64
	// Delayed counts deliveries deferred past the next round.
	Delayed int64

	// Verdict records how the run ended.
	Verdict Verdict
}

// Add accumulates s2's counters into s (for multi-phase pipelines).
// Verdicts are not combined.
func (s *Stats) Add(s2 Stats) {
	s.Rounds += s2.Rounds
	s.Messages += s2.Messages
	s.Bits += s2.Bits
	s.Dropped += s2.Dropped
	s.Duplicated += s2.Duplicated
	s.Delayed += s2.Delayed
}

// Fate is an interceptor's decision about one message delivery.
// The zero value delivers the message normally.
type Fate struct {
	// Drop discards the message (the receiver never sees it).
	Drop bool
	// Dup delivers this many EXTRA copies (same round as the original,
	// after it).
	Dup int
	// Delay defers delivery by this many extra rounds beyond the usual
	// next-round delivery, reordering it past later traffic.
	Delay int
}

// Interceptor is the fault-injection hook on the network's delivery path.
//
// Fate is called exactly once per sent message, in deterministic order
// (sender id, then send order), from a single goroutine. Down and Restart
// must be pure functions of (round, node) — they are consulted from
// concurrent worker shards — and Quiet must report whether the schedule
// holds no restart at or after the given round, so the simulator does not
// terminate early while a scheduled restart is still pending.
//
// The zero-fault interceptor (every Fate zero, Down/Restart always false)
// is a no-op: outputs, rounds, messages, and bits are identical to a run
// with no interceptor installed.
type Interceptor interface {
	Fate(round int, from, to int32, bits int) Fate
	Down(round int, v int32) bool
	Restart(round int, v int32) bool
	Quiet(round int) bool
}

// NodeError reports the failure of one node's program during a round:
// an invalid port, a CONGEST bit-budget violation, or a program panic.
type NodeError struct {
	Node  int32
	Round int
	Cause any // the recovered panic value
}

func (e NodeError) Error() string {
	return fmt.Sprintf("node %d failed in round %d: %v", e.Node, e.Round, e.Cause)
}

// RunError aggregates all node failures of the round that aborted a run.
type RunError struct {
	Failures []NodeError
}

func (e *RunError) Error() string {
	if len(e.Failures) == 1 {
		return "dist: " + e.Failures[0].Error()
	}
	msg := fmt.Sprintf("dist: %d node failures:", len(e.Failures))
	for _, f := range e.Failures {
		msg += "\n  - " + f.Error()
	}
	return msg
}

// Network simulates a synchronous message-passing network over the topology
// of g.
type Network struct {
	g           *graph.Static
	factory     func(v int32) Program
	progs       []Program
	apis        []*NodeAPI
	inboxes     [][]Msg
	done        []bool
	start       []int // round at which each node's current incarnation began
	pending     []delayedMsg
	workers     int
	bitBudget   int // 0 = LOCAL (unbounded); > 0 = CONGEST message size cap
	interceptor Interceptor
	reliableOpt *ReliableOptions // non-nil when WithReliability is installed
}

type delayedMsg struct {
	at  int // absolute round at which to deliver
	to  int32
	msg Msg
}

// SetBitBudget switches the network to the CONGEST model: any message
// larger than bits panics. Call before Run. The conventional budget is
// O(log n), e.g. 2·idBits(n)+16.
func (nw *Network) SetBitBudget(bits int) { nw.bitBudget = bits }

// SetInterceptor installs a fault-injection interceptor on the delivery
// path. Call before Run; pass nil to remove.
func (nw *Network) SetInterceptor(it Interceptor) { nw.interceptor = it }

// RunOption configures a phase runner's network before it runs
// (fault interceptor, CONGEST budget).
type RunOption func(*Network)

// WithInterceptor installs a fault-injection interceptor.
func WithInterceptor(it Interceptor) RunOption {
	return func(nw *Network) { nw.SetInterceptor(it) }
}

// WithBitBudget sets the CONGEST message-size cap.
func WithBitBudget(bits int) RunOption {
	return func(nw *Network) { nw.SetBitBudget(bits) }
}

// NewNetwork builds a network over g where node v runs factory(v).
// Each node gets an independent random stream derived from seed.
// The factory is retained: a fault plan's crash-restart rebuilds the
// node's program through it (full state loss).
func NewNetwork(g *graph.Static, factory func(v int32) Program, seed uint64) *Network {
	n := g.N()
	nw := &Network{
		g:       g,
		factory: factory,
		progs:   make([]Program, n),
		apis:    make([]*NodeAPI, n),
		inboxes: make([][]Msg, n),
		done:    make([]bool, n),
		start:   make([]int, n),
		workers: runtime.GOMAXPROCS(0),
	}
	for v := int32(0); v < int32(n); v++ {
		nw.progs[v] = factory(v)
		nw.apis[v] = &NodeAPI{
			id:      v,
			g:       g,
			rng:     rand.New(rand.NewPCG(seed, uint64(v)+1)),
			network: nw,
		}
	}
	return nw
}

// Run executes rounds until every node halts or maxRounds is reached.
// It returns the accumulated statistics. Node-program failures (invalid
// port, CONGEST violation, panic) abort the run with a panic carrying a
// *RunError; RunChecked returns them as an error instead.
func (nw *Network) Run(maxRounds int) Stats {
	stats, err := nw.RunChecked(maxRounds)
	if err != nil {
		//lint:ignore panicdiscipline documented panic-wrapper over the error-returning RunChecked
		panic(err)
	}
	return stats
}

// RunChecked executes rounds until every node halts, the livelock guard
// detects quiescence, or maxRounds is reached. Node-program failures are
// converted into a structured per-node error (*RunError) instead of a
// panic; the run stops at the end of the failing round. Stats.Verdict
// records how the run ended.
func (nw *Network) RunChecked(maxRounds int) (Stats, error) {
	var stats Stats
	stats.Verdict = VerdictMaxRounds
	n := len(nw.progs)
	nextInboxes := make([][]Msg, n)
	it := nw.interceptor
	for round := 0; round < maxRounds; round++ {
		// Apply scheduled restarts: a restarted node gets a fresh program,
		// loses its inbox, and restarts its local round clock at 0.
		if it != nil {
			for v := int32(0); v < int32(n); v++ {
				if it.Restart(round, v) {
					nw.progs[v] = nw.factory(v)
					nw.start[v] = round
					nw.done[v] = false
					nw.inboxes[v] = nw.inboxes[v][:0]
				}
			}
		}
		// Execute all node steps for this round in parallel shards.
		allDone := true
		allIdle := true
		inFlight := int64(0)
		var mu sync.Mutex
		var wg sync.WaitGroup
		shard := (n + nw.workers - 1) / nw.workers
		if shard < 1 {
			shard = 1
		}
		var failures []NodeError
		for lo := 0; lo < n; lo += shard {
			hi := min(lo+shard, n)
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				localDone := true
				localIdle := true
				var localMsgs, localBits, localDropped int64
				for v := lo; v < hi; v++ {
					api := nw.apis[v]
					if it != nil && it.Down(round, int32(v)) {
						// Crashed: no step, no sends; queued traffic to it
						// is lost. A down node asks nothing of the scheduler.
						api.outbox = api.outbox[:0]
						localDropped += int64(len(nw.inboxes[v]))
						nw.inboxes[v] = nw.inboxes[v][:0]
						nw.done[v] = true
						continue
					}
					done, ne := nw.stepNode(v, round)
					if ne != nil {
						mu.Lock()
						failures = append(failures, *ne)
						mu.Unlock()
						continue
					}
					nw.done[v] = done
					if !done {
						localDone = false
						idler, ok := nw.progs[v].(Idler)
						if !ok || !idler.Idle() {
							localIdle = false
						}
					}
					localMsgs += int64(len(api.outbox))
					for _, m := range api.outbox {
						localBits += int64(m.bits)
					}
				}
				mu.Lock()
				allDone = allDone && localDone
				allIdle = allIdle && localIdle
				inFlight += localMsgs
				stats.Messages += localMsgs
				stats.Bits += localBits
				stats.Dropped += localDropped
				mu.Unlock()
			}(lo, hi)
		}
		wg.Wait()
		if len(failures) > 0 {
			sort.Slice(failures, func(i, j int) bool { return failures[i].Node < failures[j].Node })
			stats.Verdict = VerdictFailed
			return stats, &RunError{Failures: failures}
		}
		stats.Rounds++
		// Deliver: route each outbox message through the interceptor (if
		// any) to the receiver's next inbox or the delayed queue.
		for v := 0; v < n; v++ {
			for _, m := range nw.apis[v].outbox {
				to := nw.g.Neighbor(m.from, m.port)
				fromPort := portOf(nw.g, to, m.from)
				msg := Msg{FromPort: fromPort, Payload: m.payload, Bits: m.bits}
				if it == nil {
					nextInboxes[to] = append(nextInboxes[to], msg)
					continue
				}
				f := it.Fate(round, m.from, to, m.bits)
				if f.Drop {
					stats.Dropped++
					continue
				}
				copies := 1 + f.Dup
				stats.Duplicated += int64(f.Dup)
				stats.Messages += int64(f.Dup)
				stats.Bits += int64(f.Dup) * int64(m.bits)
				for c := 0; c < copies; c++ {
					if f.Delay <= 0 {
						nextInboxes[to] = append(nextInboxes[to], msg)
					} else {
						nw.pending = append(nw.pending, delayedMsg{at: round + 1 + f.Delay, to: to, msg: msg})
						stats.Delayed++
					}
				}
			}
		}
		// Release matured delayed messages into the next round's inboxes
		// (after the direct traffic, in injection order — deterministic).
		if len(nw.pending) > 0 {
			kept := nw.pending[:0]
			for _, d := range nw.pending {
				if d.at == round+1 {
					nextInboxes[d.to] = append(nextInboxes[d.to], d.msg)
				} else {
					kept = append(kept, d)
				}
			}
			nw.pending = kept
		}
		nw.inboxes, nextInboxes = nextInboxes, nw.inboxes
		quiet := it == nil || it.Quiet(round+1)
		idleNetwork := inFlight == 0 && len(nw.pending) == 0 && quiet
		if allDone && idleNetwork {
			stats.Verdict = VerdictConverged
			break
		}
		// Livelock guard: nothing in flight, nothing delayed, no restart
		// scheduled, and every live unhalted node reports idle — the run
		// can never make progress again.
		if !allDone && allIdle && idleNetwork {
			stats.Verdict = VerdictStalled
			break
		}
	}
	return stats, nil
}

// stepNode runs one node's Step, converting a panic (invalid port, CONGEST
// budget violation, program bug) into a structured NodeError. A failed
// node's partial outbox is discarded: a crashed node sends nothing.
func (nw *Network) stepNode(v, round int) (done bool, ne *NodeError) {
	api := nw.apis[v]
	defer func() {
		if r := recover(); r != nil {
			api.outbox = api.outbox[:0]
			ne = &NodeError{Node: int32(v), Round: round, Cause: r}
		}
	}()
	api.outbox = api.outbox[:0]
	inbox := nw.inboxes[v]
	done = nw.progs[v].Step(api, round-nw.start[v], inbox)
	nw.inboxes[v] = inbox[:0]
	return done, nil
}

// Program accessor for result extraction after a run.
func (nw *Network) Prog(v int32) Program { return nw.progs[v] }

// portOf returns the index of neighbor u in v's sorted adjacency array.
func portOf(g *graph.Static, v, u int32) int {
	nb := g.Neighbors(v)
	lo, hi := 0, len(nb)
	for lo < hi {
		mid := (lo + hi) / 2
		if nb[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo >= len(nb) || nb[lo] != u {
		invariant.Violatef("dist: %d is not a neighbor of %d", u, v)
	}
	return lo
}
