package stream_test

// Adoption of the internal/testkit conformance harness: the streaming
// reservoirs are order-oblivious, so the checkers must hold for every
// stream order — canonical, reversed, and shuffled — with the pure
// reservoir mark cap Δ' = Δ (no mark-all tweak in one pass).

import (
	"math/rand/v2"
	"testing"

	"repro/internal/gen"
	"repro/internal/params"
	"repro/internal/stream"
	"repro/internal/testkit"
)

func TestStreamConformanceAllOrders(t *testing.T) {
	const eps = 0.3
	inst := testkit.Certify(gen.BoundedDiversityInstance(120, 4, 64, 17))
	delta := params.Delta(inst.Beta, eps)

	m := inst.G.M()
	reversed := make([]int, m)
	for i := range reversed {
		reversed[i] = m - 1 - i
	}
	shuffled := rand.New(rand.NewPCG(9, 0)).Perm(m)

	for _, order := range []struct {
		name string
		perm []int
	}{
		{"canonical", nil},
		{"reversed", reversed},
		{"shuffled", shuffled},
	} {
		sp, mem := stream.SparsifyStream(inst.G, delta, order.perm, 21)
		if err := testkit.CheckSparsifierConformance(inst, sp, delta); err != nil {
			t.Errorf("%s order: %v", order.name, err)
		}
		if err := testkit.CheckSparsifierRatio(inst, sp, eps); err != nil {
			t.Errorf("%s order: %v", order.name, err)
		}
		// Semi-streaming memory: O(n·Δ) words, never Ω(m).
		if limit := int64(inst.G.N()) * int64(delta+2); mem > limit {
			t.Errorf("%s order: memory %d words exceeds n·(Δ+2) = %d", order.name, mem, limit)
		}
	}
}

func TestStreamDeltaHook(t *testing.T) {
	s := stream.NewSparsifierFor(10, 2, 0.25, 1)
	if got, want := s.Delta(), params.Delta(2, 0.25); got != want {
		t.Errorf("Delta() = %d, want the params resolution %d", got, want)
	}
}
