package stream

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/arcs"
	"repro/internal/gen"
	"repro/internal/matching"
)

func TestNewSparsifierValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { NewSparsifier(-1, 1, 0) },
		func() { NewSparsifier(3, 0, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad params did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestReservoirKeepsAllBelowDelta(t *testing.T) {
	s := NewSparsifier(6, 4, 1)
	s.Push(0, 1)
	s.Push(0, 2)
	s.Push(0, 3)
	s.Push(4, 4) // self-loop ignored
	sp := s.Sparsifier()
	if sp.M() != 3 {
		t.Fatalf("kept %d edges, want all 3", sp.M())
	}
	if s.Edges() != 3 {
		t.Errorf("Edges = %d, want 3", s.Edges())
	}
}

func TestReservoirCapacity(t *testing.T) {
	const n, delta = 40, 3
	s := NewSparsifier(n, delta, 7)
	// Star at 0: 39 incident edges, reservoir of 0 must hold exactly delta.
	for v := int32(1); v < n; v++ {
		s.Push(0, v)
	}
	if got := len(s.reservoir[0]); got != delta {
		t.Fatalf("reservoir size %d, want %d", got, delta)
	}
	sp := s.Sparsifier()
	// Leaves also keep the edge (their degree is 1 ≤ delta), so the
	// sparsifier is the whole star here; the reservoir bound is per vertex.
	if sp.Degree(0) != n-1 {
		t.Errorf("union degree %d (leaf marks dominate), want %d", sp.Degree(0), n-1)
	}
}

func TestReservoirUniform(t *testing.T) {
	// For a star center with degree d and reservoir delta, each incident
	// edge must survive with probability delta/d.
	const d, delta, trials = 20, 5, 3000
	counts := make([]int, d)
	for tr := 0; tr < trials; tr++ {
		s := NewSparsifier(d+1, delta, uint64(tr)+1)
		for v := int32(1); v <= d; v++ {
			s.Push(0, v)
		}
		for _, k := range s.reservoir[0] {
			_, other := arcs.Unpack(k) // center 0 packs as the min endpoint
			counts[other-1]++
		}
	}
	want := float64(trials) * float64(delta) / float64(d)
	for i, c := range counts {
		if f := float64(c); f < 0.85*want || f > 1.15*want {
			t.Errorf("edge %d survived %v times, want ≈ %v", i, f, want)
		}
	}
}

func TestMemorySublinear(t *testing.T) {
	g := gen.Clique(300) // m = 44850
	sp, mem := SparsifyStream(g, 4, nil, 3)
	if mem > int64(3*300*4+2*300) {
		t.Errorf("memory %d words too large for nΔ regime", mem)
	}
	if int64(g.M()) < mem {
		t.Fatalf("test graph not dense enough for the claim")
	}
	if sp.N() != 300 {
		t.Errorf("sparsifier has %d vertices", sp.N())
	}
}

func TestStreamOrderInvariance(t *testing.T) {
	// Quality must not depend on stream order: compare MCM preservation
	// under canonical, reversed, and shuffled orders.
	inst := gen.BoundedDiversityInstance(200, 2, 40, 9)
	exact := matching.MaximumGeneral(inst.G).Size()
	m := inst.G.M()
	rev := make([]int, m)
	for i := range rev {
		rev[i] = m - 1 - i
	}
	shuf := make([]int, m)
	for i := range shuf {
		shuf[i] = i
	}
	rng := rand.New(rand.NewPCG(4, 4))
	rng.Shuffle(m, func(i, j int) { shuf[i], shuf[j] = shuf[j], shuf[i] })
	for name, order := range map[string][]int{"canonical": nil, "reversed": rev, "shuffled": shuf} {
		sp, _ := SparsifyStream(inst.G, 8, order, 11)
		got := matching.MaximumGeneral(sp).Size()
		if float64(exact) > 1.3*float64(got) {
			t.Errorf("%s order: preserved only %d of %d", name, got, exact)
		}
	}
}

func TestStreamSparsifierIsSubgraph(t *testing.T) {
	g := gen.UnitDisk(250, 0.15, 5)
	sp, _ := SparsifyStream(g, 3, nil, 13)
	sp.ForEachEdge(func(u, v int32) {
		if !g.HasEdge(u, v) {
			t.Fatalf("streamed sparsifier edge (%d,%d) not in G", u, v)
		}
	})
}

func TestStreamQualityMatchesOffline(t *testing.T) {
	// The streaming sparsifier must match the offline construction's
	// quality at the same Δ (same distribution).
	inst := gen.CliqueInstance(301)
	exact := 150
	sp, _ := SparsifyStream(inst.G, 4, nil, 17)
	got := matching.MaximumGeneral(sp).Size()
	if got < exact-8 {
		t.Errorf("streaming sparsifier preserved %d of %d", got, exact)
	}
}

func TestSparsifyStreamOrderValidation(t *testing.T) {
	g := gen.Path(4)
	defer func() {
		if recover() == nil {
			t.Fatal("short order did not panic")
		}
	}()
	SparsifyStream(g, 2, []int{0}, 1)
}

func TestQuickStreamInvariants(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 3))
		n := 10 + rng.IntN(40)
		s := NewSparsifier(n, 1+rng.IntN(4), seed)
		es := 0
		for i := 0; i < 200; i++ {
			u, v := int32(rng.IntN(n)), int32(rng.IntN(n))
			s.Push(u, v)
			if u != v {
				es++
			}
		}
		if s.Edges() != int64(es) {
			return false
		}
		for v, r := range s.reservoir {
			if len(r) > s.delta {
				return false
			}
			for _, k := range r {
				u, w := arcs.Unpack(k)
				if u != int32(v) && w != int32(v) {
					return false
				}
			}
		}
		return s.Sparsifier().Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkStreamPush(b *testing.B) {
	s := NewSparsifier(1000, 8, 1)
	rng := rand.New(rand.NewPCG(1, 2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Push(int32(rng.IntN(1000)), int32(rng.IntN(1000)))
	}
}
