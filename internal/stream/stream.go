// Package stream implements the semi-streaming instantiation of the
// matching sparsifier. Section 3 of the paper notes that the construction
// "can be used more broadly in computational models where there are local
// or global memory constraints, such as ... the streaming model of
// computation": because each vertex keeps Δ uniform incident edges, a
// single pass of per-vertex reservoir sampling over the edge stream builds
// G_Δ in O(n·Δ·log n) bits of memory — far below the Ω(m) needed to store
// dense bounded-β graphs — after which any offline matching algorithm runs
// on the in-memory sparsifier.
//
// The sampler is order-oblivious: whatever the stream order (including
// adversarial), each vertex's reservoir is a uniform Δ-subset of its
// incident edges, which is exactly the distribution Theorem 2.1 analyzes.
// (The marks of two adjacent vertices are independent because each vertex
// samples from its own independent randomness.)
package stream

import (
	"math/rand/v2"

	"repro/internal/arcs"
	"repro/internal/graph"
	"repro/internal/invariant"
	"repro/internal/params"
)

// Sparsifier consumes a stream of edges and maintains, for every vertex, a
// uniform reservoir of up to Δ incident edges. Memory is O(n·Δ) words
// regardless of the stream length. Reservoir entries are packed arcs
// (internal/arcs), so materializing the sparsifier is a single integer
// sort with no Edge-struct conversion.
type Sparsifier struct {
	delta     int
	reservoir [][]uint64 // per-vertex reservoir of packed arcs, ≤ delta entries
	degree    []int64    // edges seen incident on each vertex
	edges     int64      // stream length so far
	rng       *rand.Rand
}

// NewSparsifier creates a streaming sparsifier for n vertices with
// per-vertex reservoir capacity delta.
func NewSparsifier(n, delta int, seed uint64) *Sparsifier {
	if n < 0 || delta < 1 {
		invariant.Violatef("stream: bad parameters n=%d delta=%d", n, delta)
	}
	return &Sparsifier{
		delta:     delta,
		reservoir: make([][]uint64, n),
		degree:    make([]int64, n),
		rng:       rand.New(rand.NewPCG(seed, 0x57eea)),
	}
}

// NewSparsifierFor creates a streaming sparsifier with the reservoir
// capacity Δ resolved from (β, ε) through internal/params (Theorem 2.1).
func NewSparsifierFor(n, beta int, eps float64, seed uint64) *Sparsifier {
	return NewSparsifier(n, params.Delta(beta, eps), seed)
}

// Push consumes one stream edge. Self-loops are ignored; the caller may
// push duplicates (they count as parallel edges in the reservoir
// distribution, matching the multigraph semantics of streamed inputs).
func (s *Sparsifier) Push(u, v int32) {
	if u == v {
		return
	}
	s.edges++
	k := arcs.Pack(u, v)
	s.offer(u, k)
	s.offer(v, k)
}

// offer runs one reservoir-sampling step for vertex x.
func (s *Sparsifier) offer(x int32, k uint64) {
	s.degree[x]++
	r := s.reservoir[x]
	if len(r) < s.delta {
		s.reservoir[x] = append(r, k)
		return
	}
	// Classic reservoir rule: keep the newcomer with prob delta/degree,
	// evicting a uniform resident.
	if j := s.rng.Int64N(s.degree[x]); j < int64(s.delta) {
		r[j] = k
	}
}

// Edges returns the number of stream edges consumed.
func (s *Sparsifier) Edges() int64 { return s.edges }

// Delta returns the per-vertex reservoir capacity — the effective mark cap
// Δ' the conformance checkers (internal/testkit) bound the sparsifier's
// size and arboricity with.
func (s *Sparsifier) Delta() int { return s.delta }

// MemoryWords returns the current memory footprint in words (reservoir
// entries plus per-vertex counters) — the quantity the semi-streaming
// model bounds.
func (s *Sparsifier) MemoryWords() int64 {
	words := int64(2 * len(s.degree)) // degree counters + slice headers
	for _, r := range s.reservoir {
		words += int64(len(r)) // one packed edge per entry
	}
	return words
}

// Sparsifier materializes G_Δ from the current reservoirs.
func (s *Sparsifier) Sparsifier() *graph.Static {
	buf := arcs.Get()
	for _, r := range s.reservoir {
		for _, k := range r {
			buf.AddPacked(k)
		}
	}
	sp := graph.FromPackedArcs(len(s.reservoir), buf.Keys())
	buf.Release()
	return sp
}

// SparsifyStream is the one-shot convenience: it streams the edges of g in
// the given order (a permutation of 0..m-1, or nil for canonical order)
// and returns the sparsifier plus the peak memory in words.
func SparsifyStream(g *graph.Static, delta int, order []int, seed uint64) (*graph.Static, int64) {
	edges := g.Edges()
	s := NewSparsifier(g.N(), delta, seed)
	if order == nil {
		for _, e := range edges {
			s.Push(e.U, e.V)
		}
	} else {
		if len(order) != len(edges) {
			invariant.Violatef("stream: order has %d entries for %d edges", len(order), len(edges))
		}
		for _, i := range order {
			s.Push(edges[i].U, edges[i].V)
		}
	}
	return s.Sparsifier(), s.MemoryWords()
}
