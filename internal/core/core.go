// Package core implements the paper's primary contribution: the random
// matching sparsifier G_Δ for graphs of bounded neighborhood independence
// (Milenković & Solomon, SPAA 2020), together with the analysis utilities
// the paper's statements are phrased in (neighborhood independence number,
// arboricity/degeneracy bounds) and the bounded-degree sparsifier
// composition of Section 3.2.
//
// Given a graph G with neighborhood independence number β and a target
// approximation 1+ε, each vertex marks Δ = Θ((β/ε)·log(1/ε)) random incident
// edges; the sparsifier is the union of all marked edges. Theorem 2.1 shows
// this preserves the maximum matching size within 1+ε with high probability,
// while Observations 2.10 and 2.12 bound its size by 4·|MCM(G)|·Δ and its
// arboricity by 2Δ.
package core

import (
	"math"

	"repro/internal/params"
)

// DeltaFor returns the per-vertex mark count Δ used in the proof of
// Claim 2.7: Δ = ⌈20·(β/ε)·ln(24/ε)⌉. This is the value for which the
// (1+ε) guarantee of Theorem 2.1 is proved; it is deliberately conservative.
// The formula lives in internal/params (the single source of parameter
// resolution); this is the core-facing name.
func DeltaFor(beta int, eps float64) int { return params.DeltaProof(beta, eps) }

// DeltaLean returns a lean Δ = ⌈(β/ε)·ln(24/ε)⌉ with the proof's constant 20
// dropped. Experiments (T1, F2) show the sparsifier quality transition
// happens near this value; it is the practical default of the library.
// Delegates to params.Delta.
func DeltaLean(beta int, eps float64) int { return params.Delta(beta, eps) }

// BetaRegimeOK reports whether β is within the regime β = O(εn/log n)
// required by Theorem 2.1, using the explicit form β ≤ εn/(2·log₂ n).
// Outside this regime the sparsifier's failure probability is not bounded
// by 1/poly(n) (though the construction remains valid).
func BetaRegimeOK(beta, n int, eps float64) bool {
	if n < 2 {
		return true
	}
	return float64(beta) <= eps*float64(n)/(2*math.Log2(float64(n)))
}

// MatchingLowerBound returns the Lemma 2.2 bound ⌈n'/(β+2)⌉ ≤ |MCM(G)|,
// where n' is the number of non-isolated vertices.
func MatchingLowerBound(nonIsolated, beta int) int {
	if nonIsolated <= 0 {
		return 0
	}
	return (nonIsolated + beta + 1) / (beta + 2)
}
