package core

import (
	"fmt"

	"repro/internal/edcs"
	"repro/internal/graph"
	"repro/internal/params"
)

// Sparsifier is the pluggable sparsification backend behind the facade, the
// CLI, the benchmarks, and the conformance harness. A backend owns its own
// parameter resolution: callers hand it the paper's user-facing surface
// (β, ε) plus a seed, and the backend derives whatever internal knobs its
// construction needs (Δ for G_Δ; β_edcs and λ for EDCS) through
// internal/params.
//
// Contract shared by all backends: for a fixed (g, β, ε, seed) the output is
// bit-identical across runs AND across worker counts.
type Sparsifier interface {
	// Name returns the stable backend identifier used by CLI flags,
	// benchmark rows, and experiment tables ("gdelta", "edcs").
	Name() string
	// Guarantee states the approximation guarantee and its precondition in
	// one reporting-friendly line.
	Guarantee() string
	// Params returns the resolved internal parameters for (β, ε) as ordered
	// name/value pairs — the numbers a report should print next to the
	// backend name.
	Params(beta int, eps float64) []BackendParam
	// Sparsify builds the sparsifier of g for the accuracy target ε on
	// graphs of neighborhood independence at most β. Backends whose
	// guarantee does not involve β (EDCS) ignore it.
	Sparsify(g *graph.Static, beta int, eps float64, seed uint64) *graph.Static
	// SizeUpperBound returns the backend's deterministic bound on |E(H)|
	// for an input with n vertices and maximum matching size mcm.
	SizeUpperBound(n, mcm, beta int, eps float64) int
}

// BackendParam is one resolved backend parameter, for reporting. Values are
// float64 so integer and fractional parameters share one shape; integer
// parameters are exact (they are far below 2^53).
type BackendParam struct {
	Name  string
	Value float64
}

// GDelta is the paper's random-marking backend (Theorem 2.1): each vertex
// marks Δ = Δ(β, ε) random incident edges, and the sparsifier is the union
// of the marked edges. The (1+ε) guarantee needs the neighborhood
// independence of the input to be at most β.
type GDelta struct {
	// Workers shards the marking; zero means GOMAXPROCS. The output is
	// invariant to the value (Options.Workers).
	Workers int
	// Proof selects the proof constant of Claim 2.7 (Δ ≈ 20× larger)
	// instead of the lean experimental calibration.
	Proof bool
}

func (b GDelta) Name() string { return "gdelta" }

func (b GDelta) Guarantee() string {
	return "(1+ε) maximum matching w.h.p. on graphs of neighborhood independence ≤ β (Theorem 2.1)"
}

func (b GDelta) delta(beta int, eps float64) int {
	if b.Proof {
		return params.DeltaProof(beta, eps)
	}
	return params.Delta(beta, eps)
}

func (b GDelta) Params(beta int, eps float64) []BackendParam {
	d := b.delta(beta, eps)
	return []BackendParam{
		{Name: "delta", Value: float64(d)},
		{Name: "mark_all_threshold", Value: float64(params.MarkAllThreshold(d))},
	}
}

func (b GDelta) Sparsify(g *graph.Static, beta int, eps float64, seed uint64) *graph.Static {
	return SparsifyOpts(g, Options{Delta: b.delta(beta, eps), Workers: b.Workers}, seed)
}

func (b GDelta) SizeUpperBound(n, mcm, beta int, eps float64) int {
	return SizeUpperBound(mcm, b.delta(beta, eps), beta)
}

// EDCS is the edge-degree-constrained-subgraph backend (internal/edcs):
// ratio 3/2 + O(λ) on ARBITRARY graphs, the backend of choice when β is
// large or unknown. It resolves (β_edcs, λ) from ε alone and ignores β.
type EDCS struct {
	// Workers is accepted for interface symmetry; the fixpoint construction
	// is sequential and ignores it.
	Workers int
}

func (b EDCS) Name() string { return "edcs" }

func (b EDCS) Guarantee() string {
	return "3/2 + O(λ) maximum matching on arbitrary graphs (EDCS, Assadi–Bernstein)"
}

func (b EDCS) Params(_ int, eps float64) []BackendParam {
	p := params.EDCS{}.ResolveFor(eps)
	return []BackendParam{
		{Name: "beta_edcs", Value: float64(p.Beta)},
		{Name: "lambda", Value: p.Lambda},
		{Name: "low_threshold", Value: float64(p.LowThreshold)},
	}
}

func (b EDCS) Sparsify(g *graph.Static, _ int, eps float64, seed uint64) *graph.Static {
	return edcs.SparsifyFor(g, eps, seed)
}

func (b EDCS) SizeUpperBound(n, _, _ int, eps float64) int {
	return edcs.SizeUpperBound(n, params.EDCSBeta(eps))
}

// Backends returns every registered backend, in the stable registry order
// used by benchmark rows and conformance loops.
func Backends(workers int) []Sparsifier {
	return []Sparsifier{GDelta{Workers: workers}, EDCS{Workers: workers}}
}

// BackendNames returns the registry's stable name list, for flag docs and
// validation messages.
func BackendNames() []string {
	names := make([]string, 0, 2)
	for _, b := range Backends(0) {
		names = append(names, b.Name())
	}
	return names
}

// BackendByName resolves a backend identifier; the empty string selects the
// paper's G_Δ construction, keeping existing call sites and CLI invocations
// backward compatible.
func BackendByName(name string, workers int) (Sparsifier, error) {
	if name == "" {
		name = "gdelta"
	}
	for _, b := range Backends(workers) {
		if b.Name() == name {
			return b, nil
		}
	}
	return nil, fmt.Errorf("core: unknown sparsifier backend %q (have %v)", name, BackendNames())
}
