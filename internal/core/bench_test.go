package core

import (
	"fmt"
	"testing"

	"repro/internal/gen"
)

func BenchmarkSparsifySizes(b *testing.B) {
	for _, n := range []int{1000, 4000} {
		g := gen.BoundedDiversity(n, 2, 128, 1)
		for _, method := range []Method{MethodReadOnly, MethodResample} {
			b.Run(fmt.Sprintf("n=%d/%v", n, method), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					SparsifyOpts(g, Options{Delta: 8, Method: method, Workers: 1}, uint64(i))
				}
			})
		}
	}
}

func BenchmarkSparsifyParallelScaling(b *testing.B) {
	g := gen.BoundedDiversity(8000, 2, 256, 2)
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				SparsifyOpts(g, Options{Delta: 16, Workers: workers}, uint64(i))
			}
		})
	}
}

func BenchmarkDegeneracy(b *testing.B) {
	g := Sparsify(gen.BoundedDiversity(8000, 2, 256, 3), 8, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Degeneracy(g)
	}
}

func BenchmarkExactBetaUnitDisk(b *testing.B) {
	g := gen.UnitDisk(400, 0.08, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ExactBeta(g)
	}
}

func BenchmarkGreedyBetaLowerBound(b *testing.B) {
	g := gen.UnitDisk(1000, 0.08, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GreedyBetaLowerBound(g)
	}
}

func BenchmarkBoundedDegreeSparsifier(b *testing.B) {
	g := Sparsify(gen.BoundedDiversity(4000, 2, 256, 6), 16, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BoundedDegreeSparsifier(g, 20)
	}
}
