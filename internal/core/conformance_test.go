package core_test

// Adoption of the internal/testkit conformance harness: the sequential
// model's output is held to the theorem checkers on certified instances,
// for both sampling methods and for parallel worker sharding.

import (
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/params"
	"repro/internal/testkit"
)

func TestSparsifyConformance(t *testing.T) {
	const eps = 0.3
	for _, inst := range []testkit.Instance{
		testkit.Certify(gen.CliqueInstance(120)),
		testkit.Certify(gen.BoundedDiversityInstance(120, 4, 64, 11)),
	} {
		delta := params.Delta(inst.Beta, eps)
		for _, method := range []core.Method{core.MethodReadOnly, core.MethodResample} {
			opt := core.Options{Delta: delta, Method: method, Workers: 4}
			sp := core.SparsifyOpts(inst.G, opt, 3)
			if err := testkit.CheckSparsifierConformance(inst, sp, 2*delta); err != nil {
				t.Errorf("%s %v: %v", inst.Name, method, err)
			}
			if err := testkit.CheckSparsifierRatio(inst, sp, eps); err != nil {
				t.Errorf("%s %v: %v", inst.Name, method, err)
			}
		}
	}
}
