package core

import (
	"repro/internal/arcs"
	"repro/internal/graph"
	"repro/internal/invariant"
	"repro/internal/params"
)

// BoundedDegreeSparsifier implements the deterministic matching sparsifier
// of Solomon (ITCS'18) for graphs of bounded arboricity: every vertex marks
// up to deltaAlpha arbitrary incident edges (here: the first deltaAlpha
// entries of its adjacency array), and the sparsifier keeps exactly the
// edges marked by BOTH endpoints. Its maximum degree is therefore at most
// deltaAlpha by construction, and for a graph of arboricity α it is a
// (1+ε)-matching sparsifier when deltaAlpha = Θ(α/ε).
//
// This is the second stage of the paper's two-round distributed composition
// (Section 3.2): first G_Δ (randomized, bounded arboricity 2Δ), then this
// construction on top (deterministic, bounded degree).
func BoundedDegreeSparsifier(g *graph.Static, deltaAlpha int) *graph.Static {
	if deltaAlpha < 1 {
		invariant.Violatef("core: deltaAlpha must be >= 1, got %d", deltaAlpha)
	}
	buf := arcs.Get()
	for v := int32(0); v < int32(g.N()); v++ {
		d := min(g.Degree(v), deltaAlpha)
		for i := 0; i < d; i++ {
			w := g.Neighbor(v, i)
			if w < v {
				continue // handle each edge once, from its smaller endpoint
			}
			// Edge {v, w} is marked by v; check whether w marks it too.
			// Adjacency lists are sorted, so w marks its first deltaAlpha
			// (smallest) neighbors; v is marked by w iff v's rank in w's
			// list is below deltaAlpha.
			if rank, ok := neighborRank(g, w, v); ok && rank < deltaAlpha {
				buf.Add(v, w)
			}
		}
	}
	sp := graph.FromSortedArcs(g.N(), buf.Keys())
	buf.Release()
	return sp
}

// neighborRank returns the index of u in v's sorted adjacency list.
func neighborRank(g *graph.Static, v, u int32) (int, bool) {
	nb := g.Neighbors(v)
	lo, hi := 0, len(nb)
	for lo < hi {
		mid := (lo + hi) / 2
		if nb[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(nb) && nb[lo] == u {
		return lo, true
	}
	return 0, false
}

// DeltaAlphaFor returns the per-vertex mark count for the bounded-degree
// sparsifier: ⌈5·α/ε⌉, the Θ(α/ε) of Solomon ITCS'18 with the constant
// calibrated in experiment T7/T8 (quality stays within 1+ε across families).
// Delegates to params.DeltaAlpha.
func DeltaAlphaFor(arboricity int, eps float64) int {
	return params.DeltaAlpha(arboricity, eps)
}

// ComposedSparsifier builds the bounded-degree matching sparsifier G̃_Δ of
// Section 3.2: the random sparsifier G_Δ (arboricity ≤ 2Δ) composed with the
// bounded-degree sparsifier (max degree O(Δ/ε)). The result approximates the
// MCM of g within (1+ε)² ≤ 1+3ε w.h.p.; callers scale ε down by 3 to obtain
// a clean 1+ε.
func ComposedSparsifier(g *graph.Static, beta int, eps float64, seed uint64) *graph.Static {
	delta := DeltaLean(beta, eps)
	gd := SparsifyOpts(g, Options{Delta: delta}, seed)
	return BoundedDegreeSparsifier(gd, DeltaAlphaFor(2*delta, eps))
}
