package core

import (
	"math"
	"testing"
)

// TestMarkIndependenceAcrossEndpoints verifies the property the proof of
// Theorem 2.1 critically relies on (Observation 2.9): the random choices
// made "due to" different vertices are independent. On K_n with mark-all
// disabled, P(u marks uv) = Δ/(n−1) for every incident edge, so
// P(edge in G_Δ) = 1 − (1 − Δ/(n−1))² and
// P(marked by both) = (Δ/(n−1))². We estimate both and compare.
func TestMarkIndependenceAcrossEndpoints(t *testing.T) {
	const n, delta, trials = 41, 5, 3000
	g := cliqueN(n)
	p := float64(delta) / float64(n-1)
	wantEither := 1 - (1-p)*(1-p)
	wantBoth := p * p

	edgeU, edgeV := int32(7), int32(23) // an arbitrary fixed edge
	either, both := 0, 0
	opt := Options{Delta: delta, MarkAllThreshold: 1, Workers: 1}.withDefaults()
	for tr := 0; tr < trials; tr++ {
		markedByU, markedByV := false, false
		for _, e := range markRangeEdges(g, edgeU, edgeU+1, opt, uint64(tr)+1) {
			if e.Other(edgeU) == edgeV {
				markedByU = true
			}
		}
		for _, e := range markRangeEdges(g, edgeV, edgeV+1, opt, uint64(tr)+1) {
			if e.Other(edgeV) == edgeU {
				markedByV = true
			}
		}
		if markedByU || markedByV {
			either++
		}
		if markedByU && markedByV {
			both++
		}
	}
	gotEither := float64(either) / trials
	gotBoth := float64(both) / trials
	// Tolerances: ±4 standard errors.
	seEither := 4 * math.Sqrt(wantEither*(1-wantEither)/trials)
	if math.Abs(gotEither-wantEither) > seEither {
		t.Errorf("P(marked by either) = %.4f, want %.4f ± %.4f", gotEither, wantEither, seEither)
	}
	seBoth := 4*math.Sqrt(wantBoth*(1-wantBoth)/trials) + 0.002
	if math.Abs(gotBoth-wantBoth) > seBoth {
		t.Errorf("P(marked by both) = %.4f, want %.4f ± %.4f (independence)", gotBoth, wantBoth, seBoth)
	}
}

// TestMarkChiSquareUniformity runs a chi-square goodness-of-fit test on the
// read-only sampler's choices over a fixed vertex's neighborhood.
func TestMarkChiSquareUniformity(t *testing.T) {
	const d, delta, trials = 25, 5, 5000
	b := cliqueN(d + 1)
	opt := Options{Delta: delta, MarkAllThreshold: 1, Workers: 1}.withDefaults()
	counts := make([]float64, d+1)
	for tr := 0; tr < trials; tr++ {
		for _, e := range markRangeEdges(b, 0, 1, opt, uint64(tr)+11) {
			counts[e.Other(0)]++
		}
	}
	expected := float64(trials) * float64(delta) / float64(d)
	chi2 := 0.0
	for v := 1; v <= d; v++ {
		diff := counts[v] - expected
		chi2 += diff * diff / expected
	}
	// 24 degrees of freedom; the 99.9th percentile of χ²(24) is ≈ 51.2.
	if chi2 > 51.2 {
		t.Errorf("chi-square statistic %.1f exceeds the 99.9%% critical value (non-uniform sampling?)", chi2)
	}
}
