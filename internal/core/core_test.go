package core

import (
	"math"
	"testing"

	"repro/internal/graph"
)

func TestDeltaFor(t *testing.T) {
	// Δ = ⌈20·(β/ε)·ln(24/ε)⌉.
	got := DeltaFor(2, 0.5)
	want := int(math.Ceil(20 * 2 / 0.5 * math.Log(48)))
	if got != want {
		t.Errorf("DeltaFor(2,0.5) = %d, want %d", got, want)
	}
	if DeltaFor(1, 0.9) < 1 {
		t.Error("DeltaFor must be positive")
	}
	lean := DeltaLean(2, 0.5)
	if lean*20 < got-20 || lean*20 > got+20 {
		t.Errorf("DeltaLean should be ~DeltaFor/20: lean=%d full=%d", lean, got)
	}
}

func TestDeltaForPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { DeltaFor(0, 0.5) },
		func() { DeltaFor(1, 0) },
		func() { DeltaFor(1, 1) },
		func() { DeltaLean(1, -0.1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad params did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestBetaRegimeOK(t *testing.T) {
	if !BetaRegimeOK(1, 1, 0.5) {
		t.Error("tiny n should be fine")
	}
	if !BetaRegimeOK(2, 10000, 0.5) {
		t.Error("β=2, n=10000 should be in regime")
	}
	if BetaRegimeOK(5000, 10000, 0.1) {
		t.Error("β=n/2 should be out of regime")
	}
}

func TestMatchingLowerBound(t *testing.T) {
	// Lemma 2.2: |M| ≥ n'/(β+2).
	if got := MatchingLowerBound(10, 2); got != 3 {
		t.Errorf("LB(10,2) = %d, want ⌈10/4⌉ = 3", got)
	}
	if got := MatchingLowerBound(0, 2); got != 0 {
		t.Errorf("LB(0,2) = %d, want 0", got)
	}
}

func TestExactBetaKnownGraphs(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Static
		want int
	}{
		{"empty", graph.Empty(4), 0},
		{"edge", graph.FromEdges(2, []graph.Edge{{U: 0, V: 1}}), 1},
		{"path4", graph.FromEdges(4, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}}), 2},
		{"triangle", graph.FromEdges(3, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}}), 1},
		{"star5", graph.FromEdges(6, []graph.Edge{{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3}, {U: 0, V: 4}, {U: 0, V: 5}}), 5},
		{"C5", graph.FromEdges(5, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 4}, {U: 4, V: 0}}), 2},
	}
	for _, tc := range cases {
		if got := ExactBeta(tc.g); got != tc.want {
			t.Errorf("%s: β = %d, want %d", tc.name, got, tc.want)
		}
	}
}

func TestGreedyBetaNeverExceedsExact(t *testing.T) {
	graphs := []*graph.Static{
		graph.FromEdges(6, []graph.Edge{{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3}, {U: 1, V: 2}, {U: 3, V: 4}, {U: 4, V: 5}}),
		graph.FromEdges(5, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 4}, {U: 4, V: 0}}),
	}
	for i, g := range graphs {
		lo, hi := GreedyBetaLowerBound(g), ExactBeta(g)
		if lo > hi {
			t.Errorf("graph %d: greedy %d > exact %d", i, lo, hi)
		}
		if lo < 1 && hi >= 1 {
			t.Errorf("graph %d: greedy found nothing", i)
		}
	}
}

func TestDegeneracyKnown(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Static
		want int
	}{
		{"empty", graph.Empty(5), 0},
		{"path", graph.FromEdges(5, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 4}}), 1},
		{"cycle", graph.FromEdges(4, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 0}}), 2},
		{"K5", cliqueN(5), 4},
	}
	for _, tc := range cases {
		got, order := Degeneracy(tc.g)
		if got != tc.want {
			t.Errorf("%s: degeneracy = %d, want %d", tc.name, got, tc.want)
		}
		if len(order) != tc.g.N() {
			t.Errorf("%s: order has %d vertices, want %d", tc.name, len(order), tc.g.N())
		}
	}
}

func cliqueN(n int) *graph.Static {
	b := graph.NewBuilder(n)
	for u := int32(0); u < int32(n); u++ {
		for v := u + 1; v < int32(n); v++ {
			b.AddEdge(u, v)
		}
	}
	return b.Build()
}

func TestDegeneracyOrderWitness(t *testing.T) {
	// Every vertex must have at most `degeneracy` neighbors later in the
	// peeling order.
	g := cliqueN(6)
	k, order := Degeneracy(g)
	pos := make([]int, g.N())
	for i, v := range order {
		pos[v] = i
	}
	for _, v := range order {
		later := 0
		for _, w := range g.Neighbors(v) {
			if pos[w] > pos[v] {
				later++
			}
		}
		if later > k {
			t.Errorf("vertex %d has %d later neighbors > degeneracy %d", v, later, k)
		}
	}
}

func TestDensityBounds(t *testing.T) {
	// For K_n: arboricity = ⌈n/2⌉; density LB = ⌈C(n,2)/(n-1)⌉ = ⌈n/2⌉.
	g := cliqueN(8)
	lo := DensityLowerBound(g)
	deg, _ := Degeneracy(g)
	if lo != 4 {
		t.Errorf("density LB of K8 = %d, want 4", lo)
	}
	if lo > deg {
		t.Errorf("lower bound %d exceeds degeneracy %d", lo, deg)
	}
	if mb := MaxDegreeBound(g); mb != 4 {
		t.Errorf("MaxDegreeBound(K8) = %d, want 4", mb)
	}
	if DensityLowerBound(graph.Empty(1)) != 0 {
		t.Error("density of trivial graph != 0")
	}
}

func TestMethodString(t *testing.T) {
	if MethodReadOnly.String() != "readonly" || MethodResample.String() != "resample" {
		t.Errorf("Method strings: %v %v", MethodReadOnly, MethodResample)
	}
	if Method(9).String() == "" {
		t.Error("unknown method has empty string")
	}
}
