package core

import (
	"math/bits"

	"repro/internal/graph"
)

// ExactBeta computes the neighborhood independence number β(G) exactly by a
// branch-and-bound maximum-independent-set search inside every vertex
// neighborhood. This is exponential in the worst case (the problem is
// NP-hard); it is intended for validating generators' certified bounds on
// small and moderate instances. For dense neighborhoods (the typical
// bounded-β case) the search prunes quickly because the answer is small.
func ExactBeta(g *graph.Static) int {
	best := 0
	for v := int32(0); v < int32(g.N()); v++ {
		b := BetaAtVertex(g, v)
		if b > best {
			best = b
		}
	}
	return best
}

// BetaAtVertex returns the size of a maximum independent set within the
// neighborhood of v.
func BetaAtVertex(g *graph.Static, v int32) int {
	nb := g.Neighbors(v)
	d := len(nb)
	if d == 0 {
		return 0
	}
	// Local ids 0..d-1 for the neighborhood; adjacency as bitsets.
	local := make(map[int32]int, d)
	for i, w := range nb {
		local[w] = i
	}
	words := (d + 63) / 64
	adj := make([]uint64, d*words)
	for i, w := range nb {
		for _, x := range g.Neighbors(w) {
			if j, ok := local[x]; ok {
				adj[i*words+j/64] |= 1 << (j % 64)
			}
		}
	}
	// Candidate set = all neighbors.
	cand := make([]uint64, words)
	for i := 0; i < d; i++ {
		cand[i/64] |= 1 << (i % 64)
	}
	best := 0
	var search func(cand []uint64, size int)
	search = func(cand []uint64, size int) {
		if size > best {
			best = size
		}
		remaining := popcount(cand)
		if size+remaining <= best || remaining == 0 {
			return
		}
		// Pick the candidate with the most candidate-neighbors: including it
		// shrinks the candidate set fastest; excluding it removes a hub.
		pick, pickDeg := -1, -1
		for w := 0; w < words; w++ {
			bitsLeft := cand[w]
			for bitsLeft != 0 {
				i := w*64 + bits.TrailingZeros64(bitsLeft)
				bitsLeft &= bitsLeft - 1
				deg := 0
				for k := 0; k < words; k++ {
					deg += bits.OnesCount64(adj[i*words+k] & cand[k])
				}
				if deg > pickDeg {
					pick, pickDeg = i, deg
				}
			}
		}
		// Branch 1: include pick — drop pick and its neighbors.
		with := make([]uint64, words)
		for k := 0; k < words; k++ {
			with[k] = cand[k] &^ adj[pick*words+k]
		}
		with[pick/64] &^= 1 << (pick % 64)
		search(with, size+1)
		// Branch 2: exclude pick.
		without := make([]uint64, words)
		copy(without, cand)
		without[pick/64] &^= 1 << (pick % 64)
		search(without, size)
	}
	search(cand, 0)
	return best
}

func popcount(set []uint64) int {
	c := 0
	for _, w := range set {
		c += bits.OnesCount64(w)
	}
	return c
}

// GreedyBetaLowerBound returns a lower bound on β(G) by growing an
// independent set greedily (min-degree-first) inside every neighborhood.
// Cost is O(Σ_v deg(v)·β) with small constants; exact on cluster-like
// neighborhoods and never above β(G).
func GreedyBetaLowerBound(g *graph.Static) int {
	best := 0
	for v := int32(0); v < int32(g.N()); v++ {
		if b := greedyBetaAt(g, v); b > best {
			best = b
		}
	}
	return best
}

func greedyBetaAt(g *graph.Static, v int32) int {
	nb := g.Neighbors(v)
	var picked []int32
	for _, w := range nb {
		ok := true
		for _, p := range picked {
			if g.HasEdge(w, p) {
				ok = false
				break
			}
		}
		if ok {
			picked = append(picked, w)
		}
	}
	return len(picked)
}
