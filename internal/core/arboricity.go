package core

import "repro/internal/graph"

// Degeneracy returns the degeneracy of g (the smallest k such that every
// subgraph has a vertex of degree at most k), computed in O(n + m) time by
// the Matula–Beck bucket-peeling algorithm, together with a vertex ordering
// witnessing it (each vertex has at most Degeneracy later neighbors).
//
// Degeneracy sandwiches arboricity: α(G) ≤ degeneracy(G) ≤ 2α(G) − 1,
// so it serves as the checkable proxy for Observation 2.12 (α(G_Δ) ≤ 2Δ).
func Degeneracy(g *graph.Static) (int, []int32) {
	n := g.N()
	if n == 0 {
		return 0, nil
	}
	deg := make([]int, n)
	maxDeg := 0
	for v := 0; v < n; v++ {
		deg[v] = g.Degree(int32(v))
		if deg[v] > maxDeg {
			maxDeg = deg[v]
		}
	}
	// Bucket queue over current degrees.
	buckets := make([][]int32, maxDeg+1)
	for v := 0; v < n; v++ {
		buckets[deg[v]] = append(buckets[deg[v]], int32(v))
	}
	removed := make([]bool, n)
	order := make([]int32, 0, n)
	degeneracy := 0
	cur := 0
	for len(order) < n {
		if cur > maxDeg {
			break
		}
		if len(buckets[cur]) == 0 {
			cur++
			continue
		}
		v := buckets[cur][len(buckets[cur])-1]
		buckets[cur] = buckets[cur][:len(buckets[cur])-1]
		if removed[v] || deg[v] != cur {
			// Stale bucket entry; the vertex moved to a lower bucket.
			continue
		}
		removed[v] = true
		order = append(order, v)
		if cur > degeneracy {
			degeneracy = cur
		}
		for _, w := range g.Neighbors(v) {
			if !removed[w] {
				deg[w]--
				buckets[deg[w]] = append(buckets[deg[w]], w)
				if deg[w] < cur {
					cur = deg[w]
				}
			}
		}
	}
	return degeneracy, order
}

// DensityLowerBound returns a lower bound on the arboricity via the
// Nash–Williams formula ⌈|E(U)|/(|U|−1)⌉ evaluated on the whole graph and on
// the dense suffixes of the degeneracy peeling order (a standard densest-
// subgraph peeling approximation).
func DensityLowerBound(g *graph.Static) int {
	n := g.N()
	if n < 2 {
		return 0
	}
	_, order := Degeneracy(g)
	// Peel in order; the suffix order[i:] induces a subgraph. Track its edge
	// count incrementally: removing order[i] removes its edges to the suffix.
	pos := make([]int, n)
	for i, v := range order {
		pos[v] = i
	}
	suffixEdges := int64(g.M())
	best := int64(0)
	bestDen := nashWilliams(suffixEdges, int64(n))
	best = bestDen
	for i := 0; i+2 < n; i++ {
		v := order[i]
		for _, w := range g.Neighbors(v) {
			if pos[w] > i {
				suffixEdges--
			}
		}
		size := int64(n - i - 1)
		if d := nashWilliams(suffixEdges, size); d > best {
			best = d
		}
	}
	return int(best)
}

func nashWilliams(edges, vertices int64) int64 {
	if vertices < 2 {
		return 0
	}
	return (edges + vertices - 2) / (vertices - 1) // ceil(edges/(vertices-1))
}

// MaxDegreeBound returns the trivial arboricity upper bound ⌈(maxdeg+1)/2⌉
// (every k-vertex subgraph has at most k·maxdeg/2 edges), reported alongside
// degeneracy in the T4 experiment.
func MaxDegreeBound(g *graph.Static) int {
	return (g.MaxDegree() + 1) / 2
}
