package core

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

// sparsifyAndCheckSubgraph verifies G_Δ ⊆ G over the same vertex set.
func checkSubgraph(t *testing.T, g, sp *graph.Static) {
	t.Helper()
	if sp.N() != g.N() {
		t.Fatalf("sparsifier has %d vertices, graph %d", sp.N(), g.N())
	}
	sp.ForEachEdge(func(u, v int32) {
		if !g.HasEdge(u, v) {
			t.Fatalf("sparsifier edge (%d,%d) not in G", u, v)
		}
	})
}

func TestSparsifyIsSubgraph(t *testing.T) {
	g := cliqueN(40)
	sp := Sparsify(g, 3, 1)
	checkSubgraph(t, g, sp)
	if err := sp.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSparsifyLowDegreeKeepsAll(t *testing.T) {
	// Every vertex of C10 has degree 2 ≤ 2Δ for Δ=1, so G_Δ = G.
	b := graph.NewBuilder(10)
	for v := int32(0); v < 10; v++ {
		b.AddEdge(v, (v+1)%10)
	}
	g := b.Build()
	sp := Sparsify(g, 1, 5)
	if sp.M() != g.M() {
		t.Errorf("low-degree graph: sparsifier has %d edges, want all %d", sp.M(), g.M())
	}
}

func TestSparsifyDegreeMarks(t *testing.T) {
	// In K_n with Δ ≪ n, every vertex marks exactly Δ edges, so each vertex
	// has degree ≥ Δ in G_Δ, and total edges ≤ nΔ.
	n, delta := 60, 4
	g := cliqueN(n)
	sp := SparsifyOpts(g, Options{Delta: delta, Workers: 1}, 3)
	if sp.M() > n*delta {
		t.Errorf("size %d exceeds nΔ = %d", sp.M(), n*delta)
	}
	for v := int32(0); v < int32(n); v++ {
		if sp.Degree(v) < delta {
			t.Errorf("vertex %d has degree %d < Δ = %d", v, sp.Degree(v), delta)
		}
	}
}

func TestSparsifyMethodsAgreeOnMarginals(t *testing.T) {
	// Both sampling methods must produce Δ distinct marks per high-degree
	// vertex; check per-vertex mark counts on a star-free regular-ish graph.
	g := cliqueN(30)
	for _, method := range []Method{MethodReadOnly, MethodResample} {
		sp := SparsifyOpts(g, Options{Delta: 5, Method: method, Workers: 1}, 9)
		checkSubgraph(t, g, sp)
		for v := int32(0); v < int32(g.N()); v++ {
			if sp.Degree(v) < 5 {
				t.Errorf("%v: vertex %d degree %d < Δ", method, v, sp.Degree(v))
			}
		}
	}
}

func TestSparsifyReadOnlySamplingUniform(t *testing.T) {
	// Each neighbor of a fixed vertex should be marked with probability
	// Δ/deg. Run many trials on a star-center and count.
	const n, delta, trials = 21, 5, 4000
	b := graph.NewBuilder(n)
	for v := int32(1); v < n; v++ {
		b.AddEdge(0, v)
	}
	g := b.Build()
	counts := make([]int, n)
	opt := Options{Delta: delta, MarkAllThreshold: 1, Workers: 1}.withDefaults()
	for trial := 0; trial < trials; trial++ {
		// Sample only the marks made due to vertex 0 (the center), so the
		// leaves' own marks do not contaminate the counts.
		for _, e := range markRangeEdges(g, 0, 1, opt, uint64(trial+1)) {
			counts[e.Other(0)]++
		}
	}
	want := float64(trials) * float64(delta) / float64(n-1) // = trials/4
	for v := 1; v < n; v++ {
		got := float64(counts[v])
		if got < 0.8*want || got > 1.2*want {
			t.Errorf("leaf %d marked %v times, want ≈ %v", v, got, want)
		}
	}
}

func TestSparsifyDeterministicPerSeed(t *testing.T) {
	g := cliqueN(50)
	a := SparsifyOpts(g, Options{Delta: 4, Workers: 1}, 42)
	b := SparsifyOpts(g, Options{Delta: 4, Workers: 1}, 42)
	if a.M() != b.M() {
		t.Fatalf("same seed, different sizes: %d vs %d", a.M(), b.M())
	}
	ae, be := a.Edges(), b.Edges()
	for i := range ae {
		if ae[i] != be[i] {
			t.Fatalf("same seed, different edge at %d: %v vs %v", i, ae[i], be[i])
		}
	}
}

func TestSparsifyParallelMatchesInvariants(t *testing.T) {
	g := cliqueN(2048) // large enough to trigger the parallel path
	sp := SparsifyOpts(g, Options{Delta: 3, Workers: 4}, 5)
	checkSubgraph(t, g, sp)
	if sp.M() > 2048*3 {
		t.Errorf("parallel sparsifier too large: %d", sp.M())
	}
	for v := int32(0); v < int32(g.N()); v++ {
		if sp.Degree(v) < 3 {
			t.Errorf("parallel: vertex %d degree %d < Δ", v, sp.Degree(v))
		}
	}
}

func TestSparsifyPanicsOnBadDelta(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Delta=0 did not panic")
		}
	}()
	Sparsify(cliqueN(4), 0, 1)
}

func TestSizeUpperBoundObservation210(t *testing.T) {
	// K_n: MCM = n/2, β = 1. Sparsifier size must be ≤ 2·MCM·(thr+β) where
	// thr = 2Δ is the effective per-vertex mark cap with the low-degree tweak.
	n, delta := 100, 5
	g := cliqueN(n)
	sp := Sparsify(g, delta, 7)
	bound := SizeUpperBound(n/2, 2*delta, 1)
	if sp.M() > bound {
		t.Errorf("size %d exceeds Observation 2.10 bound %d", sp.M(), bound)
	}
}

func TestArboricityObservation212(t *testing.T) {
	// Degeneracy (≥ arboricity... actually ≤ 2·arboricity−1 and ≥ arboricity)
	// of G_Δ must be ≤ 2·(2Δ): we check the degeneracy against the
	// ArboricityUpperBound with the tweak's factor, via α ≤ degeneracy.
	g := cliqueN(200)
	opt := Options{Delta: 4}
	sp := SparsifyOpts(g, opt, 11)
	degen, _ := Degeneracy(sp)
	// α ≤ degeneracy ≤ 2α−1, so degeneracy ≤ 2·αBound−1.
	if aBound := ArboricityUpperBound(opt); degen > 2*aBound-1 {
		t.Errorf("degeneracy %d exceeds 2·(2Δ')−1 = %d", degen, 2*aBound-1)
	}
	if lb := DensityLowerBound(sp); lb > ArboricityUpperBound(opt) {
		t.Errorf("density lower bound %d exceeds Observation 2.12 bound %d", lb, ArboricityUpperBound(opt))
	}
}

func TestArboricityUpperBoundValues(t *testing.T) {
	if got := ArboricityUpperBound(Options{Delta: 5}); got != 20 {
		t.Errorf("default tweak: bound = %d, want 2·(2·5) = 20", got)
	}
	if got := ArboricityUpperBound(Options{Delta: 5, MarkAllThreshold: 5}); got != 10 {
		t.Errorf("explicit threshold: bound = %d, want 10", got)
	}
}

func TestSparsifyQuickSubgraphAndSize(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 1))
		n := 20 + rng.IntN(60)
		delta := 1 + rng.IntN(5)
		g := cliqueN(n)
		sp := SparsifyOpts(g, Options{Delta: delta, Workers: 1}, seed)
		if sp.N() != n || sp.M() > n*2*delta {
			return false
		}
		ok := true
		sp.ForEachEdge(func(u, v int32) {
			if !g.HasEdge(u, v) {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestBoundedDegreeSparsifier(t *testing.T) {
	g := cliqueN(30)
	da := 6
	sp := BoundedDegreeSparsifier(g, da)
	checkSubgraph(t, g, sp)
	if sp.MaxDegree() > da {
		t.Errorf("max degree %d exceeds Δα = %d", sp.MaxDegree(), da)
	}
	// In a clique, vertex v marks its Δα smallest neighbors; edges kept are
	// exactly those within the first Δα+1 vertices (both endpoints mark).
	want := da * (da + 1) / 2
	if sp.M() != want {
		t.Errorf("K30 bounded-degree sparsifier has %d edges, want %d", sp.M(), want)
	}
}

func TestBoundedDegreeSparsifierPreservesMatchingOnSparse(t *testing.T) {
	// On a bounded-degree graph with Δα ≥ maxdeg the sparsifier is the
	// whole graph.
	b := graph.NewBuilder(12)
	for v := int32(0); v+1 < 12; v++ {
		b.AddEdge(v, v+1)
	}
	g := b.Build()
	sp := BoundedDegreeSparsifier(g, 4)
	if sp.M() != g.M() {
		t.Errorf("path: kept %d of %d edges", sp.M(), g.M())
	}
}

func TestComposedSparsifierBoundedDegree(t *testing.T) {
	g := cliqueN(120)
	eps := 0.4
	sp := ComposedSparsifier(g, 1, eps, 13)
	checkSubgraph(t, g, sp)
	delta := DeltaLean(1, eps)
	if limit := DeltaAlphaFor(2*delta, eps); sp.MaxDegree() > limit {
		t.Errorf("composed degree %d exceeds %d", sp.MaxDegree(), limit)
	}
	if sp.M() == 0 {
		t.Error("composed sparsifier empty")
	}
}

func TestDeltaAlphaFor(t *testing.T) {
	if got := DeltaAlphaFor(4, 0.5); got != 40 {
		t.Errorf("DeltaAlphaFor(4,0.5) = %d, want 40", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("bad arboricity did not panic")
		}
	}()
	DeltaAlphaFor(0, 0.5)
}
