package core

import (
	"math/rand/v2"
	"testing"

	"repro/internal/graph"
	"repro/internal/matching"
)

// TestSparsifierRobustnessRandomStructures is a mini-fuzzer for the
// Theorem 2.1 property on ARBITRARY random graphs (not just the certified
// families): compute β exactly, pick Δ = DeltaLean(β, ε), and check the
// sparsifier preserves the MCM within 1+ε. Seeds are fixed, so the test is
// deterministic; a failure here would witness an instance violating the
// calibration and should be promoted to a regression case.
func TestSparsifierRobustnessRandomStructures(t *testing.T) {
	const eps = 0.3
	for seed := uint64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewPCG(seed, 99))
		n := 12 + rng.IntN(48)
		p := 0.15 + rng.Float64()*0.6
		b := graph.NewBuilder(n)
		for u := int32(0); u < int32(n); u++ {
			for v := u + 1; v < int32(n); v++ {
				if rng.Float64() < p {
					b.AddEdge(u, v)
				}
			}
		}
		g := b.Build()
		if g.M() == 0 {
			continue
		}
		beta := ExactBeta(g)
		if beta == 0 {
			continue
		}
		delta := DeltaLean(beta, eps)
		exact := matching.MaximumGeneral(g).Size()
		sp := Sparsify(g, delta, seed+1000)
		got := matching.MaximumGeneral(sp).Size()
		if float64(exact) > (1+eps)*float64(got) {
			t.Errorf("seed %d (n=%d p=%.2f β=%d Δ=%d): ratio %d/%d violates 1+ε",
				seed, n, p, beta, delta, exact, got)
		}
	}
}

// TestSparsifierHighBetaBoundary exercises the regime the theorem excludes
// (β close to n): stars and complete bipartite graphs. The construction
// stays well-defined and the bounds that are deterministic keep holding.
func TestSparsifierHighBetaBoundary(t *testing.T) {
	// Star: β = n−1, MCM = 1; every non-empty sparsifier preserves it.
	star := graph.NewBuilder(50)
	for v := int32(1); v < 50; v++ {
		star.AddEdge(0, v)
	}
	g := star.Build()
	sp := Sparsify(g, 2, 7)
	if matching.MaximumGeneral(sp).Size() != 1 {
		t.Error("star: sparsifier lost the single matched edge")
	}
	// K_{3,30}: β = 30, MCM = 3.
	kb := graph.NewBuilder(33)
	for u := int32(0); u < 3; u++ {
		for v := int32(3); v < 33; v++ {
			kb.AddEdge(u, v)
		}
	}
	g2 := kb.Build()
	sp2 := Sparsify(g2, 3, 9)
	if got := matching.MaximumGeneral(sp2).Size(); got != 3 {
		t.Errorf("K3,30: sparsifier MCM %d, want 3", got)
	}
}

// TestBetaAtVertexSpecific pins the per-vertex computation.
func TestBetaAtVertexSpecific(t *testing.T) {
	// Vertex 0 adjacent to a triangle {1,2,3} plus two isolated-from-each-
	// other neighbors {4,5}: max independent set in N(0) = {1,4,5} = 3.
	g := graph.FromEdges(6, []graph.Edge{
		{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3}, {U: 0, V: 4}, {U: 0, V: 5},
		{U: 1, V: 2}, {U: 2, V: 3}, {U: 1, V: 3},
	})
	if got := BetaAtVertex(g, 0); got != 3 {
		t.Errorf("BetaAtVertex(0) = %d, want 3", got)
	}
	if got := BetaAtVertex(g, 4); got != 1 {
		t.Errorf("BetaAtVertex(4) = %d, want 1 (only neighbor is 0)", got)
	}
}

// TestSolomonSparsifierQualityOnBoundedArboricity checks the ITCS'18 claim
// the composition relies on: on bounded-arboricity graphs, the
// bounded-degree sparsifier preserves the matching within 1+ε at
// Δα = DeltaAlphaFor(α, ε).
func TestSolomonSparsifierQualityOnBoundedArboricity(t *testing.T) {
	// A bounded-arboricity input: the sparsifier of a dense graph.
	g := Sparsify(cliqueN(301), 4, 3) // arboricity ≤ 16
	exact := matching.MaximumGeneral(g).Size()
	alpha, _ := Degeneracy(g)
	sp := BoundedDegreeSparsifier(g, DeltaAlphaFor(alpha, 0.3))
	got := matching.MaximumGeneral(sp).Size()
	if float64(exact) > 1.3*float64(got) {
		t.Errorf("bounded-degree sparsifier: %d of %d (α=%d)", got, exact, alpha)
	}
}
