package core

import (
	"math/rand/v2"
	"testing"

	"repro/internal/arcs"
	"repro/internal/graph"
)

// markRangeEdges collects the marks of markRange as Edge structs — a test
// helper over the packed-arc accumulation path.
func markRangeEdges(g *graph.Static, lo, hi int32, opt Options, seed, stream uint64) []graph.Edge {
	buf := arcs.Get()
	defer buf.Release()
	markRange(g, lo, hi, opt, seed, stream, buf)
	edges := make([]graph.Edge, 0, buf.Len())
	for _, k := range buf.Keys() {
		u, v := arcs.Unpack(k)
		edges = append(edges, graph.Edge{U: u, V: v})
	}
	return edges
}

// TestRNGStreamDistinctPerChunk is the regression test for the stream-seed
// derivation: the old expression stream<<32|0x5bf0&0xffffffff|uint64(lo)
// OR-ed a constant and the range start into the same low bits (operator
// precedence made the mask a no-op), so distinct (stream, lo) chunks could
// collide. The fixed derivation stream<<32|uint64(uint32(lo)) is injective.
func TestRNGStreamDistinctPerChunk(t *testing.T) {
	type chunk struct {
		stream uint64
		lo     int32
	}
	chunks := []chunk{
		{0, 0}, {0, 1}, {1, 0}, {1, 1},
		{0, 0x5bf0}, {0, 0x1bf0}, // collided under the old expression
		{2, 250}, {3, 250}, {2, 500},
		{0, 1 << 30}, {1 << 20, 0},
	}
	seen := make(map[uint64]chunk, len(chunks))
	for _, c := range chunks {
		s := rngStream(c.stream, c.lo)
		if prev, dup := seen[s]; dup {
			t.Errorf("chunks %+v and %+v share RNG stream %#x", prev, c, s)
		}
		seen[s] = c
	}
	// The stream ids must also produce distinguishable generators: the first
	// outputs of all chunks' RNGs should not all coincide pairwise.
	outs := make(map[uint64]chunk, len(chunks))
	for _, c := range chunks {
		v := rand.New(rand.NewPCG(7, rngStream(c.stream, c.lo))).Uint64()
		if prev, dup := outs[v]; dup {
			t.Errorf("chunks %+v and %+v produce identical first RNG output", prev, c)
		}
		outs[v] = c
	}
}

// TestMarkRangeChunksIndependent checks at the sampler level that two
// workers (distinct stream ids) covering the same vertex draw different
// mark sets — i.e. the streams actually decorrelate the workers.
func TestMarkRangeChunksIndependent(t *testing.T) {
	g := cliqueN(200)
	opt := Options{Delta: 4, MarkAllThreshold: 1, Workers: 1}.withDefaults()
	a := markRangeEdges(g, 0, 1, opt, 1, 0)
	b := markRangeEdges(g, 0, 1, opt, 1, 1)
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatalf("streams 0 and 1 produced identical marks %v", a)
	}
}

// TestSparsifyDeterministicAcrossRuns: for a fixed (seed, Workers) pair the
// parallel construction is reproducible run-to-run — worker RNG streams are
// keyed by vertex range, not goroutine scheduling.
func TestSparsifyDeterministicAcrossRuns(t *testing.T) {
	g := cliqueN(2048) // above the n >= 1024 parallel threshold
	for _, workers := range []int{2, 4, 7} {
		opt := Options{Delta: 6, Workers: workers}
		a := SparsifyOpts(g, opt, 99)
		for run := 0; run < 3; run++ {
			b := SparsifyOpts(g, opt, 99)
			if a.M() != b.M() {
				t.Fatalf("workers=%d: same seed, different sizes: %d vs %d", workers, a.M(), b.M())
			}
			ae, be := a.Edges(), b.Edges()
			for i := range ae {
				if ae[i] != be[i] {
					t.Fatalf("workers=%d: same seed, different edge at %d: %v vs %v", workers, i, ae[i], be[i])
				}
			}
		}
	}
}
