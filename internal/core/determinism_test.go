package core

import (
	"math/rand/v2"
	"testing"

	"repro/internal/arcs"
	"repro/internal/graph"
)

// markRangeEdges collects the marks of markRange as Edge structs — a test
// helper over the packed-arc accumulation path.
func markRangeEdges(g *graph.Static, lo, hi int32, opt Options, seed uint64) []graph.Edge {
	buf := arcs.Get()
	defer buf.Release()
	markRange(g, lo, hi, opt, seed, buf)
	edges := make([]graph.Edge, 0, buf.Len())
	for _, k := range buf.Keys() {
		u, v := arcs.Unpack(k)
		edges = append(edges, graph.Edge{U: u, V: v})
	}
	return edges
}

// TestRNGStreamDistinctPerBlock checks the stream-seed derivation: distinct
// block starts must map to distinct PCG streams (the derivation is injective
// over int32 block starts), and the streams must produce distinguishable
// generators.
func TestRNGStreamDistinctPerBlock(t *testing.T) {
	blocks := []int32{
		0, markBlockSize, 2 * markBlockSize, 3 * markBlockSize,
		0x5bf0 * markBlockSize, // the tag constant must not alias a block
		1 << 20, 1 << 30,
	}
	seen := make(map[uint64]int32, len(blocks))
	for _, b := range blocks {
		s := rngStream(b)
		if prev, dup := seen[s]; dup {
			t.Errorf("blocks %d and %d share RNG stream %#x", prev, b, s)
		}
		seen[s] = b
	}
	// The stream ids must also produce distinguishable generators: the first
	// outputs of all blocks' RNGs should not collide pairwise.
	outs := make(map[uint64]int32, len(blocks))
	for _, b := range blocks {
		v := rand.New(rand.NewPCG(7, rngStream(b))).Uint64()
		if prev, dup := outs[v]; dup {
			t.Errorf("blocks %d and %d produce identical first RNG output", prev, b)
		}
		outs[v] = b
	}
}

// TestMarkRangeBlocksIndependent checks at the sampler level that two
// different blocks draw from decorrelated streams: the same high-degree
// vertex structure sampled under block 0's stream and under block 1's
// stream must not produce identical mark sequences.
func TestMarkRangeBlocksIndependent(t *testing.T) {
	// Two cliques of markBlockSize vertices each; vertex 0 lives in block 0,
	// vertex markBlockSize in block 1, and both have the same degree, so any
	// correlation between the block streams would show up as identical
	// neighbor-index choices.
	n := 2 * markBlockSize
	b := graph.NewBuilder(n)
	for u := int32(0); u < markBlockSize; u++ {
		for v := u + 1; v < markBlockSize; v++ {
			b.AddEdge(u, v)
			b.AddEdge(u+markBlockSize, v+markBlockSize)
		}
	}
	g := b.Build()
	opt := Options{Delta: 8, MarkAllThreshold: 1, Workers: 1}.withDefaults()
	a := markRangeEdges(g, 0, 1, opt, 1)
	c := markRangeEdges(g, markBlockSize, markBlockSize+1, opt, 1)
	if len(a) != len(c) {
		t.Fatalf("mark counts differ: %d vs %d", len(a), len(c))
	}
	same := 0
	for i := range a {
		if a[i].V-0 == c[i].V-markBlockSize {
			same++
		}
	}
	if same == len(a) {
		t.Fatalf("blocks 0 and %d produced identical neighbor choices %v", markBlockSize, a)
	}
}

// TestSparsifyDeterministicAcrossRuns: for a fixed seed the parallel
// construction is reproducible run-to-run — RNG streams are keyed by vertex
// block, not goroutine scheduling.
func TestSparsifyDeterministicAcrossRuns(t *testing.T) {
	g := cliqueN(2048) // above the parallel threshold
	for _, workers := range []int{2, 4, 7} {
		opt := Options{Delta: 6, Workers: workers}
		a := SparsifyOpts(g, opt, 99)
		for run := 0; run < 3; run++ {
			b := SparsifyOpts(g, opt, 99)
			if a.M() != b.M() {
				t.Fatalf("workers=%d: same seed, different sizes: %d vs %d", workers, a.M(), b.M())
			}
			ae, be := a.Edges(), b.Edges()
			for i := range ae {
				if ae[i] != be[i] {
					t.Fatalf("workers=%d: same seed, different edge at %d: %v vs %v", workers, i, ae[i], be[i])
				}
			}
		}
	}
}

// TestSparsifyWorkerInvariant: the marked edge set is bit-identical for
// EVERY worker count — the block-keyed stream contract that makes backend
// outputs comparable across machines and configurations.
func TestSparsifyWorkerInvariant(t *testing.T) {
	g := cliqueN(3000) // spans three blocks, above the parallel threshold
	opt := Options{Delta: 5}
	base := SparsifyOpts(g, Options{Delta: 5, Workers: 1}, 42)
	for _, workers := range []int{2, 3, 4, 8, 16} {
		opt.Workers = workers
		got := SparsifyOpts(g, opt, 42)
		if got.M() != base.M() {
			t.Fatalf("workers=%d: |E| = %d, want %d (workers=1)", workers, got.M(), base.M())
		}
		ge, be := got.Edges(), base.Edges()
		for i := range ge {
			if ge[i] != be[i] {
				t.Fatalf("workers=%d: edge %d = %v, want %v", workers, i, ge[i], be[i])
			}
		}
	}
}
