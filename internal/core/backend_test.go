package core

import (
	"testing"

	"repro/internal/edcs"
)

// TestBackendRegistry pins the registry surface: stable names, order, the
// empty-string default, and a descriptive error on unknown names.
func TestBackendRegistry(t *testing.T) {
	names := BackendNames()
	if len(names) != 2 || names[0] != "gdelta" || names[1] != "edcs" {
		t.Fatalf("BackendNames() = %v, want [gdelta edcs]", names)
	}
	for _, name := range append([]string{""}, names...) {
		b, err := BackendByName(name, 1)
		if err != nil {
			t.Fatalf("BackendByName(%q): %v", name, err)
		}
		want := name
		if want == "" {
			want = "gdelta"
		}
		if b.Name() != want {
			t.Errorf("BackendByName(%q).Name() = %q, want %q", name, b.Name(), want)
		}
	}
	if _, err := BackendByName("nope", 1); err == nil {
		t.Error("BackendByName(nope) did not fail")
	}
}

// TestBackendContracts runs every registered backend through the shared
// contract: non-empty reporting strings, resolved parameters, a subgraph of
// the input, determinism across runs and worker counts, and the backend's
// own size bound.
func TestBackendContracts(t *testing.T) {
	const beta, eps = 3, 0.3
	g := cliqueN(64)
	mcm := 32 // perfect matching of an even clique
	for _, backend := range Backends(1) {
		if backend.Guarantee() == "" {
			t.Errorf("%s: empty Guarantee()", backend.Name())
		}
		if len(backend.Params(beta, eps)) == 0 {
			t.Errorf("%s: no resolved parameters", backend.Name())
		}
		h := backend.Sparsify(g, beta, eps, 7)
		if h.N() != g.N() {
			t.Fatalf("%s: vertex count changed: %d vs %d", backend.Name(), h.N(), g.N())
		}
		for _, e := range h.Edges() {
			if !g.HasEdge(e.U, e.V) {
				t.Fatalf("%s: emitted non-edge %v", backend.Name(), e)
			}
		}
		if bound := backend.SizeUpperBound(g.N(), mcm, beta, eps); h.M() > bound {
			t.Errorf("%s: |E(H)| = %d exceeds own bound %d", backend.Name(), h.M(), bound)
		}
		for _, workers := range []int{1, 2, 8} {
			wb, err := BackendByName(backend.Name(), workers)
			if err != nil {
				t.Fatal(err)
			}
			h2 := wb.Sparsify(g, beta, eps, 7)
			if h2.M() != h.M() {
				t.Fatalf("%s workers=%d: |E| = %d, want %d", backend.Name(), workers, h2.M(), h.M())
			}
			he, h2e := h.Edges(), h2.Edges()
			for i := range he {
				if he[i] != h2e[i] {
					t.Fatalf("%s workers=%d: edge %d differs: %v vs %v", backend.Name(), workers, i, h2e[i], he[i])
				}
			}
		}
	}
}

// TestEDCSBackendInvariants: the registry's EDCS backend must emit a valid
// EDCS for the parameters its Params() reports.
func TestEDCSBackendInvariants(t *testing.T) {
	const eps = 0.3
	g := cliqueN(40)
	b := EDCS{}
	h := b.Sparsify(g, 0, eps, 3)
	ps := b.Params(0, eps)
	var betaEDCS int
	var lambda float64
	for _, p := range ps {
		switch p.Name {
		case "beta_edcs":
			betaEDCS = int(p.Value)
		case "lambda":
			lambda = p.Value
		}
	}
	if err := edcs.CheckInvariants(g, h, betaEDCS, lambda); err != nil {
		t.Error(err)
	}
}

// TestGDeltaProofConstant: the Proof flag must resolve a strictly larger Δ.
func TestGDeltaProofConstant(t *testing.T) {
	lean := GDelta{}.delta(3, 0.3)
	proof := GDelta{Proof: true}.delta(3, 0.3)
	if proof <= lean {
		t.Errorf("proof constant %d not larger than lean %d", proof, lean)
	}
}
