package core

import (
	"fmt"
	"math/rand/v2"
	"sync"

	"repro/internal/arcs"
	"repro/internal/graph"
	"repro/internal/invariant"
	"repro/internal/params"
	"repro/internal/sparsearray"
)

// Method selects the per-vertex random sampling implementation.
type Method int

const (
	// MethodReadOnly emulates Fisher–Yates swaps over the read-only
	// adjacency arrays through a constant-time-resettable positions array
	// (the pos_v construction of Section 3.1). Deterministic O(Δ) time per
	// vertex, never writes to or copies the adjacency arrays.
	MethodReadOnly Method = iota
	// MethodResample draws random neighbor indices and rejects repeats
	// (the "straightforward randomized approach" of Section 3.1).
	// Expected O(Δ) per vertex when combined with the mark-all tweak.
	MethodResample
)

func (m Method) String() string {
	switch m {
	case MethodReadOnly:
		return "readonly"
	case MethodResample:
		return "resample"
	}
	return fmt.Sprintf("Method(%d)", int(m))
}

// Options configures the sparsifier construction.
type Options struct {
	// Delta is the number of incident edges each vertex marks.
	Delta int
	// MarkAllThreshold: vertices with degree at most this mark their whole
	// neighborhood. Zero means the Section 3.1 default of 2·Delta, which
	// keeps the resample method in expected O(Δ) per vertex and inflates the
	// size and arboricity bounds by at most a factor of 2.
	MarkAllThreshold int
	// Method selects the sampling implementation. Default MethodReadOnly.
	Method Method
	// Workers shards the vertex set over this many goroutines, each with an
	// independent RNG stream. Zero means GOMAXPROCS; 1 forces sequential
	// construction (used by the deterministic-runtime experiments).
	//
	// For a fixed (seed, Workers) pair the output sparsifier is fully
	// deterministic — each worker's RNG stream is keyed by its vertex range,
	// not by goroutine scheduling — but changing the worker count changes
	// how vertices map to streams and therefore which edges are marked.
	Workers int
}

// withDefaults delegates the zero-value resolution to internal/params, the
// single source of truth for the theorem-derived defaults.
func (o Options) withDefaults() Options {
	r := params.Sequential{
		Delta:            o.Delta,
		MarkAllThreshold: o.MarkAllThreshold,
		Workers:          o.Workers,
	}.Resolve()
	o.MarkAllThreshold = r.MarkAllThreshold
	o.Workers = r.Workers
	return o
}

// Sparsify builds the random matching sparsifier G_Δ of g with the default
// options: each vertex marks delta random incident edges (its entire
// neighborhood if deg ≤ 2·delta), and the sparsifier is the union of the
// marked edges. The guarantee of Theorem 2.1 holds when
// delta ≥ DeltaFor(β(g), ε).
func Sparsify(g *graph.Static, delta int, seed uint64) *graph.Static {
	return SparsifyOpts(g, Options{Delta: delta}, seed)
}

// SparsifyOpts builds G_Δ with explicit options.
//
// Marked edges are accumulated directly as packed arcs (internal/arcs) in
// per-worker pooled buffers and handed to graph.FromPackedArcs, so the
// construction performs a single integer sort and never materializes an
// Edge-struct list.
func SparsifyOpts(g *graph.Static, opt Options, seed uint64) *graph.Static {
	if opt.Delta < 1 {
		invariant.Violatef("core: Delta must be >= 1, got %d", opt.Delta)
	}
	opt = opt.withDefaults()
	n := g.N()
	if opt.Workers <= 1 || n < 1024 {
		buf := arcs.Get()
		markRange(g, 0, int32(n), opt, seed, 0, buf)
		gd := graph.FromPackedArcs(n, buf.Keys())
		buf.Release()
		return gd
	}
	workers := opt.Workers
	chunk := (n + workers - 1) / workers
	parts := make([]*arcs.Buffer, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := int32(w * chunk)
		hi := int32(min((w+1)*chunk, n))
		if lo >= hi {
			continue
		}
		parts[w] = arcs.Get()
		wg.Add(1)
		go func(w int, lo, hi int32) {
			defer wg.Done()
			markRange(g, lo, hi, opt, seed, uint64(w), parts[w])
		}(w, lo, hi)
	}
	wg.Wait()
	keys := arcs.Concat(parts...)
	for _, p := range parts {
		if p != nil {
			p.Release()
		}
	}
	return graph.FromPackedArcs(n, keys)
}

// rngStream derives the PCG stream id of the worker covering vertices
// [lo, hi): the worker index in the high 32 bits, the range start in the
// low 32 bits, so distinct (stream, lo) chunks get distinct RNG streams.
func rngStream(stream uint64, lo int32) uint64 {
	return stream<<32 | uint64(uint32(lo))
}

// markRange marks edges for vertices in [lo, hi), appending them to buf as
// packed arcs. Each range gets an independent RNG stream keyed by
// (seed, stream), so the random choices made "due to" different vertices
// are independent — the property the proof of Theorem 2.1 relies on
// (Observation 2.9).
func markRange(g *graph.Static, lo, hi int32, opt Options, seed, stream uint64, buf *arcs.Buffer) {
	rng := rand.New(rand.NewPCG(seed, rngStream(stream, lo)))
	buf.Grow(int(hi-lo) * min(opt.Delta, 8))
	var pos *sparsearray.Array[int32]
	if opt.Method == MethodReadOnly {
		pos = sparsearray.New[int32](g.MaxDegree(), -1)
	}
	var seen map[int]bool
	if opt.Method == MethodResample {
		seen = make(map[int]bool, opt.Delta)
	}
	for v := lo; v < hi; v++ {
		d := g.Degree(v)
		if d == 0 {
			continue
		}
		if d <= opt.MarkAllThreshold {
			// Low-degree tweak: mark the entire neighborhood.
			for _, w := range g.Neighbors(v) {
				buf.Add(v, w)
			}
			continue
		}
		switch opt.Method {
		case MethodReadOnly:
			appendReadOnlyMarks(buf, g, v, opt.Delta, pos, rng)
		case MethodResample:
			clear(seen)
			for len(seen) < opt.Delta {
				i := rng.IntN(d)
				if seen[i] {
					continue
				}
				seen[i] = true
				buf.Add(v, g.Neighbor(v, i))
			}
		default:
			invariant.Violatef("core: unknown method %v", opt.Method)
		}
	}
}

// appendReadOnlyMarks samples delta distinct neighbor indices of v without
// replacement in deterministic O(delta) time, emulating Fisher–Yates swaps
// on the read-only adjacency array via the positions array pos:
// pos[i] not live means "entry i has not moved", i.e. it still holds the
// i-th neighbor; otherwise pos[i] is the index of the neighbor currently
// (virtually) stored at slot i. Resetting pos between vertices is O(1).
func appendReadOnlyMarks(buf *arcs.Buffer, g *graph.Static, v int32, delta int, pos *sparsearray.Array[int32], rng *rand.Rand) {
	pos.Reset()
	d := g.Degree(v)
	k := min(delta, d)
	slot := func(i int32) int32 {
		if pos.Live(int(i)) {
			return pos.Get(int(i))
		}
		return i
	}
	for t := 0; t < k; t++ {
		tail := int32(d - t - 1)
		i := int32(rng.IntN(d - t))
		pi := slot(i)
		buf.Add(v, g.Neighbor(v, int(pi)))
		// Virtual swap: slot i takes the tail's entry; the tail slot takes
		// pi so already-sampled entries stay out of the live prefix.
		pos.Set(int(i), slot(tail))
		pos.Set(int(tail), pi)
	}
}

// SizeUpperBound returns the Observation 2.10 bound 2·mcm·(Δ+β) on the
// number of edges of G_Δ, given the MCM size of the *original* graph.
func SizeUpperBound(mcm, delta, beta int) int {
	return 2 * mcm * (delta + beta)
}

// ArboricityUpperBound returns the Observation 2.12 bound on the arboricity
// of G_Δ for the given options (2Δ, or 2·MarkAllThreshold when the low-degree
// tweak marks more than Δ edges).
func ArboricityUpperBound(opt Options) int {
	opt = opt.withDefaults()
	return 2 * max(opt.Delta, opt.MarkAllThreshold)
}
