package core

import (
	"fmt"
	"math/rand/v2"
	"sync"

	"repro/internal/arcs"
	"repro/internal/graph"
	"repro/internal/invariant"
	"repro/internal/params"
	"repro/internal/sparsearray"
)

// Method selects the per-vertex random sampling implementation.
type Method int

const (
	// MethodReadOnly emulates Fisher–Yates swaps over the read-only
	// adjacency arrays through a constant-time-resettable positions array
	// (the pos_v construction of Section 3.1). Deterministic O(Δ) time per
	// vertex, never writes to or copies the adjacency arrays.
	MethodReadOnly Method = iota
	// MethodResample draws random neighbor indices and rejects repeats
	// (the "straightforward randomized approach" of Section 3.1).
	// Expected O(Δ) per vertex when combined with the mark-all tweak.
	MethodResample
)

func (m Method) String() string {
	switch m {
	case MethodReadOnly:
		return "readonly"
	case MethodResample:
		return "resample"
	}
	return fmt.Sprintf("Method(%d)", int(m))
}

// Options configures the sparsifier construction.
type Options struct {
	// Delta is the number of incident edges each vertex marks.
	Delta int
	// MarkAllThreshold: vertices with degree at most this mark their whole
	// neighborhood. Zero means the Section 3.1 default of 2·Delta, which
	// keeps the resample method in expected O(Δ) per vertex and inflates the
	// size and arboricity bounds by at most a factor of 2.
	MarkAllThreshold int
	// Method selects the sampling implementation. Default MethodReadOnly.
	Method Method
	// Workers shards the vertex set over this many goroutines. Zero means
	// GOMAXPROCS; 1 forces sequential construction (used by the
	// deterministic-runtime experiments).
	//
	// The output is fully deterministic for a fixed seed and INVARIANT to
	// the worker count: RNG streams are keyed by fixed markBlockSize vertex
	// blocks (not by worker ranges or goroutine scheduling), and workers are
	// assigned whole blocks, so every worker count marks the same edges.
	Workers int
}

// withDefaults delegates the zero-value resolution to internal/params, the
// single source of truth for the theorem-derived defaults.
func (o Options) withDefaults() Options {
	r := params.Sequential{
		Delta:            o.Delta,
		MarkAllThreshold: o.MarkAllThreshold,
		Workers:          o.Workers,
	}.Resolve()
	o.MarkAllThreshold = r.MarkAllThreshold
	o.Workers = r.Workers
	return o
}

// Sparsify builds the random matching sparsifier G_Δ of g with the default
// options: each vertex marks delta random incident edges (its entire
// neighborhood if deg ≤ 2·delta), and the sparsifier is the union of the
// marked edges. The guarantee of Theorem 2.1 holds when
// delta ≥ DeltaFor(β(g), ε).
func Sparsify(g *graph.Static, delta int, seed uint64) *graph.Static {
	return SparsifyOpts(g, Options{Delta: delta}, seed)
}

// markBlockSize is the vertex-block granularity of the parallel marking:
// each block of markBlockSize consecutive vertices draws from its own RNG
// stream keyed by the block start, and workers are assigned whole blocks.
// Because the streams depend only on (seed, block) — never on the worker
// count or goroutine scheduling — the marked edge set is bit-identical for
// every worker count.
const markBlockSize = 1024

// SparsifyOpts builds G_Δ with explicit options.
//
// Marked edges are accumulated directly as packed arcs (internal/arcs) in
// per-worker pooled buffers and handed to graph.FromPackedArcs, so the
// construction performs a single integer sort and never materializes an
// Edge-struct list.
func SparsifyOpts(g *graph.Static, opt Options, seed uint64) *graph.Static {
	if opt.Delta < 1 {
		invariant.Violatef("core: Delta must be >= 1, got %d", opt.Delta)
	}
	opt = opt.withDefaults()
	n := g.N()
	if opt.Workers <= 1 || n < markBlockSize {
		buf := arcs.Get()
		markRange(g, 0, int32(n), opt, seed, buf)
		gd := graph.FromPackedArcs(n, buf.Keys())
		buf.Release()
		return gd
	}
	// Assign each worker a contiguous run of whole blocks, so concatenating
	// the per-worker buffers in worker order preserves vertex order and the
	// block-keyed streams are untouched by the worker count.
	workers := opt.Workers
	blocks := (n + markBlockSize - 1) / markBlockSize
	chunk := ((blocks + workers - 1) / workers) * markBlockSize
	parts := make([]*arcs.Buffer, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := int32(w * chunk)
		hi := int32(min((w+1)*chunk, n))
		if lo >= hi {
			continue
		}
		parts[w] = arcs.Get()
		wg.Add(1)
		go func(lo, hi int32, buf *arcs.Buffer) {
			defer wg.Done()
			markRange(g, lo, hi, opt, seed, buf)
		}(lo, hi, parts[w])
	}
	wg.Wait()
	keys := arcs.Concat(parts...)
	for _, p := range parts {
		if p != nil {
			p.Release()
		}
	}
	return graph.FromPackedArcs(n, keys)
}

// rngStream derives the PCG stream id of the block starting at vertex lo:
// a fixed tag in the high bits (so block streams are disjoint from other
// derived stream families) and the block start in the low 32 bits.
func rngStream(lo int32) uint64 {
	return 0x5bf0<<32 | uint64(uint32(lo))
}

// markRange marks edges for vertices in [lo, hi), appending them to buf as
// packed arcs. Each markBlockSize-aligned block gets an independent RNG
// stream keyed by (seed, block start), so the random choices made "due to"
// different vertices are independent — the property the proof of
// Theorem 2.1 relies on (Observation 2.9) — and independent of how blocks
// map to workers. The construction always calls it with a block-aligned lo;
// an unaligned lo keys its leading partial block by lo itself (used by the
// per-vertex distribution tests).
func markRange(g *graph.Static, lo, hi int32, opt Options, seed uint64, buf *arcs.Buffer) {
	var rng *rand.Rand
	buf.Grow(int(hi-lo) * min(opt.Delta, 8))
	var pos *sparsearray.Array[int32]
	if opt.Method == MethodReadOnly {
		pos = sparsearray.New[int32](g.MaxDegree(), -1)
	}
	var seen map[int]bool
	if opt.Method == MethodResample {
		seen = make(map[int]bool, opt.Delta)
	}
	for v := lo; v < hi; v++ {
		if v == lo || v%markBlockSize == 0 {
			rng = rand.New(rand.NewPCG(seed, rngStream(v)))
		}
		d := g.Degree(v)
		if d == 0 {
			continue
		}
		if d <= opt.MarkAllThreshold {
			// Low-degree tweak: mark the entire neighborhood.
			for _, w := range g.Neighbors(v) {
				buf.Add(v, w)
			}
			continue
		}
		switch opt.Method {
		case MethodReadOnly:
			appendReadOnlyMarks(buf, g, v, opt.Delta, pos, rng)
		case MethodResample:
			clear(seen)
			for len(seen) < opt.Delta {
				i := rng.IntN(d)
				if seen[i] {
					continue
				}
				seen[i] = true
				buf.Add(v, g.Neighbor(v, i))
			}
		default:
			invariant.Violatef("core: unknown method %v", opt.Method)
		}
	}
}

// appendReadOnlyMarks samples delta distinct neighbor indices of v without
// replacement in deterministic O(delta) time, emulating Fisher–Yates swaps
// on the read-only adjacency array via the positions array pos:
// pos[i] not live means "entry i has not moved", i.e. it still holds the
// i-th neighbor; otherwise pos[i] is the index of the neighbor currently
// (virtually) stored at slot i. Resetting pos between vertices is O(1).
func appendReadOnlyMarks(buf *arcs.Buffer, g *graph.Static, v int32, delta int, pos *sparsearray.Array[int32], rng *rand.Rand) {
	pos.Reset()
	d := g.Degree(v)
	k := min(delta, d)
	slot := func(i int32) int32 {
		if pos.Live(int(i)) {
			return pos.Get(int(i))
		}
		return i
	}
	for t := 0; t < k; t++ {
		tail := int32(d - t - 1)
		i := int32(rng.IntN(d - t))
		pi := slot(i)
		buf.Add(v, g.Neighbor(v, int(pi)))
		// Virtual swap: slot i takes the tail's entry; the tail slot takes
		// pi so already-sampled entries stay out of the live prefix.
		pos.Set(int(i), slot(tail))
		pos.Set(int(tail), pi)
	}
}

// SizeUpperBound returns the Observation 2.10 bound 2·mcm·(Δ+β) on the
// number of edges of G_Δ, given the MCM size of the *original* graph.
func SizeUpperBound(mcm, delta, beta int) int {
	return 2 * mcm * (delta + beta)
}

// ArboricityUpperBound returns the Observation 2.12 bound on the arboricity
// of G_Δ for the given options (2Δ, or 2·MarkAllThreshold when the low-degree
// tweak marks more than Δ edges).
func ArboricityUpperBound(opt Options) int {
	opt = opt.withDefaults()
	return 2 * max(opt.Delta, opt.MarkAllThreshold)
}
