package core

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/matching"
)

// TestTheorem21QualityAcrossFamilies checks the headline guarantee: for
// Δ = DeltaLean(β, ε), the sparsifier preserves the MCM size within 1+ε on
// every bounded-β family (exact MCM via blossom on both sides).
func TestTheorem21QualityAcrossFamilies(t *testing.T) {
	const eps = 0.3
	for _, name := range gen.FamilyNames() {
		inst := gen.Families()[name](300, 21)
		g := inst.G
		exact := matching.MaximumGeneral(g).Size()
		if exact == 0 {
			t.Errorf("%s: empty matching in source graph", name)
			continue
		}
		delta := DeltaLean(inst.Beta, eps)
		sp := Sparsify(g, delta, 77)
		spSize := matching.MaximumGeneral(sp).Size()
		ratio := float64(exact) / float64(spSize)
		if ratio > 1+eps {
			t.Errorf("%s: ratio %.3f > 1+ε = %.2f (β=%d Δ=%d |M|=%d |MΔ|=%d)",
				name, ratio, 1+eps, inst.Beta, delta, exact, spSize)
		}
	}
}

// TestQualityImprovesWithDelta verifies the monotone trend of experiment F2:
// larger Δ gives (weakly) better expected matching preservation.
func TestQualityImprovesWithDelta(t *testing.T) {
	g := gen.Clique(401) // odd clique: MCM = 200
	exact := 200
	prev := 0.0
	for _, delta := range []int{1, 4, 16} {
		// Average over a few seeds to smooth randomness.
		total := 0
		const reps = 3
		for s := uint64(0); s < reps; s++ {
			sp := Sparsify(g, delta, 100+s)
			total += matching.MaximumGeneral(sp).Size()
		}
		frac := float64(total) / float64(reps*exact)
		if frac+0.05 < prev { // allow small noise
			t.Errorf("Δ=%d: preserved fraction %.3f dropped well below previous %.3f", delta, frac, prev)
		}
		prev = frac
	}
	if prev < 0.95 {
		t.Errorf("Δ=16 on K401 preserved only %.3f of the MCM", prev)
	}
}

// TestLemma22LowerBound validates |MCM| ≥ n'/(β+2) on the catalog families.
func TestLemma22LowerBound(t *testing.T) {
	for _, name := range gen.FamilyNames() {
		inst := gen.Families()[name](250, 5)
		mcm := matching.MaximumGeneral(inst.G).Size()
		lb := MatchingLowerBound(inst.G.NonIsolated(), inst.Beta)
		if mcm < lb {
			t.Errorf("%s: MCM %d below Lemma 2.2 bound %d", name, mcm, lb)
		}
	}
}

// TestObservation210AcrossFamilies validates the size bound with the
// implementation's 2Δ mark-all tweak: |E(G_Δ)| ≤ 2·MCM·(2Δ+β).
func TestObservation210AcrossFamilies(t *testing.T) {
	for _, name := range gen.FamilyNames() {
		inst := gen.Families()[name](300, 9)
		delta := 4
		sp := Sparsify(inst.G, delta, 3)
		mcm := matching.MaximumGeneral(inst.G).Size()
		bound := SizeUpperBound(mcm, 2*delta, inst.Beta)
		if sp.M() > bound {
			t.Errorf("%s: sparsifier %d edges > bound %d (MCM=%d)", name, sp.M(), bound, mcm)
		}
	}
}

// TestObservation214BridgeCapture: on the two-cliques instance the bridge is
// captured with probability ≈ 1−(1−2Δ/n)², i.e. rarely for small Δ — so the
// sparsifier almost never preserves the exact MCM size, matching the
// impossibility argument.
func TestObservation214BridgeCapture(t *testing.T) {
	const half = 51 // n = 102
	g, bridge := gen.TwoCliquesBridge(half)
	delta := 2
	captured := 0
	const trials = 300
	for s := 0; s < trials; s++ {
		sp := SparsifyOpts(g, Options{Delta: delta, Workers: 1}, uint64(s+1))
		if sp.HasEdge(bridge.U, bridge.V) {
			captured++
		}
	}
	// Marking probability with the 2Δ tweak ≈ 1−(1−2·(2Δ)/n)² ≈ 8Δ/half...
	// conservatively it must stay well below 1/2 and above 0.
	frac := float64(captured) / trials
	if frac > 0.5 {
		t.Errorf("bridge captured with frequency %.2f; expected rare capture", frac)
	}
	if captured == 0 {
		t.Log("bridge never captured in 300 trials (plausible for small Δ)")
	}
}
