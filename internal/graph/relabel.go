package graph

import (
	"cmp"
	"fmt"
	"slices"

	"repro/internal/invariant"
)

// Cache-aware vertex relabeling.
//
// The matcher's hot loops (the phase engine's DFS, the mate and visited
// arrays) access per-vertex state indexed by vertex id. When ids are assigned
// arbitrarily, neighboring vertices live far apart and every adjacency hop is
// a cache miss. A locality permutation renumbers the vertices so that
// vertices visited close together in time are close together in memory:
// degree ordering clusters the hubs the traversals keep returning to, and
// BFS/RCM orderings give neighbors nearby ids (small bandwidth).
//
// Relabeling is a pure layout transform: RelabelPerm(g, perm) is isomorphic
// to g via perm, and consumers that must stay bit-identical to unrelabeled
// runs (the phase engine's Relabel knob) canonicalize every order-dependent
// decision back to original-id order through the inverse permutation and
// OrigScanOrder. See DESIGN.md §12.

// Ordering selects the locality permutation ComputeOrdering derives.
type Ordering int

const (
	// OrderIdentity leaves vertex ids untouched (relabeling disabled).
	OrderIdentity Ordering = iota
	// OrderDegree sorts vertices by descending degree (ties by original id):
	// the high-degree vertices every traversal keeps touching share cache
	// lines at the front of the id space.
	OrderDegree
	// OrderBFS numbers vertices in breadth-first visit order from the
	// smallest-id root of each component (neighbors scanned in id order):
	// neighbors get nearby ids, so adjacency hops stay local.
	OrderBFS
	// OrderRCM is the reverse Cuthill–McKee ordering: per-component BFS from
	// a minimum-degree root expanding neighbors in ascending-degree order,
	// with the final numbering reversed — the classic bandwidth-reducing
	// ordering for sparse matrices.
	OrderRCM
)

// String returns the stable CLI name of the ordering.
func (o Ordering) String() string {
	switch o {
	case OrderIdentity:
		return "none"
	case OrderDegree:
		return "degree"
	case OrderBFS:
		return "bfs"
	case OrderRCM:
		return "rcm"
	}
	return fmt.Sprintf("Ordering(%d)", int(o))
}

// ParseOrdering resolves a CLI ordering name. "" and "none" (and "identity")
// select OrderIdentity.
func ParseOrdering(s string) (Ordering, error) {
	switch s {
	case "", "none", "identity":
		return OrderIdentity, nil
	case "degree":
		return OrderDegree, nil
	case "bfs":
		return OrderBFS, nil
	case "rcm":
		return OrderRCM, nil
	}
	return OrderIdentity, fmt.Errorf("graph: unknown ordering %q (want none, degree, bfs, rcm)", s)
}

// Orderings returns the non-identity orderings in presentation order, for
// sweeps and conformance matrices.
func Orderings() []Ordering {
	return []Ordering{OrderDegree, OrderBFS, OrderRCM}
}

// ComputeOrdering returns the locality permutation of g under o as a forward
// permutation: perm[old] = new. The result is fully deterministic — every
// tie breaks by original vertex id.
func ComputeOrdering(g *Static, o Ordering) []int32 {
	n := g.N()
	perm := make([]int32, n)
	switch o {
	case OrderIdentity:
		for v := range perm {
			perm[v] = int32(v)
		}
	case OrderDegree:
		degreeOrdering(g, perm)
	case OrderBFS:
		bfsOrdering(g, perm, false)
	case OrderRCM:
		bfsOrdering(g, perm, true)
	default:
		invariant.Violatef("graph: unknown ordering %v", o)
	}
	return perm
}

// degreeOrdering fills perm with the descending-degree counting sort
// (stable: equal degrees keep their original relative order).
func degreeOrdering(g *Static, perm []int32) {
	maxd := g.MaxDegree()
	// Bucket b holds vertices of degree maxd-b, so ascending buckets give
	// descending degree.
	count := make([]int32, maxd+2)
	for v := int32(0); v < int32(len(perm)); v++ {
		count[maxd-g.Degree(v)+1]++
	}
	for b := 1; b < len(count); b++ {
		count[b] += count[b-1]
	}
	for v := int32(0); v < int32(len(perm)); v++ {
		b := maxd - g.Degree(v)
		perm[v] = count[b]
		count[b]++
	}
}

// bfsOrdering fills perm with the BFS (reverse=false) or RCM (reverse=true)
// numbering. BFS roots components at their smallest unvisited id and scans
// neighbors in id order; RCM roots them at their minimum-degree vertex
// (ties by id), scans neighbors in ascending (degree, id) order, and
// reverses the final numbering.
func bfsOrdering(g *Static, perm []int32, reverse bool) {
	n := len(perm)
	visited := make([]bool, n)
	queue := make([]int32, 0, n)

	// Root scan order: plain BFS takes ascending ids; RCM takes ascending
	// (degree, id) so each new component starts at its min-degree vertex.
	roots := make([]int32, n)
	for v := range roots {
		roots[v] = int32(v)
	}
	var scratch []int32
	if reverse {
		slices.SortFunc(roots, func(a, b int32) int {
			if c := cmp.Compare(g.Degree(a), g.Degree(b)); c != 0 {
				return c
			}
			return cmp.Compare(a, b)
		})
		scratch = make([]int32, 0, g.MaxDegree())
	}

	t := int32(0)
	assign := func(v int32) {
		if reverse {
			perm[v] = int32(n) - 1 - t
		} else {
			perm[v] = t
		}
		t++
	}
	for _, r := range roots {
		if visited[r] {
			continue
		}
		visited[r] = true
		assign(r)
		queue = append(queue[:0], r)
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			if !reverse {
				for _, w := range g.Neighbors(v) {
					if !visited[w] {
						visited[w] = true
						assign(w)
						queue = append(queue, w)
					}
				}
				continue
			}
			scratch = scratch[:0]
			for _, w := range g.Neighbors(v) {
				if !visited[w] {
					scratch = append(scratch, w)
				}
			}
			slices.SortFunc(scratch, func(a, b int32) int {
				if c := cmp.Compare(g.Degree(a), g.Degree(b)); c != 0 {
					return c
				}
				return cmp.Compare(a, b)
			})
			for _, w := range scratch {
				visited[w] = true
				assign(w)
				queue = append(queue, w)
			}
		}
	}
}

// InversePerm returns the inverse of a forward permutation:
// inv[perm[v]] = v. It panics if perm is not a permutation of [0, len).
func InversePerm(perm []int32) []int32 {
	inv := make([]int32, len(perm))
	for i := range inv {
		inv[i] = -1
	}
	for v, p := range perm {
		if p < 0 || int(p) >= len(perm) || inv[p] != -1 {
			invariant.Violatef("graph: perm is not a permutation at index %d (value %d)", v, p)
		}
		inv[p] = int32(v)
	}
	return inv
}

// RelabelPerm applies the forward permutation perm (perm[old] = new) to g,
// producing the isomorphic graph whose vertex perm[v] has the neighbors
// {perm[w] : w ∈ N(v)}. It panics if perm is not a permutation.
func RelabelPerm(g *Static, perm []int32) *Static {
	rg, _ := relabelWithInverse(g, perm)
	return rg
}

// Relabel computes the ordering o on g and applies it, returning the
// relabeled graph together with the forward (perm[old] = new) and inverse
// (inv[new] = old) permutations. OrderIdentity returns g itself with
// identity permutation arrays.
func Relabel(g *Static, o Ordering) (rg *Static, perm, inv []int32) {
	perm = ComputeOrdering(g, o)
	if o == OrderIdentity {
		return g, perm, slices.Clone(perm)
	}
	rg, inv = relabelWithInverse(g, perm)
	return rg, perm, inv
}

func relabelWithInverse(g *Static, perm []int32) (*Static, []int32) {
	n := g.N()
	if len(perm) != n {
		invariant.Violatef("graph: perm length %d, graph has %d vertices", len(perm), n)
	}
	inv := InversePerm(perm)
	offsets := make([]int64, n+1)
	for v := int32(0); v < int32(n); v++ {
		offsets[perm[v]+1] = int64(g.Degree(v))
	}
	for v := 0; v < n; v++ {
		offsets[v+1] += offsets[v]
	}
	neighbors := make([]int32, len(g.neighbors))
	for nu := 0; nu < n; nu++ {
		v := inv[nu]
		lst := neighbors[offsets[nu]:offsets[nu+1]]
		for i, w := range g.Neighbors(v) {
			lst[i] = perm[w]
		}
		slices.Sort(lst)
	}
	return &Static{offsets: offsets, neighbors: neighbors, maxDeg: g.maxDeg}, inv
}

// AdjOffset returns the start offset of v's adjacency window in the shared
// neighbor array — the index at which side arrays shaped like the neighbor
// array (OrigScanOrder) hold v's entries.
func (g *Static) AdjOffset(v int32) int64 { return g.offsets[v] }

// OrigScanOrder returns, for a graph rg relabeled with inverse permutation
// inv, an array shaped like rg's neighbor array: the window
// scan[rg.AdjOffset(v) : rg.AdjOffset(v)+deg(v)] lists the positions of v's
// adjacency list in increasing ORIGINAL-id order of the neighbors. Scanning
// adj[scan[i]] therefore visits the same logical neighbor sequence the
// unrelabeled graph's sorted adjacency yields — the canonicalization that
// keeps relabeled traversals bit-identical to unrelabeled ones.
func OrigScanOrder(rg *Static, inv []int32) []int32 {
	if len(inv) != rg.N() {
		invariant.Violatef("graph: inverse permutation length %d, graph has %d vertices", len(inv), rg.N())
	}
	scan := make([]int32, len(rg.neighbors))
	for v := int32(0); v < int32(rg.N()); v++ {
		off := rg.offsets[v]
		adj := rg.Neighbors(v)
		win := scan[off : off+int64(len(adj))]
		for i := range win {
			win[i] = int32(i)
		}
		slices.SortFunc(win, func(a, b int32) int {
			return cmp.Compare(inv[adj[a]], inv[adj[b]])
		})
	}
	return scan
}

// Equal reports whether g and h are identical graphs: the same vertex count
// and the same CSR contents (hence the same edge set).
func Equal(g, h *Static) bool {
	if g == h {
		return true
	}
	return g.N() == h.N() &&
		slices.Equal(g.offsets, h.offsets) &&
		slices.Equal(g.neighbors, h.neighbors)
}
