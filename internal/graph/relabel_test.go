package graph

import (
	"math/rand/v2"
	"slices"
	"testing"
)

func randomGraph(t *testing.T, n, m int, seed uint64) *Static {
	t.Helper()
	rng := rand.New(rand.NewPCG(seed, 0x7e1ab))
	b := NewBuilder(n)
	for i := 0; i < m; i++ {
		b.AddEdge(int32(rng.IntN(n)), int32(rng.IntN(n)))
	}
	return b.Build()
}

func TestParseOrdering(t *testing.T) {
	cases := []struct {
		in   string
		want Ordering
		err  bool
	}{
		{"", OrderIdentity, false},
		{"none", OrderIdentity, false},
		{"identity", OrderIdentity, false},
		{"degree", OrderDegree, false},
		{"bfs", OrderBFS, false},
		{"rcm", OrderRCM, false},
		{"DEGREE", OrderIdentity, true},
		{"hilbert", OrderIdentity, true},
	}
	for _, c := range cases {
		got, err := ParseOrdering(c.in)
		if (err != nil) != c.err {
			t.Errorf("ParseOrdering(%q) error = %v, want err=%v", c.in, err, c.err)
		}
		if err == nil && got != c.want {
			t.Errorf("ParseOrdering(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	for _, o := range append([]Ordering{OrderIdentity}, Orderings()...) {
		back, err := ParseOrdering(o.String())
		if err != nil || back != o {
			t.Errorf("round-trip %v: got %v, err %v", o, back, err)
		}
	}
}

// checkIsomorphic verifies rg = perm(g): degrees map through perm and every
// edge {u,v} of g appears as {perm[u],perm[v]} in rg (and the counts match,
// so the edge sets are equal).
func checkIsomorphic(t *testing.T, g, rg *Static, perm []int32) {
	t.Helper()
	if rg.N() != g.N() || rg.M() != g.M() {
		t.Fatalf("size mismatch: (%d,%d) vs (%d,%d)", g.N(), g.M(), rg.N(), rg.M())
	}
	if err := rg.Validate(); err != nil {
		t.Fatalf("relabeled graph invalid: %v", err)
	}
	if rg.MaxDegree() != g.MaxDegree() {
		t.Fatalf("max degree changed: %d vs %d", g.MaxDegree(), rg.MaxDegree())
	}
	for v := int32(0); v < int32(g.N()); v++ {
		if rg.Degree(perm[v]) != g.Degree(v) {
			t.Fatalf("degree of %d (new %d) changed: %d vs %d", v, perm[v], g.Degree(v), rg.Degree(perm[v]))
		}
	}
	g.ForEachEdge(func(u, v int32) {
		if !rg.HasEdge(perm[u], perm[v]) {
			t.Fatalf("edge (%d,%d) missing as (%d,%d) after relabel", u, v, perm[u], perm[v])
		}
	})
}

func TestRelabelOrderings(t *testing.T) {
	graphs := map[string]*Static{
		"empty":    Empty(0),
		"isolated": Empty(7),
		"random":   randomGraph(t, 200, 900, 1),
		"sparse":   randomGraph(t, 500, 400, 2), // multiple components
		"path": func() *Static {
			b := NewBuilder(50)
			for i := int32(0); i < 49; i++ {
				b.AddEdge(i, i+1)
			}
			return b.Build()
		}(),
	}
	for name, g := range graphs {
		for _, o := range append([]Ordering{OrderIdentity}, Orderings()...) {
			rg, perm, inv := Relabel(g, o)
			if len(perm) != g.N() || len(inv) != g.N() {
				t.Fatalf("%s/%v: perm/inv length mismatch", name, o)
			}
			for v := range perm {
				if inv[perm[v]] != int32(v) {
					t.Fatalf("%s/%v: inv[perm[%d]] = %d", name, o, v, inv[perm[v]])
				}
			}
			if o == OrderIdentity {
				if rg != g {
					t.Fatalf("%s: identity relabel must return the same graph", name)
				}
				continue
			}
			checkIsomorphic(t, g, rg, perm)

			// Deterministic: recomputing gives the identical permutation.
			perm2 := ComputeOrdering(g, o)
			if !slices.Equal(perm, perm2) {
				t.Fatalf("%s/%v: ordering not deterministic", name, o)
			}
		}
	}
}

func TestDegreeOrderingSorted(t *testing.T) {
	g := randomGraph(t, 300, 2000, 3)
	_, perm, inv := Relabel(g, OrderDegree)
	prev := int(^uint(0) >> 1)
	for nu := 0; nu < g.N(); nu++ {
		d := g.Degree(inv[nu])
		if d > prev {
			t.Fatalf("degrees not descending at new id %d: %d after %d", nu, d, prev)
		}
		if d == prev && nu > 0 && inv[nu] < inv[nu-1] {
			t.Fatalf("degree tie not broken by original id at new id %d", nu)
		}
		prev = d
	}
	_ = perm
}

func TestOrigScanOrder(t *testing.T) {
	g := randomGraph(t, 120, 700, 4)
	for _, o := range Orderings() {
		rg, perm, inv := Relabel(g, o)
		scan := OrigScanOrder(rg, inv)
		if len(scan) != 2*rg.M() {
			t.Fatalf("scan length %d, want %d", len(scan), 2*rg.M())
		}
		// Scanning v's list through the scan permutation must visit exactly
		// the original sorted adjacency of the original vertex.
		for v := int32(0); v < int32(g.N()); v++ {
			nv := perm[v]
			adj := rg.Neighbors(nv)
			off := rg.AdjOffset(nv)
			got := make([]int32, len(adj))
			for i := range adj {
				got[i] = inv[adj[scan[off+int64(i)]]]
			}
			if !slices.Equal(got, g.Neighbors(v)) {
				t.Fatalf("%v: scan order of vertex %d visits %v, want %v", o, v, got, g.Neighbors(v))
			}
		}
	}
}

func TestRelabelPermBadPerm(t *testing.T) {
	g := randomGraph(t, 10, 20, 5)
	bad := [][]int32{
		{0, 1, 2},                       // wrong length
		{0, 0, 1, 2, 3, 4, 5, 6, 7, 8},  // duplicate
		{0, 1, 2, 3, 4, 5, 6, 7, 8, 10}, // out of range
	}
	for i, perm := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: RelabelPerm accepted invalid perm", i)
				}
			}()
			RelabelPerm(g, perm)
		}()
	}
}

func TestEqual(t *testing.T) {
	g := randomGraph(t, 50, 200, 6)
	h := randomGraph(t, 50, 200, 6)
	if !Equal(g, h) {
		t.Fatal("identically built graphs must be Equal")
	}
	if !Equal(g, g) {
		t.Fatal("graph must equal itself")
	}
	if Equal(g, randomGraph(t, 50, 200, 7)) {
		t.Fatal("different graphs reported Equal")
	}
	if Equal(g, Empty(50)) {
		t.Fatal("graph equal to empty graph")
	}
}
