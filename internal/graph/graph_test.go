package graph

import (
	"math/rand/v2"
	"slices"
	"testing"
	"testing/quick"
)

func triangle() *Static {
	return FromEdges(3, []Edge{{0, 1}, {1, 2}, {0, 2}})
}

func TestEdgeCanonical(t *testing.T) {
	if got := (Edge{5, 2}).Canonical(); got != (Edge{2, 5}) {
		t.Errorf("Canonical = %v, want {2 5}", got)
	}
	if got := (Edge{2, 5}).Canonical(); got != (Edge{2, 5}) {
		t.Errorf("Canonical = %v, want {2 5}", got)
	}
}

func TestEdgeOther(t *testing.T) {
	e := Edge{3, 7}
	if e.Other(3) != 7 || e.Other(7) != 3 {
		t.Errorf("Other: got %d,%d", e.Other(3), e.Other(7))
	}
	defer func() {
		if recover() == nil {
			t.Error("Other on non-endpoint did not panic")
		}
	}()
	e.Other(1)
}

func TestBuilderBasics(t *testing.T) {
	g := triangle()
	if g.N() != 3 || g.M() != 3 {
		t.Fatalf("N,M = %d,%d want 3,3", g.N(), g.M())
	}
	for v := int32(0); v < 3; v++ {
		if g.Degree(v) != 2 {
			t.Errorf("Degree(%d) = %d, want 2", v, g.Degree(v))
		}
	}
	if g.MaxDegree() != 2 {
		t.Errorf("MaxDegree = %d, want 2", g.MaxDegree())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBuilderDedupeAndLoops(t *testing.T) {
	g := FromEdges(3, []Edge{{0, 1}, {1, 0}, {0, 1}, {2, 2}})
	if g.M() != 1 {
		t.Fatalf("M = %d, want 1 (dupes and loops dropped)", g.M())
	}
	if g.Degree(2) != 0 {
		t.Errorf("Degree(2) = %d, want 0", g.Degree(2))
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBuilderOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AddEdge out of range did not panic")
		}
	}()
	NewBuilder(2).AddEdge(0, 2)
}

func TestHasEdge(t *testing.T) {
	g := triangle()
	for _, tc := range []struct {
		u, v int32
		want bool
	}{{0, 1, true}, {1, 0, true}, {0, 2, true}, {1, 2, true}, {0, 0, false}} {
		if got := g.HasEdge(tc.u, tc.v); got != tc.want {
			t.Errorf("HasEdge(%d,%d) = %v, want %v", tc.u, tc.v, got, tc.want)
		}
	}
	g2 := FromEdges(4, []Edge{{0, 1}})
	if g2.HasEdge(2, 3) {
		t.Error("HasEdge(2,3) = true on missing edge")
	}
}

func TestEdgesSortedCanonical(t *testing.T) {
	g := FromEdges(5, []Edge{{4, 0}, {3, 1}, {2, 0}})
	want := []Edge{{0, 2}, {0, 4}, {1, 3}}
	if got := g.Edges(); !slices.Equal(got, want) {
		t.Errorf("Edges = %v, want %v", got, want)
	}
}

func TestNeighborProbe(t *testing.T) {
	g := FromEdges(4, []Edge{{1, 0}, {1, 3}, {1, 2}})
	if g.Degree(1) != 3 {
		t.Fatalf("Degree(1) = %d", g.Degree(1))
	}
	got := []int32{g.Neighbor(1, 0), g.Neighbor(1, 1), g.Neighbor(1, 2)}
	if !slices.Equal(got, []int32{0, 2, 3}) {
		t.Errorf("Neighbor probes = %v, want sorted [0 2 3]", got)
	}
}

func TestNonIsolatedAndAvgDegree(t *testing.T) {
	g := FromEdges(5, []Edge{{0, 1}})
	if g.NonIsolated() != 2 {
		t.Errorf("NonIsolated = %d, want 2", g.NonIsolated())
	}
	if got := g.AvgDegree(); got != 0.4 {
		t.Errorf("AvgDegree = %v, want 0.4", got)
	}
	if Empty(0).AvgDegree() != 0 {
		t.Error("AvgDegree of empty graph != 0")
	}
}

func TestEmpty(t *testing.T) {
	g := Empty(7)
	if g.N() != 7 || g.M() != 0 || g.MaxDegree() != 0 {
		t.Errorf("Empty: N=%d M=%d maxDeg=%d", g.N(), g.M(), g.MaxDegree())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDynamicBasics(t *testing.T) {
	d := NewDynamic(4)
	if !d.Insert(0, 1) || !d.Insert(1, 2) {
		t.Fatal("Insert returned false on new edges")
	}
	if d.Insert(0, 1) || d.Insert(1, 0) {
		t.Error("Insert returned true on duplicate")
	}
	if d.Insert(2, 2) {
		t.Error("Insert returned true on self-loop")
	}
	if d.M() != 2 || d.Degree(1) != 2 {
		t.Errorf("M=%d Degree(1)=%d, want 2,2", d.M(), d.Degree(1))
	}
	if !d.Delete(0, 1) {
		t.Error("Delete returned false on present edge")
	}
	if d.Delete(0, 1) {
		t.Error("Delete returned true on absent edge")
	}
	if d.M() != 1 || d.HasEdge(0, 1) {
		t.Errorf("after delete: M=%d HasEdge=%v", d.M(), d.HasEdge(0, 1))
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDynamicSnapshotRoundTrip(t *testing.T) {
	g := triangle()
	d := DynamicFrom(g)
	s := d.Snapshot()
	if !slices.Equal(s.Edges(), g.Edges()) {
		t.Errorf("Snapshot edges %v != original %v", s.Edges(), g.Edges())
	}
}

func TestDynamicRandomNeighbor(t *testing.T) {
	d := NewDynamic(5)
	rng := rand.New(rand.NewPCG(1, 2))
	if d.RandomNeighbor(0, rng) != -1 {
		t.Error("RandomNeighbor of isolated vertex != -1")
	}
	d.Insert(0, 1)
	d.Insert(0, 2)
	d.Insert(0, 3)
	seen := map[int32]bool{}
	for i := 0; i < 200; i++ {
		w := d.RandomNeighbor(0, rng)
		if w < 1 || w > 3 {
			t.Fatalf("RandomNeighbor = %d out of range", w)
		}
		seen[w] = true
	}
	if len(seen) != 3 {
		t.Errorf("RandomNeighbor covered %d of 3 neighbors in 200 draws", len(seen))
	}
}

// TestDynamicQuickAgainstReference replays random insert/delete sequences
// against a map-based reference and validates internal invariants.
func TestDynamicQuickAgainstReference(t *testing.T) {
	f := func(seed uint64, nOps uint16) bool {
		const n = 12
		rng := rand.New(rand.NewPCG(seed, 7))
		d := NewDynamic(n)
		ref := make(map[Edge]bool)
		for i := 0; i < int(nOps%500)+1; i++ {
			u, v := int32(rng.IntN(n)), int32(rng.IntN(n))
			e := Edge{u, v}.Canonical()
			if rng.IntN(2) == 0 {
				want := u != v && !ref[e]
				if d.Insert(u, v) != want {
					return false
				}
				if want {
					ref[e] = true
				}
			} else {
				want := ref[e]
				if d.Delete(u, v) != want {
					return false
				}
				delete(ref, e)
			}
		}
		if d.M() != len(ref) {
			return false
		}
		for e := range ref {
			if !d.HasEdge(e.U, e.V) {
				return false
			}
		}
		return d.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestInduced(t *testing.T) {
	g := FromEdges(5, []Edge{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}}) // C5
	sub, orig := Induced(g, []int32{0, 1, 2, 2})
	if sub.N() != 3 || sub.M() != 2 {
		t.Fatalf("Induced: N=%d M=%d, want 3,2", sub.N(), sub.M())
	}
	if !slices.Equal(orig, []int32{0, 1, 2}) {
		t.Errorf("orig = %v", orig)
	}
}

func TestInducedInPlace(t *testing.T) {
	g := triangle()
	sub := InducedInPlace(g, []bool{true, true, false})
	if sub.N() != 3 || sub.M() != 1 || !sub.HasEdge(0, 1) {
		t.Errorf("InducedInPlace: N=%d M=%d", sub.N(), sub.M())
	}
}

func TestUnion(t *testing.T) {
	a := FromEdges(3, []Edge{{0, 1}})
	b := FromEdges(4, []Edge{{2, 3}, {0, 1}})
	u := Union(a, b)
	if u.N() != 4 || u.M() != 2 {
		t.Errorf("Union: N=%d M=%d, want 4,2", u.N(), u.M())
	}
}

func TestConnectedComponents(t *testing.T) {
	g := FromEdges(6, []Edge{{0, 1}, {1, 2}, {3, 4}})
	comp, count := ConnectedComponents(g)
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
	if comp[0] != comp[1] || comp[1] != comp[2] {
		t.Error("vertices 0,1,2 not in one component")
	}
	if comp[3] != comp[4] || comp[3] == comp[0] {
		t.Error("vertices 3,4 mis-assigned")
	}
	if comp[5] == comp[0] || comp[5] == comp[3] {
		t.Error("isolated vertex shares a component")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	g := triangle()
	g.neighbors[0] = 99 // out of range
	if g.Validate() == nil {
		t.Error("Validate missed out-of-range neighbor")
	}
}

func TestDynamicNeighborsAndForEachEdge(t *testing.T) {
	d := NewDynamic(4)
	d.Insert(0, 1)
	d.Insert(0, 2)
	nb := d.Neighbors(0)
	if len(nb) != 2 {
		t.Fatalf("Neighbors(0) = %v", nb)
	}
	count := 0
	d.ForEachEdge(func(u, v int32) {
		count++
		if u >= v {
			t.Errorf("ForEachEdge order violated: (%d,%d)", u, v)
		}
	})
	if count != 2 {
		t.Errorf("ForEachEdge visited %d edges, want 2", count)
	}
}
