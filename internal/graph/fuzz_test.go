package graph

import (
	"bytes"
	"math/rand/v2"
	"slices"
	"strings"
	"testing"
)

// FuzzReadText feeds arbitrary bytes to the parser: it must never panic,
// and anything it accepts must be a valid graph that round-trips.
func FuzzReadText(f *testing.F) {
	f.Add("n 3 m 1\n0 2\n")
	f.Add("n 0 m 0\n")
	f.Add("# comment\nn 2 m 1\n0 1\n")
	f.Add("n 2 m 1\n0 5\n")
	f.Add("garbage")
	f.Add("n 2 m 2\n0 1\n0 1\n")
	f.Fuzz(func(t *testing.T, input string) {
		g, err := ReadText(strings.NewReader(input))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted invalid graph: %v", err)
		}
		var buf bytes.Buffer
		if err := WriteText(&buf, g); err != nil {
			t.Fatalf("cannot re-encode accepted graph: %v", err)
		}
		g2, err := ReadText(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if g2.N() != g.N() || !slices.Equal(g2.Edges(), g.Edges()) {
			t.Fatal("round trip changed the graph")
		}
	})
}

// FuzzPackedArcRoundTrip decodes arbitrary bytes into an edge list and
// cross-checks the three construction paths — the Edge-struct Builder, the
// packed-arc fast path, and the pre-sorted merge path — which must all
// produce the identical valid graph regardless of duplicates, orientation,
// or self-loops in the input.
func FuzzPackedArcRoundTrip(f *testing.F) {
	f.Add([]byte{4, 0, 1, 1, 0, 2, 2, 3})
	f.Add([]byte{1})
	f.Add([]byte{9, 0, 1, 0, 1, 5, 5, 8, 2})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		n := int32(data[0]%32) + 1
		edges := make([]Edge, 0, len(data)/2)
		keys := make([]uint64, 0, len(data)/2)
		for i := 1; i+1 < len(data); i += 2 {
			u, v := int32(data[i])%n, int32(data[i+1])%n
			edges = append(edges, Edge{U: u, V: v})
			if u > v {
				u, v = v, u
			}
			keys = append(keys, uint64(uint32(u))<<32|uint64(uint32(v)))
		}
		want := FromEdges(int(n), edges)
		if err := want.Validate(); err != nil {
			t.Fatalf("FromEdges built invalid graph: %v", err)
		}
		got := FromPackedArcs(int(n), keys)
		if got.N() != want.N() || !slices.Equal(got.Edges(), want.Edges()) {
			t.Fatal("FromPackedArcs disagrees with FromEdges")
		}
		sorted := slices.Clone(keys)
		slices.Sort(sorted)
		got = FromSortedArcs(int(n), sorted)
		if got.N() != want.N() || !slices.Equal(got.Edges(), want.Edges()) {
			t.Fatal("FromSortedArcs disagrees with FromEdges")
		}
	})
}

// FuzzRadixSort cross-checks the radix sort against the standard library
// on arbitrary byte-derived inputs.
func FuzzRadixSort(f *testing.F) {
	f.Add([]byte{1, 2, 3}, uint64(7))
	f.Add([]byte{}, uint64(0))
	f.Fuzz(func(t *testing.T, raw []byte, seed uint64) {
		rng := rand.New(rand.NewPCG(seed, 1))
		n := len(raw)*8 + rng.IntN(700) // cross the small-input cutoff
		keys := make([]uint64, n)
		for i := range keys {
			// Mix fuzz bytes with pseudo-randomness, biased toward packed
			// edge shapes (small varying bit ranges).
			b := uint64(0)
			if len(raw) > 0 {
				b = uint64(raw[i%len(raw)])
			}
			keys[i] = b<<32 | uint64(rng.Uint32())>>uint(rng.IntN(24))
		}
		want := slices.Clone(keys)
		slices.Sort(want)
		radixSortUint64(keys)
		if !slices.Equal(keys, want) {
			t.Fatal("radix sort disagrees with slices.Sort")
		}
	})
}
