package graph

import (
	"bytes"
	"math/rand/v2"
	"slices"
	"strings"
	"testing"
)

// FuzzReadText feeds arbitrary bytes to the parser: it must never panic,
// and anything it accepts must be a valid graph that round-trips.
func FuzzReadText(f *testing.F) {
	f.Add("n 3 m 1\n0 2\n")
	f.Add("n 0 m 0\n")
	f.Add("# comment\nn 2 m 1\n0 1\n")
	f.Add("n 2 m 1\n0 5\n")
	f.Add("garbage")
	f.Add("n 2 m 2\n0 1\n0 1\n")
	f.Fuzz(func(t *testing.T, input string) {
		g, err := ReadText(strings.NewReader(input))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted invalid graph: %v", err)
		}
		var buf bytes.Buffer
		if err := WriteText(&buf, g); err != nil {
			t.Fatalf("cannot re-encode accepted graph: %v", err)
		}
		g2, err := ReadText(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if g2.N() != g.N() || !slices.Equal(g2.Edges(), g.Edges()) {
			t.Fatal("round trip changed the graph")
		}
	})
}

// FuzzRadixSort cross-checks the radix sort against the standard library
// on arbitrary byte-derived inputs.
func FuzzRadixSort(f *testing.F) {
	f.Add([]byte{1, 2, 3}, uint64(7))
	f.Add([]byte{}, uint64(0))
	f.Fuzz(func(t *testing.T, raw []byte, seed uint64) {
		rng := rand.New(rand.NewPCG(seed, 1))
		n := len(raw)*8 + rng.IntN(700) // cross the small-input cutoff
		keys := make([]uint64, n)
		for i := range keys {
			// Mix fuzz bytes with pseudo-randomness, biased toward packed
			// edge shapes (small varying bit ranges).
			b := uint64(0)
			if len(raw) > 0 {
				b = uint64(raw[i%len(raw)])
			}
			keys[i] = b<<32 | uint64(rng.Uint32())>>uint(rng.IntN(24))
		}
		want := slices.Clone(keys)
		slices.Sort(want)
		radixSortUint64(keys)
		if !slices.Equal(keys, want) {
			t.Fatal("radix sort disagrees with slices.Sort")
		}
	})
}
