package graph

import (
	"slices"
	"sync"

	"repro/internal/invariant"
	"repro/internal/params"
)

// Chunked CSR construction.
//
// FromPackedArcs materializes both orientations of the whole edge list before
// sorting, so building a 10⁸-edge graph peaks at ~2× the edge list (3.2 GB)
// on top of the CSR itself. ChunkedBuilder replaces that with the classic
// two-pass count-then-fill construction: pass one tallies per-vertex degrees
// chunk by chunk, a prefix sum turns the tallies into CSR offsets, and pass
// two places each arc directly into its vertex's window — a bucket sort keyed
// on the owning endpoint, so no global sort of the edge list ever happens.
// Peak memory is the CSR plus a single producer chunk.
//
// Parallelism is by vertex-range sharding: each worker scans the whole chunk
// but tallies/places only endpoints inside its own contiguous vertex range.
// The per-worker "count arrays" are therefore disjoint partitions of the one
// shared counts array (merged for free by the shared prefix sum), writes
// never race, no atomics are needed, and the result is bit-identical for
// every worker count — fill order within a vertex's window may vary, but
// Build sorts and dedups every window, erasing it.
type ChunkedBuilder struct {
	n       int
	workers int

	state chunkedState

	offsets []int64 // counting: degree tallies at [v+1]; after FinishCounts: CSR offsets
	cursors []int64 // filling: next write position per vertex
	adj     []int32
}

type chunkedState int

const (
	chunkedCounting chunkedState = iota
	chunkedFilling
	chunkedBuilt
)

// ChunkedOptions configures a ChunkedBuilder.
type ChunkedOptions struct {
	// Workers is the number of vertex-range shards used per chunk.
	// 0 selects GOMAXPROCS.
	Workers int
}

// NewChunkedBuilder returns a builder for a graph on n vertices that will be
// fed packed arcs in chunks: one or more CountChunk calls, FinishCounts, the
// same chunks again via FillChunk, then Build. The two passes must present
// the identical arc multiset (a deterministic generator replayed twice, or
// the same buffered chunks); Build panics if they disagree.
func NewChunkedBuilder(n int, opt ChunkedOptions) *ChunkedBuilder {
	if n < 0 {
		invariant.Violatef("graph: negative vertex count %d", n)
	}
	w := params.Workers(opt.Workers)
	if w > n && n > 0 {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return &ChunkedBuilder{
		n:       n,
		workers: w,
		offsets: make([]int64, n+1),
	}
}

// vertexRange returns worker w's contiguous vertex shard [lo, hi).
func (b *ChunkedBuilder) vertexRange(w int) (lo, hi int32) {
	per := (b.n + b.workers - 1) / b.workers
	lo = int32(w * per)
	hi = lo + int32(per)
	if hi > int32(b.n) {
		hi = int32(b.n)
	}
	if lo > hi {
		lo = hi
	}
	return lo, hi
}

// validateChunk rejects out-of-range endpoints up front, sequentially: a
// rogue endpoint belongs to no worker's shard, and panics inside worker
// goroutines would not propagate to the caller.
func (b *ChunkedBuilder) validateChunk(chunk []uint64) {
	n := uint64(b.n)
	for i, k := range chunk {
		if k>>32 >= n || k&0xffffffff >= n {
			invariant.Violatef("graph: chunk arc %d = (%d,%d) out of range [0,%d)",
				i, int32(k>>32), int32(uint32(k)), b.n)
		}
	}
}

// shard runs fn(worker, lo, hi) on every vertex shard, in parallel when the
// builder has more than one worker.
func (b *ChunkedBuilder) shard(fn func(w int, lo, hi int32)) {
	if b.workers == 1 {
		fn(0, 0, int32(b.n))
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < b.workers; w++ {
		lo, hi := b.vertexRange(w)
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(w int, lo, hi int32) {
			defer wg.Done()
			fn(w, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
}

// CountChunk tallies the degrees contributed by a chunk of packed arcs
// (either orientation; self-loops are skipped, duplicates counted for now
// and removed at Build). Endpoints must lie in [0, n) — panics otherwise.
func (b *ChunkedBuilder) CountChunk(chunk []uint64) {
	if b.state != chunkedCounting {
		invariant.Violatef("graph: CountChunk after FinishCounts")
	}
	b.validateChunk(chunk)
	b.shard(func(_ int, lo, hi int32) {
		counts := b.offsets[1:] // counts[v] tallies at offsets[v+1]
		for _, k := range chunk {
			u, v := int32(k>>32), int32(uint32(k))
			if u == v {
				continue
			}
			if u >= lo && u < hi {
				counts[u]++
			}
			if v >= lo && v < hi {
				counts[v]++
			}
		}
	})
}

// FinishCounts converts the degree tallies into CSR offsets and allocates
// the neighbor array — the point of peak memory (CSR + one chunk).
func (b *ChunkedBuilder) FinishCounts() {
	if b.state != chunkedCounting {
		invariant.Violatef("graph: FinishCounts called twice")
	}
	for v := 0; v < b.n; v++ {
		b.offsets[v+1] += b.offsets[v]
	}
	b.adj = make([]int32, b.offsets[b.n])
	b.cursors = make([]int64, b.n)
	copy(b.cursors, b.offsets[:b.n])
	b.state = chunkedFilling
}

// FillChunk places a chunk of packed arcs into the CSR windows reserved by
// the count pass. The fill pass must replay the same arc multiset the count
// pass saw; Build panics on any mismatch.
func (b *ChunkedBuilder) FillChunk(chunk []uint64) {
	if b.state != chunkedFilling {
		invariant.Violatef("graph: FillChunk before FinishCounts or after Build")
	}
	b.validateChunk(chunk)
	b.shard(func(_ int, lo, hi int32) {
		for _, k := range chunk {
			u, v := int32(k>>32), int32(uint32(k))
			if u == v {
				continue
			}
			if u >= lo && u < hi {
				if b.cursors[u] >= b.offsets[u+1] {
					invariant.Violatef("graph: fill pass overflows vertex %d (chunks differ between passes)", u)
				}
				b.adj[b.cursors[u]] = v
				b.cursors[u]++
			}
			if v >= lo && v < hi {
				if b.cursors[v] >= b.offsets[v+1] {
					invariant.Violatef("graph: fill pass overflows vertex %d (chunks differ between passes)", v)
				}
				b.adj[b.cursors[v]] = u
				b.cursors[v]++
			}
		}
	})
}

// Build sorts each adjacency window, removes duplicate edges, compacts the
// arrays, and returns the finished graph. The output is bit-identical to
// FromPackedArcs over the concatenation of all chunks. The builder cannot
// be reused afterwards.
func (b *ChunkedBuilder) Build() *Static {
	if b.state != chunkedFilling {
		invariant.Violatef("graph: Build before FinishCounts or called twice")
	}
	b.state = chunkedBuilt

	// Every window must be exactly full: a short window means the fill pass
	// saw fewer arcs than the count pass.
	for v := 0; v < b.n; v++ {
		if b.cursors[v] != b.offsets[v+1] {
			invariant.Violatef("graph: fill pass underfills vertex %d: %d of %d (chunks differ between passes)",
				v, b.cursors[v]-b.offsets[v], b.offsets[v+1]-b.offsets[v])
		}
	}

	// Sort and dedup each window in place; record deduped lengths in cursors.
	b.shard(func(_ int, lo, hi int32) {
		for v := lo; v < hi; v++ {
			win := b.adj[b.offsets[v]:b.offsets[v+1]]
			slices.Sort(win)
			b.cursors[v] = int64(len(slices.Compact(win)))
		}
	})

	// Forward compaction: rebuild offsets over the deduped lengths and slide
	// each window to its final position. Writes never pass reads because new
	// offsets are ≤ old offsets. Skipped entirely when nothing shrank.
	maxDeg := int64(0)
	w := int64(0)
	shrunk := false
	for v := 0; v < b.n; v++ {
		start, deg := b.offsets[v], b.cursors[v]
		if deg > maxDeg {
			maxDeg = deg
		}
		if shrunk || start != w {
			shrunk = true
			copy(b.adj[w:w+deg], b.adj[start:start+deg])
		}
		b.offsets[v] = w
		w += deg
	}
	b.offsets[b.n] = w
	adj := b.adj[:w:w]

	g := &Static{offsets: b.offsets, neighbors: adj, maxDeg: int(maxDeg)}
	b.offsets, b.cursors, b.adj = nil, nil, nil
	return g
}

// FromStream builds a Static graph on n vertices from a chunk-emitting arc
// stream, without ever materializing the full edge list: the stream is
// invoked twice — once for the count pass and once for the fill pass — so it
// must be re-invokable and deterministic (emit the identical arc multiset on
// both invocations; chunk boundaries may differ). Peak memory is the CSR
// plus one chunk.
func FromStream(n int, opt ChunkedOptions, stream func(yield func(chunk []uint64))) *Static {
	b := NewChunkedBuilder(n, opt)
	stream(b.CountChunk)
	b.FinishCounts()
	stream(b.FillChunk)
	return b.Build()
}
