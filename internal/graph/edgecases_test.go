package graph

import (
	"slices"
	"testing"
)

func TestBuilderGrowAndReuse(t *testing.T) {
	b := NewBuilder(2)
	b.AddEdge(0, 1)
	b.Grow(5)
	b.AddEdge(3, 4)
	g1 := b.Build()
	if g1.N() != 5 || g1.M() != 2 {
		t.Fatalf("after Grow: N=%d M=%d", g1.N(), g1.M())
	}
	// Build again: the builder retains its edges (documented reuse).
	g2 := b.Build()
	if !slices.Equal(g1.Edges(), g2.Edges()) {
		t.Error("re-Build changed the graph")
	}
	b.Grow(3) // shrinking is a no-op
	if b.N() != 5 {
		t.Errorf("Grow(3) shrank builder to %d", b.N())
	}
}

func TestInducedEmptyAndFull(t *testing.T) {
	g := FromEdges(4, []Edge{{U: 0, V: 1}, {U: 2, V: 3}})
	sub, orig := Induced(g, nil)
	if sub.N() != 0 || len(orig) != 0 {
		t.Errorf("empty induce: N=%d", sub.N())
	}
	all, _ := Induced(g, []int32{0, 1, 2, 3})
	if all.M() != g.M() {
		t.Errorf("full induce lost edges: %d vs %d", all.M(), g.M())
	}
}

func TestConnectedComponentsEmptyGraph(t *testing.T) {
	comp, count := ConnectedComponents(Empty(0))
	if count != 0 || len(comp) != 0 {
		t.Errorf("empty graph: count=%d len=%d", count, len(comp))
	}
	comp, count = ConnectedComponents(Empty(3))
	if count != 3 {
		t.Errorf("edgeless: count=%d, want 3 singleton components", count)
	}
	_ = comp
}

func TestDynamicSnapshotIsolation(t *testing.T) {
	d := NewDynamic(3)
	d.Insert(0, 1)
	snap := d.Snapshot()
	d.Insert(1, 2)
	if snap.M() != 1 {
		t.Error("snapshot changed after later insertion")
	}
}

func TestDynamicNeighborProbe(t *testing.T) {
	d := NewDynamic(4)
	d.Insert(0, 1)
	d.Insert(0, 2)
	seen := map[int32]bool{}
	for i := 0; i < d.Degree(0); i++ {
		seen[d.Neighbor(0, i)] = true
	}
	if !seen[1] || !seen[2] || len(seen) != 2 {
		t.Errorf("Neighbor probes saw %v", seen)
	}
}

func TestRadixSortSmallAndDuplicates(t *testing.T) {
	keys := []uint64{5, 1, 5, 3, 1}
	radixSortUint64(keys)
	if !slices.Equal(keys, []uint64{1, 1, 3, 5, 5}) {
		t.Errorf("small sort = %v", keys)
	}
	var empty []uint64
	radixSortUint64(empty) // must not panic
	one := []uint64{42}
	radixSortUint64(one)
	if one[0] != 42 {
		t.Error("single-element sort corrupted")
	}
}

func TestRadixSortConstantInput(t *testing.T) {
	keys := make([]uint64, 1000)
	for i := range keys {
		keys[i] = 7 // no varying bits: all passes skipped
	}
	radixSortUint64(keys)
	for _, k := range keys {
		if k != 7 {
			t.Fatal("constant input corrupted")
		}
	}
}

func TestHasEdgeSearchesSmallerList(t *testing.T) {
	// Hub with many neighbors; HasEdge(hub, leaf) must work both ways.
	b := NewBuilder(100)
	for v := int32(1); v < 100; v++ {
		b.AddEdge(0, v)
	}
	g := b.Build()
	if !g.HasEdge(0, 57) || !g.HasEdge(57, 0) {
		t.Error("HasEdge asymmetric on star")
	}
	if g.HasEdge(57, 58) {
		t.Error("HasEdge invented a leaf-leaf edge")
	}
}

func TestEdgeSubgraph(t *testing.T) {
	g := EdgeSubgraph(4, []Edge{{U: 1, V: 3}})
	if g.N() != 4 || g.M() != 1 || !g.HasEdge(1, 3) {
		t.Errorf("EdgeSubgraph: N=%d M=%d", g.N(), g.M())
	}
}
