package graph_test

// Benchmarks for the packed-arc construction path against the legacy
// []Edge route. Both build the same CSR graph; the packed path skips the
// Edge-struct intermediate and its re-pack, and FromSortedArcs additionally
// sorts only the reversed orientations. Run with -benchmem: the headline
// difference is allocated bytes per build.

import (
	"testing"

	"repro/internal/arcs"
	"repro/internal/gen"
	"repro/internal/graph"
)

// benchInputs materializes both representations of g's edge set up front so
// the loops measure construction only.
func benchInputs(g *graph.Static) ([]graph.Edge, []uint64) {
	edges := g.Edges()
	keys := make([]uint64, len(edges))
	for i, e := range edges {
		keys[i] = arcs.Pack(e.U, e.V)
	}
	return edges, keys
}

func benchmarkBuild(b *testing.B, g *graph.Static) {
	edges, keys := benchInputs(g)
	n := g.N()
	b.Run("FromEdges", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if sp := graph.FromEdges(n, edges); sp.M() != len(edges) {
				b.Fatal("bad build")
			}
		}
	})
	b.Run("FromPackedArcs", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if sp := graph.FromPackedArcs(n, keys); sp.M() != len(edges) {
				b.Fatal("bad build")
			}
		}
	})
	// Edges() emits keys already sorted as (min, max), so the sorted fast
	// path applies directly.
	b.Run("FromSortedArcs", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if sp := graph.FromSortedArcs(n, keys); sp.M() != len(edges) {
				b.Fatal("bad build")
			}
		}
	})
}

func BenchmarkBuildClique4096(b *testing.B) {
	benchmarkBuild(b, gen.Clique(4096))
}

func BenchmarkBuildUnitDisk100k(b *testing.B) {
	inst := gen.UnitDiskInstance(100000, 12, 1)
	benchmarkBuild(b, inst.G)
}

// BenchmarkAccumulate measures the marking-side accumulation: the legacy
// append-of-Edge-structs versus the pooled packed-arc buffer.
func BenchmarkAccumulate(b *testing.B) {
	inst := gen.UnitDiskInstance(100000, 12, 1)
	edges, _ := benchInputs(inst.G)
	b.Run("EdgeSlice", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			acc := make([]graph.Edge, 0)
			for _, e := range edges {
				acc = append(acc, e)
			}
			if len(acc) != len(edges) {
				b.Fatal("bad accumulate")
			}
		}
	})
	b.Run("ArcsBuffer", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf := arcs.Get()
			for _, e := range edges {
				buf.Add(e.U, e.V)
			}
			if buf.Len() != len(edges) {
				b.Fatal("bad accumulate")
			}
			buf.Release()
		}
	})
}
