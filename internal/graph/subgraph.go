package graph

// Induced returns the subgraph of g induced by the vertex set verts,
// together with the mapping from new vertex ids (0..len(verts)-1) back to
// the original ids. Duplicate vertices in verts are ignored.
func Induced(g *Static, verts []int32) (*Static, []int32) {
	inSet := make(map[int32]int32, len(verts))
	var orig []int32
	for _, v := range verts {
		if _, ok := inSet[v]; !ok {
			inSet[v] = int32(len(orig))
			orig = append(orig, v)
		}
	}
	b := NewBuilder(len(orig))
	for _, v := range orig {
		nv := inSet[v]
		for _, w := range g.Neighbors(v) {
			if nw, ok := inSet[w]; ok && nv < nw {
				b.AddEdge(nv, nw)
			}
		}
	}
	return b.Build(), orig
}

// InducedInPlace returns the subgraph of g keeping original vertex ids:
// vertices outside keep become isolated. keep[v] tells whether v survives.
func InducedInPlace(g *Static, keep []bool) *Static {
	b := NewBuilder(g.N())
	g.ForEachEdge(func(u, v int32) {
		if keep[u] && keep[v] {
			b.AddEdge(u, v)
		}
	})
	return b.Build()
}

// Union returns the graph on max(g.N(), h.N()) vertices containing the
// edges of both g and h.
func Union(g, h *Static) *Static {
	n := g.N()
	if h.N() > n {
		n = h.N()
	}
	b := NewBuilder(n)
	g.ForEachEdge(b.AddEdge)
	h.ForEachEdge(b.AddEdge)
	return b.Build()
}

// EdgeSubgraph returns the subgraph of g on the same vertex set containing
// exactly the given edges. Edges not present in g are still included; use
// this only with edges drawn from g.
func EdgeSubgraph(n int, edges []Edge) *Static {
	return FromEdges(n, edges)
}

// ConnectedComponents returns, for each vertex, the id of its component,
// plus the number of components. Isolated vertices get their own component.
func ConnectedComponents(g *Static) (comp []int32, count int) {
	n := g.N()
	comp = make([]int32, n)
	for i := range comp {
		comp[i] = -1
	}
	var queue []int32
	c := int32(0)
	for s := int32(0); s < int32(n); s++ {
		if comp[s] >= 0 {
			continue
		}
		comp[s] = c
		queue = append(queue[:0], s)
		for len(queue) > 0 {
			v := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for _, w := range g.Neighbors(v) {
				if comp[w] < 0 {
					comp[w] = c
					queue = append(queue, w)
				}
			}
		}
		c++
	}
	return comp, int(c)
}
