package graph

import (
	"math/rand/v2"
	"testing"
)

// randomArcs returns m packed arcs over n vertices, including self-loops and
// duplicates (both orientations) to exercise the dedup path.
func randomArcs(n, m int, seed uint64) []uint64 {
	rng := rand.New(rand.NewPCG(seed, 0xa5c))
	keys := make([]uint64, m)
	for i := range keys {
		u, v := uint64(rng.IntN(n)), uint64(rng.IntN(n))
		keys[i] = u<<32 | v
	}
	return keys
}

// oldFromPackedArcs is the pre-chunked reference construction: materialize
// both orientations, radix sort, compact, slice into CSR.
func oldFromPackedArcs(n int, keys []uint64) *Static {
	dir := make([]uint64, 0, 2*len(keys))
	for _, k := range keys {
		u, v := k>>32, k&0xffffffff
		if u == v {
			continue
		}
		dir = append(dir, k, v<<32|u)
	}
	radixSortUint64(dir)
	j := 0
	for i, k := range dir {
		if i == 0 || dir[j-1] != k {
			dir[j] = k
			j++
		}
	}
	return fromSortedDirectedArcs(n, dir[:j])
}

func TestFromPackedArcsMatchesReference(t *testing.T) {
	cases := []struct {
		n, m int
		seed uint64
	}{
		{0, 0, 1}, {1, 0, 1}, {1, 5, 1}, // self-loops only
		{10, 0, 2}, {10, 60, 3}, {100, 400, 4}, {257, 3000, 5},
	}
	for _, c := range cases {
		keys := randomArcs(c.n, c.m, c.seed)
		got := FromPackedArcs(c.n, keys)
		want := oldFromPackedArcs(c.n, keys)
		if !Equal(got, want) {
			t.Fatalf("n=%d m=%d: chunked construction differs from reference", c.n, c.m)
		}
		if err := got.Validate(); err != nil {
			t.Fatalf("n=%d m=%d: %v", c.n, c.m, err)
		}
		if got.MaxDegree() != want.MaxDegree() {
			t.Fatalf("n=%d m=%d: maxDeg %d, want %d", c.n, c.m, got.MaxDegree(), want.MaxDegree())
		}
	}
}

func TestChunkedBuilderMultiChunkMultiWorker(t *testing.T) {
	const n, m = 500, 5000
	keys := randomArcs(n, m, 9)
	want := oldFromPackedArcs(n, keys)

	for _, workers := range []int{1, 2, 3, 8, 64} {
		for _, chunkSize := range []int{1, 7, 100, m} {
			b := NewChunkedBuilder(n, ChunkedOptions{Workers: workers})
			for i := 0; i < len(keys); i += chunkSize {
				b.CountChunk(keys[i:min(i+chunkSize, len(keys))])
			}
			b.FinishCounts()
			// Fill with different chunk boundaries than the count pass.
			half := len(keys) / 2
			b.FillChunk(keys[:half])
			b.FillChunk(keys[half:])
			got := b.Build()
			if !Equal(got, want) {
				t.Fatalf("workers=%d chunk=%d: output differs", workers, chunkSize)
			}
		}
	}
}

func TestFromStream(t *testing.T) {
	const n, m = 300, 2500
	keys := randomArcs(n, m, 11)
	want := FromPackedArcs(n, keys)

	stream := func(yield func(chunk []uint64)) {
		const chunk = 64
		for i := 0; i < len(keys); i += chunk {
			yield(keys[i:min(i+chunk, len(keys))])
		}
	}
	got := FromStream(n, ChunkedOptions{Workers: 4}, stream)
	if !Equal(got, want) {
		t.Fatal("FromStream differs from FromPackedArcs on the same arcs")
	}
}

func TestChunkedBuilderMisuse(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}

	expectPanic("negative n", func() { NewChunkedBuilder(-1, ChunkedOptions{}) })

	expectPanic("out-of-range endpoint", func() {
		b := NewChunkedBuilder(4, ChunkedOptions{})
		b.CountChunk([]uint64{uint64(9)<<32 | 1})
	})

	expectPanic("count after finish", func() {
		b := NewChunkedBuilder(4, ChunkedOptions{})
		b.FinishCounts()
		b.CountChunk([]uint64{1})
	})

	expectPanic("fill before finish", func() {
		b := NewChunkedBuilder(4, ChunkedOptions{})
		b.FillChunk([]uint64{1})
	})

	expectPanic("build before finish", func() {
		b := NewChunkedBuilder(4, ChunkedOptions{})
		b.Build()
	})

	expectPanic("fill overflow (extra arcs in fill pass)", func() {
		// Workers:1 keeps the overflow check on the caller's goroutine so the
		// deferred recover above can observe the panic.
		b := NewChunkedBuilder(4, ChunkedOptions{Workers: 1})
		b.CountChunk([]uint64{uint64(0)<<32 | 1})
		b.FinishCounts()
		b.FillChunk([]uint64{uint64(0)<<32 | 1, uint64(0)<<32 | 2})
	})

	expectPanic("fill underflow (missing arcs in fill pass)", func() {
		b := NewChunkedBuilder(4, ChunkedOptions{})
		b.CountChunk([]uint64{uint64(0)<<32 | 1, uint64(2)<<32 | 3})
		b.FinishCounts()
		b.FillChunk([]uint64{uint64(0)<<32 | 1})
		b.Build()
	})

	expectPanic("double build", func() {
		b := NewChunkedBuilder(2, ChunkedOptions{})
		b.CountChunk(nil)
		b.FinishCounts()
		b.Build()
		b.Build()
	})
}

func TestChunkedBuilderEmpty(t *testing.T) {
	g := FromStream(5, ChunkedOptions{}, func(yield func([]uint64)) {})
	if g.N() != 5 || g.M() != 0 {
		t.Fatalf("empty stream: got n=%d m=%d", g.N(), g.M())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}
