package graph

import (
	"fmt"
	"math/rand/v2"

	"repro/internal/invariant"
)

// Dynamic is a mutable undirected graph over a fixed vertex set supporting
// O(1) expected-time edge insertion, deletion, and membership queries, plus
// O(1) uniform sampling of a random incident edge — the operations required
// by the fully dynamic setting of Section 3.3.
//
// Adjacency is stored as per-vertex slices with a companion index map, so
// deletions are swap-removals and iteration over neighbors is cache-friendly.
// Dynamic is not safe for concurrent mutation.
type Dynamic struct {
	adj [][]int32       // adjacency lists (unordered)
	idx []map[int32]int // idx[v][w] = position of w in adj[v]
	m   int             // number of edges
}

// NewDynamic returns an empty dynamic graph on n vertices.
func NewDynamic(n int) *Dynamic {
	if n < 0 {
		invariant.Violatef("graph: negative vertex count %d", n)
	}
	d := &Dynamic{
		adj: make([][]int32, n),
		idx: make([]map[int32]int, n),
	}
	for v := range d.idx {
		d.idx[v] = make(map[int32]int)
	}
	return d
}

// DynamicFrom returns a dynamic graph initialized with the edges of g.
func DynamicFrom(g *Static) *Dynamic {
	d := NewDynamic(g.N())
	g.ForEachEdge(func(u, v int32) { d.Insert(u, v) })
	return d
}

// DynamicFromAdjacency reconstructs a dynamic graph from an explicit
// per-vertex adjacency, preserving the EXACT slot order. DynamicFrom
// re-inserts edges and so normalizes the layout; checkpoint restoration
// cannot afford that, because randomized algorithms sampling by
// Neighbor(v, i) index replay identically only if the slots line up. The
// adjacency is deep-copied and checked for range, self-loops, duplicates,
// and symmetry.
func DynamicFromAdjacency(adj [][]int32) (*Dynamic, error) {
	n := len(adj)
	d := &Dynamic{
		adj: make([][]int32, n),
		idx: make([]map[int32]int, n),
	}
	arcsN := 0
	for v := range adj {
		d.adj[v] = append([]int32(nil), adj[v]...)
		d.idx[v] = make(map[int32]int, len(adj[v]))
		for i, w := range adj[v] {
			if w < 0 || int(w) >= n {
				return nil, fmt.Errorf("graph: adjacency of %d references vertex %d outside [0,%d)", v, w, n)
			}
			if int(w) == v {
				return nil, fmt.Errorf("graph: self-loop at %d", v)
			}
			if _, dup := d.idx[v][w]; dup {
				return nil, fmt.Errorf("graph: duplicate neighbor %d of %d", w, v)
			}
			d.idx[v][w] = i
			arcsN++
		}
	}
	for v := range d.adj {
		for _, w := range d.adj[v] {
			if !d.HasEdge(w, int32(v)) {
				return nil, fmt.Errorf("graph: asymmetric edge (%d,%d)", v, w)
			}
		}
	}
	d.m = arcsN / 2
	return d, nil
}

// N returns the number of vertices.
func (d *Dynamic) N() int { return len(d.adj) }

// M returns the number of edges.
func (d *Dynamic) M() int { return d.m }

// Degree returns the degree of v.
func (d *Dynamic) Degree(v int32) int { return len(d.adj[v]) }

// HasEdge reports whether {u, v} is currently an edge.
func (d *Dynamic) HasEdge(u, v int32) bool {
	_, ok := d.idx[u][v]
	return ok
}

// Insert adds the edge {u, v}. It reports whether the edge was newly added
// (false if it was already present or u == v).
func (d *Dynamic) Insert(u, v int32) bool {
	if u == v || d.HasEdge(u, v) {
		return false
	}
	d.idx[u][v] = len(d.adj[u])
	d.adj[u] = append(d.adj[u], v)
	d.idx[v][u] = len(d.adj[v])
	d.adj[v] = append(d.adj[v], u)
	d.m++
	return true
}

// Delete removes the edge {u, v}. It reports whether the edge was present.
func (d *Dynamic) Delete(u, v int32) bool {
	if !d.HasEdge(u, v) {
		return false
	}
	d.removeArc(u, v)
	d.removeArc(v, u)
	d.m--
	return true
}

func (d *Dynamic) removeArc(u, v int32) {
	i := d.idx[u][v]
	last := len(d.adj[u]) - 1
	moved := d.adj[u][last]
	d.adj[u][i] = moved
	d.idx[u][moved] = i
	d.adj[u] = d.adj[u][:last]
	delete(d.idx[u], v)
}

// Neighbor returns the i-th neighbor of v in the current (unordered)
// adjacency list, in O(1) time.
func (d *Dynamic) Neighbor(v int32, i int) int32 { return d.adj[v][i] }

// Neighbors returns the current adjacency list of v as a shared slice in
// unspecified order. Callers must not modify it and must not hold it across
// mutations.
func (d *Dynamic) Neighbors(v int32) []int32 { return d.adj[v] }

// RandomNeighbor returns a uniformly random neighbor of v, or -1 if v is
// isolated.
func (d *Dynamic) RandomNeighbor(v int32, rng *rand.Rand) int32 {
	if len(d.adj[v]) == 0 {
		return -1
	}
	return d.adj[v][rng.IntN(len(d.adj[v]))]
}

// Snapshot returns an immutable copy of the current graph.
func (d *Dynamic) Snapshot() *Static {
	b := NewBuilder(d.N())
	for v := int32(0); v < int32(d.N()); v++ {
		for _, w := range d.adj[v] {
			if v < w {
				b.AddEdge(v, w)
			}
		}
	}
	return b.Build()
}

// ForEachEdge calls fn once per edge with u < v, in unspecified order.
func (d *Dynamic) ForEachEdge(fn func(u, v int32)) {
	for v := int32(0); v < int32(d.N()); v++ {
		for _, w := range d.adj[v] {
			if v < w {
				fn(v, w)
			}
		}
	}
}

// Validate checks internal consistency (index maps agree with adjacency
// slices, symmetry, edge count). For tests.
func (d *Dynamic) Validate() error {
	count := 0
	for v := int32(0); v < int32(d.N()); v++ {
		if len(d.adj[v]) != len(d.idx[v]) {
			return fmt.Errorf("graph: vertex %d adj/idx size mismatch", v)
		}
		for i, w := range d.adj[v] {
			if d.idx[v][w] != i {
				return fmt.Errorf("graph: vertex %d idx[%d]=%d want %d", v, w, d.idx[v][w], i)
			}
			if w == v {
				return fmt.Errorf("graph: self-loop at %d", v)
			}
			if !d.HasEdge(w, v) {
				return fmt.Errorf("graph: asymmetric edge (%d,%d)", v, w)
			}
			count++
		}
	}
	if count != 2*d.m {
		return fmt.Errorf("graph: arc count %d != 2m = %d", count, 2*d.m)
	}
	return nil
}
