package graph

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// The text format is a simple whitespace edge list:
//
//	# optional comments
//	n <vertices> m <edges>
//	u v
//	...
//
// Vertices are 0-based. The header makes isolated vertices representable.

// WriteText encodes g in the text edge-list format.
func WriteText(w io.Writer, g *Static) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "n %d m %d\n", g.N(), g.M()); err != nil {
		return err
	}
	var ferr error
	g.ForEachEdge(func(u, v int32) {
		if ferr == nil {
			_, ferr = fmt.Fprintf(bw, "%d %d\n", u, v)
		}
	})
	if ferr != nil {
		return ferr
	}
	return bw.Flush()
}

// ReadText decodes a graph from the text edge-list format.
func ReadText(r io.Reader) (*Static, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<24)
	var b *Builder
	var wantM, gotM int
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		if b == nil {
			var n, m int
			if _, err := fmt.Sscanf(text, "n %d m %d", &n, &m); err != nil {
				return nil, fmt.Errorf("graph: line %d: bad header %q: %w", line, text, err)
			}
			if n < 0 || m < 0 {
				return nil, fmt.Errorf("graph: line %d: negative header values", line)
			}
			b = NewBuilder(n)
			wantM = m
			continue
		}
		var u, v int32
		if _, err := fmt.Sscanf(text, "%d %d", &u, &v); err != nil {
			return nil, fmt.Errorf("graph: line %d: bad edge %q: %w", line, text, err)
		}
		if u < 0 || int(u) >= b.N() || v < 0 || int(v) >= b.N() {
			return nil, fmt.Errorf("graph: line %d: edge (%d,%d) out of range", line, u, v)
		}
		b.AddEdge(u, v)
		gotM++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if b == nil {
		return nil, fmt.Errorf("graph: empty input")
	}
	if gotM != wantM {
		return nil, fmt.Errorf("graph: header declares %d edges, found %d", wantM, gotM)
	}
	return b.Build(), nil
}
