package graph

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// The text format is a simple whitespace edge list:
//
//	# optional comments
//	n <vertices> m <edges>
//	u v
//	...
//
// Vertices are 0-based. The header makes isolated vertices representable.

// WriteText encodes g in the text edge-list format.
func WriteText(w io.Writer, g *Static) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "n %d m %d\n", g.N(), g.M()); err != nil {
		return err
	}
	var ferr error
	g.ForEachEdge(func(u, v int32) {
		if ferr == nil {
			_, ferr = fmt.Fprintf(bw, "%d %d\n", u, v)
		}
	})
	if ferr != nil {
		return ferr
	}
	return bw.Flush()
}

// MaxTextVertices bounds the vertex count ReadText accepts. The CSR
// representation allocates O(n) memory up front, so without a bound a
// 20-byte header like "n 1000000000 m 0" forces a multi-gigabyte
// allocation — a resource bomb from untrusted input (found by fuzzing).
// Instances beyond this bound are not realistic for a whitespace text
// format.
const MaxTextVertices = 1 << 26

// ReadText decodes a graph from the text edge-list format. The input must
// be a simple graph: self-loops and duplicate edges (in either orientation)
// are rejected with an error rather than silently dropped — a file whose
// edge list disagrees with what the parser would build is more likely a
// generator bug than an intentional multigraph.
func ReadText(r io.Reader) (*Static, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<24)
	var b *Builder
	var seen map[uint64]struct{}
	var wantM, gotM int
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		if b == nil {
			var n, m int
			if _, err := fmt.Sscanf(text, "n %d m %d", &n, &m); err != nil {
				return nil, fmt.Errorf("graph: line %d: bad header %q: %w", line, text, err)
			}
			if n < 0 || m < 0 {
				return nil, fmt.Errorf("graph: line %d: negative header values", line)
			}
			if n > MaxTextVertices {
				return nil, fmt.Errorf("graph: line %d: header declares %d vertices, limit %d", line, n, MaxTextVertices)
			}
			b = NewBuilder(n)
			// Cap the size hint: m is untrusted and a huge declared edge
			// count must not pre-allocate memory the input never fills.
			seen = make(map[uint64]struct{}, min(m, 1<<20))
			wantM = m
			continue
		}
		var u, v int32
		if _, err := fmt.Sscanf(text, "%d %d", &u, &v); err != nil {
			return nil, fmt.Errorf("graph: line %d: bad edge %q: %w", line, text, err)
		}
		if u < 0 || int(u) >= b.N() || v < 0 || int(v) >= b.N() {
			return nil, fmt.Errorf("graph: line %d: edge (%d,%d) out of range", line, u, v)
		}
		if u == v {
			return nil, fmt.Errorf("graph: line %d: self-loop at vertex %d", line, u)
		}
		lo, hi := u, v
		if lo > hi {
			lo, hi = hi, lo
		}
		key := uint64(uint32(lo))<<32 | uint64(uint32(hi))
		if _, dup := seen[key]; dup {
			return nil, fmt.Errorf("graph: line %d: duplicate edge (%d,%d)", line, u, v)
		}
		seen[key] = struct{}{}
		b.AddEdge(u, v)
		gotM++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if b == nil {
		return nil, fmt.Errorf("graph: empty input")
	}
	if gotM != wantM {
		return nil, fmt.Errorf("graph: header declares %d edges, found %d", wantM, gotM)
	}
	return b.Build(), nil
}
