package graph

import (
	"math/rand/v2"
	"slices"
	"testing"

	"repro/internal/arcs"
)

func pack(u, v int32) uint64 { return arcs.Pack(u, v) }

func randomKeys(n, m int, seed uint64) []uint64 {
	rng := rand.New(rand.NewPCG(seed, 17))
	keys := make([]uint64, 0, m)
	for len(keys) < m {
		u, v := int32(rng.IntN(n)), int32(rng.IntN(n))
		if u == v {
			continue
		}
		keys = append(keys, pack(u, v))
	}
	return keys
}

func TestFromPackedArcsMatchesFromEdges(t *testing.T) {
	const n, m = 120, 600
	keys := randomKeys(n, m, 3)
	// Duplicate a chunk to exercise deduplication.
	keys = append(keys, keys[:50]...)
	edges := make([]Edge, len(keys))
	for i, k := range keys {
		edges[i] = Edge{U: int32(k >> 32), V: int32(uint32(k))}
	}
	a := FromPackedArcs(n, keys)
	b := FromEdges(n, edges)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if a.M() != b.M() || a.N() != b.N() {
		t.Fatalf("FromPackedArcs (n=%d m=%d) differs from FromEdges (n=%d m=%d)", a.N(), a.M(), b.N(), b.M())
	}
	for v := int32(0); v < n; v++ {
		if !slices.Equal(a.Neighbors(v), b.Neighbors(v)) {
			t.Fatalf("adjacency of %d differs: %v vs %v", v, a.Neighbors(v), b.Neighbors(v))
		}
	}
}

func TestFromPackedArcsDoesNotMutateInput(t *testing.T) {
	keys := randomKeys(50, 200, 5)
	orig := slices.Clone(keys)
	FromPackedArcs(50, keys)
	if !slices.Equal(keys, orig) {
		t.Error("FromPackedArcs mutated its input slice")
	}
}

func TestFromSortedArcsMatchesFromPackedArcs(t *testing.T) {
	const n, m = 120, 600
	keys := randomKeys(n, m, 7)
	keys = append(keys, keys[:30]...) // duplicates
	slices.Sort(keys)
	a := FromSortedArcs(n, keys)
	b := FromPackedArcs(n, keys)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if a.M() != b.M() {
		t.Fatalf("FromSortedArcs m=%d, FromPackedArcs m=%d", a.M(), b.M())
	}
	for v := int32(0); v < n; v++ {
		if !slices.Equal(a.Neighbors(v), b.Neighbors(v)) {
			t.Fatalf("adjacency of %d differs: %v vs %v", v, a.Neighbors(v), b.Neighbors(v))
		}
	}
}

func TestFromSortedArcsPanicsOnUnsorted(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unsorted keys did not panic")
		}
	}()
	FromSortedArcs(5, []uint64{pack(2, 3), pack(0, 1)})
}

func TestBuilderAddPacked(t *testing.T) {
	b := NewBuilder(6)
	b.AddPacked(pack(4, 1)) // already canonical by pack
	b.AddPacked(uint64(5)<<32 | 2)
	b.AddEdge(0, 3)
	g := b.Build()
	for _, e := range []Edge{{1, 4}, {2, 5}, {0, 3}} {
		if !g.HasEdge(e.U, e.V) {
			t.Errorf("edge %v missing", e)
		}
	}
	if g.M() != 3 {
		t.Errorf("m = %d, want 3", g.M())
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("out-of-range AddPacked did not panic")
			}
		}()
		b.AddPacked(pack(0, 99))
	}()
}

func TestFromPackedArcsEmpty(t *testing.T) {
	g := FromPackedArcs(4, nil)
	if g.N() != 4 || g.M() != 0 {
		t.Errorf("empty build: n=%d m=%d", g.N(), g.M())
	}
}
