package graph

import "slices"

// radixSortUint64 sorts keys ascending with an LSD radix sort over 16-bit
// digits, skipping digits that are constant across the input (for a graph
// on n vertices only ~2·log₂n bits vary). Graph construction is dominated
// by sorting packed arcs, and the radix sort is several times faster than
// comparison sorting at the sizes sparsifiers produce.
func radixSortUint64(keys []uint64) {
	if len(keys) < 512 {
		slices.Sort(keys)
		return
	}
	var orAll, andAll uint64 = 0, ^uint64(0)
	for _, k := range keys {
		orAll |= k
		andAll &= k
	}
	varying := orAll ^ andAll
	buf := make([]uint64, len(keys))
	src, dst := keys, buf
	for shift := 0; shift < 64; shift += 16 {
		if (varying>>shift)&0xffff == 0 {
			continue
		}
		var counts [65536]int32
		for _, k := range src {
			counts[(k>>shift)&0xffff]++
		}
		sum := int32(0)
		for i := range counts {
			c := counts[i]
			counts[i] = sum
			sum += c
		}
		for _, k := range src {
			d := (k >> shift) & 0xffff
			dst[counts[d]] = k
			counts[d]++
		}
		src, dst = dst, src
	}
	if &src[0] != &keys[0] {
		copy(keys, src)
	}
}
