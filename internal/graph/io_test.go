package graph

import (
	"fmt"
	"math/rand/v2"
	"slices"
	"strings"
	"testing"
)

func TestTextRoundTrip(t *testing.T) {
	g := FromEdges(6, []Edge{{0, 1}, {2, 3}, {4, 5}, {0, 5}})
	var sb strings.Builder
	if err := WriteText(&sb, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadText(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != g.N() || !slices.Equal(got.Edges(), g.Edges()) {
		t.Errorf("round trip mismatch: %v vs %v", got.Edges(), g.Edges())
	}
}

func TestReadTextCommentsAndBlank(t *testing.T) {
	in := "# a comment\n\nn 3 m 1\n# another\n0 2\n"
	g, err := ReadText(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 1 || !g.HasEdge(0, 2) {
		t.Errorf("parsed N=%d M=%d", g.N(), g.M())
	}
}

func TestReadTextErrors(t *testing.T) {
	cases := map[string]string{
		"empty":         "",
		"bad header":    "vertices 3\n",
		"neg header":    "n -1 m 0\n",
		"bad edge":      "n 2 m 1\nx y\n",
		"range edge":    "n 2 m 1\n0 5\n",
		"neg endpoint":  "n 3 m 1\n-1 2\n",
		"count short":   "n 3 m 2\n0 1\n",
		"count long":    "n 3 m 1\n0 1\n1 2\n",
		"self loop":     "n 3 m 1\n1 1\n",
		"duplicate":     "n 3 m 2\n0 1\n0 1\n",
		"dup reversed":  "n 3 m 2\n0 1\n1 0\n",
		"vertex bomb":   "n 1000000000 m 0\n",
		"edges no head": "0 1\n",
	}
	for name, in := range cases {
		if _, err := ReadText(strings.NewReader(in)); err == nil {
			t.Errorf("%s: ReadText accepted bad input %q", name, in)
		}
	}
}

// TestTextRoundTripProperty is the randomized round-trip property behind
// FuzzReadText: for random simple graphs, WriteText followed by ReadText is
// the identity.
func TestTextRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 0x10))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.IntN(40)
		var edges []Edge
		for u := int32(0); u < int32(n); u++ {
			for v := u + 1; v < int32(n); v++ {
				if rng.IntN(4) == 0 {
					edges = append(edges, Edge{U: u, V: v})
				}
			}
		}
		g := FromEdges(n, edges)
		var sb strings.Builder
		if err := WriteText(&sb, g); err != nil {
			t.Fatal(err)
		}
		got, err := ReadText(strings.NewReader(sb.String()))
		if err != nil {
			t.Fatalf("trial %d: re-read of written graph failed: %v", trial, err)
		}
		if got.N() != g.N() || !slices.Equal(got.Edges(), g.Edges()) {
			t.Fatalf("trial %d: round trip changed the graph", trial)
		}
	}
}

// TestReadTextAtVertexLimit pins the boundary: the limit itself is accepted,
// one past it is rejected.
func TestReadTextAtVertexLimit(t *testing.T) {
	if testing.Short() {
		t.Skip("allocates the limit-sized CSR")
	}
	g, err := ReadText(strings.NewReader(fmt.Sprintf("n %d m 0\n", MaxTextVertices)))
	if err != nil {
		t.Fatalf("limit-sized header rejected: %v", err)
	}
	if g.N() != MaxTextVertices {
		t.Fatalf("N = %d, want %d", g.N(), MaxTextVertices)
	}
	if _, err := ReadText(strings.NewReader(fmt.Sprintf("n %d m 0\n", MaxTextVertices+1))); err == nil {
		t.Fatal("over-limit header accepted")
	}
}

func TestWriteTextIsolatedVertices(t *testing.T) {
	g := Empty(4)
	var sb strings.Builder
	if err := WriteText(&sb, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadText(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != 4 || got.M() != 0 {
		t.Errorf("isolated round trip: N=%d M=%d", got.N(), got.M())
	}
}
