package graph

import (
	"slices"
	"strings"
	"testing"
)

func TestTextRoundTrip(t *testing.T) {
	g := FromEdges(6, []Edge{{0, 1}, {2, 3}, {4, 5}, {0, 5}})
	var sb strings.Builder
	if err := WriteText(&sb, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadText(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != g.N() || !slices.Equal(got.Edges(), g.Edges()) {
		t.Errorf("round trip mismatch: %v vs %v", got.Edges(), g.Edges())
	}
}

func TestReadTextCommentsAndBlank(t *testing.T) {
	in := "# a comment\n\nn 3 m 1\n# another\n0 2\n"
	g, err := ReadText(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 1 || !g.HasEdge(0, 2) {
		t.Errorf("parsed N=%d M=%d", g.N(), g.M())
	}
}

func TestReadTextErrors(t *testing.T) {
	cases := map[string]string{
		"empty":       "",
		"bad header":  "vertices 3\n",
		"neg header":  "n -1 m 0\n",
		"bad edge":    "n 2 m 1\nx y\n",
		"range edge":  "n 2 m 1\n0 5\n",
		"count short": "n 3 m 2\n0 1\n",
	}
	for name, in := range cases {
		if _, err := ReadText(strings.NewReader(in)); err == nil {
			t.Errorf("%s: ReadText accepted bad input %q", name, in)
		}
	}
}

func TestWriteTextIsolatedVertices(t *testing.T) {
	g := Empty(4)
	var sb strings.Builder
	if err := WriteText(&sb, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadText(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != 4 || got.M() != 0 {
		t.Errorf("isolated round trip: N=%d M=%d", got.N(), got.M())
	}
}
