// Package graph provides the graph substrates for the sparsematch library.
//
// The central type is Static, an immutable undirected graph stored in the
// adjacency-array (CSR) representation assumed by the paper's sublinear-time
// model (Section 3.1): for each vertex v the degree deg(v) and the i-th
// neighbor of v are available in O(1) time, and the arrays are read-only.
//
// Dynamic is a mutable adjacency structure with O(1) expected-time edge
// insertions and deletions, used by the fully dynamic algorithms of
// Section 3.3.
package graph

import (
	"fmt"
	"slices"

	"repro/internal/invariant"
)

// Edge is an undirected edge between vertices U and V.
// Edges are stored canonically with U <= V by Canonical.
type Edge struct {
	U, V int32
}

// Canonical returns e with endpoints ordered so that U <= V.
func (e Edge) Canonical() Edge {
	if e.U > e.V {
		return Edge{e.V, e.U}
	}
	return e
}

// Other returns the endpoint of e that is not v.
// It panics if v is not an endpoint of e.
func (e Edge) Other(v int32) int32 {
	switch v {
	case e.U:
		return e.V
	case e.V:
		return e.U
	}
	invariant.Violatef("graph: vertex %d is not an endpoint of edge %v", v, e)
	return -1 // unreachable: Violatef never returns
}

// Static is an immutable undirected graph in adjacency-array form.
//
// Neighbor lists are sorted, contain no duplicates and no self-loops.
// All methods are safe for concurrent use (the structure is read-only
// after construction).
type Static struct {
	offsets   []int64
	neighbors []int32
	maxDeg    int
}

// N returns the number of vertices.
func (g *Static) N() int { return len(g.offsets) - 1 }

// M returns the number of (undirected) edges.
func (g *Static) M() int { return len(g.neighbors) / 2 }

// Degree returns the degree of v in O(1) time.
func (g *Static) Degree(v int32) int {
	return int(g.offsets[v+1] - g.offsets[v])
}

// Neighbor returns the i-th neighbor of v (0-based) in O(1) time.
// This is the read-only adjacency-array probe of the paper's data model.
func (g *Static) Neighbor(v int32, i int) int32 {
	return g.neighbors[g.offsets[v]+int64(i)]
}

// Neighbors returns the sorted adjacency list of v as a shared, read-only
// slice. Callers must not modify it.
func (g *Static) Neighbors(v int32) []int32 {
	return g.neighbors[g.offsets[v]:g.offsets[v+1]]
}

// HasEdge reports whether {u, v} is an edge, in O(log deg(u)) time.
func (g *Static) HasEdge(u, v int32) bool {
	if u == v {
		return false
	}
	// Search the smaller adjacency list.
	if g.Degree(u) > g.Degree(v) {
		u, v = v, u
	}
	_, ok := slices.BinarySearch(g.Neighbors(u), v)
	return ok
}

// MaxDegree returns the maximum vertex degree.
func (g *Static) MaxDegree() int { return g.maxDeg }

// NonIsolated returns the number of vertices with degree at least 1.
// The paper's high-probability bounds are stated in terms of this count
// (remark after Theorem 2.1).
func (g *Static) NonIsolated() int {
	n := 0
	for v := int32(0); v < int32(g.N()); v++ {
		if g.Degree(v) > 0 {
			n++
		}
	}
	return n
}

// Edges returns all edges with U < V, sorted lexicographically.
func (g *Static) Edges() []Edge {
	edges := make([]Edge, 0, g.M())
	for v := int32(0); v < int32(g.N()); v++ {
		for _, w := range g.Neighbors(v) {
			if v < w {
				edges = append(edges, Edge{v, w})
			}
		}
	}
	return edges
}

// ForEachEdge calls fn once per undirected edge, with u < v.
func (g *Static) ForEachEdge(fn func(u, v int32)) {
	for v := int32(0); v < int32(g.N()); v++ {
		for _, w := range g.Neighbors(v) {
			if v < w {
				fn(v, w)
			}
		}
	}
}

// AvgDegree returns 2m/n, the average degree (0 for the empty graph).
func (g *Static) AvgDegree() float64 {
	if g.N() == 0 {
		return 0
	}
	return float64(2*g.M()) / float64(g.N())
}

// Validate checks structural invariants: monotone offsets, in-range sorted
// duplicate-free neighbor lists, no self-loops, and symmetry. It returns a
// descriptive error for the first violation found. Intended for tests and
// debugging; it costs O(n + m log deg).
func (g *Static) Validate() error {
	n := int32(g.N())
	if len(g.offsets) == 0 || g.offsets[0] != 0 {
		return fmt.Errorf("graph: offsets must start at 0")
	}
	for v := int32(0); v < n; v++ {
		if g.offsets[v+1] < g.offsets[v] {
			return fmt.Errorf("graph: offsets not monotone at vertex %d", v)
		}
		nb := g.Neighbors(v)
		for i, w := range nb {
			if w < 0 || w >= n {
				return fmt.Errorf("graph: neighbor %d of vertex %d out of range", w, v)
			}
			if w == v {
				return fmt.Errorf("graph: self-loop at vertex %d", v)
			}
			if i > 0 && nb[i-1] >= w {
				return fmt.Errorf("graph: adjacency of vertex %d not strictly sorted at index %d", v, i)
			}
			if !g.HasEdge(w, v) {
				return fmt.Errorf("graph: edge (%d,%d) present but (%d,%d) missing", v, w, w, v)
			}
		}
	}
	if g.offsets[n] != int64(len(g.neighbors)) {
		return fmt.Errorf("graph: final offset %d != len(neighbors) %d", g.offsets[n], len(g.neighbors))
	}
	return nil
}

// Builder accumulates edges and produces a Static graph.
// Duplicate edges and self-loops are silently dropped at Build time.
//
// Edges are stored as packed canonical uint64 arcs (smaller endpoint in the
// high 32 bits) so Build sorts integers directly, with no Edge-struct
// intermediate. Hot paths that already hold packed arcs (internal/arcs)
// should bypass the Builder entirely via FromPackedArcs.
type Builder struct {
	n    int
	keys []uint64
}

// NewBuilder returns a Builder for a graph on n vertices (0..n-1).
func NewBuilder(n int) *Builder {
	if n < 0 {
		invariant.Violatef("graph: negative vertex count %d", n)
	}
	return &Builder{n: n}
}

// AddEdge records the undirected edge {u, v}. Self-loops are ignored.
// It panics if an endpoint is out of range.
func (b *Builder) AddEdge(u, v int32) {
	if u < 0 || int(u) >= b.n || v < 0 || int(v) >= b.n {
		invariant.Violatef("graph: edge (%d,%d) out of range [0,%d)", u, v, b.n)
	}
	if u == v {
		return
	}
	if u > v {
		u, v = v, u
	}
	b.keys = append(b.keys, uint64(uint32(u))<<32|uint64(uint32(v)))
}

// AddPacked records an already-packed arc (as produced by arcs.Pack),
// canonicalizing it if needed. Self-loops are ignored; it panics if an
// endpoint is out of range.
func (b *Builder) AddPacked(k uint64) {
	b.AddEdge(int32(k>>32), int32(uint32(k)))
}

// Grow ensures the builder accommodates at least n vertices.
func (b *Builder) Grow(n int) {
	if n > b.n {
		b.n = n
	}
}

// N returns the current vertex count of the builder.
func (b *Builder) N() int { return b.n }

// Build constructs the Static graph. The builder may be reused afterwards
// (its recorded edges are not consumed).
func (b *Builder) Build() *Static {
	return FromPackedArcs(b.n, b.keys)
}

// FromEdges builds a Static graph on n vertices from an edge list.
// Duplicates (in either orientation) and self-loops are dropped.
func FromEdges(n int, edges []Edge) *Static {
	b := NewBuilder(n)
	for _, e := range edges {
		b.AddEdge(e.U, e.V)
	}
	return b.Build()
}

// FromPackedArcs builds a Static graph on n vertices from canonical packed
// arcs (smaller endpoint in the high 32 bits, as produced by arcs.Pack).
// Duplicates and self-loops are dropped; keys is not modified. Endpoints
// must be in range — panics otherwise.
//
// It is the one-chunk case of ChunkedBuilder: two-pass count-then-fill
// bucket placement keyed on the owning endpoint, then per-window sort and
// dedup. Compared with materializing and radix-sorting both orientations,
// peak scratch memory drops from 2× the edge list to the CSR itself.
func FromPackedArcs(n int, keys []uint64) *Static {
	b := NewChunkedBuilder(n, ChunkedOptions{Workers: 1})
	b.CountChunk(keys)
	b.FinishCounts()
	b.FillChunk(keys)
	return b.Build()
}

// FromSortedArcs builds a Static graph from canonical packed arcs that are
// already sorted ascending (duplicates allowed); it panics if they are not.
// Only the reversed orientations need sorting, so this sorts half as many
// keys as FromPackedArcs and merges the two sorted halves — use it when the
// producer emits arcs in order (e.g. a vertex-ordered scan).
func FromSortedArcs(n int, keys []uint64) *Static {
	rev := make([]uint64, 0, len(keys))
	prev := uint64(0)
	for i, k := range keys {
		if i > 0 && k < prev {
			invariant.Violatef("graph: FromSortedArcs keys not sorted at index %d", i)
		}
		prev = k
		u, v := k>>32, k&0xffffffff
		if u == v {
			continue
		}
		rev = append(rev, v<<32|u)
	}
	radixSortUint64(rev)
	// Merge the sorted halves, dropping duplicates within each. A canonical
	// arc (high < low) never equals a reversed arc (high > low), so cross-half
	// duplicates cannot occur.
	dir := make([]uint64, 0, len(keys)+len(rev))
	i, j := 0, 0
	for i < len(keys) || j < len(rev) {
		var k uint64
		if j >= len(rev) || (i < len(keys) && keys[i] <= rev[j]) {
			k = keys[i]
			i++
			if k>>32 == k&0xffffffff {
				continue
			}
		} else {
			k = rev[j]
			j++
		}
		if len(dir) > 0 && dir[len(dir)-1] == k {
			continue
		}
		dir = append(dir, k)
	}
	return fromSortedDirectedArcs(n, dir)
}

// fromSortedDirectedArcs slices sorted, deduplicated directed arcs (both
// orientations of every edge present) into CSR form.
func fromSortedDirectedArcs(n int, dir []uint64) *Static {
	offsets := make([]int64, n+1)
	neighbors := make([]int32, len(dir))
	for i, a := range dir {
		offsets[(a>>32)+1]++
		neighbors[i] = int32(a & 0xffffffff)
	}
	maxDeg := int64(0)
	for v := 0; v < n; v++ {
		if offsets[v+1] > maxDeg {
			maxDeg = offsets[v+1]
		}
		offsets[v+1] += offsets[v]
	}
	return &Static{offsets: offsets, neighbors: neighbors, maxDeg: int(maxDeg)}
}

// Empty returns the edgeless graph on n vertices.
func Empty(n int) *Static { return NewBuilder(n).Build() }
