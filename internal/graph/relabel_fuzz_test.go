package graph

import (
	"slices"
	"testing"
)

// FuzzRelabelRoundTrip decodes arbitrary bytes into a small graph and holds
// every ordering to the relabeling contract: perm ∘ inv is the identity, the
// relabeled graph is isomorphic to the original (degree multiset preserved,
// every edge mapped through perm and nothing else), a second relabel through
// the inverse permutation restores the original graph bit for bit, and the
// scan permutation visits each adjacency in ascending original id.
func FuzzRelabelRoundTrip(f *testing.F) {
	f.Add([]byte{4, 0, 1, 1, 2, 2, 3})
	f.Add([]byte{1})
	f.Add([]byte{16, 0, 1, 0, 1, 5, 5, 8, 2, 9, 12})
	f.Add([]byte{32, 7, 3, 3, 7, 0, 31})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		n := int32(data[0]%48) + 1
		b := NewBuilder(int(n))
		for i := 1; i+1 < len(data); i += 2 {
			b.AddEdge(int32(data[i])%n, int32(data[i+1])%n)
		}
		g := b.Build()

		for _, o := range append([]Ordering{OrderIdentity}, Orderings()...) {
			rg, perm, inv := Relabel(g, o)

			// perm ∘ inv = identity, both directions.
			for v := int32(0); v < n; v++ {
				if inv[perm[v]] != v {
					t.Fatalf("%v: inv[perm[%d]] = %d", o, v, inv[perm[v]])
				}
				if perm[inv[v]] != v {
					t.Fatalf("%v: perm[inv[%d]] = %d", o, v, perm[inv[v]])
				}
			}

			if err := rg.Validate(); err != nil {
				t.Fatalf("%v: relabeled graph invalid: %v", o, err)
			}
			if rg.N() != g.N() || rg.M() != g.M() || rg.MaxDegree() != g.MaxDegree() {
				t.Fatalf("%v: size changed: (%d,%d,%d) vs (%d,%d,%d)", o,
					rg.N(), rg.M(), rg.MaxDegree(), g.N(), g.M(), g.MaxDegree())
			}

			// Degree multiset preserved vertex-for-vertex through perm, and
			// every edge maps through perm. Equal edge counts make the mapped
			// edge set exactly the relabeled edge set (no extra edges).
			for v := int32(0); v < n; v++ {
				if rg.Degree(perm[v]) != g.Degree(v) {
					t.Fatalf("%v: degree of %d changed under relabel", o, v)
				}
			}
			g.ForEachEdge(func(u, v int32) {
				if !rg.HasEdge(perm[u], perm[v]) {
					t.Fatalf("%v: edge (%d,%d) lost under relabel", o, u, v)
				}
			})

			// Relabeling back through the inverse restores the original.
			back := RelabelPerm(rg, inv)
			if !Equal(back, g) {
				t.Fatalf("%v: relabel through inverse does not restore the graph", o)
			}

			// The scan permutation recovers the original neighbor order.
			scan := OrigScanOrder(rg, inv)
			for v := int32(0); v < n; v++ {
				nv := perm[v]
				adj := rg.Neighbors(nv)
				off := rg.AdjOffset(nv)
				orig := make([]int32, len(adj))
				for i := range adj {
					orig[i] = inv[adj[scan[off+int64(i)]]]
				}
				if !slices.Equal(orig, g.Neighbors(v)) {
					t.Fatalf("%v: scan order of %d visits %v, want %v", o, v, orig, g.Neighbors(v))
				}
			}
		}
	})
}
