// Package lowerbound implements the adversary game from the proof of
// Lemma 2.13: no deterministic instantiation of the marking scheme can beat
// approximation ratio n/(2Δ) on the clique-minus-edge family 𝒢_n.
//
// The game: a deterministic algorithm may probe up to Δ entries of each
// vertex's adjacency array and then output up to Δ marked edges per vertex.
// The adversary answers probes adaptively — probes on vertices outside a
// pre-chosen set D of Δ vertices are answered with members of D, probes on
// D with arbitrary fresh vertices — so every answered edge touches D. Any
// output edge with both endpoints outside D might be the instance's
// non-edge, hence infeasible; a feasible output therefore has every edge
// touching D, and its maximum matching has size at most |D| = Δ versus the
// true n/2.
package lowerbound

import (
	"repro/internal/graph"
	"repro/internal/invariant"
)

// Oracle is the adaptive adversary of Lemma 2.13 for an n-vertex instance
// with probe budget Δ per vertex. It answers adjacency-array probes so that
// every reported neighbor relation touches the set D = {0, …, Δ−1}.
type Oracle struct {
	n, delta int
	answered map[int32][]int32 // answers already given per vertex
	probes   int64
}

// NewOracle creates the adversary for an n-vertex clique-minus-edge family
// with per-vertex probe budget delta (requires Δ < n/2 as in the lemma).
func NewOracle(n, delta int) *Oracle {
	if delta < 1 || delta >= n/2 {
		invariant.Violatef("lowerbound: need 1 <= Δ < n/2, got Δ=%d n=%d", delta, n)
	}
	return &Oracle{n: n, delta: delta, answered: make(map[int32][]int32)}
}

// N returns the instance size, Delta the probe budget, Probes the count of
// probes answered so far.
func (o *Oracle) N() int        { return o.n }
func (o *Oracle) Delta() int    { return o.delta }
func (o *Oracle) Probes() int64 { return o.probes }

// D reports whether v belongs to the adversary's distinguished set.
func (o *Oracle) D(v int32) bool { return int(v) < o.delta }

// Probe asks for a new (not previously returned) neighbor of u. It panics
// if u's probe budget Δ is exhausted — the model of the lemma.
func (o *Oracle) Probe(u int32) int32 {
	if u < 0 || int(u) >= o.n {
		invariant.Violatef("lowerbound: probe on invalid vertex %d", u)
	}
	prev := o.answered[u]
	if len(prev) >= o.delta {
		invariant.Violatef("lowerbound: vertex %d exceeded its %d-probe budget", u, o.delta)
	}
	o.probes++
	given := make(map[int32]bool, len(prev))
	for _, w := range prev {
		given[w] = true
	}
	var answer int32 = -1
	if !o.D(u) {
		// Answer with an unused member of D (|D| = Δ ≥ budget, so this is
		// always possible).
		for d := int32(0); d < int32(o.delta); d++ {
			if !given[d] {
				answer = d
				break
			}
		}
	} else {
		// Vertices of D may be connected to anyone; hand out fresh vertices.
		for w := int32(0); w < int32(o.n); w++ {
			if w != u && !given[w] {
				answer = w
				break
			}
		}
	}
	o.answered[u] = append(prev, answer)
	return answer
}

// Feasible reports whether the output sparsifier is consistent with EVERY
// graph of the family that agrees with the answers given — i.e. whether it
// avoids claiming an edge the adversary can declare to be the non-edge.
// Any edge with both endpoints outside D and not among the answers is
// deniable; since answers only ever touch D, the condition is simply that
// every output edge touches D.
func (o *Oracle) Feasible(sp *graph.Static) bool {
	ok := true
	sp.ForEachEdge(func(u, v int32) {
		if !o.D(u) && !o.D(v) {
			ok = false
		}
	})
	return ok
}

// RatioCertificate returns the lemma's conclusion for a feasible output:
// the output's MCM is at most |D| = Δ (every edge touches D) while the
// true instance has a perfect matching of size n/2, so the approximation
// ratio is at least (n/2)/Δ = n/(2Δ).
func (o *Oracle) RatioCertificate() float64 {
	return float64(o.n) / float64(2*o.delta)
}

// RunDeterministicMarker plays the game with the natural deterministic
// algorithm (probe the first Δ entries of every adjacency array and mark
// exactly the probed edges) and returns its output sparsifier.
func RunDeterministicMarker(o *Oracle) *graph.Static {
	b := graph.NewBuilder(o.n)
	for v := int32(0); v < int32(o.n); v++ {
		for t := 0; t < o.Delta(); t++ {
			b.AddEdge(v, o.Probe(v))
		}
	}
	return b.Build()
}
