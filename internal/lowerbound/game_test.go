package lowerbound

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/matching"
)

func TestNewOracleValidation(t *testing.T) {
	for _, tc := range []struct{ n, d int }{{10, 0}, {10, 5}, {4, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewOracle(%d,%d) did not panic", tc.n, tc.d)
				}
			}()
			NewOracle(tc.n, tc.d)
		}()
	}
	NewOracle(10, 4) // must be fine
}

func TestProbeBudgetEnforced(t *testing.T) {
	o := NewOracle(20, 3)
	for i := 0; i < 3; i++ {
		o.Probe(5)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("fourth probe did not panic")
		}
	}()
	o.Probe(5)
}

func TestProbeAnswersTouchD(t *testing.T) {
	o := NewOracle(30, 4)
	for v := int32(0); v < 30; v++ {
		seen := map[int32]bool{}
		for t2 := 0; t2 < 4; t2++ {
			w := o.Probe(v)
			if w == v {
				t.Fatalf("self answer at %d", v)
			}
			if seen[w] {
				t.Fatalf("repeated answer %d for vertex %d", w, v)
			}
			seen[w] = true
			if !o.D(v) && !o.D(w) {
				t.Fatalf("answer (%d,%d) avoids D entirely", v, w)
			}
		}
	}
	if o.Probes() != 120 {
		t.Errorf("probe count %d, want 120", o.Probes())
	}
}

func TestDeterministicMarkerLoses(t *testing.T) {
	// The lemma's conclusion, played out: the deterministic marker's output
	// is feasible (never claims a deniable edge) but its MCM is ≤ Δ, a
	// ratio of ≥ n/(2Δ) versus the family's perfect matching.
	for _, tc := range []struct{ n, delta int }{{100, 5}, {200, 8}, {400, 5}} {
		o := NewOracle(tc.n, tc.delta)
		sp := RunDeterministicMarker(o)
		if !o.Feasible(sp) {
			t.Fatalf("n=%d Δ=%d: deterministic marker output infeasible", tc.n, tc.delta)
		}
		mcm := matching.MaximumGeneral(sp).Size()
		if mcm > tc.delta {
			t.Errorf("n=%d Δ=%d: output MCM %d exceeds |D| = Δ", tc.n, tc.delta, mcm)
		}
		ratio := float64(tc.n) / 2 / float64(mcm)
		if ratio < o.RatioCertificate() {
			t.Errorf("n=%d Δ=%d: achieved ratio %.1f below certificate %.1f",
				tc.n, tc.delta, ratio, o.RatioCertificate())
		}
	}
}

func TestFeasibleDetectsDeniableEdges(t *testing.T) {
	o := NewOracle(20, 3)
	// An "algorithm" that guesses an unprobed edge far from D: deniable.
	b := graph.NewBuilder(20)
	b.AddEdge(15, 16)
	if o.Feasible(b.Build()) {
		t.Fatal("edge outside D accepted as feasible")
	}
	b2 := graph.NewBuilder(20)
	b2.AddEdge(0, 16) // touches D
	if !o.Feasible(b2.Build()) {
		t.Fatal("edge touching D rejected")
	}
}

func TestGameConsistentWithConcreteInstance(t *testing.T) {
	// Every answer the adversary gives must hold in SOME clique-minus-edge
	// graph: any instance whose non-edge avoids the answered pairs. Since
	// all answers touch D and a non-edge among two non-D vertices exists
	// (Δ < n/2 leaves ≥ 2 vertices outside D), the answers are consistent.
	o := NewOracle(16, 3)
	var answered []graph.Edge
	for v := int32(0); v < 16; v++ {
		for t2 := 0; t2 < 3; t2++ {
			answered = append(answered, graph.Edge{U: v, V: o.Probe(v)}.Canonical())
		}
	}
	// Concrete witness: K16 minus edge (14, 15).
	witness := make(map[graph.Edge]bool)
	for u := int32(0); u < 16; u++ {
		for w := u + 1; w < 16; w++ {
			witness[graph.Edge{U: u, V: w}] = true
		}
	}
	delete(witness, graph.Edge{U: 14, V: 15})
	for _, e := range answered {
		if !witness[e] {
			t.Fatalf("answered edge %v not present in the witness instance", e)
		}
	}
}

func TestOracleAccessors(t *testing.T) {
	o := NewOracle(12, 3)
	if o.N() != 12 || o.Delta() != 3 || o.Probes() != 0 {
		t.Errorf("accessors: N=%d Δ=%d probes=%d", o.N(), o.Delta(), o.Probes())
	}
	if o.RatioCertificate() != 2.0 {
		t.Errorf("certificate = %v, want 2", o.RatioCertificate())
	}
}
