package trace

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/dynmatch"
	"repro/internal/gen"
)

func TestRoundTrip(t *testing.T) {
	g := gen.Clique(8)
	tr := Trace{N: 8, Updates: dynmatch.BuildUpdates(g, 1)}
	tr.Updates = append(tr.Updates, dynmatch.ObliviousChurn(g, 5, 2)...)
	var sb strings.Builder
	if err := Write(&sb, tr); err != nil {
		t.Fatal(err)
	}
	got, err := Read(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got.N != tr.N || len(got.Updates) != len(tr.Updates) {
		t.Fatalf("round trip: N=%d len=%d", got.N, len(got.Updates))
	}
	for i := range got.Updates {
		if got.Updates[i] != tr.Updates[i] {
			t.Fatalf("update %d differs: %+v vs %+v", i, got.Updates[i], tr.Updates[i])
		}
	}
}

func TestReadCommentsAndErrors(t *testing.T) {
	ok := "# churn trace\nn 4\n+ 0 1\n- 0 1\n"
	tr, err := Read(strings.NewReader(ok))
	if err != nil || len(tr.Updates) != 2 || !tr.Updates[0].Insert || tr.Updates[1].Insert {
		t.Fatalf("good trace rejected: %v %+v", err, tr)
	}
	for name, bad := range map[string]string{
		"empty":      "",
		"no header":  "+ 0 1\n",
		"neg n":      "n -2\n",
		"bad op":     "n 3\n* 0 1\n",
		"bad fields": "n 3\n+ x y\n",
		"range":      "n 3\n+ 0 9\n",
	} {
		if _, err := Read(strings.NewReader(bad)); err == nil {
			t.Errorf("%s: accepted %q", name, bad)
		}
	}
}

func TestReplayOnMaintainer(t *testing.T) {
	g := gen.BoundedDiversity(40, 2, 8, 3)
	tr := Trace{N: 40, Updates: dynmatch.BuildUpdates(g, 4)}
	mt := dynmatch.New(tr.N, dynmatch.Options{Beta: 2, Eps: 0.4}, 5)
	for _, u := range tr.Updates {
		u.Apply(mt)
	}
	if mt.Graph().M() != g.M() {
		t.Errorf("replay produced %d edges, want %d", mt.Graph().M(), g.M())
	}
}

// TestReadErrors pins the parse-error contract: every malformed input
// yields a *ParseError carrying the 1-based line number and the offending
// token, and the message contains both.
func TestReadErrors(t *testing.T) {
	cases := []struct {
		name, text string
		line       int
		token      string
	}{
		{"bad header word", "m 10\n", 1, "m"},
		{"bad vertex count", "n ten\n", 1, "ten"},
		{"negative count", "n -3\n", 1, "-3"},
		{"header arity", "n 10 extra\n", 1, "n"},
		{"bad op", "n 10\n* 1 2\n", 2, "*"},
		{"update arity", "n 10\n+ 1\n", 2, "+"},
		{"bad endpoint", "n 10\n+ 1 two\n", 2, "two"},
		{"out of range", "n 10\n# pad\n\n+ 3 10\n", 4, "10"},
		{"negative vertex", "n 10\n- -1 2\n", 2, "-1"},
		{"empty input", "# only comments\n", 1, ""},
	}
	for _, c := range cases {
		_, err := Read(strings.NewReader(c.text))
		if err == nil {
			t.Errorf("%s: Read accepted %q", c.name, c.text)
			continue
		}
		var pe *ParseError
		if !errors.As(err, &pe) {
			t.Errorf("%s: error %v is not a *ParseError", c.name, err)
			continue
		}
		if pe.Line != c.line || pe.Token != c.token {
			t.Errorf("%s: got line %d token %q, want line %d token %q (%v)",
				c.name, pe.Line, pe.Token, c.line, c.token, err)
		}
		if !strings.Contains(err.Error(), "line ") {
			t.Errorf("%s: message %q does not name the line", c.name, err)
		}
	}
}
