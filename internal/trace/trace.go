// Package trace provides a replayable text format for dynamic-graph update
// sequences, so dynamic-matching workloads can be generated once, stored,
// and replayed against any of the maintainers (cmd/dyndrive).
//
// Format (whitespace-separated, one update per line):
//
//	# comments
//	n <vertices>
//	+ <u> <v>    insertion
//	- <u> <v>    deletion
package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/dynmatch"
)

// Trace is an update sequence over a fixed vertex set.
type Trace struct {
	N       int
	Updates []dynmatch.Update
}

// Write encodes the trace.
func Write(w io.Writer, tr Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "n %d\n", tr.N); err != nil {
		return err
	}
	for _, u := range tr.Updates {
		op := "-"
		if u.Insert {
			op = "+"
		}
		if _, err := fmt.Fprintf(bw, "%s %d %d\n", op, u.U, u.V); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// A ParseError reports a malformed trace with the 1-based line number and
// the offending token, so a bad line in a multi-megabyte generated trace
// can be found without bisecting the file.
type ParseError struct {
	Line  int    // 1-based line number
	Token string // the offending token ("" when the line is truncated)
	Why   string
}

func (e *ParseError) Error() string {
	if e.Token == "" {
		return fmt.Sprintf("trace: line %d: %s", e.Line, e.Why)
	}
	return fmt.Sprintf("trace: line %d: token %q: %s", e.Line, e.Token, e.Why)
}

func parseErr(line int, token, why string) error {
	return &ParseError{Line: line, Token: token, Why: why}
}

// parseVertex parses one endpoint token and range-checks it against n.
func parseVertex(line int, token string, n int) (int32, error) {
	v, err := strconv.ParseInt(token, 10, 32)
	if err != nil {
		return 0, parseErr(line, token, "not a vertex id")
	}
	if v < 0 || int(v) >= n {
		return 0, parseErr(line, token, fmt.Sprintf("vertex outside [0,%d)", n))
	}
	return int32(v), nil
}

// Read decodes a trace, validating vertex ranges. Errors are *ParseError
// values naming the 1-based line and the offending token.
func Read(r io.Reader) (Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<24)
	var tr Trace
	seenHeader := false
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if !seenHeader {
			if fields[0] != "n" {
				return Trace{}, parseErr(line, fields[0], `want header "n <vertices>"`)
			}
			if len(fields) != 2 {
				return Trace{}, parseErr(line, fields[0], fmt.Sprintf("header has %d fields, want 2", len(fields)))
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n < 0 {
				return Trace{}, parseErr(line, fields[1], "not a vertex count")
			}
			tr.N = n
			seenHeader = true
			continue
		}
		if fields[0] != "+" && fields[0] != "-" {
			return Trace{}, parseErr(line, fields[0], `want op "+" or "-"`)
		}
		if len(fields) != 3 {
			return Trace{}, parseErr(line, fields[0], fmt.Sprintf("update has %d fields, want 3", len(fields)))
		}
		u, err := parseVertex(line, fields[1], tr.N)
		if err != nil {
			return Trace{}, err
		}
		v, err := parseVertex(line, fields[2], tr.N)
		if err != nil {
			return Trace{}, err
		}
		tr.Updates = append(tr.Updates, dynmatch.Update{Insert: fields[0] == "+", U: u, V: v})
	}
	if err := sc.Err(); err != nil {
		return Trace{}, err
	}
	if !seenHeader {
		return Trace{}, parseErr(max(1, line), "", "empty input: missing header")
	}
	return tr, nil
}
