// Package trace provides a replayable text format for dynamic-graph update
// sequences, so dynamic-matching workloads can be generated once, stored,
// and replayed against any of the maintainers (cmd/dyndrive).
//
// Format (whitespace-separated, one update per line):
//
//	# comments
//	n <vertices>
//	+ <u> <v>    insertion
//	- <u> <v>    deletion
package trace

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"repro/internal/dynmatch"
)

// Trace is an update sequence over a fixed vertex set.
type Trace struct {
	N       int
	Updates []dynmatch.Update
}

// Write encodes the trace.
func Write(w io.Writer, tr Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "n %d\n", tr.N); err != nil {
		return err
	}
	for _, u := range tr.Updates {
		op := "-"
		if u.Insert {
			op = "+"
		}
		if _, err := fmt.Fprintf(bw, "%s %d %d\n", op, u.U, u.V); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read decodes a trace, validating vertex ranges.
func Read(r io.Reader) (Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<24)
	var tr Trace
	seenHeader := false
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		if !seenHeader {
			if _, err := fmt.Sscanf(text, "n %d", &tr.N); err != nil {
				return Trace{}, fmt.Errorf("trace: line %d: bad header %q: %w", line, text, err)
			}
			if tr.N < 0 {
				return Trace{}, fmt.Errorf("trace: line %d: negative vertex count", line)
			}
			seenHeader = true
			continue
		}
		var op string
		var u, v int32
		if _, err := fmt.Sscanf(text, "%1s %d %d", &op, &u, &v); err != nil {
			return Trace{}, fmt.Errorf("trace: line %d: bad update %q: %w", line, text, err)
		}
		if op != "+" && op != "-" {
			return Trace{}, fmt.Errorf("trace: line %d: bad op %q", line, op)
		}
		if u < 0 || v < 0 || int(u) >= tr.N || int(v) >= tr.N {
			return Trace{}, fmt.Errorf("trace: line %d: update (%d,%d) out of range", line, u, v)
		}
		tr.Updates = append(tr.Updates, dynmatch.Update{Insert: op == "+", U: u, V: v})
	}
	if err := sc.Err(); err != nil {
		return Trace{}, err
	}
	if !seenHeader {
		return Trace{}, fmt.Errorf("trace: empty input")
	}
	return tr, nil
}
