// Package invariant is the single blessed escape hatch for violated internal
// invariants. Library code must not call panic directly (enforced by the
// sparselint panicdiscipline check); instead it reports "this cannot happen"
// states through Violatef, which makes every deliberate crash in the tree
// greppable, uniformly formatted, and auditable against the error-returning
// discipline for user-input-reachable failures.
//
// The rule of thumb: if a condition can be triggered by caller input (a
// malformed trace file, an out-of-range parameter from a CLI flag), the
// function must return an error. If the condition can only arise from a bug
// inside this module (a mate array that is not an involution, a worker count
// that survived resolution as zero), it is an invariant violation and
// Violatef is the right call.
package invariant

import "fmt"

// Violation is the panic value raised by Violatef. Recovering code can
// distinguish deliberate invariant crashes from stray runtime panics by type.
type Violation struct {
	// Msg is the fully formatted violation message.
	Msg string
}

// Error makes a Violation usable as an error by code that recovers it.
func (v *Violation) Error() string { return "invariant violation: " + v.Msg }

func (v *Violation) String() string { return v.Error() }

// Violatef reports a violated internal invariant and never returns. The
// format and args follow fmt.Sprintf; messages should be prefixed with the
// owning package name ("matching: ...") like the panic messages they replace.
func Violatef(format string, args ...any) {
	panic(&Violation{Msg: fmt.Sprintf(format, args...)})
}
