package invariant

import (
	"strings"
	"testing"
)

func TestViolatefPanicsWithViolation(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Violatef did not panic")
		}
		v, ok := r.(*Violation)
		if !ok {
			t.Fatalf("panic value is %T, want *Violation", r)
		}
		if v.Msg != "pkg: bad count 7" {
			t.Fatalf("Msg = %q", v.Msg)
		}
		if !strings.HasPrefix(v.Error(), "invariant violation: ") {
			t.Fatalf("Error() = %q, want invariant violation prefix", v.Error())
		}
		if v.String() != v.Error() {
			t.Fatalf("String() = %q != Error() = %q", v.String(), v.Error())
		}
	}()
	Violatef("pkg: bad count %d", 7)
}
