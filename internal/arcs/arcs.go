// Package arcs provides the packed-arc edge representation shared by every
// execution model's sparsifier construction.
//
// A packed arc is an undirected edge {u, v} encoded as a single uint64 with
// the smaller endpoint in the high 32 bits, so packed arcs sort
// lexicographically as (min, max) pairs — exactly the order CSR construction
// wants. Accumulating marked edges directly as packed arcs (instead of
// []graph.Edge structs that the graph builder re-packs) removes one full
// allocation-and-conversion pass from every sparsifier build, which is the
// hot path of all five execution models (sequential, distributed, streaming,
// MPC, dynamic).
//
// Buffers are pooled: Get returns a cleared buffer with whatever capacity an
// earlier build left behind, so steady-state sparsifier construction does
// not re-grow its edge accumulator from scratch on every call.
package arcs

import (
	"fmt"
	"sync"
)

// Pack returns the canonical packed arc for the undirected edge {u, v}:
// min(u, v) in the high 32 bits, max(u, v) in the low 32 bits.
func Pack(u, v int32) uint64 {
	if u > v {
		u, v = v, u
	}
	return uint64(uint32(u))<<32 | uint64(uint32(v))
}

// Unpack returns the endpoints of a packed arc (u ≤ v for canonical arcs).
func Unpack(k uint64) (u, v int32) {
	return int32(k >> 32), int32(uint32(k))
}

// Buffer accumulates canonical packed arcs. The zero value is ready to use;
// Get/Release recycle buffers (and their backing arrays) through a pool.
type Buffer struct {
	keys []uint64
}

var pool = sync.Pool{New: func() any { return new(Buffer) }}

// Get returns an empty Buffer from the pool.
func Get() *Buffer {
	return pool.Get().(*Buffer)
}

// Release resets b and returns it to the pool. The slice returned by Keys
// must not be used after Release.
func (b *Buffer) Release() {
	b.keys = b.keys[:0]
	pool.Put(b)
}

// Add appends the canonical packed arc for {u, v}. Self-loops are ignored.
func (b *Buffer) Add(u, v int32) {
	if u == v {
		return
	}
	b.keys = append(b.keys, Pack(u, v))
}

// AddPacked appends an already-packed canonical arc.
func (b *Buffer) AddPacked(k uint64) {
	b.keys = append(b.keys, k)
}

// Grow ensures capacity for at least n additional arcs.
func (b *Buffer) Grow(n int) {
	if need := len(b.keys) + n; need > cap(b.keys) {
		grown := make([]uint64, len(b.keys), need)
		copy(grown, b.keys)
		b.keys = grown
	}
}

// Len returns the number of accumulated arcs.
func (b *Buffer) Len() int { return len(b.keys) }

// Keys returns the accumulated arcs. The slice aliases the buffer's storage
// and is invalidated by further Add calls or by Release.
func (b *Buffer) Keys() []uint64 { return b.keys }

// Reset empties the buffer, keeping its capacity.
func (b *Buffer) Reset() { b.keys = b.keys[:0] }

// Concat merges the contents of parts (nil entries are skipped) into a
// single freshly allocated key slice — the per-worker buffer merge of the
// parallel sparsifier builds.
func Concat(parts ...*Buffer) []uint64 {
	total := 0
	for _, p := range parts {
		if p != nil {
			total += p.Len()
		}
	}
	keys := make([]uint64, 0, total)
	for _, p := range parts {
		if p != nil {
			keys = append(keys, p.keys...)
		}
	}
	return keys
}

// Validate checks that every arc is canonical (u < v) with both endpoints in
// [0, n). It returns an error for the first violation; intended for tests.
//
// Both endpoints get explicit range checks: endpoints come out of uint64
// halves, so values ≥ 2³¹ unpack as negative int32s, and a low endpoint in
// range says nothing about the high one (or vice versa).
func Validate(keys []uint64, n int) error {
	for i, k := range keys {
		u, v := Unpack(k)
		if u < 0 || int(u) >= n || v < 0 || int(v) >= n {
			return fmt.Errorf("arcs: key %d = (%d,%d) endpoint out of range [0,%d)", i, u, v, n)
		}
		if u >= v {
			return fmt.Errorf("arcs: key %d = (%d,%d) not canonical (want u < v)", i, u, v)
		}
	}
	return nil
}
