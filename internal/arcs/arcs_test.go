package arcs

import "testing"

func TestPackUnpack(t *testing.T) {
	cases := []struct{ u, v, wantU, wantV int32 }{
		{0, 1, 0, 1},
		{1, 0, 0, 1},
		{5, 5, 5, 5},
		{1 << 30, 3, 3, 1 << 30},
		{2147483646, 2147483647, 2147483646, 2147483647},
	}
	for _, c := range cases {
		u, v := Unpack(Pack(c.u, c.v))
		if u != c.wantU || v != c.wantV {
			t.Errorf("Pack(%d,%d) round-trips to (%d,%d), want (%d,%d)", c.u, c.v, u, v, c.wantU, c.wantV)
		}
	}
}

func TestPackOrdersAsMinMax(t *testing.T) {
	// Packed arcs must sort lexicographically as (min, max) pairs.
	if Pack(0, 5) >= Pack(1, 2) {
		t.Error("arcs of smaller min endpoint must sort first")
	}
	if Pack(3, 4) >= Pack(3, 7) {
		t.Error("equal min endpoint must tie-break on max endpoint")
	}
}

func TestBufferAddSkipsSelfLoops(t *testing.T) {
	var b Buffer
	b.Add(2, 2)
	b.Add(3, 1)
	if b.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (self-loop skipped)", b.Len())
	}
	if u, v := Unpack(b.Keys()[0]); u != 1 || v != 3 {
		t.Errorf("stored arc (%d,%d), want canonical (1,3)", u, v)
	}
}

func TestBufferGrowAndReset(t *testing.T) {
	var b Buffer
	b.Grow(100)
	if cap(b.keys) < 100 {
		t.Fatalf("cap = %d after Grow(100)", cap(b.keys))
	}
	b.Add(0, 1)
	before := cap(b.keys)
	b.Reset()
	if b.Len() != 0 || cap(b.keys) != before {
		t.Errorf("Reset must empty the buffer but keep capacity: len=%d cap=%d", b.Len(), cap(b.keys))
	}
}

func TestPoolRecyclesCleanBuffers(t *testing.T) {
	b := Get()
	b.Add(1, 2)
	b.Release()
	// Whatever Get returns next (pooled or fresh) must be empty.
	for i := 0; i < 4; i++ {
		c := Get()
		if c.Len() != 0 {
			t.Fatalf("pooled buffer not cleared: len=%d", c.Len())
		}
		c.Release()
	}
}

func TestConcat(t *testing.T) {
	a, b := Get(), Get()
	defer a.Release()
	defer b.Release()
	a.Add(0, 1)
	a.Add(2, 3)
	b.Add(4, 5)
	keys := Concat(a, nil, b, nil)
	if len(keys) != 3 {
		t.Fatalf("Concat len = %d, want 3", len(keys))
	}
	want := []uint64{Pack(0, 1), Pack(2, 3), Pack(4, 5)}
	for i, k := range keys {
		if k != want[i] {
			t.Errorf("Concat[%d] = %#x, want %#x", i, k, want[i])
		}
	}
	// The result must be fresh storage, not an alias of a part.
	keys[0] = Pack(9, 10)
	if a.Keys()[0] != Pack(0, 1) {
		t.Error("Concat result aliases a source buffer")
	}
}

func TestValidate(t *testing.T) {
	const n = 3
	cases := []struct {
		name string
		key  uint64
		ok   bool
	}{
		{"min canonical", Pack(0, 1), true},
		{"max in-range", Pack(n-2, n-1), true},
		{"non-canonical order", uint64(2)<<32 | 1, false},
		{"self-loop", uint64(1)<<32 | 1, false},
		{"self-loop at zero", 0, false},
		{"v == n", Pack(0, n), false},
		{"u == n (both high)", uint64(n)<<32 | uint64(n+1), false},
		{"u in range, v wild", uint64(1)<<32 | 0x7fffffff, false},
		{"u ≥ 2³¹ unpacks negative", uint64(0x80000000)<<32 | 0x80000001, false},
		{"v ≥ 2³¹ unpacks negative", uint64(1)<<32 | 0xffffffff, false},
	}
	for _, c := range cases {
		err := Validate([]uint64{c.key}, n)
		if c.ok && err != nil {
			t.Errorf("%s: valid key rejected: %v", c.name, err)
		}
		if !c.ok && err == nil {
			t.Errorf("%s: invalid key %#x accepted", c.name, c.key)
		}
	}
	if err := Validate(nil, 0); err != nil {
		t.Errorf("empty key set rejected: %v", err)
	}
	// Error reports the first offending index.
	err := Validate([]uint64{Pack(0, 1), Pack(0, n)}, n)
	if err == nil {
		t.Fatal("out-of-range endpoint accepted")
	}
}
