package arcs

import "testing"

// FuzzPackUnpack checks the packed-arc encoding invariants on arbitrary
// endpoints: packing is orientation-independent, unpacking returns the
// canonical (min, max) pair, re-packing is the identity, and canonical
// non-loop arcs satisfy Validate. These are the properties every sparsifier
// build and the CSR constructor assume.
func FuzzPackUnpack(f *testing.F) {
	f.Add(int32(0), int32(1))
	f.Add(int32(7), int32(7))
	f.Add(int32(1<<30), int32(3))
	f.Fuzz(func(t *testing.T, u, v int32) {
		// Endpoints are vertex indices, always non-negative.
		u &= 0x7fffffff
		v &= 0x7fffffff
		k := Pack(u, v)
		if k2 := Pack(v, u); k2 != k {
			t.Fatalf("Pack not orientation-independent: %#x vs %#x", k, k2)
		}
		lo, hi := Unpack(k)
		if lo != min(u, v) || hi != max(u, v) {
			t.Fatalf("Unpack(Pack(%d,%d)) = (%d,%d), want (%d,%d)", u, v, lo, hi, min(u, v), max(u, v))
		}
		if Pack(lo, hi) != k {
			t.Fatal("re-pack of unpacked endpoints is not the identity")
		}
		if u == v {
			return
		}
		n := int(max(u, v)) + 1
		if err := Validate([]uint64{k}, n); err != nil {
			t.Fatalf("canonical arc rejected: %v", err)
		}
		// The reversed (non-canonical) encoding must be rejected.
		if err := Validate([]uint64{uint64(uint32(hi))<<32 | uint64(uint32(lo))}, n); err == nil {
			t.Fatal("non-canonical arc accepted")
		}
	})
}
