package harness

import (
	"math/rand/v2"

	"repro/internal/core"
	"repro/internal/dyndist"
	"repro/internal/gen"
	"repro/internal/matching"
	"repro/internal/mpc"
	"repro/internal/params"
	"repro/internal/stream"
)

// T11 evaluates the semi-streaming instantiation: one pass of per-vertex
// reservoir sampling builds G_Δ in O(nΔ) memory regardless of the stream
// length or order; the offline matcher then runs on the in-memory
// sparsifier. We sweep density at fixed n to show memory flat in m, and
// stream in adversarial (sorted) and random orders to show order-
// obliviousness.
func T11(cfg Config) []*Table {
	const beta, eps = 2, 0.3
	n := cfg.pick(400, 1500)
	delta := params.Delta(beta, eps)
	degs := []float64{64, 128}
	if !cfg.Quick {
		degs = []float64{64, 128, 256, 512}
	}
	tbl := NewTable("T11", "semi-streaming sparsifier: memory and quality vs stream length",
		"one pass, O(nΔ) words regardless of m and of stream order; quality matches offline",
		"n", "m (stream)", "order", "memory(words)", "m/memory", "ratio vs exact")
	for _, avg := range degs {
		inst := gen.BoundedDiversityInstance(n, beta, avg, cfg.Seed+90)
		exact := matching.MaximumGeneral(inst.G).Size()
		for _, order := range []string{"canonical", "shuffled"} {
			var perm []int
			if order == "shuffled" {
				perm = rand.Perm(inst.G.M())
				rng := rand.New(rand.NewPCG(cfg.Seed+91, 1))
				rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
			}
			sp, mem := stream.SparsifyStream(inst.G, delta, perm, cfg.Seed+92)
			got := matching.MaximumGeneral(sp).Size()
			ratio := 0.0
			if got > 0 {
				ratio = float64(exact) / float64(got)
			}
			tbl.AddRow(n, inst.G.M(), order, mem, float64(inst.G.M())/float64(mem), ratio)
		}
	}
	return []*Table{tbl}
}

// T12 evaluates the MPC instantiation: two rounds, balanced machine loads,
// and a coordinator that ends up holding only the O(nΔ)-edge sparsifier —
// the memory-constrained-model application the paper's Section 3 points to.
func T12(cfg Config) []*Table {
	const beta, eps = 2, 0.3
	n := cfg.pick(400, 1500)
	delta := params.Delta(beta, eps)
	machines := []int{4, 16}
	if !cfg.Quick {
		machines = []int{4, 16, 64}
	}
	avg := cfg.pick(128, 384)
	inst := gen.BoundedDiversityInstance(n, beta, float64(avg), cfg.Seed+93)
	exact := matching.MaximumGeneral(inst.G).Size()
	tbl := NewTable("T12", "MPC sparsification: 2 rounds, per-machine loads, coordinator memory",
		"input m/M per machine; coordinator holds ≤ nΔ words ≪ m; quality preserved",
		"machines", "m", "max input", "max sent", "max recv", "coordinator", "m/coord", "ratio vs exact")
	for _, M := range machines {
		sp, stats := mpc.SparsifyMPC(inst.G, delta, M, cfg.Seed+94)
		got := matching.MaximumGeneral(sp).Size()
		ratio := 0.0
		if got > 0 {
			ratio = float64(exact) / float64(got)
		}
		tbl.AddRow(M, inst.G.M(), stats.MaxInputLoad, stats.MaxSent, stats.MaxReceived,
			stats.Coordinator, float64(inst.G.M())/float64(stats.Coordinator), ratio)
	}
	return []*Table{tbl}
}

// T15 evaluates the dynamic distributed instantiation: per-node memory
// stays O(Δ) while a naive processor stores its degree (~density), and
// per-update message counts are density-independent.
func T15(cfg Config) []*Table {
	const delta = 4
	n := cfg.pick(200, 800)
	degs := []float64{32, 64}
	if !cfg.Quick {
		degs = []float64{32, 64, 128, 256}
	}
	churn := cfg.pick(2000, 8000)
	tbl := NewTable("T15", "dynamic distributed maintenance: local memory and messages vs density",
		"per-node memory O(Δ) vs naive ~deg; per-update messages flat in density; matching maximal on the sparsifier",
		"n", "avg deg", "max local words", "naive (maxdeg)", "msgs/update", "msgs(max)", "|M|/exact")
	for _, avg := range degs {
		inst := gen.BoundedDiversityInstance(n, 2, avg, cfg.Seed+105)
		nw := dyndist.NewNetwork(n, delta, cfg.Seed+106)
		inst.G.ForEachEdge(func(u, v int32) { nw.Insert(u, v) })
		edges := inst.G.Edges()
		rng := rand.New(rand.NewPCG(cfg.Seed+107, 5))
		for i := 0; i < churn; i++ {
			e := edges[rng.IntN(len(edges))]
			nw.Delete(e.U, e.V)
			nw.Insert(e.U, e.V)
		}
		st := nw.Stats()
		exact := matching.MaximumGeneral(nw.Graph().Snapshot()).Size()
		q := 0.0
		if exact > 0 {
			q = float64(nw.Size()) / float64(exact)
		}
		tbl.AddRow(n, inst.G.AvgDegree(), nw.MaxLocalWords(), inst.G.MaxDegree(),
			float64(st.Messages)/float64(st.Updates), st.MaxMsgsUpdate, q)
	}
	return []*Table{tbl}
}

// T13 is the ablation study for the design choices DESIGN.md calls out:
// sampling method (read-only pos_v vs rejection resampling), parallel vs
// sequential construction, and the low-degree mark-all threshold.
func T13(cfg Config) []*Table {
	const beta, eps = 2, 0.3
	n := cfg.pick(2000, 6000)
	delta := params.Delta(beta, eps)
	inst := gen.BoundedDiversityInstance(n, beta, 512, cfg.Seed+95)
	exact := matching.MaximumGeneral(inst.G).Size()

	tbl := NewTable("T13", "ablations: sampling method, parallelism, mark-all threshold",
		"read-only pos_v sampling matches resampling; workers speed construction; threshold trades size for robustness",
		"variant", "t_construct(ms)", "|E(G_Δ)|", "ratio vs exact")
	measure := func(name string, opt core.Options) {
		sp := core.SparsifyOpts(inst.G, opt, cfg.Seed+96) // warm-up
		t := timeIt(func() {
			sp = core.SparsifyOpts(inst.G, opt, cfg.Seed+97)
		})
		got := matching.MaximumGeneral(sp).Size()
		ratio := 0.0
		if got > 0 {
			ratio = float64(exact) / float64(got)
		}
		tbl.AddRow(name, t, sp.M(), ratio)
	}
	measure("readonly/seq", core.Options{Delta: delta, Method: core.MethodReadOnly, Workers: 1})
	measure("resample/seq", core.Options{Delta: delta, Method: core.MethodResample, Workers: 1})
	measure("readonly/parallel", core.Options{Delta: delta, Method: core.MethodReadOnly})

	// The mark-all threshold only matters when degrees straddle it; use a
	// moderate-density instance (avg deg ≈ 3Δ) so threshold = Δ, 2Δ, 4Δ
	// cover none/some/most of the degree distribution.
	inst2 := gen.BoundedDiversityInstance(n, beta, float64(3*delta), cfg.Seed+98)
	exact2 := matching.MaximumGeneral(inst2.G).Size()
	tbl2 := NewTable("T13b", "mark-all threshold ablation (avg deg ≈ 3Δ)",
		"larger thresholds keep more low-degree neighborhoods whole: larger sparsifier, same quality",
		"threshold", "|E(G_Δ)|", "fraction of m", "ratio vs exact")
	for _, tc := range []struct {
		name string
		thr  int
	}{{"Δ (no tweak)", delta}, {"2Δ (paper §3.1)", 2 * delta}, {"4Δ", 4 * delta}} {
		sp := core.SparsifyOpts(inst2.G, core.Options{Delta: delta, MarkAllThreshold: tc.thr, Workers: 1}, cfg.Seed+99)
		got := matching.MaximumGeneral(sp).Size()
		ratio := 0.0
		if got > 0 {
			ratio = float64(exact2) / float64(got)
		}
		tbl2.AddRow(tc.name, sp.M(), float64(sp.M())/float64(inst2.G.M()), ratio)
	}

	// Matcher-strategy ablation on the sparsifier: sequential bounded-DFS
	// augmentation vs Hopcroft–Karp-style disjoint phases vs exact blossom.
	sp := core.Sparsify(inst.G, delta, cfg.Seed+100)
	exactSp := matching.MaximumGeneral(sp).Size()
	tbl3 := NewTable("T13c", "matcher ablation on the sparsifier (ε=0.3)",
		"both (1+ε)-aimed matchers land near the sparsifier's exact MCM; phases trade passes for disjoint-path structure",
		"matcher", "t(ms)", "|M|", "ratio vs exact-on-sparsifier")
	for _, tc := range []struct {
		name string
		run  func() *matching.Matching
	}{
		{"greedy (2-approx)", func() *matching.Matching { return matching.Greedy(sp) }},
		{"bounded-DFS", func() *matching.Matching { return matching.ApproxGeneral(sp, eps, cfg.Seed+1) }},
		{"disjoint-phases", func() *matching.Matching { return matching.PhaseStructuredApprox(sp, eps, cfg.Seed+1) }},
		{"blossom (exact)", func() *matching.Matching { return matching.MaximumGeneral(sp) }},
	} {
		var m *matching.Matching
		t := timeIt(func() { m = tc.run() })
		ratio := 0.0
		if m.Size() > 0 {
			ratio = float64(exactSp) / float64(m.Size())
		}
		tbl3.AddRow(tc.name, t, m.Size(), ratio)
	}
	return []*Table{tbl, tbl2, tbl3}
}
