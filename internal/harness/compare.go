package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Bench-gate regression mode (`sparsebench -compare`): a fresh run of the
// matching bench is compared row-by-row against the committed
// BENCH_matching.json, and regressions in ns/op or allocs/op beyond a
// tolerance fail the gate. Comparison is only meaningful when the machine
// blocks agree — timing a 1-CPU container against an 8-CPU laptop record
// measures the hardware, not the PR — so a machine mismatch skips the
// gate instead of failing it.

// DefaultBenchTolerance is the fractional slowdown the compare gate
// forgives before calling a row a regression. Benchmarks in shared CI
// runners jitter; 25% is wide enough to absorb that and narrow enough to
// catch a real hot-path pessimization.
const DefaultBenchTolerance = 0.25

// A BenchDelta is one metric of one row compared across two reports.
type BenchDelta struct {
	Experiment string
	Instance   string
	Backend    string
	Workers    int
	Metric     string // "ns_per_op" | "allocs_per_op"
	Old, New   int64
	// Ratio is New/Old (with Old==0 treated as Ratio 1 when New is also 0).
	Ratio     float64
	Regressed bool
}

// Row names the delta's row in the compact form used by gate output.
func (d BenchDelta) Row() string {
	return fmt.Sprintf("%s/%s w=%d (%s)", d.Experiment, d.Backend, d.Workers, d.Instance)
}

// A BenchComparison is the full outcome of comparing a fresh report
// against a committed baseline.
type BenchComparison struct {
	// MachineMatch is false when the machine blocks (num_cpu, gomaxprocs)
	// or the quick flag differ; Deltas is empty in that case and the gate
	// must be skipped, not failed.
	MachineMatch bool
	// Why explains a MachineMatch=false outcome.
	Why string
	// MissingRows are baseline rows with no counterpart in the fresh run —
	// a renamed or deleted benchmark, reported so a gate cannot silently
	// narrow.
	MissingRows []string
	// NewRows are fresh rows with no baseline — informational.
	NewRows []string
	// Deltas holds the per-metric comparison of every matched row.
	Deltas []BenchDelta
}

// Regressions returns the deltas that exceeded the tolerance.
func (c BenchComparison) Regressions() []BenchDelta {
	var out []BenchDelta
	for _, d := range c.Deltas {
		if d.Regressed {
			out = append(out, d)
		}
	}
	return out
}

// ReadBenchReport decodes a BENCH_*.json report and refuses schemas this
// build does not understand.
func ReadBenchReport(r io.Reader) (BenchReport, error) {
	var rep BenchReport
	dec := json.NewDecoder(r)
	if err := dec.Decode(&rep); err != nil {
		return BenchReport{}, fmt.Errorf("harness: decode bench report: %w", err)
	}
	if rep.Schema != BenchSchema {
		return BenchReport{}, fmt.Errorf("harness: bench report schema %q, want %q", rep.Schema, BenchSchema)
	}
	return rep, nil
}

func benchRowKey(r BenchResult) string {
	return fmt.Sprintf("%s\x00%s\x00%s\x00%d", r.Experiment, r.Instance, r.Backend, r.Workers)
}

// CompareBenchReports compares fresh against base row-by-row. A row
// regresses when fresh ns/op or allocs/op exceeds base×(1+tolerance); the
// allocs check is what keeps the noalloc steady-state contract honest — a
// zero-alloc baseline row fails on the first allocation a change
// introduces. tolerance <= 0 selects DefaultBenchTolerance.
func CompareBenchReports(base, fresh BenchReport, tolerance float64) BenchComparison {
	if tolerance <= 0 {
		tolerance = DefaultBenchTolerance
	}
	switch {
	case base.NumCPU != fresh.NumCPU || base.GoMaxProcs != fresh.GoMaxProcs:
		return BenchComparison{Why: fmt.Sprintf("machine mismatch: baseline %d cpu / gomaxprocs %d, this run %d / %d",
			base.NumCPU, base.GoMaxProcs, fresh.NumCPU, fresh.GoMaxProcs)}
	case base.Quick != fresh.Quick:
		return BenchComparison{Why: fmt.Sprintf("mode mismatch: baseline quick=%t, this run quick=%t", base.Quick, fresh.Quick)}
	case base.Relabel != fresh.Relabel:
		// Different vertex orderings time different memory layouts of the
		// same workload — a layout change is not a code regression.
		return BenchComparison{Why: fmt.Sprintf("relabel mismatch: baseline %q, this run %q", base.Relabel, fresh.Relabel)}
	}

	cmp := BenchComparison{MachineMatch: true}
	freshByKey := make(map[string]BenchResult, len(fresh.Results))
	for _, r := range fresh.Results {
		freshByKey[benchRowKey(r)] = r
	}
	seen := make(map[string]bool, len(base.Results))
	for _, old := range base.Results {
		key := benchRowKey(old)
		seen[key] = true
		now, ok := freshByKey[key]
		if !ok {
			cmp.MissingRows = append(cmp.MissingRows, BenchDelta{Experiment: old.Experiment,
				Instance: old.Instance, Backend: old.Backend, Workers: old.Workers}.Row())
			continue
		}
		for _, m := range []struct {
			name     string
			old, now int64
		}{
			{"ns_per_op", old.NsPerOp, now.NsPerOp},
			{"allocs_per_op", old.AllocsPerOp, now.AllocsPerOp},
		} {
			d := BenchDelta{
				Experiment: old.Experiment, Instance: old.Instance,
				Backend: old.Backend, Workers: old.Workers,
				Metric: m.name, Old: m.old, New: m.now,
			}
			switch {
			case m.old > 0:
				d.Ratio = float64(m.now) / float64(m.old)
				d.Regressed = d.Ratio > 1+tolerance
			case m.now > 0:
				// Baseline zero, fresh nonzero: an introduced cost with no
				// finite ratio. Always a regression (this is the noalloc gate).
				d.Ratio = float64(m.now)
				d.Regressed = true
			default:
				d.Ratio = 1
			}
			cmp.Deltas = append(cmp.Deltas, d)
		}
	}
	for _, r := range fresh.Results {
		if key := benchRowKey(r); !seen[key] {
			cmp.NewRows = append(cmp.NewRows, BenchDelta{Experiment: r.Experiment,
				Instance: r.Instance, Backend: r.Backend, Workers: r.Workers}.Row())
		}
	}
	sort.Strings(cmp.MissingRows)
	sort.Strings(cmp.NewRows)
	return cmp
}
