// Package harness provides the experiment infrastructure of the
// reproduction: summary statistics, fixed-width table rendering, and one
// runner per table/figure of the evaluation suite defined in DESIGN.md
// (T1–T10, F1–F3). The cmd/sparsebench CLI and the root bench_test.go both
// drive these runners.
package harness

import (
	"math"
	"sort"
)

// Summary holds the summary statistics of a sample.
type Summary struct {
	N         int
	Mean, Std float64
	Min, Max  float64
	Median    float64
}

// Summarize computes summary statistics. An empty sample yields zeros.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if len(xs) == 0 {
		return s
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Min, s.Max = sorted[0], sorted[len(sorted)-1]
	s.Median = sorted[len(sorted)/2]
	if len(sorted)%2 == 0 {
		s.Median = (sorted[len(sorted)/2-1] + sorted[len(sorted)/2]) / 2
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	s.Mean = sum / float64(len(xs))
	if len(xs) > 1 {
		ss := 0.0
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(len(xs)-1))
	}
	return s
}
