package harness

import (
	"bytes"
	"strings"
	"testing"
)

func baselineReport() BenchReport {
	return BenchReport{
		Schema: BenchSchema, Quick: true, NumCPU: 4, GoMaxProcs: 4,
		Results: []BenchResult{
			{Experiment: "T5-phase", Instance: "i", Backend: "gdelta", Workers: 1, NsPerOp: 1000, AllocsPerOp: 0},
			{Experiment: "T5-phase", Instance: "i", Backend: "gdelta", Workers: 4, NsPerOp: 400, AllocsPerOp: 0},
			{Experiment: "T5-pipeline", Instance: "i", Backend: "edcs", Workers: 1, NsPerOp: 2000, AllocsPerOp: 12},
		},
	}
}

func TestReadBenchReportRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := baselineReport().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	rep, err := ReadBenchReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 3 || rep.NumCPU != 4 {
		t.Fatalf("round trip lost data: %+v", rep)
	}
	if _, err := ReadBenchReport(strings.NewReader(`{"schema":"sparsematch/bench/v1"}`)); err == nil {
		t.Fatal("stale schema was accepted")
	}
	if _, err := ReadBenchReport(strings.NewReader(`not json`)); err == nil {
		t.Fatal("garbage was accepted")
	}
}

func TestCompareBenchReportsWithinTolerance(t *testing.T) {
	base := baselineReport()
	fresh := baselineReport()
	fresh.Results[0].NsPerOp = 1200 // +20% < 25% tolerance
	cmp := CompareBenchReports(base, fresh, 0)
	if !cmp.MachineMatch {
		t.Fatalf("machine match refused: %s", cmp.Why)
	}
	if regs := cmp.Regressions(); len(regs) != 0 {
		t.Fatalf("within-tolerance run flagged: %+v", regs)
	}
	if len(cmp.Deltas) != 6 {
		t.Fatalf("got %d deltas, want 2 metrics x 3 rows", len(cmp.Deltas))
	}
}

func TestCompareBenchReportsRegression(t *testing.T) {
	base := baselineReport()
	fresh := baselineReport()
	fresh.Results[0].NsPerOp = 1300 // +30% > 25%
	fresh.Results[2].AllocsPerOp = 20
	cmp := CompareBenchReports(base, fresh, 0.25)
	regs := cmp.Regressions()
	if len(regs) != 2 {
		t.Fatalf("got %d regressions, want ns and allocs: %+v", len(regs), regs)
	}
	if regs[0].Metric != "ns_per_op" || regs[0].Ratio < 1.29 || regs[0].Ratio > 1.31 {
		t.Fatalf("ns delta = %+v", regs[0])
	}
	if regs[1].Metric != "allocs_per_op" || regs[1].Old != 12 || regs[1].New != 20 {
		t.Fatalf("allocs delta = %+v", regs[1])
	}
}

// TestCompareBenchReportsNoallocGate pins the zero-baseline rule: the
// first allocation introduced on a zero-alloc row is a regression at any
// tolerance — there is no finite ratio to forgive.
func TestCompareBenchReportsNoallocGate(t *testing.T) {
	base := baselineReport()
	fresh := baselineReport()
	fresh.Results[1].AllocsPerOp = 1
	cmp := CompareBenchReports(base, fresh, 100)
	regs := cmp.Regressions()
	if len(regs) != 1 || regs[0].Metric != "allocs_per_op" || regs[0].Workers != 4 {
		t.Fatalf("zero-alloc violation not flagged: %+v", regs)
	}
}

func TestCompareBenchReportsMachineMismatch(t *testing.T) {
	base := baselineReport()
	fresh := baselineReport()
	fresh.NumCPU = 1
	fresh.GoMaxProcs = 1
	cmp := CompareBenchReports(base, fresh, 0)
	if cmp.MachineMatch || len(cmp.Deltas) != 0 || cmp.Why == "" {
		t.Fatalf("machine mismatch not skipped: %+v", cmp)
	}
	quick := baselineReport()
	quick.Quick = false
	if cmp := CompareBenchReports(base, quick, 0); cmp.MachineMatch {
		t.Fatal("quick-mode mismatch not skipped")
	}
	relabeled := baselineReport()
	relabeled.Relabel = "rcm"
	if cmp := CompareBenchReports(base, relabeled, 0); cmp.MachineMatch {
		t.Fatal("relabel mismatch not skipped: two orderings time different memory layouts")
	}
}

func TestCompareBenchReportsRowDrift(t *testing.T) {
	base := baselineReport()
	fresh := baselineReport()
	fresh.Results[2].Experiment = "T5-renamed"
	cmp := CompareBenchReports(base, fresh, 0)
	if len(cmp.MissingRows) != 1 || !strings.Contains(cmp.MissingRows[0], "T5-pipeline") {
		t.Fatalf("missing rows = %v", cmp.MissingRows)
	}
	if len(cmp.NewRows) != 1 || !strings.Contains(cmp.NewRows[0], "T5-renamed") {
		t.Fatalf("new rows = %v", cmp.NewRows)
	}
	if len(cmp.Deltas) != 4 {
		t.Fatalf("got %d deltas, want 2 metrics x 2 matched rows", len(cmp.Deltas))
	}
}
