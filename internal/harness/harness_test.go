package harness

import (
	"strconv"
	"strings"
	"testing"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.N != 4 || s.Mean != 2.5 || s.Min != 1 || s.Max != 4 || s.Median != 2.5 {
		t.Errorf("Summarize = %+v", s)
	}
	odd := Summarize([]float64{3, 1, 2})
	if odd.Median != 2 {
		t.Errorf("odd median = %v", odd.Median)
	}
	empty := Summarize(nil)
	if empty.N != 0 || empty.Mean != 0 {
		t.Errorf("empty summary = %+v", empty)
	}
}

func TestTableRender(t *testing.T) {
	tbl := NewTable("TX", "title", "a claim", "col", "value")
	tbl.AddRow("a", 1.23456)
	tbl.AddRow("bb", 42)
	var sb strings.Builder
	tbl.Render(&sb)
	out := sb.String()
	for _, want := range []string{"TX", "title", "a claim", "col", "1.235", "42"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestRegistry(t *testing.T) {
	all := All()
	if len(all) != 24 {
		t.Fatalf("registry has %d experiments, want 24", len(all))
	}
	seen := map[string]bool{}
	for _, e := range all {
		if seen[e.ID] {
			t.Errorf("duplicate id %s", e.ID)
		}
		seen[e.ID] = true
		if e.Run == nil || e.Title == "" {
			t.Errorf("experiment %s incomplete", e.ID)
		}
	}
	if _, ok := ByID("T5"); !ok {
		t.Error("ByID(T5) failed")
	}
	if _, ok := ByID("nope"); ok {
		t.Error("ByID accepted unknown id")
	}
}

// TestAllExperimentsQuick runs the entire suite in quick mode and applies
// per-experiment sanity assertions on the produced tables — this is the
// integration test of the whole reproduction.
func TestAllExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("quick suite still takes a few seconds")
	}
	cfg := Config{Quick: true, Seed: 12345}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tables := e.Run(cfg)
			if len(tables) == 0 {
				t.Fatal("no tables produced")
			}
			for _, tbl := range tables {
				if len(tbl.Rows) == 0 {
					t.Fatalf("%s: empty table", tbl.ID)
				}
				for _, row := range tbl.Rows {
					if len(row) != len(tbl.Headers) {
						t.Fatalf("%s: row width %d != header width %d", tbl.ID, len(row), len(tbl.Headers))
					}
				}
			}
			checkExperiment(t, e.ID, tables)
		})
	}
}

// checkExperiment asserts the claim of each experiment on its quick-mode
// output (the "shape" checks of EXPERIMENTS.md).
func checkExperiment(t *testing.T, id string, tables []*Table) {
	t.Helper()
	switch id {
	case "T1":
		// At multiplier 2 the ratio must be within 1+ε (ε=0.2) + noise.
		for _, row := range tables[0].Rows {
			if row[3] == "2" {
				if r := atof(t, row[5]); r > 1.25 {
					t.Errorf("T1 %s mult=2: mean ratio %v > 1.25", row[0], r)
				}
			}
		}
	case "T2":
		for _, row := range tables[0].Rows {
			if row[len(row)-1] != "true" {
				t.Errorf("T2 row failed its 1+ε bound: %v", row)
			}
		}
	case "T3", "T4", "F3":
		for _, row := range tables[0].Rows {
			if row[len(row)-1] != "true" {
				t.Errorf("%s bound violated: %v", id, row)
			}
		}
	case "T5":
		// The sublinearity claim lives in the density sweep (T5b): the
		// speedup must grow with m/(nΔ) and exceed 1 at the densest point.
		if len(tables) < 2 {
			t.Fatal("T5 must produce the density-sweep table")
		}
		rows := tables[1].Rows
		first, last := atof(t, rows[0][6]), atof(t, rows[len(rows)-1][6])
		// Wall-clock assertions stay loose: quick-mode timings on a loaded
		// machine are noisy; the trend is what the claim needs.
		if last < 1.5*first {
			t.Errorf("T5b speedup did not grow with density: %v -> %v", first, last)
		}
	case "T8":
		// The message-saving ratio must grow with density and clearly
		// exceed 1 at the densest setting.
		rows := tables[0].Rows
		first, last := atof(t, rows[0][6]), atof(t, rows[len(rows)-1][6])
		if last <= first {
			t.Errorf("T8: ratio did not grow with density: %v -> %v", first, last)
		}
		if last < 1.5 {
			t.Errorf("T8: densest ratio %v < 1.5", last)
		}
	case "T9":
		// Maintainer quality must stay above 1/(1+ε)-ish under the adversary.
		for _, row := range tables[0].Rows {
			if row[2] == "maintainer" {
				if q := atof(t, row[len(row)-1]); q < 0.6 {
					t.Errorf("T9 maintainer quality %v too low", q)
				}
			}
		}
	case "T10":
		// Deterministic ratio must be much worse than the randomized one.
		for _, row := range tables[0].Rows {
			if atof(t, row[4]) < 2*atof(t, row[6]) {
				t.Errorf("T10a: deterministic ratio %v not clearly worse than randomized %v", row[4], row[6])
			}
		}
		// Interactive game: feasible output, ratio at least the certificate.
		for _, row := range tables[1].Rows {
			if row[3] != "true" {
				t.Errorf("T10g: infeasible output: %v", row)
			}
			if atof(t, row[5]) < atof(t, row[6]) {
				t.Errorf("T10g: ratio %v below certificate %v", row[5], row[6])
			}
		}
	case "T17":
		// Every worker count must report |M| equal to the 1-worker row and
		// certify bit-identity of the matching itself.
		rows := tables[0].Rows
		if len(rows) != 4 {
			t.Fatalf("T17: want 4 worker rows, got %d", len(rows))
		}
		for _, row := range rows {
			if row[4] != rows[0][4] {
				t.Errorf("T17: |M| varies with workers: %v vs %v", row[4], rows[0][4])
			}
			if row[len(row)-1] != "true" {
				t.Errorf("T17: workers=%v not bit-identical to 1 worker", row[0])
			}
		}
	case "T19":
		// Replay conformance: every (backend, shards) row must certify
		// bit-identity to the direct replay and report real throughput.
		for _, row := range tables[0].Rows {
			if row[len(row)-1] != "true" {
				t.Errorf("T19: served matching not bit-identical to replay: %v", row)
			}
			if atof(t, row[3]) <= 0 {
				t.Errorf("T19: no throughput measured: %v", row)
			}
		}
	case "T10g-handled-within-T10":
		// (T10's game table is asserted in the T10 case below.)
	case "T14":
		for _, row := range tables[0].Rows {
			if atof(t, row[7]) < 1 {
				t.Errorf("T14: probes not below reading the input: %v", row)
			}
		}
	case "T15":
		// Local memory flat while naive degree grows; quality ≥ maximal bound.
		rows := tables[0].Rows
		for _, row := range rows {
			if atof(t, row[2]) >= atof(t, row[3]) {
				t.Errorf("T15: local words %v not below naive degree %v", row[2], row[3])
			}
			if q := atof(t, row[6]); q < 0.4 {
				t.Errorf("T15: quality %v below the maximal-matching bound", q)
			}
		}
		if atof(t, rows[len(rows)-1][2]) > 2*atof(t, rows[0][2]) {
			t.Errorf("T15: local memory grew with density: %v -> %v", rows[0][2], rows[len(rows)-1][2])
		}
	case "T11":
		// Memory must be flat in m: densest row's memory within 1.2x of the
		// sparsest row's, while m grows severalfold; ratio within 1.35.
		rows := tables[0].Rows
		if atof(t, rows[len(rows)-1][3]) > 1.2*atof(t, rows[0][3]) {
			t.Errorf("T11: memory grew with m: %v -> %v", rows[0][3], rows[len(rows)-1][3])
		}
		for _, row := range rows {
			if r := atof(t, row[5]); r > 1.35 {
				t.Errorf("T11: streaming quality ratio %v too weak", r)
			}
		}
	case "T12":
		for _, row := range tables[0].Rows {
			if atof(t, row[6]) < 1 {
				t.Errorf("T12: coordinator memory not below m: %v", row)
			}
			if r := atof(t, row[7]); r > 1.35 {
				t.Errorf("T12: MPC quality ratio %v too weak", r)
			}
		}
	case "T13":
		for _, row := range tables[0].Rows {
			if r := atof(t, row[3]); r > 1.35 {
				t.Errorf("T13: variant %v quality ratio %v too weak", row[0], r)
			}
		}
	case "F1":
		rows := tables[0].Rows
		if atof(t, rows[len(rows)-1][4]) > 0.5 {
			t.Errorf("F1: failure rate %v too high at largest n", rows[len(rows)-1][4])
		}
	case "F2":
		// Final Δ=32 fraction must be ≥ 0.9 for every family.
		for _, row := range tables[0].Rows {
			if row[1] == "32" {
				if f := atof(t, row[2]); f < 0.9 {
					t.Errorf("F2 %s at Δ=32: fraction %v < 0.9", row[0], f)
				}
			}
		}
	}
}

func atof(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("not a float: %q", s)
	}
	return v
}

func TestRenderCSV(t *testing.T) {
	tbl := NewTable("TZ", "t", "c", "a", "b")
	tbl.AddRow(1, 2.5)
	var sb strings.Builder
	if err := tbl.RenderCSV(&sb); err != nil {
		t.Fatal(err)
	}
	want := "table,a,b\nTZ,1,2.5\n"
	if sb.String() != want {
		t.Errorf("CSV = %q, want %q", sb.String(), want)
	}
}
