package harness

import (
	"repro/internal/dist"
	"repro/internal/gen"
	"repro/internal/matching"
)

// T7 reports the round breakdown of the distributed pipeline as n grows:
// the sparsification phases are O(1) rounds, the Linial phase is O(log* n)
// rounds, and the palette walk-down plus matching phases depend only on the
// composed sparsifier's degree bound — so total rounds are nearly flat in n.
func T7(cfg Config) []*Table {
	sizes := []int{200, 400}
	if !cfg.Quick {
		sizes = []int{300, 600, 1200, 2400}
	}
	opt := dist.PipelineOptions{Delta: 4, DeltaAlpha: 6, AugIters: 20}
	tbl := NewTable("T7", "distributed pipeline rounds (unitdisk, Δ=4, Δα=6)",
		"sparsify/compose are 1-round; Linial is log* n; the rest depends only on Δα — rounds ~flat in n",
		"n", "log*-steps", "r_sparsify", "r_compose", "r_color", "r_mm", "r_aug", "r_total", "ratio vs exact")
	for _, n := range sizes {
		inst := gen.UnitDiskInstance(n, 40, cfg.Seed+10)
		m, ps := dist.ApproxMatchingPipeline(inst.G, inst.Beta, 0.5, opt, cfg.Seed+47)
		exact := matching.MaximumGeneral(inst.G).Size()
		ratio := 0.0
		if m.Size() > 0 {
			ratio = float64(exact) / float64(m.Size())
		}
		tbl.AddRow(n, dist.LinialRounds(n, 6),
			ps.Sparsify.Rounds, ps.Compose.Rounds, ps.Coloring.Rounds,
			ps.MM.Rounds, ps.Aug.Rounds, ps.Total.Rounds, ratio)
	}
	return []*Table{tbl}
}

// T8 compares message complexity: the pipeline's messages are bounded by
// rounds × |E(G̃_Δ)| = O(n·poly(Δα)) regardless of m, while any direct
// algorithm on G pays Ω(m) messages — the Theorem 3.3 separation.
func T8(cfg Config) []*Table {
	n := cfg.pick(400, 800)
	degs := []float64{32, 64, 128}
	if !cfg.Quick {
		degs = []float64{32, 64, 128, 256}
	}
	opt := dist.PipelineOptions{Delta: 4, DeltaAlpha: 6, AugIters: 20}
	tbl := NewTable("T8", "message complexity vs density at fixed n (diversity2 family)",
		"pipeline messages ~flat in m (it runs on the sparsifier); direct MM pays Ω(m); sparsify phase ≤ 2nΔ",
		"n", "m", "msg_sparsify", "nΔ", "msg_pipeline", "msg_direct", "direct/pipeline")
	for _, avg := range degs {
		inst := gen.BoundedDiversityInstance(n, 2, avg, cfg.Seed+11)
		g := inst.G
		_, ps := dist.ApproxMatchingPipeline(g, inst.Beta, 0.5, opt, cfg.Seed+53)
		_, direct := dist.DirectMM(g, cfg.Seed+59)
		ratio := 0.0
		if ps.Total.Messages > 0 {
			ratio = float64(direct.Messages) / float64(ps.Total.Messages)
		}
		tbl.AddRow(n, g.M(), ps.Sparsify.Messages, n*opt.Delta,
			ps.Total.Messages, direct.Messages, ratio)
	}
	return []*Table{tbl}
}
