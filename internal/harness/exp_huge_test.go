package harness

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

// TestT21StreamedBuildWithinBudget asserts the T21 memory claim directly:
// a streamed chunked build's peak live heap stays within the CSR + one
// chunk budget, and the built graph is exactly what the materializing
// generator produces for the same parameters.
func TestT21StreamedBuildWithinBudget(t *testing.T) {
	const n, k, avg = 20_000, 4, 64.0
	s := gen.NewDiversityStreamAvgDeg(n, k, avg, 991)
	g, st := buildStreamed(s, s.ArcsUpperBound(), 2)
	if !st.WithinBudget() {
		t.Fatalf("peak heap %d B exceeds budget %d B (arcs=%d chunks=%d)",
			st.PeakHeap, st.Budget, st.Arcs, st.Chunks)
	}
	if st.Chunks < 1 || st.Arcs < 1 || g.M() < 1 {
		t.Fatalf("degenerate build: %+v, m=%d", st, g.M())
	}
	want := gen.BoundedDiversityInstance(n, k, avg, 991).G
	if !graph.Equal(g, want) {
		t.Fatal("streamed build differs from the materializing generator")
	}
}
