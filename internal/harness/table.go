package harness

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Table is a fixed-width text table with a title, a one-line caption of
// what the experiment claims, and formatted rows.
type Table struct {
	ID      string
	Title   string
	Claim   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given id, title, claim, and headers.
func NewTable(id, title, claim string, headers ...string) *Table {
	return &Table{ID: id, Title: title, Claim: claim, Headers: headers}
}

// AddRow appends a row; cells are formatted with %v, floats with 4
// significant digits.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		case float32:
			row[i] = fmt.Sprintf("%.4g", v)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	if t.Claim != "" {
		fmt.Fprintf(w, "   claim: %s\n", t.Claim)
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintf(w, "   %s\n", strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Headers)
	rule := make([]string, len(t.Headers))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	line(rule)
	for _, row := range t.Rows {
		line(row)
	}
	fmt.Fprintln(w)
}

// RenderCSV writes the table as CSV with a leading `table` column carrying
// the table id, so multiple tables can share one file.
func (t *Table) RenderCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(append([]string{"table"}, t.Headers...)); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(append([]string{t.ID}, row...)); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
