package harness

import (
	"fmt"
	"math/rand/v2"
	"net"
	"slices"
	"time"

	"repro/internal/cli"
	"repro/internal/serve"
	"repro/internal/serve/wire"
)

// T19 measures the serving path (internal/serve, cmd/matchd): a dynamic
// matcher behind the sharded wire-protocol pipeline. For each backend and
// shard count it streams one workload through a loopback server and
// reports end-to-end throughput, batch commit latency (p50/p99), and —
// the conformance column — whether the served matching is bit-identical
// to a direct single-threaded replay. Sequenced apply makes that column
// "true" by construction at EVERY shard count; the throughput columns
// show what the pipelining buys on top.
func T19(cfg Config) []*Table {
	n := cfg.pick(300, 1200)
	churn := cfg.pick(1500, 8000)
	tr, err := cli.MakeTrace("diversity2", n, 10, churn, cfg.Seed+19)
	if err != nil {
		panic(err) // family name is a literal; cannot fail
	}
	ups := make([]wire.Update, len(tr.Updates))
	for i, u := range tr.Updates {
		ups[i] = wire.Update{Insert: u.Insert, U: u.U, V: u.V}
	}

	tbl := NewTable("T19", "served dynamic matching: throughput, latency, replay conformance",
		"the sharded server's matching is bit-identical to a direct replay for every backend and shard count; latency stays bounded under batching",
		"backend", "shards", "updates", "upd/sec", "p50_us", "p99_us", "|M|", "bitident")
	for _, backendName := range serve.BackendNames() {
		b, err := serve.BackendByName(backendName)
		if err != nil {
			panic(err)
		}
		direct, err := b.New(tr.N, 2, 0.3, cfg.Seed+23)
		if err != nil {
			panic(err)
		}
		for _, u := range tr.Updates {
			if u.Insert {
				direct.Insert(u.U, u.V)
			} else {
				direct.Delete(u.U, u.V)
			}
		}
		want := direct.Matching().Mates()
		for _, shards := range []int{1, 2, 8} {
			m := runServed(serve.Config{
				N: tr.N, Shards: shards, Beta: 2, Eps: 0.3,
				Seed: cfg.Seed + 23, Backend: backendName,
			}, ups, 64)
			tbl.AddRow(backendName, shards, len(ups), m.updatesPerSec,
				float64(m.p50Nanos)/1e3, float64(m.p99Nanos)/1e3,
				m.matchSize, slices.Equal(m.mates, want))
		}
	}
	return []*Table{tbl}
}

// servedMetrics is one measured pass of a workload through a server.
type servedMetrics struct {
	updatesPerSec float64
	p50Nanos      int64
	p99Nanos      int64
	matchSize     int
	mates         []int32
}

// runServed boots a server on a loopback listener, streams the updates
// through the wire protocol, and collects throughput and latency. The
// server gets the real clock — this is the one place the serving stack is
// wired to wall time.
func runServed(cfg serve.Config, ups []wire.Update, batch int) servedMetrics {
	cfg.NowNanos = func() int64 { return time.Now().UnixNano() }
	s, err := serve.New(cfg)
	if err != nil {
		panic(err)
	}
	defer s.Shutdown()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	go s.Serve(l)
	c, err := serve.Dial(l.Addr().String())
	if err != nil {
		panic(err)
	}
	defer c.Close()

	start := time.Now()
	if err := c.SendUpdates(ups, batch); err != nil {
		panic(err)
	}
	elapsed := time.Since(start)

	var m servedMetrics
	m.updatesPerSec = float64(len(ups)) / elapsed.Seconds()
	pairs, err := c.Stats()
	if err != nil {
		panic(err)
	}
	for _, p := range pairs {
		switch p.Name {
		case "latency_p50_nanos":
			m.p50Nanos = p.Value
		case "latency_p99_nanos":
			m.p99Nanos = p.Value
		}
	}
	m.mates, m.matchSize, err = c.Matching()
	if err != nil {
		panic(err)
	}
	return m
}

// serveChurnTrace generates the million-vertex serving workload for the
// bench gate: random inserts mixed with deletions of live edges, spread
// over the full vertex range so every shard sees traffic. Deterministic
// for a fixed seed.
func serveChurnTrace(n, updates int, seed uint64) []wire.Update {
	rng := rand.New(rand.NewPCG(seed, 0x5e2e))
	ups := make([]wire.Update, 0, updates)
	live := make([]wire.Update, 0, updates)
	for len(ups) < updates {
		if len(live) > 0 && rng.Float64() < 0.3 {
			i := rng.IntN(len(live))
			e := live[i]
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
			ups = append(ups, wire.Update{Insert: false, U: e.U, V: e.V})
			continue
		}
		u := int32(rng.IntN(n))
		v := int32(rng.IntN(n))
		if u == v {
			continue
		}
		e := wire.Update{Insert: true, U: u, V: v}
		ups = append(ups, e)
		live = append(live, e)
	}
	return ups
}

// serveBenchShards is the shard sweep of the serving bench gate.
var serveBenchShards = []int{1, 4}

// serveBenchRows measures the T19-serve rows of the bench gate: end-to-end
// served update throughput and commit latency on a 2^20-vertex instance
// (the production-scale point of the roadmap), per backend and shard
// count. Workers carries the shard count so fillSpeedups relates the
// sharded rows to the shards=1 baseline.
func serveBenchRows(cfg Config) []BenchResult {
	const n = 1 << 20
	updates := cfg.pick(100_000, 300_000)
	if cfg.ServeUpdates > 0 {
		updates = cfg.ServeUpdates
	}
	ups := serveChurnTrace(n, updates, cfg.Seed+41)
	instance := fmt.Sprintf("churn/n=%d/updates=%d/batch=1024", n, len(ups))
	var all []BenchResult
	for _, backendName := range serve.BackendNames() {
		var rows []BenchResult
		for _, shards := range serveBenchShards {
			m := runServed(serve.Config{
				N: n, Shards: shards, Beta: 2, Eps: 0.5,
				Seed: cfg.Seed + 43, Backend: backendName,
			}, ups, 1024)
			rows = append(rows, BenchResult{
				Experiment: "T19-serve", Instance: instance, Backend: backendName,
				Workers:       shards,
				Iterations:    len(ups),
				NsPerOp:       int64(1e9 / m.updatesPerSec),
				MatchSize:     m.matchSize,
				UpdatesPerSec: m.updatesPerSec,
				P50LatencyNs:  m.p50Nanos,
				P99LatencyNs:  m.p99Nanos,
			})
		}
		fillSpeedups(rows)
		all = append(all, rows...)
	}
	return all
}
