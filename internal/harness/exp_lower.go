package harness

import (
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/lowerbound"
	"repro/internal/matching"
	"repro/internal/params"
)

// T10 demonstrates the two necessity results.
//
// Lemma 2.13 (randomization is necessary): a deterministic instantiation of
// the marking scheme — every vertex marks its first Δ adjacency entries —
// is defeated by the clique-minus-edge adversary. All marks land on the
// first Δ+1 vertices, so the deterministic sparsifier's MCM is at most
// Δ+1 versus the true n/2, a ratio of ~n/(2Δ); the random sparsifier on the
// same instance stays near ratio 1.
//
// Observation 2.14 (exactness is impossible): on two odd cliques joined by
// a bridge, every maximum matching uses the bridge, which the sparsifier
// captures only with probability 1−(1−2Δeff/n)² ≈ 4Δeff/n. We measure the
// capture frequency and the exact-preservation frequency against that
// prediction.
func T10(cfg Config) []*Table {
	det := NewTable("T10a", "deterministic marking on clique-minus-edge (Lemma 2.13)",
		"deterministic ratio ≈ n/(2Δ); randomized ratio ≈ 1 on the same instance",
		"n", "Δ", "MCM", "det |M_Δ|", "det ratio", "theory n/(2Δ)", "rand ratio")
	for _, n := range []int{cfg.pick(100, 400), cfg.pick(200, 800)} {
		delta := 5
		g := gen.CliqueMinusEdge(n, int32(n-2), int32(n-1))
		mcm := matching.MaximumGeneral(g).Size()
		detSp := deterministicMark(g, delta)
		detSize := matching.MaximumGeneral(detSp).Size()
		randSp := core.Sparsify(g, delta, cfg.Seed+83)
		randSize := matching.MaximumGeneral(randSp).Size()
		det.AddRow(n, delta, mcm, detSize,
			float64(mcm)/float64(max(1, detSize)),
			float64(n)/float64(2*delta),
			float64(mcm)/float64(max(1, randSize)))
	}

	// The interactive version of the same lemma: the deterministic marker
	// plays the probe game against the adaptive oracle and provably cannot
	// output a feasible sparsifier with MCM above Δ.
	game := NewTable("T10g", "the Lemma 2.13 adversary game, played interactively",
		"any deterministic Δ-probe/Δ-mark algorithm ends with MCM ≤ Δ vs truth n/2",
		"n", "Δ", "probes", "feasible", "output MCM", "ratio ≥", "certificate n/(2Δ)")
	for _, n := range []int{cfg.pick(100, 400), cfg.pick(200, 800)} {
		delta := 5
		o := lowerbound.NewOracle(n, delta)
		sp := lowerbound.RunDeterministicMarker(o)
		mcm := matching.MaximumGeneral(sp).Size()
		game.AddRow(n, delta, o.Probes(), o.Feasible(sp), mcm,
			float64(n)/2/float64(max(1, mcm)), o.RatioCertificate())
	}

	exact := NewTable("T10b", "exact preservation on two-cliques-plus-bridge (Obs 2.14)",
		"bridge capture frequency ≈ 1−(1−2Δeff/n)², so exact preservation needs Δ = Ω(n)",
		"n", "Δ", "trials", "bridge freq", "predicted", "exact-MCM freq")
	half := cfg.pick(51, 151)
	g, bridge := gen.TwoCliquesBridge(half)
	n := 2 * half
	mcm := matching.MaximumGeneral(g).Size()
	trials := cfg.pick(60, 300)
	for _, delta := range []int{1, 2, 4, 8} {
		captured, exactCnt := 0, 0
		for tr := 0; tr < trials; tr++ {
			sp := core.Sparsify(g, delta, cfg.Seed+uint64(tr)*131+89)
			if sp.HasEdge(bridge.U, bridge.V) {
				captured++
			}
			if matching.MaximumGeneral(sp).Size() == mcm {
				exactCnt++
			}
		}
		deff := 2 * delta // the low-degree tweak marks up to 2Δ
		p := 1 - (1-float64(2*deff)/float64(n))*(1-float64(2*deff)/float64(n))
		exact.AddRow(n, delta, trials,
			float64(captured)/float64(trials), p, float64(exactCnt)/float64(trials))
	}
	return []*Table{det, game, exact}
}

// T14 accounts the sequential pipeline's adjacency-array PROBES — the query
// complexity that the Ω(n·β) lower bound of [5, 8] speaks about. The
// sparsifier construction probes each vertex's degree plus min(2Δ, deg)
// neighbor entries, so its probe count is Θ(n·Δ) = Θ(n·(β/ε)·log(1/ε)),
// within an O(log(1/ε)/ε) factor of the lower bound and far below reading
// the whole input (2m probes).
func T14(cfg Config) []*Table {
	const eps = 0.5
	n := cfg.pick(1000, 4000)
	tbl := NewTable("T14", "probe complexity of the sequential pipeline vs the Ω(n·β) bound",
		"probes = Σ(1 + min(2Δ, deg)) ≈ n(2Δ+1); lower bound n·β; full input 2m; requires the dense regime deg ≫ 2Δ",
		"family", "β", "Δ", "m", "probes", "LB n·β", "probes/LB", "2m/probes")
	for _, tc := range []struct {
		name string
		make func(avg float64) gen.Instance
	}{
		{"diversity2", func(avg float64) gen.Instance { return gen.BoundedDiversityInstance(n, 2, avg, cfg.Seed+101) }},
		{"diversity4", func(avg float64) gen.Instance { return gen.BoundedDiversityInstance(n, 4, avg, cfg.Seed+102) }},
		{"clique", func(avg float64) gen.Instance { return gen.CliqueInstance(n) }},
	} {
		// Choose density ≈ 8·(2Δ) so the sparsifier regime is active.
		// (Line graphs are omitted: their degree is bounded by ~2·√(2·n),
		// which cannot reach the dense probe regime at these sizes.)
		probeBeta := map[string]int{"diversity2": 2, "diversity4": 4, "clique": 1}[tc.name]
		delta := params.Delta(probeBeta, eps)
		inst := tc.make(16 * float64(delta))
		probes := int64(0)
		for v := int32(0); v < int32(inst.G.N()); v++ {
			probes += 1 + int64(min(2*delta, inst.G.Degree(v)))
		}
		lb := int64(inst.G.N()) * int64(inst.Beta)
		tbl.AddRow(tc.name, inst.Beta, delta, inst.G.M(), probes, lb,
			float64(probes)/float64(lb), float64(2*inst.G.M())/float64(probes))
	}
	return []*Table{tbl}
}

// deterministicMark is the strawman deterministic sparsifier of Lemma 2.13:
// every vertex marks its first min(Δ, deg) adjacency entries, exactly the
// lemma's "up to Δ adjacent edges per vertex" budget.
func deterministicMark(g *graph.Static, delta int) *graph.Static {
	b := graph.NewBuilder(g.N())
	for v := int32(0); v < int32(g.N()); v++ {
		d := min(g.Degree(v), delta)
		for i := 0; i < d; i++ {
			b.AddEdge(v, g.Neighbor(v, i))
		}
	}
	return b.Build()
}
