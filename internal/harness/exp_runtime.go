package harness

import (
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/matching"
	"repro/internal/params"
)

// timeIt returns the best-of-3 wall time of fn in milliseconds (the
// minimum is the standard robust estimator against scheduler noise).
func timeIt(fn func()) float64 {
	best := 0.0
	for i := 0; i < 3; i++ {
		start := time.Now()
		fn()
		ms := float64(time.Since(start).Microseconds()) / 1000.0
		if i == 0 || ms < best {
			best = ms
		}
	}
	return best
}

// T5 measures the sequential runtime of the Theorem 3.1 pipeline
// (sparsify + bounded-augmentation matching on the sparsifier) against the
// same matcher on the full graph and against greedy, as n (and hence
// m ≈ n·avgdeg) grows on a dense bounded-β family. The pipeline's time
// scales with n·Δ while the full-graph algorithms scale with m.
func T5(cfg Config) []*Table {
	const eps, beta = 0.3, 2
	delta := params.Delta(beta, eps) // 30: vertices mark ≤ 2Δ = 60 edges
	sizes := []int{500, 1000, 2000}
	avg := 256.0
	if !cfg.Quick {
		sizes = []int{1000, 2000, 4000, 8000}
		avg = 512.0
	}
	tbl := NewTable("T5", "sequential runtime scaling on diversity2 (ε=0.3)",
		"sparsified pipeline ∝ nΔ; full-graph matcher ∝ m; speedup grows like m/(nΔ)",
		"n", "m", "nΔ", "t_pipeline(ms)", "t_full(ms)", "t_greedy(ms)", "speedup", "|M_pipe|/|M_full|")
	for _, n := range sizes {
		inst := gen.BoundedDiversityInstance(n, beta, avg, cfg.Seed+8)
		g := inst.G
		var mPipe, mFull *matching.Matching
		tPipe := timeIt(func() {
			sp := core.Sparsify(g, delta, cfg.Seed+29)
			mPipe = matching.ApproxGeneral(sp, eps, cfg.Seed+31)
		})
		tFull := timeIt(func() { mFull = matching.ApproxGeneral(g, eps, cfg.Seed+37) })
		tGreedy := timeIt(func() { matching.Greedy(g) })
		frac := 0.0
		if mFull.Size() > 0 {
			frac = float64(mPipe.Size()) / float64(mFull.Size())
		}
		tbl.AddRow(n, g.M(), n*delta, tPipe, tFull, tGreedy, tFull/maxf(tPipe, 1e-6), frac)
	}

	// Second table: fix n and let the density grow — the pipeline's cost is
	// flat in m (it never reads most of the graph) while the full-graph
	// matcher pays for every edge. This is the sublinearity statement.
	n := cfg.pick(1500, 4000)
	degs := []float64{128, 256, 512}
	if !cfg.Quick {
		degs = []float64{128, 256, 512, 1024}
	}
	tbl2 := NewTable("T5b", "runtime vs density at fixed n (ε=0.3)",
		"pipeline flat in m; full-graph cost ∝ m; speedup ∝ m/(nΔ)",
		"n", "avg deg", "m", "m/(nΔ)", "t_pipeline(ms)", "t_full(ms)", "speedup")
	for _, avg := range degs {
		inst := gen.BoundedDiversityInstance(n, beta, avg, cfg.Seed+80)
		g := inst.G
		tPipe := timeIt(func() {
			sp := core.Sparsify(g, delta, cfg.Seed+81)
			matching.ApproxGeneral(sp, eps, cfg.Seed+82)
		})
		tFull := timeIt(func() { matching.ApproxGeneral(g, eps, cfg.Seed+83) })
		tbl2.AddRow(n, g.AvgDegree(), g.M(), float64(g.M())/float64(n*delta),
			tPipe, tFull, tFull/maxf(tPipe, 1e-6))
	}
	return []*Table{tbl, tbl2}
}

// T6 fixes n and sweeps β on the bounded-diversity family: the pipeline's
// cost grows linearly with β (through Δ), independent of density beyond it.
func T6(cfg Config) []*Table {
	const eps = 0.25
	n := cfg.pick(1000, 4000)
	avg := cfg.pick(256, 512)
	tbl := NewTable("T6", "pipeline runtime vs β at fixed n (ε=0.25)",
		"time ∝ β through Δ = (β/ε)·ln(24/ε); quality stays within 1+ε",
		"β", "Δ", "m", "t_pipeline(ms)", "|M_pipe|", "|M_full|", "ratio")
	for _, beta := range []int{1, 2, 4} {
		inst := gen.BoundedDiversityInstance(n, beta, float64(avg), cfg.Seed+9)
		g := inst.G
		delta := params.Delta(beta, eps)
		var mPipe *matching.Matching
		t := timeIt(func() {
			sp := core.Sparsify(g, delta, cfg.Seed+41)
			mPipe = matching.ApproxGeneral(sp, eps, cfg.Seed+43)
		})
		full := matching.MaximumGeneral(g).Size()
		ratio := 0.0
		if mPipe.Size() > 0 {
			ratio = float64(full) / float64(mPipe.Size())
		}
		tbl.AddRow(beta, delta, g.M(), t, mPipe.Size(), full, ratio)
	}
	return []*Table{tbl}
}

// T17 measures the parallel phase engine's scaling: the same phase schedule
// on the same sparsifier with the discover stage sharded over 1, 2, 4, and 8
// workers. The matching is bit-identical for every worker count (the
// discover→commit protocol's determinism contract), so the table also
// certifies that claim per row. Wall-clock speedup is bounded by the host's
// core count; on a single-core box all rows time alike.
func T17(cfg Config) []*Table {
	const eps, beta = 0.3, 2
	delta := params.Delta(beta, eps)
	n := cfg.pick(1500, 8000)
	avg := float64(cfg.pick(256, 512))
	inst := gen.BoundedDiversityInstance(n, beta, avg, cfg.Seed+8)
	sp := core.Sparsify(inst.G, delta, cfg.Seed+29)
	tbl := NewTable("T17", "parallel phase-engine scaling on diversity2 (ε=0.3)",
		"discover stage sharded over workers; commit is deterministic, so |M| and the matching itself are worker-invariant",
		"workers", "n", "m_sparse", "t_phases(ms)", "|M|", "speedup_vs_1w", "identical_to_1w")
	var base float64
	var baseMates []int32
	mates := make([]int32, 0, sp.N())
	for _, w := range []int{1, 2, 4, 8} {
		e := matching.NewEngine(matching.Options{Workers: w})
		m := matching.NewMatching(sp.N())
		e.PhaseStructuredApproxInto(sp, m, eps, cfg.Seed+31) // warm the arenas
		t := timeIt(func() { e.PhaseStructuredApproxInto(sp, m, eps, cfg.Seed+31) })
		mates = m.MatesInto(mates)
		identical := true
		if w == 1 {
			base = t
			baseMates = append(baseMates[:0], mates...)
		} else {
			for i := range mates {
				if mates[i] != baseMates[i] {
					identical = false
					break
				}
			}
		}
		tbl.AddRow(w, sp.N(), sp.M(), t, m.Size(), base/maxf(t, 1e-6), identical)
		e.Close()
	}
	return []*Table{tbl}
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
