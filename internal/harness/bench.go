package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/matching"
	"repro/internal/params"
)

// BenchSchema identifies the BENCH_*.json layout; bump on incompatible
// changes so trajectory tooling can refuse files it does not understand.
// v4 adds edges_per_sec rows (T21-build streamed ingestion, phase-row edge
// throughput), the T5-phase-rcm relabeled sweep, and the report-level
// relabel tag.
const BenchSchema = "sparsematch/bench/v4"

// BenchResult is one measured configuration of a benchmark experiment.
// NsPerOp/AllocsPerOp/BytesPerOp come from testing.Benchmark, so they are
// the same quantities `go test -bench` reports.
type BenchResult struct {
	// Experiment is the benchmark id (e.g. "T5-phase"); Instance pins the
	// exact workload within it.
	Experiment string `json:"experiment"`
	Instance   string `json:"instance"`
	// Backend is the sparsifier backend the row ran under ("gdelta",
	// "edcs") — rows of the same experiment are comparable only within a
	// backend.
	Backend     string `json:"backend"`
	Workers     int    `json:"workers"`
	Iterations  int    `json:"iterations"`
	NsPerOp     int64  `json:"ns_per_op"`
	AllocsPerOp int64  `json:"allocs_per_op"`
	BytesPerOp  int64  `json:"bytes_per_op"`
	// SpeedupVs1W is ns/op of the Workers==1 row of the same
	// (Experiment, Backend, Instance) divided by this row's ns/op; 1.0 for
	// the baseline row itself. On a single-CPU machine parallel speedup is
	// unmeasurable, so the field is null (never a fabricated 1.0x) — judge
	// multi-worker rows against the machine block of the report.
	SpeedupVs1W *float64 `json:"speedup_vs_1w"`
	// MatchSize is the matching size the measured operation produced
	// (identical across worker counts — the engine's determinism contract).
	MatchSize int `json:"match_size,omitempty"`
	// UpdatesPerSec / P50LatencyNs / P99LatencyNs are the serving-path
	// metrics (schema v3, "T19-serve" rows): end-to-end served update
	// throughput and the batch receive→commit latency quantiles from the
	// server's own counters. Zero on non-serving rows.
	UpdatesPerSec float64 `json:"updates_per_sec,omitempty"`
	P50LatencyNs  int64   `json:"p50_latency_ns,omitempty"`
	P99LatencyNs  int64   `json:"p99_latency_ns,omitempty"`
	// EdgesPerSec (schema v4) is the edge throughput of the measured
	// operation: streamed arcs ingested per second for "T21-build" rows,
	// sparsifier edges per phase-schedule second for the phase sweeps.
	// Zero where the notion does not apply.
	EdgesPerSec float64 `json:"edges_per_sec,omitempty"`
}

// BenchReport is the machine-readable benchmark gate emitted by
// `sparsebench -format json`: the perf trajectory record future PRs are
// judged against. The machine block (NumCPU, GoMaxProcs, GoVersion, GoArch)
// is part of the record because speedup rows are meaningless without it.
type BenchReport struct {
	Schema     string `json:"schema"`
	Seed       uint64 `json:"seed"`
	Quick      bool   `json:"quick"`
	NumCPU     int    `json:"num_cpu"`
	GoMaxProcs int    `json:"gomaxprocs"`
	GoVersion  string `json:"go_version"`
	GoArch     string `json:"go_arch"`
	// Relabel names the cache-locality vertex ordering the phase rows ran
	// under ("" = natural layout). Part of the comparison key: reports
	// taken under different orderings time different memory layouts.
	Relabel string        `json:"relabel,omitempty"`
	Results []BenchResult `json:"results"`
}

// WriteJSON renders the report as indented JSON.
func (r BenchReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// benchWorkerCounts is the worker sweep of the matching bench gate.
var benchWorkerCounts = []int{1, 2, 4, 8}

// MatchingBench measures the matching-side hot paths of the Theorem 3.1
// pipeline on the T5 runtime family (dense bounded-diversity graphs,
// sparsified at the T5 parameters) and returns the machine-readable report:
//
//   - "T5-phase": the full phase schedule (engine greedy + disjoint
//     discover→commit phases to fixpoint) on the prebuilt sparsifier, per
//     worker count. This is the tentpole metric — phase throughput and the
//     zero-allocation steady state.
//   - "T5-pipeline": sparsify + phase schedule end to end, per worker count.
//   - "greedy-steady": the allocation-free engine greedy on the sparsifier.
//   - "T5-phase-rcm": the phase schedule under RCM cache relabeling — same
//     workload and bit-identical output as "T5-phase", different memory
//     layout, so the two row sets track the relabeling win/loss.
//   - "T21-build": streamed arc ingestion through the chunked two-pass CSR
//     builder, per worker count; EdgesPerSec is arcs ingested per second.
func MatchingBench(cfg Config) BenchReport {
	const eps, beta = 0.3, 2
	delta := params.Delta(beta, eps)
	n := cfg.pick(1500, 8000)
	avg := float64(cfg.pick(256, 512))
	inst := gen.BoundedDiversityInstance(n, beta, avg, cfg.Seed+8)
	g := inst.G
	sp := core.Sparsify(g, delta, cfg.Seed+29)
	name := fmt.Sprintf("diversity%d/n=%d/avg=%g/delta=%d/eps=%g", beta, n, avg, delta, eps)

	rep := BenchReport{
		Schema:     BenchSchema,
		Seed:       cfg.Seed,
		Quick:      cfg.Quick,
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
		GoArch:     runtime.GOARCH,
	}
	if cfg.Relabel != graph.OrderIdentity {
		rep.Relabel = cfg.Relabel.String()
	}

	// T5-phase: phase schedule on the sparsifier, worker sweep, under the
	// configured relabeling (natural layout by default). T5-phase-rcm runs
	// the identical workload under RCM so every report carries both layouts.
	rep.Results = append(rep.Results, sweepPhases("T5-phase", name, sp, eps, cfg.Seed+31, cfg.Relabel)...)
	rep.Results = append(rep.Results, sweepPhases("T5-phase-rcm", name, sp, eps, cfg.Seed+31, graph.OrderRCM)...)

	// T5-pipeline: sparsify + phases end to end, worker sweep, one row set
	// per registered sparsifier backend.
	for _, backendName := range core.BackendNames() {
		var pipeRows []BenchResult
		for _, w := range benchWorkerCounts {
			w := w
			backend, err := core.BackendByName(backendName, w)
			if err != nil {
				panic(err) // registry names come from the registry itself
			}
			var size int
			r := testing.Benchmark(func(b *testing.B) {
				e := matching.NewEngine(matching.Options{Workers: w})
				defer e.Close()
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					spw := backend.Sparsify(g, beta, eps, cfg.Seed+29)
					m := matching.NewMatching(spw.N())
					e.PhaseStructuredApproxInto(spw, m, eps, cfg.Seed+31)
					size = m.Size()
				}
			})
			pipeRows = append(pipeRows, BenchResult{
				Experiment: "T5-pipeline", Instance: name, Backend: backendName,
				Workers:    w,
				Iterations: r.N, NsPerOp: r.NsPerOp(),
				AllocsPerOp: r.AllocsPerOp(), BytesPerOp: r.AllocedBytesPerOp(),
				MatchSize: size,
			})
		}
		fillSpeedups(pipeRows)
		rep.Results = append(rep.Results, pipeRows...)
	}

	// greedy-steady: zero-allocation greedy on the sparsifier.
	{
		var size int
		r := testing.Benchmark(func(b *testing.B) {
			e := matching.NewEngine(matching.Options{Workers: 1})
			defer e.Close()
			m := matching.NewMatching(sp.N())
			e.GreedyShuffledInto(sp, m, cfg.Seed) // warm the arenas
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.GreedyShuffledInto(sp, m, cfg.Seed+uint64(i))
			}
			size = m.Size()
		})
		rows := []BenchResult{{
			Experiment: "greedy-steady", Instance: name, Backend: "gdelta",
			Workers:    1,
			Iterations: r.N, NsPerOp: r.NsPerOp(),
			AllocsPerOp: r.AllocsPerOp(), BytesPerOp: r.AllocedBytesPerOp(),
			MatchSize: size,
		}}
		fillSpeedups(rows)
		rep.Results = append(rep.Results, rows...)
	}

	// T21-build: streamed arc ingestion through the chunked two-pass CSR
	// builder, per worker count. The generator re-streams the identical arc
	// multiset on every pass, so each op is a complete count+fill build.
	{
		bn := cfg.pick(40_000, 250_000)
		const bk, bavg = 4, 64.0
		s := gen.NewDiversityStreamAvgDeg(bn, bk, bavg, cfg.Seed+41)
		arcs := s.ArcsUpperBound()
		bname := fmt.Sprintf("diversity%d-stream/n=%d/avg=%g/arcs=%d", bk, bn, bavg, arcs)
		var rows []BenchResult
		for _, w := range benchWorkerCounts {
			w := w
			r := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					gen.BuildStream(s, graph.ChunkedOptions{Workers: w})
				}
			})
			row := BenchResult{
				Experiment: "T21-build", Instance: bname, Backend: "chunked",
				Workers:    w,
				Iterations: r.N, NsPerOp: r.NsPerOp(),
				AllocsPerOp: r.AllocsPerOp(), BytesPerOp: r.AllocedBytesPerOp(),
			}
			if r.NsPerOp() > 0 {
				row.EdgesPerSec = float64(arcs) / (float64(r.NsPerOp()) * 1e-9)
			}
			rows = append(rows, row)
		}
		fillSpeedups(rows)
		rep.Results = append(rep.Results, rows...)
	}

	// T19-serve: end-to-end served update throughput and latency on the
	// million-vertex instance, per backend and shard count.
	rep.Results = append(rep.Results, serveBenchRows(cfg)...)
	return rep
}

// sweepPhases benchmarks the full phase schedule on g for every worker
// count under the given cache relabeling (OrderIdentity = natural layout),
// reusing one engine and matching per count so the steady state is
// allocation-free (the row's allocs_per_op IS the per-schedule allocation
// count after warm-up — the warm-up run also computes and caches the
// relabeled view, which is part of the engine's steady state).
func sweepPhases(id, instance string, g *graph.Static, eps float64, seed uint64, ord graph.Ordering) []BenchResult {
	var rows []BenchResult
	for _, w := range benchWorkerCounts {
		w := w
		var size int
		r := testing.Benchmark(func(b *testing.B) {
			e := matching.NewEngine(matching.Options{Workers: w, Relabel: ord})
			defer e.Close()
			m := matching.NewMatching(g.N())
			e.PhaseStructuredApproxInto(g, m, eps, seed) // warm-up
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.PhaseStructuredApproxInto(g, m, eps, seed)
			}
			size = m.Size()
		})
		row := BenchResult{
			Experiment: id, Instance: instance, Backend: "gdelta", Workers: w,
			Iterations: r.N, NsPerOp: r.NsPerOp(),
			AllocsPerOp: r.AllocsPerOp(), BytesPerOp: r.AllocedBytesPerOp(),
			MatchSize: size,
		}
		if r.NsPerOp() > 0 {
			row.EdgesPerSec = float64(g.M()) / (float64(r.NsPerOp()) * 1e-9)
		}
		rows = append(rows, row)
	}
	fillSpeedups(rows)
	return rows
}

// fillSpeedups sets SpeedupVs1W on every row from the Workers==1 row of
// the same (Experiment, Backend, Instance). On a single-CPU machine the
// rows are left null: a worker sweep that was serialized onto one core
// measures scheduling overhead, not parallel speedup, and a fabricated
// "1.0x" would read as a measured result downstream.
func fillSpeedups(rows []BenchResult) {
	if runtime.NumCPU() < 2 {
		return
	}
	base := make(map[string]int64)
	for _, r := range rows {
		if r.Workers == 1 {
			base[r.Experiment+"\x00"+r.Backend+"\x00"+r.Instance] = r.NsPerOp
		}
	}
	for i := range rows {
		if b, ok := base[rows[i].Experiment+"\x00"+rows[i].Backend+"\x00"+rows[i].Instance]; ok && rows[i].NsPerOp > 0 {
			s := float64(b) / float64(rows[i].NsPerOp)
			rows[i].SpeedupVs1W = &s
		}
	}
}
