package harness

import (
	"time"

	"repro/internal/dynmatch"
	"repro/internal/gen"
)

// T9 loads a dense bounded-β graph into both dynamic algorithms, applies
// oblivious churn followed by an adaptive adversary, and compares the
// per-update cost profile: the Maintainer's budget is density-independent
// (O((β/ε³)·log(1/ε)) units) while the repair baseline's worst case grows
// with the degree ~ n.
func T9(cfg Config) []*Table {
	const beta, eps = 2, 0.3
	sizes := []int{200, 400}
	churn := cfg.pick(2000, 10000)
	if !cfg.Quick {
		sizes = []int{400, 800, 1600}
	}
	tbl := NewTable("T9", "dynamic update cost: sparsifier maintainer vs repair baseline",
		"density grows with n (avgdeg = n/8): maintainer worst-case units stay ~budget (flat); baseline worst-case grows with the degree; both near-optimal quality",
		"n", "avg deg", "algo", "budget", "units(avg)", "units(max)", "overrun(max)", "ns/update", "quality(min)")
	for _, n := range sizes {
		// Dense regime: average degree scales with n, the setting where the
		// paper's update bound beats degree-dependent baselines.
		inst := gen.BoundedDiversityInstance(n, beta, float64(n)/8, cfg.Seed+12)
		ups := dynmatch.BuildUpdates(inst.G, cfg.Seed+61)
		churnUps := dynmatch.ObliviousChurn(inst.G, churn, cfg.Seed+67)

		mt := dynmatch.New(n, dynmatch.Options{Beta: beta, Eps: eps}, cfg.Seed+71)
		nsM := runUpdates(mt, ups, churnUps)
		qM := dynmatch.AdaptiveAdversary(mt, cfg.pick(200, 600), cfg.pick(100, 200), cfg.Seed+73)
		m := mt.Metrics()
		tbl.AddRow(n, inst.G.AvgDegree(), "maintainer", mt.Budget(),
			float64(m.UnitsTotal)/float64(m.Updates), m.MaxUnitsUpdate, m.MaxOverrun, nsM, qM)

		ob := dynmatch.NewOblivious(n, dynmatch.Options{Beta: beta, Eps: eps}, cfg.Seed+76)
		nsO := runUpdates(ob, ups, churnUps)
		qO := dynmatch.AdaptiveAdversary(ob, cfg.pick(200, 600), cfg.pick(100, 200), cfg.Seed+77)
		o := ob.Metrics()
		tbl.AddRow(n, inst.G.AvgDegree(), "oblivious-ablation", ob.Budget(),
			float64(o.UnitsTotal)/float64(o.Updates), o.MaxUnitsUpdate, o.MaxOverrun, nsO, qO)

		rb := dynmatch.NewRepairBaseline(n)
		nsB := runUpdates(rb, ups, churnUps)
		qB := dynmatch.AdaptiveAdversary(rb, cfg.pick(200, 600), cfg.pick(100, 200), cfg.Seed+79)
		b := rb.Metrics()
		tbl.AddRow(n, inst.G.AvgDegree(), "repair-2approx", "-",
			float64(b.UnitsTotal)/float64(b.Updates), b.MaxUnitsUpdate, "-", nsB, qB)
	}
	return []*Table{tbl}
}

// runUpdates replays the load and churn sequences, returning mean
// nanoseconds per update.
func runUpdates(m dynmatch.Updater, load, churn []dynmatch.Update) float64 {
	start := time.Now()
	for _, u := range load {
		u.Apply(m)
	}
	for _, u := range churn {
		u.Apply(m)
	}
	total := len(load) + len(churn)
	if total == 0 {
		return 0
	}
	return float64(time.Since(start).Nanoseconds()) / float64(total)
}
