package harness

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/matching"
	"repro/internal/params"
)

// T21 is the huge-graph ingestion experiment: instances whose edge lists
// would be painful (or impossible) to materialize are streamed chunk by
// chunk into the two-pass chunked CSR builder, then matched through the
// phase engine under every cache-relabeling ordering.
//
// Three claims are measured:
//
//   - Build: peak live heap during a streamed build stays within the
//     O(CSR) + one-chunk budget — the full packed edge list never exists.
//   - Match: relabeling changes phase-engine throughput but never the
//     output (bit-identical mates per the engine contract).
//   - Ceiling: the engine's edge-scan rate is compared against a measured
//     STREAM-triad memory-bandwidth ceiling, the honest upper bound for a
//     pointer-chasing CSR workload.

// t21Edges returns the target streamed-arc count: ~2·10⁶ quick so the suite
// stays tier-1-sized, 10⁸ full (the headline scale), overridable with
// Config.HugeEdges (`sparsebench -t21-edges`).
func t21Edges(cfg Config) int64 {
	if cfg.HugeEdges > 0 {
		return cfg.HugeEdges
	}
	return int64(cfg.pick(2_000_000, 100_000_000))
}

// streamStats is the measured footprint of one streamed chunked build.
type streamStats struct {
	Arcs     int64   // arcs streamed per pass (duplicates included)
	Chunks   int     // chunks yielded per pass
	BuildMS  float64 // wall time of the full count+fill build
	PeakHeap int64   // max live heap beyond the pre-build baseline, bytes
	Budget   int64   // allowed peak: CSR + builder state + chunk + slack
}

// WithinBudget reports whether the build stayed inside the O(CSR)+chunk
// memory claim.
func (s streamStats) WithinBudget() bool { return s.PeakHeap <= s.Budget }

// buildStreamed runs the two-pass chunked build of s, sampling live heap at
// every chunk boundary, and returns the graph plus footprint statistics.
//
// The budget is the chunked builder's O(CSR) + one-chunk claim made exact:
// offsets 8(n+1) B + fill cursors 8n B + adjacency 8A B (A streamed arcs,
// both orientations, pre-dedup multiplicity) + the largest chunk, padded by
// 25% + 64 MiB for runtime slack. The materializing path would instead hold
// the 8A-byte packed arc list *and* its 8A-byte sort copy alongside the CSR.
func buildStreamed(s gen.EdgeStreamer, arcs int64, workers int) (*graph.Static, streamStats) {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	base := int64(ms.HeapAlloc)
	peak := base
	sample := func() {
		runtime.ReadMemStats(&ms)
		if h := int64(ms.HeapAlloc); h > peak {
			peak = h
		}
	}

	var st streamStats
	var chunkBytes int64
	start := time.Now()
	g := graph.FromStream(s.N(), graph.ChunkedOptions{Workers: workers}, func(yield func([]uint64)) {
		chunks := 0
		s.StreamInto(func(chunk []uint64) {
			if b := int64(len(chunk)) * 8; b > chunkBytes {
				chunkBytes = b
			}
			yield(chunk)
			chunks++
			sample()
		})
		st.Chunks = chunks // both passes stream identically; keep the last
	})
	sample()
	st.BuildMS = float64(time.Since(start).Microseconds()) / 1000.0
	st.Arcs = arcs
	if st.PeakHeap = peak - base; st.PeakHeap < 0 {
		st.PeakHeap = 0
	}
	n := int64(g.N())
	raw := 8*(n+1) + 8*n + 8*arcs + chunkBytes
	st.Budget = raw + raw/4 + 64<<20
	return g, st
}

// triadBandwidth measures sustained memory bandwidth with a STREAM-style
// triad (c[i] = a[i] + 3·b[i]) over arrays far larger than the last-level
// cache, returning the best-of-3 rate in bytes per second. The counted
// traffic is the 24 B/element the kernel demands (read a, read b, write c);
// write-allocate traffic is not charged, which makes the ceiling generous —
// exactly what an upper bound should be.
func triadBandwidth() float64 {
	const n = 1 << 22 // 32 MiB per array, 96 MiB total
	a := make([]float64, n)
	b := make([]float64, n)
	c := make([]float64, n)
	for i := range a {
		a[i] = float64(i)
		b[i] = float64(n - i)
	}
	best := 0.0
	for rep := 0; rep < 3; rep++ {
		start := time.Now()
		for i := 0; i < n; i++ {
			c[i] = a[i] + 3.0*b[i]
		}
		sec := time.Since(start).Seconds()
		if bw := float64(n) * 24 / sec; bw > best {
			best = bw
		}
	}
	runtime.KeepAlive(c)
	return best
}

// t21BytesPerEdge is the traffic model dividing the triad bandwidth into an
// edge-scan ceiling: each scanned arc touches a 4 B neighbor id and a 4 B
// scan-order index, plus ~8 B of amortized per-vertex state (mate, visited
// epoch, snapshot) — 16 B of memory traffic per edge.
const t21BytesPerEdge = 16.0

// T21 runs the huge-graph pipeline: streamed chunked builds with peak-heap
// accounting per family, then the phase engine on the sparsified
// bounded-diversity instance under every relabeling ordering, judged
// against the measured bandwidth ceiling.
func T21(cfg Config) []*Table {
	edges := t21Edges(cfg)
	const k, avg, eps = 4, 128.0, 0.3
	workers := params.Workers(0)
	n := int(float64(edges) * 2 / avg)
	if n < 64 {
		n = 64
	}

	build := NewTable("T21-build", "streamed chunked CSR construction",
		"peak live heap stays within CSR + one chunk — the packed edge list is never materialized",
		"family", "n", "arcs", "m", "chunks", "workers", "build_ms", "Marcs/s",
		"peak_heap_MB", "budget_MB", "within_budget")

	type streamed struct {
		name string
		s    gen.EdgeStreamer
		arcs int64
	}
	div := gen.NewDiversityStreamAvgDeg(n, k, avg, cfg.Seed+61)
	p := avg / float64(max(1, n-1))
	if p > 1 {
		p = 1
	}
	er := gen.NewGnpStream(n, p, cfg.Seed+67)
	families := []streamed{
		{fmt.Sprintf("diversity%d", k), div, div.ArcsUpperBound()},
		{"er", er, er.ArcsUpperBound()},
	}

	var divG *graph.Static
	for _, fam := range families {
		g, st := buildStreamed(fam.s, fam.arcs, workers)
		if fam.name != "er" {
			divG = g
		}
		rate := 0.0
		if st.BuildMS > 0 {
			rate = float64(st.Arcs) / (st.BuildMS * 1e-3) / 1e6
		}
		build.AddRow(fam.name, g.N(), st.Arcs, g.M(), st.Chunks, workers, st.BuildMS, rate,
			float64(st.PeakHeap)/(1<<20), float64(st.Budget)/(1<<20), st.WithinBudget())
	}

	// Ceiling: measured triad bandwidth and the edge-scan rate it implies.
	bw := triadBandwidth()
	ceiling := bw / t21BytesPerEdge
	ceilTbl := NewTable("T21-ceiling", "memory-bandwidth ceiling (STREAM triad)",
		fmt.Sprintf("upper bound for CSR edge scanning at %g B of traffic per edge", t21BytesPerEdge),
		"triad_GB/s", "bytes_per_edge", "ceiling_Medges/s")
	ceilTbl.AddRow(bw/1e9, t21BytesPerEdge, ceiling/1e6)

	// Match: phase engine on the sparsified diversity instance, every
	// ordering, mates pinned bit-identical to the natural layout. Quick
	// mode caps the match instance separately — the phase sweep (4
	// orderings × timed schedules) is far costlier per edge than the build,
	// and the build table already carries the full-scale memory claim.
	matchG := divG
	if maxArcs := int64(cfg.pick(300_000, 1<<62)); div.ArcsUpperBound() > maxArcs {
		mn := int(float64(maxArcs) * 2 / avg)
		ms := gen.NewDiversityStreamAvgDeg(mn, k, avg, cfg.Seed+61)
		matchG, _ = buildStreamed(ms, ms.ArcsUpperBound(), workers)
	}
	delta := params.Delta(k, eps)
	sp := core.Sparsify(matchG, delta, cfg.Seed+71)
	match := NewTable("T21-match", "phase engine under cache relabeling",
		"relabeling changes throughput, never the mates; rates are judged against the triad ceiling",
		"ordering", "workers", "t_phase_ms", "Medges/s", "pct_of_ceiling", "|M|", "bit_identical")
	var refMates []int32
	for _, ord := range append([]graph.Ordering{graph.OrderIdentity}, graph.Orderings()...) {
		e := matching.NewEngine(matching.Options{Workers: workers, Relabel: ord})
		m := matching.NewMatching(sp.N())
		e.PhaseStructuredApproxInto(sp, m, eps, cfg.Seed+73) // warm arenas + relabel view
		t := timeIt(func() { e.PhaseStructuredApproxInto(sp, m, eps, cfg.Seed+73) })
		e.Close()
		mates := m.MatesInto(nil)
		identical := true
		if ord == graph.OrderIdentity {
			refMates = mates
		} else {
			for v := range mates {
				if mates[v] != refMates[v] {
					identical = false
					break
				}
			}
		}
		rate := float64(sp.M()) / (maxf(t, 1e-6) * 1e-3)
		match.AddRow(ord.String(), workers, t, rate/1e6, 100*rate/ceiling, m.Size(), identical)
	}

	return []*Table{build, ceilTbl, match}
}
