package harness

import "repro/internal/graph"

// Config controls the scale of the experiment runners.
type Config struct {
	// Quick shrinks instance sizes and repetition counts so the full suite
	// runs in seconds (used by tests and `sparsebench -quick`).
	Quick bool
	// Seed is the master seed; every experiment derives all randomness
	// from it deterministically.
	Seed uint64
	// ServeUpdates overrides the serving bench gate's workload length
	// (0 keeps the mode default). The gate test uses it to bound tier-1
	// runtime; artifact regeneration leaves it 0.
	ServeUpdates int
	// HugeEdges overrides the T21 huge-graph arc target (0 keeps the mode
	// default: ~2·10⁶ quick, 10⁸ full). `sparsebench -t21-edges`.
	HugeEdges int64
	// Relabel is the cache-locality vertex ordering the bench gate's phase
	// rows run under (OrderIdentity = natural CSR layout). The setting is
	// recorded in the report and -compare refuses to judge reports taken
	// under different orderings, because they time different memory layouts.
	Relabel graph.Ordering
}

// pick returns quick or full depending on the configuration.
func (c Config) pick(quick, full int) int {
	if c.Quick {
		return quick
	}
	return full
}

// Experiment is a named experiment runner producing one or more tables.
type Experiment struct {
	ID    string
	Title string
	Run   func(Config) []*Table
}

// All returns the experiment registry in presentation order.
func All() []Experiment {
	return []Experiment{
		{"T1", "Sparsifier quality vs Δ across families (Thm 2.1)", T1},
		{"T2", "Sparsifier quality vs ε (Thm 2.1)", T2},
		{"T3", "Sparsifier size vs Observation 2.10 bounds", T3},
		{"T4", "Sparsifier arboricity vs Observation 2.12 bound", T4},
		{"T5", "Sequential runtime: sublinear pipeline vs full-graph (Thm 3.1)", T5},
		{"T6", "Sequential runtime vs β (Thm 3.1)", T6},
		{"T7", "Distributed rounds breakdown (Thm 3.2)", T7},
		{"T8", "Distributed message complexity (Thm 3.3)", T8},
		{"T9", "Dynamic update cost and quality vs baseline (Thm 3.5)", T9},
		{"T10", "Lower-bound demonstrations (Lemma 2.13, Obs 2.14)", T10},
		{"T11", "Semi-streaming sparsifier: memory vs stream length", T11},
		{"T12", "MPC sparsification: machine loads and coordinator memory", T12},
		{"T13", "Ablations: sampling method, parallelism, mark-all threshold", T13},
		{"T14", "Probe complexity vs the Ω(n·β) lower bound", T14},
		{"T15", "Dynamic distributed maintenance: memory and messages", T15},
		{"T16", "Fault injection: degradation, self-healing, crash recovery", T16},
		{"T17", "Parallel phase-engine scaling and worker-invariance", T17},
		{"T18", "Sparsifier backend shootout: G_Δ vs EDCS on (un)bounded β", T18},
		{"T19", "Served dynamic matching: throughput, latency, replay conformance", T19},
		{"T20", "Durability torture and overload control: faults, recovery, shedding", T20},
		{"T21", "Huge-graph ingestion: streamed chunked CSR build and relabeled engine throughput", T21},
		{"F1", "Failure-probability concentration vs n (Thm 2.1)", F1},
		{"F2", "Preserved matching fraction vs Δ (figure series)", F2},
		{"F3", "Matching lower bound across families (Lemma 2.2)", F3},
	}
}

// ByID returns the experiment with the given id, or false.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}
