package harness

import (
	"slices"

	"repro/internal/dist"
	"repro/internal/dyndist"
	"repro/internal/faults"
	"repro/internal/gen"
	"repro/internal/matching"
)

// T16 measures graceful degradation under injected faults. Part one runs
// the distributed pipeline against message-drop plans with and without the
// self-healing reliable-delivery adapter: the raw pipeline's matching
// quality collapses as the drop rate grows, while the healed pipeline
// reproduces the fault-free matching bit-for-bit and pays only in extra
// rounds and messages. Part two measures the dynamic distributed
// substrate's crash-restart recovery: the per-recovery message cost stays
// O(Δ), independent of how many edges the graph has.
func T16(cfg Config) []*Table {
	return []*Table{t16Drops(cfg), t16Crash(cfg)}
}

func t16Drops(cfg Config) *Table {
	n := cfg.pick(160, 320)
	rates := []float64{0, 0.05, 0.1, 0.2}
	opt := dist.PipelineOptions{Delta: 4, DeltaAlpha: 6, AugIters: 12}
	tbl := NewTable("T16a", "pipeline degradation vs message-drop rate (unitdisk)",
		"raw loses matching edges as drops grow; the reliable adapter recovers the fault-free matching exactly, paying rounds+messages",
		"drop", "exact", "ff_size", "raw_size", "healed_size", "bitident", "ff_rounds", "healed_rounds", "ff_msgs", "healed_msgs", "msg_overhead")
	inst := gen.UnitDiskInstance(n, 36, cfg.Seed+16)
	exact := matching.MaximumGeneral(inst.G).Size()
	ff, ffs := dist.ApproxMatchingPipeline(inst.G, inst.Beta, 0.3, opt, cfg.Seed+61)
	for _, rate := range rates {
		plan := faults.Plan{Seed: cfg.Seed + 100, DropRate: rate}
		raw, _ := dist.ApproxMatchingPipeline(inst.G, inst.Beta, 0.3, opt, cfg.Seed+61,
			dist.WithInterceptor(plan.Injector()))
		healed, hs := dist.ReliableApproxMatchingPipeline(inst.G, inst.Beta, 0.3, opt,
			dist.ReliableOptions{}, plan.Injector(), cfg.Seed+61)
		overhead := float64(hs.Total.Messages) / float64(max(1, int(ffs.Total.Messages)))
		tbl.AddRow(rate, exact, ff.Size(), raw.Size(), healed.Size(),
			slices.Equal(ff.Mates(), healed.Mates()),
			ffs.Total.Rounds, hs.Total.Rounds,
			ffs.Total.Messages, hs.Total.Messages, overhead)
	}
	return tbl
}

func t16Crash(cfg Config) *Table {
	n := cfg.pick(200, 400)
	crashes := cfg.pick(20, 50)
	deltas := []int{2, 4, 8}
	tbl := NewTable("T16b", "dyndist crash-restart recovery cost vs Δ (near-regular, deg 4Δ)",
		"a restarted node rebuilds reservoir+sparsifier view+matching in O(Δ) messages; the bound is flat in n and m",
		"delta", "deg", "m", "recoveries", "avg_msgs", "max_msgs", "bound 4Δ+2d+2(2Δ+d+1)", "valid")
	for _, delta := range deltas {
		d := 4 * delta
		nw := dyndist.NewNetwork(n, delta, cfg.Seed+31)
		g := gen.RandomRegularish(n, d, cfg.Seed+37)
		g.ForEachEdge(func(u, v int32) { nw.Insert(u, v) })
		for i := 0; i < crashes; i++ {
			nw.CrashRestart(int32((i * 7919) % n))
		}
		st := nw.Stats()
		valid := nw.Validate() == nil
		bound := int64(4*delta + 2*d + 2*(2*delta+d+1))
		tbl.AddRow(delta, d, g.M(), st.Recoveries,
			float64(st.RecoveryMsgs)/float64(max(1, int(st.Recoveries))),
			st.MaxMsgsRecovery, bound, valid)
	}
	return tbl
}
