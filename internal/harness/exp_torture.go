package harness

import (
	"net"
	"slices"
	"time"

	"repro/internal/cli"
	"repro/internal/faults"
	"repro/internal/serve"
	"repro/internal/serve/wire"
)

// T20 measures the robustness layer end to end: the durability torture
// (a storage fault injected at every faultable operation of the
// checkpoint write path, then crash-recovery from the surviving
// generations) and the overload control loop (a flooding client against
// a small admission quota). Both tables end in a bitident column — the
// point of the whole layer is that neither storage faults nor load
// shedding can bend the matching away from a direct replay.
func T20(cfg Config) []*Table {
	n := cfg.pick(80, 160)
	churn := cfg.pick(240, 480)
	const batch = 20

	torture := NewTable("T20", "durability torture: one storage fault per faultable checkpoint op, then recovery",
		"every faulted run recovers onto a valid generation and replays to the never-crashed matching; corrupt newest generations are skipped, not trusted",
		"backend", "fault_points", "faulted_runs", "recovered", "gens_skipped", "bitident")
	overload := NewTable("T20", "overload control: flooding client vs admission quota",
		"the quota sheds work instead of queueing it, the client's backoff loop resends, and the committed matching is still bit-identical",
		"backend", "quota", "batches", "shed", "retry_pauses", "bitident")

	for _, backendName := range serve.BackendNames() {
		tr, err := cli.MakeTrace("diversity2", n, 8, churn, cfg.Seed+51)
		if err != nil {
			panic(err) // family name is a literal; cannot fail
		}
		ups := make([]wire.Update, len(tr.Updates))
		for i, u := range tr.Updates {
			ups[i] = wire.Update{Insert: u.Insert, U: u.U, V: u.V}
		}
		want := directMates(backendName, tr.N, ups, cfg.Seed+53)

		// Dry run: count the faultable ops of a fully-checkpointed pass.
		dry := faults.NewStorageInjector(faults.NewMemFS(), faults.StoragePlan{})
		tortureRun(backendName, tr.N, ups, batch, cfg.Seed+53, dry)
		steps := dry.Ops()

		// One run per (step, fault kind that can land on that step). The
		// write path is strictly [write, fsync, rename, syncdir], so the
		// kind map below covers every op with every fault it can express.
		kindsFor := map[int][]faults.StorageFault{
			0: {faults.FaultTornWrite, faults.FaultBitFlip},
			1: {faults.FaultSyncFail},
			2: {faults.FaultRenameFail},
			3: {faults.FaultSyncFail},
		}
		runs, recovered, skipped, ident := 0, 0, 0, true
		for step := 0; step < steps; step++ {
			for _, kind := range kindsFor[step%4] {
				mem := faults.NewMemFS()
				inj := faults.NewStorageInjector(mem, faults.StoragePlan{Step: step, Fault: kind})
				tortureRun(backendName, tr.N, ups, batch, cfg.Seed+53, inj)
				runs++
				c, report, err := serve.RestoreLatest(mem, "ck")
				if err != nil {
					continue // not recovered; the column will show it
				}
				recovered++
				skipped += len(report.Skipped)
				s, err := serve.NewFromCheckpoint(serve.Config{Shards: 2}, c)
				if err != nil {
					panic(err)
				}
				// Exactly-once sequencing dedups the already-applied prefix,
				// so recovery replay is simply "send the trace again".
				mates, _ := streamTrace(s, ups, batch, serve.ClientOptions{})
				s.Shutdown()
				ident = ident && slices.Equal(mates, want)
			}
		}
		torture.AddRow(backendName, steps, runs, recovered, skipped, ident && recovered == runs)

		// Overload: a 64-deep send window against a quota of 8.
		const quota = 8
		s, err := serve.New(serve.Config{
			N: tr.N, Shards: 2, Beta: 2, Eps: 0.3, Seed: cfg.Seed + 53,
			Backend: backendName, MaxInflight: quota,
		})
		if err != nil {
			panic(err)
		}
		var pauses int64
		opts := serve.ClientOptions{
			MaxPasses: 64,
			Backoff:   serve.Backoff{BaseNanos: int64(time.Microsecond), MaxNanos: int64(time.Millisecond), Seed: cfg.Seed},
			Sleep:     func(nanos int64) { pauses++; time.Sleep(time.Duration(nanos)) },
		}
		mates, pairs := streamTrace(s, ups, batch, opts)
		s.Shutdown()
		shed := int64(0)
		for _, p := range pairs {
			if p.Name == "loadshed_batches" {
				shed = p.Value
			}
		}
		batches := (len(ups) + batch - 1) / batch
		overload.AddRow(backendName, quota, batches, shed, pauses, slices.Equal(mates, want))
	}
	return []*Table{torture, overload}
}

// directMates replays the updates on a bare backend instance — the ground
// truth both T20 tables compare against.
func directMates(backendName string, n int, ups []wire.Update, seed uint64) []int32 {
	b, err := serve.BackendByName(backendName)
	if err != nil {
		panic(err)
	}
	m, err := b.New(n, 2, 0.3, seed)
	if err != nil {
		panic(err)
	}
	for _, u := range ups {
		if u.Insert {
			m.Insert(u.U, u.V)
		} else {
			m.Delete(u.U, u.V)
		}
	}
	return m.Matching().Mates()
}

// tortureRun streams the whole trace through a server checkpointing onto
// fs (auto every 4 batches plus a final explicit one). Checkpoint write
// errors are tolerated — that is the scenario under test; the apply loop
// must keep serving through them.
func tortureRun(backendName string, n int, ups []wire.Update, batch int, seed uint64, fs faults.FS) {
	s, err := serve.New(serve.Config{
		N: n, Shards: 2, Beta: 2, Eps: 0.3, Seed: seed, Backend: backendName,
		CheckpointDir: "ck", CheckpointEvery: 4, FS: fs,
	})
	if err != nil {
		panic(err)
	}
	streamTrace(s, ups, batch, serve.ClientOptions{})
	s.CheckpointNow() // failure tolerated: a faulted final generation is the point
	s.Shutdown()
}

// streamTrace drives a started server over a loopback listener and
// returns the served matching and final stats counters.
func streamTrace(s *serve.Server, ups []wire.Update, batch int, opts serve.ClientOptions) ([]int32, []wire.StatPair) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	go s.Serve(l)
	c, err := serve.DialOptions(l.Addr().String(), opts)
	if err != nil {
		panic(err)
	}
	defer c.Close()
	if err := c.SendUpdates(ups, batch); err != nil {
		panic(err)
	}
	mates, _, err := c.Matching()
	if err != nil {
		panic(err)
	}
	pairs, err := c.Stats()
	if err != nil {
		panic(err)
	}
	l.Close()
	return mates, pairs
}
