package harness

import (
	"math"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/matching"
)

// T18 is the sparsifier-backend shootout: every registered backend runs on
// certified bounded-β families AND on adversarial unbounded-β instances
// (the hidden-matching construction, G(n, p)), and the blossom oracle
// measures the quality ratio |MCM(G)| / |MCM(H)| next to the sparsifier
// size and construction time. The separation the table demonstrates:
//
//   - on bounded-β families both backends sit near ratio 1;
//   - on the hidden-matching instance G_Δ's ratio degrades (Theorem 2.1's
//     precondition is violated: the caller hands the backends β=1 while the
//     true neighborhood independence is ≥ pairs, so random marking drowns
//     the hidden perfect matching in decoy edges), while EDCS stays within
//     its 3/2 + O(λ) arbitrary-graph guarantee;
//   - on G(n, p) both backends stay near 1 even though β = Ω(log n): large
//     β alone does not break G_Δ — the adversarial structure does.
func T18(cfg Config) []*Table {
	const eps = 0.3
	n := cfg.pick(240, 600)
	tbl := NewTable("T18", "sparsifier backend shootout (ε=0.3)",
		"G_Δ needs bounded β: near-1 ratios on certified families, degrading on the hidden-matching instance; EDCS holds ≤ 3/2+O(λ) everywhere",
		"instance", "β bound", "backend", "ratio", "|E(H)|", "|E(G)|", "build")

	// runExact measures every backend against a precomputed |MCM(G)| — the
	// hidden-matching instance has a closed-form optimum, so running the
	// blossom oracle on its dense base graph would be pure waste.
	runExact := func(name, betaLabel string, g *gen.Instance, exact int) {
		for _, backend := range core.Backends(0) {
			start := time.Now()
			h := backend.Sparsify(g.G, g.Beta, eps, cfg.Seed+41)
			build := time.Since(start)
			sparse := matching.MaximumGeneral(h).Size()
			ratio := math.Inf(1)
			if sparse > 0 {
				ratio = float64(exact) / float64(sparse)
			} else if exact == 0 {
				ratio = 1
			}
			tbl.AddRow(name, betaLabel, backend.Name(), ratio, h.M(), g.G.M(), build.Round(time.Microsecond))
		}
	}
	run := func(name, betaLabel string, g *gen.Instance) {
		runExact(name, betaLabel, g, matching.MaximumGeneral(g.G).Size())
	}

	// Certified bounded-β families: both backends should sit near ratio 1.
	for _, fam := range []string{"unitdisk", "diversity4", "clique"} {
		inst := gen.Families()[fam](n, cfg.Seed+3)
		run(fam, strconv.Itoa(inst.Beta), &inst)
	}

	// Unbounded-β adversarial instance. The backends still receive β=1 —
	// the point is exactly that the caller does not know the true
	// neighborhood independence (here ≥ pairs). The sizing matters: decoy
	// degree must exceed G_Δ's mark-all threshold 2Δ(1, ε) = 30, or the
	// low-degree tweak keeps every edge and hides the degradation.
	pairs := cfg.pick(360, 720)
	decoys := cfg.pick(72, 96)
	hm := gen.HiddenMatchingInstance(pairs, decoys)
	hmInst := gen.Instance{Name: hm.Name, G: hm.G, Beta: 1}
	runExact(hm.Name, "≥"+strconv.Itoa(hm.BetaLowerBound()), &hmInst,
		gen.HiddenMatchingMCM(pairs, decoys))

	gnp := gen.GnpUnboundedInstance(cfg.pick(120, 240), 0.3, cfg.Seed+5)
	gnpInst := gen.Instance{Name: gnp.Name, G: gnp.G, Beta: 2}
	run(gnp.Name, "≥"+strconv.Itoa(gnp.BetaLowerBound()), &gnpInst)

	return []*Table{tbl}
}
