package harness

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestMatchingBenchQuick runs the benchmark gate in quick mode and checks
// the report's invariants: schema tag, machine block, the full worker sweep
// per experiment, speedup baselines, worker-invariant matching sizes, and
// the zero-allocation steady state of the engine-resident experiments.
func TestMatchingBenchQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark gate takes a few seconds")
	}
	rep := MatchingBench(Config{Quick: true, Seed: 7})
	if rep.Schema != BenchSchema {
		t.Fatalf("schema = %q, want %q", rep.Schema, BenchSchema)
	}
	if rep.NumCPU < 1 || rep.GoMaxProcs < 1 || rep.GoVersion == "" || rep.GoArch == "" {
		t.Fatalf("machine block incomplete: %+v", rep)
	}
	byExp := map[string][]BenchResult{}
	for _, r := range rep.Results {
		byExp[r.Experiment] = append(byExp[r.Experiment], r)
	}
	for _, exp := range []string{"T5-phase", "T5-pipeline"} {
		rows := byExp[exp]
		if len(rows) != len(benchWorkerCounts) {
			t.Fatalf("%s: %d rows, want %d", exp, len(rows), len(benchWorkerCounts))
		}
		for i, r := range rows {
			if r.Workers != benchWorkerCounts[i] {
				t.Errorf("%s[%d]: workers = %d, want %d", exp, i, r.Workers, benchWorkerCounts[i])
			}
			if r.NsPerOp <= 0 || r.Iterations <= 0 {
				t.Errorf("%s w=%d: unmeasured row %+v", exp, r.Workers, r)
			}
			if r.SpeedupVs1W <= 0 {
				t.Errorf("%s w=%d: speedup %v not filled", exp, r.Workers, r.SpeedupVs1W)
			}
			if r.Workers == 1 && r.SpeedupVs1W != 1 {
				t.Errorf("%s: baseline speedup = %v, want 1", exp, r.SpeedupVs1W)
			}
			if r.MatchSize <= 0 {
				t.Errorf("%s w=%d: match size %d", exp, r.Workers, r.MatchSize)
			}
		}
	}
	// The matching stage is worker-invariant: every T5-phase row must report
	// the same size (T5-pipeline may differ across workers — the sparsifier
	// keys RNG streams by vertex range).
	for _, r := range byExp["T5-phase"] {
		if r.MatchSize != byExp["T5-phase"][0].MatchSize {
			t.Errorf("T5-phase: |M| varies with workers: %d vs %d", r.MatchSize, byExp["T5-phase"][0].MatchSize)
		}
		if r.AllocsPerOp != 0 {
			t.Errorf("T5-phase w=%d: %d allocs/op in steady state, want 0", r.Workers, r.AllocsPerOp)
		}
	}
	gr := byExp["greedy-steady"]
	if len(gr) != 1 {
		t.Fatalf("greedy-steady: %d rows, want 1", len(gr))
	}
	if gr[0].AllocsPerOp != 0 {
		t.Errorf("greedy-steady: %d allocs/op, want 0", gr[0].AllocsPerOp)
	}

	// Round-trip: the emitted JSON must decode back to the same report.
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var back BenchReport
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if back.Schema != rep.Schema || len(back.Results) != len(rep.Results) {
		t.Fatalf("round-trip mismatch: %d results, want %d", len(back.Results), len(rep.Results))
	}
}
