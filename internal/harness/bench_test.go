package harness

import (
	"bytes"
	"encoding/json"
	"runtime"
	"testing"
)

// TestMatchingBenchQuick runs the benchmark gate in quick mode and checks
// the report's invariants: schema tag, machine block, the full worker sweep
// per experiment and backend, speedup baselines (null on single-CPU
// machines), worker-invariant matching sizes, and the zero-allocation
// steady state of the engine-resident experiments.
func TestMatchingBenchQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark gate takes a few seconds")
	}
	// ServeUpdates bounds the million-vertex T19-serve rows so the gate
	// test stays tier-1-sized; artifact regeneration uses the full quick
	// workload.
	rep := MatchingBench(Config{Quick: true, Seed: 7, ServeUpdates: 20_000})
	if rep.Schema != BenchSchema {
		t.Fatalf("schema = %q, want %q", rep.Schema, BenchSchema)
	}
	if rep.NumCPU < 1 || rep.GoMaxProcs < 1 || rep.GoVersion == "" || rep.GoArch == "" {
		t.Fatalf("machine block incomplete: %+v", rep)
	}
	multiCPU := runtime.NumCPU() > 1
	byExp := map[string][]BenchResult{}
	for _, r := range rep.Results {
		if r.Backend == "" {
			t.Fatalf("%s w=%d: row without backend", r.Experiment, r.Workers)
		}
		byExp[r.Experiment+"/"+r.Backend] = append(byExp[r.Experiment+"/"+r.Backend], r)
	}
	for _, exp := range []string{"T5-phase/gdelta", "T5-phase-rcm/gdelta", "T5-pipeline/gdelta", "T5-pipeline/edcs"} {
		rows := byExp[exp]
		if len(rows) != len(benchWorkerCounts) {
			t.Fatalf("%s: %d rows, want %d", exp, len(rows), len(benchWorkerCounts))
		}
		for i, r := range rows {
			if r.Workers != benchWorkerCounts[i] {
				t.Errorf("%s[%d]: workers = %d, want %d", exp, i, r.Workers, benchWorkerCounts[i])
			}
			if r.NsPerOp <= 0 || r.Iterations <= 0 {
				t.Errorf("%s w=%d: unmeasured row %+v", exp, r.Workers, r)
			}
			if multiCPU {
				if r.SpeedupVs1W == nil || *r.SpeedupVs1W <= 0 {
					t.Errorf("%s w=%d: speedup %v not filled on a %d-CPU machine",
						exp, r.Workers, r.SpeedupVs1W, rep.NumCPU)
				} else if r.Workers == 1 && *r.SpeedupVs1W != 1 {
					t.Errorf("%s: baseline speedup = %v, want 1", exp, *r.SpeedupVs1W)
				}
			} else if r.SpeedupVs1W != nil {
				t.Errorf("%s w=%d: speedup %v claimed on a single-CPU machine (must be null)",
					exp, r.Workers, *r.SpeedupVs1W)
			}
			if r.MatchSize <= 0 {
				t.Errorf("%s w=%d: match size %d", exp, r.Workers, r.MatchSize)
			}
			// Both the sparsifier and the matcher are worker-invariant, so
			// every row of a (experiment, backend) sweep reports one size.
			if r.MatchSize != rows[0].MatchSize {
				t.Errorf("%s: |M| varies with workers: %d vs %d", exp, r.MatchSize, rows[0].MatchSize)
			}
		}
	}
	for _, exp := range []string{"T5-phase/gdelta", "T5-phase-rcm/gdelta"} {
		for _, r := range byExp[exp] {
			if r.AllocsPerOp != 0 {
				t.Errorf("%s w=%d: %d allocs/op in steady state, want 0", exp, r.Workers, r.AllocsPerOp)
			}
			if r.EdgesPerSec <= 0 {
				t.Errorf("%s w=%d: edges_per_sec %v not filled", exp, r.Workers, r.EdgesPerSec)
			}
		}
	}
	// Relabeling is a layout view: the RCM sweep must report the exact
	// matching sizes of the natural-layout sweep.
	for i, r := range byExp["T5-phase-rcm/gdelta"] {
		if ref := byExp["T5-phase/gdelta"][i]; r.MatchSize != ref.MatchSize {
			t.Errorf("T5-phase-rcm w=%d: |M|=%d, natural layout %d", r.Workers, r.MatchSize, ref.MatchSize)
		}
	}

	// T21-build rows: full worker sweep with a measured ingest rate.
	brows := byExp["T21-build/chunked"]
	if len(brows) != len(benchWorkerCounts) {
		t.Fatalf("T21-build: %d rows, want %d", len(brows), len(benchWorkerCounts))
	}
	for _, r := range brows {
		if r.NsPerOp <= 0 || r.EdgesPerSec <= 0 {
			t.Errorf("T21-build w=%d: unmeasured row %+v", r.Workers, r)
		}
	}
	gr := byExp["greedy-steady/gdelta"]
	if len(gr) != 1 {
		t.Fatalf("greedy-steady: %d rows, want 1", len(gr))
	}
	if gr[0].AllocsPerOp != 0 {
		t.Errorf("greedy-steady: %d allocs/op, want 0", gr[0].AllocsPerOp)
	}

	// T19-serve rows: one sweep per backend, serving metrics populated, and
	// the sequenced-apply determinism contract — the matching size must not
	// vary with the shard count.
	for _, backend := range []string{"gdelta", "edcs"} {
		rows := byExp["T19-serve/"+backend]
		if len(rows) != len(serveBenchShards) {
			t.Fatalf("T19-serve/%s: %d rows, want %d", backend, len(rows), len(serveBenchShards))
		}
		for i, r := range rows {
			if r.Workers != serveBenchShards[i] {
				t.Errorf("T19-serve/%s[%d]: shards = %d, want %d", backend, i, r.Workers, serveBenchShards[i])
			}
			if r.UpdatesPerSec <= 0 || r.NsPerOp <= 0 {
				t.Errorf("T19-serve/%s shards=%d: unmeasured row %+v", backend, r.Workers, r)
			}
			if r.P99LatencyNs < r.P50LatencyNs || r.P50LatencyNs <= 0 {
				t.Errorf("T19-serve/%s shards=%d: latency p50=%d p99=%d", backend, r.Workers, r.P50LatencyNs, r.P99LatencyNs)
			}
			if r.MatchSize != rows[0].MatchSize {
				t.Errorf("T19-serve/%s: |M| varies with shards: %d vs %d", backend, r.MatchSize, rows[0].MatchSize)
			}
		}
	}

	// Round-trip: the emitted JSON must decode back to the same report,
	// including null vs non-null speedups.
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var back BenchReport
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if back.Schema != rep.Schema || len(back.Results) != len(rep.Results) {
		t.Fatalf("round-trip mismatch: %d results, want %d", len(back.Results), len(rep.Results))
	}
	for i := range back.Results {
		if (back.Results[i].SpeedupVs1W == nil) != (rep.Results[i].SpeedupVs1W == nil) {
			t.Fatalf("row %d: speedup nullability changed in round trip", i)
		}
	}
}

// TestFillSpeedupsSingleCPUContract documents fillSpeedups' gate directly:
// rows keep a null speedup unless the machine can actually run workers in
// parallel. (On multi-CPU machines the full gate test covers the filled
// branch; this pins the shape either way.)
func TestFillSpeedupsSingleCPUContract(t *testing.T) {
	rows := []BenchResult{
		{Experiment: "x", Instance: "i", Backend: "gdelta", Workers: 1, NsPerOp: 100},
		{Experiment: "x", Instance: "i", Backend: "gdelta", Workers: 2, NsPerOp: 50},
		{Experiment: "x", Instance: "i", Backend: "edcs", Workers: 1, NsPerOp: 300},
	}
	fillSpeedups(rows)
	if runtime.NumCPU() < 2 {
		for _, r := range rows {
			if r.SpeedupVs1W != nil {
				t.Errorf("w=%d: speedup %v on single-CPU machine", r.Workers, *r.SpeedupVs1W)
			}
		}
		return
	}
	if rows[1].SpeedupVs1W == nil || *rows[1].SpeedupVs1W != 2 {
		t.Errorf("w=2 speedup = %v, want 2", rows[1].SpeedupVs1W)
	}
	// Backends must not share baselines.
	if rows[2].SpeedupVs1W == nil || *rows[2].SpeedupVs1W != 1 {
		t.Errorf("edcs baseline speedup = %v, want 1", rows[2].SpeedupVs1W)
	}
}
