package harness

import (
	"math"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/matching"
	"repro/internal/params"
)

// qualityRatio returns |MCM(G)| / |MCM(G_Δ)| using the exact blossom
// algorithm on both graphs.
func qualityRatio(g *gen.Instance, delta int, seed uint64) (ratio float64, exact, sparse int) {
	exact = matching.MaximumGeneral(g.G).Size()
	sp := core.Sparsify(g.G, delta, seed)
	sparse = matching.MaximumGeneral(sp).Size()
	if sparse == 0 {
		if exact == 0 {
			return 1, exact, sparse
		}
		return math.Inf(1), exact, sparse
	}
	return float64(exact) / float64(sparse), exact, sparse
}

// T1 measures the approximation ratio across families as Δ sweeps through
// multiples of the lean calibration Δ* = ⌈(β/ε)·ln(24/ε)⌉ at ε = 0.2.
func T1(cfg Config) []*Table {
	const eps = 0.2
	n := cfg.pick(300, 1200)
	reps := cfg.pick(2, 5)
	tbl := NewTable("T1", "approximation ratio vs Δ multiplier (ε=0.2)",
		"ratio ≤ 1+ε once Δ reaches Δ* = DeltaLean(β, ε); whole graph ⇒ ratio 1",
		"family", "β", "Δ*", "mult", "Δ", "ratio(mean)", "ratio(max)")
	for _, name := range gen.FamilyNames() {
		inst := gen.Families()[name](n, cfg.Seed+1)
		dstar := params.Delta(inst.Beta, eps)
		for _, mult := range []float64{0.25, 0.5, 1, 2} {
			delta := max(1, int(float64(dstar)*mult))
			var ratios []float64
			for r := 0; r < reps; r++ {
				q, _, _ := qualityRatio(&inst, delta, cfg.Seed+uint64(100*r)+7)
				ratios = append(ratios, q)
			}
			s := Summarize(ratios)
			tbl.AddRow(name, inst.Beta, dstar, mult, delta, s.Mean, s.Max)
		}
	}
	return []*Table{tbl}
}

// T2 fixes Δ = DeltaLean(β, ε) and sweeps ε, checking ratio ≤ 1+ε.
func T2(cfg Config) []*Table {
	n := cfg.pick(300, 1200)
	reps := cfg.pick(2, 5)
	tbl := NewTable("T2", "approximation ratio vs ε at Δ = DeltaLean(β, ε)",
		"measured ratio stays ≤ 1+ε (w.h.p.) for every ε",
		"family", "β", "ε", "Δ", "ratio(mean)", "ratio(max)", "1+ε", "ok")
	for _, name := range []string{"line", "unitdisk", "diversity4", "clique"} {
		inst := gen.Families()[name](n, cfg.Seed+2)
		for _, eps := range []float64{0.5, 0.3, 0.2, 0.1} {
			delta := params.Delta(inst.Beta, eps)
			var ratios []float64
			for r := 0; r < reps; r++ {
				q, _, _ := qualityRatio(&inst, delta, cfg.Seed+uint64(31*r)+13)
				ratios = append(ratios, q)
			}
			s := Summarize(ratios)
			tbl.AddRow(name, inst.Beta, eps, delta, s.Mean, s.Max, 1+eps, s.Max <= 1+eps)
		}
	}
	return []*Table{tbl}
}

// T3 compares the sparsifier size against the Observation 2.10 bound
// 2·MCM·(Δeff+β) with Δeff = 2Δ (the low-degree tweak) and against n·Δeff.
func T3(cfg Config) []*Table {
	n := cfg.pick(400, 2000)
	delta := 8
	tbl := NewTable("T3", "sparsifier size vs bounds (Δ=8)",
		"|E(G_Δ)| ≤ 2·|MCM|·(2Δ+β) ≤ 4|MCM|Δeff; sharper than nΔeff for small MCM",
		"family", "β", "n", "m", "|E(G_Δ)|", "MCM", "2·MCM·(2Δ+β)", "n·2Δ", "ok")
	for _, name := range gen.FamilyNames() {
		inst := gen.Families()[name](n, cfg.Seed+3)
		sp := core.Sparsify(inst.G, delta, cfg.Seed+17)
		mcm := matching.MaximumGeneral(inst.G).Size()
		bound := core.SizeUpperBound(mcm, 2*delta, inst.Beta)
		naive := inst.G.N() * 2 * delta
		tbl.AddRow(name, inst.Beta, inst.G.N(), inst.G.M(), sp.M(), mcm, bound, naive, sp.M() <= bound)
	}
	return []*Table{tbl}
}

// T4 reports degeneracy (≥ arboricity ≥ degeneracy/2-ish) and the peeling
// density lower bound of G_Δ against the Observation 2.12 bound 2·Δeff.
func T4(cfg Config) []*Table {
	n := cfg.pick(400, 2000)
	delta := 6
	tbl := NewTable("T4", "sparsifier uniform sparsity (Δ=6, Δeff=2Δ)",
		"arboricity(G_Δ) ≤ 2·Δeff: density LB ≤ 2Δeff and degeneracy ≤ 2·(2Δeff)−1",
		"family", "degeneracy", "densityLB", "bound 2Δeff", "ok")
	for _, name := range gen.FamilyNames() {
		inst := gen.Families()[name](n, cfg.Seed+4)
		sp := core.Sparsify(inst.G, delta, cfg.Seed+23)
		deg, _ := core.Degeneracy(sp)
		lb := core.DensityLowerBound(sp)
		bound := core.ArboricityUpperBound(core.Options{Delta: delta})
		tbl.AddRow(name, deg, lb, bound, lb <= bound && deg <= 2*bound-1)
	}
	return []*Table{tbl}
}

// F1 estimates the failure probability P(ratio > 1+ε) as n grows, showing
// the with-high-probability concentration of Theorem 2.1.
func F1(cfg Config) []*Table {
	const eps = 0.3
	trials := cfg.pick(10, 40)
	sizes := []int{100, 200, 400}
	if !cfg.Quick {
		sizes = []int{200, 400, 800, 1600}
	}
	tbl := NewTable("F1", "failure frequency vs n (ε=0.3, diversity4 family)",
		"P(ratio > 1+ε) vanishes as n grows",
		"n", "Δ", "trials", "failures", "failure rate", "ratio(max)")
	for _, n := range sizes {
		inst := gen.BoundedDiversityInstance(n, 4, 48, cfg.Seed+5)
		delta := params.Delta(inst.Beta, eps)
		failures := 0
		worst := 0.0
		for tr := 0; tr < trials; tr++ {
			q, _, _ := qualityRatio(&inst, delta, cfg.Seed+uint64(tr)*101+41)
			if q > 1+eps {
				failures++
			}
			if q > worst {
				worst = q
			}
		}
		tbl.AddRow(n, delta, trials, failures, float64(failures)/float64(trials), worst)
	}
	return []*Table{tbl}
}

// F2 produces the figure series: preserved matching fraction |M_Δ|/|M| as Δ
// sweeps, one series per family — rising sharply then plateauing near 1.
func F2(cfg Config) []*Table {
	n := cfg.pick(300, 1000)
	reps := cfg.pick(2, 4)
	tbl := NewTable("F2", "preserved MCM fraction vs Δ (figure series)",
		"each family's curve rises with Δ and plateaus at 1",
		"family", "Δ", "|M_Δ|/|M| (mean)", "min")
	for _, name := range gen.FamilyNames() {
		inst := gen.Families()[name](n, cfg.Seed+6)
		exact := matching.MaximumGeneral(inst.G).Size()
		if exact == 0 {
			continue
		}
		for _, delta := range []int{1, 2, 4, 8, 16, 32} {
			var fr []float64
			for r := 0; r < reps; r++ {
				sp := core.Sparsify(inst.G, delta, cfg.Seed+uint64(r*53)+3)
				fr = append(fr, float64(matching.MaximumGeneral(sp).Size())/float64(exact))
			}
			s := Summarize(fr)
			tbl.AddRow(name, delta, s.Mean, s.Min)
		}
	}
	return []*Table{tbl}
}

// F3 validates Lemma 2.2: |MCM| ≥ n'/(β+2) on every family.
func F3(cfg Config) []*Table {
	n := cfg.pick(300, 1500)
	tbl := NewTable("F3", "matching lower bound (Lemma 2.2)",
		"|MCM|·(β+2) ≥ n' for every bounded-β family",
		"family", "β", "n'", "MCM", "bound ⌈n'/(β+2)⌉", "slack", "ok")
	for _, name := range gen.FamilyNames() {
		inst := gen.Families()[name](n, cfg.Seed+7)
		mcm := matching.MaximumGeneral(inst.G).Size()
		ni := inst.G.NonIsolated()
		lb := core.MatchingLowerBound(ni, inst.Beta)
		slack := 0.0
		if lb > 0 {
			slack = float64(mcm) / float64(lb)
		}
		tbl.AddRow(name, inst.Beta, ni, mcm, lb, slack, mcm >= lb)
	}
	return []*Table{tbl}
}
