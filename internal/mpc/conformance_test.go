package mpc_test

// Adoption of the internal/testkit conformance harness: the MPC simulation
// must satisfy the checkers for every machine count (the partition changes
// which machine samples a vertex's edges, not the distribution), with the
// pure reservoir mark cap Δ' = Δ, and must be deterministic for a fixed
// (machines, seed) pair.

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/mpc"
	"repro/internal/params"
	"repro/internal/testkit"
)

func TestMPCConformanceAcrossMachines(t *testing.T) {
	const eps = 0.3
	inst := testkit.Certify(gen.UnitDiskInstance(120, 64, 19))
	delta := params.Delta(inst.Beta, eps)
	for _, machines := range []int{1, 4, 9} {
		sp, stats := mpc.SparsifyMPC(inst.G, delta, machines, 23)
		if err := testkit.CheckSparsifierConformance(inst, sp, delta); err != nil {
			t.Errorf("machines=%d: %v", machines, err)
		}
		if err := testkit.CheckSparsifierRatio(inst, sp, eps); err != nil {
			t.Errorf("machines=%d: %v", machines, err)
		}
		if stats.Machines != machines {
			t.Errorf("stats report %d machines, want %d", stats.Machines, machines)
		}
		again, _ := mpc.SparsifyMPC(inst.G, delta, machines, 23)
		if err := testkit.CheckSameGraph(sp, again); err != nil {
			t.Errorf("machines=%d: same-seed rebuild differs: %v", machines, err)
		}
	}
}
