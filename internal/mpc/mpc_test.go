package mpc

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/matching"
)

func TestSparsifyMPCValidation(t *testing.T) {
	g := gen.Path(3)
	for _, fn := range []func(){
		func() { SparsifyMPC(g, 0, 2, 1) },
		func() { SparsifyMPC(g, 2, 0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad params did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestMPCSubgraphAndDegreeMarks(t *testing.T) {
	g := gen.Clique(120)
	const delta = 4
	sp, stats := SparsifyMPC(g, delta, 8, 7)
	sp.ForEachEdge(func(u, v int32) {
		if !g.HasEdge(u, v) {
			t.Fatalf("MPC sparsifier edge (%d,%d) not in G", u, v)
		}
	})
	// Every vertex selects exactly Δ edges in a clique, so degrees ≥ Δ and
	// the total size is ≤ nΔ.
	if sp.M() > 120*delta {
		t.Errorf("size %d > nΔ", sp.M())
	}
	for v := int32(0); v < 120; v++ {
		if sp.Degree(v) < delta {
			t.Errorf("vertex %d degree %d < Δ", v, sp.Degree(v))
		}
	}
	if stats.Rounds != 2 {
		t.Errorf("rounds = %d, want 2", stats.Rounds)
	}
}

func TestMPCLowDegreeKeepsAll(t *testing.T) {
	g := gen.Cycle(30)
	sp, _ := SparsifyMPC(g, 3, 4, 3)
	if sp.M() != g.M() {
		t.Errorf("low-degree graph: kept %d of %d", sp.M(), g.M())
	}
}

func TestMPCMachineCountInvariance(t *testing.T) {
	// The selected sparsifier is a deterministic function of the tags, so
	// it must be identical for any machine count.
	g := gen.Clique(80)
	a, _ := SparsifyMPC(g, 3, 1, 11)
	b, _ := SparsifyMPC(g, 3, 16, 11)
	if a.M() != b.M() {
		t.Fatalf("machine count changed the sparsifier: %d vs %d edges", a.M(), b.M())
	}
	ae, be := a.Edges(), b.Edges()
	for i := range ae {
		if ae[i] != be[i] {
			t.Fatalf("edge %d differs: %v vs %v", i, ae[i], be[i])
		}
	}
}

func TestMPCQuality(t *testing.T) {
	inst := gen.BoundedDiversityInstance(300, 2, 48, 5)
	exact := matching.MaximumGeneral(inst.G).Size()
	sp, _ := SparsifyMPC(inst.G, 8, 8, 13)
	got := matching.MaximumGeneral(sp).Size()
	if float64(exact) > 1.3*float64(got) {
		t.Errorf("MPC sparsifier preserved %d of %d", got, exact)
	}
}

func TestMPCLoadBalanceAndCoordinator(t *testing.T) {
	g := gen.Clique(300) // m = 44850
	const delta, machines = 4, 16
	_, stats := SparsifyMPC(g, delta, machines, 17)
	// Input partition balanced within 2x of m/machines.
	if stats.MaxInputLoad > 2*int64(g.M())/machines {
		t.Errorf("input load %d too skewed (m/M = %d)", stats.MaxInputLoad, g.M()/machines)
	}
	// Coordinator holds the sparsifier: O(nΔ) words, far below m.
	if stats.Coordinator > int64(2*300*delta) {
		t.Errorf("coordinator memory %d exceeds 2nΔ", stats.Coordinator)
	}
	if stats.Coordinator >= int64(g.M()) {
		t.Errorf("coordinator memory %d not sublinear in m=%d", stats.Coordinator, g.M())
	}
	// Round-1 communication per machine is bounded by its candidates,
	// at most 2 per local edge.
	if stats.MaxSent > 2*stats.MaxInputLoad+int64(300*delta) {
		t.Errorf("sent %d exceeds candidate bound", stats.MaxSent)
	}
}

func TestMixDeterministic(t *testing.T) {
	if mix(1, 2) != mix(1, 2) {
		t.Error("mix not deterministic")
	}
	if mix(1, 2) == mix(2, 1) {
		t.Error("mix suspiciously symmetric")
	}
}
