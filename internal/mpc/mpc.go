// Package mpc implements the massively-parallel-computation instantiation
// of the matching sparsifier. Section 3 of the paper notes the construction
// applies to "computational models where there are local or global memory
// constraints, such as the massively parallel computation (MPC) model";
// this package simulates that application with explicit per-machine memory
// and communication accounting.
//
// The input edges are partitioned across M machines. Each vertex must end
// up with a uniform Δ-subset of its incident edges, chosen independently of
// other vertices (the distribution Theorem 2.1 analyzes). This is achieved
// with the tagging trick in two rounds:
//
//	round 1: every machine assigns each local (vertex, incident edge) pair
//	         a deterministic pseudo-random tag and sends, per vertex, only
//	         its Δ smallest-tagged candidates to the vertex's owner
//	         machine. (The global Δ smallest are among every machine's
//	         local Δ smallest, so this loses nothing.)
//	round 2: owners keep the Δ smallest tags per owned vertex and forward
//	         the selected edges to the coordinator, which assembles G_Δ.
//
// Per-vertex tags are i.i.d. across that vertex's incident edges, so the
// selected Δ-subset is uniform; different vertices use disjoint tag streams,
// so their choices are independent — exactly the sparsifier distribution.
// After the two rounds the whole problem fits in one machine's memory
// (O(n·Δ) words instead of m), where any sequential matcher finishes the
// job — the randomized-composable-coreset pattern of Assadi et al. that
// the paper's introduction cites.
package mpc

import (
	"sort"

	"repro/internal/arcs"
	"repro/internal/graph"
	"repro/internal/invariant"
	"repro/internal/params"
)

// Stats reports the simulated cluster's cost profile, all in words.
type Stats struct {
	Machines     int
	Rounds       int
	MaxInputLoad int64 // largest initial edge partition on one machine
	MaxSent      int64 // largest per-machine words sent in any round
	MaxReceived  int64 // largest per-machine words received in any round
	Coordinator  int64 // words held by the coordinator at the end
}

// SparsifyMPC builds G_Δ of g on a simulated MPC cluster with the given
// number of machines. It returns the sparsifier and the cost statistics.
// Edges travel through the cluster as packed arcs (internal/arcs), and the
// coordinator assembles the sparsifier with a single integer sort.
func SparsifyMPC(g *graph.Static, delta, machines int, seed uint64) (*graph.Static, Stats) {
	if machines < 1 || delta < 1 {
		invariant.Violatef("mpc: bad parameters machines=%d delta=%d", machines, delta)
	}
	stats := Stats{Machines: machines, Rounds: 2}

	// Input partition: packed edges are hashed across machines.
	parts := make([][]uint64, machines)
	g.ForEachEdge(func(u, v int32) {
		k := arcs.Pack(u, v)
		h := int(mix(seed, k) % uint64(machines))
		parts[h] = append(parts[h], k)
	})
	for _, p := range parts {
		if int64(len(p)) > stats.MaxInputLoad {
			stats.MaxInputLoad = int64(len(p))
		}
	}

	// Round 1: local candidate selection. candidate = (vertex, packed edge, tag).
	type cand struct {
		v   int32
		key uint64
		tag uint64
	}
	owner := func(v int32) int { return int(v) % machines }
	inbox := make([][]cand, machines) // received by owner machines
	recv1 := make([]int64, machines)
	for _, p := range parts {
		// Group local edges by endpoint.
		local := make(map[int32][]cand)
		for _, k := range p {
			u, v := arcs.Unpack(k)
			local[u] = append(local[u], cand{v: u, key: k, tag: tagFor(seed, u, k)})
			local[v] = append(local[v], cand{v: v, key: k, tag: tagFor(seed, v, k)})
		}
		// Iterate endpoints in sorted order so the inbox contents are
		// independent of map iteration order (ties in round 2's tag sort
		// would otherwise resolve nondeterministically).
		vs := make([]int32, 0, len(local))
		for v := range local {
			vs = append(vs, v)
		}
		sort.Slice(vs, func(a, b int) bool { return vs[a] < vs[b] })
		sent := int64(0)
		for _, v := range vs {
			cs := local[v]
			sort.Slice(cs, func(a, b int) bool { return cs[a].tag < cs[b].tag })
			if len(cs) > delta {
				cs = cs[:delta]
			}
			o := owner(v)
			inbox[o] = append(inbox[o], cs...)
			sent += int64(len(cs))
			recv1[o] += int64(len(cs))
		}
		if sent > stats.MaxSent {
			stats.MaxSent = sent
		}
	}
	for _, r := range recv1 {
		if r > stats.MaxReceived {
			stats.MaxReceived = r
		}
	}

	// Round 2: owners pick the Δ globally smallest tags per owned vertex
	// and forward the selected edges to the coordinator.
	buf := arcs.Get()
	coord := int64(0)
	for mi := 0; mi < machines; mi++ {
		byVertex := make(map[int32][]cand)
		for _, c := range inbox[mi] {
			byVertex[c.v] = append(byVertex[c.v], c)
		}
		sent := int64(0)
		for _, cs := range byVertex {
			sort.Slice(cs, func(a, b int) bool { return cs[a].tag < cs[b].tag })
			keep := cs
			if len(keep) > delta {
				keep = keep[:delta]
			}
			for _, c := range keep {
				buf.AddPacked(c.key)
			}
			sent += int64(len(keep))
		}
		coord += sent
		if sent > stats.MaxSent {
			stats.MaxSent = sent
		}
	}
	stats.Coordinator = coord
	sp := graph.FromPackedArcs(g.N(), buf.Keys())
	buf.Release()
	return sp, stats
}

// SparsifyMPCFor is SparsifyMPC with Δ resolved from (β, ε) through
// internal/params (Theorem 2.1).
func SparsifyMPCFor(g *graph.Static, beta int, eps float64, machines int, seed uint64) (*graph.Static, Stats) {
	return SparsifyMPC(g, params.Delta(beta, eps), machines, seed)
}

// tagFor derives the i.i.d. uniform tag of packed edge k in vertex v's
// private tag stream. Both endpoints of an edge draw DIFFERENT tags (the
// pair (v, k) seeds the hash), so each vertex's reservoir is independent.
func tagFor(seed uint64, v int32, k uint64) uint64 {
	return mix(seed^uint64(uint32(v))<<1, k)
}

// mix is splitmix64-style hashing.
func mix(a, b uint64) uint64 {
	x := a ^ (b + 0x9e3779b97f4a7c15 + (a << 6) + (a >> 2))
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
