package cli

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/matching"
)

func TestMakeGraphFamilies(t *testing.T) {
	for _, fam := range []string{"line", "unitdisk", "quasidisk", "interval", "diversity3", "clique", "er"} {
		g, beta, err := MakeGraph(fam, 150, 20, 3)
		if err != nil {
			t.Fatalf("%s: %v", fam, err)
		}
		if g.N() == 0 {
			t.Errorf("%s: empty graph", fam)
		}
		if beta < 1 {
			t.Errorf("%s: bad β certificate %d", fam, beta)
		}
		if err := g.Validate(); err != nil {
			t.Errorf("%s: %v", fam, err)
		}
	}
}

func TestMakeGraphCertificates(t *testing.T) {
	// Verify certificates exactly on a small instance of each certified family.
	for _, fam := range []string{"line", "interval", "diversity2", "clique"} {
		g, beta, err := MakeGraph(fam, 100, 12, 5)
		if err != nil {
			t.Fatal(err)
		}
		if got := core.ExactBeta(g); got > beta {
			t.Errorf("%s: exact β %d exceeds certificate %d", fam, got, beta)
		}
	}
}

func TestMakeGraphErrors(t *testing.T) {
	cases := []struct {
		fam string
		n   int
		avg float64
	}{
		{"nope", 10, 5},
		{"diversityX", 10, 5},
		{"diversity0", 10, 5},
		{"clique", 0, 5},
		{"clique", 10, 0},
	}
	for _, tc := range cases {
		if _, _, err := MakeGraph(tc.fam, tc.n, tc.avg, 1); err == nil {
			t.Errorf("MakeGraph(%q,%d,%v) accepted bad input", tc.fam, tc.n, tc.avg)
		}
	}
}

func TestFamiliesListed(t *testing.T) {
	fams := Families()
	if len(fams) < 6 || !strings.Contains(strings.Join(fams, ","), "unitdisk") {
		t.Errorf("Families() = %v", fams)
	}
}

func TestMatchersRegistry(t *testing.T) {
	g, beta, err := MakeGraph("diversity2", 120, 24, 7)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := Matchers("all")
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 4 {
		t.Fatalf("all = %d matchers, want 4", len(ms))
	}
	exactSize := -1
	for _, m := range ms {
		res := m.Run(g, beta, 0.25, 11)
		if err := matching.Verify(g, res); err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		if m.Name == "exact" {
			exactSize = res.Size()
		}
		if res.Size() == 0 {
			t.Errorf("%s found nothing", m.Name)
		}
	}
	if exactSize < 0 {
		t.Fatal("exact matcher missing from registry")
	}
	for _, name := range []string{"greedy", "approx", "phases", "exact"} {
		one, err := Matchers(name)
		if err != nil || len(one) != 1 || one[0].Name != name {
			t.Errorf("Matchers(%q) = %v, %v", name, one, err)
		}
	}
	if _, err := Matchers("bogus"); err == nil {
		t.Error("bogus algorithm accepted")
	}
}

// TestMatchersBackends runs the sparsifier-based matchers under every
// registered backend name (plus the empty default) and demands a valid
// non-empty matching from each.
func TestMatchersBackends(t *testing.T) {
	g, beta, err := MakeGraph("diversity2", 100, 20, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, backend := range []string{"", "gdelta", "edcs"} {
		ms, err := MatchersOpts("all", backend, matching.Options{Workers: 1})
		if err != nil {
			t.Fatalf("backend %q: %v", backend, err)
		}
		for _, m := range ms {
			res := m.Run(g, beta, 0.25, 5)
			if err := matching.Verify(g, res); err != nil {
				t.Fatalf("backend %q, %s: %v", backend, m.Name, err)
			}
			if res.Size() == 0 {
				t.Errorf("backend %q, %s found nothing", backend, m.Name)
			}
		}
	}
	if _, err := MatchersOpts("all", "bogus", matching.Options{Workers: 1}); err == nil {
		t.Error("bogus backend accepted")
	}
}
