// Package cli holds the testable logic behind the command-line tools
// (cmd/graphgen, cmd/matchcli): family parsing, graph construction, and
// the matcher registry. The main packages stay as thin flag-parsing shells.
package cli

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/matching"
)

// MakeGraph builds a graph of the named family with roughly n vertices and
// the target average degree. It returns the graph and the certified upper
// bound on its neighborhood independence number (n for families without a
// certificate).
//
// Families: line, unitdisk, quasidisk, interval, diversity<k>, clique, er.
func MakeGraph(family string, n int, avgDeg float64, seed uint64) (*graph.Static, int, error) {
	if n < 1 {
		return nil, 0, fmt.Errorf("cli: need n >= 1, got %d", n)
	}
	if avgDeg <= 0 {
		return nil, 0, fmt.Errorf("cli: need avgdeg > 0, got %v", avgDeg)
	}
	switch {
	case family == "line":
		inst := gen.LineGraphInstance(n, avgDeg, seed)
		return inst.G, inst.Beta, nil
	case family == "unitdisk":
		inst := gen.UnitDiskInstance(n, avgDeg, seed)
		return inst.G, inst.Beta, nil
	case family == "quasidisk":
		inst := gen.QuasiUnitDiskInstance(n, avgDeg, seed)
		return inst.G, inst.Beta, nil
	case family == "interval":
		inst := gen.ProperIntervalInstance(n, avgDeg, seed)
		return inst.G, inst.Beta, nil
	case family == "clique":
		return gen.Clique(n), 1, nil
	case family == "er":
		p := avgDeg / float64(max(1, n-1))
		if p > 1 {
			p = 1
		}
		return gen.ErdosRenyi(n, p, seed), n, nil
	case strings.HasPrefix(family, "diversity"):
		k, err := strconv.Atoi(strings.TrimPrefix(family, "diversity"))
		if err != nil || k < 1 {
			return nil, 0, fmt.Errorf("cli: bad diversity family %q", family)
		}
		inst := gen.BoundedDiversityInstance(n, k, avgDeg, seed)
		return inst.G, inst.Beta, nil
	default:
		return nil, 0, fmt.Errorf("cli: unknown family %q (want line, unitdisk, quasidisk, interval, diversity<k>, clique, er)", family)
	}
}

// Families lists the accepted family names for help output.
func Families() []string {
	return []string{"line", "unitdisk", "quasidisk", "interval", "diversity<k>", "clique", "er"}
}

// MakeStream returns a chunk-emitting arc streamer for the named family —
// the huge-graph path: the instance is never materialized as an edge list,
// only streamed into the chunked CSR builder (or to disk). It returns the
// streamer and the certified β bound (n for families without a certificate).
//
// Streaming families: diversity<k>, er. The streamed edge multiset is
// exactly what MakeGraph would build for the same parameters.
func MakeStream(family string, n int, avgDeg float64, seed uint64) (gen.EdgeStreamer, int, error) {
	if n < 1 {
		return nil, 0, fmt.Errorf("cli: need n >= 1, got %d", n)
	}
	if avgDeg <= 0 {
		return nil, 0, fmt.Errorf("cli: need avgdeg > 0, got %v", avgDeg)
	}
	switch {
	case family == "er":
		p := avgDeg / float64(max(1, n-1))
		if p > 1 {
			p = 1
		}
		return gen.NewGnpStream(n, p, seed), n, nil
	case strings.HasPrefix(family, "diversity"):
		k, err := strconv.Atoi(strings.TrimPrefix(family, "diversity"))
		if err != nil || k < 1 {
			return nil, 0, fmt.Errorf("cli: bad diversity family %q", family)
		}
		return gen.NewDiversityStreamAvgDeg(n, k, avgDeg, seed), k, nil
	default:
		return nil, 0, fmt.Errorf("cli: family %q has no streaming generator (want diversity<k>, er)", family)
	}
}

// StreamFamilies lists the families MakeStream accepts, for help output.
func StreamFamilies() []string {
	return []string{"diversity<k>", "er"}
}

// Matcher is a named matching algorithm usable from the CLI.
type Matcher struct {
	Name string
	Run  func(g *graph.Static, beta int, eps float64, seed uint64) *matching.Matching
}

// Matchers returns the registry of CLI-selectable algorithms; "all" runs
// every entry. The sparsifier-based matchers run sequentially with the
// default backend; MatchersOpts selects the backend and a worker pool.
func Matchers(algo string) ([]Matcher, error) {
	return MatchersOpts(algo, "", matching.Options{Workers: 1})
}

// MatchersOpts is Matchers with an explicit sparsifier backend name
// ("gdelta" or "edcs"; "" means gdelta) and phase-engine options: the
// approx and phases matchers build the selected backend's sparsifier and
// shard the phase discovery over opt.Workers workers. Results are
// deterministic for a fixed seed and invariant to the worker count in both
// stages (backend contract).
func MatchersOpts(algo, backend string, opt matching.Options) ([]Matcher, error) {
	sparsifier, err := core.BackendByName(backend, opt.Workers)
	if err != nil {
		return nil, err
	}
	greedy := Matcher{"greedy", func(g *graph.Static, _ int, _ float64, _ uint64) *matching.Matching {
		return matching.Greedy(g)
	}}
	approx := Matcher{"approx", func(g *graph.Static, beta int, eps float64, seed uint64) *matching.Matching {
		sp := sparsifier.Sparsify(g, beta, eps, seed)
		return matching.ApproxGeneral(sp, eps, seed+1)
	}}
	phases := Matcher{"phases", func(g *graph.Static, beta int, eps float64, seed uint64) *matching.Matching {
		sp := sparsifier.Sparsify(g, beta, eps, seed)
		return matching.PhaseStructuredApproxOpts(sp, eps, seed+1, opt)
	}}
	exact := Matcher{"exact", func(g *graph.Static, _ int, _ float64, _ uint64) *matching.Matching {
		return matching.MaximumGeneral(g)
	}}
	switch algo {
	case "greedy":
		return []Matcher{greedy}, nil
	case "approx":
		return []Matcher{approx}, nil
	case "phases":
		return []Matcher{phases}, nil
	case "exact":
		return []Matcher{exact}, nil
	case "all":
		return []Matcher{greedy, approx, phases, exact}, nil
	default:
		return nil, fmt.Errorf("cli: unknown algorithm %q (want greedy, approx, phases, exact, all)", algo)
	}
}
