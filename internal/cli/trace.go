package cli

import (
	"repro/internal/dynmatch"
	"repro/internal/trace"
)

// MakeTrace generates a dynamic-update trace for the named graph family:
// a randomized load of the generated graph's edges followed by churn
// delete/reinsert pairs. It is the one trace generator shared by
// cmd/dyndrive, cmd/matchd, and the serving experiments, so a (family, n,
// avgdeg, churn, seed) tuple names the same workload everywhere.
func MakeTrace(family string, n int, avgDeg float64, churn int, seed uint64) (trace.Trace, error) {
	g, _, err := MakeGraph(family, n, avgDeg, seed)
	if err != nil {
		return trace.Trace{}, err
	}
	tr := trace.Trace{N: g.N(), Updates: dynmatch.BuildUpdates(g, seed)}
	tr.Updates = append(tr.Updates, dynmatch.ObliviousChurn(g, churn, seed+1)...)
	return tr, nil
}
