// Package lint is a pure-stdlib static-analysis driver (go/parser + go/types)
// that enforces this module's coding contracts — determinism, hot-path
// allocation discipline (lexical and interprocedural), decoder bound
// discipline, panic discipline, error wrapping, and lock discipline — as
// position-accurate lint diagnostics. It has no dependencies outside the
// standard library, so go.mod stays empty; the CLI front end is
// cmd/sparselint and the catalog of checks lives in checks.go.
//
// Findings can be suppressed at a specific site with
//
//	//lint:ignore <check> <reason>
//
// on the offending line or on the line directly above it. The reason is
// mandatory, and naming a check the driver does not know is itself a
// diagnostic — a suppression must never rot silently. Contract annotations
// use the //sparse: family (see directive.go); a malformed annotation is a
// driver finding too.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Check is one analysis pass. Run inspects a single type-checked package and
// reports findings through the Pass.
type Check interface {
	// Name is the short identifier used in diagnostics and suppression
	// comments (e.g. "determinism").
	Name() string
	// Doc is a one-line description for -help output and DESIGN.md.
	Doc() string
	// Run analyzes one package. Module-scoped checks (see ModuleCheck)
	// leave this a no-op and do their work in RunModule.
	Run(pass *Pass)
}

// ModuleCheck is a check that needs the whole load at once — e.g. the
// interprocedural allocation summaries, which chase calls across package
// boundaries. The driver calls RunModule exactly once per Run invocation,
// with every loaded package, instead of the per-package Run.
type ModuleCheck interface {
	Check
	RunModule(mp *ModulePass)
}

// Pass hands one type-checked package to a Check and collects its findings.
type Pass struct {
	Fset *token.FileSet
	// Path is the package import path ("repro/internal/graph").
	Path string
	// Pkg and Info hold the go/types results for Files.
	Pkg  *types.Package
	Info *types.Info
	// Files are the parsed non-test source files of the package.
	Files []*ast.File

	check    string
	severity string
	diags    *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	*p.diags = append(*p.diags, Diagnostic{
		Check:    p.check,
		Severity: p.severity,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ModulePass hands the whole package load to a ModuleCheck.
type ModulePass struct {
	// Pkgs are all loaded packages, in load order (sorted by directory).
	Pkgs []*Package

	check    string
	severity string
	diags    *[]Diagnostic
}

// Reportf records a finding at pos, resolved through the package that owns
// the reporting site.
func (mp *ModulePass) Reportf(pkg *Package, pos token.Pos, format string, args ...any) {
	position := pkg.Fset.Position(pos)
	*mp.diags = append(*mp.diags, Diagnostic{
		Check:    mp.check,
		Severity: mp.severity,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding, in the stable schema emitted by sparselint -json
// (version sparselint/v2).
type Diagnostic struct {
	Check    string `json:"check"`
	Severity string `json:"severity"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

// String renders the diagnostic in the classic file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Message, d.Check)
}

// Run applies every check to every package (module-scoped checks run once
// over the whole load), honors //lint:ignore suppressions, and returns the
// surviving diagnostics sorted by file, line, column, then check name.
// Suppression comments naming unknown checks and malformed //sparse:
// annotations are reported as findings of the built-in "lint" pseudo-check.
func Run(pkgs []*Package, checks []Check) []Diagnostic {
	// Suppressions validate against the full catalog, not the selected
	// subset: running -checks errwrap must not turn a legitimate
	// //lint:ignore noalloc into an unknown-check finding.
	known := make(map[string]bool, len(checks))
	for _, n := range CheckNames() {
		known[n] = true
	}
	for _, c := range checks {
		known[c.Name()] = true
	}

	var diags []Diagnostic
	var sup []suppression
	for _, pkg := range pkgs {
		for _, c := range checks {
			if _, isModule := c.(ModuleCheck); isModule {
				continue
			}
			pass := &Pass{
				Fset:     pkg.Fset,
				Path:     pkg.Path,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				Files:    pkg.Files,
				check:    c.Name(),
				severity: CheckSeverity(c.Name()),
				diags:    &diags,
			}
			c.Run(pass)
		}
		s, bad := collectSuppressions(pkg, known)
		sup = append(sup, s...)
		diags = append(diags, bad...)
		diags = append(diags, checkSparseDirectives(pkg)...)
	}
	for _, c := range checks {
		mc, isModule := c.(ModuleCheck)
		if !isModule {
			continue
		}
		mc.RunModule(&ModulePass{
			Pkgs:     pkgs,
			check:    c.Name(),
			severity: CheckSeverity(c.Name()),
			diags:    &diags,
		})
	}

	diags = applySuppressions(diags, sup)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Check < b.Check
	})
	return diags
}

// checkSparseDirectives reports malformed //sparse: annotations as "lint"
// pseudo-check findings, mirroring the unknown-check rule for suppressions.
func checkSparseDirectives(pkg *Package) []Diagnostic {
	var bad []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				_, problem, isDirective := ParseSparseDirective(c.Text)
				if !isDirective || problem == "" {
					continue
				}
				position := pkg.Fset.Position(c.Pos())
				bad = append(bad, Diagnostic{
					Check:    "lint",
					Severity: "error",
					File:     position.Filename,
					Line:     position.Line,
					Col:      position.Column,
					Message:  problem,
				})
			}
		}
	}
	return bad
}
