// Package lint is a pure-stdlib static-analysis driver (go/parser + go/types)
// that enforces this module's coding contracts — determinism, hot-path
// allocation discipline, panic discipline, and error wrapping — as
// position-accurate lint diagnostics. It has no dependencies outside the
// standard library, so go.mod stays empty; the CLI front end is
// cmd/sparselint and the catalog of checks lives in checks.go.
//
// Findings can be suppressed at a specific site with
//
//	//lint:ignore <check> <reason>
//
// on the offending line or on the line directly above it. The reason is
// mandatory, and naming a check the driver does not know is itself a
// diagnostic — a suppression must never rot silently.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Check is one analysis pass. Run inspects a single type-checked package and
// reports findings through the Pass.
type Check interface {
	// Name is the short identifier used in diagnostics and suppression
	// comments (e.g. "determinism").
	Name() string
	// Doc is a one-line description for -help output and DESIGN.md.
	Doc() string
	// Run analyzes one package.
	Run(pass *Pass)
}

// Pass hands one type-checked package to a Check and collects its findings.
type Pass struct {
	Fset *token.FileSet
	// Path is the package import path ("repro/internal/graph").
	Path string
	// Pkg and Info hold the go/types results for Files.
	Pkg  *types.Package
	Info *types.Info
	// Files are the parsed non-test source files of the package.
	Files []*ast.File

	check string
	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	*p.diags = append(*p.diags, Diagnostic{
		Check:   p.check,
		File:    position.Filename,
		Line:    position.Line,
		Col:     position.Column,
		Message: fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding, in the stable schema emitted by sparselint -json
// (version sparselint/v1).
type Diagnostic struct {
	Check   string `json:"check"`
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Message string `json:"message"`
}

// String renders the diagnostic in the classic file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Message, d.Check)
}

// Run applies every check to every package, honors //lint:ignore
// suppressions, and returns the surviving diagnostics sorted by file, line,
// column, then check name. Suppression comments naming unknown checks are
// reported as findings of the built-in "lint" pseudo-check.
func Run(pkgs []*Package, checks []Check) []Diagnostic {
	known := make(map[string]bool, len(checks))
	for _, c := range checks {
		known[c.Name()] = true
	}

	var diags []Diagnostic
	var sup []suppression
	for _, pkg := range pkgs {
		for _, c := range checks {
			pass := &Pass{
				Fset:  pkg.Fset,
				Path:  pkg.Path,
				Pkg:   pkg.Types,
				Info:  pkg.Info,
				Files: pkg.Files,
				check: c.Name(),
				diags: &diags,
			}
			c.Run(pass)
		}
		s, bad := collectSuppressions(pkg, known)
		sup = append(sup, s...)
		diags = append(diags, bad...)
	}

	diags = applySuppressions(diags, sup)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Check < b.Check
	})
	return diags
}
