package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// calleeFunc resolves a call expression to the package-level function or
// method it invokes, or nil for builtins, local function values, and calls
// through interfaces.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fn
	case *ast.SelectorExpr:
		id = fn.Sel
	default:
		return nil
	}
	f, _ := info.Uses[id].(*types.Func)
	return f
}

// isPkgFunc reports whether call invokes the package-level function
// pkgPath.name (e.g. "time".Now). Methods never match: their receiver makes
// them per-value, which is exactly the distinction the determinism check
// draws between rand.Int and (*rand.Rand).Int.
func isPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	f := calleeFunc(info, call)
	if f == nil || f.Pkg() == nil {
		return false
	}
	if recv := f.Type().(*types.Signature).Recv(); recv != nil {
		return false
	}
	return f.Pkg().Path() == pkgPath && f.Name() == name
}

// funcPkgPath returns the defining package path of the function a call
// resolves to ("" when unresolvable), plus its name and whether it is a
// method.
func funcPkgPath(info *types.Info, call *ast.CallExpr) (path, name string, isMethod bool) {
	f := calleeFunc(info, call)
	if f == nil || f.Pkg() == nil {
		return "", "", false
	}
	sig, _ := f.Type().(*types.Signature)
	return f.Pkg().Path(), f.Name(), sig != nil && sig.Recv() != nil
}

// isBuiltinCall reports whether call invokes the named builtin (append,
// make, new, panic, ...).
func isBuiltinCall(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = info.Uses[id].(*types.Builtin)
	return ok
}

// libraryPackage reports whether path is subject to the library-only checks:
// everything except command mains (cmd/, examples/) and the experiment
// harness, which are allowed wall clocks and global RNG by design.
func libraryPackage(path string) bool {
	for _, skip := range []string{"/cmd/", "/examples/"} {
		if strings.Contains(path, skip) {
			return false
		}
	}
	return !strings.HasSuffix(path, "/internal/harness")
}
