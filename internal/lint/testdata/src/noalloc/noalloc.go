// Package noalloc is golden testdata for the noalloc check.
package noalloc

import (
	"fmt"

	"repro/internal/invariant"
)

type thing struct{ id int }

type engine struct {
	arena []int
	buf   []thing
}

var global []int

//sparse:noalloc
func (e *engine) hot(n int, dst []int) []int {
	s := make([]int, n) // want "make in //sparse:noalloc function"
	p := new(thing)     // want "new in //sparse:noalloc function"
	t := &thing{id: n}  // want "address-of composite literal escapes"
	_ = func() int {    // want "closure creation allocates"
		return n
	}
	msg := fmt.Sprintf("n=%d", n) // want `fmt.Sprintf allocates in //sparse:noalloc function`
	msg = msg + "!"               // want "string concatenation allocates"
	_ = msg

	global = append(global, n) // want "append to a slice the function does not own"

	e.arena = append(e.arena, n)        // receiver arena: fine
	e.buf = append(e.buf, thing{id: n}) // receiver arena, value literal: fine
	local := e.arena[:0]
	local = append(local, n) // local variable: fine
	dst = append(dst, n)     // parameter: fine

	if n < 0 {
		// The blessed terminal path is exempt wholesale.
		invariant.Violatef("noalloc: bad n %d", n)
	}
	_, _ = s, p
	_ = t
	return dst
}

// unannotated allocates freely without findings.
func (e *engine) unannotated(n int) []int {
	s := make([]int, n)
	global = append(global, n)
	return s
}

// helper carries the verified-summary annotation: the lexical contract
// applies to it exactly as to //sparse:noalloc functions.
//
//sparse:allocfree
func helper(n int) []int {
	return make([]int, n) // want "make in //sparse:allocfree function"
}
