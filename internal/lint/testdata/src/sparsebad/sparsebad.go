// Package sparsebad holds malformed //sparse: annotations; the driver must
// report each as a "lint" pseudo-check finding.
package sparsebad

//sparse:guardedby
var x int

//sparse:nolock
var y int
