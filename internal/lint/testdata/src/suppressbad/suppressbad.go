// Package suppressbad holds malformed //lint:ignore markers whose expected
// diagnostics are asserted directly in the driver tests (a marker with no
// reason cannot carry a same-line want comment).
package suppressbad

//lint:ignore panicdiscipline
func missingReason() {}

//lint:ignore
func missingEverything() {}
