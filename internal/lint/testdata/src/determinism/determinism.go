// Package determinism is golden testdata for the determinism check.
package determinism

import (
	"fmt"
	"math/rand"
	randv2 "math/rand/v2"
	"time"
)

func clocks() time.Time {
	t := time.Now()   // want "time.Now in library code breaks run reproducibility"
	_ = time.Since(t) // want "time.Since reads the wall clock"
	return t
}

func globalRand() int {
	randv2.Shuffle(3, func(i, j int) {}) // want "rand.Shuffle draws from the global math/rand source"
	_ = rand.Int()                       // want "rand.Int draws from the global math/rand source"
	_ = randv2.IntN(7)                   // want "rand.IntN draws from the global math/rand source"
	return randv2.Int()                  // want "rand.Int draws from the global math/rand source"
}

func seededRandOK() int {
	r := randv2.New(randv2.NewPCG(1, 2)) // seeded constructors are exempt
	r.Shuffle(3, func(i, j int) {})
	src := rand.New(rand.NewSource(42))
	return r.IntN(7) + src.Intn(7)
}

func mapOrderLeaks(m map[string]int, ch chan string) []string {
	var out []string
	for k := range m {
		out = append(out, k, k) // want "append inside map iteration leaks map order"
	}
	for k := range m {
		ch <- k // want "channel send inside map iteration leaks map order"
	}
	for k, v := range m {
		fmt.Println(k, v) // want "fmt.Println inside map iteration emits output in map order"
	}
	return out
}

func mapOrderFine(m map[string]int) map[string]bool {
	// The canonical collect-then-sort idiom is exempt.
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	// Order-insensitive accumulation is fine.
	sum := 0
	set := make(map[string]bool, len(m))
	for k, v := range m {
		sum += v
		set[k] = true
	}
	return set
}
