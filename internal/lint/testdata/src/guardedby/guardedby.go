// Package guardedby is golden testdata for the lock-discipline check:
// fields annotated //sparse:guardedby <mu> must be accessed holding <mu>,
// and sync/atomic fields must be used through their methods.
package guardedby

import (
	"sync"
	"sync/atomic"
)

type counter struct {
	mu sync.Mutex
	n  int //sparse:guardedby mu

	applied atomic.Int64
}

func (c *counter) IncLocked() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

func (c *counter) IncDefer() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

func (c *counter) IncUnlocked() {
	c.n++ // want "access to n is not guarded by mu.Lock()"
}

func (c *counter) IncWrongMutex(other *sync.Mutex) {
	other.Lock()
	c.n++ // want "access to n is not guarded by mu.Lock()"
	other.Unlock()
}

func (c *counter) ReadAfterUnlock() int {
	c.mu.Lock()
	v := c.n
	c.mu.Unlock()
	return v + c.n // want "access to n is not guarded by mu.Lock()"
}

// newCounter exercises the constructor exemption: a struct the function
// itself built is not shared yet.
func newCounter() *counter {
	c := &counter{}
	c.n = 1
	return c
}

// EarlyReturn exercises the terminating-branch merge: the unlock-and-return
// branch drops out, so the fallthrough path still holds the lock.
func (c *counter) EarlyReturn(stop bool) {
	c.mu.Lock()
	if stop {
		c.mu.Unlock()
		return
	}
	c.n++
	c.mu.Unlock()
}

// Spawn exercises closure isolation: the goroutine body does not inherit the
// spawning function's locks.
func (c *counter) Spawn() {
	c.mu.Lock()
	defer c.mu.Unlock()
	go func() {
		c.n++ // want "access to n is not guarded by mu.Lock()"
	}()
}

// Branchy exercises the intersection merge: only one arm acquires, so after
// the if the lock is not held.
func (c *counter) Branchy(lock bool) {
	if lock {
		c.mu.Lock()
	}
	c.n++ // want "access to n is not guarded by mu.Lock()"
	if lock {
		c.mu.Unlock()
	}
}

func (c *counter) AtomicOK() int64 {
	return c.applied.Load()
}

func (c *counter) AtomicAddr() *atomic.Int64 {
	return &c.applied
}

func (c *counter) AtomicCopy() atomic.Int64 {
	return c.applied // want "non-atomic access to sync/atomic field applied"
}

// table exercises RWMutex read-locking.
type table struct {
	mu sync.RWMutex
	m  map[string]int //sparse:guardedby mu
}

func (t *table) Get(k string) int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.m[k]
}

func (t *table) BadGet(k string) int {
	return t.m[k] // want "access to m is not guarded by mu.Lock()"
}

// weird exercises annotation validation: the named guard must be a sibling
// mutex field.
type weird struct {
	notMu int

	//sparse:guardedby notMu
	x int // want "//sparse:guardedby notMu does not name a sibling sync.Mutex/RWMutex field"

	//sparse:guardedby gone
	y int // want "//sparse:guardedby gone does not name a sibling sync.Mutex/RWMutex field"
}

func useWeird(w *weird) int {
	return w.x + w.y + w.notMu
}
