// Package decodebound is golden testdata for the decodebound check: makes
// sized from decoded input must carry a dominating remaining-payload guard or
// a constant bound small enough that the worst case stays under 128 MiB.
package decodebound

import (
	"encoding/binary"
	"fmt"
	"strconv"
)

const (
	// maxVerts mirrors the real maxCheckpointVertices: a sanity cap far past
	// any reasonable allocation budget.
	maxVerts = 1 << 28
	// maxSmall is a genuine bound: 64 Ki byte-sized elements.
	maxSmall = 1 << 16
)

// reader is the sticky-error decode idiom used by the wire and checkpoint
// codecs; u32 makes it a package-local taint source via the fixpoint.
type reader struct {
	b   []byte
	off int
	err bool
}

func (r *reader) u32() uint32 {
	if r.off+4 > len(r.b) {
		r.err = true
		return 0
	}
	v := binary.BigEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

// decodeBomb is the PR-8 DMCK crasher shape, pre-fix: the claimed vertex
// count passes a named-constant sanity check whose ceiling still permits
// gigabytes, then allocates before any truncation check.
func decodeBomb(r *reader) []int64 {
	n := int(r.u32())
	if n > maxVerts {
		return nil
	}
	mates := make([]int64, n) // want "constant bound 268435456 still permits"
	for i := range mates {
		mates[i] = int64(r.u32())
	}
	return mates
}

// decodeFixed is the same decoder post-fix: the count is checked against the
// remaining payload before the allocation, so a truncated frame can never
// buy a large make.
func decodeFixed(r *reader) []int64 {
	n := int(r.u32())
	if n > maxVerts {
		return nil
	}
	if n*8 > len(r.b)-r.off {
		return nil
	}
	mates := make([]int64, n)
	for i := range mates {
		mates[i] = int64(r.u32())
	}
	return mates
}

// decodeSmallConst: a constant bound within the allocation budget
// (2^16 × 1-byte elements = 64 KiB) is a real bound.
func decodeSmallConst(r *reader) []byte {
	n := int(r.u32())
	if n > maxSmall {
		return nil
	}
	buf := make([]byte, n)
	copy(buf, r.b[r.off:])
	return buf
}

// decodeMin: min against a trusted operand sanitizes.
func decodeMin(r *reader) []byte {
	n := int(r.u32())
	return make([]byte, min(n, 512))
}

// decodeInlineGuard: the enclosing if condition is a dominating payload
// guard.
func decodeInlineGuard(r *reader) []byte {
	n := int(r.u32())
	if n <= len(r.b)-r.off {
		return make([]byte, n)
	}
	return nil
}

// decodeDirect sizes the make straight from the source call: there is no
// variable to guard, so the shape itself is the finding.
func decodeDirect(r *reader) []byte {
	return make([]byte, int(r.u32())) // want "make sized directly from a decoded value"
}

// decodeUnguarded has no bound at all.
func decodeUnguarded(r *reader) []int32 {
	n := int(r.u32())
	return make([]int32, n) // want "no dominating bound guard"
}

// decodeCap: a tainted capacity is as dangerous as a tainted length.
func decodeCap(r *reader) []byte {
	n := int(r.u32())
	return make([]byte, 0, n) // want "no dominating bound guard"
}

// parseAtoi: strconv parses are sources too; the bound here is fine
// (2^16 × 8-byte ints = 512 KiB).
func parseAtoi(line string) []int {
	n, err := strconv.Atoi(line)
	if err != nil || n > maxSmall {
		return nil
	}
	return make([]int, n)
}

// parseDims: fmt scanning taints through the &var arguments, and the product
// of two decoded values is tainted.
func parseDims(line string) []int {
	var n, m int
	fmt.Sscanf(line, "%d %d", &n, &m)
	return make([]int, n*m) // want "no dominating bound guard"
}

// localUntainted: sizes not derived from decoded input are out of scope.
func localUntainted(k int) []byte {
	return make([]byte, k)
}
