// Package errwrap is golden testdata for the errwrap check.
package errwrap

import (
	"errors"
	"fmt"
)

type myErr struct{}

func (*myErr) Error() string { return "my" }

func flattened(err error) error {
	return fmt.Errorf("load failed: %v", err) // want "error formatted with %v severs the error chain"
}

func flattenedString(err error) error {
	return fmt.Errorf("load failed: %s", err) // want "error formatted with %s severs the error chain"
}

func concrete() error {
	e := &myErr{}
	return fmt.Errorf("op: %v", e) // want "error formatted with %v severs the error chain"
}

func wrapped(err error) error {
	return fmt.Errorf("load failed: %w", err) // %w: fine
}

func typeOnly(err error) error {
	return fmt.Errorf("unexpected error type %T", err) // %T: fine
}

func nonError(name string, n int) error {
	return fmt.Errorf("bad value %q at %d", name, n) // no error operands: fine
}

func starWidth(err error) error {
	return fmt.Errorf("pad %*d then %v", 8, 1, err) // want "error formatted with %v severs the error chain"
}

func indexed(err error) error {
	return fmt.Errorf("twice: %[1]v %[1]v", err) // want "error formatted with %v severs the error chain"
}

func dynamicFormat(format string, err error) error {
	return fmt.Errorf(format, err) // non-constant format: skipped
}

var errSentinel = errors.New("sentinel")

func sentinel() error {
	return fmt.Errorf("op: %w", errSentinel) // fine
}
