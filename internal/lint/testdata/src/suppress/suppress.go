// Package suppress is golden testdata for the driver's //lint:ignore
// handling: same-line and line-above placements are honored; a suppression
// for the wrong check, or naming an unknown check, does not silence anything.
package suppress

func sameLine(n int) {
	if n < 0 {
		panic("boom") //lint:ignore panicdiscipline testdata same-line suppression
	}
}

func lineAbove(n int) {
	if n < 0 {
		//lint:ignore panicdiscipline testdata line-above suppression
		panic("boom")
	}
}

func unsuppressed(n int) {
	if n < 0 {
		panic("boom") // want "direct panic call"
	}
}

//lint:ignore nosuchcheck the unknown check is reported and nothing is suppressed // want "names unknown check nosuchcheck"
func unknownCheck(n int) {
	if n < 0 {
		panic("boom") // want "direct panic call"
	}
}

func wrongCheckName(n int) {
	if n < 0 {
		//lint:ignore errwrap wrong check does not suppress
		panic("boom") // want "direct panic call"
	}
}
