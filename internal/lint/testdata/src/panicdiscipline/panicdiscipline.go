// Package panicdiscipline is golden testdata for the panicdiscipline check.
package panicdiscipline

import (
	"errors"
	"fmt"

	"repro/internal/invariant"
)

func direct(n int) {
	if n < 0 {
		panic("bad n") // want "direct panic call; report invariant violations through invariant.Violatef"
	}
}

func formatted(n int) {
	if n < 0 {
		panic(fmt.Sprintf("bad n %d", n)) // want "direct panic call"
	}
}

func blessed(n int) {
	if n < 0 {
		invariant.Violatef("pkg: bad n %d", n) // the blessed helper: fine
	}
}

func errorPath(n int) error {
	if n < 0 {
		return errors.New("bad n") // returning errors: fine
	}
	return nil
}

func wrapper() {
	if err := errorPath(-1); err != nil {
		//lint:ignore panicdiscipline documented panic-wrapper testdata
		panic(err)
	}
}
