// Package noallocdeep is golden testdata for the interprocedural noalloc
// check: calls inside annotated functions whose callees transitively
// allocate are flagged even though the call site is lexically clean.
package noallocdeep

// buildBuf allocates; the lexical pass cannot see this from a caller.
func buildBuf(n int) []byte {
	return make([]byte, n)
}

// chain is lexically clean but transitively allocating.
func chain(n int) []byte {
	return buildBuf(n)
}

//sparse:noalloc
func hot(n int) int {
	b := chain(n) // want "call to chain allocates (chain → buildBuf: make) in //sparse:noalloc function"
	return len(b)
}

// even/odd form an allocation-free cycle: the fixpoint must terminate and
// conclude both are clean.
func even(n int) bool {
	if n == 0 {
		return true
	}
	return odd(n - 1)
}

func odd(n int) bool {
	if n == 0 {
		return false
	}
	return even(n - 1)
}

//sparse:noalloc
func hotCycle(n int) bool {
	return even(n)
}

// pingAlloc/pongAlloc form an allocating cycle: taint must propagate around
// it without looping forever.
func pingAlloc(n int) []byte {
	if n == 0 {
		return make([]byte, 1)
	}
	return pongAlloc(n - 1)
}

func pongAlloc(n int) []byte {
	return pingAlloc(n)
}

//sparse:noalloc
func hotAllocCycle(n int) int {
	return len(pongAlloc(n)) // want "call to pongAlloc allocates"
}

// leafClean carries the verified-summary annotation; callers trust it.
//
//sparse:allocfree
func leafClean(x int) int {
	return x * 2
}

//sparse:noalloc
func hotTrust(n int) int {
	return leafClean(n)
}

// badLeaf claims allocation freedom but calls an allocating helper: the
// verified-summary annotation is itself verified.
//
//sparse:allocfree
func badLeaf(n int) int {
	return len(buildBuf(n)) // want "call to buildBuf allocates (buildBuf: make) in //sparse:allocfree function"
}

// warmup's allocation site carries a noalloc suppression, so it stays out of
// the function's summary and callers are clean.
func warmup(n int) []byte {
	//lint:ignore noalloc one-time warm-up buffer kept for reuse
	return make([]byte, n)
}

//sparse:noalloc
func hotWarm(n int) int {
	return len(warmup(n))
}

//sparse:noalloc
func hotEdgeIgnored(n int) int {
	//lint:ignore noallocdeep deliberate one-time growth path
	b := chain(n)
	return len(b)
}
