package lint

import (
	"strings"
	"testing"
	"unicode"
)

// FuzzSuppressDirective fuzzes the two comment-directive parsers. They are
// pure functions over raw comment text, so the contract is simple: never
// panic, be deterministic, and keep the structural invariants below for
// every input — including non-UTF-8 garbage and directive-like prose.
func FuzzSuppressDirective(f *testing.F) {
	for _, seed := range []string{
		"//lint:ignore noalloc one-time warm-up",
		"//lint:ignore noalloc",
		"//lint:ignore",
		"// lint:ignore determinism spaced marker",
		"//lint:ignorenoalloc glued",
		"//sparse:noalloc",
		"//sparse:allocfree",
		"//sparse:guardedby mu",
		"//sparse:guardedby",
		"//sparse:guardedby a b",
		"//sparse:unknownkind",
		"//sparse:",
		"// sparse:noalloc spaced",
		"//\t//sparse:noalloc doc example",
		"/* block */",
		"",
		"not a comment",
		"//lint:ignore  extra   spacing   here",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, text string) {
		check, reason, status := ParseIgnoreDirective(text)
		if c2, r2, s2 := ParseIgnoreDirective(text); c2 != check || r2 != reason || s2 != status {
			t.Fatalf("ParseIgnoreDirective not deterministic on %q", text)
		}
		switch status {
		case IgnoreNone:
			if check != "" || reason != "" {
				t.Fatalf("IgnoreNone with non-empty fields (%q, %q) on %q", check, reason, text)
			}
		case IgnoreOK:
			if check == "" || reason == "" {
				t.Fatalf("IgnoreOK with empty fields (%q, %q) on %q", check, reason, text)
			}
		case IgnoreMissingCheck:
			if check != "" {
				t.Fatalf("IgnoreMissingCheck with check %q on %q", check, text)
			}
		case IgnoreMissingReason:
			if check == "" || reason != "" {
				t.Fatalf("IgnoreMissingReason with fields (%q, %q) on %q", check, reason, text)
			}
		default:
			t.Fatalf("unknown status %d on %q", status, text)
		}
		if strings.IndexFunc(check, unicode.IsSpace) >= 0 {
			t.Fatalf("check %q contains whitespace on %q", check, text)
		}
		if status != IgnoreNone && !strings.HasPrefix(text, "//") {
			t.Fatalf("directive recognized in non-line-comment %q", text)
		}

		d, problem, isDirective := ParseSparseDirective(text)
		if d2, p2, i2 := ParseSparseDirective(text); d2 != d || p2 != problem || i2 != isDirective {
			t.Fatalf("ParseSparseDirective not deterministic on %q", text)
		}
		if !isDirective {
			if d != (SparseDirective{}) || problem != "" {
				t.Fatalf("non-directive with fields (%+v, %q) on %q", d, problem, text)
			}
			return
		}
		if !strings.HasPrefix(text, "//") {
			t.Fatalf("directive recognized in non-line-comment %q", text)
		}
		if problem != "" {
			if d != (SparseDirective{}) {
				t.Fatalf("malformed directive carries fields %+v on %q", d, text)
			}
			return
		}
		want, known := sparseKinds[d.Kind]
		if !known {
			t.Fatalf("well-formed directive with unknown kind %q on %q", d.Kind, text)
		}
		if (d.Arg != "") != (want == 1) {
			t.Fatalf("kind %q arg %q disagrees with arity %d on %q", d.Kind, d.Arg, want, text)
		}
		if strings.IndexFunc(d.Arg, unicode.IsSpace) >= 0 {
			t.Fatalf("arg %q contains whitespace on %q", d.Arg, text)
		}
	})
}
