package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// NoAllocDeep takes the noalloc contract interprocedural: it builds a
// module-level call graph over every loaded package, computes a transitive
// "may allocate" summary per function (cycle-safe: a monotone fixpoint over
// the graph; cached: summaries are computed once per run), and flags any
// call inside a //sparse:noalloc or //sparse:allocfree function whose callee
// transitively allocates — even though the call site itself is lexically
// clean, which is exactly the leak the lexical noalloc check cannot see.
//
// Division of labor with noalloc: the lexical check owns direct allocation
// constructs inside annotated functions; this check owns the call edges out
// of them. Summaries are built from the same collectAllocFacts rules, so the
// two passes can never disagree about what allocates.
//
// //sparse:allocfree is the verified-summary annotation for leaf helpers: an
// annotated callee is trusted by its callers (propagation stops there — its
// own body is verified separately, by both passes), so annotating the
// helpers of a hot path documents and enforces the contract at every level
// instead of re-deriving it through the whole call chain.
//
// Deliberate one-time allocations are excluded at the site, not the caller:
// a //lint:ignore noalloc comment on a direct allocation keeps it out of the
// enclosing function's summary (the same comment the lexical check honors),
// and a //lint:ignore noallocdeep comment on a call line keeps that call
// edge out of the graph (one-time pool warm-up, per-graph layout caches).
//
// Soundness gaps, deliberately accepted: calls through interfaces and
// function values are not resolved, and non-module callees other than fmt
// are assumed allocation-free. Both are documented in DESIGN.md §8; the
// AllocsPerRun assertions remain the runtime backstop.
type NoAllocDeep struct{}

func (NoAllocDeep) Name() string { return "noallocdeep" }

func (NoAllocDeep) Doc() string {
	return "interprocedural noalloc: calls in //sparse:noalloc and //sparse:allocfree functions must not reach an allocating callee (module call graph with transitive summaries)"
}

// Run is a no-op: the check is module-scoped.
func (NoAllocDeep) Run(pass *Pass) {}

// allocNode is one module function in the call graph.
type allocNode struct {
	key       string
	short     string // display name: Recv.Name or Name
	pkg       *Package
	decl      *ast.FuncDecl
	directive string // "", "noalloc", "allocfree"

	facts []allocFact
	calls []allocEdge

	allocates bool
	why       string // witness chain, e.g. "startPool: make"
}

// allocEdge is one resolvable static call.
type allocEdge struct {
	pos    token.Pos
	callee string // funcKey of the callee
}

func (NoAllocDeep) RunModule(mp *ModulePass) {
	nodes := make(map[string]*allocNode)

	// Pass 1: declare every module function so cross-package calls resolve.
	for _, pkg := range mp.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fn.Name].(*types.Func)
				if !ok {
					continue
				}
				nodes[funcKey(obj)] = &allocNode{
					key:       funcKey(obj),
					short:     funcShortName(obj),
					pkg:       pkg,
					decl:      fn,
					directive: funcDirective(fn.Doc),
				}
			}
		}
	}

	// Pass 2: facts and call edges, with //lint:ignore site exclusions.
	for _, pkg := range mp.Pkgs {
		ignored := ignoredSites(pkg, "noalloc", "noallocdeep")
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fn.Name].(*types.Func)
				if !ok {
					continue
				}
				node := nodes[funcKey(obj)]
				for _, fact := range collectAllocFacts(pkg.Info, fn) {
					p := pkg.Fset.Position(fact.pos)
					if coveredBy(ignored, p.Filename, p.Line) {
						continue // deliberate one-time growth: out of the summary
					}
					node.facts = append(node.facts, fact)
				}
				ast.Inspect(fn.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					if isViolatefCall(pkg.Info, call) {
						return false // terminal invariant path: same exemption as the lexical pass
					}
					callee := calleeFunc(pkg.Info, call)
					if callee == nil {
						return true
					}
					key := funcKey(callee)
					if _, inModule := nodes[key]; !inModule {
						return true // external callee: fmt is a lexical fact, the rest assumed clean
					}
					p := pkg.Fset.Position(call.Pos())
					if coveredBy(ignored, p.Filename, p.Line) {
						return true // deliberately excluded call edge
					}
					node.calls = append(node.calls, allocEdge{pos: call.Pos(), callee: key})
					return true
				})
			}
		}
	}

	// Transitive summaries: a monotone fixpoint, iterated in sorted key
	// order so witness chains are deterministic. Annotated functions are
	// trusted by contract — propagation stops at them; their own bodies are
	// verified independently.
	keys := make([]string, 0, len(nodes))
	for k := range nodes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		n := nodes[k]
		if n.directive == "" && len(n.facts) > 0 {
			n.allocates = true
			n.why = n.short + ": " + n.facts[0].short
		}
	}
	for changed := true; changed; {
		changed = false
		for _, k := range keys {
			n := nodes[k]
			if n.allocates || n.directive != "" {
				continue
			}
			for _, e := range n.calls {
				callee := nodes[e.callee]
				if callee.directive != "" || !callee.allocates {
					continue
				}
				n.allocates = true
				n.why = n.short + " → " + callee.why
				changed = true
				break
			}
		}
	}

	// Diagnostics: annotated functions calling an allocating callee.
	for _, k := range keys {
		n := nodes[k]
		if n.directive == "" {
			continue
		}
		for _, e := range n.calls {
			callee := nodes[e.callee]
			if callee.directive != "" || !callee.allocates {
				continue
			}
			mp.Reportf(n.pkg, e.pos,
				"call to %s allocates (%s) in //sparse:%s function",
				callee.short, callee.why, n.directive)
		}
	}
}

// funcKey names a function stably across independently type-checked package
// instances (the source importer and the loader each build their own
// types.Package for a dependency, so object identity does not hold across
// packages — path-qualified names do).
func funcKey(f *types.Func) string {
	pkg := ""
	if f.Pkg() != nil {
		pkg = f.Pkg().Path()
	}
	return pkg + "." + funcShortName(f)
}

// funcShortName renders Recv.Name for methods, Name otherwise.
func funcShortName(f *types.Func) string {
	if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if n, ok := t.(*types.Named); ok {
			return n.Obj().Name() + "." + f.Name()
		}
		// Fallback for exotic receivers: include the type string.
		return strings.TrimPrefix(types.TypeString(t, nil), "*") + "." + f.Name()
	}
	return f.Name()
}
