package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
)

// GuardedBy enforces lock discipline on shared struct state. A field
// annotated
//
//	//sparse:guardedby mu
//
// (doc or line comment on the field; mu names a sibling sync.Mutex or
// sync.RWMutex field) may only be accessed while that mutex is held: the
// check walks every function with a statement-level lock-state abstraction —
// X.mu.Lock()/RLock() acquires, X.mu.Unlock()/RUnlock() releases, defer
// X.mu.Unlock() holds to function end, branches merge by intersection
// (terminating branches drop out) — and flags accesses to an annotated field
// whose base path does not hold its mutex.
//
// Two deliberate exemptions keep the lexical abstraction honest:
//
//   - constructor accesses — a base rooted at a variable declared inside the
//     function body (the &Server{...} the function itself built) cannot be
//     shared yet, so it is exempt;
//   - closures are analyzed with an empty lock state of their own: a
//     goroutine body does not inherit the spawning function's locks.
//
// Independently of annotations, fields of sync/atomic type (atomic.Int64,
// atomic.Pointer[T], ...) must only be used through their methods or have
// their address taken — copying or reassigning an atomic value races with
// its users and defeats the alignment guarantees.
//
// The analysis is lexical, not aliasing-aware: a lock reached through two
// different names is two locks. That is the right cut for this codebase,
// where every guarded structure is accessed through its receiver.
type GuardedBy struct{}

func (GuardedBy) Name() string { return "guardedby" }

func (GuardedBy) Doc() string {
	return "fields annotated //sparse:guardedby <mu> must be accessed holding <mu>; sync/atomic fields must be used through their methods"
}

func (GuardedBy) Run(pass *Pass) {
	if !libraryPackage(pass.Path) {
		return
	}
	guarded := collectGuardedFields(pass)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			g := &guardedbyCtx{pass: pass, guarded: guarded, fn: fn}
			g.walkStmts(fn.Body.List, lockState{})
			checkAtomicFields(pass, fn)
		}
	}
}

// guardedField records one annotated field: the sibling mutex that guards
// it.
type guardedField struct {
	mutex string
}

// collectGuardedFields scans struct declarations for //sparse:guardedby
// annotations, validating that the named guard is a sibling sync.Mutex or
// sync.RWMutex field.
func collectGuardedFields(pass *Pass) map[*types.Var]guardedField {
	guarded := make(map[*types.Var]guardedField)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok || st.Fields == nil {
				return true
			}
			for _, field := range st.Fields.List {
				mutexName, ok := fieldGuardDirective(field)
				if !ok {
					continue
				}
				if !structHasMutexField(pass.Info, st, mutexName) {
					pass.Reportf(field.Pos(), "//sparse:guardedby %s does not name a sibling sync.Mutex/RWMutex field", mutexName)
					continue
				}
				for _, name := range field.Names {
					if v, ok := pass.Info.Defs[name].(*types.Var); ok {
						guarded[v] = guardedField{mutex: mutexName}
					}
				}
			}
			return true
		})
	}
	return guarded
}

// fieldGuardDirective extracts a guardedby annotation from a field's doc or
// trailing line comment.
func fieldGuardDirective(field *ast.Field) (mutex string, ok bool) {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if d, problem, isDir := ParseSparseDirective(c.Text); isDir && problem == "" && d.Kind == "guardedby" {
				return d.Arg, true
			}
		}
	}
	return "", false
}

// structHasMutexField reports whether st declares a field of the given name
// whose type is sync.Mutex or sync.RWMutex.
func structHasMutexField(info *types.Info, st *ast.StructType, name string) bool {
	for _, field := range st.Fields.List {
		for _, fname := range field.Names {
			if fname.Name != name {
				continue
			}
			v, ok := info.Defs[fname].(*types.Var)
			return ok && isMutexType(v.Type())
		}
	}
	return false
}

func isMutexType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return false
	}
	if n.Obj().Pkg().Path() != "sync" {
		return false
	}
	return n.Obj().Name() == "Mutex" || n.Obj().Name() == "RWMutex"
}

// lockState is the set of held lock paths ("<root-pos>.stats.latency.mu").
type lockState map[string]bool

func (s lockState) clone() lockState {
	c := make(lockState, len(s))
	for k := range s {
		c[k] = true
	}
	return c
}

// intersect keeps locks held in every state.
func intersect(states ...lockState) lockState {
	if len(states) == 0 {
		return lockState{}
	}
	out := states[0].clone()
	for _, s := range states[1:] {
		for k := range out {
			if !s[k] {
				delete(out, k)
			}
		}
	}
	return out
}

type guardedbyCtx struct {
	pass    *Pass
	guarded map[*types.Var]guardedField
	fn      *ast.FuncDecl
}

// exprLockPath canonicalizes a selector chain to a stable path string rooted
// at a variable ("<var-pos>" or "<var-pos>.field.field"), also returning the
// root. Reports ok=false for expressions the lexical abstraction cannot
// name (calls, indexing, ...).
func (g *guardedbyCtx) exprLockPath(e ast.Expr) (path string, root *types.Var, ok bool) {
	switch e := e.(type) {
	case *ast.Ident:
		v, isVar := objectOf(g.pass.Info, e).(*types.Var)
		if !isVar {
			return "", nil, false
		}
		return strconv.Itoa(int(v.Pos())), v, true
	case *ast.SelectorExpr:
		p, r, pok := g.exprLockPath(e.X)
		if !pok {
			return "", nil, false
		}
		return p + "." + e.Sel.Name, r, true
	case *ast.ParenExpr:
		return g.exprLockPath(e.X)
	case *ast.StarExpr:
		return g.exprLockPath(e.X)
	}
	return "", nil, false
}

// lockOp classifies a statement-level call as acquire/release of a mutex
// path: X.Lock()/RLock() or X.Unlock()/RUnlock() where X canonicalizes.
func (g *guardedbyCtx) lockOp(call *ast.CallExpr) (path string, acquire, release bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false, false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		acquire = true
	case "Unlock", "RUnlock":
		release = true
	default:
		return "", false, false
	}
	p, _, ok := g.exprLockPath(sel.X)
	if !ok {
		return "", false, false
	}
	return p, acquire, release
}

// walkStmts runs the lock-state abstraction over a statement list and
// returns the state at its end.
func (g *guardedbyCtx) walkStmts(stmts []ast.Stmt, held lockState) lockState {
	for _, s := range stmts {
		held = g.walkStmt(s, held)
	}
	return held
}

func (g *guardedbyCtx) walkStmt(s ast.Stmt, held lockState) lockState {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if path, acq, rel := g.lockOp(call); acq || rel {
				out := held.clone()
				if acq {
					out[path] = true
				} else {
					delete(out, path)
				}
				return out
			}
		}
		g.checkAccesses(s.X, held)
		return held
	case *ast.DeferStmt:
		// defer X.Unlock() holds the lock to function end; other deferred
		// work is checked (args now, closure bodies with their own state).
		if _, _, rel := g.lockOp(s.Call); rel {
			return held
		}
		g.checkAccesses(s.Call, held)
		return held
	case *ast.IfStmt:
		if s.Init != nil {
			held = g.walkStmt(s.Init, held)
		}
		g.checkAccesses(s.Cond, held)
		bodyOut := g.walkStmts(s.Body.List, held.clone())
		if s.Else == nil {
			if terminates(s.Body.List) {
				return held
			}
			return intersect(held, bodyOut)
		}
		elseOut := g.walkStmt(s.Else, held.clone())
		switch {
		case terminates(s.Body.List) && stmtTerminates(s.Else):
			return held
		case terminates(s.Body.List):
			return elseOut
		case stmtTerminates(s.Else):
			return bodyOut
		default:
			return intersect(bodyOut, elseOut)
		}
	case *ast.BlockStmt:
		return g.walkStmts(s.List, held)
	case *ast.ForStmt:
		if s.Init != nil {
			held = g.walkStmt(s.Init, held)
		}
		if s.Cond != nil {
			g.checkAccesses(s.Cond, held)
		}
		bodyOut := g.walkStmts(s.Body.List, held.clone())
		if s.Post != nil {
			bodyOut = g.walkStmt(s.Post, bodyOut)
		}
		return intersect(held, bodyOut)
	case *ast.RangeStmt:
		g.checkAccesses(s.X, held)
		bodyOut := g.walkStmts(s.Body.List, held.clone())
		return intersect(held, bodyOut)
	case *ast.SwitchStmt:
		if s.Init != nil {
			held = g.walkStmt(s.Init, held)
		}
		if s.Tag != nil {
			g.checkAccesses(s.Tag, held)
		}
		return g.walkClauses(s.Body, held)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			held = g.walkStmt(s.Init, held)
		}
		g.checkAccesses(s.Assign, held)
		return g.walkClauses(s.Body, held)
	case *ast.SelectStmt:
		return g.walkClauses(s.Body, held)
	case *ast.LabeledStmt:
		return g.walkStmt(s.Stmt, held)
	case *ast.GoStmt:
		// The goroutine body runs later, under no inherited locks; its
		// arguments are evaluated now.
		for _, a := range s.Call.Args {
			g.checkAccesses(a, held)
		}
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			g.walkStmts(lit.Body.List, lockState{})
		} else {
			g.checkAccesses(s.Call.Fun, held)
		}
		return held
	case nil:
		return held
	default:
		g.checkAccesses(s, held)
		return held
	}
}

// walkClauses merges switch/select clause bodies by intersection with the
// incoming state (no clause may run).
func (g *guardedbyCtx) walkClauses(body *ast.BlockStmt, held lockState) lockState {
	outs := []lockState{held}
	for _, c := range body.List {
		var stmts []ast.Stmt
		switch c := c.(type) {
		case *ast.CaseClause:
			for _, e := range c.List {
				g.checkAccesses(e, held)
			}
			stmts = c.Body
		case *ast.CommClause:
			if c.Comm != nil {
				g.checkAccesses(c.Comm, held)
			}
			stmts = c.Body
		}
		if !terminates(stmts) {
			outs = append(outs, g.walkStmts(stmts, held.clone()))
		} else {
			g.walkStmts(stmts, held.clone())
		}
	}
	return intersect(outs...)
}

// terminates reports whether a statement list always leaves the enclosing
// scope: its last statement returns, branches, or panics.
func terminates(stmts []ast.Stmt) bool {
	if len(stmts) == 0 {
		return false
	}
	return stmtTerminates(stmts[len(stmts)-1])
}

func stmtTerminates(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Violatef" {
				return true
			}
		}
	case *ast.BlockStmt:
		return terminates(s.List)
	}
	return false
}

// checkAccesses flags accesses to guarded fields under the current lock
// state, inside one expression or statement subtree. Function literals are
// re-entered with an empty lock state of their own.
func (g *guardedbyCtx) checkAccesses(n ast.Node, held lockState) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			g.walkStmts(x.Body.List, lockState{})
			return false
		case *ast.SelectorExpr:
			g.checkFieldAccess(x, held)
		}
		return true
	})
}

func (g *guardedbyCtx) checkFieldAccess(sel *ast.SelectorExpr, held lockState) {
	selection, ok := g.pass.Info.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return
	}
	fieldVar, ok := selection.Obj().(*types.Var)
	if !ok {
		return
	}
	gf, ok := g.guarded[fieldVar]
	if !ok {
		return
	}
	basePath, root, ok := g.exprLockPath(sel.X)
	if !ok {
		// Base the lexical abstraction cannot name (call result, index
		// expression): out of scope by design.
		return
	}
	// Constructor exemption: a struct rooted at a variable declared inside
	// this function body is not shared yet.
	if root != nil && g.fn.Body != nil && root.Pos() >= g.fn.Body.Pos() && root.Pos() <= g.fn.Body.End() {
		return
	}
	if !held[basePath+"."+gf.mutex] {
		g.pass.Reportf(sel.Sel.Pos(), "access to %s is not guarded by %s.Lock() (//sparse:guardedby %s)",
			fieldVar.Name(), gf.mutex, gf.mutex)
	}
}

// checkAtomicFields flags copies and reassignments of sync/atomic-typed
// struct fields anywhere in fn: the only sound uses are method calls on the
// field and taking its address.
func checkAtomicFields(pass *Pass, fn *ast.FuncDecl) {
	parents := make(map[ast.Node]ast.Node)
	var stack []ast.Node
	ast.Inspect(fn, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	ast.Inspect(fn, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		selection, ok := pass.Info.Selections[sel]
		if !ok || selection.Kind() != types.FieldVal {
			return true
		}
		fieldVar, ok := selection.Obj().(*types.Var)
		if !ok || !isAtomicType(fieldVar.Type()) {
			return true
		}
		switch p := parents[sel].(type) {
		case *ast.SelectorExpr:
			if p.X == sel {
				if _, isMethod := objectOf(pass.Info, p.Sel).(*types.Func); isMethod {
					return true // s.applied.Load(): the only sound access
				}
			}
		case *ast.UnaryExpr:
			if p.Op == token.AND && p.X == sel {
				return true // &s.applied: passing the atomic by pointer
			}
		}
		pass.Reportf(sel.Sel.Pos(), "non-atomic access to sync/atomic field %s: use its methods or take its address", fieldVar.Name())
		return true
	})
}

func isAtomicType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Path() == "sync/atomic"
}
