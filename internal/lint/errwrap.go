package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// ErrWrap enforces error wrapping: a fmt.Errorf call that formats an
// error-typed operand must use the %w verb, so errors.Is / errors.As keep
// seeing the cause through the added context. Formatting an error with %v or
// %s flattens it to text and severs the chain.
//
// %T is exempt (printing an error's type does not embed the error), and
// operands whose static type does not implement error are ignored.
type ErrWrap struct{}

func (ErrWrap) Name() string { return "errwrap" }

func (ErrWrap) Doc() string {
	return "fmt.Errorf must wrap error operands with %w, not flatten them with %v or %s"
}

func (ErrWrap) Run(pass *Pass) {
	errIface := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isPkgFunc(pass.Info, call, "fmt", "Errorf") || len(call.Args) < 2 {
				return true
			}
			format, ok := stringConstant(pass.Info, call.Args[0])
			if !ok {
				return true
			}
			for _, v := range parseVerbs(format) {
				argIdx := 1 + v.arg // args[0] is the format string
				if v.verb == 'w' || v.verb == 'T' || argIdx >= len(call.Args) {
					continue
				}
				arg := call.Args[argIdx]
				tv, ok := pass.Info.Types[arg]
				if !ok || tv.Type == nil {
					continue
				}
				if types.Implements(tv.Type, errIface) || types.Implements(types.NewPointer(tv.Type), errIface) {
					pass.Reportf(arg.Pos(), "error formatted with %%%c severs the error chain; wrap it with %%w", v.verb)
				}
			}
			return true
		})
	}
}

// stringConstant resolves expr to a compile-time string (literal or
// constant), the only format strings the check can reason about.
func stringConstant(info *types.Info, expr ast.Expr) (string, bool) {
	tv, ok := info.Types[expr]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// verbUse is one formatting verb and the zero-based operand index it
// consumes.
type verbUse struct {
	verb rune
	arg  int
}

// parseVerbs scans a Printf-style format string and pairs each verb with its
// operand index, handling flags, *-widths (which consume an operand), and
// explicit [n] argument indexes.
func parseVerbs(format string) []verbUse {
	var uses []verbUse
	arg := 0
	runes := []rune(format)
	for i := 0; i < len(runes); i++ {
		if runes[i] != '%' {
			continue
		}
		i++
		if i < len(runes) && runes[i] == '%' {
			continue // literal %%
		}
		// Flags.
		for i < len(runes) {
			switch runes[i] {
			case '+', '-', '#', ' ', '0', '\'':
				i++
				continue
			}
			break
		}
		// Width and precision; each * consumes an int operand.
		for i < len(runes) {
			c := runes[i]
			if c == '*' {
				arg++
				i++
				continue
			}
			if c == '.' || (c >= '0' && c <= '9') {
				i++
				continue
			}
			break
		}
		// Explicit argument index [n].
		if i < len(runes) && runes[i] == '[' {
			j := i + 1
			n := 0
			for j < len(runes) && runes[j] >= '0' && runes[j] <= '9' {
				n = 10*n + int(runes[j]-'0')
				j++
			}
			if j < len(runes) && runes[j] == ']' && n > 0 {
				arg = n - 1
				i = j + 1
			}
		}
		if i >= len(runes) {
			break
		}
		uses = append(uses, verbUse{verb: runes[i], arg: arg})
		arg++
	}
	return uses
}
