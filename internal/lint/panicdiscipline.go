package lint

import (
	"go/ast"
	"strings"
)

// PanicDiscipline forbids direct panic calls in library code. Every
// cannot-happen state goes through the single blessed helper
// internal/invariant.Violatef, so deliberate crashes are uniformly formatted
// and greppable, and user-input-reachable failures are forced onto the
// error-returning path (a function that wants to reject caller input cannot
// reach for panic without tripping this check in review).
//
// The invariant package itself is exempt — it hosts the one real panic — as
// are command mains (cmd/, examples/), where panicking on a setup error is
// ordinary top-level error handling; test files are never loaded by the
// driver.
type PanicDiscipline struct{}

func (PanicDiscipline) Name() string { return "panicdiscipline" }

func (PanicDiscipline) Doc() string {
	return "library code must not call panic directly; report invariant violations through internal/invariant.Violatef"
}

// blessedInvariantPkg reports whether path is the invariant helper package,
// the only place a panic call is allowed.
func blessedInvariantPkg(path string) bool {
	return path == "internal/invariant" || strings.HasSuffix(path, "/internal/invariant")
}

func (PanicDiscipline) Run(pass *Pass) {
	if blessedInvariantPkg(pass.Path) || !libraryPackage(pass.Path) {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isBuiltinCall(pass.Info, call, "panic") {
				return true
			}
			pass.Reportf(call.Pos(), "direct panic call; report invariant violations through invariant.Violatef, or return an error if callers can trigger this")
			return true
		})
	}
}
