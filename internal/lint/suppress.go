package lint

import (
	"strings"
)

// suppression is one parsed //lint:ignore comment: it silences diagnostics of
// the named check that land in file on the comment's own line or the line
// directly below it (so both end-of-line and standalone-above placements
// work).
type suppression struct {
	file  string
	line  int
	check string
}

// ignorePrefix is the comment marker, following the staticcheck convention.
const ignorePrefix = "lint:ignore"

// collectSuppressions scans a package's comments for //lint:ignore markers.
// Malformed markers (missing check name or reason) and markers naming a check
// the driver does not know are returned as diagnostics of the "lint"
// pseudo-check, so suppressions cannot silently rot when a check is renamed.
func collectSuppressions(pkg *Package, known map[string]bool) (sup []suppression, bad []Diagnostic) {
	report := func(pos int, line int, file string, msg string) {
		bad = append(bad, Diagnostic{
			Check:   "lint",
			File:    file,
			Line:    line,
			Col:     pos,
			Message: msg,
		})
	}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, ignorePrefix) {
					continue
				}
				position := pkg.Fset.Position(c.Pos())
				rest := strings.TrimSpace(strings.TrimPrefix(text, ignorePrefix))
				fields := strings.Fields(rest)
				switch {
				case len(fields) == 0:
					report(position.Column, position.Line, position.Filename,
						"malformed //lint:ignore: want \"//lint:ignore <check> <reason>\"")
				case len(fields) == 1:
					report(position.Column, position.Line, position.Filename,
						"//lint:ignore "+fields[0]+" is missing a reason")
				case !known[fields[0]]:
					report(position.Column, position.Line, position.Filename,
						"//lint:ignore names unknown check "+fields[0])
				default:
					sup = append(sup, suppression{
						file:  position.Filename,
						line:  position.Line,
						check: fields[0],
					})
				}
			}
		}
	}
	return sup, bad
}

// applySuppressions drops diagnostics covered by a suppression. A
// suppression covers its own line and the next line of the same file, for
// the matching check only; the "lint" pseudo-check is never suppressible.
func applySuppressions(diags []Diagnostic, sup []suppression) []Diagnostic {
	if len(sup) == 0 {
		return diags
	}
	type key struct {
		file  string
		line  int
		check string
	}
	covered := make(map[key]bool, 2*len(sup))
	for _, s := range sup {
		covered[key{s.file, s.line, s.check}] = true
		covered[key{s.file, s.line + 1, s.check}] = true
	}
	kept := diags[:0]
	for _, d := range diags {
		if d.Check != "lint" && covered[key{d.File, d.Line, d.Check}] {
			continue
		}
		kept = append(kept, d)
	}
	return kept
}
