package lint

// suppression is one parsed //lint:ignore comment: it silences diagnostics of
// the named check that land in file on the comment's own line or the line
// directly below it (so both end-of-line and standalone-above placements
// work).
type suppression struct {
	file  string
	line  int
	check string
}

// ignorePrefix is the comment marker, following the staticcheck convention.
const ignorePrefix = "lint:ignore"

// collectSuppressions scans a package's comments for //lint:ignore markers.
// Malformed markers (missing check name or reason) and markers naming a check
// the driver does not know are returned as diagnostics of the "lint"
// pseudo-check, so suppressions cannot silently rot when a check is renamed.
func collectSuppressions(pkg *Package, known map[string]bool) (sup []suppression, bad []Diagnostic) {
	report := func(pos int, line int, file string, msg string) {
		bad = append(bad, Diagnostic{
			Check:    "lint",
			Severity: "error",
			File:     file,
			Line:     line,
			Col:      pos,
			Message:  msg,
		})
	}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				check, _, status := ParseIgnoreDirective(c.Text)
				if status == IgnoreNone {
					continue
				}
				position := pkg.Fset.Position(c.Pos())
				switch {
				case status == IgnoreMissingCheck:
					report(position.Column, position.Line, position.Filename,
						"malformed //lint:ignore: want \"//lint:ignore <check> <reason>\"")
				case status == IgnoreMissingReason:
					report(position.Column, position.Line, position.Filename,
						"//lint:ignore "+check+" is missing a reason")
				case !known[check]:
					report(position.Column, position.Line, position.Filename,
						"//lint:ignore names unknown check "+check)
				default:
					sup = append(sup, suppression{
						file:  position.Filename,
						line:  position.Line,
						check: check,
					})
				}
			}
		}
	}
	return sup, bad
}

// ignoredSites returns the (file, line) positions of every well-formed
// //lint:ignore comment naming one of the given checks, regardless of
// whether the check is registered in this run. The interprocedural
// allocation summaries consult this so a suppressed allocation site does not
// poison its function's summary (see noallocdeep.go).
func ignoredSites(pkg *Package, checks ...string) map[fileLine]bool {
	want := make(map[string]bool, len(checks))
	for _, c := range checks {
		want[c] = true
	}
	sites := make(map[fileLine]bool)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				check, _, status := ParseIgnoreDirective(c.Text)
				if status != IgnoreOK || !want[check] {
					continue
				}
				position := pkg.Fset.Position(c.Pos())
				sites[fileLine{position.Filename, position.Line}] = true
			}
		}
	}
	return sites
}

// fileLine keys a source line.
type fileLine struct {
	file string
	line int
}

// coveredBy reports whether a site at (file, line) is covered by one of the
// suppression comment positions in sites: the comment's own line or the line
// directly above the site.
func coveredBy(sites map[fileLine]bool, file string, line int) bool {
	return sites[fileLine{file, line}] || sites[fileLine{file, line - 1}]
}

// applySuppressions drops diagnostics covered by a suppression. A
// suppression covers its own line and the next line of the same file, for
// the matching check only; the "lint" pseudo-check is never suppressible.
func applySuppressions(diags []Diagnostic, sup []suppression) []Diagnostic {
	if len(sup) == 0 {
		return diags
	}
	type key struct {
		file  string
		line  int
		check string
	}
	covered := make(map[key]bool, 2*len(sup))
	for _, s := range sup {
		covered[key{s.file, s.line, s.check}] = true
		covered[key{s.file, s.line + 1, s.check}] = true
	}
	kept := diags[:0]
	for _, d := range diags {
		if d.Check != "lint" && covered[key{d.File, d.Line, d.Check}] {
			continue
		}
		kept = append(kept, d)
	}
	return kept
}
