package lint

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// BaselineVersion is the schema tag of the committed baseline file.
const BaselineVersion = "sparselint/baseline/v1"

// Baseline is a committed set of accepted findings: CI fails only on
// findings NOT in the baseline, so a new check can land with pre-existing
// debt recorded instead of blocking the tree. Entries match on
// (check, file, message) — deliberately not on line/column, so unrelated
// edits that shift a finding down a file do not break the build.
type Baseline struct {
	Version string          `json:"version"`
	Entries []BaselineEntry `json:"entries"`
}

// BaselineEntry identifies one accepted finding.
type BaselineEntry struct {
	Check   string `json:"check"`
	File    string `json:"file"`
	Message string `json:"message"`
}

func baselineKey(check, file, message string) string {
	return check + "\x00" + file + "\x00" + message
}

// ReadBaseline loads and validates a baseline file.
func ReadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("baseline %s: %w", path, err)
	}
	if b.Version != BaselineVersion {
		return nil, fmt.Errorf("baseline %s: version %q, want %q", path, b.Version, BaselineVersion)
	}
	return &b, nil
}

// NewBaseline builds a baseline from current findings, sorted and
// de-duplicated so the file is stable under re-generation.
func NewBaseline(diags []Diagnostic) *Baseline {
	seen := make(map[string]bool, len(diags))
	b := &Baseline{Version: BaselineVersion, Entries: []BaselineEntry{}}
	for _, d := range diags {
		k := baselineKey(d.Check, d.File, d.Message)
		if seen[k] {
			continue
		}
		seen[k] = true
		b.Entries = append(b.Entries, BaselineEntry{Check: d.Check, File: d.File, Message: d.Message})
	}
	sort.Slice(b.Entries, func(i, j int) bool {
		a, c := b.Entries[i], b.Entries[j]
		if a.File != c.File {
			return a.File < c.File
		}
		if a.Check != c.Check {
			return a.Check < c.Check
		}
		return a.Message < c.Message
	})
	return b
}

// Filter removes diagnostics matched by the baseline. An entry absorbs every
// finding with its (check, file, message) — the coarse cut that stays stable
// when lines move. Paths must be in the same form (relative vs absolute) on
// both sides; the CLI relativizes before filtering.
func (b *Baseline) Filter(diags []Diagnostic) (fresh []Diagnostic) {
	accepted := make(map[string]bool, len(b.Entries))
	for _, e := range b.Entries {
		accepted[baselineKey(e.Check, e.File, e.Message)] = true
	}
	for _, d := range diags {
		if accepted[baselineKey(d.Check, d.File, d.Message)] {
			continue
		}
		fresh = append(fresh, d)
	}
	return fresh
}

// WriteBaseline serializes a baseline to path, newline-terminated and
// indented for reviewable diffs.
func WriteBaseline(path string, b *Baseline) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
