package lint

// AllChecks returns the full check catalog, in the order diagnostics are
// documented in DESIGN.md §8. Adding a check means implementing the Check
// interface, listing it here, and giving it a golden testdata package under
// internal/lint/testdata/<name>/.
func AllChecks() []Check {
	return []Check{
		Determinism{},
		NoAlloc{},
		PanicDiscipline{},
		ErrWrap{},
	}
}

// CheckNames returns the names of all registered checks.
func CheckNames() []string {
	checks := AllChecks()
	names := make([]string, len(checks))
	for i, c := range checks {
		names[i] = c.Name()
	}
	return names
}
