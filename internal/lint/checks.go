package lint

import "sort"

// AllChecks returns the full check catalog, in the order diagnostics are
// documented in DESIGN.md §8. Adding a check means implementing the Check
// interface (or ModuleCheck for module-scoped passes), listing it here,
// giving it a severity below, and a golden testdata package under
// internal/lint/testdata/src/<name>/.
func AllChecks() []Check {
	return []Check{
		Determinism{},
		NoAlloc{},
		NoAllocDeep{},
		PanicDiscipline{},
		ErrWrap{},
		DecodeBound{},
		GuardedBy{},
	}
}

// CheckNames returns the names of all registered checks.
func CheckNames() []string {
	checks := AllChecks()
	names := make([]string, len(checks))
	for i, c := range checks {
		names[i] = c.Name()
	}
	return names
}

// CheckSeverity maps a check name to its reporting severity. Everything that
// pins a correctness or performance contract is an error; guardedby is a
// warning while the lock-discipline annotations roll out (the lexical
// abstraction is deliberately conservative, and the race detector remains the
// runtime backstop). The "lint" pseudo-check (malformed directives, unknown
// check names) is always an error: broken annotations must not rot silently.
func CheckSeverity(name string) string {
	if name == "guardedby" {
		return "warning"
	}
	return "error"
}

// SelectChecks filters the catalog down to a comma-separated name list, in
// catalog order. An empty selector means all checks. Unknown names are
// returned so the caller can fail loudly instead of silently running a
// subset.
func SelectChecks(names []string) (checks []Check, unknown []string) {
	if len(names) == 0 {
		return AllChecks(), nil
	}
	want := make(map[string]bool, len(names))
	for _, n := range names {
		want[n] = true
	}
	for _, c := range AllChecks() {
		if want[c.Name()] {
			checks = append(checks, c)
			delete(want, c.Name())
		}
	}
	for n := range want {
		unknown = append(unknown, n)
	}
	sort.Strings(unknown)
	return checks, unknown
}
