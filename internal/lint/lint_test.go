package lint

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// testLoader is shared across tests so the stdlib is type-checked from
// source once per test binary.
var (
	loaderOnce sync.Once
	loader     *Loader
	loaderRoot string
)

func sharedLoader(t *testing.T) (*Loader, string) {
	t.Helper()
	loaderOnce.Do(func() {
		root, err := ModuleRoot(".")
		if err != nil {
			panic(err)
		}
		loaderRoot = root
		loader = NewLoader(root)
	})
	return loader, loaderRoot
}

// loadTestdata loads internal/lint/testdata/src/<name> under the given
// synthetic import path.
func loadTestdata(t *testing.T, name, path string) *Package {
	t.Helper()
	ld, root := sharedLoader(t)
	dir := filepath.Join(root, "internal", "lint", "testdata", "src", name)
	pkg, err := ld.LoadDir(dir, path)
	if err != nil {
		t.Fatalf("load %s: %v", name, err)
	}
	if pkg == nil {
		t.Fatalf("load %s: no Go files", name)
	}
	return pkg
}

// wantRe extracts expected-diagnostic patterns from comments:
//
//	expr // want "regexp"
//	expr // want `regexp`
var wantRe = regexp.MustCompile("want (?:\"([^\"]*)\"|`([^`]*)`)")

// expectedWants maps file:line to the want patterns declared on that line.
func expectedWants(pkg *Package) map[string][]*regexp.Regexp {
	wants := make(map[string][]*regexp.Regexp)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				for _, m := range wantRe.FindAllStringSubmatch(c.Text, -1) {
					pat := m[1]
					if pat == "" {
						pat = m[2]
					}
					pos := pkg.Fset.Position(c.Pos())
					key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
					wants[key] = append(wants[key], regexp.MustCompile(regexp.QuoteMeta(pat)))
				}
			}
		}
	}
	return wants
}

// checkGolden runs checks over the package and compares the resulting
// diagnostics against the // want comments: every want must fire, and every
// diagnostic must be wanted.
func checkGolden(t *testing.T, pkg *Package, checks []Check) {
	t.Helper()
	diags := Run([]*Package{pkg}, checks)
	wants := expectedWants(pkg)
	matched := make(map[string]int)
	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", d.File, d.Line)
		ok := false
		for _, re := range wants[key] {
			if re.MatchString(d.Message) {
				ok = true
				matched[key]++
				break
			}
		}
		if !ok {
			t.Errorf("unexpected diagnostic at %s: %s: %s", key, d.Check, d.Message)
		}
	}
	for key, res := range wants {
		if matched[key] == 0 {
			pats := make([]string, len(res))
			for i, re := range res {
				pats[i] = re.String()
			}
			t.Errorf("no diagnostic at %s matching %s", key, strings.Join(pats, " | "))
		}
	}
}

func TestDeterminismGolden(t *testing.T) {
	pkg := loadTestdata(t, "determinism", "sparselint/testdata/determinism")
	checkGolden(t, pkg, []Check{Determinism{}})
}

func TestNoAllocGolden(t *testing.T) {
	pkg := loadTestdata(t, "noalloc", "sparselint/testdata/noalloc")
	checkGolden(t, pkg, []Check{NoAlloc{}})
}

func TestPanicDisciplineGolden(t *testing.T) {
	pkg := loadTestdata(t, "panicdiscipline", "sparselint/testdata/panicdiscipline")
	checkGolden(t, pkg, []Check{PanicDiscipline{}})
}

func TestErrWrapGolden(t *testing.T) {
	pkg := loadTestdata(t, "errwrap", "sparselint/testdata/errwrap")
	checkGolden(t, pkg, []Check{ErrWrap{}})
}

func TestDecodeBoundGolden(t *testing.T) {
	pkg := loadTestdata(t, "decodebound", "sparselint/testdata/decodebound")
	checkGolden(t, pkg, []Check{DecodeBound{}})
}

// TestNoAllocDeepGolden runs both allocation passes together: the testdata
// uses //lint:ignore noalloc suppressions, which must name a known check.
func TestNoAllocDeepGolden(t *testing.T) {
	pkg := loadTestdata(t, "noallocdeep", "sparselint/testdata/noallocdeep")
	checkGolden(t, pkg, []Check{NoAlloc{}, NoAllocDeep{}})
}

func TestGuardedByGolden(t *testing.T) {
	pkg := loadTestdata(t, "guardedby", "sparselint/testdata/guardedby")
	checkGolden(t, pkg, []Check{GuardedBy{}})
}

func TestSuppressionGolden(t *testing.T) {
	pkg := loadTestdata(t, "suppress", "sparselint/testdata/suppress")
	checkGolden(t, pkg, AllChecks())
}

// TestSuppressionMalformed pins the driver diagnostics for markers that are
// missing a reason or a check name (these cannot carry same-line want
// comments, so they are asserted directly).
func TestSuppressionMalformed(t *testing.T) {
	pkg := loadTestdata(t, "suppressbad", "sparselint/testdata/suppressbad")
	diags := Run([]*Package{pkg}, AllChecks())
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2: %v", len(diags), diags)
	}
	if diags[0].Check != "lint" || !strings.Contains(diags[0].Message, "missing a reason") {
		t.Errorf("diag 0 = %v, want missing-reason finding", diags[0])
	}
	if diags[1].Check != "lint" || !strings.Contains(diags[1].Message, "malformed //lint:ignore") {
		t.Errorf("diag 1 = %v, want malformed finding", diags[1])
	}
	if diags[0].Line != 6 || diags[1].Line != 9 {
		t.Errorf("lines = %d, %d; want 6, 9", diags[0].Line, diags[1].Line)
	}
}

// TestSparseDirectiveMalformed pins the driver findings for broken //sparse:
// annotations: wrong arity and unknown kind (asserted directly, since the
// directive grammar swallows same-line want comments).
func TestSparseDirectiveMalformed(t *testing.T) {
	pkg := loadTestdata(t, "sparsebad", "sparselint/testdata/sparsebad")
	diags := Run([]*Package{pkg}, AllChecks())
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2: %v", len(diags), diags)
	}
	if diags[0].Check != "lint" || !strings.Contains(diags[0].Message, "takes exactly 1 argument, got 0") {
		t.Errorf("diag 0 = %v, want guardedby arity finding", diags[0])
	}
	if diags[1].Check != "lint" || !strings.Contains(diags[1].Message, "not a known directive") {
		t.Errorf("diag 1 = %v, want unknown-kind finding", diags[1])
	}
	if diags[0].Line != 5 || diags[1].Line != 8 {
		t.Errorf("lines = %d, %d; want 5, 8", diags[0].Line, diags[1].Line)
	}
	for _, d := range diags {
		if d.Severity != "error" {
			t.Errorf("driver finding severity = %q, want error: %v", d.Severity, d)
		}
	}
}

// TestScopeExemptions verifies the library-only checks skip command mains,
// the harness, and the blessed invariant package, by reloading violating
// testdata under exempt import paths.
func TestScopeExemptions(t *testing.T) {
	for _, tc := range []struct {
		testdata, path string
		checks         []Check
	}{
		{"determinism", "repro/cmd/tool", []Check{Determinism{}}},
		{"determinism", "repro/examples/demo", []Check{Determinism{}}},
		{"determinism", "repro/internal/harness", []Check{Determinism{}}},
		{"panicdiscipline", "repro/cmd/tool", []Check{PanicDiscipline{}}},
		{"panicdiscipline", "repro/internal/invariant", []Check{PanicDiscipline{}}},
	} {
		pkg := loadTestdata(t, tc.testdata, tc.path)
		if diags := Run([]*Package{pkg}, tc.checks); len(diags) != 0 {
			t.Errorf("%s as %s: got %d diagnostics, want 0: %v", tc.testdata, tc.path, len(diags), diags)
		}
	}
}

// TestSelfLintV2 asserts the whole module is clean under every check of the
// v2 catalog (all seven, interprocedural and lock-discipline passes
// included), modulo the committed baseline — which this test also requires
// to be exactly in sync: no finding outside the baseline, no baseline entry
// that no longer fires. It pins the panic migration, the map-order fixes,
// the noalloc/allocfree annotations, the decoder bound guards, and the serve
// guardedby annotations.
func TestSelfLintV2(t *testing.T) {
	if testing.Short() {
		t.Skip("self-lint type-checks the whole module; skipped in -short")
	}
	_, root := sharedLoader(t)
	pkgs, err := LoadModule(root)
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("LoadModule found only %d packages; the walk is broken", len(pkgs))
	}
	diags := Run(pkgs, AllChecks())
	for i := range diags {
		if rel, err := filepath.Rel(root, diags[i].File); err == nil && !strings.HasPrefix(rel, "..") {
			diags[i].File = filepath.ToSlash(rel)
		}
	}

	baseline, err := ReadBaseline(filepath.Join(root, ".sparselint-baseline.json"))
	if err != nil {
		t.Fatalf("ReadBaseline: %v", err)
	}
	for _, d := range baseline.Filter(diags) {
		t.Errorf("module not lint-clean (and not baselined): %s", d)
	}
	// Baseline-exact: every accepted entry must still fire, so stale debt
	// records cannot mask a future regression at the same (check, file).
	fired := make(map[string]bool, len(diags))
	for _, d := range diags {
		fired[d.Check+"\x00"+d.File+"\x00"+d.Message] = true
	}
	for _, e := range baseline.Entries {
		if !fired[e.Check+"\x00"+e.File+"\x00"+e.Message] {
			t.Errorf("stale baseline entry no longer fires: %s %s: %s", e.Check, e.File, e.Message)
		}
	}
}

// TestCheckNamesUniqueAndDocumented guards the registry.
func TestCheckNamesUniqueAndDocumented(t *testing.T) {
	seen := make(map[string]bool)
	for _, c := range AllChecks() {
		if c.Name() == "" || c.Doc() == "" {
			t.Errorf("check %T has empty Name or Doc", c)
		}
		if c.Name() == "lint" {
			t.Errorf("check name %q collides with the driver pseudo-check", c.Name())
		}
		if seen[c.Name()] {
			t.Errorf("duplicate check name %q", c.Name())
		}
		seen[c.Name()] = true
	}
}
