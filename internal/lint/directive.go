package lint

import (
	"go/ast"
	"strconv"
	"strings"
)

// This file holds the parsers for the two comment directive families the
// driver understands:
//
//	//lint:ignore <check> <reason>     — site suppression (suppress.go)
//	//sparse:<kind> [arg]              — contract annotations
//
// Both parsers are pure functions over the raw comment text so they can be
// fuzzed directly (FuzzSuppressDirective): they must never panic and must be
// deterministic for any input.

// IgnoreStatus classifies a comment against the //lint:ignore grammar.
type IgnoreStatus int

const (
	// IgnoreNone: the comment is not an ignore directive at all.
	IgnoreNone IgnoreStatus = iota
	// IgnoreOK: a well-formed //lint:ignore <check> <reason>.
	IgnoreOK
	// IgnoreMissingCheck: bare "//lint:ignore" with nothing after it.
	IgnoreMissingCheck
	// IgnoreMissingReason: a check name but no reason. Reasons are
	// mandatory — an unexplained suppression is a future bug.
	IgnoreMissingReason
)

// ParseIgnoreDirective parses one raw comment ("//..." form, as in
// ast.Comment.Text) against the //lint:ignore grammar. check and reason are
// only meaningful when status is IgnoreOK (check is also set for
// IgnoreMissingReason, so the caller can name it in the finding).
func ParseIgnoreDirective(text string) (check, reason string, status IgnoreStatus) {
	body, ok := strings.CutPrefix(text, "//")
	if !ok {
		return "", "", IgnoreNone
	}
	body = strings.TrimSpace(body)
	rest, ok := strings.CutPrefix(body, ignorePrefix)
	if !ok {
		return "", "", IgnoreNone
	}
	fields := strings.Fields(rest)
	switch len(fields) {
	case 0:
		return "", "", IgnoreMissingCheck
	case 1:
		return fields[0], "", IgnoreMissingReason
	default:
		return fields[0], strings.Join(fields[1:], " "), IgnoreOK
	}
}

// SparseDirective is one parsed //sparse:<kind> annotation.
type SparseDirective struct {
	// Kind is the directive kind: "noalloc", "allocfree", or "guardedby".
	Kind string
	// Arg is the directive argument — for guardedby, the name of the
	// sibling mutex field. Empty for the argument-less kinds.
	Arg string
}

// sparsePrefix marks an annotation comment. The directive must be the whole
// comment (after the "//"), so prose that merely mentions an annotation —
// including indented doc-comment examples, which retain their leading "//"
// after trimming — never parses as one.
const sparsePrefix = "sparse:"

// sparseKinds is the directive grammar: kind → exact argument count.
var sparseKinds = map[string]int{
	"noalloc":   0, // function contract: no steady-state allocation (noalloc, noallocdeep)
	"allocfree": 0, // verified helper summary: callers may rely on it (noalloc, noallocdeep)
	"guardedby": 1, // field contract: accesses hold the named sibling mutex (guardedby)
}

// ParseSparseDirective parses one raw comment against the //sparse:<kind>
// grammar. isDirective is false when the comment is not a sparse directive at
// all; a non-empty problem describes a malformed directive (unknown kind or
// wrong argument count), which the driver reports as a "lint" finding so
// annotations cannot silently rot.
func ParseSparseDirective(text string) (d SparseDirective, problem string, isDirective bool) {
	body, ok := strings.CutPrefix(text, "//")
	if !ok {
		return SparseDirective{}, "", false
	}
	body = strings.TrimSpace(body)
	rest, ok := strings.CutPrefix(body, sparsePrefix)
	if !ok {
		return SparseDirective{}, "", false
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return SparseDirective{}, "//sparse: directive is missing a kind (noalloc, allocfree, guardedby)", true
	}
	kind, args := fields[0], fields[1:]
	want, known := sparseKinds[kind]
	if !known {
		return SparseDirective{}, "//sparse:" + kind + " is not a known directive (noalloc, allocfree, guardedby)", true
	}
	if len(args) != want {
		return SparseDirective{}, "//sparse:" + kind + " takes exactly " + argCountWord(want) + ", got " + argCountWord(len(args)), true
	}
	d = SparseDirective{Kind: kind}
	if want == 1 {
		d.Arg = args[0]
	}
	return d, "", true
}

func argCountWord(n int) string {
	if n == 1 {
		return "1 argument"
	}
	return strconv.Itoa(n) + " arguments"
}

// funcDirective returns the allocation-contract annotation ("noalloc" or
// "allocfree") carried by a function's doc comment, or "".
func funcDirective(doc *ast.CommentGroup) string {
	if doc == nil {
		return ""
	}
	for _, c := range doc.List {
		if d, problem, ok := ParseSparseDirective(c.Text); ok && problem == "" {
			if d.Kind == "noalloc" || d.Kind == "allocfree" {
				return d.Kind
			}
		}
	}
	return ""
}
