package lint

import (
	"go/ast"
	"go/types"
)

// Determinism enforces the reproducibility contract on library packages: the
// matchings, traces, and accounting the module commits to disk are
// bit-identical across runs (PR 3's zero-fault byte-identity, PR 4's
// identical-for-every-worker-count engine), which forbids three classes of
// nondeterminism in library code:
//
//  1. wall-clock reads (time.Now, time.Since);
//  2. draws from the global math/rand source — every random decision must
//     flow from an explicitly seeded *rand.Rand / PCG so a seed pins the run;
//  3. map iteration whose order can leak into results: a for-range over a map
//     whose body appends to a slice, sends on a channel, or writes output.
//
// Commands (cmd/, examples/) and the experiment harness are exempt; tests are
// never loaded.
type Determinism struct{}

func (Determinism) Name() string { return "determinism" }

func (Determinism) Doc() string {
	return "library code must not read wall clocks, draw from the global math/rand source, or leak map iteration order into slices, channels, or output"
}

// globalRandExempt lists the package-level functions of math/rand and
// math/rand/v2 that do NOT draw from the global source: constructors for
// explicitly seeded generators.
var globalRandExempt = map[string]bool{
	"New":        true,
	"NewPCG":     true,
	"NewChaCha8": true,
	"NewSource":  true,
	"NewZipf":    true,
}

func (Determinism) Run(pass *Pass) {
	if !libraryPackage(pass.Path) {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if isPkgFunc(pass.Info, n, "time", "Now") {
					pass.Reportf(n.Pos(), "time.Now in library code breaks run reproducibility; thread a timestamp in from the caller")
				}
				if isPkgFunc(pass.Info, n, "time", "Since") {
					pass.Reportf(n.Pos(), "time.Since reads the wall clock; thread durations in from the caller")
				}
				if path, name, isMethod := funcPkgPath(pass.Info, n); !isMethod &&
					(path == "math/rand" || path == "math/rand/v2") && !globalRandExempt[name] {
					pass.Reportf(n.Pos(), "rand.%s draws from the global math/rand source; use an explicitly seeded *rand.Rand", name)
				}
			case *ast.RangeStmt:
				checkMapRange(pass, n)
			}
			return true
		})
	}
}

// checkMapRange flags for-range statements over map values whose body
// performs an order-sensitive effect. Iterating a map to fill another map,
// sum a counter, or find a max is fine; appending, sending, and printing all
// bake the (randomized) iteration order into an observable artifact.
func checkMapRange(pass *Pass, rng *ast.RangeStmt) {
	tv, ok := pass.Info.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	if isKeyCollectionLoop(rng) {
		// `for k := range m { keys = append(keys, k) }` is the canonical
		// collect-then-sort idiom this check recommends; flagging it would
		// make the advice self-defeating. The subsequent sort is the
		// caller's responsibility.
		return
	}
	reportEffects(pass, rng.Body)
}

// isKeyCollectionLoop matches the exempt shape: a single-statement body
// `keys = append(keys, k)` where k is the loop's key variable.
func isKeyCollectionLoop(rng *ast.RangeStmt) bool {
	key, ok := rng.Key.(*ast.Ident)
	if !ok || len(rng.Body.List) != 1 {
		return false
	}
	assign, ok := rng.Body.List[0].(*ast.AssignStmt)
	if !ok || len(assign.Rhs) != 1 {
		return false
	}
	call, ok := assign.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return false
	}
	if fn, ok := call.Fun.(*ast.Ident); !ok || fn.Name != "append" {
		return false
	}
	arg, ok := call.Args[1].(*ast.Ident)
	return ok && arg.Name == key.Name
}

// reportEffects flags the order-sensitive effects inside a map-range body.
func reportEffects(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			pass.Reportf(n.Pos(), "channel send inside map iteration leaks map order; collect and sort keys first")
		case *ast.CallExpr:
			if isBuiltinCall(pass.Info, n, "append") {
				pass.Reportf(n.Pos(), "append inside map iteration leaks map order into the slice; collect and sort keys first")
				return true
			}
			if path, name, _ := funcPkgPath(pass.Info, n); path == "fmt" &&
				(name == "Print" || name == "Println" || name == "Printf" ||
					name == "Fprint" || name == "Fprintln" || name == "Fprintf") {
				pass.Reportf(n.Pos(), "fmt.%s inside map iteration emits output in map order; collect and sort keys first", name)
			}
		}
		return true
	})
}
