package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NoAlloc enforces the steady-state zero-allocation contract on functions
// annotated
//
//	//sparse:noalloc
//
// in their doc comment (the PR-4 engine hot paths, each pinned by a
// testing.AllocsPerRun assertion — see DESIGN.md §7), and on helper
// functions annotated
//
//	//sparse:allocfree
//
// (verified leaf summaries the interprocedural noallocdeep check relies on).
// Inside an annotated function it flags the constructs that heap-allocate on
// every call:
//
//   - make, new, and address-of composite literals (&T{...});
//   - append whose destination is not rooted at the receiver, a parameter,
//     or a function-local variable (i.e. appends that grow memory the
//     function does not own as an arena);
//   - string concatenation (+ on strings builds a fresh string);
//   - any call into fmt (formatting always allocates);
//   - closure creation (func literals).
//
// Deliberate warm-up/growth allocations inside an annotated function carry a
// //lint:ignore noalloc suppression naming the arena they grow. Calls to
// invariant.Violatef are exempt wholesale: invariant failures are terminal,
// so their formatting cost is irrelevant.
//
// The check is lexical — it does not chase allocations into callees; that is
// noallocdeep's job. Together they split the contract cleanly: noalloc owns
// the direct constructs inside annotated functions, noallocdeep owns the
// call edges out of them.
type NoAlloc struct{}

func (NoAlloc) Name() string { return "noalloc" }

func (NoAlloc) Doc() string {
	return "functions annotated //sparse:noalloc or //sparse:allocfree must not allocate: no make/new/&composite, no foreign appends, no string +, no fmt, no closures"
}

func (NoAlloc) Run(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			marker := funcDirective(fn.Doc)
			if marker == "" {
				continue
			}
			for _, fact := range collectAllocFacts(pass.Info, fn) {
				pass.Reportf(fact.pos, "%s in //sparse:%s function", fact.long, marker)
			}
		}
	}
}

// allocFact is one lexically-detected allocation site inside a function.
// short is the compact description used in interprocedural summary chains
// ("make", "fmt.Sprintf call"); long is the full clause used in lexical
// diagnostics ("make ...; preallocate in an engine arena").
type allocFact struct {
	pos   token.Pos
	short string
	long  string
}

// collectAllocFacts returns the direct allocation sites of fn, in source
// order. The rules are exactly the lexical noalloc contract; both the
// lexical check and the interprocedural summaries (noallocdeep) are built on
// this one collector so they can never disagree about what allocates.
func collectAllocFacts(info *types.Info, fn *ast.FuncDecl) []allocFact {
	var facts []allocFact
	add := func(pos token.Pos, short, long string) {
		facts = append(facts, allocFact{pos: pos, short: short, long: long})
	}
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if isViolatefCall(info, n) {
				return false // terminal invariant path: formatting cost is irrelevant
			}
			switch {
			case isBuiltinCall(info, n, "make"):
				add(n.Pos(), "make", "make")
			case isBuiltinCall(info, n, "new"):
				add(n.Pos(), "new", "new")
			case isBuiltinCall(info, n, "append"):
				if len(n.Args) > 0 && !ownedRoot(info, fn, n.Args[0]) {
					add(n.Pos(), "foreign append", "append to a slice the function does not own")
				}
			default:
				if path, name, _ := funcPkgPath(info, n); path == "fmt" {
					add(n.Pos(), "fmt."+name+" call", "fmt."+name+" allocates")
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					add(n.Pos(), "&composite literal", "address-of composite literal escapes")
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				if tv, ok := info.Types[n.X]; ok {
					if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						add(n.Pos(), "string concatenation", "string concatenation allocates")
					}
				}
			}
		case *ast.FuncLit:
			add(n.Pos(), "closure creation", "closure creation allocates")
			return false // the closure body runs under its own contract
		}
		return true
	}
	ast.Inspect(fn.Body, walk)
	return facts
}

// isViolatefCall reports whether call is invariant.Violatef — the blessed
// terminal-panic helper (see the panicdiscipline check).
func isViolatefCall(info *types.Info, call *ast.CallExpr) bool {
	path, name, isMethod := funcPkgPath(info, call)
	return !isMethod && name == "Violatef" && blessedInvariantPkg(path)
}

// ownedRoot reports whether the destination slice expression is rooted at a
// variable the function owns: its receiver, a parameter, or a local. Walks
// through selectors, indexing, derefs, and parens to the base identifier —
// e.g. e.ws[w].paths roots at the receiver e.
func ownedRoot(info *types.Info, fn *ast.FuncDecl, dst ast.Expr) bool {
	for {
		switch x := ast.Unparen(dst).(type) {
		case *ast.SelectorExpr:
			dst = x.X
		case *ast.IndexExpr:
			dst = x.X
		case *ast.StarExpr:
			dst = x.X
		case *ast.SliceExpr:
			dst = x.X
		case *ast.Ident:
			obj := info.Uses[x]
			if obj == nil {
				obj = info.Defs[x]
			}
			v, ok := obj.(*types.Var)
			if !ok {
				return false
			}
			// Receiver, parameters, and locals are all declared inside the
			// function's source range; package-level vars are not.
			return v.Pos() >= fn.Pos() && v.Pos() <= fn.End()
		default:
			return false
		}
	}
}
