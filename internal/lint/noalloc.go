package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// NoAlloc enforces the steady-state zero-allocation contract on functions
// annotated
//
//	//sparse:noalloc
//
// in their doc comment (the PR-4 engine hot paths, each pinned by a
// testing.AllocsPerRun assertion — see DESIGN.md §7). Inside an annotated
// function it flags the constructs that heap-allocate on every call:
//
//   - make, new, and address-of composite literals (&T{...});
//   - append whose destination is not rooted at the receiver, a parameter,
//     or a function-local variable (i.e. appends that grow memory the
//     function does not own as an arena);
//   - string concatenation (+ on strings builds a fresh string);
//   - any call into fmt (formatting always allocates);
//   - closure creation (func literals).
//
// Deliberate warm-up/growth allocations inside an annotated function carry a
// //lint:ignore noalloc suppression naming the arena they grow. Calls to
// invariant.Violatef are exempt wholesale: invariant failures are terminal,
// so their formatting cost is irrelevant.
//
// The check is lexical — it does not chase allocations into callees — which
// is exactly the granularity of the AllocsPerRun assertions it mirrors.
type NoAlloc struct{}

func (NoAlloc) Name() string { return "noalloc" }

func (NoAlloc) Doc() string {
	return "functions annotated //sparse:noalloc must not allocate: no make/new/&composite, no foreign appends, no string +, no fmt, no closures"
}

// noallocMarker is the annotation, written as its own line in the function's
// doc comment.
const noallocMarker = "sparse:noalloc"

func (NoAlloc) Run(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !hasMarker(fn.Doc) {
				continue
			}
			checkNoAlloc(pass, fn)
		}
	}
}

func hasMarker(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.TrimSpace(strings.TrimPrefix(c.Text, "//")) == noallocMarker {
			return true
		}
	}
	return false
}

func checkNoAlloc(pass *Pass, fn *ast.FuncDecl) {
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if isViolatefCall(pass.Info, n) {
				return false // terminal invariant path: formatting cost is irrelevant
			}
			switch {
			case isBuiltinCall(pass.Info, n, "make"):
				pass.Reportf(n.Pos(), "make in //sparse:noalloc function; preallocate in an engine arena")
			case isBuiltinCall(pass.Info, n, "new"):
				pass.Reportf(n.Pos(), "new in //sparse:noalloc function; preallocate in an engine arena")
			case isBuiltinCall(pass.Info, n, "append"):
				if len(n.Args) > 0 && !ownedRoot(pass, fn, n.Args[0]) {
					pass.Reportf(n.Pos(), "append to a slice the function does not own in //sparse:noalloc function")
				}
			default:
				if path, name, _ := funcPkgPath(pass.Info, n); path == "fmt" {
					pass.Reportf(n.Pos(), "fmt.%s allocates in //sparse:noalloc function", name)
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					pass.Reportf(n.Pos(), "address-of composite literal escapes in //sparse:noalloc function")
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				if tv, ok := pass.Info.Types[n.X]; ok {
					if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						pass.Reportf(n.Pos(), "string concatenation allocates in //sparse:noalloc function")
					}
				}
			}
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "closure creation allocates in //sparse:noalloc function")
			return false // the closure body runs under its own contract
		}
		return true
	}
	ast.Inspect(fn.Body, walk)
}

// isViolatefCall reports whether call is invariant.Violatef — the blessed
// terminal-panic helper (see the panicdiscipline check).
func isViolatefCall(info *types.Info, call *ast.CallExpr) bool {
	path, name, isMethod := funcPkgPath(info, call)
	return !isMethod && name == "Violatef" && blessedInvariantPkg(path)
}

// ownedRoot reports whether the destination slice expression is rooted at a
// variable the function owns: its receiver, a parameter, or a local. Walks
// through selectors, indexing, derefs, and parens to the base identifier —
// e.g. e.ws[w].paths roots at the receiver e.
func ownedRoot(pass *Pass, fn *ast.FuncDecl, dst ast.Expr) bool {
	for {
		switch x := ast.Unparen(dst).(type) {
		case *ast.SelectorExpr:
			dst = x.X
		case *ast.IndexExpr:
			dst = x.X
		case *ast.StarExpr:
			dst = x.X
		case *ast.SliceExpr:
			dst = x.X
		case *ast.Ident:
			obj := pass.Info.Uses[x]
			if obj == nil {
				obj = pass.Info.Defs[x]
			}
			v, ok := obj.(*types.Var)
			if !ok {
				return false
			}
			// Receiver, parameters, and locals are all declared inside the
			// function's source range; package-level vars are not.
			return v.Pos() >= fn.Pos() && v.Pos() <= fn.End()
		default:
			return false
		}
	}
}
