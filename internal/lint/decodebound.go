package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// DecodeBound is a taint-lite intra-procedural dataflow check over the
// binary decoders: any make whose length or capacity derives from a value
// decoded out of untrusted input must be lexically dominated by a guard that
// bounds the value before the allocation happens.
//
// This is exactly the invariant whose absence caused the PR-8 DMCK
// allocation bomb: a 60-byte checkpoint claiming 2^27 vertices passed the
// named-constant sanity check (maxCheckpointVertices = 1<<28) and then
// allocated gigabytes of slice headers before the truncation check ran. The
// check therefore distinguishes two kinds of bound:
//
//   - a remaining-payload guard — any dominating comparison that relates the
//     decoded value to a len(...) expression (e.g. int64(n)*4 >
//     int64(len(r.b)-r.off)) — is always sufficient: the allocation is then
//     bounded by input actually in hand;
//   - a constant guard (n > MaxBatchUpdates) is sufficient only when
//     constant × element size ≤ maxDecodeAllocBytes — a constant that still
//     permits a multi-gigabyte allocation is a sanity check, not a bound.
//
// Taint sources are the ≥16-bit integer reads of encoding/binary
// (ByteOrder.Uint16/32/64), strconv.ParseUint/ParseInt/Atoi, fmt scan
// functions writing through &var, and — so sticky-error reader helpers like
// (*reader).u32 work — any package-local integer-returning function whose
// body transitively calls a source. Taint propagates through assignments,
// conversions, and arithmetic; len/cap results and min(tainted, untainted)
// are untainted (min against a trusted operand is a sanitizer).
//
// The analysis is flow-insensitive about variables and lexical about guards
// ("taint-lite"): a dominating comparison is trusted to diverge on the bad
// path without proving it. That keeps the check fast and predictable; the
// golden testdata pins both the pre-fix DMCK shape (diagnosed) and the fixed
// shape (clean).
type DecodeBound struct{}

func (DecodeBound) Name() string { return "decodebound" }

func (DecodeBound) Doc() string {
	return "make sized from decoded input must be dominated by a remaining-payload guard or a constant bound of at most 128 MiB worst-case"
}

// maxDecodeAllocBytes is the worst-case allocation a constant bound may
// still justify: 128 MiB. Large enough for every legitimate named bound in
// the codebase (MaxPayload frames are 64 MiB), small enough that a
// constant-guarded decode can never be an allocation bomb.
const maxDecodeAllocBytes = 1 << 27

// decodeSizes computes element sizes under the 64-bit layout the servers
// run; the exact word size only shifts the constant-bound cutoff, never the
// payload-guard rule.
var decodeSizes = types.SizesFor("gc", "amd64")

func (DecodeBound) Run(pass *Pass) {
	if !libraryPackage(pass.Path) {
		return
	}
	sources := localSourceFuncs(pass)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkDecodeBound(pass, fn, sources)
		}
	}
}

// externalSourceCall reports whether call reads an attacker-controlled
// integer: encoding/binary fixed-width reads (≥16 bit) or strconv parses.
func externalSourceCall(info *types.Info, call *ast.CallExpr) bool {
	path, name, _ := funcPkgPath(info, call)
	switch path {
	case "encoding/binary":
		return name == "Uint16" || name == "Uint32" || name == "Uint64"
	case "strconv":
		return name == "ParseUint" || name == "ParseInt" || name == "Atoi"
	}
	return false
}

// scanCall reports whether call is one of the fmt scan functions that write
// decoded values through pointer arguments.
func scanCall(info *types.Info, call *ast.CallExpr) bool {
	path, name, _ := funcPkgPath(info, call)
	if path != "fmt" {
		return false
	}
	switch name {
	case "Scan", "Scanf", "Scanln", "Sscan", "Sscanf", "Sscanln", "Fscan", "Fscanf", "Fscanln":
		return true
	}
	return false
}

// localSourceFuncs computes, to a fixpoint, the package-local functions that
// behave as taint sources: they return an integer and their body calls a
// source (directly or through another local source). This is what lets the
// sticky-error reader idiom — count := r.u32() where u32 wraps
// binary.BigEndian.Uint32 — stay visible to the taint analysis.
func localSourceFuncs(pass *Pass) map[*types.Func]bool {
	decls := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if obj, ok := pass.Info.Defs[fn.Name].(*types.Func); ok && hasIntResult(obj) {
				decls[obj] = fn
			}
		}
	}
	sources := make(map[*types.Func]bool)
	for changed := true; changed; {
		changed = false
		for obj, fn := range decls {
			if sources[obj] {
				continue
			}
			found := false
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				if found {
					return false
				}
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if externalSourceCall(pass.Info, call) {
					found = true
					return false
				}
				if f := calleeFunc(pass.Info, call); f != nil && sources[f] {
					found = true
					return false
				}
				return true
			})
			if found {
				sources[obj] = true
				changed = true
			}
		}
	}
	return sources
}

func hasIntResult(f *types.Func) bool {
	sig, ok := f.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if b, ok := sig.Results().At(i).Type().Underlying().(*types.Basic); ok && b.Info()&types.IsInteger != 0 {
			return true
		}
	}
	return false
}

// decodeTaint is the per-function taint state.
type decodeTaint struct {
	info    *types.Info
	sources map[*types.Func]bool
	vars    map[*types.Var]bool
}

func (t *decodeTaint) sourceCall(call *ast.CallExpr) bool {
	if externalSourceCall(t.info, call) {
		return true
	}
	f := calleeFunc(t.info, call)
	return f != nil && t.sources[f]
}

// exprTainted reports whether e may carry a decoded, unbounded integer.
func (t *decodeTaint) exprTainted(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return t.exprTainted(e.X)
	case *ast.Ident:
		v, ok := objectOf(t.info, e).(*types.Var)
		return ok && t.vars[v]
	case *ast.CallExpr:
		if t.sourceCall(e) {
			return true
		}
		// A conversion (int(x), int64(x)) passes taint through.
		if tv, ok := t.info.Types[e.Fun]; ok && tv.IsType() && len(e.Args) == 1 {
			return t.exprTainted(e.Args[0])
		}
		// min is a sanitizer when any operand is trusted; max is tainted
		// when any operand is. len/cap and other calls are trusted.
		if isBuiltinCall(t.info, e, "min") {
			for _, a := range e.Args {
				if !t.exprTainted(a) {
					return false
				}
			}
			return len(e.Args) > 0
		}
		if isBuiltinCall(t.info, e, "max") {
			for _, a := range e.Args {
				if t.exprTainted(a) {
					return true
				}
			}
		}
		return false
	case *ast.BinaryExpr:
		// x % c and x & c with constant right side are bounded by c.
		if (e.Op == token.REM || e.Op == token.AND) && isConstExpr(t.info, e.Y) {
			return false
		}
		return t.exprTainted(e.X) || t.exprTainted(e.Y)
	case *ast.UnaryExpr:
		return t.exprTainted(e.X)
	case *ast.StarExpr:
		return t.exprTainted(e.X)
	}
	return false
}

func isConstExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Value != nil
}

func objectOf(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}

func isIntVar(obj types.Object) (*types.Var, bool) {
	v, ok := obj.(*types.Var)
	if !ok {
		return nil, false
	}
	b, ok := v.Type().Underlying().(*types.Basic)
	return v, ok && b.Info()&types.IsInteger != 0
}

// checkDecodeBound runs the taint fixpoint over one function and reports
// unguarded tainted makes.
func checkDecodeBound(pass *Pass, fn *ast.FuncDecl, sources map[*types.Func]bool) {
	t := &decodeTaint{info: pass.Info, sources: sources, vars: make(map[*types.Var]bool)}

	// Flow-insensitive taint fixpoint over assignments. Once tainted, a
	// variable stays tainted; dominating guards, not re-assignment, are the
	// sanctioned way to bound it.
	for changed := true; changed; {
		changed = false
		taintVar := func(obj types.Object) {
			if v, ok := isIntVar(obj); ok && !t.vars[v] {
				t.vars[v] = true
				changed = true
			}
		}
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) == len(n.Rhs) {
					for i := range n.Lhs {
						if id, ok := n.Lhs[i].(*ast.Ident); ok && t.exprTainted(n.Rhs[i]) {
							taintVar(objectOf(pass.Info, id))
						}
					}
				} else if len(n.Rhs) == 1 {
					// v, err := strconv.ParseUint(...): the integer results
					// of a multi-value source call are tainted.
					if call, ok := n.Rhs[0].(*ast.CallExpr); ok && t.sourceCall(call) {
						for _, lhs := range n.Lhs {
							if id, ok := lhs.(*ast.Ident); ok {
								taintVar(objectOf(pass.Info, id))
							}
						}
					}
				}
			case *ast.ValueSpec:
				for i, name := range n.Names {
					if i < len(n.Values) && t.exprTainted(n.Values[i]) {
						taintVar(objectOf(pass.Info, name))
					}
				}
				if len(n.Values) == 1 && len(n.Names) > 1 {
					if call, ok := n.Values[0].(*ast.CallExpr); ok && t.sourceCall(call) {
						for _, name := range n.Names {
							taintVar(objectOf(pass.Info, name))
						}
					}
				}
			case *ast.CallExpr:
				// fmt.Sscanf(line, "%d %d", &n, &m) taints n and m.
				if scanCall(pass.Info, n) {
					for _, a := range n.Args {
						if u, ok := a.(*ast.UnaryExpr); ok && u.Op == token.AND {
							if id, ok := u.X.(*ast.Ident); ok {
								taintVar(objectOf(pass.Info, id))
							}
						}
					}
				}
			}
			return true
		})
	}

	// Sink scan: make with a tainted length or capacity.
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		mk, ok := n.(*ast.CallExpr)
		if !ok || !isBuiltinCall(pass.Info, mk, "make") || len(mk.Args) < 2 {
			return true
		}
		for _, sizeArg := range mk.Args[1:] {
			if !t.exprTainted(sizeArg) {
				continue
			}
			reportUnguardedMake(pass, fn, t, mk, sizeArg)
			break // one finding per make
		}
		return true
	})
}

// reportUnguardedMake checks the dominating guards of a tainted make and
// reports when none of them bounds the decoded value adequately.
func reportUnguardedMake(pass *Pass, fn *ast.FuncDecl, t *decodeTaint, mk *ast.CallExpr, sizeArg ast.Expr) {
	roots := taintRoots(t, sizeArg)
	elem := elemSizeOfMake(pass.Info, mk)
	if len(roots) == 0 {
		pass.Reportf(mk.Pos(),
			"make sized directly from a decoded value; bind it to a variable and guard it against the remaining payload or a named constant first")
		return
	}

	bestConst := constant.Value(nil)
	for _, cmp := range dominatingComparisons(fn, mk) {
		kind, k := guardKind(t, cmp, roots)
		switch kind {
		case guardPayload:
			return // bounded by input actually in hand: always sufficient
		case guardConst:
			if v, ok := constant.Int64Val(k); ok && v > 0 && v <= maxDecodeAllocBytes/elem {
				return
			}
			if bestConst == nil {
				bestConst = k
			}
		}
	}
	if bestConst != nil {
		pass.Reportf(mk.Pos(),
			"constant bound %s still permits ~%d-byte elements × %s of allocation (> 128 MiB); guard against the remaining payload length before this make",
			bestConst.ExactString(), elem, bestConst.ExactString())
		return
	}
	pass.Reportf(mk.Pos(),
		"make sized from decoded input with no dominating bound guard; check the value against the remaining payload or a named constant first")
}

// taintRoots collects the tainted variables mentioned by e.
func taintRoots(t *decodeTaint, e ast.Expr) []*types.Var {
	var roots []*types.Var
	seen := make(map[*types.Var]bool)
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if v, ok := objectOf(t.info, id).(*types.Var); ok && t.vars[v] && !seen[v] {
				seen[v] = true
				roots = append(roots, v)
			}
		}
		return true
	})
	return roots
}

// elemSizeOfMake returns the per-element allocation cost of the made type in
// bytes (key+value for maps), at least 1.
func elemSizeOfMake(info *types.Info, mk *ast.CallExpr) int64 {
	tv, ok := info.Types[mk.Args[0]]
	if !ok || tv.Type == nil {
		return 1
	}
	var size int64
	switch u := tv.Type.Underlying().(type) {
	case *types.Slice:
		size = decodeSizes.Sizeof(u.Elem())
	case *types.Map:
		size = decodeSizes.Sizeof(u.Key()) + decodeSizes.Sizeof(u.Elem())
	case *types.Chan:
		size = decodeSizes.Sizeof(u.Elem())
	}
	if size < 1 {
		size = 1
	}
	return size
}

// dominatingComparisons collects every comparison expression that lexically
// dominates node within fn: comparisons in the conditions of enclosing if
// statements, in enclosing switch/select clause guards, and anywhere inside
// earlier statements of each enclosing block. "Taint-lite": a dominating
// comparison against a qualifying bound is trusted to diverge on the bad
// path.
func dominatingComparisons(fn *ast.FuncDecl, node ast.Node) []*ast.BinaryExpr {
	// Record the ancestor chain of node.
	var stack, path []ast.Node
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		if n == node && path == nil {
			path = append([]ast.Node(nil), stack...)
		}
		return path == nil
	})

	var comps []*ast.BinaryExpr
	collect := func(n ast.Node) {
		if n == nil {
			return
		}
		ast.Inspect(n, func(x ast.Node) bool {
			if b, ok := x.(*ast.BinaryExpr); ok {
				switch b.Op {
				case token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
					comps = append(comps, b)
				}
			}
			return true
		})
	}
	for i, n := range path {
		var child ast.Node
		if i+1 < len(path) {
			child = path[i+1]
		}
		switch n := n.(type) {
		case *ast.BlockStmt:
			for _, s := range n.List {
				if s == child {
					break
				}
				collect(s)
			}
		case *ast.CaseClause:
			for _, s := range n.Body {
				if s == child {
					break
				}
				collect(s)
			}
			for _, e := range n.List {
				collect(e)
			}
		case *ast.CommClause:
			for _, s := range n.Body {
				if s == child {
					break
				}
				collect(s)
			}
		case *ast.IfStmt:
			if child == n.Body || child == n.Else {
				collect(n.Cond)
			}
		case *ast.ForStmt:
			if child == n.Body {
				collect(n.Cond)
			}
		}
	}
	return comps
}

type guardClass int

const (
	guardNone guardClass = iota
	// guardPayload relates the decoded value to a len(...) expression.
	guardPayload
	// guardConst relates the decoded value to a constant.
	guardConst
)

// guardKind classifies one comparison as a bound for the given tainted
// roots: one side must mention a root, the other must be a len(...)
// expression (payload bound) or a constant (candidate constant bound; the
// caller applies the element-size budget).
func guardKind(t *decodeTaint, cmp *ast.BinaryExpr, roots []*types.Var) (guardClass, constant.Value) {
	classify := func(rootSide, boundSide ast.Expr) (guardClass, constant.Value) {
		if !mentionsRoot(t, rootSide, roots) {
			return guardNone, nil
		}
		if containsLen(t.info, boundSide) {
			return guardPayload, nil
		}
		if tv, ok := t.info.Types[boundSide]; ok && tv.Value != nil && tv.Value.Kind() == constant.Int {
			return guardConst, tv.Value
		}
		return guardNone, nil
	}
	if k, v := classify(cmp.X, cmp.Y); k != guardNone {
		return k, v
	}
	return classify(cmp.Y, cmp.X)
}

func mentionsRoot(t *decodeTaint, e ast.Expr, roots []*types.Var) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if v, ok := objectOf(t.info, id).(*types.Var); ok {
				for _, r := range roots {
					if v == r {
						found = true
						return false
					}
				}
			}
		}
		return true
	})
	return found
}

func containsLen(info *types.Info, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && (isBuiltinCall(info, call, "len") || isBuiltinCall(info, call, "cap")) {
			found = true
			return false
		}
		return true
	})
	return found
}
