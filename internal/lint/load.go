package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	// Path is the import path ("repro/internal/graph"); testdata packages
	// loaded through LoadDir get whatever synthetic path the caller chose.
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages using only the standard library.
// Imports (both stdlib and module-local) are resolved by the go/importer
// source importer, which type-checks dependencies from source and caches
// them, so no compiled export data is required.
type Loader struct {
	Fset *token.FileSet
	imp  types.Importer
}

// NewLoader returns a Loader whose import resolution runs relative to dir
// (normally the module root, so module-local import paths resolve).
func NewLoader(dir string) *Loader {
	fset := token.NewFileSet()
	// The source importer resolves imports through go/build's default
	// context; pin its working directory to the module root so module-local
	// import paths resolve no matter where the process was started.
	build.Default.Dir = dir
	return &Loader{Fset: fset, imp: importer.ForCompiler(fset, "source", nil)}
}

// ModuleRoot walks up from dir to the nearest directory containing go.mod.
func ModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// ModulePathOf extracts the module path from root/go.mod.
func ModulePathOf(root string) (string, error) { return modulePath(root) }

// modulePath extracts the module path from root/go.mod.
func modulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s/go.mod", root)
}

// LoadModule loads every package under the module rooted at root, skipping
// testdata, hidden, and underscore-prefixed directories. Test files
// (*_test.go) are not loaded: the contracts sparselint enforces deliberately
// do not apply to tests.
func LoadModule(root string) ([]*Package, error) {
	return LoadPackages(root, root)
}

// LoadPackages loads the packages of the module rooted at root that live at
// or below subtree (a "./..."-style walk anchored at subtree).
func LoadPackages(root, subtree string) ([]*Package, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	subtree, err = filepath.Abs(subtree)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(root)
	if err != nil {
		return nil, err
	}
	var dirs []string
	err = filepath.WalkDir(subtree, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != subtree && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		dirs = append(dirs, path)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)

	ld := NewLoader(root)
	var pkgs []*Package
	for _, dir := range dirs {
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, err
		}
		path := modPath
		if rel != "." {
			path = modPath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := ld.LoadDir(dir, path)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
	}
	return pkgs, nil
}

// LoadDir parses and type-checks the single package in dir under the given
// import path. Directories with no non-test Go files yield (nil, nil).
func (l *Loader) LoadDir(dir, path string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, nil
	}

	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: parse %s: %w", name, err)
		}
		files = append(files, f)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: l.imp}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-check %s: %w", path, err)
	}
	return &Package{Path: path, Fset: l.Fset, Files: files, Types: tpkg, Info: info}, nil
}
