package matching

import (
	"testing"

	"repro/internal/graph"
)

func path5() *graph.Static {
	return graph.FromEdges(5, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 4}})
}

func TestMatchingBasics(t *testing.T) {
	m := NewMatching(4)
	if m.Size() != 0 || m.IsMatched(0) {
		t.Fatal("new matching not empty")
	}
	m.Match(0, 2)
	if m.Size() != 1 || m.Mate(0) != 2 || m.Mate(2) != 0 {
		t.Errorf("after Match: size=%d mates=%d,%d", m.Size(), m.Mate(0), m.Mate(2))
	}
	if !m.Unmatch(2) {
		t.Error("Unmatch returned false")
	}
	if m.Size() != 0 || m.IsMatched(0) || m.IsMatched(2) {
		t.Error("Unmatch did not clear both endpoints")
	}
	if m.Unmatch(2) {
		t.Error("Unmatch on free vertex returned true")
	}
}

func TestMatchPanicsOnConflict(t *testing.T) {
	m := NewMatching(3)
	m.Match(0, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("Match on matched vertex did not panic")
		}
	}()
	m.Match(1, 2)
}

func TestFromMates(t *testing.T) {
	m := FromMates([]int32{1, 0, -1})
	if m.Size() != 1 || m.Mate(0) != 1 {
		t.Errorf("FromMates: size=%d", m.Size())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("FromMates accepted non-involution")
		}
	}()
	FromMates([]int32{1, 2, 0})
}

func TestVerify(t *testing.T) {
	g := path5()
	m := NewMatching(5)
	m.Match(0, 1)
	m.Match(2, 3)
	if err := Verify(g, m); err != nil {
		t.Fatal(err)
	}
	bad := NewMatching(5)
	bad.Match(0, 3) // not an edge
	if Verify(g, bad) == nil {
		t.Error("Verify accepted a non-edge pair")
	}
	if Verify(graph.Empty(3), NewMatching(5)) == nil {
		t.Error("Verify accepted size mismatch")
	}
}

func TestIsMaximalAndFreeVertices(t *testing.T) {
	g := path5()
	m := NewMatching(5)
	m.Match(1, 2)
	if IsMaximal(g, m) {
		t.Error("matching {1-2} reported maximal; edge 3-4 is free")
	}
	m.Match(3, 4)
	if !IsMaximal(g, m) {
		t.Error("matching {1-2,3-4} not reported maximal")
	}
	free := m.FreeVertices()
	if len(free) != 1 || free[0] != 0 {
		t.Errorf("FreeVertices = %v, want [0]", free)
	}
}

func TestRemoveEdge(t *testing.T) {
	m := NewMatching(4)
	m.Match(0, 1)
	if !m.RemoveEdge(0, 1) || m.Size() != 0 {
		t.Error("RemoveEdge failed on matched edge")
	}
	m.Match(2, 3)
	if m.RemoveEdge(2, 0) {
		t.Error("RemoveEdge succeeded on unmatched pair")
	}
}

func TestCloneIndependence(t *testing.T) {
	m := NewMatching(4)
	m.Match(0, 1)
	c := m.Clone()
	c.Unmatch(0)
	if !m.IsMatched(0) {
		t.Error("Clone shares state with original")
	}
}

func TestGreedyMaximal(t *testing.T) {
	g := path5()
	m := Greedy(g)
	if err := Verify(g, m); err != nil {
		t.Fatal(err)
	}
	if !IsMaximal(g, m) {
		t.Error("Greedy result not maximal")
	}
}

func TestGreedyShuffledMaximalAndSeeded(t *testing.T) {
	g := graph.FromEdges(6, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 4}, {U: 4, V: 5}, {U: 5, V: 0}})
	a := GreedyShuffled(g, 42)
	b := GreedyShuffled(g, 42)
	if err := Verify(g, a); err != nil {
		t.Fatal(err)
	}
	if !IsMaximal(g, a) {
		t.Error("GreedyShuffled not maximal")
	}
	if a.Size() != b.Size() {
		t.Error("GreedyShuffled not deterministic for fixed seed")
	}
}

func TestMaximalize(t *testing.T) {
	g := path5()
	m := NewMatching(5)
	Maximalize(g, m)
	if !IsMaximal(g, m) {
		t.Error("Maximalize did not produce a maximal matching")
	}
}

func TestEdgesCanonical(t *testing.T) {
	m := NewMatching(4)
	m.Match(3, 0)
	edges := m.Edges()
	if len(edges) != 1 || edges[0] != (graph.Edge{U: 0, V: 3}) {
		t.Errorf("Edges = %v", edges)
	}
}

func TestMatesAndWrapMates(t *testing.T) {
	m := NewMatching(4)
	m.Match(0, 3)
	mates := m.Mates()
	if mates[0] != 3 || mates[3] != 0 || mates[1] != -1 {
		t.Errorf("Mates = %v", mates)
	}
	mates[0] = 99 // must be a copy
	if m.Mate(0) != 3 {
		t.Error("Mates returned shared storage")
	}
	w := WrapMates([]int32{3, -1, -1, 0}, 1)
	if w.Size() != 1 || w.Mate(3) != 0 {
		t.Errorf("WrapMates: size=%d mate(3)=%d", w.Size(), w.Mate(3))
	}
}
