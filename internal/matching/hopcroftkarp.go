package matching

import (
	"fmt"
	"math"

	"repro/internal/graph"
)

// Bipartition 2-colors g, returning side[v] ∈ {0, 1} for every vertex (an
// arbitrary side for isolated vertices) or an error if g has an odd cycle.
func Bipartition(g *graph.Static) ([]uint8, error) {
	n := g.N()
	side := make([]uint8, n)
	seen := make([]bool, n)
	var queue []int32
	for s := int32(0); s < int32(n); s++ {
		if seen[s] {
			continue
		}
		seen[s] = true
		queue = append(queue[:0], s)
		for len(queue) > 0 {
			v := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for _, w := range g.Neighbors(v) {
				if !seen[w] {
					seen[w] = true
					side[w] = 1 - side[v]
					queue = append(queue, w)
				} else if side[w] == side[v] {
					return nil, fmt.Errorf("matching: graph is not bipartite (odd cycle through %d-%d)", v, w)
				}
			}
		}
	}
	return side, nil
}

// HopcroftKarp computes a maximum matching of the bipartite graph g.
// It panics if g is not bipartite; use HopcroftKarpPhases to handle the
// error or to bound the number of phases.
func HopcroftKarp(g *graph.Static) *Matching {
	m, err := HopcroftKarpPhases(g, math.MaxInt)
	if err != nil {
		//lint:ignore panicdiscipline documented panic-wrapper over the error-returning HopcroftKarpPhases
		panic(err)
	}
	return m
}

// HopcroftKarpPhases runs at most maxPhases phases of Hopcroft–Karp, where
// phase i augments along a maximal set of vertex-disjoint shortest
// augmenting paths. After k completed phases every remaining augmenting
// path has length ≥ 2k+1, so the result is a (1 + 1/k)-approximate maximum
// matching (exact when the algorithm stops before exhausting maxPhases).
func HopcroftKarpPhases(g *graph.Static, maxPhases int) (*Matching, error) {
	side, err := Bipartition(g)
	if err != nil {
		return nil, err
	}
	n := g.N()
	// pair[v] is v's partner or -1; maintained with overwrite semantics
	// during the DFS (temporarily inconsistent mid-augmentation), converted
	// to a Matching at the end.
	pair := make([]int32, n)
	for i := range pair {
		pair[i] = -1
	}
	const inf = int32(math.MaxInt32)
	dist := make([]int32, n)
	queue := make([]int32, 0, n)
	iter := make([]int, n)

	// BFS from free left vertices through alternating layers; returns true
	// if a free right vertex is reachable.
	bfs := func() bool {
		queue = queue[:0]
		for v := int32(0); v < int32(n); v++ {
			if side[v] == 0 && pair[v] < 0 {
				dist[v] = 0
				queue = append(queue, v)
			} else {
				dist[v] = inf
			}
		}
		found := false
		for qi := 0; qi < len(queue); qi++ {
			v := queue[qi]
			for _, w := range g.Neighbors(v) {
				mate := pair[w]
				if mate < 0 {
					found = true
					continue
				}
				if dist[mate] == inf {
					dist[mate] = dist[v] + 1
					queue = append(queue, mate)
				}
			}
		}
		return found
	}

	// DFS along the BFS layers from left vertex v to a free right vertex,
	// rewiring pairs with overwrite semantics on success.
	var dfs func(v int32) bool
	dfs = func(v int32) bool {
		for ; iter[v] < g.Degree(v); iter[v]++ {
			w := g.Neighbor(v, iter[v])
			mate := pair[w]
			if mate < 0 || (dist[mate] == dist[v]+1 && dfs(mate)) {
				pair[w] = v
				pair[v] = w
				iter[v]++
				return true
			}
		}
		dist[v] = inf
		return false
	}

	for phase := 0; phase < maxPhases && bfs(); phase++ {
		clear(iter)
		for v := int32(0); v < int32(n); v++ {
			if side[v] == 0 && pair[v] < 0 {
				dfs(v)
			}
		}
	}
	return FromMates(pair), nil
}
