package matching

import "repro/internal/graph"

// MaximumGeneral computes an exact maximum cardinality matching in a general
// graph using Edmonds' blossom algorithm (the O(n·m·α) alternating-tree
// formulation with blossom contraction via base pointers).
//
// The search is seeded with a greedy maximal matching, so the number of
// augmentation searches is |MCM| − |greedy| ≤ |MCM|/2, which makes the
// algorithm fast in practice on the near-regular graphs and sparsifiers
// used throughout this library.
func MaximumGeneral(g *graph.Static) *Matching {
	return MaximumGeneralFrom(g, Greedy(g))
}

// MaximumGeneralFrom completes the given matching to a maximum matching of
// g by repeated augmenting-path searches. The input matching is modified in
// place and returned.
func MaximumGeneralFrom(g *graph.Static, m *Matching) *Matching {
	s := newBlossomSolver(g, m)
	for v := int32(0); v < int32(g.N()); v++ {
		if !m.IsMatched(v) {
			s.augmentFrom(v)
		}
	}
	return m
}

type blossomSolver struct {
	g       *graph.Static
	m       *Matching
	parent  []int32 // alternating-tree parent of each outer vertex's tree edge
	base    []int32 // blossom base of each vertex
	used    []bool  // vertex already in the tree (as an outer vertex)
	inPath  []bool  // scratch for LCA marking
	inBloom []bool  // scratch for blossom marking
	queue   []int32
}

func newBlossomSolver(g *graph.Static, m *Matching) *blossomSolver {
	n := g.N()
	return &blossomSolver{
		g:       g,
		m:       m,
		parent:  make([]int32, n),
		base:    make([]int32, n),
		used:    make([]bool, n),
		inPath:  make([]bool, n),
		inBloom: make([]bool, n),
	}
}

// augmentFrom searches for an augmenting path from the free root and, if
// one is found, augments the matching along it. It reports success.
func (s *blossomSolver) augmentFrom(root int32) bool {
	end := s.findPath(root)
	if end < 0 {
		return false
	}
	// Augment: alternate match/unmatch walking tree parents from end.
	v := end
	for v >= 0 {
		pv := s.parent[v]
		next := s.m.Mate(pv)
		s.m.mate[v] = pv
		s.m.mate[pv] = v
		v = next
	}
	s.m.size++
	return true
}

// findPath grows an alternating BFS tree from root, contracting blossoms as
// they are discovered. It returns the free vertex at which an augmenting
// path ends, or -1 if none exists.
func (s *blossomSolver) findPath(root int32) int32 {
	n := int32(s.g.N())
	for i := int32(0); i < n; i++ {
		s.parent[i] = -1
		s.base[i] = i
		s.used[i] = false
	}
	s.used[root] = true
	s.queue = append(s.queue[:0], root)
	for len(s.queue) > 0 {
		v := s.queue[0]
		s.queue = s.queue[1:]
		for _, to := range s.g.Neighbors(v) {
			if s.base[v] == s.base[to] || s.m.Mate(v) == to {
				continue
			}
			if to == root || (s.m.Mate(to) >= 0 && s.parent[s.m.Mate(to)] >= 0) {
				// Odd cycle through the tree: contract the blossom.
				s.contractBlossom(v, to)
			} else if s.parent[to] < 0 {
				s.parent[to] = v
				if s.m.Mate(to) < 0 {
					return to // augmenting path root..to found
				}
				mate := s.m.Mate(to)
				s.used[mate] = true
				s.queue = append(s.queue, mate)
			}
		}
	}
	return -1
}

// contractBlossom contracts the blossom formed by the edge (v, to) plus the
// tree paths from v and to down to their lowest common blossom base.
func (s *blossomSolver) contractBlossom(v, to int32) {
	curBase := s.lca(v, to)
	clear(s.inBloom)
	s.markPath(v, curBase, to)
	s.markPath(to, curBase, v)
	for i := int32(0); i < int32(s.g.N()); i++ {
		if s.inBloom[s.base[i]] {
			s.base[i] = curBase
			if !s.used[i] {
				s.used[i] = true
				s.queue = append(s.queue, i)
			}
		}
	}
}

// lca finds the lowest common ancestor of the blossom bases of a and b in
// the alternating tree.
func (s *blossomSolver) lca(a, b int32) int32 {
	clear(s.inPath)
	// Walk from a to the root, marking bases.
	v := a
	for {
		v = s.base[v]
		s.inPath[v] = true
		mate := s.m.Mate(v)
		if mate < 0 {
			break // reached the root (the only free vertex in the tree)
		}
		v = s.parent[mate]
	}
	// Walk from b until hitting a marked base.
	v = b
	for {
		v = s.base[v]
		if s.inPath[v] {
			return v
		}
		v = s.parent[s.m.Mate(v)]
	}
}

// markPath marks the blossom bases on the path from v down to base b and
// rewires parents so the new blossom can be traversed in both directions:
// each outer vertex on the path gets child as its parent.
func (s *blossomSolver) markPath(v, b, child int32) {
	for s.base[v] != b {
		s.inBloom[s.base[v]] = true
		mate := s.m.Mate(v)
		s.inBloom[s.base[mate]] = true
		s.parent[v] = child
		child = mate
		v = s.parent[mate]
	}
}
