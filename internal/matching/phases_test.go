package matching

import (
	"testing"

	"repro/internal/graph"
)

func TestDisjointAugmentBasic(t *testing.T) {
	// Two disjoint P4s, both with only the middle edge matched: one phase
	// at length 3 must fix both simultaneously.
	g := graph.FromEdges(8, []graph.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3},
		{U: 4, V: 5}, {U: 5, V: 6}, {U: 6, V: 7},
	})
	m := NewMatching(8)
	m.Match(1, 2)
	m.Match(5, 6)
	if got := DisjointAugment(g, m, 3); got != 2 {
		t.Fatalf("phase augmented %d paths, want 2", got)
	}
	if m.Size() != 4 {
		t.Errorf("size %d, want perfect 4", m.Size())
	}
	if err := Verify(g, m); err != nil {
		t.Fatal(err)
	}
}

func TestDisjointAugmentRespectsDisjointness(t *testing.T) {
	// A star of P3s through one center: only one augmenting path can use
	// the center per phase.
	g := graph.FromEdges(5, []graph.Edge{
		{U: 0, V: 4}, {U: 1, V: 4}, {U: 2, V: 4}, {U: 3, V: 4},
	})
	m := NewMatching(5)
	if got := DisjointAugment(g, m, 1); got != 1 {
		t.Errorf("star phase augmented %d, want 1 (center is shared)", got)
	}
}

func TestDisjointAugmentLengthBound(t *testing.T) {
	g := graph.FromEdges(6, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 4}, {U: 4, V: 5}})
	m := NewMatching(6)
	m.Match(1, 2)
	m.Match(3, 4)
	if got := DisjointAugment(g, m, 3); got != 0 {
		t.Errorf("length-3 phase found %d paths on a length-5 instance", got)
	}
	if got := DisjointAugment(g, m, 5); got != 1 {
		t.Errorf("length-5 phase found %d paths, want 1", got)
	}
}

func TestPhaseStructuredApproxExactOnBipartite(t *testing.T) {
	for seed := uint64(0); seed < 15; seed++ {
		g := func() *graph.Static {
			b := graph.NewBuilder(16)
			rng := newTestRNG(seed)
			for u := int32(0); u < 8; u++ {
				for v := int32(8); v < 16; v++ {
					if rng.Float64() < 0.35 {
						b.AddEdge(u, v)
					}
				}
			}
			return b.Build()
		}()
		// ε small enough that maxLen ≥ any augmenting path in a 16-vertex
		// graph, so the schedule is exhaustive.
		m := PhaseStructuredApprox(g, 0.07, seed)
		if err := Verify(g, m); err != nil {
			t.Fatal(err)
		}
		if want := BruteForceSize(g); m.Size() != want {
			t.Errorf("seed %d: phases=%d brute=%d", seed, m.Size(), want)
		}
	}
}

func TestPhaseStructuredApproxQualityGeneral(t *testing.T) {
	for seed := uint64(0); seed < 10; seed++ {
		g := randomGraph(18, 0.3, seed)
		exact := BruteForceSize(g)
		if exact == 0 {
			continue
		}
		m := PhaseStructuredApprox(g, 0.2, seed)
		if err := Verify(g, m); err != nil {
			t.Fatal(err)
		}
		if float64(exact) > 1.5*float64(m.Size()) {
			t.Errorf("seed %d: phases=%d exact=%d", seed, m.Size(), exact)
		}
	}
}

func TestPhaseVsSequentialAugmentAgree(t *testing.T) {
	// Both approximation strategies should land within a couple of edges of
	// each other on moderate instances.
	g := randomGraph(60, 0.1, 5)
	a := ApproxGeneral(g, 0.2, 9)
	b := PhaseStructuredApprox(g, 0.2, 9)
	if d := a.Size() - b.Size(); d > 3 || d < -3 {
		t.Errorf("sequential=%d vs phases=%d diverge", a.Size(), b.Size())
	}
}

func BenchmarkDisjointAugmentPhase(b *testing.B) {
	g := randomGraph(800, 0.02, 1)
	for i := 0; i < b.N; i++ {
		m := Greedy(g)
		DisjointAugment(g, m, 5)
	}
}
