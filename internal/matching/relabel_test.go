package matching

import (
	"math/rand/v2"
	"testing"

	"repro/internal/graph"
)

func relabelTestGraph(n, m int, seed uint64) *graph.Static {
	rng := rand.New(rand.NewPCG(seed, 0x44))
	b := graph.NewBuilder(n)
	for i := 0; i < m; i++ {
		b.AddEdge(int32(rng.IntN(n)), int32(rng.IntN(n)))
	}
	return b.Build()
}

// TestDisjointAugmentRelabeledBitIdentical pins the relabeling contract at
// the engine level: for every ordering and worker count, the full phase
// schedule produces the exact mate array of the unrelabeled sequential run.
func TestDisjointAugmentRelabeledBitIdentical(t *testing.T) {
	graphs := []*graph.Static{
		relabelTestGraph(400, 2400, 1),
		relabelTestGraph(600, 900, 2), // sparse, many components
		graph.Empty(10),
	}
	const eps, seed = 0.25, 7

	for gi, g := range graphs {
		// Reference: unrelabeled, sequential.
		ref := NewMatching(g.N())
		refEng := NewEngine(Options{Workers: 1})
		refEng.PhaseStructuredApproxInto(g, ref, eps, seed)

		for _, ord := range append([]graph.Ordering{graph.OrderIdentity}, graph.Orderings()...) {
			for _, workers := range []int{1, 2, 8} {
				e := NewEngine(Options{Workers: workers, Relabel: ord})
				m := NewMatching(g.N())
				e.PhaseStructuredApproxInto(g, m, eps, seed)
				e.Close()
				if err := Verify(g, m); err != nil {
					t.Fatalf("graph %d, %v/w%d: %v", gi, ord, workers, err)
				}
				for v := 0; v < g.N(); v++ {
					if m.Mate(int32(v)) != ref.Mate(int32(v)) {
						t.Fatalf("graph %d, %v/w%d: mate[%d] = %d, reference %d",
							gi, ord, workers, v, m.Mate(int32(v)), ref.Mate(int32(v)))
					}
				}
			}
		}
		refEng.Close()
	}
}

// TestDisjointAugmentRelabeledPerPhase checks phase-by-phase equality, not
// just the final fixpoint: each DisjointAugment call must commit the same
// number of paths and leave the same mates as the unrelabeled engine.
func TestDisjointAugmentRelabeledPerPhase(t *testing.T) {
	g := relabelTestGraph(500, 3000, 3)
	for _, ord := range graph.Orderings() {
		ref := NewMatching(g.N())
		got := NewMatching(g.N())
		refEng := NewEngine(Options{Workers: 1})
		relEng := NewEngine(Options{Workers: 2, Relabel: ord})
		refEng.GreedyShuffledInto(g, ref, 99)
		relEng.GreedyShuffledInto(g, got, 99)
		for L := 1; L <= 5; L += 2 {
			for round := 0; ; round++ {
				a := refEng.DisjointAugment(g, ref, L)
				b := relEng.DisjointAugment(g, got, L)
				if a != b {
					t.Fatalf("%v: L=%d round %d: augmented %d vs %d", ord, L, round, b, a)
				}
				for v := 0; v < g.N(); v++ {
					if got.Mate(int32(v)) != ref.Mate(int32(v)) {
						t.Fatalf("%v: L=%d round %d: mate[%d] diverged", ord, L, round, v)
					}
				}
				if a == 0 {
					break
				}
			}
		}
		refEng.Close()
		relEng.Close()
	}
}

// TestRelabelViewCaching: repeated phases on the same graph reuse the cached
// view; switching graphs recomputes it.
func TestRelabelViewCaching(t *testing.T) {
	g1 := relabelTestGraph(200, 800, 4)
	g2 := relabelTestGraph(300, 900, 5)
	e := NewEngine(Options{Workers: 1, Relabel: graph.OrderRCM})
	defer e.Close()

	m := NewMatching(g1.N())
	e.DisjointAugment(g1, m, 1)
	v1 := e.rel.rg
	e.DisjointAugment(g1, m, 3)
	if e.rel.rg != v1 {
		t.Fatal("same graph: view recomputed instead of cached")
	}
	m2 := NewMatching(g2.N())
	e.DisjointAugment(g2, m2, 1)
	if e.rel.src != g2 {
		t.Fatal("new graph: view not recomputed")
	}
}
