package matching

import (
	"math"

	"repro/internal/graph"
)

// BoundedAugment improves m by repeatedly finding alternating augmenting
// paths of length at most maxLen (edges) via depth-limited DFS with global
// visited marking, until no such path is found in a full sweep over the free
// vertices. It returns the number of augmentations performed.
//
// The search is exact on bipartite graphs. On general graphs the global
// visited marking can miss augmenting paths that require re-entering a
// visited odd cycle (the blossom phenomenon), so BoundedAugment is a
// heuristic there; the library's experiments therefore always report its
// measured approximation against the exact blossom algorithm. Eliminating
// all augmenting paths of length ≤ 2k−1 guarantees a (1+1/k)-approximation
// (Hopcroft–Karp lemma, which holds in general graphs).
func BoundedAugment(g *graph.Static, m *Matching, maxLen int) int {
	if maxLen < 1 {
		return 0
	}
	n := g.N()
	visited := make([]int32, n)
	for i := range visited {
		visited[i] = -1
	}
	epoch := int32(0)
	var dfs func(v int32, depth int) bool
	// dfs looks for an alternating path of ≤ depth edges from the free-side
	// endpoint v (currently unmatched end of the partial path) to a free
	// vertex: an unmatched edge to w, then w's matched edge, recursively.
	dfs = func(v int32, depth int) bool {
		visited[v] = epoch
		for _, w := range g.Neighbors(v) {
			if visited[w] == epoch {
				continue
			}
			mate := m.Mate(w)
			if mate < 0 {
				m.Match(v, w)
				return true
			}
			if depth >= 2 && visited[mate] != epoch {
				visited[w] = epoch
				m.Unmatch(w)
				if dfs(mate, depth-2) {
					m.Match(v, w)
					return true
				}
				m.Match(mate, w)
			}
		}
		return false
	}
	augments := 0
	for {
		progress := false
		for v := int32(0); v < int32(n); v++ {
			if m.IsMatched(v) {
				continue
			}
			epoch++
			if dfs(v, maxLen) {
				augments++
				progress = true
			}
		}
		if !progress {
			return augments
		}
	}
}

// ApproxGeneral computes an approximate maximum matching of a general graph
// aimed at factor 1+ε: a randomized greedy maximal matching followed by
// bounded-length augmentation with maxLen = 2⌈1/ε⌉ − 1.
//
// The runtime is proportional to the graph size times the number of
// augmentation sweeps; run it on a sparsifier for the sublinear pipeline of
// Theorem 3.1.
func ApproxGeneral(g *graph.Static, eps float64, seed uint64) *Matching {
	m := GreedyShuffled(g, seed)
	BoundedAugment(g, m, AugmentLenFor(eps))
	return m
}

// AugmentLenFor returns the augmenting-path length bound 2⌈1/ε⌉ − 1 that
// targets a (1+ε) approximation.
func AugmentLenFor(eps float64) int {
	if eps <= 0 || eps >= 1 {
		return 1
	}
	k := int(math.Ceil(1 / eps))
	return 2*k - 1
}
