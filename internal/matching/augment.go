package matching

import (
	"math"

	"repro/internal/graph"
)

// BoundedAugment improves m by repeatedly finding alternating augmenting
// paths of length at most maxLen (edges) via depth-limited DFS with
// epoch-numbered visited marking, until no such path is found in a full
// sweep over the free vertices. It returns the number of augmentations
// performed. The search runs on an explicit stack (engine searcher), so
// arbitrarily long augmenting paths cannot exhaust the goroutine stack;
// reuse an Engine to amortize the scratch arenas across calls.
//
// The search is exact on bipartite graphs. On general graphs the per-search
// visited marking can miss augmenting paths that require re-entering a
// visited odd cycle (the blossom phenomenon), so BoundedAugment is a
// heuristic there; the library's experiments therefore always report its
// measured approximation against the exact blossom algorithm. Eliminating
// all augmenting paths of length ≤ 2k−1 guarantees a (1+1/k)-approximation
// (Hopcroft–Karp lemma, which holds in general graphs).
func BoundedAugment(g *graph.Static, m *Matching, maxLen int) int {
	e := NewEngine(Options{Workers: 1})
	defer e.Close()
	return e.BoundedAugment(g, m, maxLen)
}

// ApproxGeneral computes an approximate maximum matching of a general graph
// aimed at factor 1+ε: a randomized greedy maximal matching followed by
// bounded-length augmentation with maxLen = 2⌈1/ε⌉ − 1.
//
// The runtime is proportional to the graph size times the number of
// augmentation sweeps; run it on a sparsifier for the sublinear pipeline of
// Theorem 3.1.
func ApproxGeneral(g *graph.Static, eps float64, seed uint64) *Matching {
	e := NewEngine(Options{Workers: 1})
	defer e.Close()
	m := NewMatching(g.N())
	e.GreedyShuffledInto(g, m, seed)
	e.BoundedAugment(g, m, AugmentLenFor(eps))
	return m
}

// AugmentLenFor returns the augmenting-path length bound 2⌈1/ε⌉ − 1 that
// targets a (1+ε) approximation.
func AugmentLenFor(eps float64) int {
	if eps <= 0 || eps >= 1 {
		return 1
	}
	k := int(math.Ceil(1 / eps))
	return 2*k - 1
}
