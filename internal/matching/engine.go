package matching

import (
	"math/rand/v2"
	"sync"

	"repro/internal/graph"
	"repro/internal/invariant"
	"repro/internal/params"
)

// Options configures a phase Engine.
type Options struct {
	// Workers shards the discover stage of each DisjointAugment phase over
	// this many goroutines. Zero means GOMAXPROCS; 1 forces fully inline
	// sequential execution (no worker pool is started).
	//
	// The matching produced is bit-identical for EVERY worker count:
	// discovery is a pure function of the phase-start snapshot, and the
	// commit pass is sequential and deterministic (see Engine).
	Workers int

	// Relabel selects a cache-locality vertex reordering for the phase
	// engine's DFS state (graph.OrderIdentity disables it). The relabeled
	// graph is a private layout view: every order-dependent decision stays
	// canonicalized to original-id order and results are mapped back through
	// the inverse permutation, so the matching produced is bit-identical to
	// the unrelabeled run — relabeling can only change speed, never output.
	// See disjointAugmentRelabeled.
	Relabel graph.Ordering
}

// resolved fills zero-valued fields via the unified parameter resolution.
func (o Options) resolved() Options {
	o.Workers = params.Workers(o.Workers)
	return o
}

// Engine is the reusable, allocation-free execution engine behind the
// matching hot paths: greedy initialization, bounded-length augmentation, and
// Hopcroft–Karp-style disjoint-path phases, all running on arena scratch
// owned by the engine and reused across calls.
//
// A DisjointAugment phase runs a two-stage discover → commit protocol:
//
//   - Discover: the free vertices are sharded over the worker pool in a
//     deterministic round-robin of fixed-size blocks. Each worker searches
//     for a depth-limited alternating augmenting path from its free vertices
//     against a READ-ONLY snapshot of the phase-start matching, recording
//     candidate paths in its own arena. No worker ever writes shared state
//     beyond its disjoint candidate slots, so the stage is race-free and its
//     output depends only on (graph, snapshot, maxLen) — not on scheduling
//     or the worker count.
//   - Commit: a single sequential pass walks the candidates in ascending
//     order of their free endpoint (lowest endpoint id first). A candidate
//     commits iff none of its path vertices has been frozen by an earlier
//     commit; committing augments along the path and freezes its vertices.
//     Conflicting candidates are simply skipped — the enclosing phase loop
//     re-discovers those vertices against the next snapshot.
//
// Because discovery is snapshot-pure and the commit order is fixed, the
// result is bit-identical for every worker count (a contract mirroring —
// and strengthening — core.Sparsify's per-(seed, Workers) determinism).
//
// Arena ownership rules: all scratch (visited epochs, DFS stacks, path and
// candidate arenas, the frozen bitset, the edge-shuffle buffer) is owned by
// the engine, sized on first use for the largest graph seen, and reused
// afterwards; steady-state calls perform zero heap allocations. An Engine
// is NOT safe for concurrent use by multiple goroutines; Close releases the
// worker pool (it is a no-op for Workers == 1 engines and idempotent).
type Engine struct {
	workers int
	relabel graph.Ordering
	rel     relView // cached relabeled layout view, keyed by (graph, ordering)

	n      int      // vertex capacity the arenas are sized for
	snap   []int32  // phase-start mate snapshot (read-only during discover)
	frozen []uint64 // bitset of vertices on committed paths, reset per phase
	free   []int32  // snapshot-free vertices, ascending
	cands  []cand   // per-free-vertex candidate records

	ws []searcher // per-worker scratch; ws[0] doubles as the inline scratch

	edges []graph.Edge // greedy shuffle arena
	pcg   rand.PCG
	rng   *rand.Rand

	pool *pool // persistent workers, started lazily; nil while sequential

	// Phase-shared discovery inputs, published to the pool before release.
	// A non-nil scan selects the original-order relabeled discovery.
	g      *graph.Static
	scan   []int32
	maxLen int
}

// cand locates one discovered candidate path inside a worker's path arena.
// n == 0 means the discovery search from that free vertex failed.
type cand struct {
	worker int32
	off, n int32
}

// pool is the persistent worker pool: one goroutine per worker, parked on a
// buffered start channel between phases so releasing a phase allocates
// nothing.
type pool struct {
	start []chan struct{}
	wg    sync.WaitGroup
}

// searcher is one worker's DFS scratch: an epoch-numbered visited array
// (O(1) reset per search), an explicit stack replacing recursion (so deep
// augmenting paths cannot exhaust a goroutine stack), and a flat path arena
// the discovered candidates live in.
type searcher struct {
	visited []uint32
	epoch   uint32
	stack   []frame
	paths   []int32
}

// frame is one explicit-stack DFS frame: the outer (free-side) vertex v, the
// unmatched edge v–w chosen at this level, the next neighbor index to scan,
// and the remaining edge budget.
type frame struct {
	v, w, ni, depth int32
}

// blockSize is the discovery sharding granule: block b of the free list is
// handled by worker b mod workers, a deterministic round-robin that keeps
// per-worker work (and hence arena capacities) reproducible across runs.
const blockSize = 64

// NewEngine returns an Engine with the given options. Callers that enable
// parallelism (Workers != 1) should Close the engine when done to release
// the worker pool.
func NewEngine(opt Options) *Engine {
	opt = opt.resolved()
	if opt.Workers < 1 {
		invariant.Violatef("matching: Workers must be >= 1 after resolution, got %d", opt.Workers)
	}
	e := &Engine{workers: opt.Workers, relabel: opt.Relabel, ws: make([]searcher, opt.Workers)}
	e.rng = rand.New(&e.pcg)
	return e
}

// Workers returns the resolved worker count.
func (e *Engine) Workers() int { return e.workers }

// Relabel returns the configured locality ordering.
func (e *Engine) Relabel() graph.Ordering { return e.relabel }

// Close stops the worker pool. It is idempotent and safe on engines that
// never went parallel.
func (e *Engine) Close() {
	if e.pool != nil {
		for _, ch := range e.pool.start {
			close(ch)
		}
		e.pool = nil
	}
}

// ensure grows the arenas to cover graphs on n vertices.
func (e *Engine) ensure(n int) {
	if n <= e.n {
		return
	}
	e.n = n
	//lint:ignore noalloc deliberate arena growth: frozen bitset resizes to the largest graph seen
	e.frozen = make([]uint64, (n+63)/64)
	for i := range e.ws {
		//lint:ignore noalloc deliberate arena growth: per-worker visited epochs resize with the graph
		e.ws[i].visited = make([]uint32, n)
		e.ws[i].epoch = 0
	}
}

// DisjointAugment performs one discover → commit phase: it finds candidate
// augmenting paths of length at most maxLen (edges) from every free vertex
// against the phase-start snapshot, then commits a vertex-disjoint subset in
// ascending free-endpoint order, augmenting along each committed path. It
// returns the number of paths augmented.
//
// A phase is exact on bipartite graphs at the fixpoint of the phase loop
// (no candidate found from any free vertex ⟺ no ≤ maxLen augmenting path is
// reachable by the visited-marked DFS) and a heuristic with respect to
// blossoms in general graphs, like the sequential search it parallelizes.
//
//sparse:noalloc
func (e *Engine) DisjointAugment(g *graph.Static, m *Matching, maxLen int) int {
	if maxLen < 1 {
		return 0
	}
	n := g.N()
	if m.N() != n {
		invariant.Violatef("matching: matching over %d vertices, graph has %d", m.N(), n)
	}
	e.ensure(n)
	if e.relabel != graph.OrderIdentity {
		return e.disjointAugmentRelabeled(g, m, maxLen)
	}

	// Snapshot the matching and collect the free vertices in ascending order.
	e.snap = append(e.snap[:0], m.mate...)
	e.free = e.free[:0]
	for v := int32(0); v < int32(n); v++ {
		if e.snap[v] < 0 {
			e.free = append(e.free, v)
		}
	}
	if len(e.free) == 0 {
		return 0
	}
	if cap(e.cands) < len(e.free) {
		//lint:ignore noalloc one-time candidate-arena growth; steady state reuses the allocation
		e.cands = make([]cand, len(e.free))
	}
	e.cands = e.cands[:len(e.free)]

	// Discover. The parallel and inline paths produce identical candidates:
	// each search depends only on (g, snapshot, maxLen, root).
	for w := range e.ws {
		e.ws[w].paths = e.ws[w].paths[:0]
	}
	if e.workers == 1 || len(e.free) <= blockSize {
		e.discover(0, g, maxLen, 1)
	} else {
		e.g, e.maxLen = g, maxLen
		e.run()
		e.g = nil
	}

	// Commit, lowest free endpoint first.
	clear(e.frozen[:(n+63)/64])
	augmented := 0
	for i := range e.cands {
		c := e.cands[i]
		if c.n == 0 {
			continue
		}
		p := e.ws[c.worker].paths[c.off : c.off+c.n]
		ok := true
		for _, x := range p {
			if e.frozen[uint32(x)>>6]&(1<<(uint32(x)&63)) != 0 {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		applyPath(m, p)
		for _, x := range p {
			e.frozen[uint32(x)>>6] |= 1 << (uint32(x) & 63)
		}
		augmented++
	}
	return augmented
}

// discover runs the discovery searches of worker w: round-robin blocks of
// the free list, stride many blocks apart.
//
//sparse:allocfree
func (e *Engine) discover(w int, g *graph.Static, maxLen, stride int) {
	s := &e.ws[w]
	mates := e.snap
	for b := w * blockSize; b < len(e.free); b += stride * blockSize {
		hi := min(b+blockSize, len(e.free))
		for i := b; i < hi; i++ {
			off, ln := s.search(g, mates, e.free[i], maxLen)
			e.cands[i] = cand{worker: int32(w), off: off, n: ln}
		}
	}
}

// run releases the persistent pool for one discovery stage and waits for it.
// The channel send publishes the phase inputs (happens-before the worker's
// receive); wg.Wait publishes the workers' candidate writes back.
func (e *Engine) run() {
	if e.pool == nil {
		//lint:ignore noallocdeep one-time pool warm-up: workers and channels are built once and reused
		e.startPool()
	}
	p := e.pool
	p.wg.Add(len(p.start))
	for _, ch := range p.start {
		ch <- struct{}{}
	}
	p.wg.Wait()
}

// startPool launches the persistent workers (the one-time warm-up cost of a
// parallel engine).
func (e *Engine) startPool() {
	p := &pool{start: make([]chan struct{}, e.workers)}
	for w := 0; w < e.workers; w++ {
		ch := make(chan struct{}, 1)
		p.start[w] = ch
		go func(w int, ch chan struct{}) {
			for range ch {
				if e.scan != nil {
					e.discoverOrd(w, e.g, e.scan, e.maxLen, e.workers)
				} else {
					e.discover(w, e.g, e.maxLen, e.workers)
				}
				p.wg.Done()
			}
		}(w, ch)
	}
	e.pool = p
}

// search looks for an alternating augmenting path of at most maxLen edges
// from the free vertex root in the matching given by mates, by depth-limited
// iterative DFS with epoch-numbered visited marking. On success it appends
// the path v0,w0,v1,w1,…,vk,wk (unmatched edges (v_i,w_i), matched edges
// (w_i,v_{i+1})) to s.paths and returns its span; ln == 0 means no path.
//
// The traversal order is exactly that of the recursive depth-limited DFS it
// replaces (neighbors in CSR order, recurse through the mate of the first
// admissible matched neighbor), so results are unchanged — but the explicit
// stack cannot exhaust a goroutine stack on 100k-vertex augmenting paths.
//
//sparse:allocfree
func (s *searcher) search(g *graph.Static, mates []int32, root int32, maxLen int) (off, ln int32) {
	s.epoch++
	if s.epoch == 0 { // uint32 wrap after 2^32 searches: hard-reset the marks
		clear(s.visited)
		s.epoch = 1
	}
	vis, ep := s.visited, s.epoch
	vis[root] = ep
	st := s.stack[:0]
	st = append(st, frame{v: root, depth: int32(min(maxLen, 1<<30))})
	base := int32(len(s.paths))
	for len(st) > 0 {
		f := &st[len(st)-1]
		adj := g.Neighbors(f.v)
		descended := false
		for int(f.ni) < len(adj) {
			w := adj[f.ni]
			f.ni++
			if vis[w] == ep {
				continue
			}
			mate := mates[w]
			if mate < 0 {
				// Free vertex reached: the stack frames hold the path.
				f.w = w
				for i := range st {
					s.paths = append(s.paths, st[i].v, st[i].w)
				}
				s.stack = st
				return base, int32(len(s.paths)) - base
			}
			if f.depth >= 2 && vis[mate] != ep {
				vis[w] = ep
				vis[mate] = ep
				f.w = w
				st = append(st, frame{v: mate, depth: f.depth - 2})
				descended = true
				break
			}
		}
		if !descended {
			st = st[:len(st)-1]
		}
	}
	s.stack = st
	return base, 0
}

// applyPath augments m along the alternating path p = v0,w0,…,vk,wk: the
// matched edges (w_i, v_{i+1}) leave the matching, the unmatched edges
// (v_i, w_i) enter it, for a net gain of one.
//
//sparse:allocfree
func applyPath(m *Matching, p []int32) {
	for j := 1; j+1 < len(p); j += 2 {
		m.Unmatch(p[j])
	}
	for j := 0; j+1 < len(p); j += 2 {
		m.Match(p[j], p[j+1])
	}
}

// BoundedAugment is the engine-resident form of the package-level
// BoundedAugment: repeated sweeps of depth-limited augmentation from every
// free vertex against the live matching, until a full sweep finds nothing.
// It reuses the engine arenas (zero steady-state allocations) and the
// iterative search, and is always sequential — its restarts are inherently
// ordered. Results are identical to the historical recursive implementation.
func (e *Engine) BoundedAugment(g *graph.Static, m *Matching, maxLen int) int {
	if maxLen < 1 {
		return 0
	}
	n := g.N()
	if m.N() != n {
		invariant.Violatef("matching: matching over %d vertices, graph has %d", m.N(), n)
	}
	e.ensure(n)
	s := &e.ws[0]
	augments := 0
	for {
		progress := false
		for v := int32(0); v < int32(n); v++ {
			if m.IsMatched(v) {
				continue
			}
			s.paths = s.paths[:0]
			off, ln := s.search(g, m.mate, v, maxLen)
			if ln > 0 {
				applyPath(m, s.paths[off:off+ln])
				augments++
				progress = true
			}
		}
		if !progress {
			return augments
		}
	}
}

// GreedyInto resets m and fills it with the canonical-order greedy maximal
// matching of g, allocating nothing in steady state.
//
//sparse:noalloc
func (e *Engine) GreedyInto(g *graph.Static, m *Matching) {
	if m.N() != g.N() {
		invariant.Violatef("matching: matching over %d vertices, graph has %d", m.N(), g.N())
	}
	m.Reset()
	n := int32(g.N())
	for v := int32(0); v < n; v++ {
		if m.IsMatched(v) {
			continue
		}
		for _, w := range g.Neighbors(v) {
			if w > v && !m.IsMatched(w) {
				m.Match(v, w)
				break
			}
		}
	}
}

// GreedyShuffledInto resets m and fills it with the random-scan-order greedy
// maximal matching of g — bit-identical to GreedyShuffled(g, seed) — reusing
// the engine's edge arena and RNG (zero steady-state allocations).
//
//sparse:noalloc
func (e *Engine) GreedyShuffledInto(g *graph.Static, m *Matching, seed uint64) {
	if m.N() != g.N() {
		invariant.Violatef("matching: matching over %d vertices, graph has %d", m.N(), g.N())
	}
	e.edges = e.edges[:0]
	n := int32(g.N())
	for v := int32(0); v < n; v++ {
		for _, w := range g.Neighbors(v) {
			if v < w {
				e.edges = append(e.edges, graph.Edge{U: v, V: w})
			}
		}
	}
	e.pcg.Seed(seed, 0xfeed)
	edges := e.edges
	// Fisher–Yates, identical draw-for-draw to rand.Shuffle.
	for i := len(edges) - 1; i > 0; i-- {
		j := e.rng.IntN(i + 1)
		edges[i], edges[j] = edges[j], edges[i]
	}
	m.Reset()
	for _, ed := range edges {
		if !m.IsMatched(ed.U) && !m.IsMatched(ed.V) {
			m.Match(ed.U, ed.V)
		}
	}
}

// PhaseStructuredApproxInto runs the full phase-structured (1+ε)-approximate
// matching schedule into m: shuffled-greedy initialization, then disjoint
// phases at lengths L = 1, 3, …, 2⌈1/ε⌉−1, each length iterated to its
// fixpoint. All scratch comes from the engine arenas.
//
//sparse:noalloc
func (e *Engine) PhaseStructuredApproxInto(g *graph.Static, m *Matching, eps float64, seed uint64) {
	e.GreedyShuffledInto(g, m, seed)
	maxLen := AugmentLenFor(eps)
	for L := 1; L <= maxLen; L += 2 {
		for e.DisjointAugment(g, m, L) > 0 {
		}
	}
}
