package matching

import "repro/internal/graph"

// Relabeled phase execution.
//
// With Options.Relabel set, DisjointAugment runs its DFS against a
// cache-locality relabeling of the graph: the snapshot, visited epochs, and
// frozen bitset are all indexed by the relabeled ids, so on huge graphs the
// per-vertex state the search bounces between sits in nearby cache lines.
//
// The contract is that relabeling NEVER changes the output — the matching is
// bit-identical to the unrelabeled run for every worker count and ordering.
// That holds because every order-dependent decision stays canonicalized to
// original-id order:
//
//   - The free list enumerates the snapshot-free vertices in ascending
//     ORIGINAL id (carrying their relabeled ids), so candidate indexing and
//     the sequential commit order match the unrelabeled phase exactly.
//   - The DFS scans each adjacency list through OrigScanOrder, visiting
//     neighbors in ascending ORIGINAL id — the order the unrelabeled CSR's
//     sorted lists yield natively. With identical root order and neighbor
//     order, the depth-limited searches traverse the same logical vertex
//     sequence and discover the same logical paths.
//   - Committed paths are applied to the caller's matching through the
//     inverse permutation, so the mate array never observes relabeled ids.
//
// The sparsifier and the greedy initialization are untouched: the sparsifier
// runs before the engine ever relabels, and the shuffled greedy pass is
// random-access by construction (a shuffled edge arena), so relabeling could
// only slow it down. Relabeling therefore applies exactly where the locality
// win lives — the phase DFS.

// relView is the cached relabeled layout of one source graph: the relabeled
// CSR, both permutations, and the original-order scan permutation shaped
// like the neighbor array.
type relView struct {
	src  *graph.Static
	ord  graph.Ordering
	rg   *graph.Static
	perm []int32 // perm[original] = relabeled
	inv  []int32 // inv[relabeled] = original
	scan []int32 // per-vertex adjacency positions in ascending original id
}

// relViewFor returns the layout view of g under the engine's ordering,
// computing and caching it on first sight of a graph (the phase loop calls
// DisjointAugment many times on the same graph; only the first call pays).
func (e *Engine) relViewFor(g *graph.Static) *relView {
	if e.rel.src == g && e.rel.ord == e.relabel {
		return &e.rel
	}
	rg, perm, inv := graph.Relabel(g, e.relabel)
	scan := graph.OrigScanOrder(rg, inv)
	e.rel = relView{src: g, ord: e.relabel, rg: rg, perm: perm, inv: inv, scan: scan}
	return &e.rel
}

// disjointAugmentRelabeled is DisjointAugment's discover → commit protocol
// executed on the relabeled layout view. Size and maxLen checks and ensure
// already ran in the caller.
func (e *Engine) disjointAugmentRelabeled(g *graph.Static, m *Matching, maxLen int) int {
	//lint:ignore noallocdeep per-graph layout cache: the relabeled view is computed once per graph and reused
	view := e.relViewFor(g)
	n := g.N()
	perm, inv := view.perm, view.inv

	// Snapshot the matching translated into relabeled space
	// (rsnap[perm[v]] = perm[mate[v]]), and collect the free vertices' new
	// ids in ascending ORIGINAL id — the unrelabeled free-list order.
	if cap(e.snap) < n {
		//lint:ignore noalloc deliberate arena growth: relabeled snapshot resizes to the largest graph seen
		e.snap = make([]int32, n)
	}
	e.snap = e.snap[:n]
	e.free = e.free[:0]
	for v := int32(0); v < int32(n); v++ {
		mate := m.mate[v]
		if mate < 0 {
			e.snap[perm[v]] = mate
			e.free = append(e.free, perm[v])
		} else {
			e.snap[perm[v]] = perm[mate]
		}
	}
	if len(e.free) == 0 {
		return 0
	}
	if cap(e.cands) < len(e.free) {
		//lint:ignore noalloc deliberate arena growth: candidate buffer resizes with the free-vertex count
		e.cands = make([]cand, len(e.free))
	}
	e.cands = e.cands[:len(e.free)]

	// Discover on the relabeled graph, scanning adjacencies in original
	// neighbor order via the scan permutation.
	for w := range e.ws {
		e.ws[w].paths = e.ws[w].paths[:0]
	}
	if e.workers == 1 || len(e.free) <= blockSize {
		e.discoverOrd(0, view.rg, view.scan, maxLen, 1)
	} else {
		e.g, e.scan, e.maxLen = view.rg, view.scan, maxLen
		e.run()
		e.g, e.scan = nil, nil
	}

	// Commit, lowest ORIGINAL free endpoint first (the candidate index order),
	// applying each path to the caller's matching through the inverse
	// permutation. The frozen bitset lives in relabeled space, consistent
	// with the candidate paths.
	clear(e.frozen[:(n+63)/64])
	augmented := 0
	for i := range e.cands {
		c := e.cands[i]
		if c.n == 0 {
			continue
		}
		p := e.ws[c.worker].paths[c.off : c.off+c.n]
		ok := true
		for _, x := range p {
			if e.frozen[uint32(x)>>6]&(1<<(uint32(x)&63)) != 0 {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		applyPathInv(m, p, inv)
		for _, x := range p {
			e.frozen[uint32(x)>>6] |= 1 << (uint32(x) & 63)
		}
		augmented++
	}
	return augmented
}

// discoverOrd is discover with the original-order scan permutation: the same
// round-robin block sharding, searching via searchOrd.
//
//sparse:allocfree
func (e *Engine) discoverOrd(w int, g *graph.Static, scan []int32, maxLen, stride int) {
	s := &e.ws[w]
	mates := e.snap
	for b := w * blockSize; b < len(e.free); b += stride * blockSize {
		hi := min(b+blockSize, len(e.free))
		for i := b; i < hi; i++ {
			off, ln := s.searchOrd(g, scan, mates, e.free[i], maxLen)
			e.cands[i] = cand{worker: int32(w), off: off, n: ln}
		}
	}
}

// searchOrd is search with indirected neighbor access: position i of v's
// scan window names the adjacency slot holding v's i-th neighbor in
// ascending original id. Everything else — visited epochs, stack discipline,
// path recording — is identical to search.
//
//sparse:allocfree
func (s *searcher) searchOrd(g *graph.Static, scan []int32, mates []int32, root int32, maxLen int) (off, ln int32) {
	s.epoch++
	if s.epoch == 0 { // uint32 wrap after 2^32 searches: hard-reset the marks
		clear(s.visited)
		s.epoch = 1
	}
	vis, ep := s.visited, s.epoch
	vis[root] = ep
	st := s.stack[:0]
	st = append(st, frame{v: root, depth: int32(min(maxLen, 1<<30))})
	base := int32(len(s.paths))
	for len(st) > 0 {
		f := &st[len(st)-1]
		adj := g.Neighbors(f.v)
		ord := scan[g.AdjOffset(f.v):]
		descended := false
		for int(f.ni) < len(adj) {
			w := adj[ord[f.ni]]
			f.ni++
			if vis[w] == ep {
				continue
			}
			mate := mates[w]
			if mate < 0 {
				f.w = w
				for i := range st {
					s.paths = append(s.paths, st[i].v, st[i].w)
				}
				s.stack = st
				return base, int32(len(s.paths)) - base
			}
			if f.depth >= 2 && vis[mate] != ep {
				vis[w] = ep
				vis[mate] = ep
				f.w = w
				st = append(st, frame{v: mate, depth: f.depth - 2})
				descended = true
				break
			}
		}
		if !descended {
			st = st[:len(st)-1]
		}
	}
	s.stack = st
	return base, 0
}

// applyPathInv is applyPath through the inverse permutation: the path is in
// relabeled ids, the matching in original ids.
//
//sparse:allocfree
func applyPathInv(m *Matching, p []int32, inv []int32) {
	for j := 1; j+1 < len(p); j += 2 {
		m.Unmatch(inv[p[j]])
	}
	for j := 0; j+1 < len(p); j += 2 {
		m.Match(inv[p[j]], inv[p[j+1]])
	}
}
