package matching

import (
	"slices"
	"testing"

	"repro/internal/graph"
)

// referenceBoundedAugment is the pre-engine recursive implementation of
// BoundedAugment, kept verbatim as a test oracle for the explicit-stack
// conversion: the iterative search must reproduce it decision for decision.
func referenceBoundedAugment(g *graph.Static, m *Matching, maxLen int) int {
	if maxLen < 1 {
		return 0
	}
	n := g.N()
	visited := make([]int32, n)
	for i := range visited {
		visited[i] = -1
	}
	epoch := int32(0)
	var dfs func(v int32, depth int) bool
	dfs = func(v int32, depth int) bool {
		visited[v] = epoch
		for _, w := range g.Neighbors(v) {
			if visited[w] == epoch {
				continue
			}
			mate := m.Mate(w)
			if mate < 0 {
				m.Match(v, w)
				return true
			}
			if depth >= 2 && visited[mate] != epoch {
				visited[w] = epoch
				m.Unmatch(w)
				if dfs(mate, depth-2) {
					m.Match(v, w)
					return true
				}
				m.Match(mate, w)
			}
		}
		return false
	}
	augments := 0
	for {
		progress := false
		for v := int32(0); v < int32(n); v++ {
			if m.IsMatched(v) {
				continue
			}
			epoch++
			if dfs(v, maxLen) {
				augments++
				progress = true
			}
		}
		if !progress {
			return augments
		}
	}
}

// referenceDisjointAugment is a direct recursive implementation of the
// discover → commit phase protocol (snapshot-pure recursive DFS per free
// vertex, then ascending-endpoint commit), used as an oracle for the
// engine's iterative, arena-backed, optionally parallel implementation.
func referenceDisjointAugment(g *graph.Static, m *Matching, maxLen int) int {
	if maxLen < 1 {
		return 0
	}
	n := g.N()
	snap := m.Mates()
	visited := make([]int32, n)
	for i := range visited {
		visited[i] = -1
	}
	epoch := int32(0)
	var path []int32
	var dfs func(v int32, depth int) bool
	dfs = func(v int32, depth int) bool {
		visited[v] = epoch
		for _, w := range g.Neighbors(v) {
			if visited[w] == epoch {
				continue
			}
			mate := snap[w]
			if mate < 0 {
				path = append(path, v, w)
				return true
			}
			if depth >= 2 && visited[mate] != epoch {
				visited[w] = epoch
				if dfs(mate, depth-2) {
					path = append(path, v, w)
					return true
				}
			}
		}
		return false
	}
	var cands [][]int32
	for v := int32(0); v < int32(n); v++ {
		if snap[v] >= 0 {
			continue
		}
		epoch++
		path = nil
		if dfs(v, maxLen) {
			// The unwind built the path deepest pair first; restore root-first
			// pair order.
			for i, j := 0, len(path)-2; i < j; i, j = i+2, j-2 {
				path[i], path[j] = path[j], path[i]
				path[i+1], path[j+1] = path[j+1], path[i+1]
			}
			cands = append(cands, path)
		}
	}
	frozen := make([]bool, n)
	augmented := 0
	for _, p := range cands {
		ok := true
		for _, x := range p {
			if frozen[x] {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		for j := 1; j+1 < len(p); j += 2 {
			m.Unmatch(p[j])
		}
		for j := 0; j+1 < len(p); j += 2 {
			m.Match(p[j], p[j+1])
		}
		for _, x := range p {
			frozen[x] = true
		}
		augmented++
	}
	return augmented
}

func TestBoundedAugmentMatchesRecursiveReference(t *testing.T) {
	for seed := uint64(0); seed < 12; seed++ {
		g := randomGraph(70, 0.08, seed)
		mRef := GreedyShuffled(g, seed+100)
		mEng := mRef.Clone()
		for _, maxLen := range []int{1, 3, 5, 9} {
			a := referenceBoundedAugment(g, mRef, maxLen)
			b := BoundedAugment(g, mEng, maxLen)
			if a != b {
				t.Fatalf("seed %d L=%d: reference augments %d, engine %d", seed, maxLen, a, b)
			}
			if !slices.Equal(mRef.Mates(), mEng.Mates()) {
				t.Fatalf("seed %d L=%d: matings diverge", seed, maxLen)
			}
		}
	}
}

func TestDisjointAugmentMatchesRecursiveReference(t *testing.T) {
	for seed := uint64(0); seed < 12; seed++ {
		g := randomGraph(70, 0.08, seed)
		mRef := GreedyShuffled(g, seed+200)
		mEng := mRef.Clone()
		for _, maxLen := range []int{1, 3, 5, 7} {
			a := referenceDisjointAugment(g, mRef, maxLen)
			b := DisjointAugment(g, mEng, maxLen)
			if a != b {
				t.Fatalf("seed %d L=%d: reference commits %d, engine %d", seed, maxLen, a, b)
			}
			if !slices.Equal(mRef.Mates(), mEng.Mates()) {
				t.Fatalf("seed %d L=%d: matings diverge", seed, maxLen)
			}
		}
	}
}

// TestEngineWorkerCountInvariance pins the engine's determinism contract:
// the matching is bit-identical for EVERY worker count, phase by phase,
// because discovery is snapshot-pure and the commit order is fixed.
func TestEngineWorkerCountInvariance(t *testing.T) {
	for seed := uint64(0); seed < 6; seed++ {
		g := randomGraph(400, 0.015, seed)
		ref := PhaseStructuredApproxOpts(g, 0.25, seed, Options{Workers: 1})
		for _, workers := range []int{2, 3, 8} {
			got := PhaseStructuredApproxOpts(g, 0.25, seed, Options{Workers: workers})
			if !slices.Equal(ref.Mates(), got.Mates()) {
				t.Fatalf("seed %d: %d-worker schedule diverges from sequential", seed, workers)
			}
		}
		// Per-phase invariance, not just at the fixpoint.
		e1 := NewEngine(Options{Workers: 1})
		e8 := NewEngine(Options{Workers: 8})
		defer e1.Close()
		defer e8.Close()
		m1 := GreedyShuffled(g, seed+7)
		m8 := m1.Clone()
		for _, L := range []int{1, 3, 5} {
			a := e1.DisjointAugment(g, m1, L)
			b := e8.DisjointAugment(g, m8, L)
			if a != b || !slices.Equal(m1.Mates(), m8.Mates()) {
				t.Fatalf("seed %d L=%d: phase diverges (1w=%d, 8w=%d)", seed, L, a, b)
			}
		}
	}
}

// TestEngineReuseAcrossGraphs checks that arena reuse across graphs of
// different sizes never leaks state between runs.
func TestEngineReuseAcrossGraphs(t *testing.T) {
	e := NewEngine(Options{Workers: 2})
	defer e.Close()
	for _, n := range []int{200, 50, 500, 120} {
		g := randomGraph(n, 0.05, uint64(n))
		m := NewMatching(n)
		e.PhaseStructuredApproxInto(g, m, 0.25, 9)
		fresh := PhaseStructuredApproxOpts(g, 0.25, 9, Options{Workers: 1})
		if !slices.Equal(m.Mates(), fresh.Mates()) {
			t.Fatalf("n=%d: reused engine diverges from fresh engine", n)
		}
		if err := Verify(g, m); err != nil {
			t.Fatal(err)
		}
	}
}

// TestDisjointAugmentDeepPath is the regression test for the recursion-depth
// hazard: a 100k-vertex path graph whose single augmenting path spans every
// vertex. The explicit-stack DFS must find and apply it; the old recursive
// implementation nested ~n/2 stack frames here.
func TestDisjointAugmentDeepPath(t *testing.T) {
	const n = 100_000
	b := graph.NewBuilder(n)
	for v := int32(0); v+1 < n; v++ {
		b.AddEdge(v, v+1)
	}
	g := b.Build()
	m := NewMatching(n)
	for v := int32(1); v+1 < n; v += 2 {
		m.Match(v, v+1) // interior perfect matching: free endpoints 0 and n-1
	}
	if got := DisjointAugment(g, m, n); got != 1 {
		t.Fatalf("deep path: committed %d paths, want 1", got)
	}
	if m.Size() != n/2 {
		t.Fatalf("deep path: size %d, want perfect %d", m.Size(), n/2)
	}
	if err := Verify(g, m); err != nil {
		t.Fatal(err)
	}

	// Same hazard through the bounded-augmentation entry point.
	m2 := NewMatching(n)
	for v := int32(1); v+1 < n; v += 2 {
		m2.Match(v, v+1)
	}
	if got := BoundedAugment(g, m2, n); got != 1 {
		t.Fatalf("deep path: BoundedAugment found %d, want 1", got)
	}
}

// TestPhaseEngineZeroAllocs verifies the allocation-free steady state of the
// full greedy + phase-schedule hot path, sequential and parallel.
func TestPhaseEngineZeroAllocs(t *testing.T) {
	g := randomGraph(1500, 0.01, 3)
	for _, workers := range []int{1, 4} {
		e := NewEngine(Options{Workers: workers})
		m := NewMatching(g.N())
		run := func() {
			e.GreedyShuffledInto(g, m, 11)
			for L := 1; L <= 5; L += 2 {
				for e.DisjointAugment(g, m, L) > 0 {
				}
			}
		}
		run() // warm-up: size arenas, start the pool
		run()
		if avg := testing.AllocsPerRun(10, run); avg != 0 {
			t.Errorf("workers=%d: %v allocs per phase schedule after warm-up, want 0", workers, avg)
		}
		e.Close()
	}
}

// TestGreedyIntoMatchesPackageForms pins the bit-identity of the engine's
// allocation-free greedy variants with the allocating package functions.
func TestGreedyIntoMatchesPackageForms(t *testing.T) {
	e := NewEngine(Options{Workers: 1})
	defer e.Close()
	for seed := uint64(0); seed < 8; seed++ {
		g := randomGraph(120, 0.06, seed)
		m := NewMatching(g.N())

		e.GreedyInto(g, m)
		if ref := Greedy(g); !slices.Equal(ref.Mates(), m.Mates()) {
			t.Fatalf("seed %d: GreedyInto diverges from Greedy", seed)
		}

		e.GreedyShuffledInto(g, m, seed*13+1)
		if ref := GreedyShuffled(g, seed*13+1); !slices.Equal(ref.Mates(), m.Mates()) {
			t.Fatalf("seed %d: GreedyShuffledInto diverges from GreedyShuffled", seed)
		}
		if !IsMaximal(g, m) {
			t.Fatalf("seed %d: GreedyShuffledInto not maximal", seed)
		}
	}
}

func TestGreedyIntoZeroAllocs(t *testing.T) {
	g := randomGraph(1000, 0.01, 5)
	e := NewEngine(Options{Workers: 1})
	defer e.Close()
	m := NewMatching(g.N())
	e.GreedyShuffledInto(g, m, 1) // warm-up
	if avg := testing.AllocsPerRun(20, func() { e.GreedyShuffledInto(g, m, 2) }); avg != 0 {
		t.Errorf("GreedyShuffledInto: %v allocs/op steady-state, want 0", avg)
	}
	if avg := testing.AllocsPerRun(20, func() { e.GreedyInto(g, m) }); avg != 0 {
		t.Errorf("GreedyInto: %v allocs/op steady-state, want 0", avg)
	}
}

// BenchmarkGreedyAllocs demonstrates the zero-allocation steady state of the
// engine greedy (compare with BenchmarkGreedyAlloc^W the allocating form).
func BenchmarkGreedyAllocs(b *testing.B) {
	g := randomGraph(4000, 0.004, 3)
	e := NewEngine(Options{Workers: 1})
	defer e.Close()
	m := NewMatching(g.N())
	e.GreedyShuffledInto(g, m, 0) // warm-up
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.GreedyShuffledInto(g, m, uint64(i))
	}
}

func benchmarkPhaseWorkers(b *testing.B, workers int) {
	g := randomGraph(4000, 0.004, 1)
	e := NewEngine(Options{Workers: workers})
	defer e.Close()
	m := NewMatching(g.N())
	e.PhaseStructuredApproxInto(g, m, 0.3, 7) // warm-up
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.PhaseStructuredApproxInto(g, m, 0.3, 7)
	}
}

func BenchmarkPhaseScheduleWorkers1(b *testing.B) { benchmarkPhaseWorkers(b, 1) }
func BenchmarkPhaseScheduleWorkers2(b *testing.B) { benchmarkPhaseWorkers(b, 2) }
func BenchmarkPhaseScheduleWorkers4(b *testing.B) { benchmarkPhaseWorkers(b, 4) }
func BenchmarkPhaseScheduleWorkers8(b *testing.B) { benchmarkPhaseWorkers(b, 8) }
