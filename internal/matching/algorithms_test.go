package matching

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func completeBipartite(a, b int) *graph.Static {
	bld := graph.NewBuilder(a + b)
	for u := int32(0); u < int32(a); u++ {
		for v := int32(a); v < int32(a+b); v++ {
			bld.AddEdge(u, v)
		}
	}
	return bld.Build()
}

// randomGraph returns a random graph on n vertices with edge probability p.
func randomGraph(n int, p float64, seed uint64) *graph.Static {
	rng := rand.New(rand.NewPCG(seed, 99))
	b := graph.NewBuilder(n)
	for u := int32(0); u < int32(n); u++ {
		for v := u + 1; v < int32(n); v++ {
			if rng.Float64() < p {
				b.AddEdge(u, v)
			}
		}
	}
	return b.Build()
}

func TestBlossomKnownGraphs(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Static
		want int
	}{
		{"empty", graph.Empty(5), 0},
		{"single edge", graph.FromEdges(2, []graph.Edge{{U: 0, V: 1}}), 1},
		{"path4", graph.FromEdges(4, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}}), 2},
		{"triangle", graph.FromEdges(3, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}}), 1},
		{"C5", graph.FromEdges(5, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 4}, {U: 4, V: 0}}), 2},
		// Two triangles joined by an edge: the classic blossom instance.
		{"bowtie+bridge", graph.FromEdges(6, []graph.Edge{
			{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2},
			{U: 3, V: 4}, {U: 4, V: 5}, {U: 3, V: 5},
			{U: 2, V: 3},
		}), 3},
		// Petersen graph has a perfect matching.
		{"petersen", graph.FromEdges(10, []graph.Edge{
			{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 4}, {U: 4, V: 0},
			{U: 5, V: 7}, {U: 7, V: 9}, {U: 9, V: 6}, {U: 6, V: 8}, {U: 8, V: 5},
			{U: 0, V: 5}, {U: 1, V: 6}, {U: 2, V: 7}, {U: 3, V: 8}, {U: 4, V: 9},
		}), 5},
	}
	for _, tc := range cases {
		m := MaximumGeneral(tc.g)
		if err := Verify(tc.g, m); err != nil {
			t.Errorf("%s: %v", tc.name, err)
		}
		if m.Size() != tc.want {
			t.Errorf("%s: MCM size = %d, want %d", tc.name, m.Size(), tc.want)
		}
	}
}

func TestBlossomMatchesBruteForceRandom(t *testing.T) {
	for seed := uint64(0); seed < 60; seed++ {
		n := 4 + int(seed%12)
		p := 0.15 + float64(seed%5)*0.15
		g := randomGraph(n, p, seed)
		m := MaximumGeneral(g)
		if err := Verify(g, m); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		want := BruteForceSize(g)
		if m.Size() != want {
			t.Errorf("seed %d (n=%d p=%.2f): blossom=%d brute=%d", seed, n, p, m.Size(), want)
		}
	}
}

func TestBlossomQuick(t *testing.T) {
	f := func(seed uint64) bool {
		n := 5 + int(seed%14)
		g := randomGraph(n, 0.3, seed)
		m := MaximumGeneral(g)
		return Verify(g, m) == nil && m.Size() == BruteForceSize(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestMaximumGeneralFromArbitraryStart(t *testing.T) {
	g := randomGraph(14, 0.4, 7)
	start := GreedyShuffled(g, 3)
	m := MaximumGeneralFrom(g, start)
	if err := Verify(g, m); err != nil {
		t.Fatal(err)
	}
	if m.Size() != BruteForceSize(g) {
		t.Errorf("from-start size %d != brute %d", m.Size(), BruteForceSize(g))
	}
}

func TestBipartition(t *testing.T) {
	g := graph.FromEdges(4, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}})
	side, err := Bipartition(g)
	if err != nil {
		t.Fatal(err)
	}
	if side[0] == side[1] || side[1] == side[2] || side[2] == side[3] {
		t.Errorf("bad 2-coloring %v", side)
	}
	tri := graph.FromEdges(3, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}})
	if _, err := Bipartition(tri); err == nil {
		t.Error("Bipartition accepted a triangle")
	}
}

func TestHopcroftKarpExact(t *testing.T) {
	for seed := uint64(0); seed < 40; seed++ {
		a := 3 + int(seed%6)
		b := 3 + int((seed/2)%6)
		rng := rand.New(rand.NewPCG(seed, 5))
		bld := graph.NewBuilder(a + b)
		for u := int32(0); u < int32(a); u++ {
			for v := int32(a); v < int32(a+b); v++ {
				if rng.Float64() < 0.4 {
					bld.AddEdge(u, v)
				}
			}
		}
		g := bld.Build()
		m := HopcroftKarp(g)
		if err := Verify(g, m); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if want := BruteForceSize(g); m.Size() != want {
			t.Errorf("seed %d: HK=%d brute=%d", seed, m.Size(), want)
		}
	}
}

func TestHopcroftKarpPhasesApproximation(t *testing.T) {
	// One phase ⇒ at least half the maximum (it yields a maximal matching
	// on shortest paths); k phases ⇒ ≥ k/(k+1) of maximum.
	g := completeBipartite(20, 20)
	for _, phases := range []int{1, 2, 3} {
		m, err := HopcroftKarpPhases(g, phases)
		if err != nil {
			t.Fatal(err)
		}
		lower := 20 * phases / (phases + 1)
		if m.Size() < lower {
			t.Errorf("phases=%d: size %d < guarantee %d", phases, m.Size(), lower)
		}
	}
}

func TestHopcroftKarpPhasesRejectsOddCycle(t *testing.T) {
	tri := graph.FromEdges(3, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}})
	if _, err := HopcroftKarpPhases(tri, 1); err == nil {
		t.Error("accepted non-bipartite graph")
	}
}

func TestBoundedAugmentReachesExactOnBipartite(t *testing.T) {
	// With an unbounded length, DFS augmentation is exact on bipartite graphs.
	for seed := uint64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewPCG(seed, 11))
		bld := graph.NewBuilder(16)
		for u := int32(0); u < 8; u++ {
			for v := int32(8); v < 16; v++ {
				if rng.Float64() < 0.35 {
					bld.AddEdge(u, v)
				}
			}
		}
		g := bld.Build()
		m := Greedy(g)
		BoundedAugment(g, m, 2*g.N())
		if err := Verify(g, m); err != nil {
			t.Fatal(err)
		}
		if want := BruteForceSize(g); m.Size() != want {
			t.Errorf("seed %d: boundedAugment=%d brute=%d", seed, m.Size(), want)
		}
	}
}

func TestBoundedAugmentImprovesGreedy(t *testing.T) {
	// Path of length 3: greedy on canonical order picks the middle edge
	// sometimes; augmentation must reach the maximum of 2.
	g := graph.FromEdges(4, []graph.Edge{{U: 1, V: 2}, {U: 0, V: 1}, {U: 2, V: 3}})
	m := NewMatching(4)
	m.Match(1, 2) // worst maximal matching
	if BoundedAugment(g, m, 3) != 1 {
		t.Fatalf("expected exactly one augmentation, matching now %v", m.Edges())
	}
	if m.Size() != 2 {
		t.Errorf("size after augment = %d, want 2", m.Size())
	}
}

func TestBoundedAugmentRespectsLengthBound(t *testing.T) {
	// P6 with the two outer edges matched needs a length-5 augmenting path.
	g := graph.FromEdges(6, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 4}, {U: 4, V: 5}})
	m := NewMatching(6)
	m.Match(1, 2)
	m.Match(3, 4)
	if got := BoundedAugment(g, m, 3); got != 0 {
		t.Errorf("maxLen=3 performed %d augmentations, want 0", got)
	}
	if got := BoundedAugment(g, m, 5); got != 1 {
		t.Errorf("maxLen=5 performed %d augmentations, want 1", got)
	}
	if m.Size() != 3 {
		t.Errorf("final size = %d, want perfect 3", m.Size())
	}
}

func TestApproxGeneralQuality(t *testing.T) {
	for seed := uint64(0); seed < 15; seed++ {
		g := randomGraph(18, 0.3, seed)
		exact := BruteForceSize(g)
		m := ApproxGeneral(g, 0.2, seed)
		if err := Verify(g, m); err != nil {
			t.Fatal(err)
		}
		if exact == 0 {
			continue
		}
		ratio := float64(exact) / float64(m.Size())
		if ratio > 1.5 {
			t.Errorf("seed %d: approx ratio %.2f too weak (approx=%d exact=%d)", seed, ratio, m.Size(), exact)
		}
	}
}

func TestAugmentLenFor(t *testing.T) {
	cases := []struct {
		eps  float64
		want int
	}{{0.5, 3}, {0.34, 5}, {0.2, 9}, {0.1, 19}}
	for _, tc := range cases {
		if got := AugmentLenFor(tc.eps); got != tc.want {
			t.Errorf("AugmentLenFor(%v) = %d, want %d", tc.eps, got, tc.want)
		}
	}
	if got := AugmentLenFor(0); got != 1 {
		t.Errorf("AugmentLenFor(0) = %d, want 1", got)
	}
}

func TestBruteForceKnown(t *testing.T) {
	g := completeBipartite(3, 4)
	if got := BruteForceSize(g); got != 3 {
		t.Errorf("K3,4 brute = %d, want 3", got)
	}
	if got := BruteForceSize(graph.Empty(4)); got != 0 {
		t.Errorf("empty brute = %d, want 0", got)
	}
}

func TestBruteForceTooLargePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("BruteForceSize accepted 63 vertices")
		}
	}()
	BruteForceSize(graph.Empty(63))
}

func TestBlossomPerfectOnCliques(t *testing.T) {
	for n := 2; n <= 12; n++ {
		bld := graph.NewBuilder(n)
		for u := int32(0); u < int32(n); u++ {
			for v := u + 1; v < int32(n); v++ {
				bld.AddEdge(u, v)
			}
		}
		g := bld.Build()
		m := MaximumGeneral(g)
		if m.Size() != n/2 {
			t.Errorf("K%d: MCM = %d, want %d", n, m.Size(), n/2)
		}
	}
}

func BenchmarkBlossomRandom(b *testing.B) {
	g := randomGraph(400, 0.05, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MaximumGeneral(g)
	}
}

func BenchmarkGreedy(b *testing.B) {
	g := randomGraph(1000, 0.02, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Greedy(g)
	}
}

// newTestRNG is a tiny helper for deterministic per-seed RNGs in tests.
func newTestRNG(seed uint64) *rand.Rand { return rand.New(rand.NewPCG(seed, 0xabc)) }
