package matching

import (
	"testing"

	"repro/internal/graph"
)

func TestVertexCoverFromMatching(t *testing.T) {
	g := randomGraph(30, 0.2, 3)
	m := Greedy(g)
	cover := VertexCoverFromMatching(g, m)
	if !IsVertexCover(g, cover) {
		t.Fatal("endpoints of maximal matching do not cover all edges")
	}
	if len(cover) != 2*m.Size() {
		t.Errorf("cover size %d != 2|M| = %d", len(cover), 2*m.Size())
	}
	// 2-approximation: any cover has ≥ |M| vertices.
	if len(cover) > 2*MinVertexCoverSizeLB(m) {
		t.Errorf("cover %d exceeds twice the LB %d", len(cover), MinVertexCoverSizeLB(m))
	}
}

func TestVertexCoverRejectsNonMaximal(t *testing.T) {
	g := graph.FromEdges(4, []graph.Edge{{U: 0, V: 1}, {U: 2, V: 3}})
	m := NewMatching(4)
	m.Match(0, 1) // edge 2-3 uncovered
	defer func() {
		if recover() == nil {
			t.Fatal("non-maximal matching accepted")
		}
	}()
	VertexCoverFromMatching(g, m)
}

func TestIsVertexCover(t *testing.T) {
	g := graph.FromEdges(3, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}})
	if !IsVertexCover(g, []int32{1}) {
		t.Error("center of P3 is a cover")
	}
	if IsVertexCover(g, []int32{0}) {
		t.Error("leaf alone is not a cover")
	}
	if !IsVertexCover(graph.Empty(3), nil) {
		t.Error("empty cover covers the empty graph")
	}
}
