package matching

import "repro/internal/graph"

// DisjointAugment performs one Hopcroft–Karp-style phase on a general
// graph: it discovers candidate augmenting paths of length at most maxLen
// (edges) from every free vertex against a snapshot of the phase-start
// matching, commits a vertex-disjoint subset of them in ascending
// free-endpoint order, and augments along all committed paths. It returns
// the number of paths augmented.
//
// This is the sequential entry point to the phase engine's two-stage
// discover → commit protocol (see Engine); reuse an Engine across phases to
// shard discovery over a worker pool and to avoid the per-call arena
// allocation. The result is bit-identical for every worker count.
//
// Compared with BoundedAugment's sequential restarts, each phase's work is
// O(m) and mirrors the phase structure that gives Hopcroft–Karp (and
// Micali–Vazirani) their O(m/ε) approximation runtime; like BoundedAugment
// it is exact on bipartite graphs (at the phase-loop fixpoint) and a
// heuristic with respect to blossoms in general graphs.
func DisjointAugment(g *graph.Static, m *Matching, maxLen int) int {
	e := NewEngine(Options{Workers: 1})
	defer e.Close()
	return e.DisjointAugment(g, m, maxLen)
}

// PhaseStructuredApprox computes an approximate maximum matching with the
// Hopcroft–Karp phase schedule generalized to bounded-β graphs: greedy
// initialization, then for L = 1, 3, …, 2⌈1/ε⌉−1 repeat disjoint-path
// phases at length L until a phase finds nothing. Aimed at factor 1+ε like
// ApproxGeneral, with phase-parallel structure (the T13 ablation compares
// the two; PhaseStructuredApproxOpts shards the phases over workers).
func PhaseStructuredApprox(g *graph.Static, eps float64, seed uint64) *Matching {
	return PhaseStructuredApproxOpts(g, eps, seed, Options{Workers: 1})
}

// PhaseStructuredApproxOpts is PhaseStructuredApprox with explicit engine
// options. The matching returned is bit-identical for every Workers value;
// only the wall-clock changes.
func PhaseStructuredApproxOpts(g *graph.Static, eps float64, seed uint64, opt Options) *Matching {
	e := NewEngine(opt)
	defer e.Close()
	m := NewMatching(g.N())
	e.PhaseStructuredApproxInto(g, m, eps, seed)
	return m
}
