package matching

import "repro/internal/graph"

// DisjointAugment performs one Hopcroft–Karp-style phase on a general
// graph: it finds a maximal set of VERTEX-DISJOINT augmenting paths of
// length at most maxLen (via depth-limited DFS; vertices on accepted paths
// are frozen for the rest of the phase) and augments along all of them.
// It returns the number of paths augmented.
//
// Compared with BoundedAugment's sequential restarts, the disjointness
// makes each phase's work O(m) and mirrors the phase structure that gives
// Hopcroft–Karp (and Micali–Vazirani) their O(m/ε) approximation runtime;
// like BoundedAugment it is exact on bipartite graphs and a heuristic with
// respect to blossoms in general graphs.
func DisjointAugment(g *graph.Static, m *Matching, maxLen int) int {
	if maxLen < 1 {
		return 0
	}
	n := g.N()
	frozen := make([]bool, n) // on an accepted path this phase
	visited := make([]int32, n)
	for i := range visited {
		visited[i] = -1
	}
	epoch := int32(0)
	var path []int32
	var dfs func(v int32, depth int) bool
	dfs = func(v int32, depth int) bool {
		visited[v] = epoch
		path = append(path, v)
		for _, w := range g.Neighbors(v) {
			if visited[w] == epoch || frozen[w] {
				continue
			}
			mate := m.Mate(w)
			if mate < 0 {
				m.Match(v, w)
				path = append(path, w)
				return true
			}
			if depth >= 2 && visited[mate] != epoch && !frozen[mate] {
				visited[w] = epoch
				m.Unmatch(w)
				if dfs(mate, depth-2) {
					m.Match(v, w)
					path = append(path, w)
					return true
				}
				m.Match(mate, w)
			}
		}
		path = path[:len(path)-1]
		return false
	}
	augmented := 0
	for v := int32(0); v < int32(n); v++ {
		if m.IsMatched(v) || frozen[v] {
			continue
		}
		epoch++
		path = path[:0]
		if dfs(v, maxLen) {
			augmented++
			for _, x := range path {
				frozen[x] = true
			}
		}
	}
	return augmented
}

// PhaseStructuredApprox computes an approximate maximum matching with the
// Hopcroft–Karp phase schedule generalized to bounded-β graphs: greedy
// initialization, then for L = 1, 3, …, 2⌈1/ε⌉−1 repeat disjoint-path
// phases at length L until a phase finds nothing. Aimed at factor 1+ε like
// ApproxGeneral, with phase-parallel structure (the T13 ablation compares
// the two).
func PhaseStructuredApprox(g *graph.Static, eps float64, seed uint64) *Matching {
	m := GreedyShuffled(g, seed)
	maxLen := AugmentLenFor(eps)
	for L := 1; L <= maxLen; L += 2 {
		for DisjointAugment(g, m, L) > 0 {
		}
	}
	return m
}
