package matching

import (
	"math/rand/v2"

	"repro/internal/graph"
)

// Greedy computes a maximal matching by scanning edges in the graph's
// canonical order and matching any edge with both endpoints free.
// O(n + m) time; the result is a 2-approximate maximum matching.
// Engine.GreedyInto is the allocation-free form for repeated calls.
func Greedy(g *graph.Static) *Matching {
	m := NewMatching(g.N())
	g.ForEachEdge(func(u, v int32) {
		if !m.IsMatched(u) && !m.IsMatched(v) {
			m.Match(u, v)
		}
	})
	return m
}

// GreedyShuffled computes a maximal matching scanning edges in a uniformly
// random order. Randomizing the scan order decorrelates the greedy matching
// from the vertex numbering, which matters when the matching seeds an
// augmentation process. Engine.GreedyShuffledInto is the bit-identical,
// allocation-free form for repeated calls.
func GreedyShuffled(g *graph.Static, seed uint64) *Matching {
	edges := g.Edges()
	rng := rand.New(rand.NewPCG(seed, 0xfeed))
	rng.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
	m := NewMatching(g.N())
	for _, e := range edges {
		if !m.IsMatched(e.U) && !m.IsMatched(e.V) {
			m.Match(e.U, e.V)
		}
	}
	return m
}

// Maximalize extends m to a maximal matching of g in place.
func Maximalize(g *graph.Static, m *Matching) {
	g.ForEachEdge(func(u, v int32) {
		if !m.IsMatched(u) && !m.IsMatched(v) {
			m.Match(u, v)
		}
	})
}
