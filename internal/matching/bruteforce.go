package matching

import (
	"repro/internal/graph"
	"repro/internal/invariant"
)

// BruteForceSize computes the exact maximum matching size by exhaustive
// branch-and-bound over vertices. Exponential; intended for cross-validating
// the other algorithms on graphs with up to ~24 vertices (it panics above 62
// vertices, the capacity of its bitmask).
func BruteForceSize(g *graph.Static) int {
	n := g.N()
	if n > 62 {
		invariant.Violatef("matching: BruteForceSize limited to 62 vertices, got %d", n)
	}
	memo := make(map[uint64]int)
	var solve func(avail uint64) int
	solve = func(avail uint64) int {
		if avail == 0 {
			return 0
		}
		if v, ok := memo[avail]; ok {
			return v
		}
		// Find the lowest available vertex.
		var v int32
		for v = 0; avail&(1<<uint(v)) == 0; v++ {
		}
		// Option 1: leave v unmatched.
		best := solve(avail &^ (1 << uint(v)))
		// Option 2: match v to an available neighbor.
		for _, w := range g.Neighbors(v) {
			if avail&(1<<uint(w)) != 0 {
				if s := 1 + solve(avail&^(1<<uint(v))&^(1<<uint(w))); s > best {
					best = s
				}
			}
		}
		memo[avail] = best
		return best
	}
	return solve((uint64(1) << uint(n)) - 1)
}
