package matching

import (
	"repro/internal/graph"
	"repro/internal/invariant"
)

// VertexCoverFromMatching returns the endpoints of a MAXIMAL matching,
// which form a vertex cover of at most twice the minimum size (König-style
// companion bound; the classic use of maximal matchings). It panics if m is
// not maximal in g, since the cover property would then fail.
func VertexCoverFromMatching(g *graph.Static, m *Matching) []int32 {
	if !IsMaximal(g, m) {
		invariant.Violatef("matching: vertex cover needs a maximal matching")
	}
	cover := make([]int32, 0, 2*m.Size())
	for v := int32(0); v < int32(m.N()); v++ {
		if m.IsMatched(v) {
			cover = append(cover, v)
		}
	}
	return cover
}

// IsVertexCover reports whether every edge of g has an endpoint in cover.
func IsVertexCover(g *graph.Static, cover []int32) bool {
	in := make([]bool, g.N())
	for _, v := range cover {
		in[v] = true
	}
	ok := true
	g.ForEachEdge(func(u, v int32) {
		if !in[u] && !in[v] {
			ok = false
		}
	})
	return ok
}

// MinVertexCoverSizeLB returns the trivial lower bound |M| on the minimum
// vertex cover size for any matching M of g (each matched edge needs its
// own cover vertex).
func MinVertexCoverSizeLB(m *Matching) int { return m.Size() }
