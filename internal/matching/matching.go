// Package matching implements matching algorithms on undirected graphs:
// greedy maximal matching, Hopcroft–Karp for bipartite graphs, Edmonds'
// blossom algorithm for exact maximum matching in general graphs, a
// bounded-length augmentation scheme used as the fast approximate matcher
// run on sparsifiers, and a brute-force reference for cross-validation.
package matching

import (
	"fmt"
	"slices"

	"repro/internal/graph"
	"repro/internal/invariant"
)

// Matching is a set of vertex-disjoint edges over vertices 0..n-1,
// represented by the mate array: Mate(v) = -1 iff v is free.
type Matching struct {
	mate []int32
	size int
}

// NewMatching returns an empty matching over n vertices.
func NewMatching(n int) *Matching {
	m := &Matching{mate: make([]int32, n)}
	for i := range m.mate {
		m.mate[i] = -1
	}
	return m
}

// FromMates builds a Matching from a mate array (defensively copied).
// It panics if the array is not an involution.
func FromMates(mate []int32) *Matching {
	m := &Matching{mate: slices.Clone(mate)}
	for v, w := range m.mate {
		if w < 0 {
			continue
		}
		if int(w) >= len(mate) || m.mate[w] != int32(v) || w == int32(v) {
			invariant.Violatef("matching: mate array not an involution at %d -> %d", v, w)
		}
		if int32(v) < w {
			m.size++
		}
	}
	return m
}

// WrapMates wraps a mate array WITHOUT copying or validating it. The caller
// must guarantee that mate is an involution with exactly size matched pairs
// and must not use the array afterwards. This is the O(1) hand-over used by
// the dynamic maintainer's swap, whose worst-case update bound cannot
// afford the O(n) copy of FromMates.
func WrapMates(mate []int32, size int) *Matching {
	return &Matching{mate: mate, size: size}
}

// Reset empties the matching in place, reusing the mate array. It is the
// allocation-free counterpart of NewMatching for engine-driven hot paths.
//
//sparse:allocfree
func (m *Matching) Reset() {
	for i := range m.mate {
		m.mate[i] = -1
	}
	m.size = 0
}

// MatesInto appends the mate array to dst[:0] and returns it, reusing dst's
// capacity when it suffices — the allocation-free counterpart of Mates.
//
//sparse:allocfree
func (m *Matching) MatesInto(dst []int32) []int32 {
	return append(dst[:0], m.mate...)
}

// N returns the number of vertices the matching is defined over.
func (m *Matching) N() int { return len(m.mate) }

// Size returns the number of matched edges.
func (m *Matching) Size() int { return m.size }

// Mate returns the partner of v, or -1 if v is free.
//
//sparse:allocfree
func (m *Matching) Mate(v int32) int32 { return m.mate[v] }

// IsMatched reports whether v is matched.
//
//sparse:allocfree
func (m *Matching) IsMatched(v int32) bool { return m.mate[v] >= 0 }

// Match adds the edge {u, v}. Both endpoints must currently be free.
//
//sparse:allocfree
func (m *Matching) Match(u, v int32) {
	if u == v || m.mate[u] >= 0 || m.mate[v] >= 0 {
		invariant.Violatef("matching: cannot match (%d,%d): mates (%d,%d)", u, v, m.mate[u], m.mate[v])
	}
	m.mate[u], m.mate[v] = v, u
	m.size++
}

// Unmatch removes the matched edge incident on v. It reports whether v was
// matched.
func (m *Matching) Unmatch(v int32) bool {
	w := m.mate[v]
	if w < 0 {
		return false
	}
	m.mate[v], m.mate[w] = -1, -1
	m.size--
	return true
}

// Edges returns the matched edges in canonical order.
func (m *Matching) Edges() []graph.Edge {
	edges := make([]graph.Edge, 0, m.size)
	for v, w := range m.mate {
		if w > int32(v) {
			edges = append(edges, graph.Edge{U: int32(v), V: w})
		}
	}
	return edges
}

// Clone returns a deep copy.
func (m *Matching) Clone() *Matching {
	return &Matching{mate: slices.Clone(m.mate), size: m.size}
}

// Mates returns a copy of the underlying mate array.
func (m *Matching) Mates() []int32 { return slices.Clone(m.mate) }

// Verify checks that m is a valid matching in g: every matched pair is an
// edge of g and the mate relation is a consistent involution.
func Verify(g *graph.Static, m *Matching) error {
	if m.N() != g.N() {
		return fmt.Errorf("matching: defined over %d vertices, graph has %d", m.N(), g.N())
	}
	count := 0
	for v := int32(0); v < int32(m.N()); v++ {
		w := m.mate[v]
		if w < 0 {
			continue
		}
		if w == v || int(w) >= m.N() {
			return fmt.Errorf("matching: bad mate %d of %d", w, v)
		}
		if m.mate[w] != v {
			return fmt.Errorf("matching: mate relation not symmetric at (%d,%d)", v, w)
		}
		if !g.HasEdge(v, w) {
			return fmt.Errorf("matching: pair (%d,%d) is not an edge", v, w)
		}
		if v < w {
			count++
		}
	}
	if count != m.size {
		return fmt.Errorf("matching: size %d but %d matched pairs", m.size, count)
	}
	return nil
}

// IsMaximal reports whether no edge of g has both endpoints free.
func IsMaximal(g *graph.Static, m *Matching) bool {
	found := true
	g.ForEachEdge(func(u, v int32) {
		if m.mate[u] < 0 && m.mate[v] < 0 {
			found = false
		}
	})
	return found
}

// FreeVertices returns the free (unmatched) vertices.
func (m *Matching) FreeVertices() []int32 {
	var free []int32
	for v, w := range m.mate {
		if w < 0 {
			free = append(free, int32(v))
		}
	}
	return free
}

// RemoveEdge drops {u,v} from the matching if it is currently matched
// (used when the underlying dynamic graph deletes an edge). It reports
// whether the matching changed.
func (m *Matching) RemoveEdge(u, v int32) bool {
	if m.mate[u] == v {
		m.Unmatch(u)
		return true
	}
	return false
}
