package gen

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/invariant"
)

// UnboundedInstance is a generated graph together with a WITNESS that its
// neighborhood independence number is large: an explicit independent set
// inside one vertex's neighborhood. It is the adversarial counterpart of
// Instance (whose Beta certifies an upper bound): these are the inputs on
// which Theorem 2.1 promises nothing and the G_Δ backend is expected to
// degrade, while the EDCS backend keeps its arbitrary-graph guarantee.
type UnboundedInstance struct {
	Name string
	G    *graph.Static
	// Center is the witness vertex.
	Center int32
	// Independent is a set of pairwise non-adjacent neighbors of Center;
	// its size is a certified lower bound on β(G).
	Independent []int32
}

// BetaLowerBound returns the certified lower bound on the neighborhood
// independence number: |Independent|.
func (u UnboundedInstance) BetaLowerBound() int { return len(u.Independent) }

// VerifyWitness re-derives the certificate from the graph: every witness
// vertex must be a neighbor of Center and no two may be adjacent. O(w²·log)
// in the witness size — cheap next to any oracle run.
func (u UnboundedInstance) VerifyWitness() error {
	for i, v := range u.Independent {
		if !u.G.HasEdge(u.Center, v) {
			return fmt.Errorf("gen: %s: witness vertex %d is not a neighbor of center %d", u.Name, v, u.Center)
		}
		for _, w := range u.Independent[i+1:] {
			if u.G.HasEdge(v, w) {
				return fmt.Errorf("gen: %s: witness vertices %d and %d are adjacent", u.Name, v, w)
			}
		}
	}
	return nil
}

// HiddenMatchingInstance is the adversarial dense-bipartite family for the
// random-marking sparsifier. Vertices: L (pairs), R (pairs), and decoy sets
// DL, DR (decoys each). Edges: the hidden perfect matching L_i–R_i, plus the
// complete bipartite graphs L×DL and R×DR.
//
//   - MCM(G) = pairs + min(pairs, decoys): the hidden matching plus one
//     decoy partner per side for min(pairs, decoys) pairs.
//   - β(G) ≥ pairs: N(any DL vertex) = L, pairwise non-adjacent.
//   - Every L/R vertex has degree decoys+1, so once decoys+1 exceeds the
//     mark-all threshold 2Δ, vertex L_i marks its essential edge only with
//     probability ≈ Δ/(decoys+1) — the hidden matching mostly vanishes from
//     G_Δ and its ratio degrades toward pairs/(2·decoys), while an EDCS's
//     property P2 forces the degree-starved essential edges back in.
//
// The construction is deterministic (no randomness to seed).
func HiddenMatchingInstance(pairs, decoys int) UnboundedInstance {
	if pairs < 1 || decoys < 1 {
		invariant.Violatef("gen: HiddenMatchingInstance needs pairs, decoys >= 1 (got %d, %d)", pairs, decoys)
	}
	// Layout: L = [0, pairs), R = [pairs, 2·pairs),
	// DL = [2·pairs, 2·pairs+decoys), DR = [2·pairs+decoys, 2·pairs+2·decoys).
	l := func(i int) int32 { return int32(i) }
	r := func(i int) int32 { return int32(pairs + i) }
	dl := func(i int) int32 { return int32(2*pairs + i) }
	dr := func(i int) int32 { return int32(2*pairs + decoys + i) }
	b := graph.NewBuilder(2*pairs + 2*decoys)
	for i := 0; i < pairs; i++ {
		b.AddEdge(l(i), r(i))
		for j := 0; j < decoys; j++ {
			b.AddEdge(l(i), dl(j))
			b.AddEdge(r(i), dr(j))
		}
	}
	ind := make([]int32, pairs)
	for i := range ind {
		ind[i] = l(i)
	}
	return UnboundedInstance{
		Name:        fmt.Sprintf("hidden%dx%d", pairs, decoys),
		G:           b.Build(),
		Center:      dl(0),
		Independent: ind,
	}
}

// HiddenMatchingMCM returns the closed-form maximum matching size of
// HiddenMatchingInstance(pairs, decoys) — pairs + min(pairs, decoys) — so
// harness code can skip the blossom oracle on large instances.
func HiddenMatchingMCM(pairs, decoys int) int {
	return pairs + min(pairs, decoys)
}

// GnpUnboundedInstance draws G(n, p) and certifies a β lower bound by
// greedily extracting an independent set from the neighborhood of the
// highest-degree vertex. For constant p the neighborhood independence of
// G(n, p) is Θ(log n) w.h.p. — far above the O(1) β of every certified
// bounded family — and the greedy witness typically realizes most of it.
// Deterministic for a fixed (n, p, seed).
func GnpUnboundedInstance(n int, p float64, seed uint64) UnboundedInstance {
	g := ErdosRenyi(n, p, seed)
	center, ind := greedyNeighborhoodIndependentSet(g)
	return UnboundedInstance{
		Name:        fmt.Sprintf("gnp%d", n),
		G:           g,
		Center:      center,
		Independent: ind,
	}
}

// greedyNeighborhoodIndependentSet picks the highest-degree vertex (lowest
// id on ties) and greedily packs pairwise non-adjacent neighbors in
// ascending id order — deterministic, polynomial, and sound: the result is
// always a valid witness, merely not necessarily maximum.
func greedyNeighborhoodIndependentSet(g *graph.Static) (int32, []int32) {
	center := int32(0)
	for v := int32(1); v < int32(g.N()); v++ {
		if g.Degree(v) > g.Degree(center) {
			center = v
		}
	}
	var ind []int32
	for _, v := range g.Neighbors(center) {
		ok := true
		for _, w := range ind {
			if g.HasEdge(v, w) {
				ok = false
				break
			}
		}
		if ok {
			ind = append(ind, v)
		}
	}
	return center, ind
}
