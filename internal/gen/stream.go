package gen

import (
	"math"

	"repro/internal/arcs"
	"repro/internal/graph"
	"repro/internal/invariant"
)

// Streaming generators.
//
// A 10⁸-edge instance is 800 MB as a packed edge list — materializing it
// just to hand it to the CSR builder doubles peak memory for no reason. An
// EdgeStreamer instead emits the edge multiset in bounded chunks, and
// graph.FromStream replays it twice (count pass, fill pass) to build the CSR
// with peak memory O(CSR) + one chunk. Each streamer here emits the *exact*
// edge multiset of its materializing counterpart for the same parameters and
// seed (pinned by tests), so streamed instances are interchangeable with the
// catalog the experiments already certify.

// EdgeStreamer emits a graph's packed arcs (arcs.Pack encoding) in bounded
// chunks. Implementations must be deterministic and re-invokable: every
// StreamInto call emits the identical arc multiset (chunk boundaries may
// differ), which is what lets graph.FromStream run its two passes.
type EdgeStreamer interface {
	// N returns the number of vertices.
	N() int
	// StreamInto invokes yield with successive chunks of packed arcs. The
	// chunk slice is reused between yields — callers must not retain it.
	StreamInto(yield func(chunk []uint64))
}

// DefaultStreamChunk is the default arcs-per-chunk (8 MB of packed arcs).
const DefaultStreamChunk = 1 << 20

// BuildStream constructs the streamed graph via chunked two-pass CSR
// assembly, never materializing the full edge list.
func BuildStream(s EdgeStreamer, opt graph.ChunkedOptions) *graph.Static {
	return graph.FromStream(s.N(), opt, s.StreamInto)
}

// chunkEmitter batches packed arcs into fixed-capacity chunks for yield.
type chunkEmitter struct {
	buf   []uint64
	yield func([]uint64)
}

func newChunkEmitter(chunk int, yield func([]uint64)) *chunkEmitter {
	if chunk <= 0 {
		chunk = DefaultStreamChunk
	}
	return &chunkEmitter{buf: make([]uint64, 0, chunk), yield: yield}
}

func (e *chunkEmitter) add(k uint64) {
	e.buf = append(e.buf, k)
	if len(e.buf) == cap(e.buf) {
		e.flush()
	}
}

func (e *chunkEmitter) flush() {
	if len(e.buf) > 0 {
		e.yield(e.buf)
		e.buf = e.buf[:0]
	}
}

// DiversityStream streams the exact edge multiset of
// BoundedDiversity(n, k, cliqueSize, seed): the clique membership assignment
// (O(n·k) memory — the only state kept) is computed once with the identical
// RNG consumption, and StreamInto walks the cliques emitting pair arcs.
// Duplicate arcs (pairs sharing several cliques) are emitted as-is; the
// chunked builder dedups them, exactly as Builder.Build does for the
// materialized generator.
type DiversityStream struct {
	n       int
	k       int
	members [][]int32
	// ChunkSize overrides the arcs-per-chunk (0 selects DefaultStreamChunk).
	ChunkSize int
}

// NewDiversityStream returns a streamer for the bounded-diversity family
// with certified β ≤ k. Parameters mirror BoundedDiversity.
func NewDiversityStream(n, k, cliqueSize int, seed uint64) *DiversityStream {
	return &DiversityStream{n: n, k: k, members: diversityMembers(n, k, cliqueSize, seed)}
}

// NewDiversityStreamAvgDeg sizes the cliques for average degree roughly
// avgDeg, mirroring BoundedDiversityInstance.
func NewDiversityStreamAvgDeg(n, k int, avgDeg float64, seed uint64) *DiversityStream {
	cliqueSize := int(avgDeg) / k
	if cliqueSize < 2 {
		cliqueSize = 2
	}
	return NewDiversityStream(n, k, cliqueSize, seed)
}

// N returns the number of vertices.
func (s *DiversityStream) N() int { return s.n }

// Beta returns the certified neighborhood-independence bound k.
func (s *DiversityStream) Beta() int { return s.k }

// ArcsUpperBound returns the number of arcs StreamInto emits (duplicates
// included) — Σ C(|clique|, 2). Useful for sizing progress and throughput.
func (s *DiversityStream) ArcsUpperBound() int64 {
	total := int64(0)
	for _, mem := range s.members {
		c := int64(len(mem))
		total += c * (c - 1) / 2
	}
	return total
}

// StreamInto emits every within-clique pair, clique by clique.
func (s *DiversityStream) StreamInto(yield func(chunk []uint64)) {
	em := newChunkEmitter(s.ChunkSize, yield)
	for _, mem := range s.members {
		for i := 0; i < len(mem); i++ {
			for j := i + 1; j < len(mem); j++ {
				// Members are sorted ascending, so the pair is canonical.
				em.add(uint64(uint32(mem[i]))<<32 | uint64(uint32(mem[j])))
			}
		}
	}
	em.flush()
}

// GnpStream streams the exact edge set of ErdosRenyi(n, p, seed): the same
// Batagelj–Brandes geometric-skipping walk over the C(n,2) row-major pairs,
// drawing from a fresh identically-seeded RNG on every invocation, so the
// two FromStream passes see the same edges. Memory is O(1) beyond the chunk.
type GnpStream struct {
	n    int
	p    float64
	seed uint64
	// ChunkSize overrides the arcs-per-chunk (0 selects DefaultStreamChunk).
	ChunkSize int
}

// NewGnpStream returns a streamer for G(n, p).
func NewGnpStream(n int, p float64, seed uint64) *GnpStream {
	if p < 0 || p > 1 {
		invariant.Violatef("gen: probability %v out of [0,1]", p)
	}
	return &GnpStream{n: n, p: p, seed: seed}
}

// N returns the number of vertices.
func (s *GnpStream) N() int { return s.n }

// ArcsUpperBound returns p·C(n,2) rounded up — the expected stream length.
func (s *GnpStream) ArcsUpperBound() int64 {
	total := float64(s.n) * float64(s.n-1) / 2
	return int64(math.Ceil(s.p * total))
}

// StreamInto walks the pair space with geometric gaps (the ErdosRenyi loop)
// and emits each present edge once, in row-major order.
func (s *GnpStream) StreamInto(yield func(chunk []uint64)) {
	if s.p == 0 || s.n < 2 {
		return
	}
	em := newChunkEmitter(s.ChunkSize, yield)
	if s.p == 1 {
		// All pairs, row-major — the edge set of Clique(n).
		for u := int32(0); u < int32(s.n); u++ {
			for v := u + 1; v < int32(s.n); v++ {
				em.add(arcs.Pack(u, v))
			}
		}
		em.flush()
		return
	}
	r := rng(s.seed)
	total := int64(s.n) * int64(s.n-1) / 2
	at := int64(-1)
	cur := newPairCursor(s.n)
	for {
		gap := int64(1)
		u := r.Float64()
		if u > 0 {
			gap = int64(math.Log(u) / math.Log(1-s.p))
			if gap < 0 {
				gap = 0
			}
			gap++
		}
		at += gap
		if at >= total {
			break
		}
		u32, v32 := cur.pair(at)
		em.add(arcs.Pack(u32, v32))
	}
	em.flush()
}
