package gen

import (
	"testing"

	"repro/internal/core"
)

func TestQuasiUnitDiskValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { QuasiUnitDisk(10, 0, 0.1, 1) },
		func() { QuasiUnitDisk(10, 0.2, 0.1, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad radii did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestQuasiUnitDiskBetaBound(t *testing.T) {
	// α = 1 degenerates to the unit-disk packing bound (2+1)² = 9.
	if got := QuasiUnitDiskBetaBound(0.1, 0.1); got != 9 {
		t.Errorf("bound at α=1: %d, want 9", got)
	}
	if got := QuasiUnitDiskBetaBound(0.1, 0.15); got != 16 {
		t.Errorf("bound at α=1.5: %d, want 16", got)
	}
}

func TestQuasiUnitDiskCertificate(t *testing.T) {
	for seed := uint64(0); seed < 6; seed++ {
		g := QuasiUnitDisk(120, 0.12, 0.18, seed)
		if err := g.Validate(); err != nil {
			t.Fatal(err)
		}
		bound := QuasiUnitDiskBetaBound(0.12, 0.18)
		if got := core.ExactBeta(g); got > bound {
			t.Errorf("seed %d: β = %d exceeds certificate %d", seed, got, bound)
		}
	}
}

func TestQuasiUnitDiskInstanceDensity(t *testing.T) {
	inst := QuasiUnitDiskInstance(600, 30, 3)
	avg := inst.G.AvgDegree()
	if avg < 15 || avg > 60 {
		t.Errorf("avg degree %v, want ≈ 30", avg)
	}
	if inst.Beta != 16 {
		t.Errorf("certified β = %d, want 16 at α = 1.5", inst.Beta)
	}
}

func TestQuasiUnitDiskEdgeRules(t *testing.T) {
	// Inner-radius pairs must always be adjacent; beyond outer never.
	// Regenerate points with the same geometry used by the generator by
	// checking structural consistency instead: every edge respects the
	// grid search (validated via Validate) and the graph is nonempty for
	// dense settings.
	g := QuasiUnitDisk(300, 0.15, 0.2, 9)
	if g.M() == 0 {
		t.Fatal("dense quasi-unit-disk graph came out empty")
	}
}
