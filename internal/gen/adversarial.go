package gen

import (
	"repro/internal/graph"
	"repro/internal/invariant"
)

// CliqueMinusEdge returns K_n with the single edge {u, v} removed — the
// family 𝒢_n from the proof of Lemma 2.13 (deterministic sparsifiers fail).
// β of these graphs is 2, and they contain a perfect matching for even n.
func CliqueMinusEdge(n int, u, v int32) *graph.Static {
	if u == v || u < 0 || v < 0 || int(u) >= n || int(v) >= n {
		invariant.Violatef("gen: bad non-edge (%d,%d) for n=%d", u, v, n)
	}
	skip := graph.Edge{U: u, V: v}.Canonical()
	b := graph.NewBuilder(n)
	for a := int32(0); a < int32(n); a++ {
		for c := a + 1; c < int32(n); c++ {
			if (graph.Edge{U: a, V: c}) == skip {
				continue
			}
			b.AddEdge(a, c)
		}
	}
	return b.Build()
}

// TwoCliquesBridge returns the Observation 2.14 instance: two disjoint
// cliques on half vertices each, where half is odd, joined by the single
// bridge edge (0, half). Any maximum matching must use the bridge, so a
// sparsifier that misses it loses exactly one unit of matching size.
//
// half must be odd (so each clique alone has a near-perfect matching leaving
// one vertex exposed). It returns the graph and the bridge edge.
func TwoCliquesBridge(half int) (*graph.Static, graph.Edge) {
	if half < 3 || half%2 == 0 {
		invariant.Violatef("gen: TwoCliquesBridge needs odd half >= 3, got %d", half)
	}
	n := 2 * half
	b := graph.NewBuilder(n)
	for a := int32(0); a < int32(half); a++ {
		for c := a + 1; c < int32(half); c++ {
			b.AddEdge(a, c)
			b.AddEdge(a+int32(half), c+int32(half))
		}
	}
	bridge := graph.Edge{U: 0, V: int32(half)}
	b.AddEdge(bridge.U, bridge.V)
	return b.Build(), bridge
}
