package gen

import "repro/internal/graph"

// LineGraph returns the line graph L(g): one vertex per edge of g, with two
// vertices adjacent iff the corresponding edges of g share an endpoint.
//
// Line graphs have neighborhood independence number at most 2: the edges of
// g incident on an edge e = (u, v) split into those sharing u and those
// sharing v, each group forming a clique in L(g), so an independent set in
// the neighborhood of e picks at most one from each.
//
// It also returns the edge list of g indexed by the line-graph vertex ids,
// so callers can map a matching in L(g) back to g.
func LineGraph(g *graph.Static) (*graph.Static, []graph.Edge) {
	edges := g.Edges()
	id := make(map[graph.Edge]int32, len(edges))
	for i, e := range edges {
		id[e] = int32(i)
	}
	b := graph.NewBuilder(len(edges))
	// The edges incident on each vertex v of g form a clique in L(g).
	for v := int32(0); v < int32(g.N()); v++ {
		nb := g.Neighbors(v)
		for i := 0; i < len(nb); i++ {
			ei := id[graph.Edge{U: v, V: nb[i]}.Canonical()]
			for j := i + 1; j < len(nb); j++ {
				ej := id[graph.Edge{U: v, V: nb[j]}.Canonical()]
				b.AddEdge(ei, ej)
			}
		}
	}
	return b.Build(), edges
}

// LineGraphInstance returns the line graph of a random base graph chosen so
// L has roughly n vertices and the requested average degree, certified β ≤ 2.
//
// The base is G(n0, p): L has m0 = C(n0,2)·p vertices in expectation and a
// vertex of L (an edge uv of the base) has degree deg(u)+deg(v)-2 ≈ 2·n0·p.
func LineGraphInstance(n int, avgDeg float64, seed uint64) Instance {
	// Choose n0 so that the base has ~n edges with average base degree
	// avgDeg/2: n0·(avgDeg/2)/2 = n  =>  n0 = 4n/avgDeg.
	n0 := int(4 * float64(n) / avgDeg)
	if n0 < 4 {
		n0 = 4
	}
	p := avgDeg / 2 / float64(n0-1)
	if p > 1 {
		p = 1
	}
	base := ErdosRenyi(n0, p, seed)
	lg, _ := LineGraph(base)
	return Instance{Name: "line", G: lg, Beta: 2}
}
