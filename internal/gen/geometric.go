package gen

import (
	"math"
	"sort"

	"repro/internal/graph"
)

// UnitDisk returns the unit-disk graph of n points placed uniformly at
// random in the unit square, with an edge between points at Euclidean
// distance at most radius.
//
// Unit-disk graphs have neighborhood independence number at most 5: points
// within distance r of a center that are pairwise more than r apart subtend
// pairwise angles > 60° at the center, so at most 5 fit (a 6th would force
// two within 60°, hence within distance r of each other).
//
// Construction uses a uniform grid with cell side = radius, so the cost is
// O(n + output).
func UnitDisk(n int, radius float64, seed uint64) *graph.Static {
	g, _ := UnitDiskPoints(n, radius, seed)
	return g
}

// Point is a 2-D point in the unit square.
type Point struct{ X, Y float64 }

// UnitDiskPoints is UnitDisk but also returns the point placements, for
// scenario examples (e.g. wireless link scheduling).
func UnitDiskPoints(n int, radius float64, seed uint64) (*graph.Static, []Point) {
	r := rng(seed)
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{r.Float64(), r.Float64()}
	}
	b := graph.NewBuilder(n)
	if radius <= 0 {
		return b.Build(), pts
	}
	cells := int(1/radius) + 1
	grid := make(map[[2]int][]int32)
	cellOf := func(p Point) [2]int {
		cx := int(p.X / radius)
		cy := int(p.Y / radius)
		if cx >= cells {
			cx = cells - 1
		}
		if cy >= cells {
			cy = cells - 1
		}
		return [2]int{cx, cy}
	}
	for i, p := range pts {
		grid[cellOf(p)] = append(grid[cellOf(p)], int32(i))
	}
	r2 := radius * radius
	for i, p := range pts {
		c := cellOf(p)
		for dx := -1; dx <= 1; dx++ {
			for dy := -1; dy <= 1; dy++ {
				for _, j := range grid[[2]int{c[0] + dx, c[1] + dy}] {
					if j <= int32(i) {
						continue
					}
					q := pts[j]
					ddx, ddy := p.X-q.X, p.Y-q.Y
					if ddx*ddx+ddy*ddy <= r2 {
						b.AddEdge(int32(i), j)
					}
				}
			}
		}
	}
	return b.Build(), pts
}

// UnitDiskInstance returns a unit-disk instance sized so the expected degree
// is roughly avgDeg, with the certified bound β ≤ 5.
func UnitDiskInstance(n int, avgDeg float64, seed uint64) Instance {
	// Expected degree ≈ n·π·r² (ignoring boundary), so r = sqrt(avgDeg/(nπ)).
	radius := math.Sqrt(avgDeg / (float64(n) * math.Pi))
	return Instance{Name: "unitdisk", G: UnitDisk(n, radius, seed), Beta: 5}
}

// ProperInterval returns the intersection graph of n unit-length intervals
// with start points drawn uniformly from [0, spread]. Proper interval graphs
// (no interval contains another) have neighborhood independence number at
// most 2: the neighbors of an interval I all contain I's left or right
// endpoint region, forming two cliques, and one independent vertex can be
// picked from a clique.
func ProperInterval(n int, spread float64, seed uint64) *graph.Static {
	r := rng(seed)
	starts := make([]float64, n)
	for i := range starts {
		starts[i] = r.Float64() * spread
	}
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(a, b int) bool { return starts[order[a]] < starts[order[b]] })
	b := graph.NewBuilder(n)
	// Unit intervals [s, s+1] intersect iff |s_i - s_j| <= 1.
	for i := 0; i < n; i++ {
		vi := order[i]
		for j := i + 1; j < n; j++ {
			vj := order[j]
			if starts[vj]-starts[vi] > 1 {
				break
			}
			b.AddEdge(vi, vj)
		}
	}
	return b.Build()
}

// ProperIntervalInstance returns a proper-interval instance with expected
// degree roughly avgDeg, certified β ≤ 2.
func ProperIntervalInstance(n int, avgDeg float64, seed uint64) Instance {
	// Expected neighbors of an interval ≈ 2n/spread, so spread = 2n/avgDeg.
	spread := 2 * float64(n) / avgDeg
	if spread < 1 {
		spread = 1
	}
	return Instance{Name: "interval", G: ProperInterval(n, spread, seed), Beta: 2}
}
