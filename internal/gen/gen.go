// Package gen provides graph generators for the sparsematch library.
//
// The generators cover the bounded-neighborhood-independence families the
// paper highlights (line graphs, unit-disk graphs, bounded-diversity graphs,
// proper-interval graphs, cliques), general-purpose random graphs for
// algorithm testing, and the paper's adversarial lower-bound instances
// (clique-minus-edge for Lemma 2.13, two-cliques-plus-bridge for
// Observation 2.14).
//
// Every randomized generator takes an explicit seed, so all experiments are
// reproducible. Generators that target a family with a structurally certified
// neighborhood-independence bound return an Instance carrying that bound.
package gen

import (
	"math"
	"math/rand/v2"

	"repro/internal/graph"
	"repro/internal/invariant"
)

// Instance is a generated graph together with a certified upper bound on its
// neighborhood independence number, derived from the construction (not
// computed from the graph).
type Instance struct {
	Name string
	G    *graph.Static
	// Beta is a certified upper bound on the neighborhood independence
	// number β(G), guaranteed by the construction.
	Beta int
}

func rng(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, 0x9e3779b97f4a7c15))
}

// Clique returns the complete graph K_n. Its neighborhood independence
// number is 1: any two neighbors of a vertex are adjacent.
func Clique(n int) *graph.Static {
	b := graph.NewBuilder(n)
	for u := int32(0); u < int32(n); u++ {
		for v := u + 1; v < int32(n); v++ {
			b.AddEdge(u, v)
		}
	}
	return b.Build()
}

// Path returns the path P_n on n vertices (n-1 edges).
func Path(n int) *graph.Static {
	b := graph.NewBuilder(n)
	for v := int32(0); v+1 < int32(n); v++ {
		b.AddEdge(v, v+1)
	}
	return b.Build()
}

// Cycle returns the cycle C_n (n >= 3).
func Cycle(n int) *graph.Static {
	if n < 3 {
		invariant.Violatef("gen: cycle needs n >= 3, got %d", n)
	}
	b := graph.NewBuilder(n)
	for v := int32(0); v < int32(n); v++ {
		b.AddEdge(v, (v+1)%int32(n))
	}
	return b.Build()
}

// Star returns the star K_{1,n-1} with center 0. Its neighborhood
// independence number is n-1 — the canonical unbounded-β example.
func Star(n int) *graph.Static {
	b := graph.NewBuilder(n)
	for v := int32(1); v < int32(n); v++ {
		b.AddEdge(0, v)
	}
	return b.Build()
}

// CompleteBipartite returns K_{a,b} with left part 0..a-1.
func CompleteBipartite(a, b int) *graph.Static {
	bld := graph.NewBuilder(a + b)
	for u := int32(0); u < int32(a); u++ {
		for v := int32(a); v < int32(a+b); v++ {
			bld.AddEdge(u, v)
		}
	}
	return bld.Build()
}

// ErdosRenyi returns G(n, p): each of the C(n,2) edges present independently
// with probability p. Uses geometric skipping, so the cost is proportional
// to the output size.
func ErdosRenyi(n int, p float64, seed uint64) *graph.Static {
	if p < 0 || p > 1 {
		invariant.Violatef("gen: probability %v out of [0,1]", p)
	}
	b := graph.NewBuilder(n)
	if p == 0 || n < 2 {
		return b.Build()
	}
	r := rng(seed)
	if p == 1 {
		return Clique(n)
	}
	// Iterate over the C(n,2) pairs in row-major order, skipping ahead by
	// geometric gaps (Batagelj–Brandes).
	total := int64(n) * int64(n-1) / 2
	at := int64(-1)
	cur := newPairCursor(n)
	for {
		// Draw gap ~ Geometric(p): number of failures before next success.
		gap := int64(1)
		u := r.Float64()
		if u > 0 {
			gap = int64(math.Log(u) / math.Log(1-p))
			if gap < 0 {
				gap = 0
			}
			gap++
		}
		at += gap
		if at >= total {
			break
		}
		u32, v32 := cur.pair(at)
		b.AddEdge(u32, v32)
	}
	return b.Build()
}

// pairCursor maps non-decreasing linear indices in [0, C(n,2)) to pairs
// (u, v), u<v, in row-major order. It advances a row pointer incrementally,
// so a full walk costs O(n + calls) instead of the O(n) per call a from-zero
// scan (pairFromIndex) pays — the difference between milliseconds and tens
// of seconds on a 10⁸-pair walk.
type pairCursor struct {
	u        int64 // current row
	rowStart int64 // linear index of pair (u, u+1)
	rowLen   int64 // pairs remaining in row u: n-1-u
}

func newPairCursor(n int) pairCursor {
	return pairCursor{rowLen: int64(n - 1)}
}

// pair returns the pair at idx. Indices must be non-decreasing across calls.
func (c *pairCursor) pair(idx int64) (int32, int32) {
	for idx >= c.rowStart+c.rowLen {
		c.rowStart += c.rowLen
		c.rowLen--
		c.u++
	}
	return int32(c.u), int32(c.u + 1 + idx - c.rowStart)
}

// pairFromIndex maps a linear index in [0, C(n,2)) to the pair (u, v), u<v,
// enumerated row by row: (0,1),(0,2),...,(0,n-1),(1,2),...
func pairFromIndex(idx int64, n int) (int32, int32) {
	u := int64(0)
	rowLen := int64(n - 1)
	for idx >= rowLen {
		idx -= rowLen
		u++
		rowLen--
	}
	return int32(u), int32(u + 1 + idx)
}

// RandomBipartite returns a random bipartite graph with parts of sizes a and
// b where each of the a*b edges is present independently with probability p.
func RandomBipartite(a, b int, p float64, seed uint64) *graph.Static {
	r := rng(seed)
	bld := graph.NewBuilder(a + b)
	for u := int32(0); u < int32(a); u++ {
		for v := int32(a); v < int32(a+b); v++ {
			if r.Float64() < p {
				bld.AddEdge(u, v)
			}
		}
	}
	return bld.Build()
}

// RandomRegularish returns a graph where each vertex draws d random distinct
// partners (a union of d random near-perfect matchings style construction);
// degrees concentrate around 2d. Useful as a sparse test graph.
func RandomRegularish(n, d int, seed uint64) *graph.Static {
	r := rng(seed)
	b := graph.NewBuilder(n)
	for v := int32(0); v < int32(n); v++ {
		for k := 0; k < d; k++ {
			w := int32(r.IntN(n))
			if w != v {
				b.AddEdge(v, w)
			}
		}
	}
	return b.Build()
}
