package gen

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/core"
)

func TestClique(t *testing.T) {
	g := Clique(6)
	if g.N() != 6 || g.M() != 15 {
		t.Fatalf("K6: N=%d M=%d", g.N(), g.M())
	}
	if got := core.ExactBeta(g); got != 1 {
		t.Errorf("β(K6) = %d, want 1", got)
	}
}

func TestPathCycleStar(t *testing.T) {
	if g := Path(5); g.M() != 4 {
		t.Errorf("P5 edges = %d", g.M())
	}
	if g := Cycle(5); g.M() != 5 || g.MaxDegree() != 2 {
		t.Errorf("C5: M=%d maxdeg=%d", g.M(), g.MaxDegree())
	}
	if g := Star(7); g.Degree(0) != 6 || core.ExactBeta(g) != 6 {
		t.Errorf("Star: deg(0)=%d β=%d", g.Degree(0), core.ExactBeta(g))
	}
	defer func() {
		if recover() == nil {
			t.Error("Cycle(2) did not panic")
		}
	}()
	Cycle(2)
}

func TestCompleteBipartite(t *testing.T) {
	g := CompleteBipartite(3, 4)
	if g.N() != 7 || g.M() != 12 {
		t.Fatalf("K3,4: N=%d M=%d", g.N(), g.M())
	}
	// β(K_{a,b}) = max(a, b): a vertex on the small side sees the whole
	// independent large side.
	if got := core.ExactBeta(g); got != 4 {
		t.Errorf("β(K3,4) = %d, want 4", got)
	}
}

func TestErdosRenyiDensity(t *testing.T) {
	n, p := 300, 0.1
	g := ErdosRenyi(n, p, 1)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	want := p * float64(n*(n-1)) / 2
	got := float64(g.M())
	if got < 0.85*want || got > 1.15*want {
		t.Errorf("G(%d,%.2f): m = %v, want ≈ %v", n, p, got, want)
	}
	if ErdosRenyi(50, 0, 1).M() != 0 {
		t.Error("G(n,0) has edges")
	}
	if g := ErdosRenyi(20, 1, 1); g.M() != 190 {
		t.Errorf("G(20,1) m = %d, want 190", g.M())
	}
}

func TestErdosRenyiDeterministic(t *testing.T) {
	a := ErdosRenyi(100, 0.2, 7)
	b := ErdosRenyi(100, 0.2, 7)
	if a.M() != b.M() {
		t.Error("same seed produced different graphs")
	}
	c := ErdosRenyi(100, 0.2, 8)
	if a.M() == c.M() && a.Edges()[0] == c.Edges()[0] && a.Edges()[1] == c.Edges()[1] {
		t.Log("different seeds produced suspiciously similar graphs (not fatal)")
	}
}

func TestPairFromIndex(t *testing.T) {
	n := 5
	idx := int64(0)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			gu, gv := pairFromIndex(idx, n)
			if int(gu) != u || int(gv) != v {
				t.Fatalf("pairFromIndex(%d) = (%d,%d), want (%d,%d)", idx, gu, gv, u, v)
			}
			idx++
		}
	}
}

func TestRandomBipartiteIsBipartite(t *testing.T) {
	g := RandomBipartite(20, 30, 0.2, 3)
	for _, e := range g.Edges() {
		if (e.U < 20) == (e.V < 20) {
			t.Fatalf("edge %v within one side", e)
		}
	}
}

func TestLineGraphSmall(t *testing.T) {
	// L(P4) = P3; L(K3) = K3; L(star) = clique.
	lp, edges := LineGraph(Path(4))
	if lp.N() != 3 || lp.M() != 2 {
		t.Errorf("L(P4): N=%d M=%d, want 3,2", lp.N(), lp.M())
	}
	if len(edges) != 3 {
		t.Errorf("edge index has %d entries", len(edges))
	}
	lk, _ := LineGraph(Clique(3))
	if lk.N() != 3 || lk.M() != 3 {
		t.Errorf("L(K3): N=%d M=%d, want 3,3", lk.N(), lk.M())
	}
	ls, _ := LineGraph(Star(6))
	if ls.N() != 5 || ls.M() != 10 {
		t.Errorf("L(K1,5): N=%d M=%d, want K5", ls.N(), ls.M())
	}
}

func TestLineGraphBetaAtMost2(t *testing.T) {
	for seed := uint64(0); seed < 10; seed++ {
		base := ErdosRenyi(14, 0.3, seed)
		lg, _ := LineGraph(base)
		if lg.M() == 0 {
			continue
		}
		if got := core.ExactBeta(lg); got > 2 {
			t.Errorf("seed %d: β(L(G)) = %d > 2", seed, got)
		}
	}
}

func TestUnitDiskBetaAtMost5(t *testing.T) {
	for seed := uint64(0); seed < 8; seed++ {
		g := UnitDisk(120, 0.18, seed)
		if err := g.Validate(); err != nil {
			t.Fatal(err)
		}
		if got := core.ExactBeta(g); got > 5 {
			t.Errorf("seed %d: β(unit disk) = %d > 5", seed, got)
		}
	}
}

func TestUnitDiskMatchesBruteDistance(t *testing.T) {
	g, pts := UnitDiskPoints(60, 0.25, 2)
	r2 := 0.25 * 0.25
	for u := 0; u < 60; u++ {
		for v := u + 1; v < 60; v++ {
			dx, dy := pts[u].X-pts[v].X, pts[u].Y-pts[v].Y
			want := dx*dx+dy*dy <= r2
			if got := g.HasEdge(int32(u), int32(v)); got != want {
				t.Fatalf("edge (%d,%d) = %v, want %v", u, v, got, want)
			}
		}
	}
}

func TestProperIntervalBetaAtMost2(t *testing.T) {
	for seed := uint64(0); seed < 8; seed++ {
		g := ProperInterval(80, 20, seed)
		if got := core.ExactBeta(g); got > 2 {
			t.Errorf("seed %d: β(interval) = %d > 2", seed, got)
		}
	}
}

func TestBoundedDiversityBetaAtMostK(t *testing.T) {
	for _, k := range []int{1, 2, 3, 4} {
		g := BoundedDiversity(80, k, 10, uint64(k))
		if got := core.ExactBeta(g); got > k {
			t.Errorf("k=%d: β = %d > k", k, got)
		}
	}
}

func TestInstancesCertified(t *testing.T) {
	for _, name := range FamilyNames() {
		maker := Families()[name]
		inst := maker(150, 11)
		if inst.G.N() == 0 {
			t.Errorf("%s: empty instance", name)
			continue
		}
		if got := core.ExactBeta(inst.G); got > inst.Beta {
			t.Errorf("%s: exact β %d exceeds certified %d", name, got, inst.Beta)
		}
		if err := inst.G.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestInstanceSizesReasonable(t *testing.T) {
	for _, name := range FamilyNames() {
		inst := Families()[name](400, 5)
		n := inst.G.N()
		if n < 100 || n > 1600 {
			t.Errorf("%s: requested ~400 vertices, got %d", name, n)
		}
	}
}

func TestCliqueMinusEdge(t *testing.T) {
	g := CliqueMinusEdge(6, 1, 4)
	if g.M() != 14 {
		t.Fatalf("K6 minus edge: m = %d, want 14", g.M())
	}
	if g.HasEdge(1, 4) {
		t.Error("removed edge present")
	}
	if got := core.ExactBeta(g); got != 2 {
		t.Errorf("β = %d, want 2", got)
	}
}

func TestTwoCliquesBridge(t *testing.T) {
	g, bridge := TwoCliquesBridge(5)
	if g.N() != 10 {
		t.Fatalf("N = %d", g.N())
	}
	if !g.HasEdge(bridge.U, bridge.V) {
		t.Fatal("bridge missing")
	}
	// Total edges: 2·C(5,2) + 1 = 21.
	if g.M() != 21 {
		t.Errorf("M = %d, want 21", g.M())
	}
	defer func() {
		if recover() == nil {
			t.Error("even half accepted")
		}
	}()
	TwoCliquesBridge(4)
}

func TestRandomRegularishDegreeConcentration(t *testing.T) {
	g := RandomRegularish(500, 8, 4)
	avg := g.AvgDegree()
	if math.Abs(avg-16) > 3 {
		t.Errorf("avg degree %v, want ≈ 16", avg)
	}
}

func TestGeneratorsQuickValidity(t *testing.T) {
	f := func(seed uint64) bool {
		g := BoundedDiversity(40, 1+int(seed%4), 6, seed)
		if g.Validate() != nil {
			return false
		}
		lg, _ := LineGraph(ErdosRenyi(10, 0.4, seed))
		return lg.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestPairCursorMatchesPairFromIndex pins the incremental row cursor to the
// reference from-zero mapping on every index, plus sparse jumps of the kind
// the geometric-skipping walks produce.
func TestPairCursorMatchesPairFromIndex(t *testing.T) {
	for _, n := range []int{2, 3, 7, 50} {
		cur := newPairCursor(n)
		total := int64(n) * int64(n-1) / 2
		for idx := int64(0); idx < total; idx++ {
			cu, cv := cur.pair(idx)
			fu, fv := pairFromIndex(idx, n)
			if cu != fu || cv != fv {
				t.Fatalf("n=%d idx=%d: cursor (%d,%d), reference (%d,%d)", n, idx, cu, cv, fu, fv)
			}
		}
	}
	cur := newPairCursor(100)
	for _, idx := range []int64{0, 5, 5, 98, 99, 500, 4949} {
		cu, cv := cur.pair(idx)
		fu, fv := pairFromIndex(idx, 100)
		if cu != fu || cv != fv {
			t.Fatalf("jump idx=%d: cursor (%d,%d), reference (%d,%d)", idx, cu, cv, fu, fv)
		}
	}
}
