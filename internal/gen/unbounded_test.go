package gen

import (
	"testing"

	"repro/internal/matching"
)

// TestHiddenMatchingStructure checks the layout arithmetic, the closed-form
// MCM against the blossom oracle, and the witness certificate.
func TestHiddenMatchingStructure(t *testing.T) {
	for _, tc := range []struct{ pairs, decoys int }{
		{4, 2}, {10, 3}, {3, 8}, {1, 1},
	} {
		inst := HiddenMatchingInstance(tc.pairs, tc.decoys)
		if got, want := inst.G.N(), 2*tc.pairs+2*tc.decoys; got != want {
			t.Fatalf("pairs=%d decoys=%d: n = %d, want %d", tc.pairs, tc.decoys, got, want)
		}
		if got, want := inst.G.M(), tc.pairs+2*tc.pairs*tc.decoys; got != want {
			t.Fatalf("pairs=%d decoys=%d: m = %d, want %d", tc.pairs, tc.decoys, got, want)
		}
		if err := inst.VerifyWitness(); err != nil {
			t.Fatal(err)
		}
		if got, want := inst.BetaLowerBound(), tc.pairs; got != want {
			t.Errorf("pairs=%d decoys=%d: beta lower bound %d, want %d", tc.pairs, tc.decoys, got, want)
		}
		oracle := matching.MaximumGeneral(inst.G).Size()
		if got := HiddenMatchingMCM(tc.pairs, tc.decoys); got != oracle {
			t.Errorf("pairs=%d decoys=%d: closed-form MCM %d, oracle %d", tc.pairs, tc.decoys, got, oracle)
		}
	}
}

// TestHiddenMatchingDeterministic: the construction has no randomness, so
// two builds must be identical.
func TestHiddenMatchingDeterministic(t *testing.T) {
	a, b := HiddenMatchingInstance(12, 4), HiddenMatchingInstance(12, 4)
	ae, be := a.G.Edges(), b.G.Edges()
	if len(ae) != len(be) {
		t.Fatalf("edge counts differ: %d vs %d", len(ae), len(be))
	}
	for i := range ae {
		if ae[i] != be[i] {
			t.Fatalf("edge %d differs: %v vs %v", i, ae[i], be[i])
		}
	}
}

// TestGnpUnboundedWitness: the greedy witness must verify, be deterministic
// for a fixed seed, and on constant-p G(n,p) certify a β far above the O(1)
// bounds of the certified conformance families.
func TestGnpUnboundedWitness(t *testing.T) {
	inst := GnpUnboundedInstance(300, 0.3, 7)
	if err := inst.VerifyWitness(); err != nil {
		t.Fatal(err)
	}
	if inst.BetaLowerBound() < 5 {
		t.Errorf("G(300, 0.3): witness size %d suspiciously small", inst.BetaLowerBound())
	}
	again := GnpUnboundedInstance(300, 0.3, 7)
	if again.Center != inst.Center || len(again.Independent) != len(inst.Independent) {
		t.Fatal("same-seed rebuild produced a different witness")
	}
	for i := range inst.Independent {
		if inst.Independent[i] != again.Independent[i] {
			t.Fatal("same-seed rebuild produced a different witness set")
		}
	}
}

// TestVerifyWitnessRejects hand-builds broken witnesses: a non-neighbor and
// an adjacent pair must both be refused.
func TestVerifyWitnessRejects(t *testing.T) {
	inst := HiddenMatchingInstance(4, 2)
	nonNeighbor := inst
	nonNeighbor.Independent = []int32{inst.Center} // center is not its own neighbor
	if err := nonNeighbor.VerifyWitness(); err == nil {
		t.Error("non-neighbor witness accepted")
	}
	adjacent := UnboundedInstance{
		Name:        "lie",
		G:           Clique(4),
		Center:      0,
		Independent: []int32{1, 2}, // adjacent in a clique
	}
	if err := adjacent.VerifyWitness(); err == nil {
		t.Error("adjacent witness accepted")
	}
}
