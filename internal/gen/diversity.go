package gen

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/invariant"
)

// BoundedDiversity returns a graph on n vertices built as a union of cliques
// in which every vertex belongs to at most k cliques. The diversity of such
// a graph is at most k, hence its neighborhood independence number is at
// most k (each maximal clique containing v contributes at most one vertex to
// an independent set in N(v)).
//
// numCliques cliques of size cliqueSize are formed by assigning each vertex
// to k cliques chosen uniformly at random (clique sizes therefore
// concentrate around n·k/numCliques; cliqueSize fixes numCliques as
// n·k/cliqueSize). Vertex degrees are roughly k·cliqueSize, so the family is
// dense for large cliqueSize while β stays at most k — exactly the
// "possibly dense graphs with small β" regime the paper targets.
func BoundedDiversity(n, k, cliqueSize int, seed uint64) *graph.Static {
	members := diversityMembers(n, k, cliqueSize, seed)
	b := graph.NewBuilder(n)
	for _, mem := range members {
		for i := 0; i < len(mem); i++ {
			for j := i + 1; j < len(mem); j++ {
				b.AddEdge(mem[i], mem[j])
			}
		}
	}
	return b.Build()
}

// diversityMembers assigns each of n vertices to k cliques chosen uniformly
// at random among n·k/cliqueSize cliques, returning the member list of each
// clique (sorted ascending — vertices are assigned in id order). This is the
// shared randomness of BoundedDiversity and DiversityStream: both consume
// the RNG identically, so for equal parameters they describe the same graph.
func diversityMembers(n, k, cliqueSize int, seed uint64) [][]int32 {
	if k < 1 || cliqueSize < 2 {
		invariant.Violatef("gen: BoundedDiversity needs k >= 1, cliqueSize >= 2 (got %d, %d)", k, cliqueSize)
	}
	r := rng(seed)
	numCliques := n * k / cliqueSize
	if numCliques < 1 {
		numCliques = 1
	}
	members := make([][]int32, numCliques)
	for v := int32(0); v < int32(n); v++ {
		// k distinct cliques for v (k is small; rejection sampling is fine).
		chosen := make(map[int]bool, k)
		for len(chosen) < k && len(chosen) < numCliques {
			chosen[r.IntN(numCliques)] = true
		}
		cliques := make([]int, 0, len(chosen))
		for c := range chosen {
			cliques = append(cliques, c)
		}
		sort.Ints(cliques)
		for _, c := range cliques {
			members[c] = append(members[c], v)
		}
	}
	return members
}

// BoundedDiversityInstance returns a bounded-diversity instance with
// certified β ≤ k and average degree roughly avgDeg.
func BoundedDiversityInstance(n, k int, avgDeg float64, seed uint64) Instance {
	cliqueSize := int(avgDeg) / k
	if cliqueSize < 2 {
		cliqueSize = 2
	}
	return Instance{
		Name: fmt.Sprintf("diversity%d", k),
		G:    BoundedDiversity(n, k, cliqueSize, seed),
		Beta: k,
	}
}

// CliqueInstance returns K_n with its certified β = 1.
func CliqueInstance(n int) Instance {
	return Instance{Name: "clique", G: Clique(n), Beta: 1}
}

// Maker generates an instance of a family with roughly n vertices.
type Maker func(n int, seed uint64) Instance

// Families returns the named catalog of bounded-β families used throughout
// the experiments, each parameterized only by size and seed. Densities are
// chosen so the graphs are dense relative to nΔ (the sublinear regime).
func Families() map[string]Maker {
	return map[string]Maker{
		"line": func(n int, seed uint64) Instance {
			return LineGraphInstance(n, 64, seed)
		},
		"unitdisk": func(n int, seed uint64) Instance {
			return UnitDiskInstance(n, 64, seed)
		},
		"interval": func(n int, seed uint64) Instance {
			return ProperIntervalInstance(n, 64, seed)
		},
		"diversity4": func(n int, seed uint64) Instance {
			return BoundedDiversityInstance(n, 4, 64, seed)
		},
		"clique": func(n int, seed uint64) Instance {
			return CliqueInstance(n)
		},
	}
}

// FamilyNames returns the catalog keys in a fixed presentation order.
func FamilyNames() []string {
	return []string{"line", "unitdisk", "interval", "diversity4", "clique"}
}
