package gen

import (
	"testing"

	"repro/internal/graph"
)

func TestDiversityStreamMatchesMaterialized(t *testing.T) {
	cases := []struct {
		n, k, cliqueSize int
		seed             uint64
	}{
		{100, 2, 8, 1},
		{500, 4, 16, 2},
		{50, 3, 60, 3}, // cliqueSize > n/k: single-clique edge case
		{1, 1, 2, 4},
		{0, 1, 2, 5},
	}
	for _, c := range cases {
		s := NewDiversityStream(c.n, c.k, c.cliqueSize, c.seed)
		s.ChunkSize = 64 // force many chunks
		want := BoundedDiversity(c.n, c.k, c.cliqueSize, c.seed)
		got := BuildStream(s, graph.ChunkedOptions{})
		if !graph.Equal(got, want) {
			t.Fatalf("n=%d k=%d cs=%d: streamed graph differs from materialized", c.n, c.k, c.cliqueSize)
		}
		// ArcsUpperBound counts emitted arcs exactly.
		emitted := int64(0)
		s.StreamInto(func(chunk []uint64) { emitted += int64(len(chunk)) })
		if emitted != s.ArcsUpperBound() {
			t.Fatalf("n=%d k=%d: emitted %d arcs, ArcsUpperBound says %d", c.n, c.k, emitted, s.ArcsUpperBound())
		}
	}
}

func TestGnpStreamMatchesMaterialized(t *testing.T) {
	cases := []struct {
		n    int
		p    float64
		seed uint64
	}{
		{100, 0.1, 1},
		{200, 0.03, 2},
		{30, 1, 3},
		{30, 0, 4},
		{1, 0.5, 5},
		{0, 0.5, 6},
		{50, 0.9, 7},
	}
	for _, c := range cases {
		s := NewGnpStream(c.n, c.p, c.seed)
		s.ChunkSize = 32
		want := ErdosRenyi(c.n, c.p, c.seed)
		got := BuildStream(s, graph.ChunkedOptions{})
		if !graph.Equal(got, want) {
			t.Fatalf("n=%d p=%v: streamed graph differs from materialized", c.n, c.p)
		}
	}
}

func TestStreamReinvokable(t *testing.T) {
	// Two invocations of the same streamer must emit identical sequences —
	// the contract graph.FromStream's two passes rely on.
	streams := []EdgeStreamer{
		NewDiversityStream(300, 4, 16, 42),
		NewGnpStream(300, 0.05, 42),
	}
	for _, s := range streams {
		collect := func() []uint64 {
			var all []uint64
			s.StreamInto(func(chunk []uint64) { all = append(all, chunk...) })
			return all
		}
		a, b := collect(), collect()
		if len(a) != len(b) {
			t.Fatalf("%T: invocations emitted %d vs %d arcs", s, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%T: arc %d differs between invocations", s, i)
			}
		}
	}
}

func TestGnpStreamRejectsBadP(t *testing.T) {
	for _, p := range []float64{-0.1, 1.1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("p=%v accepted", p)
				}
			}()
			NewGnpStream(10, p, 1)
		}()
	}
}
