package gen

import (
	"math"

	"repro/internal/graph"
	"repro/internal/invariant"
)

// QuasiUnitDisk returns a quasi-unit-disk graph (Kuhn–Wattenhofer–Zollinger,
// cited by the paper as a bounded-growth family): n uniform points in the
// unit square where points within rInner are always adjacent, points beyond
// rOuter never are, and pairs in between are adjacent independently with
// probability 0.5 — modeling irregular radio ranges.
//
// Its neighborhood independence number is at most QuasiUnitDiskBetaBound
// (a packing argument): an independent set in N(v) consists of points
// within rOuter of v that are pairwise more than rInner apart, so disks of
// radius rInner/2 around them are disjoint and fit inside a disk of radius
// rOuter + rInner/2 around v.
func QuasiUnitDisk(n int, rInner, rOuter float64, seed uint64) *graph.Static {
	if rInner <= 0 || rOuter < rInner {
		invariant.Violatef("gen: need 0 < rInner <= rOuter, got %v, %v", rInner, rOuter)
	}
	r := rng(seed)
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{r.Float64(), r.Float64()}
	}
	b := graph.NewBuilder(n)
	cellSize := rOuter
	cells := int(1/cellSize) + 1
	grid := make(map[[2]int][]int32)
	cellOf := func(p Point) [2]int {
		cx, cy := int(p.X/cellSize), int(p.Y/cellSize)
		if cx >= cells {
			cx = cells - 1
		}
		if cy >= cells {
			cy = cells - 1
		}
		return [2]int{cx, cy}
	}
	for i, p := range pts {
		grid[cellOf(p)] = append(grid[cellOf(p)], int32(i))
	}
	in2, out2 := rInner*rInner, rOuter*rOuter
	for i, p := range pts {
		c := cellOf(p)
		for dx := -1; dx <= 1; dx++ {
			for dy := -1; dy <= 1; dy++ {
				for _, j := range grid[[2]int{c[0] + dx, c[1] + dy}] {
					if j <= int32(i) {
						continue
					}
					q := pts[j]
					ddx, ddy := p.X-q.X, p.Y-q.Y
					d2 := ddx*ddx + ddy*ddy
					switch {
					case d2 <= in2:
						b.AddEdge(int32(i), j)
					case d2 <= out2 && r.IntN(2) == 0:
						b.AddEdge(int32(i), j)
					}
				}
			}
		}
	}
	return b.Build()
}

// QuasiUnitDiskBetaBound returns the certified neighborhood-independence
// bound ⌈(2α+1)²⌉ for ratio α = rOuter/rInner (disk-packing argument).
func QuasiUnitDiskBetaBound(rInner, rOuter float64) int {
	alpha := rOuter / rInner
	return int(math.Ceil((2*alpha + 1) * (2*alpha + 1)))
}

// QuasiUnitDiskInstance returns a quasi-unit-disk instance with expected
// degree roughly avgDeg at range ratio α = 1.5 and its certified β.
func QuasiUnitDiskInstance(n int, avgDeg float64, seed uint64) Instance {
	// Expected neighbors ≈ n·π·(rIn² + (rOut²−rIn²)/2); with rOut = 1.5·rIn
	// that is n·π·rIn²·1.625.
	rIn := math.Sqrt(avgDeg / (float64(n) * math.Pi * 1.625))
	rOut := 1.5 * rIn
	return Instance{
		Name: "quasidisk",
		G:    QuasiUnitDisk(n, rIn, rOut, seed),
		Beta: QuasiUnitDiskBetaBound(rIn, rOut),
	}
}
