package dyndist

import (
	"math/rand/v2"
	"testing"

	"repro/internal/gen"
	"repro/internal/matching"
)

// TestCrashRestartRecoversValidState pins the tentpole acceptance
// criterion: a crash-restarted node recovers with O(Δ) messages — asserted
// against the accounted Stats counters, not a side channel — and
// Validate() passes after every recovery. The graph is near-regular with
// degree 4Δ so the reservoir (not the mark-all regime) is exercised and
// the expected re-announcement in-degree is 2Δ.
func TestCrashRestartRecoversValidState(t *testing.T) {
	const n, d, delta = 240, 16, 4
	nw := NewNetwork(n, delta, 17)
	g := gen.RandomRegularish(n, d, 23)
	g.ForEachEdge(func(u, v int32) { nw.Insert(u, v) })
	if err := nw.Validate(); err != nil {
		t.Fatal(err)
	}

	// Per-recovery worst case: ≤ 2Δ retractions + 2Δ fresh marks + deg
	// re-announcements + two rematch scans over incident sparsifier edges
	// (own 2Δ + in-degree ≤ deg, plus an accept each).
	bound := int64(4*delta + 2*d + 2*(2*delta+d+1))

	rng := rand.New(rand.NewPCG(3, 3))
	var total int64
	crashes := 0
	for i := 0; i < 25; i++ {
		v := int32(rng.IntN(n))
		if i%5 == 0 {
			// Prefer a matched node: the widowed-partner path must run too.
			for w := int32(0); w < int32(n); w++ {
				if nw.mate[w] >= 0 {
					v = w
					break
				}
			}
		}
		msgs := nw.CrashRestart(v)
		total += msgs
		crashes++
		if msgs > bound {
			t.Fatalf("crash %d (node %d): recovery cost %d messages, want ≤ O(Δ) = %d", i, v, msgs, bound)
		}
		if err := nw.Validate(); err != nil {
			t.Fatalf("crash %d (node %d): invalid state after recovery: %v", i, v, err)
		}
	}

	st := nw.Stats()
	if st.Recoveries != int64(crashes) {
		t.Errorf("Stats.Recoveries = %d, want %d", st.Recoveries, crashes)
	}
	if st.RecoveryMsgs != total {
		t.Errorf("Stats.RecoveryMsgs = %d, sum of returns = %d", st.RecoveryMsgs, total)
	}
	if st.MaxMsgsRecovery > bound || st.MaxMsgsRecovery <= 0 {
		t.Errorf("Stats.MaxMsgsRecovery = %d, want in (0, %d]", st.MaxMsgsRecovery, bound)
	}
	// Recoveries are accounted on their own channel, not as updates.
	if st.Updates != int64(g.M()) {
		t.Errorf("recoveries leaked into Updates: %d, want %d", st.Updates, g.M())
	}
}

// TestCrashRestartThenChurn checks that a recovered network is a
// first-class citizen: further updates (including re-crashing the same
// node) keep every invariant and the exported matching verifies against
// the live topology.
func TestCrashRestartThenChurn(t *testing.T) {
	const n, delta = 60, 3
	nw := NewNetwork(n, delta, 29)
	rng := rand.New(rand.NewPCG(7, 7))
	for i := 0; i < 2500; i++ {
		u, v := int32(rng.IntN(n)), int32(rng.IntN(n))
		if u == v {
			continue
		}
		switch {
		case i%97 == 0:
			nw.CrashRestart(u)
		case rng.IntN(3) > 0:
			nw.Insert(u, v)
		default:
			nw.Delete(u, v)
		}
		if i%250 == 0 {
			if err := nw.Validate(); err != nil {
				t.Fatalf("update %d: %v", i, err)
			}
		}
	}
	if err := nw.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := matching.Verify(nw.Graph().Snapshot(), nw.Matching()); err != nil {
		t.Fatal(err)
	}
	if nw.Stats().Recoveries == 0 {
		t.Error("churn schedule never crashed a node")
	}
}

// TestCrashRestartIsolatedNode is the degenerate case: recovering a node
// with no incident edges exchanges no messages and changes nothing.
func TestCrashRestartIsolatedNode(t *testing.T) {
	nw := NewNetwork(5, 2, 1)
	nw.Insert(0, 1)
	if msgs := nw.CrashRestart(4); msgs != 0 {
		t.Errorf("isolated recovery cost %d messages, want 0", msgs)
	}
	if err := nw.Validate(); err != nil {
		t.Fatal(err)
	}
	if nw.Size() != 1 {
		t.Errorf("isolated recovery disturbed the matching: size %d", nw.Size())
	}
}
