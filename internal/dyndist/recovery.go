package dyndist

// Crash recovery. The fault model is fail-stop with perfect link-layer
// failure detection: when processor v crashes it loses its ENTIRE local
// state (marks, incident-sparsifier view, mate pointer), and every
// neighbor observes the link reset. Recovery exchanges messages only over
// v's incident edges and costs O(Δ) messages in expectation:
//
//   - v's stale marks are retracted. The link reset already tells each
//     neighbor to forget v's marks, but we still account one message per
//     stale mark (≤ 2Δ) — a conservative upper bound that also covers
//     protocols without free link-layer retraction.
//   - v draws a FRESH uniform min(2Δ, deg) reservoir and announces each
//     mark (≤ 2Δ messages). A fresh uniform draw restores the reservoir
//     distribution invariant exactly — no repair history is needed.
//   - Each neighbor whose own mark set references v re-announces that mark
//     on link recovery, rebuilding v's incident-sparsifier view. On graphs
//     where every degree is ≥ the 2Δ mark-all threshold this in-degree is
//     2Δ in expectation (each neighbor of degree d marks v with probability
//     2Δ/d); in the mark-all regime it is bounded by deg(v).
//   - v (and the partner its crash widowed) rematch over their incident
//     sparsifier edges: O(Δ) proposal messages each, in expectation.

// CrashRestart simulates a fail-stop crash of processor v followed by a
// restart with full state loss, then runs the recovery protocol above. It
// returns the number of messages the recovery cost; the same quantity is
// accumulated in Stats.RecoveryMsgs (recoveries are accounted separately
// from regular updates). After CrashRestart returns, Validate() holds
// again: the reservoir is a fresh uniform subset, mark counts and the
// sparsifier agree, and the matching is maximal on the sparsifier.
func (nw *Network) CrashRestart(v int32) int64 {
	msgs := int64(0)
	// The crash dissolves v's matching edge. The widowed partner rematches
	// after v's neighborhood state is rebuilt (it may well re-match v).
	partner := int32(-1)
	if w := nw.mate[v]; w >= 0 {
		partner = w
		nw.unmatch(v, w)
	}
	// Retract v's stale marks. mate[v] is already -1, so no drop can
	// dissolve a matched edge here: this is exactly one message per mark.
	for len(nw.marks[v]) > 0 {
		msgs += nw.dropMarkAt(v, len(nw.marks[v])-1)
	}
	// Fresh uniform reservoir, one announcement per mark. addMark extends
	// the matching opportunistically, just as in the static construction.
	d := nw.g.Degree(v)
	capN := 2 * nw.delta
	if d <= capN {
		for _, w := range nw.g.Neighbors(v) {
			nw.addMark(v, w)
			msgs++
		}
	} else {
		// Partial Fisher–Yates: a uniform 2Δ-subset of the neighbors.
		idx := make([]int, d)
		for i := range idx {
			idx[i] = i
		}
		for t := 0; t < capN; t++ {
			i := t + nw.rng.IntN(d-t)
			idx[t], idx[i] = idx[i], idx[t]
			nw.addMark(v, nw.g.Neighbor(v, idx[t]))
			msgs++
		}
	}
	// Neighbors holding a mark on v re-announce it so v relearns its
	// incident sparsifier edges. The central structures already carry these
	// marks (the neighbors never lost them); only the message is accounted.
	for _, w := range nw.sp.Neighbors(v) {
		if nw.markedBy(w, v) {
			msgs++
		}
	}
	// Matching repair for v and the widowed partner.
	msgs += nw.rematch(v)
	if partner >= 0 {
		msgs += nw.rematch(partner)
	}
	nw.stats.Recoveries++
	nw.stats.RecoveryMsgs += msgs
	if msgs > nw.stats.MaxMsgsRecovery {
		nw.stats.MaxMsgsRecovery = msgs
	}
	return msgs
}
