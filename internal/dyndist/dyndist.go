// Package dyndist implements the dynamic distributed instantiation of the
// sparsifier: Section 3 of the paper lists "the dynamic distributed model
// (where some graph structure has to be maintained in a dynamically
// changing distributed network using low local memory at processors)"
// among the models the local construction fits.
//
// Each processor stores only its Δ marks and its matching state — O(Δ)
// words instead of its full (possibly Θ(n)) adjacency list. On every edge
// update the two affected endpoints repair their reservoirs with O(1)
// expected mark changes (reservoir-style swap-in on insertion, uniform
// replacement on deletion, so each vertex's mark set remains a uniform
// Δ-subset of its incident edges), and repair the maximal matching on the
// sparsifier with O(Δ) messages. All repairs are purely local: a node only
// ever communicates over its incident edges, and the per-update message
// count is independent of n and of the graph's density.
package dyndist

import (
	"fmt"
	"math/rand/v2"

	"repro/internal/arcs"
	"repro/internal/graph"
	"repro/internal/invariant"
	"repro/internal/matching"
	"repro/internal/params"
)

// Stats aggregates the cost profile of a dynamic distributed run.
type Stats struct {
	Updates         int64
	Messages        int64 // total messages (each mark change / proposal / reply)
	MaxMsgsUpdate   int64 // worst-case messages caused by one update
	MaxLocalWords   int64 // largest per-node memory (marks + matching state)
	Recoveries      int64 // crash-restart recoveries performed
	RecoveryMsgs    int64 // total messages spent on recoveries
	MaxMsgsRecovery int64 // worst-case messages for one recovery
}

// Network maintains the sparsifier G_Δ and a maximal matching on it in a
// dynamically changing network, with per-node memory O(Δ).
type Network struct {
	g     *graph.Dynamic
	sp    *graph.Dynamic  // union of marks (each node knows its incident part)
	marks [][]int32       // marks[v]: neighbors marked due to v (≤ max(Δ, 2Δ))
	count map[uint64]int8 // endpoints marking each packed arc
	mate  []int32
	size  int
	delta int
	rng   *rand.Rand
	stats Stats
}

// NewNetwork creates an empty dynamic distributed network on n processors
// with per-vertex mark capacity delta.
func NewNetwork(n, delta int, seed uint64) *Network {
	if n < 0 || delta < 1 {
		invariant.Violatef("dyndist: bad parameters n=%d delta=%d", n, delta)
	}
	nw := &Network{
		g:     graph.NewDynamic(n),
		sp:    graph.NewDynamic(n),
		marks: make([][]int32, n),
		count: make(map[uint64]int8),
		mate:  make([]int32, n),
		delta: delta,
		rng:   rand.New(rand.NewPCG(seed, 0xdd157)),
	}
	for i := range nw.mate {
		nw.mate[i] = -1
	}
	return nw
}

// NewNetworkFor creates a dynamic distributed network with the mark
// capacity Δ resolved from (β, ε) through internal/params (Theorem 2.1).
func NewNetworkFor(n, beta int, eps float64, seed uint64) *Network {
	return NewNetwork(n, params.Delta(beta, eps), seed)
}

// Matching returns a copy of the maintained matching.
func (nw *Network) Matching() *matching.Matching {
	m := matching.NewMatching(nw.g.N())
	for v := int32(0); v < int32(nw.g.N()); v++ {
		if w := nw.mate[v]; w > v {
			m.Match(v, w)
		}
	}
	return m
}

// Size returns the matching size.
func (nw *Network) Size() int { return nw.size }

// Graph exposes the dynamic topology.
func (nw *Network) Graph() *graph.Dynamic { return nw.g }

// SparsifierEdges returns the maintained sparsifier size.
func (nw *Network) SparsifierEdges() int { return nw.sp.M() }

// Sparsifier returns an immutable snapshot of the maintained sparsifier
// G_Δ. This is the conformance hook of internal/testkit: the snapshot is
// checked against the Observation 2.10 size bound, the Observation 2.12
// arboricity bound, and the Theorem 2.1 matching-preservation ratio.
func (nw *Network) Sparsifier() *graph.Static { return nw.sp.Snapshot() }

// Stats returns the accumulated cost counters.
func (nw *Network) Stats() Stats { return nw.stats }

// Insert adds edge {u, v}: both endpoints update their reservoirs
// (swap-in with probability keeping uniformity) and try to extend the
// matching if the new edge entered the sparsifier with both ends free.
func (nw *Network) Insert(u, v int32) bool {
	if !nw.g.Insert(u, v) {
		nw.account(0)
		return false
	}
	msgs := nw.reservoirInsert(u, v)
	msgs += nw.reservoirInsert(v, u)
	if nw.sp.HasEdge(u, v) && nw.mate[u] < 0 && nw.mate[v] < 0 {
		nw.match(u, v)
		msgs += 2 // proposal + accept
	}
	nw.account(msgs)
	return true
}

// Delete removes edge {u, v}: marks referencing it are replaced, and if the
// edge was matched both endpoints locally rematch over their incident
// sparsifier edges.
func (nw *Network) Delete(u, v int32) bool {
	if !nw.g.Delete(u, v) {
		nw.account(0)
		return false
	}
	msgs := int64(0)
	wasMatched := nw.mate[u] == v
	if wasMatched {
		nw.unmatch(u, v)
	}
	msgs += nw.reservoirDelete(u, v)
	msgs += nw.reservoirDelete(v, u)
	if wasMatched {
		msgs += nw.rematch(u)
		msgs += nw.rematch(v)
	}
	nw.account(msgs)
	return true
}

// reservoirInsert performs x's reservoir update for the new edge {x, o}:
// keep the reservoir a uniform min(Δ', deg)-subset by swapping the new edge
// in with probability Δ'/deg (Δ' = 2Δ when the degree exceeds the mark-all
// threshold, otherwise everything is kept).
func (nw *Network) reservoirInsert(x, o int32) int64 {
	d := nw.g.Degree(x)
	capN := 2 * nw.delta
	if d <= capN {
		nw.addMark(x, o)
		return 1
	}
	if len(nw.marks[x]) > capN {
		// The degree just crossed the threshold; shrink the mark-all set
		// back to a uniform 2Δ-subset.
		msgs := int64(0)
		for len(nw.marks[x]) > capN {
			i := nw.rng.IntN(len(nw.marks[x]))
			msgs += nw.dropMarkAt(x, i)
		}
		return msgs
	}
	if nw.rng.IntN(d) < capN {
		// Swap in: evict a uniform resident, admit the newcomer.
		msgs := int64(1)
		if len(nw.marks[x]) >= capN {
			msgs += nw.dropMarkAt(x, nw.rng.IntN(len(nw.marks[x])))
		}
		nw.addMark(x, o)
		return msgs
	}
	return 0
}

// reservoirDelete repairs x's reservoir after losing the edge {x, o}: if
// the edge was marked, a uniform replacement is drawn from the unmarked
// remaining neighbors, keeping the subset uniform.
func (nw *Network) reservoirDelete(x, o int32) int64 {
	idx := -1
	for i, w := range nw.marks[x] {
		if w == o {
			idx = i
			break
		}
	}
	if idx < 0 {
		return 0
	}
	msgs := nw.dropMarkAt(x, idx)
	d := nw.g.Degree(x)
	if d <= 2*nw.delta {
		// Mark-all regime: re-mark any unmarked neighbors (at most a few).
		marked := make(map[int32]bool, len(nw.marks[x]))
		for _, w := range nw.marks[x] {
			marked[w] = true
		}
		for _, w := range nw.g.Neighbors(x) {
			if !marked[w] {
				nw.addMark(x, w)
				msgs++
			}
		}
		return msgs
	}
	// Draw a uniform unmarked replacement (expected O(1) tries since at
	// most half the neighbors are marked).
	for tries := 0; tries < 8*nw.delta; tries++ {
		w := nw.g.Neighbor(x, nw.rng.IntN(d))
		if !nw.markedBy(x, w) {
			nw.addMark(x, w)
			msgs++
			break
		}
	}
	return msgs
}

// rematch lets a freed vertex propose along its incident sparsifier edges
// until it finds a free partner; each probe is one message.
func (nw *Network) rematch(x int32) int64 {
	if nw.mate[x] >= 0 {
		return 0
	}
	msgs := int64(0)
	for _, w := range nw.sp.Neighbors(x) {
		msgs++
		if nw.mate[w] < 0 {
			nw.match(x, w)
			msgs++ // accept
			break
		}
	}
	return msgs
}

func (nw *Network) markedBy(x, w int32) bool {
	for _, m := range nw.marks[x] {
		if m == w {
			return true
		}
	}
	return false
}

func (nw *Network) addMark(x, w int32) {
	nw.marks[x] = append(nw.marks[x], w)
	nw.count[arcs.Pack(x, w)]++
	if nw.sp.Insert(x, w) {
		// New sparsifier edge: opportunistically extend the matching.
		if nw.mate[x] < 0 && nw.mate[w] < 0 {
			nw.match(x, w)
		}
	}
}

// dropMarkAt removes x's i-th mark; if the edge leaves the sparsifier and
// was matched, the endpoints do NOT keep it (matching ⊆ sparsifier is the
// maintained structure invariant) and rematch locally.
func (nw *Network) dropMarkAt(x int32, i int) int64 {
	w := nw.marks[x][i]
	last := len(nw.marks[x]) - 1
	nw.marks[x][i] = nw.marks[x][last]
	nw.marks[x] = nw.marks[x][:last]
	k := arcs.Pack(x, w)
	msgs := int64(1)
	if c := nw.count[k]; c <= 1 {
		delete(nw.count, k)
		nw.sp.Delete(x, w)
		if nw.mate[x] == w {
			nw.unmatch(x, w)
			msgs += nw.rematch(x)
			msgs += nw.rematch(w)
		}
	} else {
		nw.count[k] = c - 1
	}
	return msgs
}

func (nw *Network) match(u, v int32) {
	nw.mate[u], nw.mate[v] = v, u
	nw.size++
}

func (nw *Network) unmatch(u, v int32) {
	nw.mate[u], nw.mate[v] = -1, -1
	nw.size--
}

func (nw *Network) account(msgs int64) {
	nw.stats.Updates++
	nw.stats.Messages += msgs
	if msgs > nw.stats.MaxMsgsUpdate {
		nw.stats.MaxMsgsUpdate = msgs
	}
	// Local memory: marks + received marks (incident sparsifier degree) +
	// matching state. Track the maximum over the touched nodes cheaply by
	// scanning lazily at query time instead; see MaxLocalWords.
}

// MaxLocalWords returns the current largest per-node memory footprint in
// words: own marks, incident sparsifier edges, and the mate pointer. A
// naive processor would instead store its full adjacency (its degree).
func (nw *Network) MaxLocalWords() int64 {
	maxW := int64(0)
	for v := int32(0); v < int32(nw.g.N()); v++ {
		w := int64(len(nw.marks[v])) + int64(nw.sp.Degree(v)) + 1
		if w > maxW {
			maxW = w
		}
	}
	return maxW
}

// Validate checks the structure invariants: marks ⊆ live edges, sparsifier
// consistency with mark counts, matching ⊆ sparsifier, involution, and
// maximality on the sparsifier. For tests.
func (nw *Network) Validate() error {
	want := make(map[uint64]int)
	for v := int32(0); v < int32(nw.g.N()); v++ {
		for _, w := range nw.marks[v] {
			if !nw.g.HasEdge(v, w) {
				return fmt.Errorf("dyndist: mark (%d,%d) not a live edge", v, w)
			}
			want[arcs.Pack(v, w)]++
		}
	}
	if len(want) != nw.sp.M() {
		return fmt.Errorf("dyndist: %d marked edges but sparsifier has %d", len(want), nw.sp.M())
	}
	for k, c := range want {
		if int(nw.count[k]) != c {
			u, v := arcs.Unpack(k)
			return fmt.Errorf("dyndist: count[(%d,%d)] = %d, marks say %d", u, v, nw.count[k], c)
		}
	}
	matched := 0
	for v := int32(0); v < int32(nw.g.N()); v++ {
		w := nw.mate[v]
		if w < 0 {
			continue
		}
		if nw.mate[w] != v {
			return fmt.Errorf("dyndist: mate relation broken at (%d,%d)", v, w)
		}
		if !nw.sp.HasEdge(v, w) {
			return fmt.Errorf("dyndist: matched pair (%d,%d) not in sparsifier", v, w)
		}
		if v < w {
			matched++
		}
	}
	if matched != nw.size {
		return fmt.Errorf("dyndist: size %d but %d pairs", nw.size, matched)
	}
	ok := true
	nw.sp.ForEachEdge(func(u, v int32) {
		if nw.mate[u] < 0 && nw.mate[v] < 0 {
			ok = false
		}
	})
	if !ok {
		return fmt.Errorf("dyndist: matching not maximal on the sparsifier")
	}
	return nil
}
