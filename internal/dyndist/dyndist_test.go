package dyndist

import (
	"math/rand/v2"
	"testing"

	"repro/internal/gen"
	"repro/internal/matching"
)

func TestNewNetworkValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { NewNetwork(-1, 2, 1) },
		func() { NewNetwork(5, 0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad params did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestInsertDeleteBasics(t *testing.T) {
	nw := NewNetwork(4, 2, 1)
	if !nw.Insert(0, 1) || nw.Insert(0, 1) {
		t.Error("Insert semantics wrong")
	}
	if nw.Size() != 1 {
		t.Errorf("size %d after matching-eligible insert, want 1", nw.Size())
	}
	if !nw.Delete(0, 1) || nw.Delete(0, 1) {
		t.Error("Delete semantics wrong")
	}
	if nw.Size() != 0 || nw.SparsifierEdges() != 0 {
		t.Error("state not cleaned after delete")
	}
	if err := nw.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestInvariantsUnderRandomChurn(t *testing.T) {
	nw := NewNetwork(30, 3, 5)
	rng := rand.New(rand.NewPCG(2, 2))
	for i := 0; i < 4000; i++ {
		u, v := int32(rng.IntN(30)), int32(rng.IntN(30))
		if u == v {
			continue
		}
		if rng.IntN(3) > 0 {
			nw.Insert(u, v)
		} else {
			nw.Delete(u, v)
		}
		if i%200 == 0 {
			if err := nw.Validate(); err != nil {
				t.Fatalf("update %d: %v", i, err)
			}
		}
	}
	if err := nw.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := matching.Verify(nw.Graph().Snapshot(), nw.Matching()); err != nil {
		t.Fatal(err)
	}
}

func TestLocalMemoryBounded(t *testing.T) {
	// Dense graph: a naive node stores its degree ≈ n words; ours stays at
	// O(Δ) own marks + O(Δ) received marks.
	const n, delta = 300, 4
	nw := NewNetwork(n, delta, 7)
	g := gen.Clique(n)
	g.ForEachEdge(func(u, v int32) { nw.Insert(u, v) })
	if err := nw.Validate(); err != nil {
		t.Fatal(err)
	}
	maxWords := nw.MaxLocalWords()
	// Own marks ≤ 2Δ; incident sparsifier degree concentrates around 2·2Δ.
	if maxWords > int64(12*delta)+8 {
		t.Errorf("max local memory %d words, want O(Δ) = %d-ish", maxWords, 4*delta)
	}
	if maxWords >= int64(n)/4 {
		t.Errorf("local memory %d not far below the naive degree %d", maxWords, n-1)
	}
}

func TestMessagesPerUpdateBounded(t *testing.T) {
	const n, delta = 200, 3
	nw := NewNetwork(n, delta, 9)
	g := gen.BoundedDiversity(n, 2, 48, 3)
	g.ForEachEdge(func(u, v int32) { nw.Insert(u, v) })
	edges := g.Edges()
	rng := rand.New(rand.NewPCG(4, 4))
	for i := 0; i < 3000; i++ {
		e := edges[rng.IntN(len(edges))]
		nw.Delete(e.U, e.V)
		nw.Insert(e.U, e.V)
	}
	st := nw.Stats()
	// Worst case per update: O(Δ) mark churn each with O(Δ)-probe rematch.
	bound := int64(16*delta*delta) + 16
	if st.MaxMsgsUpdate > bound {
		t.Errorf("worst-case %d messages per update, want ≤ O(Δ²) = %d", st.MaxMsgsUpdate, bound)
	}
	if st.Messages <= 0 || st.Updates <= 0 {
		t.Error("stats not recorded")
	}
}

func TestQualityOnDenseGraph(t *testing.T) {
	// Maximal on the sparsifier ⇒ roughly within 2(1+ε) of the true MCM;
	// on cliques the matching should be near-perfect.
	const n = 201
	nw := NewNetwork(n, 4, 11)
	g := gen.Clique(n)
	g.ForEachEdge(func(u, v int32) { nw.Insert(u, v) })
	exact := n / 2
	if float64(nw.Size()) < 0.45*float64(exact) {
		t.Errorf("maintained %d of %d (below the maximal-matching bound)", nw.Size(), exact)
	}
	if err := nw.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMatchingSurvivesMassDeletion(t *testing.T) {
	nw := NewNetwork(40, 3, 13)
	g := gen.Clique(40)
	g.ForEachEdge(func(u, v int32) { nw.Insert(u, v) })
	// Delete every edge; everything must unwind cleanly.
	g.ForEachEdge(func(u, v int32) { nw.Delete(u, v) })
	if nw.Size() != 0 || nw.SparsifierEdges() != 0 || nw.Graph().M() != 0 {
		t.Errorf("residual state: size=%d sp=%d m=%d", nw.Size(), nw.SparsifierEdges(), nw.Graph().M())
	}
	if err := nw.Validate(); err != nil {
		t.Fatal(err)
	}
}
