package dyndist_test

// Adoption of the internal/testkit conformance harness: the dynamic
// distributed network's maintained sparsifier (via the Sparsifier snapshot
// hook) must satisfy the checkers after an insertion replay, and the full
// structural invariant must survive a deletion phase.

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/params"
	"repro/internal/testkit"
)

func TestDynDistConformanceWithDeletions(t *testing.T) {
	const eps = 0.3
	inst := testkit.Certify(gen.BoundedDiversityInstance(100, 4, 48, 29))
	delta := params.Delta(inst.Beta, eps)
	nw := testkit.ReplayDynDist(inst.G, delta, 31)
	if err := nw.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := testkit.CheckSparsifierConformance(inst, nw.Sparsifier(), 2*delta); err != nil {
		t.Error(err)
	}

	// Delete every other edge; the invariant and subgraph containment must
	// hold against the surviving graph at every point the checkers look.
	i := 0
	inst.G.ForEachEdge(func(u, v int32) {
		if i%2 == 0 {
			if !nw.Delete(u, v) {
				t.Fatalf("Delete(%d,%d) claims edge absent", u, v)
			}
		}
		i++
	})
	if err := nw.Validate(); err != nil {
		t.Fatalf("after deletions: %v", err)
	}
	remaining := nw.Graph().Snapshot()
	if err := testkit.CheckSubgraph(remaining, nw.Sparsifier()); err != nil {
		t.Errorf("after deletions: %v", err)
	}
	if err := testkit.CheckMatchingValid(remaining, nw.Matching()); err != nil {
		t.Errorf("after deletions: %v", err)
	}
}
