package dynmatch

import (
	"math/rand/v2"

	"repro/internal/graph"
	"repro/internal/matching"
)

// Updater is the common interface of the dynamic matchers, used by the
// adversary drivers.
type Updater interface {
	Insert(u, v int32) bool
	Delete(u, v int32) bool
	Matching() *matching.Matching
	Graph() *graph.Dynamic
}

// Update is one step of an update sequence.
type Update struct {
	Insert bool
	U, V   int32
}

// Apply replays an update on an Updater.
func (u Update) Apply(m Updater) {
	if u.Insert {
		m.Insert(u.U, u.V)
	} else {
		m.Delete(u.U, u.V)
	}
}

// BuildUpdates returns the insertion sequence loading all edges of g in a
// deterministic shuffled order.
func BuildUpdates(g *graph.Static, seed uint64) []Update {
	edges := g.Edges()
	rng := rand.New(rand.NewPCG(seed, 0xadd))
	rng.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
	ups := make([]Update, len(edges))
	for i, e := range edges {
		ups[i] = Update{Insert: true, U: e.U, V: e.V}
	}
	return ups
}

// ObliviousChurn generates steps cycles of delete-then-reinsert of random
// edges of g, fixed in advance (independent of the algorithm's behaviour —
// the oblivious-adversary model).
func ObliviousChurn(g *graph.Static, steps int, seed uint64) []Update {
	edges := g.Edges()
	rng := rand.New(rand.NewPCG(seed, 0x0b11))
	ups := make([]Update, 0, 2*steps)
	for i := 0; i < steps; i++ {
		e := edges[rng.IntN(len(edges))]
		ups = append(ups, Update{Insert: false, U: e.U, V: e.V}, Update{Insert: true, U: e.U, V: e.V})
	}
	return ups
}

// AdaptiveAdversary attacks an Updater online: at every step it looks at
// the CURRENT output matching and deletes one of its edges (re-inserting it
// afterwards to preserve density). This is exactly the adaptive model of
// Theorem 3.5 — the adversary's choices depend on the algorithm's output.
// It runs steps delete+reinsert pairs and returns the minimum approximation
// quality |M|/|MCM| observed at each checkpoint (every checkEvery steps,
// using the exact blossom algorithm on a snapshot).
func AdaptiveAdversary(m Updater, steps, checkEvery int, seed uint64) float64 {
	rng := rand.New(rand.NewPCG(seed, 0xada))
	worst := 1.0
	for i := 0; i < steps; i++ {
		edges := m.Matching().Edges()
		if len(edges) == 0 {
			break
		}
		e := edges[rng.IntN(len(edges))]
		m.Delete(e.U, e.V)
		m.Insert(e.U, e.V)
		if checkEvery > 0 && (i+1)%checkEvery == 0 {
			snap := m.Graph().Snapshot()
			opt := matching.MaximumGeneral(snap).Size()
			if opt > 0 {
				q := float64(m.Matching().Size()) / float64(opt)
				if q < worst {
					worst = q
				}
			}
		}
	}
	return worst
}
