package dynmatch

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/edcs"
	"repro/internal/graph"
	"repro/internal/invariant"
	"repro/internal/matching"
)

// EDCSWindowed maintains a matching under fully dynamic updates on
// ARBITRARY graphs — no bounded neighborhood independence required — by
// running the EDCS backend (internal/edcs, Assadi–Bernstein) under the
// same Gupta–Peng stability-window discipline as Maintainer: every window
// of Θ(ε·|M|) updates the matching is recomputed from scratch on a fresh
// EDCS sparsifier of the current graph, and edges deleted mid-window leave
// the output immediately (Lemma 3.4 keeps the degradation at O(ε·|M|) per
// window). The recompute is amortized, not budget-sliced: this is the
// backend of choice for the serving path when β is large or unknown, and
// the simple one when worst-case update bounds are not needed.
//
// Determinism contract: for a fixed (n, eps, seed) the state after any
// update sequence is bit-identical across runs, and a maintainer restored
// from a checkpoint replays the remainder of a sequence bit-identically —
// every recompute is a pure function of (current graph, eps, seed, epoch).
type EDCSWindowed struct {
	g       *graph.Dynamic
	eps     float64
	seed    uint64
	epoch   uint64 // completed recomputes, salts each recompute's seed
	pending int    // updates since the last recompute
	window  int    // updates per window; 1 forces a recompute on the next update
	out     *matching.Matching
	metrics Metrics
}

// NewEDCSWindowed creates an EDCSWindowed maintainer over an initially
// empty graph on n vertices. It panics (via internal/params) on eps
// outside (0,1).
func NewEDCSWindowed(n int, eps float64, seed uint64) *EDCSWindowed {
	if !(eps > 0 && eps < 1) {
		invariant.Violatef("dynmatch: eps must be in (0,1), got %v", eps)
	}
	return &EDCSWindowed{
		g:      graph.NewDynamic(n),
		eps:    eps,
		seed:   seed,
		window: 1,
		out:    matching.NewMatching(n),
	}
}

// N returns the number of vertices.
func (mt *EDCSWindowed) N() int { return mt.g.N() }

// Graph exposes the current dynamic graph (read-only use).
func (mt *EDCSWindowed) Graph() *graph.Dynamic { return mt.g }

// Matching returns the maintained matching (live; do not mutate).
func (mt *EDCSWindowed) Matching() *matching.Matching { return mt.out }

// Size returns the current matching size.
func (mt *EDCSWindowed) Size() int { return mt.out.Size() }

// Metrics returns the accumulated cost counters (units are charged per
// scanned edge of each amortized recompute).
func (mt *EDCSWindowed) Metrics() Metrics { return mt.metrics }

// Validate checks that the output is a valid matching of the current
// graph. Conformance hook, mirroring Maintainer.Validate.
func (mt *EDCSWindowed) Validate() error {
	return matching.Verify(mt.g.Snapshot(), mt.out)
}

// Insert adds edge {u, v}; it reports whether the edge was new.
func (mt *EDCSWindowed) Insert(u, v int32) bool {
	added := mt.g.Insert(u, v)
	mt.advance()
	return added
}

// Delete removes edge {u, v}; it reports whether the edge existed. A
// deleted matched edge leaves the output matching immediately.
func (mt *EDCSWindowed) Delete(u, v int32) bool {
	existed := mt.g.Delete(u, v)
	if existed {
		mt.out.RemoveEdge(u, v)
		mt.out.RemoveEdge(v, u)
	}
	mt.advance()
	return existed
}

func (mt *EDCSWindowed) advance() {
	mt.metrics.Updates++
	mt.pending++
	if mt.pending >= mt.window {
		mt.recompute()
	}
}

// recomputeSeed derives the epoch's private randomness from the master
// seed (splitmix-style odd-constant multiply keeps epochs decorrelated).
func (mt *EDCSWindowed) recomputeSeed() uint64 {
	return mt.seed + (mt.epoch+1)*0x9e3779b97f4a7c15
}

// recompute rebuilds the EDCS sparsifier of the current graph and the
// matching on it, then opens the next window.
func (mt *EDCSWindowed) recompute() {
	snap := mt.g.Snapshot()
	s := mt.recomputeSeed()
	h := edcs.SparsifyFor(snap, mt.eps, s)
	mt.out = matching.PhaseStructuredApprox(h, mt.eps, s+1)
	spent := int64(snap.M() + h.M() + 1)
	mt.metrics.UnitsTotal += spent
	if spent > mt.metrics.MaxUnitsUpdate {
		mt.metrics.MaxUnitsUpdate = spent
	}
	mt.metrics.Recomputes++
	mt.epoch++
	mt.pending = 0
	mt.window = 1 + int(mt.eps*float64(mt.out.Size())/4)
}

// ForceRecompute rebuilds the matching immediately. Intended for tests and
// for bootstrapping a pre-loaded graph.
func (mt *EDCSWindowed) ForceRecompute() { mt.recompute() }

// edcsCheckpointMagic versions the EDCSWindowed checkpoint encoding,
// distinct from the Maintainer's "DMCK" format.
const (
	edcsCheckpointMagic   = "DMEW"
	edcsCheckpointVersion = 1
)

// MarshalBinary serializes the maintainer's complete state: graph
// adjacency in exact slot order, output matching, window cursors, metrics.
// The encoding is canonical; a maintainer restored from it replays updates
// bit-identically.
func (mt *EDCSWindowed) MarshalBinary() ([]byte, error) {
	n := mt.g.N()
	adj := make([][]int32, n)
	for v := range adj {
		adj[v] = mt.g.Neighbors(int32(v))
	}
	dst := make([]byte, 0, 64+9*n)
	dst = append(dst, edcsCheckpointMagic...)
	dst = append(dst, edcsCheckpointVersion)
	dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(mt.eps))
	dst = binary.BigEndian.AppendUint64(dst, mt.seed)
	dst = binary.BigEndian.AppendUint64(dst, mt.epoch)
	dst = binary.BigEndian.AppendUint64(dst, uint64(int64(mt.pending)))
	dst = binary.BigEndian.AppendUint64(dst, uint64(int64(mt.window)))
	dst = appendAdjacency(dst, adj)
	dst = appendMates(dst, mt.out.Mates())
	dst = binary.BigEndian.AppendUint32(dst, uint32(mt.out.Size()))
	for _, v := range []int64{mt.metrics.Updates, mt.metrics.UnitsTotal, mt.metrics.MaxUnitsUpdate, mt.metrics.MaxOverrun, mt.metrics.Recomputes} {
		dst = binary.BigEndian.AppendUint64(dst, uint64(v))
	}
	return dst, nil
}

// RestoreEDCSWindowed reconstructs an EDCSWindowed maintainer from
// MarshalBinary bytes. Errors are typed: *CheckpointFormatError or
// *CheckpointVersionError for byte-level damage, *RestoreError for
// semantic damage; never a panic.
func RestoreEDCSWindowed(b []byte) (*EDCSWindowed, error) {
	r := &ckReader{b: b}
	got := r.take(len(edcsCheckpointMagic))
	if r.err != nil {
		return nil, r.err
	}
	if string(got) != edcsCheckpointMagic {
		return nil, &CheckpointFormatError{Offset: 0, Why: fmt.Sprintf("bad magic %q, want %q", got, edcsCheckpointMagic)}
	}
	v := r.u8()
	if r.err != nil {
		return nil, r.err
	}
	if v != edcsCheckpointVersion {
		return nil, &CheckpointVersionError{Got: v}
	}
	eps := r.f64()
	seed := r.u64()
	epoch := r.u64()
	pending := r.i64()
	window := r.i64()
	adj := r.adjacency(-1)
	n := len(adj)
	mates := r.mates(n)
	size := int(r.u32())
	var metrics Metrics
	for _, dst := range []*int64{&metrics.Updates, &metrics.UnitsTotal, &metrics.MaxUnitsUpdate, &metrics.MaxOverrun, &metrics.Recomputes} {
		*dst = r.i64()
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(b) {
		return nil, &CheckpointFormatError{Offset: r.off, Why: fmt.Sprintf("%d trailing bytes", len(b)-r.off)}
	}
	if !(eps > 0 && eps < 1) {
		return nil, &RestoreError{Field: "options", Why: fmt.Sprintf("eps %v outside (0,1)", eps)}
	}
	if pending < 0 || window < 1 || pending > window || window > math.MaxInt32 {
		return nil, &RestoreError{Field: "window", Why: fmt.Sprintf("pending %d / window %d out of range", pending, window)}
	}
	g, err := graph.DynamicFromAdjacency(adj)
	if err != nil {
		return nil, &RestoreError{Field: "graph", Why: err.Error(), Err: err}
	}
	if err := validateMatching(g, mates, size, "matching"); err != nil {
		return nil, err
	}
	return &EDCSWindowed{
		g:       g,
		eps:     eps,
		seed:    seed,
		epoch:   epoch,
		pending: int(pending),
		window:  int(window),
		out:     matching.WrapMates(mates, size),
		metrics: metrics,
	}, nil
}

var _ Updater = (*EDCSWindowed)(nil)
