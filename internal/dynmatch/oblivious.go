package dynmatch

import (
	"math/rand/v2"

	"repro/internal/arcs"
	"repro/internal/graph"
	"repro/internal/matching"
)

// ObliviousMaintainer implements the simpler dynamic scheme the paper
// sketches for the OBLIVIOUS-adversary model (Section 3.3): the sparsifier
// G_Δ itself is maintained under updates — following every update touching
// u and v, the marks made "due to" u and due to v are discarded and
// replaced by Δ fresh random incident edges, at O(Δ) worst-case cost — and
// the matching is maintained by Gupta–Peng windowed recomputation running
// directly on the maintained sparsifier.
//
// Against an oblivious adversary this is correct (the proof of Theorem 2.1
// applies verbatim, since update positions are independent of the marks).
// Against an ADAPTIVE adversary the proof breaks: the output matching
// reveals marked edges, and deleting exactly those forces correlated
// remarking. The experiments use this type as the ablation contrasting with
// Maintainer, whose fresh-randomness-per-window design is adaptive-safe.
type ObliviousMaintainer struct {
	g       *graph.Dynamic
	sp      *graph.Dynamic  // the maintained sparsifier (union of marks)
	marks   [][]int32       // marks[v] = neighbors marked due to v
	count   map[uint64]int8 // endpoints marking each packed arc (1 or 2)
	opt     Options
	delta   int
	maxLen  int
	budget  int64
	out     *matching.Matching
	run     *staticRun
	bufs    *runBuffers
	rng     *rand.Rand
	metrics Metrics
}

// NewOblivious creates an ObliviousMaintainer over an empty graph.
// It panics on invalid opt.Beta or opt.Eps.
func NewOblivious(n int, opt Options, seed uint64) *ObliviousMaintainer {
	opt, maxLen := opt.resolve()
	m := &ObliviousMaintainer{
		g:      graph.NewDynamic(n),
		sp:     graph.NewDynamic(n),
		marks:  make([][]int32, n),
		count:  make(map[uint64]int8),
		opt:    opt,
		delta:  opt.Delta,
		maxLen: maxLen,
		budget: opt.MinBudget,
		out:    matching.NewMatching(n),
		rng:    rand.New(rand.NewPCG(seed, 0x0b11f)),
	}
	// The recompute run reads the maintained sparsifier; its own sampling
	// stage degenerates to "take everything" because sparsifier degrees are
	// already O(Δ).
	m.bufs = newRunBuffers(n, m.delta)
	m.run = newStaticRunBuf(m.sp, m.delta, maxLen, opt.Sweeps, m.rng, m.bufs)
	return m
}

// Matching returns the maintained matching (live; do not mutate).
func (mt *ObliviousMaintainer) Matching() *matching.Matching { return mt.out }

// Size returns the matching size.
func (mt *ObliviousMaintainer) Size() int { return mt.out.Size() }

// Graph exposes the dynamic graph.
func (mt *ObliviousMaintainer) Graph() *graph.Dynamic { return mt.g }

// SparsifierEdges returns the current sparsifier size.
func (mt *ObliviousMaintainer) SparsifierEdges() int { return mt.sp.M() }

// Metrics returns accumulated cost counters.
func (mt *ObliviousMaintainer) Metrics() Metrics { return mt.metrics }

// Budget returns the current per-update recompute budget.
func (mt *ObliviousMaintainer) Budget() int64 { return mt.budget }

// Insert adds {u, v} and re-marks both endpoints.
func (mt *ObliviousMaintainer) Insert(u, v int32) bool {
	added := mt.g.Insert(u, v)
	if added {
		mt.remark(u)
		mt.remark(v)
	}
	mt.advance()
	return added
}

// Delete removes {u, v}, evicts it from the matching and the sparsifier,
// and re-marks both endpoints.
func (mt *ObliviousMaintainer) Delete(u, v int32) bool {
	existed := mt.g.Delete(u, v)
	if existed {
		mt.out.RemoveEdge(u, v)
		mt.out.RemoveEdge(v, u)
		mt.run.removeEdge(u, v)
		mt.remark(u)
		mt.remark(v)
	}
	mt.advance()
	return existed
}

// remark discards v's marks and draws Δ fresh random incident edges
// (all of them if deg(v) ≤ 2Δ) — the O(Δ) sparsifier repair step.
func (mt *ObliviousMaintainer) remark(v int32) {
	for _, w := range mt.marks[v] {
		k := arcs.Pack(v, w)
		if c := mt.count[k]; c <= 1 {
			delete(mt.count, k)
			if mt.sp.Delete(v, w) {
				// The edge left the sparsifier entirely; it can no longer
				// support the in-progress matching.
				mt.run.removeEdge(v, w)
			}
		} else {
			mt.count[k] = c - 1
		}
	}
	mt.marks[v] = mt.marks[v][:0]
	d := mt.g.Degree(v)
	if d == 0 {
		return
	}
	addMark := func(w int32) {
		mt.count[arcs.Pack(v, w)]++
		mt.sp.Insert(v, w)
		mt.marks[v] = append(mt.marks[v], w)
	}
	if d <= 2*mt.delta {
		for _, w := range mt.g.Neighbors(v) {
			addMark(w)
		}
		return
	}
	seen := make(map[int]bool, mt.delta)
	for len(seen) < mt.delta {
		i := mt.rng.IntN(d)
		if seen[i] {
			continue
		}
		seen[i] = true
		addMark(mt.g.Neighbor(v, i))
	}
}

// advance mirrors Maintainer.advance over the maintained sparsifier.
func (mt *ObliviousMaintainer) advance() {
	mt.metrics.Updates++
	budget := mt.budget
	before := mt.run.units
	done := mt.run.step(budget)
	spent := mt.run.units - before + 2*int64(mt.delta) // charge the remark
	if done {
		mates, size := mt.run.result()
		mt.out = matching.WrapMates(mates, size)
		mt.metrics.Recomputes++
		w := 1 + int64(mt.opt.Eps*float64(size)/4)
		b := 2*mt.run.units/w + 1
		if b < mt.opt.MinBudget {
			b = mt.opt.MinBudget
		}
		mt.budget = b
		mt.run.releaseInto(mt.bufs)
		mt.run = newStaticRunBuf(mt.sp, mt.delta, mt.maxLen, mt.opt.Sweeps, mt.rng, mt.bufs)
		spent++
	}
	mt.metrics.UnitsTotal += spent
	if spent > mt.metrics.MaxUnitsUpdate {
		mt.metrics.MaxUnitsUpdate = spent
	}
	if over := spent - budget; over > mt.metrics.MaxOverrun {
		mt.metrics.MaxOverrun = over
	}
}

// ForceRecompute drives the in-progress recomputation to completion.
func (mt *ObliviousMaintainer) ForceRecompute() {
	for !mt.run.step(1 << 20) {
	}
	mates, size := mt.run.result()
	mt.out = matching.WrapMates(mates, size)
	mt.metrics.Recomputes++
	mt.run.releaseInto(mt.bufs)
	mt.run = newStaticRunBuf(mt.sp, mt.delta, mt.maxLen, mt.opt.Sweeps, mt.rng, mt.bufs)
}
