package dynmatch

import (
	"math/rand/v2"

	"repro/internal/graph"
	"repro/internal/matching"
	"repro/internal/params"
)

// Options configures a Maintainer. Zero-valued fields are resolved from
// (Beta, Eps) by internal/params (params.Dynamic.ResolveFor), the single
// source of the Theorem 3.5 defaults.
type Options struct {
	// Beta is the (assumed) neighborhood independence bound of every graph
	// in the update sequence.
	Beta int
	// Eps is the approximation target; the maintained matching is
	// (1+O(ε))-approximate w.h.p.
	Eps float64
	// Delta overrides the per-vertex sample count; zero means
	// ⌈(β/ε)·ln(24/ε)⌉ (the lean calibration of params.Delta).
	Delta int
	// Sweeps is the number of augmentation sweeps of the static pipeline;
	// zero means 3.
	Sweeps int
	// MinBudget floors the per-update work budget; zero means 4·Δ/ε².
	MinBudget int64
}

// resolve fills the zero-valued fields through internal/params and returns
// the updated options plus the derived augmenting-path length bound.
// It panics on invalid Beta or Eps.
func (o Options) resolve() (Options, int) {
	r := params.Dynamic{
		Delta:     o.Delta,
		Sweeps:    o.Sweeps,
		MinBudget: o.MinBudget,
	}.ResolveFor(o.Beta, o.Eps)
	o.Delta, o.Sweeps, o.MinBudget = r.Delta, r.Sweeps, r.MinBudget
	return o, r.MaxLen
}

// Metrics reports the cost profile of a Maintainer, in work units
// (one unit = one sampled edge / scanned entry / DFS expansion).
type Metrics struct {
	Updates        int64
	UnitsTotal     int64
	MaxUnitsUpdate int64 // worst-case units consumed by a single update
	MaxOverrun     int64 // worst-case units spent beyond that update's budget
	Recomputes     int64 // completed static recomputations (window swaps)
}

// Maintainer maintains a (1+ε)-approximate maximum matching under fully
// dynamic edge insertions and deletions. See the package comment for the
// scheme. All operations are deterministic in the per-update work budget;
// the approximation factor holds with high probability against an adaptive
// adversary.
type Maintainer struct {
	g       *graph.Dynamic
	opt     Options
	delta   int
	maxLen  int
	budget  int64
	out     *matching.Matching
	run     *staticRun
	bufs    *runBuffers
	src     *rand.PCG // retained for checkpointing (see checkpoint.go)
	rng     *rand.Rand
	metrics Metrics
}

// New creates a Maintainer over an initially empty graph on n vertices.
// It panics on invalid opt.Beta or opt.Eps.
func New(n int, opt Options, seed uint64) *Maintainer {
	opt, maxLen := opt.resolve()
	src := rand.NewPCG(seed, 0xd1ce)
	m := &Maintainer{
		g:      graph.NewDynamic(n),
		opt:    opt,
		delta:  opt.Delta,
		maxLen: maxLen,
		budget: opt.MinBudget,
		out:    matching.NewMatching(n),
		src:    src,
		rng:    rand.New(src),
	}
	m.bufs = newRunBuffers(n, m.delta)
	m.run = newStaticRunBuf(m.g, m.delta, m.maxLen, m.opt.Sweeps, m.rng, m.bufs)
	return m
}

// N returns the number of vertices.
func (mt *Maintainer) N() int { return mt.g.N() }

// Graph exposes the current dynamic graph (read-only use).
func (mt *Maintainer) Graph() *graph.Dynamic { return mt.g }

// Matching returns the maintained matching. The returned value is live; do
// not mutate it.
func (mt *Maintainer) Matching() *matching.Matching { return mt.out }

// Size returns the current matching size.
func (mt *Maintainer) Size() int { return mt.out.Size() }

// Metrics returns the accumulated cost counters.
func (mt *Maintainer) Metrics() Metrics { return mt.metrics }

// ResolvedOptions returns the options after zero-value resolution through
// internal/params — the Δ, sweep count, and budget floor the maintainer
// actually runs with. Conformance hook for internal/testkit.
func (mt *Maintainer) ResolvedOptions() Options { return mt.opt }

// Validate checks the maintainer's structural invariant: the output is a
// valid matching of the current graph (vertex-disjoint pairs over live
// edges). Conformance hook for internal/testkit and the fuzz oracles.
func (mt *Maintainer) Validate() error {
	return matching.Verify(mt.g.Snapshot(), mt.out)
}

// Budget returns the current per-update work budget (the worst-case update
// cost in units, up to the bounded overrun of a single DFS).
func (mt *Maintainer) Budget() int64 { return mt.budget }

// Insert adds edge {u, v}; it reports whether the edge was new.
func (mt *Maintainer) Insert(u, v int32) bool {
	added := mt.g.Insert(u, v)
	mt.advance()
	return added
}

// Delete removes edge {u, v}; it reports whether the edge existed.
// A deleted matched edge leaves the output matching immediately (the
// stability rule of Lemma 3.4).
func (mt *Maintainer) Delete(u, v int32) bool {
	existed := mt.g.Delete(u, v)
	if existed {
		mt.out.RemoveEdge(u, v)
		mt.out.RemoveEdge(v, u)
		mt.run.removeEdge(u, v)
	}
	mt.advance()
	return existed
}

// advance spends one update's work budget on the background recomputation,
// swapping in the fresh matching when it completes.
func (mt *Maintainer) advance() {
	mt.metrics.Updates++
	budget := mt.budget
	before := mt.run.units
	done := mt.run.step(budget)
	spent := mt.run.units - before
	if done {
		spent += mt.swap()
	}
	mt.metrics.UnitsTotal += spent
	if spent > mt.metrics.MaxUnitsUpdate {
		mt.metrics.MaxUnitsUpdate = spent
	}
	if over := spent - budget; over > mt.metrics.MaxOverrun {
		mt.metrics.MaxOverrun = over
	}
}

// swap installs the finished matching, recalibrates the window budget from
// the measured cost of the finished run, and starts the next run. It
// returns the units charged for the swap itself.
func (mt *Maintainer) swap() int64 {
	mates, size := mt.run.result()
	fresh := matching.WrapMates(mates, size)
	swapCost := int64(1)
	mt.out = fresh
	mt.metrics.Recomputes++
	// Window length w = 1 + ⌊ε·|M|/4⌋ updates; pace the next run so it
	// finishes within one window: budget ≈ 2·(measured cost)/w.
	w := 1 + int64(mt.opt.Eps*float64(fresh.Size())/4)
	b := 2*mt.run.units/w + 1
	if b < mt.opt.MinBudget {
		b = mt.opt.MinBudget
	}
	mt.budget = b
	mt.run.releaseInto(mt.bufs)
	mt.run = newStaticRunBuf(mt.g, mt.delta, mt.maxLen, mt.opt.Sweeps, mt.rng, mt.bufs)
	return swapCost
}

// ForceRecompute drives the background run to completion immediately and
// swaps the result in. Intended for tests and for bootstrapping a
// pre-loaded graph; it is the only operation whose cost is not budgeted.
func (mt *Maintainer) ForceRecompute() {
	for !mt.run.step(1 << 20) {
	}
	mt.metrics.UnitsTotal += mt.swap()
}
