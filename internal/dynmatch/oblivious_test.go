package dynmatch

import (
	"math/rand/v2"
	"testing"

	"repro/internal/arcs"
	"repro/internal/gen"
	"repro/internal/matching"
)

func TestObliviousBasics(t *testing.T) {
	mt := NewOblivious(5, Options{Beta: 2, Eps: 0.4}, 1)
	if !mt.Insert(0, 1) || mt.Insert(0, 1) {
		t.Error("Insert semantics wrong")
	}
	if mt.SparsifierEdges() == 0 {
		t.Error("sparsifier empty after insert")
	}
	if !mt.Delete(0, 1) || mt.Delete(0, 1) {
		t.Error("Delete semantics wrong")
	}
	if mt.SparsifierEdges() != 0 {
		t.Error("sparsifier not empty after deleting the only edge")
	}
}

func TestObliviousSparsifierInvariants(t *testing.T) {
	// sp ⊆ g at all times; per-vertex marks ≤ max(Δ, mark-all threshold);
	// mark bookkeeping consistent with the sparsifier edge set.
	mt := NewOblivious(25, Options{Beta: 2, Eps: 0.4, Delta: 3}, 3)
	rng := rand.New(rand.NewPCG(7, 7))
	for i := 0; i < 1500; i++ {
		u, v := int32(rng.IntN(25)), int32(rng.IntN(25))
		if u == v {
			continue
		}
		if rng.IntN(3) > 0 {
			mt.Insert(u, v)
		} else {
			mt.Delete(u, v)
		}
		mt.sp.ForEachEdge(func(a, b int32) {
			if !mt.g.HasEdge(a, b) {
				t.Fatalf("update %d: sparsifier edge (%d,%d) not in graph", i, a, b)
			}
		})
	}
	// Rebuild the expected sparsifier from the mark lists.
	want := make(map[uint64]int)
	for v := int32(0); v < 25; v++ {
		if len(mt.marks[v]) > max(mt.delta, 2*mt.delta) {
			t.Fatalf("vertex %d holds %d marks", v, len(mt.marks[v]))
		}
		for _, w := range mt.marks[v] {
			want[arcs.Pack(v, w)]++
		}
	}
	if len(want) != mt.sp.M() {
		t.Fatalf("mark lists imply %d sparsifier edges, structure has %d", len(want), mt.sp.M())
	}
	for k, c := range want {
		if int(mt.count[k]) != c {
			u, v := arcs.Unpack(k)
			t.Fatalf("edge (%d,%d) count %d, marks say %d", u, v, mt.count[k], c)
		}
	}
}

func TestObliviousMatchingValid(t *testing.T) {
	mt := NewOblivious(30, Options{Beta: 2, Eps: 0.35}, 5)
	rng := rand.New(rand.NewPCG(9, 9))
	for i := 0; i < 2000; i++ {
		u, v := int32(rng.IntN(30)), int32(rng.IntN(30))
		if u == v {
			continue
		}
		if rng.IntN(3) > 0 {
			mt.Insert(u, v)
		} else {
			mt.Delete(u, v)
		}
		if err := matching.Verify(mt.Graph().Snapshot(), mt.Matching()); err != nil {
			t.Fatalf("update %d: %v", i, err)
		}
	}
}

func TestObliviousQualityUnderObliviousChurn(t *testing.T) {
	inst := gen.BoundedDiversityInstance(150, 2, 24, 11)
	mt := NewOblivious(inst.G.N(), Options{Beta: inst.Beta, Eps: 0.3}, 13)
	for _, up := range BuildUpdates(inst.G, 1) {
		up.Apply(mt)
	}
	for _, up := range ObliviousChurn(inst.G, 1000, 2) {
		up.Apply(mt)
	}
	mt.ForceRecompute()
	opt := matching.MaximumGeneral(mt.Graph().Snapshot()).Size()
	if float64(opt) > 1.35*float64(mt.Size()) {
		t.Errorf("oblivious churn: maintained %d vs exact %d", mt.Size(), opt)
	}
}

func TestObliviousUpdateCostBounded(t *testing.T) {
	inst := gen.BoundedDiversityInstance(200, 2, 32, 17)
	mt := NewOblivious(inst.G.N(), Options{Beta: 2, Eps: 0.3}, 19)
	for _, up := range BuildUpdates(inst.G, 3) {
		up.Apply(mt)
	}
	for _, up := range ObliviousChurn(inst.G, 1000, 4) {
		up.Apply(mt)
	}
	m := mt.Metrics()
	overrunAllowance := int64(8*(mt.delta+1)*(mt.maxLen+1)) + 2*int64(mt.delta) + 3
	if m.MaxOverrun > overrunAllowance {
		t.Errorf("oblivious overrun %d exceeds allowance %d", m.MaxOverrun, overrunAllowance)
	}
	if m.Recomputes == 0 {
		t.Error("no recomputes happened")
	}
}

func TestObliviousUnderAdaptiveAdversaryStillMeasurable(t *testing.T) {
	// The ablation: the adaptive adversary is exactly what this variant's
	// analysis cannot handle. We only assert the run completes with a valid
	// matching and record the quality (experiments report the comparison).
	inst := gen.BoundedDiversityInstance(120, 2, 20, 23)
	mt := NewOblivious(inst.G.N(), Options{Beta: 2, Eps: 0.3}, 29)
	for _, up := range BuildUpdates(inst.G, 5) {
		up.Apply(mt)
	}
	mt.ForceRecompute()
	worst := AdaptiveAdversary(mt, 400, 100, 31)
	if err := matching.Verify(mt.Graph().Snapshot(), mt.Matching()); err != nil {
		t.Fatal(err)
	}
	t.Logf("oblivious maintainer quality under adaptive adversary: %.3f", worst)
}
