package dynmatch

import (
	"bytes"
	"errors"
	"slices"
	"testing"
)

func applyEDCS(mt *EDCSWindowed, trace []update) {
	for _, t := range trace {
		if t.del {
			mt.Delete(t.u, t.v)
		} else {
			mt.Insert(t.u, t.v)
		}
	}
}

// TestEDCSWindowedValidThroughout checks validity of the maintained
// matching after every update of a mixed insert/delete trace.
func TestEDCSWindowedValidThroughout(t *testing.T) {
	const n = 80
	mt := NewEDCSWindowed(n, 0.3, 4)
	for i, u := range randomTrace(n, 1500, 17) {
		if u.del {
			mt.Delete(u.u, u.v)
		} else {
			mt.Insert(u.u, u.v)
		}
		if i%97 == 0 {
			if err := mt.Validate(); err != nil {
				t.Fatalf("update %d: %v", i, err)
			}
		}
	}
	if err := mt.Validate(); err != nil {
		t.Fatal(err)
	}
	if mt.Metrics().Recomputes == 0 {
		t.Fatal("no window recompute ever ran")
	}
	if mt.Size() == 0 {
		t.Fatal("matching stayed empty on a dense trace")
	}
}

// TestEDCSWindowedDeterministic pins the bit-identical-across-runs
// contract.
func TestEDCSWindowedDeterministic(t *testing.T) {
	const n = 60
	trace := randomTrace(n, 1000, 23)
	a := NewEDCSWindowed(n, 0.25, 9)
	b := NewEDCSWindowed(n, 0.25, 9)
	applyEDCS(a, trace)
	applyEDCS(b, trace)
	if !slices.Equal(a.Matching().Mates(), b.Matching().Mates()) {
		t.Fatal("two runs with one seed diverged")
	}
	c := NewEDCSWindowed(n, 0.25, 10)
	applyEDCS(c, trace)
	if a.Metrics() != b.Metrics() {
		t.Fatal("metrics diverged across identical runs")
	}
	_ = c // a different seed may or may not differ; only determinism is pinned
}

// TestEDCSWindowedCheckpointContinuation is the Maintainer checkpoint
// contract for the EDCS backend: restore from marshaled bytes, replay the
// tail, end bit-identical to the survivor.
func TestEDCSWindowedCheckpointContinuation(t *testing.T) {
	const n = 70
	trace := randomTrace(n, 1600, 31)
	for _, cut := range []int{0, 333, 800, 1599} {
		mt := NewEDCSWindowed(n, 0.3, 6)
		applyEDCS(mt, trace[:cut])
		b, err := mt.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		applyEDCS(mt, trace[cut:])

		restored, err := RestoreEDCSWindowed(b)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		applyEDCS(restored, trace[cut:])
		if !slices.Equal(mt.Matching().Mates(), restored.Matching().Mates()) {
			t.Fatalf("cut %d: restored replay diverged", cut)
		}
		if mt.Metrics() != restored.Metrics() {
			t.Fatalf("cut %d: metrics diverged", cut)
		}
	}
}

// TestEDCSWindowedCheckpointNegativePaths mirrors the Maintainer codec's
// error-path table for the EDCS checkpoint format.
func TestEDCSWindowedCheckpointNegativePaths(t *testing.T) {
	mt := NewEDCSWindowed(40, 0.3, 3)
	applyEDCS(mt, randomTrace(40, 700, 41))
	valid, err := mt.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}

	// Every strict prefix errors with a typed error.
	for cut := 0; cut < len(valid); cut++ {
		if _, err := RestoreEDCSWindowed(valid[:cut]); err == nil {
			t.Fatalf("prefix %d/%d decoded successfully", cut, len(valid))
		}
	}

	mutate := func(f func(b []byte)) []byte {
		b := bytes.Clone(valid)
		f(b)
		return b
	}
	cases := []struct {
		name        string
		in          []byte
		wantVersion bool
	}{
		{"bad magic", mutate(func(b []byte) { b[0] = 'Z' }), false},
		{"version mismatch", mutate(func(b []byte) { b[4] = edcsCheckpointVersion + 3 }), true},
		{"trailing bytes", append(bytes.Clone(valid), 1, 2, 3), false},
		{"eps out of range", mutate(func(b []byte) {
			// eps is the f64 at offset 5; zero it.
			for i := 5; i < 13; i++ {
				b[i] = 0
			}
		}), false},
	}
	for _, tc := range cases {
		_, err := RestoreEDCSWindowed(tc.in)
		if err == nil {
			t.Errorf("%s: accepted corrupt bytes", tc.name)
			continue
		}
		var ve *CheckpointVersionError
		if got := errors.As(err, &ve); got != tc.wantVersion {
			t.Errorf("%s: version-error = %v (%v), want %v", tc.name, got, err, tc.wantVersion)
		}
	}

	// Round trip of the valid bytes stays canonical.
	restored, err := RestoreEDCSWindowed(valid)
	if err != nil {
		t.Fatal(err)
	}
	again, err := restored.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(valid, again) {
		t.Fatal("restore→marshal is not byte-identical")
	}
}
