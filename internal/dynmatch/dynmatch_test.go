package dynmatch

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/matching"
)

func defaultOpts() Options { return Options{Beta: 2, Eps: 0.3} }

func TestNewValidation(t *testing.T) {
	for _, opt := range []Options{{Beta: 0, Eps: 0.5}, {Beta: 1, Eps: 0}, {Beta: 1, Eps: 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("opts %+v did not panic", opt)
				}
			}()
			New(4, opt, 1)
		}()
	}
}

func TestInsertDeleteBasics(t *testing.T) {
	mt := New(4, defaultOpts(), 1)
	if !mt.Insert(0, 1) || mt.Insert(0, 1) {
		t.Error("Insert semantics wrong")
	}
	if mt.Delete(2, 3) {
		t.Error("Delete of absent edge returned true")
	}
	if !mt.Delete(0, 1) {
		t.Error("Delete of present edge returned false")
	}
	if mt.Graph().M() != 0 {
		t.Error("graph not empty after delete")
	}
}

func TestMatchingAlwaysValid(t *testing.T) {
	// Random update sequence; after every update the output matching must
	// consist only of live edges and be internally consistent.
	mt := New(30, defaultOpts(), 3)
	rng := rand.New(rand.NewPCG(5, 5))
	for i := 0; i < 3000; i++ {
		u, v := int32(rng.IntN(30)), int32(rng.IntN(30))
		if u == v {
			continue
		}
		if rng.IntN(3) > 0 {
			mt.Insert(u, v)
		} else {
			mt.Delete(u, v)
		}
		if err := matching.Verify(mt.Graph().Snapshot(), mt.Matching()); err != nil {
			t.Fatalf("update %d: %v", i, err)
		}
	}
	if mt.Metrics().Recomputes == 0 {
		t.Error("no recomputations happened over 3000 updates")
	}
}

func TestDeletionLeavesMatchingImmediately(t *testing.T) {
	mt := New(4, defaultOpts(), 2)
	mt.Insert(0, 1)
	mt.ForceRecompute()
	if mt.Matching().Mate(0) != 1 {
		t.Fatalf("edge not matched after recompute")
	}
	mt.Delete(0, 1)
	if mt.Matching().IsMatched(0) || mt.Matching().IsMatched(1) {
		t.Error("deleted matched edge still in output matching")
	}
}

func TestApproximationAfterLoad(t *testing.T) {
	// Load a dense bounded-β graph via updates, force a recompute, and
	// compare against the exact MCM.
	inst := gen.BoundedDiversityInstance(200, 2, 30, 7)
	mt := New(inst.G.N(), Options{Beta: inst.Beta, Eps: 0.25}, 9)
	for _, up := range BuildUpdates(inst.G, 1) {
		up.Apply(mt)
	}
	mt.ForceRecompute()
	opt := matching.MaximumGeneral(inst.G).Size()
	got := mt.Size()
	if float64(opt) > 1.3*float64(got) {
		t.Errorf("approximation too weak: maintained %d vs exact %d", got, opt)
	}
}

func TestWorstCaseBudgetRespected(t *testing.T) {
	// The per-update unit consumption must stay within budget plus the
	// bounded DFS/swap overrun — crucially, it must not scale with n or m.
	inst := gen.BoundedDiversityInstance(300, 2, 40, 11)
	opt := Options{Beta: inst.Beta, Eps: 0.3}
	mt := New(inst.G.N(), opt, 13)
	for _, up := range BuildUpdates(inst.G, 2) {
		up.Apply(mt)
	}
	churn := ObliviousChurn(inst.G, 2000, 3)
	for _, up := range churn {
		up.Apply(mt)
	}
	m := mt.Metrics()
	// An update may overrun its budget only by the last operation it
	// started: at most one capped DFS, plus the O(1) swap hand-over.
	overrunAllowance := int64(8*(mt.delta+1)*(mt.maxLen+1)) + 2
	if m.MaxOverrun > overrunAllowance {
		t.Errorf("worst-case overrun %d exceeds a single capped DFS %d",
			m.MaxOverrun, overrunAllowance)
	}
}

func TestAdaptiveAdversaryQuality(t *testing.T) {
	inst := gen.BoundedDiversityInstance(150, 2, 24, 17)
	mt := New(inst.G.N(), Options{Beta: inst.Beta, Eps: 0.25}, 19)
	for _, up := range BuildUpdates(inst.G, 4) {
		up.Apply(mt)
	}
	mt.ForceRecompute()
	worst := AdaptiveAdversary(mt, 600, 100, 23)
	// 1/(1+ε) with ε=0.25 is 0.8; allow the transient window slack.
	if worst < 0.70 {
		t.Errorf("adaptive adversary drove quality to %.3f", worst)
	}
}

func TestRepairBaselineMaximal(t *testing.T) {
	rb := NewRepairBaseline(40)
	rng := rand.New(rand.NewPCG(2, 9))
	for i := 0; i < 2000; i++ {
		u, v := int32(rng.IntN(40)), int32(rng.IntN(40))
		if u == v {
			continue
		}
		if rng.IntN(3) > 0 {
			rb.Insert(u, v)
		} else {
			rb.Delete(u, v)
		}
	}
	snap := rb.Graph().Snapshot()
	if err := matching.Verify(snap, rb.Matching()); err != nil {
		t.Fatal(err)
	}
	if !matching.IsMaximal(snap, rb.Matching()) {
		t.Error("repair baseline lost maximality")
	}
}

func TestRepairBaselineCostGrowsWithDensity(t *testing.T) {
	// On a clique, deleting a matched edge forces O(n) scans; the
	// maintainer's budget is density-independent. This is the T9 shape.
	g := gen.Clique(200)
	rb := NewRepairBaseline(200)
	for _, up := range BuildUpdates(g, 5) {
		up.Apply(rb)
	}
	AdaptiveAdversary(rb, 100, 0, 3)
	if rb.Metrics().MaxUnitsUpdate < 100 {
		t.Errorf("baseline worst-case units %d unexpectedly small on K200", rb.Metrics().MaxUnitsUpdate)
	}
}

func TestObliviousChurnShape(t *testing.T) {
	g := gen.Clique(10)
	ups := ObliviousChurn(g, 5, 1)
	if len(ups) != 10 {
		t.Fatalf("churn length %d, want 10", len(ups))
	}
	for i := 0; i < len(ups); i += 2 {
		if ups[i].Insert || !ups[i+1].Insert || ups[i].U != ups[i+1].U {
			t.Fatalf("churn pair %d malformed: %+v %+v", i, ups[i], ups[i+1])
		}
	}
}

func TestQuickRandomSequencesStayConsistent(t *testing.T) {
	f := func(seed uint64) bool {
		mt := New(16, Options{Beta: 3, Eps: 0.4}, seed)
		rng := rand.New(rand.NewPCG(seed, 77))
		for i := 0; i < 300; i++ {
			u, v := int32(rng.IntN(16)), int32(rng.IntN(16))
			if u == v {
				continue
			}
			if rng.IntN(2) == 0 {
				mt.Insert(u, v)
			} else {
				mt.Delete(u, v)
			}
		}
		return matching.Verify(mt.Graph().Snapshot(), mt.Matching()) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestStaticRunPhasesProgress(t *testing.T) {
	inst := gen.BoundedDiversityInstance(100, 2, 16, 29)
	mt := New(inst.G.N(), Options{Beta: 2, Eps: 0.4}, 31)
	for _, up := range BuildUpdates(inst.G, 6) {
		up.Apply(mt)
	}
	run := newStaticRun(mt.Graph(), mt.delta, mt.maxLen, 2, rand.New(rand.NewPCG(1, 1)))
	steps := 0
	for !run.step(64) {
		steps++
		if steps > 1_000_000 {
			t.Fatal("static run did not terminate")
		}
	}
	mates, size := run.result()
	m := matching.FromMates(mates)
	if m.Size() != size {
		t.Fatalf("incremental size %d disagrees with recount %d", size, m.Size())
	}
	if err := matching.Verify(mt.Graph().Snapshot(), m); err != nil {
		t.Fatal(err)
	}
	if m.Size() == 0 {
		t.Error("static run produced empty matching on dense graph")
	}
}
