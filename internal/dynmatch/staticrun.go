// Package dynmatch maintains a (1+ε)-approximate maximum matching in a
// fully dynamic graph of bounded neighborhood independence with a
// worst-case update-time budget of O((β/ε³)·log(1/ε)) work units per update
// (Theorem 3.5 of the paper).
//
// The construction follows the Gupta–Peng stability-window scheme: the
// output matching M is recomputed from scratch every window of
// Θ(ε·|M|) updates by the static sparsify-then-match pipeline of
// Theorem 3.1, with the static computation sliced into a fixed per-update
// work budget so that the update time holds in the worst case, not just
// amortized. Edges deleted mid-window are removed from the output matching
// immediately, which by the stability lemma (Lemma 3.4) keeps the
// approximation factor at 1+O(ε) throughout the window. The randomness of
// each recomputation is fresh, so the guarantee holds against an adaptive
// adversary: the adversary sees only the current matching, which reveals
// nothing about the marks the *next* recomputation will draw.
package dynmatch

import (
	"math/rand/v2"

	"repro/internal/graph"
)

// staticRun is the paper's static (1+ε) pipeline — sample Δ incident edges
// per vertex, greedy matching, bounded-length augmentation sweeps — as an
// explicitly resumable state machine. Step(budget) performs up to budget
// work units and reports completion; units are counted per sampled edge,
// per scanned adjacency entry, and per DFS edge expansion, so a unit is a
// constant amount of real work.
type staticRun struct {
	g      *graph.Dynamic
	delta  int
	maxLen int // augmenting-path length bound 2⌈1/ε⌉−1
	sweeps int // number of augmentation sweeps over the free vertices

	phase    int // 0 = sample, 1 = greedy, 2 = augment, 3 = done
	cursor   int32
	sweep    int
	progress bool // did the current augmentation sweep augment anything?
	adj      [][]int32
	mate     []int32
	size     int // matched pairs in mate, maintained incrementally
	visited  []int32
	epoch    int32
	rng      *rand.Rand
	units    int64
	seen     map[int]bool // scratch for distinct-index sampling
}

const (
	phaseSample = iota
	phaseGreedy
	phaseAugment
	phaseDone
)

// runBuffers holds the reusable scratch of consecutive static runs: the
// sampled adjacency's backing arrays and the epoch-stamped visited array.
// Reuse avoids re-allocating Θ(n + nΔ) memory at every window swap, which
// would otherwise dominate the wall-clock update time via the garbage
// collector (the mate array is NOT reusable — its ownership transfers to
// the output matching at the swap).
type runBuffers struct {
	adj     [][]int32
	visited []int32
	epoch   int32
	seen    map[int]bool
}

func newRunBuffers(n, delta int) *runBuffers {
	b := &runBuffers{
		adj:     make([][]int32, n),
		visited: make([]int32, n),
		seen:    make(map[int]bool, delta),
	}
	for i := range b.visited {
		b.visited[i] = -1
	}
	return b
}

func newStaticRun(g *graph.Dynamic, delta, maxLen, sweeps int, rng *rand.Rand) *staticRun {
	return newStaticRunBuf(g, delta, maxLen, sweeps, rng, newRunBuffers(g.N(), delta))
}

// newStaticRunBuf builds a run reusing the given scratch buffers; the
// buffers must not be shared with a still-active run.
func newStaticRunBuf(g *graph.Dynamic, delta, maxLen, sweeps int, rng *rand.Rand, buf *runBuffers) *staticRun {
	n := g.N()
	if len(buf.adj) != n {
		buf.adj = make([][]int32, n)
		buf.visited = make([]int32, n)
		for i := range buf.visited {
			buf.visited[i] = -1
		}
		buf.epoch = 0
	}
	for i := range buf.adj {
		buf.adj[i] = buf.adj[i][:0] // keep backing arrays
	}
	r := &staticRun{
		g:       g,
		delta:   delta,
		maxLen:  maxLen,
		sweeps:  sweeps,
		adj:     buf.adj,
		mate:    make([]int32, n),
		visited: buf.visited,
		epoch:   buf.epoch,
		rng:     rng,
		seen:    buf.seen,
	}
	for i := range r.mate {
		r.mate[i] = -1
	}
	return r
}

// releaseInto returns the run's reusable scratch to buf (epoch continuity
// keeps the visited stamps valid across runs).
func (r *staticRun) releaseInto(buf *runBuffers) {
	buf.adj = r.adj
	buf.visited = r.visited
	buf.epoch = r.epoch
	buf.seen = r.seen
}

// step runs up to budget units; returns true when the pipeline is complete.
func (r *staticRun) step(budget int64) bool {
	spent := int64(0)
	for spent < budget {
		switch r.phase {
		case phaseSample:
			if int(r.cursor) >= r.g.N() {
				r.phase, r.cursor = phaseGreedy, 0
				continue
			}
			spent += r.sampleVertex(r.cursor)
			r.cursor++
		case phaseGreedy:
			if int(r.cursor) >= r.g.N() {
				r.phase, r.cursor, r.sweep = phaseAugment, 0, 0
				continue
			}
			spent += r.greedyVertex(r.cursor)
			r.cursor++
		case phaseAugment:
			if r.sweep >= r.sweeps {
				r.phase = phaseDone
				continue
			}
			if int(r.cursor) >= r.g.N() {
				if !r.progress {
					// A sweep without augmentations is a fixed point;
					// further sweeps would only burn budget.
					r.phase = phaseDone
					continue
				}
				r.cursor, r.progress = 0, false
				r.sweep++
				continue
			}
			spent += r.augmentVertex(r.cursor)
			r.cursor++
		case phaseDone:
			r.units += spent
			return true
		}
	}
	r.units += spent
	return r.phase == phaseDone
}

// sampleVertex marks min(Δ, deg) random incident edges of v (all edges when
// deg ≤ 2Δ) from the live graph, appending them to the sampled adjacency.
func (r *staticRun) sampleVertex(v int32) int64 {
	d := r.g.Degree(v)
	if d == 0 {
		return 1
	}
	if d <= 2*r.delta {
		for _, w := range r.g.Neighbors(v) {
			r.adj[v] = append(r.adj[v], w)
			r.adj[w] = append(r.adj[w], v)
		}
		return int64(d)
	}
	clear(r.seen)
	for len(r.seen) < r.delta {
		i := r.rng.IntN(d)
		if r.seen[i] {
			continue
		}
		r.seen[i] = true
		w := r.g.Neighbor(v, i)
		r.adj[v] = append(r.adj[v], w)
		r.adj[w] = append(r.adj[w], v)
	}
	return int64(2 * r.delta) // expected cost of the rejection sampling
}

// greedyVertex matches v to its first free sampled neighbor that is still a
// live edge.
func (r *staticRun) greedyVertex(v int32) int64 {
	if r.mate[v] >= 0 {
		return 1
	}
	cost := int64(1)
	for _, w := range r.adj[v] {
		cost++
		if r.mate[w] < 0 && w != v && r.g.HasEdge(v, w) {
			r.mate[v], r.mate[w] = w, v
			r.size++
			break
		}
	}
	return cost
}

// augmentVertex runs one bounded-length augmenting DFS from v if free.
// The DFS work is capped so a single update's budget overrun stays bounded.
func (r *staticRun) augmentVertex(v int32) int64 {
	if r.mate[v] >= 0 || len(r.adj[v]) == 0 {
		return 1
	}
	workCap := int64(8 * (r.delta + 1) * (r.maxLen + 1))
	cost := int64(1)
	r.epoch++
	var dfs func(x int32, depth int) bool
	dfs = func(x int32, depth int) bool {
		r.visited[x] = r.epoch
		for _, w := range r.adj[x] {
			if cost++; cost > workCap {
				return false
			}
			if r.visited[w] == r.epoch || !r.g.HasEdge(x, w) {
				continue
			}
			m := r.mate[w]
			if m < 0 {
				r.mate[x], r.mate[w] = w, x
				r.size++ // every frame above re-pairs, so net gain is one
				r.progress = true
				return true
			}
			if depth >= 2 && r.visited[m] != r.epoch {
				r.visited[w] = r.epoch
				r.mate[w], r.mate[m] = -1, -1
				if dfs(m, depth-2) {
					r.mate[x], r.mate[w] = w, x
					return true
				}
				r.mate[w], r.mate[m] = m, w
			}
		}
		return false
	}
	dfs(v, r.maxLen)
	return cost
}

// removeEdge evicts {u, v} from the in-progress matching in O(1). The
// maintainer calls it on every deletion, so the run's matching only ever
// contains live edges: matches are created only on edges verified live
// (greedyVertex and the DFS both check HasEdge), and deletions evict them
// immediately afterwards.
func (r *staticRun) removeEdge(u, v int32) {
	if r.mate[u] == v {
		r.mate[u], r.mate[v] = -1, -1
		r.size--
	}
}

// result hands over the computed mate array and its size; every matched
// pair is a live edge (see removeEdge). The run must not be used afterwards.
func (r *staticRun) result() ([]int32, int) { return r.mate, r.size }
