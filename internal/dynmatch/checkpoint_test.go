package dynmatch

import (
	"math/rand/v2"
	"slices"
	"testing"
)

type update struct {
	u, v int32
	del  bool
}

func randomTrace(n, k int, seed uint64) []update {
	rng := rand.New(rand.NewPCG(seed, seed))
	trace := make([]update, 0, k)
	for len(trace) < k {
		u, v := int32(rng.IntN(n)), int32(rng.IntN(n))
		if u == v {
			continue
		}
		trace = append(trace, update{u, v, rng.IntN(3) == 0})
	}
	return trace
}

func apply(mt *Maintainer, trace []update) {
	for _, t := range trace {
		if t.del {
			mt.Delete(t.u, t.v)
		} else {
			mt.Insert(t.u, t.v)
		}
	}
}

// TestCheckpointBitIdenticalContinuation is the tentpole criterion, in its
// strongest form: a maintainer restored from a mid-trace checkpoint does
// not just stay valid and match the un-crashed maintainer's SIZE — it
// replays the remaining updates BIT-IDENTICALLY (same mates, same budget,
// same metrics), because the checkpoint captures the graph layout, the
// in-progress recomputation, and the PCG state exactly.
func TestCheckpointBitIdenticalContinuation(t *testing.T) {
	const n = 120
	opt := Options{Beta: 2, Eps: 0.25}
	trace := randomTrace(n, 3000, 11)
	for _, cut := range []int{0, 317, 1500, 2999} {
		mt := New(n, opt, 5)
		apply(mt, trace[:cut])
		snap := mt.Snapshot()

		apply(mt, trace[cut:]) // the survivor keeps going

		restored, err := Restore(snap)
		if err != nil {
			t.Fatalf("cut %d: Restore: %v", cut, err)
		}
		if err := restored.Validate(); err != nil {
			t.Fatalf("cut %d: restored maintainer invalid before replay: %v", cut, err)
		}
		apply(restored, trace[cut:])

		if err := restored.Validate(); err != nil {
			t.Fatalf("cut %d: restored maintainer invalid after replay: %v", cut, err)
		}
		if !slices.Equal(mt.Matching().Mates(), restored.Matching().Mates()) {
			t.Fatalf("cut %d: restored replay diverged: size %d vs %d",
				cut, restored.Size(), mt.Size())
		}
		if mt.Budget() != restored.Budget() {
			t.Errorf("cut %d: budgets diverged: %d vs %d", cut, mt.Budget(), restored.Budget())
		}
		if mt.Metrics() != restored.Metrics() {
			t.Errorf("cut %d: metrics diverged:\nsurvivor: %+v\nrestored: %+v",
				cut, mt.Metrics(), restored.Metrics())
		}
	}
}

// TestCheckpointIsImmutable checks that a checkpoint is decoupled from its
// source and reusable: the source keeps mutating after Snapshot, and two
// restores of the same checkpoint replay identically.
func TestCheckpointIsImmutable(t *testing.T) {
	const n = 80
	opt := Options{Beta: 2, Eps: 0.3}
	trace := randomTrace(n, 1200, 3)
	mt := New(n, opt, 9)
	apply(mt, trace[:600])
	snap := mt.Snapshot()
	apply(mt, trace[600:]) // mutate the source; must not leak into snap

	r1, err := Restore(snap)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Restore(snap)
	if err != nil {
		t.Fatal(err)
	}
	apply(r1, trace[600:])
	apply(r2, trace[600:])
	if !slices.Equal(r1.Matching().Mates(), r2.Matching().Mates()) {
		t.Fatal("two restores of one checkpoint diverged")
	}
	if !slices.Equal(r1.Matching().Mates(), mt.Matching().Mates()) {
		t.Fatal("restored replay disagrees with the mutated source's replay")
	}
}

// TestRestoreRejectsCorruptCheckpoints pins the validation contract: a
// damaged checkpoint produces an error, never a silently corrupt
// maintainer.
func TestRestoreRejectsCorruptCheckpoints(t *testing.T) {
	mt := New(20, Options{Beta: 2, Eps: 0.3}, 1)
	apply(mt, randomTrace(20, 100, 7))

	corruptions := map[string]func(c *Checkpoint){
		"asymmetric graph": func(c *Checkpoint) {
			c.adj[0] = append(c.adj[0], 19)
		},
		"self-loop": func(c *Checkpoint) {
			c.adj[3] = append(c.adj[3], 3)
		},
		"mates length": func(c *Checkpoint) {
			c.mates = c.mates[:5]
		},
		"run phase": func(c *Checkpoint) {
			c.run.phase = 99
		},
		"rng state": func(c *Checkpoint) {
			c.rng = []byte{1, 2, 3}
		},
	}
	for name, corrupt := range corruptions {
		snap := mt.Snapshot()
		corrupt(snap)
		if _, err := Restore(snap); err == nil {
			t.Errorf("%s: Restore accepted a corrupt checkpoint", name)
		}
	}
}
