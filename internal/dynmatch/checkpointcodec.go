package dynmatch

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Binary checkpoint format (version 1), the durable form behind
// `matchd -restore` and any other crash-restart path that must survive
// process death. The encoding is canonical and deterministic — fixed-width
// big-endian fields, adjacency rows in vertex order preserving the exact
// slot order Snapshot captured — so marshaling the same checkpoint twice
// yields identical bytes, and a restored maintainer replays updates
// bit-identically (the PR-3 contract, now through a byte round trip).
//
// Layout:
//
//	magic   4 bytes  "DMCK"
//	version 1 byte   (currently 1)
//	options beta i64, eps f64, delta i64, sweeps i64, minBudget i64
//	budget  i64
//	graph   n u32, then per vertex: deg u32, deg × u32 neighbor
//	mates   n × u32 (two's complement int32, -1 = unmatched)
//	size    u32
//	rng     len u16, len bytes (serialized PCG state)
//	metrics 5 × i64 (updates, unitsTotal, maxUnitsUpdate, maxOverrun, recomputes)
//	run     phase u8, cursor u32, sweep u32, progress u8,
//	        adjacency (as above), mate n × u32, size u32, units i64
const (
	checkpointMagic   = "DMCK"
	CheckpointVersion = 1
)

// A CheckpointFormatError reports a checkpoint byte string that cannot be
// decoded: truncated, oversized, or carrying an out-of-range field. The
// offset is the byte position at which decoding failed.
type CheckpointFormatError struct {
	Offset int
	Why    string
}

func (e *CheckpointFormatError) Error() string {
	return fmt.Sprintf("dynmatch: checkpoint byte %d: %s", e.Offset, e.Why)
}

// A CheckpointVersionError reports a checkpoint written by an incompatible
// format version.
type CheckpointVersionError struct {
	Got byte
}

func (e *CheckpointVersionError) Error() string {
	return fmt.Sprintf("dynmatch: checkpoint format version %d, want %d", e.Got, CheckpointVersion)
}

// maxCheckpointVertices bounds the vertex count a decoder will allocate
// for, mirroring graph.MaxTextVertices's defense against length-field
// allocation bombs.
const maxCheckpointVertices = 1 << 28

func appendAdjacency(dst []byte, adj [][]int32) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(adj)))
	for _, row := range adj {
		dst = binary.BigEndian.AppendUint32(dst, uint32(len(row)))
		for _, w := range row {
			dst = binary.BigEndian.AppendUint32(dst, uint32(w))
		}
	}
	return dst
}

func appendMates(dst []byte, mates []int32) []byte {
	for _, w := range mates {
		dst = binary.BigEndian.AppendUint32(dst, uint32(w))
	}
	return dst
}

// MarshalBinary serializes the checkpoint. The output is canonical: equal
// checkpoints marshal to equal bytes.
func (c *Checkpoint) MarshalBinary() ([]byte, error) {
	n := len(c.adj)
	dst := make([]byte, 0, 64+9*n)
	dst = append(dst, checkpointMagic...)
	dst = append(dst, CheckpointVersion)
	dst = binary.BigEndian.AppendUint64(dst, uint64(int64(c.opt.Beta)))
	dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(c.opt.Eps))
	dst = binary.BigEndian.AppendUint64(dst, uint64(int64(c.opt.Delta)))
	dst = binary.BigEndian.AppendUint64(dst, uint64(int64(c.opt.Sweeps)))
	dst = binary.BigEndian.AppendUint64(dst, uint64(c.opt.MinBudget))
	dst = binary.BigEndian.AppendUint64(dst, uint64(c.budget))
	dst = appendAdjacency(dst, c.adj)
	dst = appendMates(dst, c.mates)
	dst = binary.BigEndian.AppendUint32(dst, uint32(c.size))
	if len(c.rng) > math.MaxUint16 {
		return nil, &CheckpointFormatError{Offset: len(dst), Why: fmt.Sprintf("rng state %d bytes exceeds %d", len(c.rng), math.MaxUint16)}
	}
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(c.rng)))
	dst = append(dst, c.rng...)
	for _, v := range []int64{c.metrics.Updates, c.metrics.UnitsTotal, c.metrics.MaxUnitsUpdate, c.metrics.MaxOverrun, c.metrics.Recomputes} {
		dst = binary.BigEndian.AppendUint64(dst, uint64(v))
	}
	dst = append(dst, byte(c.run.phase))
	dst = binary.BigEndian.AppendUint32(dst, uint32(c.run.cursor))
	dst = binary.BigEndian.AppendUint32(dst, uint32(c.run.sweep))
	prog := byte(0)
	if c.run.progress {
		prog = 1
	}
	dst = append(dst, prog)
	dst = appendAdjacency(dst, c.run.adj)
	dst = appendMates(dst, c.run.mate)
	dst = binary.BigEndian.AppendUint32(dst, uint32(c.run.size))
	dst = binary.BigEndian.AppendUint64(dst, uint64(c.run.units))
	return dst, nil
}

// ckReader decodes checkpoint fields with offset-tracked truncation checks.
type ckReader struct {
	b   []byte
	off int
	err error
}

func (r *ckReader) fail(why string) {
	if r.err == nil {
		r.err = &CheckpointFormatError{Offset: r.off, Why: why}
	}
}

func (r *ckReader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if len(r.b)-r.off < n {
		r.fail(fmt.Sprintf("truncated: need %d bytes, have %d", n, len(r.b)-r.off))
		return nil
	}
	out := r.b[r.off : r.off+n]
	r.off += n
	return out
}

func (r *ckReader) u8() byte {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *ckReader) u16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint16(b)
}

func (r *ckReader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

func (r *ckReader) i32() int32 { return int32(r.u32()) }

func (r *ckReader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

func (r *ckReader) i64() int64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return int64(binary.BigEndian.Uint64(b))
}

func (r *ckReader) f64() float64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return math.Float64frombits(binary.BigEndian.Uint64(b))
}

// adjacency decodes one adjacency block. wantN < 0 means the block defines
// n; otherwise the decoded n must equal wantN.
func (r *ckReader) adjacency(wantN int) [][]int32 {
	n := r.u32()
	if r.err != nil {
		return nil
	}
	if n > maxCheckpointVertices {
		r.fail(fmt.Sprintf("vertex count %d exceeds %d", n, maxCheckpointVertices))
		return nil
	}
	// Every vertex needs at least a 4-byte degree field, so a count that
	// exceeds remaining/4 is corrupt — reject it before allocating, or a
	// 60-byte input claiming 2^27 vertices costs gigabytes up front.
	if int64(n)*4 > int64(len(r.b)-r.off) {
		r.fail(fmt.Sprintf("vertex count %d exceeds remaining payload", n))
		return nil
	}
	if wantN >= 0 && int(n) != wantN {
		r.fail(fmt.Sprintf("adjacency for %d vertices, want %d", n, wantN))
		return nil
	}
	adj := make([][]int32, n)
	for v := range adj {
		deg := r.u32()
		if r.err != nil {
			return nil
		}
		// A degree field can never exceed the bytes that remain.
		if int64(deg)*4 > int64(len(r.b)-r.off) {
			r.fail(fmt.Sprintf("vertex %d: degree %d exceeds remaining payload", v, deg))
			return nil
		}
		if deg == 0 {
			continue
		}
		row := make([]int32, deg)
		for i := range row {
			w := r.i32()
			if w < 0 || w >= int32(n) {
				r.fail(fmt.Sprintf("vertex %d: neighbor %d outside [0,%d)", v, w, n))
				return nil
			}
			row[i] = w
		}
		adj[v] = row
	}
	return adj
}

func (r *ckReader) mates(n int) []int32 {
	mates := make([]int32, n)
	for v := range mates {
		w := r.i32()
		if r.err != nil {
			return nil
		}
		if w < -1 || w >= int32(n) {
			r.fail(fmt.Sprintf("vertex %d: mate %d outside [-1,%d)", v, w, n))
			return nil
		}
		mates[v] = w
	}
	return mates
}

// UnmarshalCheckpoint decodes a binary checkpoint. Errors are typed:
// *CheckpointFormatError for truncated or corrupt bytes,
// *CheckpointVersionError for an incompatible format version. The decoded
// checkpoint is structurally well-formed at the byte level; Restore
// performs the deeper semantic validation (graph symmetry, matching
// validity, option ranges).
func UnmarshalCheckpoint(b []byte) (*Checkpoint, error) {
	r := &ckReader{b: b}
	got := r.take(len(checkpointMagic))
	if r.err != nil {
		return nil, r.err
	}
	if string(got) != checkpointMagic {
		return nil, &CheckpointFormatError{Offset: 0, Why: fmt.Sprintf("bad magic %q, want %q", got, checkpointMagic)}
	}
	v := r.u8()
	if r.err != nil {
		return nil, r.err
	}
	if v != CheckpointVersion {
		return nil, &CheckpointVersionError{Got: v}
	}
	c := &Checkpoint{}
	c.opt.Beta = int(r.i64())
	c.opt.Eps = r.f64()
	c.opt.Delta = int(r.i64())
	c.opt.Sweeps = int(r.i64())
	c.opt.MinBudget = r.i64()
	c.budget = r.i64()
	c.adj = r.adjacency(-1)
	n := len(c.adj)
	c.mates = r.mates(n)
	c.size = int(r.u32())
	rngLen := int(r.u16())
	if rng := r.take(rngLen); rng != nil {
		c.rng = append([]byte(nil), rng...)
	}
	for _, dst := range []*int64{&c.metrics.Updates, &c.metrics.UnitsTotal, &c.metrics.MaxUnitsUpdate, &c.metrics.MaxOverrun, &c.metrics.Recomputes} {
		*dst = r.i64()
	}
	c.run.phase = int(r.u8())
	c.run.cursor = r.i32()
	c.run.sweep = int(r.u32())
	switch p := r.u8(); p {
	case 0, 1:
		c.run.progress = p == 1
	default:
		r.fail(fmt.Sprintf("run progress flag %d, want 0 or 1", p))
	}
	c.run.adj = r.adjacency(n)
	c.run.mate = r.mates(n)
	c.run.size = int(r.u32())
	c.run.units = r.i64()
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(b) {
		return nil, &CheckpointFormatError{Offset: r.off, Why: fmt.Sprintf("%d trailing bytes", len(b)-r.off)}
	}
	return c, nil
}
