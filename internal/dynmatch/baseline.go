package dynmatch

import (
	"repro/internal/graph"
	"repro/internal/matching"
)

// RepairBaseline maintains a maximal matching (hence a 2-approximate MCM)
// under fully dynamic updates by local repair: when a matched edge is
// deleted, each freed endpoint scans its full adjacency list for a free
// partner. Its update cost therefore grows with the graph density — on the
// dense bounded-β graphs the paper targets this is Θ(n) per deletion in the
// worst case, which is the behaviour of the deterministic comparators
// (Barenboim–Maimon's O(√(βn)) algorithm sits between this baseline and the
// sparsifier scheme). Experiment T9 compares its measured update cost
// against the Maintainer's O((β/ε³)·log(1/ε)) budget.
type RepairBaseline struct {
	g       *graph.Dynamic
	out     *matching.Matching
	metrics Metrics
}

// NewRepairBaseline creates the baseline over an empty graph on n vertices.
func NewRepairBaseline(n int) *RepairBaseline {
	return &RepairBaseline{g: graph.NewDynamic(n), out: matching.NewMatching(n)}
}

// Matching returns the maintained maximal matching (live; do not mutate).
func (rb *RepairBaseline) Matching() *matching.Matching { return rb.out }

// Size returns the matching size.
func (rb *RepairBaseline) Size() int { return rb.out.Size() }

// Graph exposes the dynamic graph.
func (rb *RepairBaseline) Graph() *graph.Dynamic { return rb.g }

// Metrics returns accumulated cost counters (units = adjacency entries
// scanned).
func (rb *RepairBaseline) Metrics() Metrics { return rb.metrics }

// Insert adds {u, v}, matching it if both endpoints are free.
func (rb *RepairBaseline) Insert(u, v int32) bool {
	added := rb.g.Insert(u, v)
	cost := int64(1)
	if added && !rb.out.IsMatched(u) && !rb.out.IsMatched(v) {
		rb.out.Match(u, v)
	}
	rb.account(cost)
	return added
}

// Delete removes {u, v}; if it was matched, both endpoints try to rematch
// by scanning their adjacency lists.
func (rb *RepairBaseline) Delete(u, v int32) bool {
	existed := rb.g.Delete(u, v)
	cost := int64(1)
	if existed && rb.out.Mate(u) == v {
		rb.out.Unmatch(u)
		cost += rb.rematch(u)
		cost += rb.rematch(v)
	}
	rb.account(cost)
	return existed
}

func (rb *RepairBaseline) rematch(v int32) int64 {
	if rb.out.IsMatched(v) {
		return 0
	}
	cost := int64(0)
	for _, w := range rb.g.Neighbors(v) {
		cost++
		if !rb.out.IsMatched(w) {
			rb.out.Match(v, w)
			break
		}
	}
	return cost
}

func (rb *RepairBaseline) account(cost int64) {
	rb.metrics.Updates++
	rb.metrics.UnitsTotal += cost
	if cost > rb.metrics.MaxUnitsUpdate {
		rb.metrics.MaxUnitsUpdate = cost
	}
}
