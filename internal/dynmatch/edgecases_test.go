package dynmatch

import (
	"testing"

	"repro/internal/gen"
)

// Compile-time interface compliance of all three dynamic matchers.
var (
	_ Updater = (*Maintainer)(nil)
	_ Updater = (*ObliviousMaintainer)(nil)
	_ Updater = (*RepairBaseline)(nil)
)

func TestOptionsOverrides(t *testing.T) {
	mt := New(10, Options{Beta: 2, Eps: 0.3, Delta: 7, Sweeps: 2, MinBudget: 99}, 1)
	if mt.delta != 7 {
		t.Errorf("Delta override ignored: %d", mt.delta)
	}
	if mt.Budget() != 99 {
		t.Errorf("MinBudget not the initial budget: %d", mt.Budget())
	}
	if mt.opt.Sweeps != 2 {
		t.Errorf("Sweeps override ignored: %d", mt.opt.Sweeps)
	}
}

func TestMaxLenFromEps(t *testing.T) {
	mt := New(4, Options{Beta: 1, Eps: 0.5}, 1)
	if mt.maxLen != 3 {
		t.Errorf("maxLen for ε=0.5 = %d, want 3", mt.maxLen)
	}
	mt2 := New(4, Options{Beta: 1, Eps: 0.2}, 1)
	if mt2.maxLen != 9 {
		t.Errorf("maxLen for ε=0.2 = %d, want 9", mt2.maxLen)
	}
}

func TestBuildUpdatesDeterministicAndComplete(t *testing.T) {
	g := gen.Clique(12)
	a := BuildUpdates(g, 5)
	b := BuildUpdates(g, 5)
	if len(a) != g.M() || len(b) != len(a) {
		t.Fatalf("lengths: %d %d, want %d", len(a), len(b), g.M())
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different orders")
		}
		if !a[i].Insert {
			t.Fatal("load sequence contains deletions")
		}
	}
	c := BuildUpdates(g, 6)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical orders")
	}
}

func TestAdaptiveAdversaryOnEmptyMatching(t *testing.T) {
	mt := New(6, Options{Beta: 1, Eps: 0.4}, 1)
	// No edges at all: the adversary must exit immediately with quality 1.
	if q := AdaptiveAdversary(mt, 50, 10, 3); q != 1.0 {
		t.Errorf("adversary on empty graph returned %v", q)
	}
}

func TestRecomputeBudgetRecalibrates(t *testing.T) {
	inst := gen.BoundedDiversityInstance(200, 2, 48, 3)
	mt := New(inst.G.N(), Options{Beta: 2, Eps: 0.3}, 5)
	initial := mt.Budget()
	for _, up := range BuildUpdates(inst.G, 1) {
		up.Apply(mt)
	}
	if mt.Metrics().Recomputes == 0 {
		t.Fatal("no recompute during load")
	}
	if mt.Budget() == initial {
		t.Error("budget never recalibrated from the measured run cost")
	}
}

func TestWrapHandoverKeepsSizesConsistent(t *testing.T) {
	// After many swaps the output matching's Size() must equal its actual
	// pair count (incremental bookkeeping in staticRun).
	inst := gen.BoundedDiversityInstance(150, 2, 32, 9)
	mt := New(inst.G.N(), Options{Beta: 2, Eps: 0.3}, 7)
	for _, up := range BuildUpdates(inst.G, 2) {
		up.Apply(mt)
	}
	for _, up := range ObliviousChurn(inst.G, 500, 3) {
		up.Apply(mt)
	}
	m := mt.Matching()
	count := 0
	for v := int32(0); v < int32(m.N()); v++ {
		if m.Mate(v) > v {
			count++
		}
	}
	if count != m.Size() {
		t.Errorf("size bookkeeping drifted: counted %d, Size() %d", count, m.Size())
	}
}

func BenchmarkMaintainerUpdate(b *testing.B) {
	inst := gen.BoundedDiversityInstance(600, 2, 96, 4)
	mt := New(inst.G.N(), Options{Beta: 2, Eps: 0.3}, 11)
	for _, up := range BuildUpdates(inst.G, 1) {
		up.Apply(mt)
	}
	churn := ObliviousChurn(inst.G, 1<<18, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		churn[i%len(churn)].Apply(mt)
	}
}

func BenchmarkObliviousUpdate(b *testing.B) {
	inst := gen.BoundedDiversityInstance(600, 2, 96, 4)
	mt := NewOblivious(inst.G.N(), Options{Beta: 2, Eps: 0.3}, 11)
	for _, up := range BuildUpdates(inst.G, 1) {
		up.Apply(mt)
	}
	churn := ObliviousChurn(inst.G, 1<<18, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		churn[i%len(churn)].Apply(mt)
	}
}

func TestAccessorCoverage(t *testing.T) {
	mt := New(5, Options{Beta: 1, Eps: 0.4}, 1)
	if mt.N() != 5 {
		t.Errorf("N = %d", mt.N())
	}
	rb := NewRepairBaseline(5)
	rb.Insert(0, 1)
	if rb.Size() != 1 {
		t.Errorf("baseline Size = %d", rb.Size())
	}
	ob := NewOblivious(5, Options{Beta: 1, Eps: 0.4}, 1)
	if ob.Budget() <= 0 {
		t.Errorf("oblivious Budget = %d", ob.Budget())
	}
}
