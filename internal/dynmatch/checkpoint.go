package dynmatch

import (
	"fmt"
	"math/rand/v2"
	"slices"

	"repro/internal/graph"
	"repro/internal/invariant"
	"repro/internal/matching"
)

// Checkpoint is a self-contained, deep-copied snapshot of a Maintainer.
// It captures everything the update loop depends on:
//
//   - the dynamic graph with its exact adjacency slot order (the static
//     pipeline samples neighbors by index, so a normalized layout would
//     change every coin flip after the restore);
//   - the output matching and the recalibrated per-update budget;
//   - the in-progress background recomputation (phase, cursors, sampled
//     adjacency, partial matching, spent units);
//   - the serialized PCG state of the shared randomness source;
//   - the accumulated metrics.
//
// A restored Maintainer therefore does not merely converge back to a valid
// state — it replays the remainder of any update sequence BIT-IDENTICALLY
// to the maintainer it was snapshotted from. Snapshots are immutable: the
// source maintainer may keep running and one checkpoint may be restored
// any number of times.
type Checkpoint struct {
	opt     Options
	budget  int64
	adj     [][]int32 // graph adjacency, exact slot order
	mates   []int32   // output matching
	size    int
	rng     []byte // serialized PCG state
	metrics Metrics
	run     runCheckpoint
}

// runCheckpoint freezes the resumable static pipeline. The epoch-stamped
// visited array is deliberately absent: stamps only carry meaning within a
// single augmentVertex call, which never spans a budget slice, so a fresh
// array restores equivalently.
type runCheckpoint struct {
	phase    int
	cursor   int32
	sweep    int
	progress bool
	adj      [][]int32
	mate     []int32
	size     int
	units    int64
}

func cloneAdj(adj [][]int32) [][]int32 {
	out := make([][]int32, len(adj))
	for i, a := range adj {
		out[i] = slices.Clone(a)
	}
	return out
}

// Snapshot captures the maintainer's complete state in O(n·Δ + m) time.
func (mt *Maintainer) Snapshot() *Checkpoint {
	rngState, err := mt.src.MarshalBinary()
	if err != nil {
		// rand/v2 PCG marshaling cannot fail; a failure means memory
		// corruption, not a recoverable condition.
		invariant.Violatef("dynmatch: PCG state not serializable: %v", err)
	}
	gAdj := make([][]int32, mt.g.N())
	for v := range gAdj {
		gAdj[v] = slices.Clone(mt.g.Neighbors(int32(v)))
	}
	return &Checkpoint{
		opt:     mt.opt,
		budget:  mt.budget,
		adj:     gAdj,
		mates:   mt.out.Mates(),
		size:    mt.out.Size(),
		rng:     rngState,
		metrics: mt.metrics,
		run: runCheckpoint{
			phase:    mt.run.phase,
			cursor:   mt.run.cursor,
			sweep:    mt.run.sweep,
			progress: mt.run.progress,
			adj:      cloneAdj(mt.run.adj),
			mate:     slices.Clone(mt.run.mate),
			size:     mt.run.size,
			units:    mt.run.units,
		},
	}
}

// A RestoreError reports a checkpoint that decoded at the byte level but
// fails semantic validation: a corrupt graph, an invalid matching, or
// out-of-range options. Field names the part of the checkpoint at fault.
type RestoreError struct {
	Field string
	Why   string
	Err   error // underlying cause, when one exists
}

func (e *RestoreError) Error() string {
	return fmt.Sprintf("dynmatch: corrupt checkpoint %s: %s", e.Field, e.Why)
}

func (e *RestoreError) Unwrap() error { return e.Err }

// validate checks the option ranges Restore depends on, so that a corrupt
// checkpoint yields an error instead of reaching the invariant.Violatef
// panic inside params resolution (New's contract for programmer-supplied
// options, wrong for untrusted bytes).
func (o Options) validate() error {
	if o.Beta < 1 {
		return &RestoreError{Field: "options", Why: fmt.Sprintf("beta %d, want >= 1", o.Beta)}
	}
	if !(o.Eps > 0 && o.Eps < 1) { // negated to catch NaN
		return &RestoreError{Field: "options", Why: fmt.Sprintf("eps %v outside (0,1)", o.Eps)}
	}
	if o.Delta < 0 || o.Sweeps < 0 || o.MinBudget < 0 {
		return &RestoreError{Field: "options",
			Why: fmt.Sprintf("negative delta %d, sweeps %d, or budget floor %d", o.Delta, o.Sweeps, o.MinBudget)}
	}
	return nil
}

// validateMatching checks that mates is a valid matching of g with the
// claimed size; field names the checkpoint section in errors.
func validateMatching(g *graph.Dynamic, mates []int32, size int, field string) error {
	m := matching.WrapMates(mates, size)
	if err := matching.Verify(g.Snapshot(), m); err != nil {
		return &RestoreError{Field: field, Why: err.Error(), Err: err}
	}
	return nil
}

// Restore reconstructs a Maintainer from a checkpoint, e.g. after a crash
// with full state loss. The checkpoint is validated semantically (graph
// symmetry, matching validity against the restored graph, option and
// cursor ranges); a damaged checkpoint yields a typed *RestoreError, never
// a silently corrupt maintainer and never a panic.
func Restore(c *Checkpoint) (*Maintainer, error) {
	if err := c.opt.validate(); err != nil {
		return nil, err
	}
	if c.budget < 0 {
		return nil, &RestoreError{Field: "budget", Why: fmt.Sprintf("negative budget %d", c.budget)}
	}
	g, err := graph.DynamicFromAdjacency(c.adj)
	if err != nil {
		return nil, &RestoreError{Field: "graph", Why: err.Error(), Err: err}
	}
	n := g.N()
	if len(c.mates) != n || len(c.run.mate) != n || len(c.run.adj) != n {
		return nil, &RestoreError{Field: "arrays",
			Why: fmt.Sprintf("sized for %d/%d/%d vertices, graph has %d", len(c.mates), len(c.run.mate), len(c.run.adj), n)}
	}
	if c.run.phase < phaseSample || c.run.phase > phaseDone {
		return nil, &RestoreError{Field: "run", Why: fmt.Sprintf("phase %d out of range", c.run.phase)}
	}
	if c.run.cursor < 0 || int(c.run.cursor) > n {
		return nil, &RestoreError{Field: "run", Why: fmt.Sprintf("cursor %d outside [0,%d]", c.run.cursor, n)}
	}
	if c.run.units < 0 {
		return nil, &RestoreError{Field: "run", Why: fmt.Sprintf("negative units %d", c.run.units)}
	}
	if err := validateMatching(g, slices.Clone(c.mates), c.size, "matching"); err != nil {
		return nil, err
	}
	// The in-progress run's partial matching lives on a sampled subgraph of
	// g, so its pairs must be edges of g too.
	if err := validateMatching(g, slices.Clone(c.run.mate), c.run.size, "run matching"); err != nil {
		return nil, err
	}
	opt, maxLen := c.opt.resolve()
	if c.run.sweep < 0 || c.run.sweep > opt.Sweeps {
		return nil, &RestoreError{Field: "run", Why: fmt.Sprintf("sweep %d outside [0,%d]", c.run.sweep, opt.Sweeps)}
	}
	src := &rand.PCG{}
	if err := src.UnmarshalBinary(c.rng); err != nil {
		return nil, &RestoreError{Field: "rng", Why: err.Error(), Err: err}
	}
	m := &Maintainer{
		g:       g,
		opt:     opt,
		delta:   opt.Delta,
		maxLen:  maxLen,
		budget:  c.budget,
		out:     matching.WrapMates(slices.Clone(c.mates), c.size),
		src:     src,
		rng:     rand.New(src),
		metrics: c.metrics,
	}
	m.bufs = newRunBuffers(n, m.delta)
	r := newStaticRunBuf(m.g, m.delta, m.maxLen, m.opt.Sweeps, m.rng, m.bufs)
	r.phase, r.cursor, r.sweep, r.progress = c.run.phase, c.run.cursor, c.run.sweep, c.run.progress
	for v := range c.run.adj {
		r.adj[v] = append(r.adj[v][:0], c.run.adj[v]...)
	}
	copy(r.mate, c.run.mate)
	r.size, r.units = c.run.size, c.run.units
	m.run = r
	return m, nil
}
