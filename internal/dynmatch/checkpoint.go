package dynmatch

import (
	"fmt"
	"math/rand/v2"
	"slices"

	"repro/internal/graph"
	"repro/internal/invariant"
	"repro/internal/matching"
)

// Checkpoint is a self-contained, deep-copied snapshot of a Maintainer.
// It captures everything the update loop depends on:
//
//   - the dynamic graph with its exact adjacency slot order (the static
//     pipeline samples neighbors by index, so a normalized layout would
//     change every coin flip after the restore);
//   - the output matching and the recalibrated per-update budget;
//   - the in-progress background recomputation (phase, cursors, sampled
//     adjacency, partial matching, spent units);
//   - the serialized PCG state of the shared randomness source;
//   - the accumulated metrics.
//
// A restored Maintainer therefore does not merely converge back to a valid
// state — it replays the remainder of any update sequence BIT-IDENTICALLY
// to the maintainer it was snapshotted from. Snapshots are immutable: the
// source maintainer may keep running and one checkpoint may be restored
// any number of times.
type Checkpoint struct {
	opt     Options
	budget  int64
	adj     [][]int32 // graph adjacency, exact slot order
	mates   []int32   // output matching
	size    int
	rng     []byte // serialized PCG state
	metrics Metrics
	run     runCheckpoint
}

// runCheckpoint freezes the resumable static pipeline. The epoch-stamped
// visited array is deliberately absent: stamps only carry meaning within a
// single augmentVertex call, which never spans a budget slice, so a fresh
// array restores equivalently.
type runCheckpoint struct {
	phase    int
	cursor   int32
	sweep    int
	progress bool
	adj      [][]int32
	mate     []int32
	size     int
	units    int64
}

func cloneAdj(adj [][]int32) [][]int32 {
	out := make([][]int32, len(adj))
	for i, a := range adj {
		out[i] = slices.Clone(a)
	}
	return out
}

// Snapshot captures the maintainer's complete state in O(n·Δ + m) time.
func (mt *Maintainer) Snapshot() *Checkpoint {
	rngState, err := mt.src.MarshalBinary()
	if err != nil {
		// rand/v2 PCG marshaling cannot fail; a failure means memory
		// corruption, not a recoverable condition.
		invariant.Violatef("dynmatch: PCG state not serializable: %v", err)
	}
	gAdj := make([][]int32, mt.g.N())
	for v := range gAdj {
		gAdj[v] = slices.Clone(mt.g.Neighbors(int32(v)))
	}
	return &Checkpoint{
		opt:     mt.opt,
		budget:  mt.budget,
		adj:     gAdj,
		mates:   mt.out.Mates(),
		size:    mt.out.Size(),
		rng:     rngState,
		metrics: mt.metrics,
		run: runCheckpoint{
			phase:    mt.run.phase,
			cursor:   mt.run.cursor,
			sweep:    mt.run.sweep,
			progress: mt.run.progress,
			adj:      cloneAdj(mt.run.adj),
			mate:     slices.Clone(mt.run.mate),
			size:     mt.run.size,
			units:    mt.run.units,
		},
	}
}

// Restore reconstructs a Maintainer from a checkpoint, e.g. after a crash
// with full state loss. The checkpoint is validated structurally (graph
// symmetry, array lengths, phase range); a damaged checkpoint yields an
// error, never a silently corrupt maintainer.
func Restore(c *Checkpoint) (*Maintainer, error) {
	g, err := graph.DynamicFromAdjacency(c.adj)
	if err != nil {
		return nil, fmt.Errorf("dynmatch: corrupt checkpoint graph: %w", err)
	}
	n := g.N()
	if len(c.mates) != n || len(c.run.mate) != n || len(c.run.adj) != n {
		return nil, fmt.Errorf("dynmatch: checkpoint arrays sized for %d/%d/%d vertices, graph has %d",
			len(c.mates), len(c.run.mate), len(c.run.adj), n)
	}
	if c.run.phase < phaseSample || c.run.phase > phaseDone {
		return nil, fmt.Errorf("dynmatch: checkpoint run phase %d out of range", c.run.phase)
	}
	opt, maxLen := c.opt.resolve()
	src := &rand.PCG{}
	if err := src.UnmarshalBinary(c.rng); err != nil {
		return nil, fmt.Errorf("dynmatch: corrupt checkpoint rng state: %w", err)
	}
	m := &Maintainer{
		g:       g,
		opt:     opt,
		delta:   opt.Delta,
		maxLen:  maxLen,
		budget:  c.budget,
		out:     matching.WrapMates(slices.Clone(c.mates), c.size),
		src:     src,
		rng:     rand.New(src),
		metrics: c.metrics,
	}
	m.bufs = newRunBuffers(n, m.delta)
	r := newStaticRunBuf(m.g, m.delta, m.maxLen, m.opt.Sweeps, m.rng, m.bufs)
	r.phase, r.cursor, r.sweep, r.progress = c.run.phase, c.run.cursor, c.run.sweep, c.run.progress
	for v := range c.run.adj {
		r.adj[v] = append(r.adj[v][:0], c.run.adj[v]...)
	}
	copy(r.mate, c.run.mate)
	r.size, r.units = c.run.size, c.run.units
	m.run = r
	return m, nil
}
