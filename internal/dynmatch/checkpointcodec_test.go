package dynmatch

import (
	"bytes"
	"errors"
	"slices"
	"testing"
)

// marshaled builds a maintainer mid-trace and returns its serialized
// checkpoint plus the maintainer itself.
func marshaled(t *testing.T, n, k int, seed uint64) (*Maintainer, []byte) {
	t.Helper()
	mt := New(n, Options{Beta: 2, Eps: 0.3}, seed)
	apply(mt, randomTrace(n, k, seed+1))
	b, err := mt.Snapshot().MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	return mt, b
}

// TestCheckpointCodecBitIdenticalContinuation extends the PR-3 contract
// through the byte codec: a maintainer restored from MARSHALED bytes
// replays the remainder of a trace bit-identically to the survivor.
func TestCheckpointCodecBitIdenticalContinuation(t *testing.T) {
	const n = 100
	trace := randomTrace(n, 2400, 21)
	for _, cut := range []int{0, 473, 1200, 2399} {
		mt := New(n, Options{Beta: 2, Eps: 0.3}, 7)
		apply(mt, trace[:cut])
		b, err := mt.Snapshot().MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		apply(mt, trace[cut:])

		c, err := UnmarshalCheckpoint(b)
		if err != nil {
			t.Fatalf("cut %d: unmarshal: %v", cut, err)
		}
		restored, err := Restore(c)
		if err != nil {
			t.Fatalf("cut %d: restore: %v", cut, err)
		}
		apply(restored, trace[cut:])
		if !slices.Equal(mt.Matching().Mates(), restored.Matching().Mates()) {
			t.Fatalf("cut %d: byte-codec restore diverged", cut)
		}
		if mt.Metrics() != restored.Metrics() {
			t.Fatalf("cut %d: metrics diverged", cut)
		}
	}
}

// TestCheckpointCodecCanonical pins that marshaling is deterministic and
// that a decode→encode round trip is byte-identical.
func TestCheckpointCodecCanonical(t *testing.T) {
	mt, b1 := marshaled(t, 60, 900, 3)
	b2, err := mt.Snapshot().MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("two marshals of the same state differ")
	}
	c, err := UnmarshalCheckpoint(b1)
	if err != nil {
		t.Fatal(err)
	}
	b3, err := c.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b3) {
		t.Fatal("decode→encode is not byte-identical")
	}
}

// TestCheckpointCodecTruncation decodes every strict prefix of a valid
// checkpoint: each must yield a typed error, never a panic and never
// success.
func TestCheckpointCodecTruncation(t *testing.T) {
	_, b := marshaled(t, 40, 500, 9)
	for cut := 0; cut < len(b); cut++ {
		_, err := UnmarshalCheckpoint(b[:cut])
		if err == nil {
			t.Fatalf("prefix of %d/%d bytes decoded successfully", cut, len(b))
		}
		var fe *CheckpointFormatError
		var ve *CheckpointVersionError
		if !errors.As(err, &fe) && !errors.As(err, &ve) {
			t.Fatalf("prefix %d: untyped error %T: %v", cut, err, err)
		}
	}
}

// TestCheckpointCodecNegativePaths is the table-driven error-path sweep:
// version mismatches and targeted corruptions must produce the right typed
// error at decode or restore time.
func TestCheckpointCodecNegativePaths(t *testing.T) {
	_, valid := marshaled(t, 30, 400, 5)

	mutate := func(f func(b []byte)) []byte {
		b := bytes.Clone(valid)
		f(b)
		return b
	}
	type target int
	const (
		wantFormat target = iota
		wantVersion
		wantRestore
	)
	cases := []struct {
		name string
		in   []byte
		want target
	}{
		{"empty", nil, wantFormat},
		{"bad magic", mutate(func(b []byte) { b[0] = 'X' }), wantFormat},
		{"version mismatch", mutate(func(b []byte) { b[4] = CheckpointVersion + 1 }), wantVersion},
		{"trailing bytes", append(bytes.Clone(valid), 0xEE), wantFormat},
		{"negative beta", mutate(func(b []byte) {
			// opt.Beta is the first i64 after magic+version (offset 5).
			for i := 5; i < 13; i++ {
				b[i] = 0xFF
			}
		}), wantRestore},
		{"NaN eps", mutate(func(b []byte) {
			// opt.Eps is the f64 at offset 13.
			copy(b[13:21], []byte{0x7F, 0xF8, 0, 0, 0, 0, 0, 1})
		}), wantRestore},
		{"negative budget", mutate(func(b []byte) {
			// budget is the i64 at offset 45 (after 5 option fields).
			for i := 45; i < 53; i++ {
				b[i] = 0xFF
			}
		}), wantRestore},
		{"huge vertex count", mutate(func(b []byte) {
			// graph n is the u32 at offset 53.
			b[53], b[54], b[55], b[56] = 0xFF, 0xFF, 0xFF, 0xFF
		}), wantFormat},
	}
	for _, tc := range cases {
		c, err := UnmarshalCheckpoint(tc.in)
		if err == nil {
			_, err = Restore(c)
		}
		if err == nil {
			t.Errorf("%s: accepted a corrupt checkpoint", tc.name)
			continue
		}
		var fe *CheckpointFormatError
		var ve *CheckpointVersionError
		var re *RestoreError
		switch tc.want {
		case wantFormat:
			if !errors.As(err, &fe) {
				t.Errorf("%s: err = %T %v, want *CheckpointFormatError", tc.name, err, err)
			}
		case wantVersion:
			if !errors.As(err, &ve) {
				t.Errorf("%s: err = %T %v, want *CheckpointVersionError", tc.name, err, err)
			}
		case wantRestore:
			if !errors.As(err, &re) {
				t.Errorf("%s: err = %T %v, want *RestoreError", tc.name, err, err)
			}
		}
	}
}

// TestRestoreRejectsCorruptMatching pins the deepened Restore validation:
// a checkpoint whose matching is not a valid matching of its graph (broken
// involution, dead edge, wrong size) is refused with a *RestoreError —
// previously these produced a silently corrupt maintainer.
func TestRestoreRejectsCorruptMatching(t *testing.T) {
	mt := New(24, Options{Beta: 2, Eps: 0.3}, 2)
	apply(mt, randomTrace(24, 600, 13))
	if mt.Size() == 0 {
		t.Fatal("want a non-empty matching for this test")
	}

	corruptions := map[string]func(c *Checkpoint){
		"broken involution": func(c *Checkpoint) {
			for v, w := range c.mates {
				if w >= 0 {
					c.mates[v] = -1 // break one side of the pair
					return
				}
			}
		},
		"wrong size": func(c *Checkpoint) { c.size++ },
		"run matching dead edge": func(c *Checkpoint) {
			// Match two vertices in the run's partial matching that are
			// free and not adjacent in the graph.
			u, v := int32(-1), int32(-1)
			for x := range c.run.mate {
				if c.run.mate[x] >= 0 {
					continue
				}
				if u < 0 {
					u = int32(x)
					continue
				}
				adjacent := false
				for _, w := range c.adj[u] {
					if w == int32(x) {
						adjacent = true
						break
					}
				}
				if !adjacent {
					v = int32(x)
					break
				}
			}
			if u < 0 || v < 0 {
				return // no free non-adjacent pair; leave valid (cannot happen at n=24)
			}
			c.run.mate[u], c.run.mate[v] = v, u
			c.run.size++
		},
	}
	for name, corrupt := range corruptions {
		snap := mt.Snapshot()
		corrupt(snap)
		_, err := Restore(snap)
		if err == nil {
			t.Errorf("%s: Restore accepted an invalid matching", name)
			continue
		}
		var re *RestoreError
		if !errors.As(err, &re) {
			t.Errorf("%s: err = %T %v, want *RestoreError", name, err, err)
		}
	}
}
