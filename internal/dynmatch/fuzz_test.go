package dynmatch

import (
	"bytes"
	"errors"
	"testing"
)

// fuzzSeedDMCK builds real DMCK checkpoint bytes: a maintainer driven
// through a short deterministic churn, then snapshotted.
func fuzzSeedDMCK(n int, seed uint64) []byte {
	mt := New(n, Options{Beta: 2, Eps: 0.3}, seed)
	for i := 0; i < 4*n; i++ {
		u := int32(i % n)
		v := int32((i*7 + 3) % n)
		if u == v {
			continue
		}
		if i%5 == 4 {
			mt.Delete(u, v)
		} else {
			mt.Insert(u, v)
		}
	}
	b, err := mt.Snapshot().MarshalBinary()
	if err != nil {
		panic(err)
	}
	return b
}

// fuzzSeedDMEW builds real DMEW bytes the same way for the windowed
// EDCS backend.
func fuzzSeedDMEW(n int, seed uint64) []byte {
	mt := NewEDCSWindowed(n, 0.3, seed)
	for i := 0; i < 4*n; i++ {
		u := int32(i % n)
		v := int32((i*5 + 1) % n)
		if u == v {
			continue
		}
		if i%6 == 5 {
			mt.Delete(u, v)
		} else {
			mt.Insert(u, v)
		}
	}
	b, err := mt.MarshalBinary()
	if err != nil {
		panic(err)
	}
	return b
}

// FuzzCheckpointDecode pins the DMCK codec on arbitrary bytes: decoding
// never panics, every rejection is a typed *CheckpointFormatError or
// *CheckpointVersionError, and every accepted input is canonical — the
// decoded checkpoint re-marshals to exactly the input bytes.
func FuzzCheckpointDecode(f *testing.F) {
	for _, b := range [][]byte{fuzzSeedDMCK(16, 3), fuzzSeedDMCK(40, 11)} {
		f.Add(b)
		f.Add(b[:len(b)-1])
		f.Add(b[:9])
		flipped := append([]byte(nil), b...)
		flipped[len(flipped)/3] ^= 0x40
		f.Add(flipped)
	}
	f.Add([]byte{})
	f.Add([]byte("DMCK"))
	f.Add([]byte("XXXX\x01"))
	f.Add(bytes.Repeat([]byte{0x00}, 48))

	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := UnmarshalCheckpoint(data)
		if err != nil {
			var fe *CheckpointFormatError
			var ve *CheckpointVersionError
			if !errors.As(err, &fe) && !errors.As(err, &ve) {
				t.Fatalf("untyped decode error %T: %v", err, err)
			}
			return
		}
		enc, err := c.MarshalBinary()
		if err != nil {
			t.Fatalf("decoded checkpoint does not re-marshal: %v", err)
		}
		if !bytes.Equal(enc, data) {
			t.Fatalf("non-canonical accept:\n in  %x\n out %x", data, enc)
		}
	})
}

// FuzzEDCSWindowedDecode pins the DMEW codec the same way. Restore also
// performs semantic validation, so the typed-error set additionally
// includes *RestoreError; on success the restored maintainer re-marshals
// canonically.
func FuzzEDCSWindowedDecode(f *testing.F) {
	for _, b := range [][]byte{fuzzSeedDMEW(16, 5), fuzzSeedDMEW(40, 9)} {
		f.Add(b)
		f.Add(b[:len(b)-1])
		f.Add(b[:9])
		flipped := append([]byte(nil), b...)
		flipped[len(flipped)/3] ^= 0x40
		f.Add(flipped)
	}
	f.Add([]byte{})
	f.Add([]byte("DMEW"))
	f.Add(bytes.Repeat([]byte{0xFF}, 48))

	f.Fuzz(func(t *testing.T, data []byte) {
		mt, err := RestoreEDCSWindowed(data)
		if err != nil {
			var fe *CheckpointFormatError
			var ve *CheckpointVersionError
			var re *RestoreError
			if !errors.As(err, &fe) && !errors.As(err, &ve) && !errors.As(err, &re) {
				t.Fatalf("untyped decode error %T: %v", err, err)
			}
			return
		}
		enc, err := mt.MarshalBinary()
		if err != nil {
			t.Fatalf("restored maintainer does not re-marshal: %v", err)
		}
		if !bytes.Equal(enc, data) {
			t.Fatalf("non-canonical accept:\n in  %x\n out %x", data, enc)
		}
	})
}
