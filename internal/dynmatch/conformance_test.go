package dynmatch_test

// Adoption of the internal/testkit conformance harness: the fully dynamic
// maintainer's end state after an insertion replay is a valid matching
// within the calibrated ratio of the blossom oracle, and the
// ResolvedOptions hook exposes the parameters actually in force.

import (
	"testing"

	"repro/internal/dynmatch"
	"repro/internal/gen"
	"repro/internal/params"
	"repro/internal/testkit"
)

func TestDynMatchConformance(t *testing.T) {
	const eps = 0.3
	inst := testkit.Certify(gen.UnitDiskInstance(80, 24, 37))
	mt := testkit.ReplayDynamicMatcher(inst.G, inst.Beta, eps, 41)
	if err := mt.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := testkit.CheckMatchingValid(inst.G, mt.Matching()); err != nil {
		t.Fatal(err)
	}
	// ε plus transient slack, matching the maintainer's own calibration.
	if got, floor := mt.Size(), testkit.RatioFloor(inst.MCM, eps+0.1); got < floor {
		t.Errorf("maintained matching %d below floor %d (MCM=%d)", got, floor, inst.MCM)
	}
}

func TestResolvedOptionsHook(t *testing.T) {
	mt := dynmatch.New(10, dynmatch.Options{Beta: 3, Eps: 0.25}, 1)
	opt := mt.ResolvedOptions()
	if want := params.Delta(3, 0.25); opt.Delta != want {
		t.Errorf("resolved Delta = %d, want the params resolution %d", opt.Delta, want)
	}
	if opt.Sweeps < 1 || opt.MinBudget < 1 {
		t.Errorf("resolution left zero-valued fields: %+v", opt)
	}
}
