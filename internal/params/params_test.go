package params

import (
	"math"
	"runtime"
	"testing"
)

func TestDeltaMatchesFormula(t *testing.T) {
	for _, c := range []struct {
		beta int
		eps  float64
	}{{1, 0.5}, {2, 0.3}, {5, 0.1}, {1, 0.9}} {
		want := int(math.Ceil(float64(c.beta) / c.eps * math.Log(24/c.eps)))
		if got := Delta(c.beta, c.eps); got != want {
			t.Errorf("Delta(%d,%v) = %d, want %d", c.beta, c.eps, got, want)
		}
		if got, want := DeltaProof(c.beta, c.eps), int(math.Ceil(20*float64(c.beta)/c.eps*math.Log(24/c.eps))); got != want {
			t.Errorf("DeltaProof(%d,%v) = %d, want %d", c.beta, c.eps, got, want)
		}
	}
}

func TestCheckPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"beta0":  func() { Check(0, 0.5) },
		"eps0":   func() { Check(1, 0) },
		"eps1":   func() { Check(1, 1) },
		"epsNeg": func() { Check(1, -0.1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
	Check(1, 0.5) // must not panic
}

func TestDerivedQuantities(t *testing.T) {
	if got := MarkAllThreshold(7); got != 14 {
		t.Errorf("MarkAllThreshold(7) = %d, want 14", got)
	}
	if got, want := DeltaAlpha(4, 0.5), int(math.Ceil(5*4/0.5)); got != want {
		t.Errorf("DeltaAlpha(4,0.5) = %d, want %d", got, want)
	}
	if got := AugLen(0.3); got != 2*4-1 {
		t.Errorf("AugLen(0.3) = %d, want 7", got)
	}
	if got := AugLenCapped(0.1); got != 9 {
		t.Errorf("AugLenCapped(0.1) = %d, want 9", got)
	}
	if got := AugLenCapped(0.5); got != 3 {
		t.Errorf("AugLenCapped(0.5) = %d, want 3", got)
	}
	if got := AugIters(6); got != 48 {
		t.Errorf("AugIters(6) = %d, want 48", got)
	}
	if got, want := DynMinBudget(10, 0.5), int64(math.Ceil(4*10/0.25)); got != want {
		t.Errorf("DynMinBudget(10,0.5) = %d, want %d", got, want)
	}
}

func TestWorkers(t *testing.T) {
	if got := Workers(3); got != 3 {
		t.Errorf("Workers(3) = %d", got)
	}
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS", got)
	}
}

func TestSequentialResolve(t *testing.T) {
	r := Sequential{Delta: 5}.Resolve()
	if r.MarkAllThreshold != 10 {
		t.Errorf("default MarkAllThreshold = %d, want 2Δ = 10", r.MarkAllThreshold)
	}
	if r.Workers != runtime.GOMAXPROCS(0) {
		t.Errorf("default Workers = %d", r.Workers)
	}
	// Explicit values survive resolution.
	r = Sequential{Delta: 5, MarkAllThreshold: 3, Workers: 2}.Resolve()
	if r.MarkAllThreshold != 3 || r.Workers != 2 {
		t.Errorf("overrides clobbered: %+v", r)
	}
}

func TestPipelineResolveFor(t *testing.T) {
	beta, eps := 2, 0.3
	r := Pipeline{}.ResolveFor(beta, eps)
	if r.Delta != Delta(beta, eps) {
		t.Errorf("Delta = %d, want %d", r.Delta, Delta(beta, eps))
	}
	if r.DeltaAlpha != DeltaAlpha(2*r.Delta, eps) {
		t.Errorf("DeltaAlpha = %d, want composition bound with arboricity 2Δ", r.DeltaAlpha)
	}
	if r.AugIters != 8*r.DeltaAlpha {
		t.Errorf("AugIters = %d, want 8Δα = %d", r.AugIters, 8*r.DeltaAlpha)
	}
	if r.AugLen != AugLenCapped(eps) {
		t.Errorf("AugLen = %d, want %d", r.AugLen, AugLenCapped(eps))
	}
	// Overriding Delta propagates into the dependent defaults.
	r = Pipeline{Delta: 4}.ResolveFor(beta, eps)
	if r.DeltaAlpha != DeltaAlpha(8, eps) {
		t.Errorf("override Delta=4: DeltaAlpha = %d, want %d", r.DeltaAlpha, DeltaAlpha(8, eps))
	}
	r = Pipeline{Delta: 4, DeltaAlpha: 6, AugIters: 10, AugLen: 5}.ResolveFor(beta, eps)
	if r != (Pipeline{Delta: 4, DeltaAlpha: 6, AugIters: 10, AugLen: 5}) {
		t.Errorf("full overrides clobbered: %+v", r)
	}
}

func TestDynamicResolveFor(t *testing.T) {
	beta, eps := 2, 0.4
	r := Dynamic{}.ResolveFor(beta, eps)
	if r.Delta != Delta(beta, eps) {
		t.Errorf("Delta = %d, want %d", r.Delta, Delta(beta, eps))
	}
	if r.MaxLen != AugLen(eps) {
		t.Errorf("MaxLen = %d, want %d (uncapped)", r.MaxLen, AugLen(eps))
	}
	if r.Sweeps != DefaultSweeps {
		t.Errorf("Sweeps = %d, want %d", r.Sweeps, DefaultSweeps)
	}
	if r.MinBudget != DynMinBudget(r.Delta, eps) {
		t.Errorf("MinBudget = %d, want %d", r.MinBudget, DynMinBudget(r.Delta, eps))
	}
	// An overridden Delta feeds the budget floor.
	r = Dynamic{Delta: 3}.ResolveFor(beta, eps)
	if r.MinBudget != DynMinBudget(3, eps) {
		t.Errorf("override Delta=3: MinBudget = %d, want %d", r.MinBudget, DynMinBudget(3, eps))
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Dynamic.ResolveFor with eps=0 did not panic")
			}
		}()
		Dynamic{}.ResolveFor(1, 0)
	}()
}
