package params

import (
	"math"
	"runtime"
	"testing"
)

func TestDeltaMatchesFormula(t *testing.T) {
	for _, c := range []struct {
		beta int
		eps  float64
	}{{1, 0.5}, {2, 0.3}, {5, 0.1}, {1, 0.9}} {
		want := int(math.Ceil(float64(c.beta) / c.eps * math.Log(24/c.eps)))
		if got := Delta(c.beta, c.eps); got != want {
			t.Errorf("Delta(%d,%v) = %d, want %d", c.beta, c.eps, got, want)
		}
		if got, want := DeltaProof(c.beta, c.eps), int(math.Ceil(20*float64(c.beta)/c.eps*math.Log(24/c.eps))); got != want {
			t.Errorf("DeltaProof(%d,%v) = %d, want %d", c.beta, c.eps, got, want)
		}
	}
}

func TestCheckPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"beta0":  func() { Check(0, 0.5) },
		"eps0":   func() { Check(1, 0) },
		"eps1":   func() { Check(1, 1) },
		"epsNeg": func() { Check(1, -0.1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
	Check(1, 0.5) // must not panic
}

func TestDerivedQuantities(t *testing.T) {
	if got := MarkAllThreshold(7); got != 14 {
		t.Errorf("MarkAllThreshold(7) = %d, want 14", got)
	}
	if got, want := DeltaAlpha(4, 0.5), int(math.Ceil(5*4/0.5)); got != want {
		t.Errorf("DeltaAlpha(4,0.5) = %d, want %d", got, want)
	}
	if got := AugLen(0.3); got != 2*4-1 {
		t.Errorf("AugLen(0.3) = %d, want 7", got)
	}
	if got := AugLenCapped(0.1); got != 9 {
		t.Errorf("AugLenCapped(0.1) = %d, want 9", got)
	}
	if got := AugLenCapped(0.5); got != 3 {
		t.Errorf("AugLenCapped(0.5) = %d, want 3", got)
	}
	if got := AugIters(6); got != 48 {
		t.Errorf("AugIters(6) = %d, want 48", got)
	}
	if got, want := DynMinBudget(10, 0.5), int64(math.Ceil(4*10/0.25)); got != want {
		t.Errorf("DynMinBudget(10,0.5) = %d, want %d", got, want)
	}
}

// TestEdgeDomains pins the behavior at the parameter domain's edges: the
// smallest β, ε pushed toward both ends of (0, 1), and the exact mark-all
// threshold boundary. None of these may panic or produce a non-positive
// derived quantity.
func TestEdgeDomains(t *testing.T) {
	// β = 1 across the ε range.
	for _, eps := range []float64{1e-9, 0.001, 0.5, 0.999, 1 - 1e-12} {
		d := Delta(1, eps)
		if d < 1 {
			t.Errorf("Delta(1, %v) = %d, want >= 1", eps, d)
		}
		if dp := DeltaProof(1, eps); dp < d {
			t.Errorf("DeltaProof(1, %v) = %d below lean Delta %d", eps, dp, d)
		}
		if l := AugLen(eps); l < 1 || l%2 == 0 {
			t.Errorf("AugLen(%v) = %d, want positive odd", eps, l)
		}
		if b := DynMinBudget(d, eps); b < 1 {
			t.Errorf("DynMinBudget(%d, %v) = %d, want >= 1", d, eps, b)
		}
	}
	// ε near 1: ln(24/ε) stays positive, so Δ ≥ β·ln(24) > 3β.
	if d := Delta(10, 0.999); d < 31 {
		t.Errorf("Delta(10, 0.999) = %d, want > 3β", d)
	}
	// Mark-all threshold boundary: exactly 2Δ, and the resolver must not
	// clobber an explicit threshold equal to the boundary value.
	if got := MarkAllThreshold(Delta(1, 0.5)); got != 2*Delta(1, 0.5) {
		t.Errorf("MarkAllThreshold = %d, want 2Δ", got)
	}
	r := Sequential{Delta: 5, MarkAllThreshold: 10}.Resolve()
	if r.MarkAllThreshold != 10 {
		t.Errorf("explicit boundary threshold clobbered: %+v", r)
	}
}

// TestOverflowSaturates pins the guards on huge inputs: float→int conversion
// beyond the int range is implementation-defined in Go, so without
// saturation a huge β or tiny ε would wrap Δ (or a budget) to a negative
// value and disable every downstream size check.
func TestOverflowSaturates(t *testing.T) {
	huge := math.MaxInt
	if d := Delta(huge, 1e-9); d != math.MaxInt {
		t.Errorf("Delta(MaxInt, 1e-9) = %d, want saturation at MaxInt", d)
	}
	if d := DeltaProof(huge, 1e-9); d != math.MaxInt {
		t.Errorf("DeltaProof(MaxInt, 1e-9) = %d, want saturation", d)
	}
	if got := MarkAllThreshold(huge); got != math.MaxInt {
		t.Errorf("MarkAllThreshold(MaxInt) = %d, want saturation", got)
	}
	if got := AugIters(huge); got != math.MaxInt {
		t.Errorf("AugIters(MaxInt) = %d, want saturation", got)
	}
	if got := DeltaAlpha(huge, 1e-9); got != math.MaxInt {
		t.Errorf("DeltaAlpha(MaxInt, 1e-9) = %d, want saturation", got)
	}
	if got := DynMinBudget(huge, 1e-9); got != math.MaxInt64 {
		t.Errorf("DynMinBudget(MaxInt, 1e-9) = %d, want saturation", got)
	}
	if l := AugLen(1e-300); l < 1 {
		t.Errorf("AugLen(1e-300) = %d, want positive", l)
	}
	// Saturated values still compose without wrapping.
	r := Dynamic{}.ResolveFor(huge, 1e-9)
	if r.Delta < 1 || r.MinBudget < 1 || r.MaxLen < 1 {
		t.Errorf("huge-β dynamic resolution wrapped negative: %+v", r)
	}
}

func TestWorkers(t *testing.T) {
	if got := Workers(3); got != 3 {
		t.Errorf("Workers(3) = %d", got)
	}
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS", got)
	}
}

func TestSequentialResolve(t *testing.T) {
	r := Sequential{Delta: 5}.Resolve()
	if r.MarkAllThreshold != 10 {
		t.Errorf("default MarkAllThreshold = %d, want 2Δ = 10", r.MarkAllThreshold)
	}
	if r.Workers != runtime.GOMAXPROCS(0) {
		t.Errorf("default Workers = %d", r.Workers)
	}
	// Explicit values survive resolution.
	r = Sequential{Delta: 5, MarkAllThreshold: 3, Workers: 2}.Resolve()
	if r.MarkAllThreshold != 3 || r.Workers != 2 {
		t.Errorf("overrides clobbered: %+v", r)
	}
}

func TestPipelineResolveFor(t *testing.T) {
	beta, eps := 2, 0.3
	r := Pipeline{}.ResolveFor(beta, eps)
	if r.Delta != Delta(beta, eps) {
		t.Errorf("Delta = %d, want %d", r.Delta, Delta(beta, eps))
	}
	if r.DeltaAlpha != DeltaAlpha(2*r.Delta, eps) {
		t.Errorf("DeltaAlpha = %d, want composition bound with arboricity 2Δ", r.DeltaAlpha)
	}
	if r.AugIters != 8*r.DeltaAlpha {
		t.Errorf("AugIters = %d, want 8Δα = %d", r.AugIters, 8*r.DeltaAlpha)
	}
	if r.AugLen != AugLenCapped(eps) {
		t.Errorf("AugLen = %d, want %d", r.AugLen, AugLenCapped(eps))
	}
	// Overriding Delta propagates into the dependent defaults.
	r = Pipeline{Delta: 4}.ResolveFor(beta, eps)
	if r.DeltaAlpha != DeltaAlpha(8, eps) {
		t.Errorf("override Delta=4: DeltaAlpha = %d, want %d", r.DeltaAlpha, DeltaAlpha(8, eps))
	}
	r = Pipeline{Delta: 4, DeltaAlpha: 6, AugIters: 10, AugLen: 5}.ResolveFor(beta, eps)
	if r != (Pipeline{Delta: 4, DeltaAlpha: 6, AugIters: 10, AugLen: 5}) {
		t.Errorf("full overrides clobbered: %+v", r)
	}
}

func TestDynamicResolveFor(t *testing.T) {
	beta, eps := 2, 0.4
	r := Dynamic{}.ResolveFor(beta, eps)
	if r.Delta != Delta(beta, eps) {
		t.Errorf("Delta = %d, want %d", r.Delta, Delta(beta, eps))
	}
	if r.MaxLen != AugLen(eps) {
		t.Errorf("MaxLen = %d, want %d (uncapped)", r.MaxLen, AugLen(eps))
	}
	if r.Sweeps != DefaultSweeps {
		t.Errorf("Sweeps = %d, want %d", r.Sweeps, DefaultSweeps)
	}
	if r.MinBudget != DynMinBudget(r.Delta, eps) {
		t.Errorf("MinBudget = %d, want %d", r.MinBudget, DynMinBudget(r.Delta, eps))
	}
	// An overridden Delta feeds the budget floor.
	r = Dynamic{Delta: 3}.ResolveFor(beta, eps)
	if r.MinBudget != DynMinBudget(3, eps) {
		t.Errorf("override Delta=3: MinBudget = %d, want %d", r.MinBudget, DynMinBudget(3, eps))
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Dynamic.ResolveFor with eps=0 did not panic")
			}
		}()
		Dynamic{}.ResolveFor(1, 0)
	}()
}

func TestEDCSResolveFor(t *testing.T) {
	for _, eps := range []float64{0.5, 0.3, 0.2, 0.1, 0.05} {
		lam := EDCSLambda(eps)
		if lam <= 0 || lam > 0.25 {
			t.Errorf("eps=%v: lambda %v out of (0, 0.25]", eps, lam)
		}
		be := EDCSBeta(eps)
		if be < 8 {
			t.Errorf("eps=%v: beta_edcs = %d below floor 8", eps, be)
		}
		lo := EDCSLowThreshold(be, lam)
		if lo >= be {
			t.Errorf("eps=%v: low threshold %d not below beta_edcs %d", eps, lo, be)
		}
		// The separation the fixpoint's safety argument needs: adding an
		// edge with degree sum < lo leaves the sum at most lo+1 <= beta.
		if lo+1 > be {
			t.Errorf("eps=%v: add overshoots P1: lo=%d beta=%d", eps, lo, be)
		}
		r := EDCS{}.ResolveFor(eps)
		if r.Beta != be || r.Lambda != lam || r.LowThreshold != lo {
			t.Errorf("eps=%v: ResolveFor = %+v, want beta=%d lambda=%v lo=%d", eps, r, be, lam, lo)
		}
	}
	// Smaller eps means a stricter (larger) degree bound.
	if EDCSBeta(0.1) <= EDCSBeta(0.4) {
		t.Errorf("beta_edcs not monotone: eps=0.1 -> %d, eps=0.4 -> %d", EDCSBeta(0.1), EDCSBeta(0.4))
	}
	// Overrides are preserved.
	r := EDCS{Beta: 30, Lambda: 0.2, LowThreshold: 24}.ResolveFor(0.2)
	if r != (EDCS{Beta: 30, Lambda: 0.2, LowThreshold: 24}) {
		t.Errorf("full overrides clobbered: %+v", r)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("EDCSLambda(0) did not panic")
			}
		}()
		EDCSLambda(0)
	}()
}
