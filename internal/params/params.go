// Package params is the single source of truth for resolving the paper's
// user-facing parameters (β, ε) into the derived quantities every execution
// model runs on: the per-vertex mark count Δ, the bounded-degree composition
// bound Δα, the mark-all threshold, augmentation limits, worker counts, and
// the dynamic per-update work budget.
//
// Each formula cites the theorem it is calibrated against:
//
//   - Delta / DeltaProof    — Theorem 2.1 via Claim 2.7 (lean vs proof constant)
//   - MarkAllThreshold      — Section 3.1 low-degree tweak (2Δ)
//   - DeltaAlpha            — Theorem 3.2 composition with the Solomon ITCS'18
//     bounded-degree sparsifier, arboricity argument 2Δ
//   - AugLen / AugLenCapped — Theorem 3.1 augmenting-path length bound 2⌈1/ε⌉−1
//   - AugIters              — distributed augmentation schedule, 8·Δα iterations
//   - DynMinBudget          — Theorem 3.5 per-update budget floor ⌈4Δ/ε²⌉
//
// The model packages (core, dist, stream, mpc, dynmatch, dyndist) delegate
// their Options zero-value defaulting to the Resolve* helpers here instead of
// re-implementing the formulas.
package params

import (
	"math"
	"runtime"

	"repro/internal/invariant"
)

// Check validates the paper's parameter domain: β ≥ 1 and ε ∈ (0, 1).
// It panics on violation, mirroring the library's contract for programmer
// errors.
func Check(beta int, eps float64) {
	if beta < 1 {
		invariant.Violatef("params: beta must be >= 1, got %d", beta)
	}
	if eps <= 0 || eps >= 1 {
		invariant.Violatef("params: eps must be in (0,1), got %v", eps)
	}
}

// ceilInt returns ⌈x⌉ as an int, saturating at math.MaxInt. Converting a
// float64 beyond the int range is implementation-defined in Go (on amd64 it
// wraps to MinInt), so huge (β, 1/ε) combinations would otherwise produce a
// NEGATIVE Δ or budget and silently disable every downstream guard.
func ceilInt(x float64) int {
	c := math.Ceil(x)
	// float64(MaxInt64) is exactly 2^63, so c >= catches every value whose
	// int conversion would overflow.
	if c >= math.MaxInt64 {
		return math.MaxInt
	}
	return int(c)
}

// ceilInt64 is ceilInt for int64 results.
func ceilInt64(x float64) int64 {
	c := math.Ceil(x)
	if c >= math.MaxInt64 {
		return math.MaxInt64
	}
	return int64(c)
}

// satMul returns a·b, saturating at math.MaxInt (a, b ≥ 0).
func satMul(a, b int) int {
	if b != 0 && a > math.MaxInt/b {
		return math.MaxInt
	}
	return a * b
}

// Delta returns the lean per-vertex mark count Δ = ⌈(β/ε)·ln(24/ε)⌉.
// Experiments (T1, F2) show the sparsifier quality transition happens near
// this value; it is the practical default of the library.
func Delta(beta int, eps float64) int {
	Check(beta, eps)
	return ceilInt(float64(beta) / eps * math.Log(24/eps))
}

// DeltaProof returns Δ with the constant of the paper's proof (Claim 2.7):
// ⌈20·(β/ε)·ln(24/ε)⌉, the value for which the (1+ε) guarantee of
// Theorem 2.1 is proved. Deliberately conservative.
func DeltaProof(beta int, eps float64) int {
	Check(beta, eps)
	return ceilInt(20 * float64(beta) / eps * math.Log(24/eps))
}

// MarkAllThreshold returns the Section 3.1 low-degree threshold 2Δ:
// vertices of degree at most this mark their whole neighborhood, which
// keeps rejection sampling in expected O(Δ) per vertex and inflates the
// size and arboricity bounds by at most a factor of 2.
func MarkAllThreshold(delta int) int { return satMul(delta, 2) }

// DeltaAlpha returns the mark count of the Solomon ITCS'18 bounded-degree
// sparsifier for a graph of the given arboricity: ⌈5·α/ε⌉, the Θ(α/ε) with
// the constant calibrated in experiments T7/T8. In the Theorem 3.2
// composition the arboricity argument is 2Δ (Observation 2.12).
func DeltaAlpha(arboricity int, eps float64) int {
	if arboricity < 1 {
		invariant.Violatef("params: arboricity must be >= 1, got %d", arboricity)
	}
	if eps <= 0 || eps >= 1 {
		invariant.Violatef("params: eps must be in (0,1), got %v", eps)
	}
	return ceilInt(5 * float64(arboricity) / eps)
}

// AugLen returns the Theorem 3.1 augmenting-path length bound 2⌈1/ε⌉−1.
func AugLen(eps float64) int {
	return satMul(ceilInt(1/eps), 2) - 1
}

// AugLenCapped returns AugLen capped at 9 — the distributed pipeline keeps
// iteration windows short by never chasing paths longer than 9.
func AugLenCapped(eps float64) int {
	return min(AugLen(eps), 9)
}

// AugIters returns the distributed augmentation iteration count 8·Δα.
func AugIters(deltaAlpha int) int { return satMul(deltaAlpha, 8) }

// EDCSLambda returns the EDCS slack parameter λ mapped from the library's
// user-facing ε surface: λ = min(ε/2, 1/4). The Assadi–Bernstein unification
// (and the tight analysis of Azarmehr–Behnezhad–Roghani) give an EDCS the
// approximation ratio 3/2 + O(λ) on ARBITRARY graphs, so halving ε keeps the
// measured ratios comfortably inside 3/2 + ε (calibrated in T18); the 1/4
// cap keeps the two EDCS thresholds separated for any ε.
func EDCSLambda(eps float64) float64 {
	if eps <= 0 || eps >= 1 {
		invariant.Violatef("params: eps must be in (0,1), got %v", eps)
	}
	return min(eps/2, 0.25)
}

// EDCSBeta returns the lean EDCS degree-sum bound β_edcs = max(8, ⌈6/λ⌉).
// The tight analysis needs β_edcs = Θ(1/λ) for the 3/2 + O(λ) ratio; the
// constant 6 is the experimental calibration (T18), analogous to dropping
// the proof constant in Delta. The floor 8 guarantees λ·β_edcs ≥ 2, which
// keeps the fixpoint's add threshold strictly below the removal threshold.
func EDCSBeta(eps float64) int {
	return max(8, ceilInt(6/EDCSLambda(eps)))
}

// EDCSLowThreshold returns the EDCS property-P2 threshold ⌈β_edcs·(1−λ)⌉,
// capped at β_edcs − 1: an edge OUTSIDE the subgraph must have H-degree sum
// at least this value. The cap makes every addition immediately safe for
// property P1 (after adding an edge with degree sum < threshold, the sum is
// at most β_edcs), so the fixpoint loop never overshoots.
func EDCSLowThreshold(betaEDCS int, lambda float64) int {
	if betaEDCS < 2 {
		invariant.Violatef("params: EDCS beta must be >= 2, got %d", betaEDCS)
	}
	if lambda <= 0 || lambda >= 1 {
		invariant.Violatef("params: EDCS lambda must be in (0,1), got %v", lambda)
	}
	return min(ceilInt(float64(betaEDCS)*(1-lambda)), betaEDCS-1)
}

// EDCS holds the resolved parameters of the EDCS sparsifier backend
// (edge-degree-constrained subgraph: Assadi–Bernstein's unification,
// with the tight ratio analysis of Azarmehr–Behnezhad–Roghani).
type EDCS struct {
	// Beta is the degree-sum bound of property P1: every subgraph edge
	// (u,v) has deg_H(u) + deg_H(v) ≤ Beta.
	Beta int
	// Lambda is the slack of property P2: every non-subgraph edge has
	// deg_H(u) + deg_H(v) ≥ Beta·(1−Lambda).
	Lambda float64
	// LowThreshold is the resolved integer P2 threshold.
	LowThreshold int
}

// ResolveFor fills zero-valued fields from ε. The neighborhood-independence
// bound β deliberately does not appear: the EDCS guarantee holds on
// arbitrary graphs, which is exactly why the backend exists.
func (p EDCS) ResolveFor(eps float64) EDCS {
	if p.Lambda == 0 {
		p.Lambda = EDCSLambda(eps)
	}
	if p.Beta == 0 {
		p.Beta = EDCSBeta(eps)
	}
	if p.LowThreshold == 0 {
		p.LowThreshold = EDCSLowThreshold(p.Beta, p.Lambda)
	}
	return p
}

// Workers resolves a requested worker count: zero means GOMAXPROCS.
func Workers(requested int) int {
	if requested == 0 {
		return runtime.GOMAXPROCS(0)
	}
	return requested
}

// DynMinBudget returns the Theorem 3.5 per-update work-budget floor
// ⌈4Δ/ε²⌉ of the fully dynamic maintainers.
func DynMinBudget(delta int, eps float64) int64 {
	return ceilInt64(4 * float64(delta) / (eps * eps))
}

// DefaultSweeps is the default number of augmentation sweeps of the dynamic
// maintainers' static recomputation pipeline.
const DefaultSweeps = 3

// Sequential holds the resolved parameters of the sequential sparsifier
// (core.Options). Zero-valued fields of the receiver are filled with the
// defaults; Delta must already be set (it is the construction's one
// mandatory parameter).
type Sequential struct {
	Delta            int
	MarkAllThreshold int
	Workers          int
}

// Resolve fills zero-valued fields from the theorem defaults.
func (s Sequential) Resolve() Sequential {
	if s.MarkAllThreshold == 0 {
		s.MarkAllThreshold = MarkAllThreshold(s.Delta)
	}
	s.Workers = Workers(s.Workers)
	return s
}

// Pipeline holds the resolved parameters of the distributed
// approximate-matching pipeline (Theorems 3.2/3.3).
type Pipeline struct {
	Delta      int // per-vertex mark count of G_Δ
	DeltaAlpha int // degree bound of the bounded-degree composition
	AugIters   int // augmentation iterations
	AugLen     int // augmenting-path length bound (capped at 9)
}

// ResolveFor fills zero-valued fields from (β, ε) per Theorem 3.2.
func (p Pipeline) ResolveFor(beta int, eps float64) Pipeline {
	if p.Delta == 0 {
		p.Delta = Delta(beta, eps)
	}
	if p.DeltaAlpha == 0 {
		p.DeltaAlpha = DeltaAlpha(2*p.Delta, eps)
	}
	if p.AugIters == 0 {
		p.AugIters = AugIters(p.DeltaAlpha)
	}
	if p.AugLen == 0 {
		p.AugLen = AugLenCapped(eps)
	}
	return p
}

// Dynamic holds the resolved parameters of the fully dynamic maintainers
// (Theorem 3.5).
type Dynamic struct {
	Delta     int   // per-vertex sample count
	MaxLen    int   // augmenting-path length bound 2⌈1/ε⌉−1 (uncapped)
	Sweeps    int   // augmentation sweeps of the static recomputation
	MinBudget int64 // per-update work-budget floor
}

// ResolveFor fills zero-valued fields from (β, ε) per Theorem 3.5.
// MaxLen is always derived from ε (it has no override).
func (d Dynamic) ResolveFor(beta int, eps float64) Dynamic {
	Check(beta, eps)
	if d.Delta == 0 {
		d.Delta = Delta(beta, eps)
	}
	d.MaxLen = AugLen(eps)
	if d.Sweeps == 0 {
		d.Sweeps = DefaultSweeps
	}
	if d.MinBudget == 0 {
		d.MinBudget = DynMinBudget(d.Delta, eps)
	}
	return d
}
