package testkit

import (
	"math/rand/v2"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
)

// TestConcurrentMarkSoak hammers the concurrent mark path: many goroutines
// sparsify the same shared graphs at once with randomized Δ, worker counts,
// and sampling methods. The graphs are sized above the n ≥ 1024 cutoff below
// which SparsifyOpts stays sequential, so the worker sharding and pooled
// packed-arc buffers really run concurrently. Under -race this is the soak
// that flushes out data races; under the plain runner it still asserts the
// contracts every caller relies on — the output is a subgraph of the input
// within the Observation 2.12 arboricity bound, and a same-(options, seed)
// rebuild is bit-identical even when racing with other sparsifications.
// The instances are deliberately uncertified (no MCM oracle): the soak
// checks structure and determinism, not the probabilistic ratio.
func TestConcurrentMarkSoak(t *testing.T) {
	goroutines := 8
	rounds := 12
	n := 1600
	if testing.Short() {
		goroutines, rounds, n = 4, 4, 1100
	}
	graphs := []Instance{
		{Instance: gen.BoundedDiversityInstance(n, 4, 48, 4001)},
		{Instance: gen.UnitDiskInstance(n, 48, 4002)},
		{Instance: gen.CliqueInstance(n / 4)},
	}

	var wg sync.WaitGroup
	for id := 0; id < goroutines; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(id), 0x50a4))
			for r := 0; r < rounds; r++ {
				inst := graphs[rng.IntN(len(graphs))]
				opt := core.Options{
					Delta:   1 + rng.IntN(12),
					Workers: 2 + rng.IntN(7),
					Method:  core.Method(rng.IntN(2)), // ReadOnly or Resample
				}
				seed := rng.Uint64()
				a := core.SparsifyOpts(inst.G, opt, seed)
				b := core.SparsifyOpts(inst.G, opt, seed)
				if err := CheckSameGraph(a, b); err != nil {
					t.Errorf("goroutine %d round %d (%s, %+v, seed %d): concurrent same-seed rebuild differs: %v",
						id, r, inst.Name, opt, seed, err)
					return
				}
				if err := CheckSubgraph(inst.G, a); err != nil {
					t.Errorf("goroutine %d round %d (%s, %+v, seed %d): %v",
						id, r, inst.Name, opt, seed, err)
					return
				}
				if err := CheckArboricity(inst, a, core.ArboricityUpperBound(opt)/2); err != nil {
					t.Errorf("goroutine %d round %d (%s, %+v, seed %d): %v",
						id, r, inst.Name, opt, seed, err)
					return
				}
			}
		}(id)
	}
	wg.Wait()
}
