package testkit

import (
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/matching"
	"repro/internal/params"
)

// TestRelabelConformance pins the cache-aware relabeling contract end to
// end: on every certified conformance family, for both sparsifier backends,
// every ordering, and workers ∈ {1, 2, 8}, the full pipeline (backend
// sparsify → shuffled greedy → phase schedule to fixpoint) with relabeling
// enabled must produce a matching bit-identical (mate-for-mate) to the
// unrelabeled sequential run. Relabeling is a layout view — it may only
// change speed, never a single mate.
func TestRelabelConformance(t *testing.T) {
	const eps = 0.3
	n, seeds := conformanceScale(t)
	workerCounts := []int{1, 2, 8}
	maxLen := params.AugLen(eps)
	for _, fam := range ConformanceFamilies(192) {
		fam := fam
		t.Run(fam.Name, func(t *testing.T) {
			t.Parallel()
			for seed := uint64(1); seed <= uint64(seeds); seed++ {
				inst := fam.Make(n, 4400+seed)
				for _, backend := range core.Backends(1) {
					sp := backend.Sparsify(inst.G, inst.Beta, eps, 7700+seed)

					// Unrelabeled sequential reference.
					ref := matching.NewMatching(sp.N())
					refEng := matching.NewEngine(matching.Options{Workers: 1})
					refEng.GreedyShuffledInto(sp, ref, 6600+seed)
					for L := 1; L <= maxLen; L += 2 {
						for refEng.DisjointAugment(sp, ref, L) > 0 {
						}
					}
					refEng.Close()
					refMates := ref.MatesInto(nil)

					for _, ord := range graph.Orderings() {
						for _, w := range workerCounts {
							e := matching.NewEngine(matching.Options{Workers: w, Relabel: ord})
							m := matching.NewMatching(sp.N())
							e.GreedyShuffledInto(sp, m, 6600+seed)
							for L := 1; L <= maxLen; L += 2 {
								for e.DisjointAugment(sp, m, L) > 0 {
								}
							}
							e.Close()
							if err := matching.Verify(sp, m); err != nil {
								t.Fatalf("%s/%s/%v/w%d seed %d: invalid matching: %v",
									fam.Name, backend.Name(), ord, w, seed, err)
							}
							mates := m.MatesInto(nil)
							for v := range mates {
								if mates[v] != refMates[v] {
									t.Fatalf("%s/%s/%v/w%d seed %d: mate[%d] = %d, unrelabeled %d (relabeling changed the output)",
										fam.Name, backend.Name(), ord, w, seed, v, mates[v], refMates[v])
								}
							}
						}
					}
				}
			}
		})
	}
}
