package testkit

import (
	"slices"
	"testing"

	"repro/internal/dist"
	"repro/internal/faults"
	"repro/internal/params"
)

// TestZeroFaultInterceptorConformance extends the differential driver to
// the fault-injection layer: on every certified instance family, a
// zero-fault plan's interceptor installed on the delivery path must be a
// byte-identical no-op — the distributed sparsifier it produces equals the
// fault-free one, the full pipeline's matching equals the fault-free one,
// and the rounds/messages/bits accounting is unchanged with all fault
// counters at zero. This is the tentpole's no-op guarantee checked on the
// same instances the cross-model conformance run certifies.
func TestZeroFaultInterceptorConformance(t *testing.T) {
	const eps = 0.3
	n, seeds := conformanceScale(t)
	n /= 2 // the pipeline runs five phases; half size keeps the sweep quick
	if testing.Short() {
		seeds = 1
	}
	for _, fam := range ConformanceFamilies(96) {
		fam := fam
		t.Run(fam.Name, func(t *testing.T) {
			t.Parallel()
			for seed := uint64(1); seed <= uint64(seeds); seed++ {
				inst := fam.Make(n, 4000+seed)
				delta := params.Delta(inst.Beta, eps)
				noop := func() dist.RunOption {
					return dist.WithInterceptor(faults.Plan{Seed: 999 * seed}.Injector())
				}

				base, bs := dist.RunSparsifier(inst.G, delta, 6600+seed)
				injected, is := dist.RunSparsifier(inst.G, delta, 6600+seed, noop())
				if err := CheckSameGraph(base, injected); err != nil {
					t.Errorf("seed %d: zero-fault sparsifier differs: %v", seed, err)
				}
				if bs != is {
					t.Errorf("seed %d: zero-fault sparsifier accounting differs: %+v vs %+v", seed, bs, is)
				}

				opt := dist.PipelineOptions{Delta: delta}
				bm, bps := dist.ApproxMatchingPipeline(inst.G, inst.Beta, eps, opt, 7700+seed)
				im, ips := dist.ApproxMatchingPipeline(inst.G, inst.Beta, eps, opt, 7700+seed, noop())
				if !slices.Equal(bm.Mates(), im.Mates()) {
					t.Errorf("seed %d: zero-fault pipeline matching differs: %d vs %d edges",
						seed, im.Size(), bm.Size())
				}
				if bps.Total != ips.Total {
					t.Errorf("seed %d: zero-fault pipeline accounting differs:\nfault-free: %+v\ninjected:   %+v",
						seed, bps.Total, ips.Total)
				}
				if ips.Total.Dropped+ips.Total.Duplicated+ips.Total.Delayed != 0 {
					t.Errorf("seed %d: zero-fault plan reported faults: %+v", seed, ips.Total)
				}
			}
		})
	}
}
