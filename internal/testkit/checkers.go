package testkit

import (
	"fmt"
	"math"
	"slices"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/matching"
)

// This file maps each checkable statement of the paper to one checker:
//
//	Theorem 2.1      → CheckSparsifierRatio (MCM(G_Δ)·(1+ε) ≥ MCM(G); holds
//	                   w.h.p., so suites aggregate it over seeds — see Tally)
//	Lemma 2.2        → CheckLowerBound (MCM(G) ≥ ⌈n'/(β+2)⌉, deterministic)
//	Observation 2.10 → CheckEdgeBound (|E(G_Δ)| ≤ 2·MCM·(Δ'+β), deterministic)
//	Observation 2.12 → CheckArboricity (arboricity ≤ degeneracy ≤ 2Δ',
//	                   deterministic, via degeneracy peeling)
//	(structural)     → CheckMatchingValid, CheckSubgraph, CheckSameGraph
//
// Δ' is the model's effective per-vertex mark cap: Δ for pure reservoir
// models (streaming, MPC), 2Δ for models with the Section 3.1 mark-all
// tweak (sequential, distributed, dynamic-distributed). The deterministic
// bounds hold for every run; only the ratio is probabilistic.

// RatioFloor returns the smallest sparsifier MCM allowed by Theorem 2.1,
// ⌈MCM(G)/(1+ε)⌉.
func RatioFloor(mcm int, eps float64) int {
	return int(math.Ceil(float64(mcm) / (1 + eps)))
}

// CheckSparsifierRatio checks the Theorem 2.1 guarantee on one sparsifier:
// MCM(G_Δ) ≥ MCM(G)/(1+ε), with the sparsifier side evaluated exactly by
// the blossom oracle. The guarantee is "with high probability", so a single
// failure on one seed is not a refutation — aggregate repeated seeds with a
// Tally and judge the failure fraction.
func CheckSparsifierRatio(inst Instance, sp *graph.Static, eps float64) error {
	got := matching.MaximumGeneral(sp).Size()
	if floor := RatioFloor(inst.MCM, eps); got < floor {
		return fmt.Errorf("testkit: %s: sparsifier MCM %d below Theorem 2.1 floor %d (MCM=%d, ε=%v)",
			inst.Name, got, floor, inst.MCM, eps)
	}
	return nil
}

// CheckLowerBound checks Lemma 2.2 on the certified instance:
// MCM(G) ≥ ⌈n'/(β+2)⌉ where n' counts non-isolated vertices.
func CheckLowerBound(inst Instance) error {
	lb := core.MatchingLowerBound(inst.NonIsolated, inst.Beta)
	if inst.MCM < lb {
		return fmt.Errorf("testkit: %s: MCM %d below Lemma 2.2 bound %d (n'=%d, β=%d)",
			inst.Name, inst.MCM, lb, inst.NonIsolated, inst.Beta)
	}
	return nil
}

// CheckEdgeBound checks the Observation 2.10 size bound with per-vertex
// mark cap Δ' = markCap: |E(G_Δ)| ≤ 2·MCM·(Δ'+β). (Every edge of G_Δ is marked
// by an endpoint; edges marked by matched vertices number ≤ 2·MCM·Δ', and
// edges marked only by free vertices land on ≤ β independent free
// neighbors of each matched vertex.) This holds for every run.
func CheckEdgeBound(inst Instance, sp *graph.Static, markCap int) error {
	bound := core.SizeUpperBound(inst.MCM, markCap, inst.Beta)
	if sp.M() > bound {
		return fmt.Errorf("testkit: %s: sparsifier has %d edges > Observation 2.10 bound %d (MCM=%d, Δ'=%d, β=%d)",
			inst.Name, sp.M(), bound, inst.MCM, markCap, inst.Beta)
	}
	return nil
}

// CheckArboricity checks the Observation 2.12 bound with per-vertex mark
// cap Δ' = markCap: orienting each edge out of a marking endpoint gives
// out-degree ≤ Δ', so every subgraph has average degree ≤ 2Δ' and the
// degeneracy — an upper bound on arboricity computed exactly by peeling —
// is at most 2Δ'. The Nash–Williams density lower bound is checked too: it
// bounds arboricity from below, so exceeding 2Δ' would refute the
// observation directly rather than the peeling argument.
func CheckArboricity(inst Instance, sp *graph.Static, markCap int) error {
	if degen, _ := core.Degeneracy(sp); degen > 2*markCap {
		return fmt.Errorf("testkit: %s: sparsifier degeneracy %d > Observation 2.12 bound %d (Δ'=%d)",
			inst.Name, degen, 2*markCap, markCap)
	}
	if lb := core.DensityLowerBound(sp); lb > 2*markCap {
		return fmt.Errorf("testkit: %s: Nash–Williams arboricity lower bound %d > Observation 2.12 bound %d",
			inst.Name, lb, 2*markCap)
	}
	return nil
}

// CheckMatchingValid checks that m is a valid matching of g: vertex-disjoint
// pairs, a symmetric mate relation, and every matched pair an edge of g.
func CheckMatchingValid(g *graph.Static, m *matching.Matching) error {
	return matching.Verify(g, m)
}

// CheckSubgraph checks that sp is a subgraph of g on the same vertex set —
// every execution model's sparsifier must only ever select existing edges.
func CheckSubgraph(g, sp *graph.Static) error {
	if sp.N() != g.N() {
		return fmt.Errorf("testkit: sparsifier has %d vertices, input has %d", sp.N(), g.N())
	}
	var bad error
	sp.ForEachEdge(func(u, v int32) {
		if bad == nil && !g.HasEdge(u, v) {
			bad = fmt.Errorf("testkit: sparsifier edge (%d,%d) not in input graph", u, v)
		}
	})
	return bad
}

// CheckSameGraph checks that two graphs are identical (same vertex count,
// same edge list) — the determinism contract: a model re-run with the same
// seed and worker configuration must reproduce its output bit-for-bit.
func CheckSameGraph(a, b *graph.Static) error {
	if a.N() != b.N() {
		return fmt.Errorf("testkit: vertex counts differ: %d vs %d", a.N(), b.N())
	}
	if a.M() != b.M() {
		return fmt.Errorf("testkit: edge counts differ: %d vs %d", a.M(), b.M())
	}
	if !slices.Equal(a.Edges(), b.Edges()) {
		return fmt.Errorf("testkit: edge lists differ")
	}
	return nil
}

// Tally aggregates a probabilistic checker over repeated seeds. Theorem 2.1
// holds with high probability, so a conformance suite runs the ratio
// checker across several seeds and accepts a bounded number of misses
// instead of demanding per-seed success.
type Tally struct {
	Trials   int
	Failures []error
}

// Observe records one trial outcome.
func (t *Tally) Observe(err error) {
	t.Trials++
	if err != nil {
		t.Failures = append(t.Failures, err)
	}
}

// Judge returns an error if more than maxFailures trials failed.
func (t *Tally) Judge(maxFailures int) error {
	if len(t.Failures) <= maxFailures {
		return nil
	}
	return fmt.Errorf("testkit: %d/%d trials failed (allowed %d); first: %w",
		len(t.Failures), t.Trials, maxFailures, t.Failures[0])
}
