package testkit

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/invariant"
	"repro/internal/matching"
)

// Instance is a certified conformance instance: a generated graph whose
// neighborhood-independence bound β is guaranteed by the construction
// (gen.Instance.Beta) and whose exact maximum matching size has been
// computed once with the blossom oracle. Every checker that references
// |MCM(G)| or β reads it from here, so the oracle cost is paid once per
// instance rather than once per model.
type Instance struct {
	gen.Instance
	// MCM is the exact maximum matching size of G (blossom oracle).
	MCM int
	// NonIsolated is the number of vertices of G with degree at least 1
	// (the n' of Lemma 2.2 and of Theorem 2.1's failure probability).
	NonIsolated int
}

// Certify computes the exact oracles for a generated instance. It panics if
// the generator handed over an instance with an invalid β certificate —
// certifying a lie would silently weaken every downstream checker.
func Certify(inst gen.Instance) Instance {
	if inst.Beta < 1 {
		invariant.Violatef("testkit: instance %q has invalid beta %d", inst.Name, inst.Beta)
	}
	return Instance{
		Instance:    inst,
		MCM:         matching.MaximumGeneral(inst.G).Size(),
		NonIsolated: inst.G.NonIsolated(),
	}
}

// Family produces certified instances of one graph family at a given size,
// parameterized by seed. Name matches the generator catalog of internal/gen.
type Family struct {
	Name string
	Make func(n int, seed uint64) Instance
}

// ConformanceFamilies returns the certified families the conformance suite
// runs by default: the clique (β = 1, the paper's canonical dense-but-easy
// family), bounded-diversity graphs (β ≤ 4), and random unit-disk graphs
// (β ≤ 5). avgDeg sets the target average degree of the randomized
// families; pick it above twice the mark-all threshold of the Δ under test
// so the samplers are actually exercised rather than degenerating to
// "mark everything".
func ConformanceFamilies(avgDeg float64) []Family {
	return []Family{
		{Name: "clique", Make: func(n int, seed uint64) Instance {
			return Certify(gen.CliqueInstance(n))
		}},
		{Name: "diversity4", Make: func(n int, seed uint64) Instance {
			return Certify(gen.BoundedDiversityInstance(n, 4, avgDeg, seed))
		}},
		{Name: "unitdisk", Make: func(n int, seed uint64) Instance {
			return Certify(gen.UnitDiskInstance(n, avgDeg, seed))
		}},
	}
}

// CheckBetaCertificate cross-validates an instance's construction-certified
// β bound against the polynomial-time greedy lower bound (and the exact
// exponential-time oracle for small graphs): a lower bound exceeding the
// certificate refutes the generator.
func CheckBetaCertificate(inst Instance) error {
	if lb := core.GreedyBetaLowerBound(inst.G); lb > inst.Beta {
		return fmt.Errorf("testkit: %s: greedy beta lower bound %d exceeds certified beta %d",
			inst.Name, lb, inst.Beta)
	}
	if inst.G.N() <= 64 {
		if exact := core.ExactBeta(inst.G); exact > inst.Beta {
			return fmt.Errorf("testkit: %s: exact beta %d exceeds certified beta %d",
				inst.Name, exact, inst.Beta)
		}
	}
	return nil
}
