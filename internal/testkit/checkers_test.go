package testkit

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/matching"
)

// The checkers are the harness's foundation, so each one is tested in both
// directions: it accepts a known-good input AND rejects a constructed
// violation. A checker that never fires is worse than no checker.

func cliqueInstance(n int) Instance { return Certify(gen.CliqueInstance(n)) }

func TestCertifyComputesOracles(t *testing.T) {
	inst := cliqueInstance(21)
	if inst.MCM != 10 {
		t.Errorf("K21 MCM = %d, want 10", inst.MCM)
	}
	if inst.NonIsolated != 21 {
		t.Errorf("K21 non-isolated = %d, want 21", inst.NonIsolated)
	}
}

func TestCheckSubgraphDetects(t *testing.T) {
	g := gen.Path(5)
	if err := CheckSubgraph(g, g); err != nil {
		t.Errorf("graph not a subgraph of itself: %v", err)
	}
	extra := graph.FromEdges(5, []graph.Edge{{U: 0, V: 4}})
	if err := CheckSubgraph(g, extra); err == nil {
		t.Error("extra edge (0,4) not detected")
	}
	if err := CheckSubgraph(g, gen.Path(4)); err == nil {
		t.Error("vertex-count mismatch not detected")
	}
}

func TestCheckEdgeBoundDetects(t *testing.T) {
	inst := cliqueInstance(20) // MCM 10, 190 edges
	if err := CheckEdgeBound(inst, inst.G, 20); err != nil {
		t.Errorf("bound 2·10·(20+1)=420 ≥ 190 should pass: %v", err)
	}
	// Δ' = 5 gives bound 2·10·(5+1) = 120 < 190: must fire.
	if err := CheckEdgeBound(inst, inst.G, 5); err == nil {
		t.Error("edge bound violation not detected")
	}
}

func TestCheckArboricityDetects(t *testing.T) {
	inst := cliqueInstance(20) // degeneracy 19
	if err := CheckArboricity(inst, inst.G, 10); err != nil {
		t.Errorf("degeneracy 19 ≤ 2·10 should pass: %v", err)
	}
	if err := CheckArboricity(inst, inst.G, 9); err == nil {
		t.Error("arboricity violation (19 > 18) not detected")
	}
}

func TestCheckSparsifierRatioDetects(t *testing.T) {
	inst := cliqueInstance(20)
	if err := CheckSparsifierRatio(inst, inst.G, 0.3); err != nil {
		t.Errorf("the graph itself preserves its own MCM: %v", err)
	}
	if err := CheckSparsifierRatio(inst, graph.Empty(20), 0.3); err == nil {
		t.Error("empty sparsifier kills the matching; not detected")
	}
}

func TestCheckLowerBoundDetects(t *testing.T) {
	inst := cliqueInstance(20)
	if err := CheckLowerBound(inst); err != nil {
		t.Errorf("K20 satisfies Lemma 2.2: %v", err)
	}
	// Doctor the oracle below ⌈20/(1+2)⌉ = 7: must fire.
	inst.MCM = 6
	if err := CheckLowerBound(inst); err == nil {
		t.Error("Lemma 2.2 violation not detected")
	}
}

func TestCheckBetaCertificateDetects(t *testing.T) {
	if err := CheckBetaCertificate(cliqueInstance(20)); err != nil {
		t.Errorf("clique certificate β=1 is exact: %v", err)
	}
	// A star certified as β=1 lies: its center's neighborhood is an
	// independent set of size n−1.
	lie := Instance{Instance: gen.Instance{Name: "star-lie", G: gen.Star(10), Beta: 1}}
	if err := CheckBetaCertificate(lie); err == nil {
		t.Error("false beta certificate not detected")
	}
}

func TestCheckMatchingValidDetects(t *testing.T) {
	g := gen.Path(4) // edges (0,1),(1,2),(2,3)
	ok := matching.FromMates([]int32{1, 0, 3, 2})
	if err := CheckMatchingValid(g, ok); err != nil {
		t.Errorf("valid matching rejected: %v", err)
	}
	bad := matching.FromMates([]int32{3, -1, -1, 0}) // (0,3) is not an edge
	if err := CheckMatchingValid(g, bad); err == nil {
		t.Error("non-edge matched pair not detected")
	}
}

func TestCheckSameGraphDetects(t *testing.T) {
	a := gen.Path(6)
	if err := CheckSameGraph(a, gen.Path(6)); err != nil {
		t.Errorf("identical graphs rejected: %v", err)
	}
	if err := CheckSameGraph(a, gen.Cycle(6)); err == nil {
		t.Error("edge-count difference not detected")
	}
	b := graph.FromEdges(6, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 4}, {U: 0, V: 5}})
	if err := CheckSameGraph(a, b); err == nil {
		t.Error("same-size different-edges graphs not detected")
	}
}

func TestTallyJudgesFailureBudget(t *testing.T) {
	tally := &Tally{}
	tally.Observe(nil)
	tally.Observe(errors.New("miss one"))
	if err := tally.Judge(1); err != nil {
		t.Errorf("1 failure within budget 1: %v", err)
	}
	tally.Observe(errors.New("miss two"))
	if err := tally.Judge(1); err == nil {
		t.Error("2 failures over budget 1 not judged")
	} else if !strings.Contains(err.Error(), "miss one") {
		t.Errorf("judgment does not surface the first failure: %v", err)
	}
}

func TestErrsCombines(t *testing.T) {
	var e Errs
	e.Add(nil)
	if e.Err() != nil {
		t.Error("nil-only Errs should be nil")
	}
	e.Add(errors.New("a"))
	if got := e.Err(); got == nil || got.Error() != "a" {
		t.Errorf("single error should pass through, got %v", got)
	}
	e.Add(errors.New("b"))
	got := e.Err()
	if got == nil || !strings.Contains(got.Error(), "a") || !strings.Contains(got.Error(), "b") {
		t.Errorf("combined error should mention both: %v", got)
	}
}

func TestRatioFloor(t *testing.T) {
	for _, tc := range []struct {
		mcm   int
		eps   float64
		floor int
	}{{100, 0.25, 80}, {10, 0.3, 8}, {0, 0.5, 0}, {1, 0.9, 1}} {
		if got := RatioFloor(tc.mcm, tc.eps); got != tc.floor {
			t.Errorf("RatioFloor(%d, %v) = %d, want %d", tc.mcm, tc.eps, got, tc.floor)
		}
	}
}
